// Heuristic comparison: map one §4.2 instance with every heuristic in the
// suite and show that makespan quality and robustness quality are
// different orders — the motivation for measuring robustness explicitly.
//
// Run with:
//
//	go run ./examples/heuristics
package main

import (
	"fmt"
	"log"
	"sort"

	"fepia/internal/etcgen"
	"fepia/internal/hcs"
	"fepia/internal/heuristics"
	"fepia/internal/indalloc"
	"fepia/internal/stats"
)

func main() {
	log.SetFlags(0)

	etc, err := etcgen.Generate(stats.NewRNG(42), etcgen.PaperParams())
	if err != nil {
		log.Fatal(err)
	}
	inst, err := hcs.NewInstance(etc)
	if err != nil {
		log.Fatal(err)
	}

	const tau = 1.2
	suite := append(heuristics.All(),
		heuristics.RobustGreedy{Tau: tau},
		heuristics.RobustRefine{Tau: tau},
		heuristics.RobustGA{Tau: tau},
	)

	type row struct {
		name           string
		makespan, rho  float64
		makespanRank   int
		robustnessRank int
	}
	rows := make([]row, 0, len(suite))
	for _, h := range suite {
		m, err := h.Map(stats.NewRNG(7), inst)
		if err != nil {
			log.Fatalf("%s: %v", h.Name(), err)
		}
		res, err := indalloc.Evaluate(m, tau)
		if err != nil {
			log.Fatal(err)
		}
		rows = append(rows, row{name: h.Name(), makespan: res.PredictedMakespan, rho: res.Robustness})
	}

	// Rank by each metric.
	bySpan := make([]int, len(rows))
	byRho := make([]int, len(rows))
	for i := range rows {
		bySpan[i], byRho[i] = i, i
	}
	sort.Slice(bySpan, func(a, b int) bool { return rows[bySpan[a]].makespan < rows[bySpan[b]].makespan })
	sort.Slice(byRho, func(a, b int) bool { return rows[byRho[a]].rho > rows[byRho[b]].rho })
	for rank, i := range bySpan {
		rows[i].makespanRank = rank + 1
	}
	for rank, i := range byRho {
		rows[i].robustnessRank = rank + 1
	}

	fmt.Printf("one §4.2 instance (20 applications, 5 machines), tau = %.1f\n\n", tau)
	fmt.Printf("%-24s %10s %6s %10s %6s\n", "heuristic", "makespan", "rank", "rho", "rank")
	for _, r := range rows {
		fmt.Printf("%-24s %10.4g %6d %10.4g %6d\n", r.name, r.makespan, r.makespanRank, r.rho, r.robustnessRank)
	}
	fmt.Println("\nNote how the two rankings disagree: the best-makespan mappings pack")
	fmt.Println("the critical machine densely, which Eq. 6 penalises by √n. The robust")
	fmt.Println("variants give up bounded makespan (≤ τ× Min-min) to buy robustness.")
}
