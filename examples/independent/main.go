// Independent-application allocation (§3.1): the closed-form robustness
// analysis of a mapping, its boundary vector C*, and a comparison of two
// mappings with identical makespan but very different robustness — the
// phenomenon behind Figure 3.
//
// Run with:
//
//	go run ./examples/independent
package main

import (
	"fmt"
	"log"
	"math"

	robustness "fepia"
)

func main() {
	log.SetFlags(0)

	// Four applications, two machines. Mapping X packs the two short
	// applications together; mapping Y pairs long with short. Both have
	// makespan 10, but they differ in how many applications sit on the
	// critical machine — and Eq. 6 divides the headroom by √n.
	etc := [][]float64{
		// m0  m1
		{5, 5},   // a0
		{5, 5},   // a1
		{10, 10}, // a2
		{10, 10}, // a3
	}
	mappingX := []int{0, 0, 1, 1} // m0: a0,a1 (10); m1: a2,a3 (20) — makespan 20
	mappingY := []int{0, 1, 0, 1} // m0: a0,a2 (15); m1: a1,a3 (15) — makespan 15

	const tau = 1.2
	for _, c := range []struct {
		name   string
		assign []int
	}{
		{"X (short+short / long+long)", mappingX},
		{"Y (short+long / short+long)", mappingY},
	} {
		res, err := robustness.EvaluateIndependentAllocation(etc, c.assign, tau)
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("mapping %s\n", c.name)
		fmt.Printf("  predicted makespan M^orig = %.4g\n", res.PredictedMakespan)
		fmt.Printf("  robustness ρ              = %.4g\n", res.Robustness)
		fmt.Printf("  critical machine          = m%d\n", res.CriticalMachine)
		fmt.Printf("  per-machine radii         = %s\n", radii(res.Radii))
		fmt.Printf("  boundary vector C*        = %.4v\n\n", res.BoundaryETC)
	}

	// The balanced mapping wins on makespan AND robustness here; but within
	// equal-makespan families the robustness still differentiates. Verify
	// the Eq. 6 closed form by hand for mapping Y:
	//   ρ = (τ·15 − 15)/√2 = 3/√2.
	resY, err := robustness.EvaluateIndependentAllocation(etc, mappingY, tau)
	if err != nil {
		log.Fatal(err)
	}
	want := (tau*15 - 15) / math.Sqrt2
	fmt.Printf("hand check (Eq. 6): ρ(Y) = (τ·M − M)/√2 = %.6f, library says %.6f\n", want, resY.Robustness)

	// Interpretation of ρ in this system: any combination of ETC errors
	// with Euclidean norm ≤ ρ keeps the actual makespan within τ of the
	// prediction. Demonstrate with the worst direction — all error on the
	// critical machine, split equally (observation 2 of §3.1).
	fmt.Println("\nworst-case direction: equal errors on the critical machine's applications;")
	fmt.Println("C* above realises it — any smaller excursion is provably safe.")
}

func radii(rs []float64) string {
	out := ""
	for j, r := range rs {
		if j > 0 {
			out += ", "
		}
		if math.IsInf(r, 1) {
			out += fmt.Sprintf("m%d: ∞", j)
		} else {
			out += fmt.Sprintf("m%d: %.4g", j, r)
		}
	}
	return out
}
