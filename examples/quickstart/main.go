// Quickstart: derive a robustness metric for the paper's running example
// (§2) using nothing but the public facade.
//
// System: two machines; m0 runs applications a0 (6 s) and a1 (4 s), m1
// runs a2 (8 s). Requirement: no machine's finishing time may exceed 1.3×
// the predicted makespan, no matter how wrong the ETC estimates are.
// Question: how wrong can they collectively be?
//
// Run with:
//
//	go run ./examples/quickstart
package main

import (
	"fmt"
	"log"

	robustness "fepia"
)

func main() {
	log.SetFlags(0)

	// FePIA step 1 (Fe): the performance features are the machine
	// finishing times, each bounded by β^max = 1.3 × M^orig = 13.
	const bound = 1.3 * 10

	// FePIA step 3 (I): each finishing time is the sum of the execution
	// times of the applications on that machine — affine in C.
	f0, err := robustness.NewLinearImpact([]float64{1, 1, 0}, 0) // m0: a0 + a1
	if err != nil {
		log.Fatal(err)
	}
	f1, err := robustness.NewLinearImpact([]float64{0, 0, 1}, 0) // m1: a2
	if err != nil {
		log.Fatal(err)
	}
	features := []robustness.Feature{
		{Name: "finish(m0)", Impact: f0, Bounds: robustness.NoMin(bound)},
		{Name: "finish(m1)", Impact: f1, Bounds: robustness.NoMin(bound)},
	}

	// FePIA step 2 (P): the perturbation parameter is the vector of actual
	// execution times, assumed to be the estimates.
	p := robustness.Perturbation{
		Name:  "C",
		Orig:  []float64{6, 4, 8},
		Units: "seconds",
	}

	// FePIA step 4 (A): analyse.
	a, err := robustness.Analyze(features, p, robustness.Options{})
	if err != nil {
		log.Fatal(err)
	}

	fmt.Print(a) // the Analysis type renders a readable report
	fmt.Println()
	fmt.Printf("Interpretation: as long as the Euclidean norm of the ETC errors stays\n")
	fmt.Printf("below %.3f s, no finishing time can exceed %.1f s. The critical\n", a.Robustness, bound)
	fmt.Printf("feature is %s: its boundary point is C* = %.3v.\n",
		a.CriticalFeature().Feature, a.CriticalFeature().Boundary)
}
