// Dynamic mapping with an online robustness timeline: tasks arrive over
// time, an immediate-mode heuristic commits each to a machine, and after
// every commitment the conditional robustness radius (Eq. 6 applied to the
// outstanding work) says how fragile the current commitment is.
//
// Run with:
//
//	go run ./examples/dynamic
package main

import (
	"fmt"
	"log"
	"strings"

	"fepia/internal/dynamic"
	"fepia/internal/stats"
)

func main() {
	log.SetFlags(0)

	w, err := dynamic.Generate(stats.NewRNG(42), dynamic.PaperGenParams())
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("workload: %d tasks arriving over ~%.1f time units, %d machines\n\n",
		len(w.Tasks), w.Tasks[len(w.Tasks)-1].Arrival, w.Machines)

	res, err := dynamic.Run(stats.NewRNG(1), w, dynamic.MCT{}, 1.2)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("MCT immediate-mode run — makespan %.2f\n\n", res.Makespan)
	fmt.Printf("%8s %6s %8s %12s %14s\n", "time", "task", "machine", "pred. span", "cond. ρ")
	for _, s := range res.Snapshots {
		bar := strings.Repeat("#", int(s.Robustness*2))
		if len(bar) > 30 {
			bar = bar[:30] + "…"
		}
		fmt.Printf("%8.2f a%-5d m%-7d %12.2f %8.3f %s\n",
			s.Time, s.TaskID, s.Machine, s.PredictedMakespan, s.Robustness, bar)
	}

	fmt.Println("\nReading: the conditional ρ dips when a commitment concentrates")
	fmt.Println("outstanding work (more tasks share the critical machine → Eq. 6's √n")
	fmt.Println("penalty) and recovers as work drains. Compare heuristics with")
	fmt.Println("`go run ./cmd/dynamicstudy`.")
}
