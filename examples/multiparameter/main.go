// Multi-parameter robustness: the simultaneous-perturbation case the
// paper defers to its reference [1], exercised through the public facade.
//
// Scenario: one machine runs two applications with estimated times
// (6 s, 4 s). Two things are uncertain at once: the execution times C
// (estimation error) and a machine slowdown factor s (background load;
// assumed 1.0). The finishing time is F(C, s) = s·(C₀ + C₁) — bilinear in
// the joint vector, so neither parameter alone tells the whole story.
//
// The example contrasts three analyses:
//
//  1. per-parameter (the paper's §2 assumption): C alone, then s alone;
//  2. joint with the plain Euclidean norm (units clash: seconds vs a
//     dimensionless factor);
//  3. joint with the commensurable weighted norm from JointWeights.
//
// Run with:
//
//	go run ./examples/multiparameter
package main

import (
	"fmt"
	"log"

	robustness "fepia"
)

func main() {
	log.SetFlags(0)

	const bound = 13.0 // β^max = 1.3 × predicted finishing time 10 s

	cParam := robustness.Perturbation{Name: "C", Orig: []float64{6, 4}, Units: "seconds"}
	sParam := robustness.Perturbation{Name: "s", Orig: []float64{1}, Units: "×"}

	// --- 1. Per-parameter analyses (independence assumption) ---
	sumC, err := robustness.NewLinearImpact([]float64{1, 1}, 0)
	if err != nil {
		log.Fatal(err)
	}
	aC, err := robustness.Analyze([]robustness.Feature{
		{Name: "F", Impact: sumC, Bounds: robustness.NoMin(bound)},
	}, cParam, robustness.Options{})
	if err != nil {
		log.Fatal(err)
	}
	slowdown, err := robustness.NewLinearImpact([]float64{10}, 0) // F = 10·s at C = C^orig
	if err != nil {
		log.Fatal(err)
	}
	aS, err := robustness.Analyze([]robustness.Feature{
		{Name: "F", Impact: slowdown, Bounds: robustness.NoMin(bound)},
	}, sParam, robustness.Options{})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("per-parameter radii (each holds the OTHER parameter fixed):\n")
	fmt.Printf("  r(F, C) = %.4f seconds\n", aC.Robustness)
	fmt.Printf("  r(F, s) = %.4f ×\n\n", aS.Robustness)

	// --- 2. Joint analysis, plain ℓ₂ ---
	joint, err := robustness.ConcatPerturbations("C⊕s", cParam, sParam)
	if err != nil {
		log.Fatal(err)
	}
	bilinear := &robustness.FuncImpact{
		N:      3,
		F:      func(x []float64) float64 { return x[2] * (x[0] + x[1]) },
		Convex: false, // bilinear — the analysis adds an annealing pass
	}
	feature := []robustness.Feature{{Name: "F", Impact: bilinear, Bounds: robustness.NoMin(bound)}}
	aJoint, err := robustness.Analyze(feature, joint.Perturbation, robustness.Options{})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("joint analysis, plain ℓ₂ (seconds and × added incommensurably):\n")
	fmt.Printf("  ρ = %.4f — dominated by the cheap slowdown direction\n", aJoint.Robustness)
	fmt.Printf("  boundary point (C₀, C₁, s) = %.4v\n\n", aJoint.CriticalFeature().Boundary)

	// --- 3. Joint analysis, commensurable weighted norm ---
	// JointWeights only applies analytically to linear impacts, so
	// linearise F around the operating point: dF = s·dC₀ + s·dC₁ +
	// (C₀+C₁)·ds = dC₀ + dC₁ + 10·ds at the operating point.
	w, err := robustness.JointWeights(joint)
	if err != nil {
		log.Fatal(err)
	}
	// Offset −10 anchors the linearisation at F(orig) = 10:
	// F~(x) = 1·C₀ + 1·C₁ + 10·s − 10.
	linearised, err := robustness.NewLinearImpact([]float64{1, 1, 10}, -10)
	if err != nil {
		log.Fatal(err)
	}
	aW, err := robustness.Analyze([]robustness.Feature{
		{Name: "F~", Impact: linearised, Bounds: robustness.NoMin(bound)},
	}, joint.Perturbation, robustness.Options{Norm: w})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("joint analysis, weighted norm (1 unit ≈ one characteristic relative change):\n")
	fmt.Printf("  ρ = %.4f relative units (linearised impact)\n\n", aW.Robustness)

	fmt.Println("Reading: the per-parameter radii overstate safety — they assume the")
	fmt.Println("other uncertainty stays put. The joint radius is smaller than either,")
	fmt.Println("because a little extra load AND a little estimation error together")
	fmt.Println("cross the bound sooner than either alone.")
}
