// Custom system: derive a robustness metric for a system the paper never
// analysed — a three-tier web service — by walking the FePIA procedure
// with non-linear (convex) impact functions. This is the "procedure for an
// arbitrary system" claim of the paper exercised end to end.
//
// Model: requests arrive at rate λ_web and λ_api (two independent traffic
// classes). Each tier is an M/M/1-like station: its mean response time is
// T = 1/(μ − load) where μ is the tier's service capacity and load is a
// linear mix of the two arrival rates. The SLA bounds each tier's response
// time; the operator wants to know how much the traffic vector can grow in
// ANY direction before an SLA is violated.
//
// Run with:
//
//	go run ./examples/customsystem
package main

import (
	"fmt"
	"log"

	robustness "fepia"
)

// tier describes one station: capacity, traffic mix, and SLA bound.
type tier struct {
	name     string
	mu       float64    // service capacity (requests/s)
	mix      [2]float64 // how much of (λ_web, λ_api) hits this tier
	slaLimit float64    // max tolerable mean response time (s)
}

func main() {
	log.SetFlags(0)

	tiers := []tier{
		{name: "edge", mu: 1200, mix: [2]float64{1.0, 1.0}, slaLimit: 0.010},
		{name: "app", mu: 900, mix: [2]float64{0.4, 1.0}, slaLimit: 0.020},
		// The db tier has a tight SLA: its robust headroom is small even
		// though its utilisation is the lowest of the three.
		{name: "db", mu: 500, mix: [2]float64{0.1, 0.6}, slaLimit: 0.010},
	}

	// FePIA step 2 (P): the perturbation parameter is the traffic vector,
	// assumed at the current measured rates.
	p := robustness.Perturbation{
		Name:  "λ",
		Orig:  []float64{300, 200}, // (λ_web, λ_api) requests/s
		Units: "requests/s",
	}

	// FePIA steps 1+3 (Fe, I): response-time features with convex impact
	// functions T(λ) = 1/(μ − mix·λ), valid while the tier is stable.
	features := make([]robustness.Feature, 0, len(tiers))
	for _, tr := range tiers {
		tr := tr
		features = append(features, robustness.Feature{
			Name: "T(" + tr.name + ")",
			Impact: &robustness.FuncImpact{
				N: 2,
				F: func(lam []float64) float64 {
					load := tr.mix[0]*lam[0] + tr.mix[1]*lam[1]
					if load >= tr.mu {
						return tr.slaLimit * 1e6 // saturated: far past any bound
					}
					return 1 / (tr.mu - load)
				},
				Convex: true, // 1/(μ−x) is convex on the stable region
			},
			Bounds: robustness.NoMin(tr.slaLimit),
		})
	}

	// FePIA step 4 (A).
	a, err := robustness.Analyze(features, p, robustness.Options{})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Print(a)

	cf := a.CriticalFeature()
	fmt.Println()
	fmt.Printf("The traffic vector can move %.1f requests/s in ANY direction before an\n", a.Robustness)
	fmt.Printf("SLA is violated; the first constraint to break is %s, at traffic\n", cf.Feature)
	fmt.Printf("λ* = (%.1f, %.1f).\n\n", cf.Boundary[0], cf.Boundary[1])

	// Contrast with a naive per-tier utilisation report at the operating
	// point, which — like slack in §4.3 — says nothing about directions.
	fmt.Println("utilisation at the operating point (the 'slack view'):")
	for _, tr := range tiers {
		load := tr.mix[0]*p.Orig[0] + tr.mix[1]*p.Orig[1]
		fmt.Printf("  %-5s %.0f/%.0f = %.1f%%\n", tr.name, load, tr.mu, 100*load/tr.mu)
	}
	fmt.Println("\nUtilisation ranks edge as the busiest tier and db as the most relaxed,")
	fmt.Println("yet the robustness analysis shows the db SLA breaks first: like slack")
	fmt.Println("in §4.3 of the paper, a point measure of headroom says nothing about")
	fmt.Println("the direction-worst distance to a violation.")
}
