// HiPer-D walkthrough (§3.2): generate the paper's experimental instance
// (3 sensors with the published rates and initial loads, 20 communicating
// applications on 19 paths, 5 multitasking machines), evaluate a mapping's
// robustness against sensor-load increases, and contrast it with slack.
//
// Run with:
//
//	go run ./examples/hiperd
package main

import (
	"fmt"
	"log"
	"sort"

	robustness "fepia"
)

func main() {
	log.SetFlags(0)

	sys, err := robustness.GenerateHiPerD(2003, robustness.PaperHiPerDParams())
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("instance: %d sensors, %d applications, %d machines, %d paths\n",
		sys.Sensors(), sys.Applications(), sys.Machines, len(sys.Paths))
	fmt.Printf("sensor rates R = %v (throughput bounds 1/R)\n", sys.SensorRates)
	fmt.Printf("initial loads λ^orig = %v objects/data set\n\n", sys.OrigLoads)

	// Evaluate a handful of random mappings and report the best and worst
	// by robustness.
	type scored struct {
		seed int64
		res  robustness.HiPerDResult
	}
	var all []scored
	for seed := int64(1); seed <= 25; seed++ {
		m := robustness.RandomHiPerDMapping(seed, sys)
		res, err := robustness.EvaluateHiPerD(sys, m)
		if err != nil {
			log.Fatal(err)
		}
		if res.Slack > 0 {
			all = append(all, scored{seed, res})
		}
	}
	if len(all) == 0 {
		log.Fatal("no feasible mapping among the samples")
	}
	sort.Slice(all, func(a, b int) bool { return all[a].res.Robustness < all[b].res.Robustness })

	worst, best := all[0], all[len(all)-1]
	for _, c := range []struct {
		label string
		s     scored
	}{
		{"least robust feasible mapping", worst},
		{"most robust feasible mapping", best},
	} {
		fmt.Printf("%s (mapping seed %d):\n", c.label, c.s.seed)
		fmt.Printf("  robustness ρ(Φ, λ) = %.0f objects/data set\n", c.s.res.Robustness)
		fmt.Printf("  slack              = %.4f\n", c.s.res.Slack)
		if cf := c.s.res.Analysis.CriticalFeature(); cf != nil {
			fmt.Printf("  binding feature    = %s (%s)\n", cf.Feature, cf.Kind)
		}
		fmt.Printf("  λ* at violation    = %.0f\n\n", c.s.res.BoundaryLoads)
	}

	fmt.Println("Interpretation: the system tolerates ANY combination of sensor-load")
	fmt.Println("increases whose Euclidean norm stays below ρ; at λ* the binding")
	fmt.Println("throughput or latency constraint is met with equality. Slack, by")
	fmt.Println("contrast, only describes the operating point — two mappings with the")
	fmt.Println("same slack can differ several-fold in ρ (run cmd/table2 to see).")
}
