// Package robustness is the public facade of this repository: a Go
// implementation of the FePIA procedure and the robustness metric of
//
//	S. Ali, A. A. Maciejewski, H. J. Siegel, and J.-K. Kim,
//	"Definition of a Robustness Metric for Resource Allocation",
//	IPPS/IPDPS 2003.
//
// A mapping of applications to machines is robust, with respect to a set
// of performance features Φ and against a perturbation parameter π, when
// every feature stays within its tolerable bounds as π drifts from its
// assumed value. The paper quantifies "how robust": the robustness radius
// r_μ(φ, π) (Eq. 1) is the smallest Euclidean distance from the assumed
// operating point π^orig to any boundary relationship f(π) = β, and the
// robustness metric ρ_μ(Φ, π) (Eq. 2) is the minimum radius over Φ.
//
// # Deriving a metric (the FePIA procedure)
//
//  1. Fe — list the performance features as Feature values with their
//     tolerable bounds ⟨β^min, β^max⟩;
//  2. P  — describe the uncertain quantity as a Perturbation with its
//     assumed operating point;
//  3. I  — give each feature an Impact function f(π) (use LinearImpact for
//     affine relationships, FuncImpact otherwise);
//  4. A  — call Analyze; the result carries every radius, the binding
//     ("critical") feature, the boundary point π*, and ρ.
//
// Affine impacts are solved exactly with the point-to-hyperplane formula;
// convex impacts with a sequential-linearisation solver; declared
// non-convex impacts additionally run a simulated-annealing fallback, as
// §3.2 of the paper sanctions.
//
// # Batch analysis and concurrency
//
// Comparing many mappings is the metric's whole point (§4 evaluates 1000
// random mappings per experiment), and every radius of Eq. 1 is an
// independent subproblem. AnalyzeBatch evaluates many analyses over a
// bounded worker pool with deterministic, input-ordered results and
// context cancellation; an optional RadiusCache memoises structurally
// identical radius subproblems across the batch with LRU eviction and
// hit/miss accounting.
//
// Concurrency safety: Analyze, ComputeRadius, and AnalyzeBatch are safe
// to call from multiple goroutines, and a single *RadiusCache may be
// shared across concurrent AnalyzeBatch calls. The inputs themselves must
// not be mutated while an analysis is running, and custom Impact
// implementations must be safe for concurrent Eval/Gradient calls (pure
// functions — the paper's impacts all are).
//
// # Contexts, typed errors, and the wire format
//
// Every analysis entry point has a context-aware form (AnalyzeContext,
// MultiAnalyzeContext, AnalyzeBatch) — the plain functions delegate with
// context.Background(). Failures split into two typed families: client
// mistakes are ValidationError values matching ErrInvalidSpec, engine
// failures are SolveError values; classify with errors.As. ParseSpec and
// EncodeAnalysis expose the JSON schema shared by the CLIs and the fepiad
// HTTP service (cmd/fepiad, docs/SERVICE.md), which serves this exact
// analysis — byte-identical results — as an online oracle.
//
// The two systems the paper derives metrics for are available as
// sub-analyses: the independent-application allocation of §3.1 through
// EvaluateIndependentAllocation (closed-form Eq. 6/7) and the HiPer-D
// model of §3.2 through the HiPerD* aliases. The experiment harness that
// regenerates the paper's figures and table lives in internal/experiments
// with runnable front-ends under cmd/.
package robustness

import (
	"context"

	"fepia/internal/batch"
	"fepia/internal/cluster"
	"fepia/internal/core"
	"fepia/internal/etcgen"
	"fepia/internal/hcs"
	"fepia/internal/hiperd"
	"fepia/internal/indalloc"
	"fepia/internal/spec"
	"fepia/internal/stats"
	"fepia/internal/vecmath"
)

// Core FePIA vocabulary (step 1–3 inputs, step 4 outputs).
type (
	// Feature is a performance feature φ ∈ Φ with bounds and impact.
	Feature = core.Feature
	// Bounds is the tolerable variation ⟨β^min, β^max⟩.
	Bounds = core.Bounds
	// Perturbation is a perturbation parameter π ∈ Π.
	Perturbation = core.Perturbation
	// Impact is the relationship φ = f(π).
	Impact = core.Impact
	// LinearImpact is an affine impact function (exact analysis).
	LinearImpact = core.LinearImpact
	// FuncImpact adapts an arbitrary function as an impact.
	FuncImpact = core.FuncImpact
	// Options tunes the analysis (norm choice, solver budgets).
	Options = core.Options
	// RadiusResult is one feature's robustness radius r_μ(φ, π).
	RadiusResult = core.RadiusResult
	// Analysis is the aggregate step-4 outcome with ρ_μ(Φ, π).
	Analysis = core.Analysis
	// BoundKind says which boundary relationship binds a radius.
	BoundKind = core.BoundKind
	// ParameterSet couples a perturbation with the features it affects.
	ParameterSet = core.ParameterSet
	// MultiAnalysis aggregates analyses over several parameters.
	MultiAnalysis = core.MultiAnalysis
	// JointPerturbation concatenates several perturbation parameters for
	// simultaneous analysis (the case the paper defers to [1]).
	JointPerturbation = core.JointPerturbation
	// BlockImpact lifts a single-parameter impact into a joint space.
	BlockImpact = core.BlockImpact
)

// Re-exported BoundKind values.
const (
	AtMax           = core.AtMax
	AtMin           = core.AtMin
	AlreadyViolated = core.AlreadyViolated
	Unreachable     = core.Unreachable
)

// NewLinearImpact validates and builds the affine impact
// f(π) = coeffs·π + offset.
func NewLinearImpact(coeffs []float64, offset float64) (*LinearImpact, error) {
	return core.NewLinearImpact(coeffs, offset)
}

// NoMin returns one-sided bounds with only an upper limit β^max.
func NoMin(max float64) Bounds { return core.NoMin(max) }

// NoMax returns one-sided bounds with only a lower limit β^min.
func NoMax(min float64) Bounds { return core.NoMax(min) }

// ComputeRadius evaluates Eq. 1 for a single feature.
func ComputeRadius(f Feature, p Perturbation, opts Options) (RadiusResult, error) {
	return core.ComputeRadius(f, p, opts)
}

// Analyze evaluates Eq. 2: every feature's radius and their minimum ρ.
// It delegates to AnalyzeContext with context.Background(); callers that
// need to bound or cancel a solve (servers, schedulers) should pass their
// own context to AnalyzeContext.
func Analyze(features []Feature, p Perturbation, opts Options) (Analysis, error) {
	return core.Analyze(features, p, opts)
}

// AnalyzeContext is Analyze under a context: cancellation or deadline
// expiry is observed between per-feature radius computations, and the ctx
// error is returned verbatim (match it with errors.Is against
// context.Canceled / context.DeadlineExceeded).
func AnalyzeContext(ctx context.Context, features []Feature, p Perturbation, opts Options) (Analysis, error) {
	return core.AnalyzeContext(ctx, features, p, opts)
}

// MultiAnalyze runs Analyze per perturbation parameter — the
// multi-parameter extension the paper defers to [1]. It delegates to
// MultiAnalyzeContext with context.Background().
func MultiAnalyze(sets []ParameterSet, opts Options) (MultiAnalysis, error) {
	return core.MultiAnalyze(sets, opts)
}

// MultiAnalyzeContext is MultiAnalyze under a context, threaded into every
// per-parameter analysis.
func MultiAnalyzeContext(ctx context.Context, sets []ParameterSet, opts Options) (MultiAnalysis, error) {
	return core.MultiAnalyzeContext(ctx, sets, opts)
}

// Batch-analysis vocabulary (see the package comment's batch section).
type (
	// BatchJob is one analysis unit for AnalyzeBatch: a feature set Φ
	// against one perturbation parameter π.
	BatchJob = batch.Job
	// BatchOptions tunes AnalyzeBatch: worker count, radius cache, and
	// the per-analysis core options.
	BatchOptions = batch.Options
	// RadiusCache memoises per-feature radius computations with LRU
	// eviction; safe for concurrent use and for sharing across batches.
	RadiusCache = batch.Cache
	// CacheStats reports a cache's hit/miss counters and occupancy.
	CacheStats = batch.CacheStats
)

// NewRadiusCache returns a radius memoization cache bounded to the given
// number of entries (≤ 0 selects the default capacity). The cache is
// sharded for multi-core scaling with a shard count derived from
// GOMAXPROCS; use NewRadiusCacheSharded to pin it.
func NewRadiusCache(capacity int) *RadiusCache { return batch.NewCache(capacity) }

// NewRadiusCacheSharded returns a radius cache with an explicit shard
// count (rounded up to a power of two, clamped to the entry budget;
// ≤ 0 selects the GOMAXPROCS-derived default). Results are identical
// for any shard count — sharding only spreads lock contention —
// and concurrent misses on one subproblem are coalesced into a single
// solve regardless of sharding.
func NewRadiusCacheSharded(capacity, shards int) *RadiusCache {
	return batch.NewCacheSharded(capacity, shards)
}

// AnalyzeBatch evaluates every job concurrently over a bounded worker
// pool and returns one Analysis per job, in input order. Each result is
// identical to Analyze(job.Features, job.Perturbation, opts.Core) — only
// the schedule (and, with a cache, the amount of repeated solving)
// differs. The first failing job cancels the batch, as does ctx.
func AnalyzeBatch(ctx context.Context, jobs []BatchJob, opts BatchOptions) ([]Analysis, error) {
	return batch.Analyze(ctx, jobs, opts)
}

// ConcatPerturbations builds a joint perturbation parameter from several
// components, enabling genuinely simultaneous variation (features may mix
// blocks freely). See JointWeights for making blocks with different units
// commensurable.
func ConcatPerturbations(name string, ps ...Perturbation) (JointPerturbation, error) {
	return core.ConcatPerturbations(name, ps...)
}

// NewBlockImpact reuses a single-parameter impact inside a joint analysis
// (all other components are ignored).
func NewBlockImpact(j JointPerturbation, block int, inner Impact) (*BlockImpact, error) {
	return core.NewBlockImpact(j, block, inner)
}

// JointWeights builds a weighted ℓ₂ norm that makes a joint parameter's
// blocks commensurable: distance 1 ≈ one characteristic unit of relative
// change in any block.
func JointWeights(j JointPerturbation) (Norm, error) {
	return core.JointWeights(j)
}

// Typed errors. Every analysis failure is one of two families: the input
// was wrong (ValidationError, matching ErrInvalidSpec — a client mistake),
// or the engine failed on a valid input (SolveError — the minimum-norm
// solver could not finish). Services map the first to HTTP 400 and the
// second to HTTP 500 with errors.As; cmd/fepiad does exactly that.
type (
	// ValidationError is a spec parse/validation failure with the JSON
	// field path of the offending value.
	ValidationError = spec.ValidationError
	// SolveError is an engine-side solver failure while computing a
	// robustness radius.
	SolveError = core.SolveError
)

// Error sentinels, matched with errors.Is.
var (
	// ErrInvalidSpec matches every ValidationError.
	ErrInvalidSpec = spec.ErrInvalidSpec
	// ErrNormUnsupported is returned when a non-ℓ₂ norm is combined with
	// a non-linear impact function.
	ErrNormUnsupported = core.ErrNormUnsupported
)

// Wire format. ParseSpec and EncodeAnalysis are the JSON schema shared by
// library users, the CLIs, and the fepiad HTTP service: a SystemSpec
// document in, an AnalysisJSON result out (see internal/spec for the
// format reference, docs/SERVICE.md for the HTTP endpoints).
type (
	// SystemSpec is a parsed, validated system description ready for
	// analysis (Features, Perturbation, Options).
	SystemSpec = spec.System
	// SpecFile is the raw decoded form of a spec document, useful for
	// assembling batch requests programmatically.
	SpecFile = spec.File
	// AnalysisJSON is the machine-readable analysis result document.
	AnalysisJSON = spec.ResultJSON
	// RadiusJSON is one feature's radius inside an AnalysisJSON.
	RadiusJSON = spec.RadiusJSON
)

// ParseSpec decodes and validates a JSON system description (FePIA steps
// 1–3 as data). Failures are *ValidationError values carrying the JSON
// field path of the offending value.
func ParseSpec(data []byte) (*SystemSpec, error) { return spec.Parse(data) }

// EncodeAnalysis converts an analysis into the machine-readable JSON
// result document — the same shape fepiad serves. Infinite radii are
// emitted as −1 with the bound "unreachable" to stay plain-JSON.
func EncodeAnalysis(name string, a Analysis) AnalysisJSON { return spec.Encode(name, a) }

// Cluster serving. fepiad scales horizontally as a ring of nodes, each
// owning a consistent-hash arc of radius-cache keys; requests for keys
// a node does not own are forwarded to the owner, and every /v1 result
// carries a ResponseMeta block attributing the serving node, relay, and
// cache provenance (docs/CLUSTER.md). These aliases let clients of a
// fepiad cluster decode response metadata, reason about ring placement,
// and classify peer failures without importing internal packages.
type (
	// ResponseMeta is the serving-metadata block on every /v1 result:
	// which node answered, whether the request was forwarded to its ring
	// owner or served degraded, and how the radius cache was involved
	// (miss, coalesced, kernel, hit).
	ResponseMeta = spec.ResponseMeta
	// ClusterPeer is one node of a fepiad ring: an identity plus the
	// base URL peers reach it on.
	ClusterPeer = cluster.Peer
	// ClusterConfig describes a node's view of the ring — self identity,
	// full membership, and the forwarding retry/breaker tuning.
	ClusterConfig = cluster.Config
	// ClusterRing is the consistent-hash ring assigning route keys to
	// node identities; all nodes with the same membership agree on every
	// assignment.
	ClusterRing = cluster.Ring
	// PeerError reports a failed forward to a ring peer, after retries.
	// fepiad maps it to 502 (peer unreachable) or 503 (peer circuit
	// open); match with errors.As.
	PeerError = cluster.PeerError
)

// NewClusterRing builds the consistent-hash ring over the given node
// identities with replicas virtual points per node (0 = default).
// Membership order does not matter: every permutation yields the same
// ring, which is what lets each node compute ownership locally.
func NewClusterRing(nodes []string, replicas int) (*ClusterRing, error) {
	return cluster.NewRing(nodes, replicas)
}

// ParseClusterPeers decodes the -peers flag form "id=url,id=url,..."
// into ring membership.
func ParseClusterPeers(s string) ([]ClusterPeer, error) { return cluster.ParsePeers(s) }

// Norm is the perturbation-space norm interface accepted by Options.
type Norm = vecmath.Norm

// Norms accepted by Options.Norm. The paper fixes ℓ₂; the others are an
// extension for sensitivity studies (supported analytically for linear
// impacts via dual norms).
type (
	// L2 is the Euclidean norm of Eq. 1.
	L2 = vecmath.L2
	// L1 is the Manhattan norm.
	L1 = vecmath.L1
	// LInf is the maximum norm.
	LInf = vecmath.LInf
)

// IndependentAllocation is the §3.1 analysis of one mapping.
type IndependentAllocation = indalloc.Result

// EvaluateIndependentAllocation runs the §3.1 closed-form analysis
// (Eqs. 6–7): applications with the given ETC matrix (etc[i][j] = time of
// application i on machine j), assignment assign[i] = machine of
// application i, and tolerance τ ≥ 1 on the predicted makespan.
func EvaluateIndependentAllocation(etc [][]float64, assign []int, tau float64) (IndependentAllocation, error) {
	inst, err := hcs.NewInstance(etcgen.Matrix(etc))
	if err != nil {
		return IndependentAllocation{}, err
	}
	m, err := hcs.NewMapping(inst, assign)
	if err != nil {
		return IndependentAllocation{}, err
	}
	return indalloc.Evaluate(m, tau)
}

// HiPer-D (§3.2) vocabulary.
type (
	// HiPerDSystem is a HiPer-D problem instance.
	HiPerDSystem = hiperd.System
	// HiPerDMapping assigns applications to machines.
	HiPerDMapping = hiperd.Mapping
	// HiPerDResult is the §3.2 analysis: ρ, slack, λ*.
	HiPerDResult = hiperd.Result
	// HiPerDGenParams configures the §4.3 instance generator.
	HiPerDGenParams = hiperd.GenParams
)

// PaperHiPerDParams returns the §4.3 instance configuration (3 sensors
// with the published rates and loads, 20 applications, 19 paths,
// 5 machines).
func PaperHiPerDParams() HiPerDGenParams { return hiperd.PaperGenParams() }

// GenerateHiPerD samples a HiPer-D instance deterministically from seed.
func GenerateHiPerD(seed int64, params HiPerDGenParams) (*HiPerDSystem, error) {
	return hiperd.GenerateSystem(stats.NewRNG(seed), params)
}

// RandomHiPerDMapping draws a uniformly random mapping (the §4.1
// generator).
func RandomHiPerDMapping(seed int64, s *HiPerDSystem) HiPerDMapping {
	return hiperd.RandomMapping(stats.NewRNG(seed), s)
}

// EvaluateHiPerD runs the full §3.2 analysis of a mapping.
func EvaluateHiPerD(s *HiPerDSystem, m HiPerDMapping) (HiPerDResult, error) {
	return hiperd.Evaluate(s, m)
}
