package robustness_test

import (
	"context"
	"fmt"
	"log"

	robustness "fepia"
)

// The §2 running example: two machines whose finishing times must stay
// within 1.3× the predicted makespan against ETC estimation errors.
func ExampleAnalyze() {
	f0, err := robustness.NewLinearImpact([]float64{1, 1, 0}, 0) // m0 runs a0, a1
	if err != nil {
		log.Fatal(err)
	}
	f1, err := robustness.NewLinearImpact([]float64{0, 0, 1}, 0) // m1 runs a2
	if err != nil {
		log.Fatal(err)
	}
	features := []robustness.Feature{
		{Name: "finish(m0)", Impact: f0, Bounds: robustness.NoMin(13)},
		{Name: "finish(m1)", Impact: f1, Bounds: robustness.NoMin(13)},
	}
	p := robustness.Perturbation{Name: "C", Orig: []float64{6, 4, 8}, Units: "seconds"}
	a, err := robustness.Analyze(features, p, robustness.Options{})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("rho = %.4f %s\n", a.Robustness, a.Units)
	fmt.Printf("critical feature: %s\n", a.CriticalFeature().Feature)
	// Output:
	// rho = 2.1213 seconds
	// critical feature: finish(m0)
}

// A single feature's robustness radius: the distance from the operating
// point to the hyperplane where the bound is met with equality.
func ExampleComputeRadius() {
	impact, err := robustness.NewLinearImpact([]float64{1, 2}, 0)
	if err != nil {
		log.Fatal(err)
	}
	f := robustness.Feature{Name: "load", Impact: impact, Bounds: robustness.NoMin(10)}
	p := robustness.Perturbation{Name: "x", Orig: []float64{0, 0}}
	r, err := robustness.ComputeRadius(f, p, robustness.Options{})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("radius = %.4f (%s)\n", r.Radius, r.Kind)
	// Output:
	// radius = 4.4721 (beta-max)
}

// The §3.1 closed form (Eq. 6/7): makespan robustness of a concrete
// mapping against ETC errors.
func ExampleEvaluateIndependentAllocation() {
	etc := [][]float64{
		{1, 9}, // a0: fast on m0
		{2, 9}, // a1
		{9, 3}, // a2: fast on m1
		{9, 4}, // a3
	}
	res, err := robustness.EvaluateIndependentAllocation(etc, []int{0, 0, 1, 1}, 1.2)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("predicted makespan = %g\n", res.PredictedMakespan)
	fmt.Printf("rho = %.4f on machine m%d\n", res.Robustness, res.CriticalMachine)
	// Output:
	// predicted makespan = 7
	// rho = 0.9899 on machine m1
}

// Scoring several candidate mappings at once: AnalyzeBatch fans the
// analyses over a bounded worker pool and returns input-ordered results,
// while a shared RadiusCache skips radius subproblems it has already
// solved — here jobs 0 and 2 are the same mapping, so its two radii are
// cache hits the second time.
func ExampleAnalyzeBatch() {
	p := robustness.Perturbation{Name: "C", Orig: []float64{6, 4, 8}, Units: "seconds"}
	job := func(rows ...[]float64) robustness.BatchJob {
		j := robustness.BatchJob{Perturbation: p}
		for i, coeffs := range rows {
			impact, err := robustness.NewLinearImpact(coeffs, 0)
			if err != nil {
				log.Fatal(err)
			}
			j.Features = append(j.Features, robustness.Feature{
				Name:   fmt.Sprintf("finish(m%d)", i),
				Impact: impact,
				Bounds: robustness.NoMin(13),
			})
		}
		return j
	}
	jobs := []robustness.BatchJob{
		job([]float64{1, 1, 0}, []float64{0, 0, 1}), // a0,a1 → m0; a2 → m1
		job([]float64{1, 0, 0}, []float64{0, 1, 1}), // a0 → m0; a1,a2 → m1
		job([]float64{1, 1, 0}, []float64{0, 0, 1}), // mapping 0 again
	}
	cache := robustness.NewRadiusCache(0)
	// Workers: 1 keeps the hit/miss split deterministic for this example's
	// output; the analyses themselves are identical for any worker count.
	res, err := robustness.AnalyzeBatch(context.Background(), jobs,
		robustness.BatchOptions{Workers: 1, Cache: cache})
	if err != nil {
		log.Fatal(err)
	}
	for i, a := range res {
		fmt.Printf("mapping %d: rho = %.4f %s\n", i, a.Robustness, a.Units)
	}
	st := cache.Stats()
	fmt.Printf("cache: %d hits, %d misses\n", st.Hits, st.Misses)
	// Output:
	// mapping 0: rho = 2.1213 seconds
	// mapping 1: rho = 0.7071 seconds
	// mapping 2: rho = 2.1213 seconds
	// cache: 2 hits, 4 misses
}

// Simultaneous perturbation of two parameters (the case the paper defers
// to its reference [1]): execution times and a machine slowdown factor.
func ExampleConcatPerturbations() {
	c := robustness.Perturbation{Name: "C", Orig: []float64{6, 4}, Units: "s"}
	s := robustness.Perturbation{Name: "s", Orig: []float64{1}}
	joint, err := robustness.ConcatPerturbations("", c, s)
	if err != nil {
		log.Fatal(err)
	}
	// F(C, s) = s·(C0 + C1): bilinear, analysed with the annealing pass.
	impact := &robustness.FuncImpact{
		N: 3,
		F: func(x []float64) float64 { return x[2] * (x[0] + x[1]) },
	}
	a, err := robustness.Analyze([]robustness.Feature{
		{Name: "F", Impact: impact, Bounds: robustness.NoMin(13)},
	}, joint.Perturbation, robustness.Options{})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("joint parameter %s has %d components\n", joint.Name, len(joint.Orig))
	fmt.Printf("joint rho is positive and below the pure-slowdown excursion 0.3: %v\n",
		a.Robustness > 0 && a.Robustness <= 0.3+1e-9)
	// Output:
	// joint parameter C⊕s has 3 components
	// joint rho is positive and below the pure-slowdown excursion 0.3: true
}

// A system described as JSON data instead of Go code: the same schema the
// fepia CLI reads and the fepiad HTTP service serves, so a spec document
// analysed in-process, on the command line, or over POST /v1/analyze
// yields the identical result.
func ExampleParseSpec() {
	doc := []byte(`{
	  "name": "two machines",
	  "perturbation": {"name": "C", "orig": [6, 4, 8], "units": "seconds"},
	  "features": [
	    {"name": "finish(m0)", "max": 13, "impact": {"type": "linear", "coeffs": [1, 1, 0]}},
	    {"name": "finish(m1)", "max": 13, "impact": {"type": "linear", "coeffs": [0, 0, 1]}}
	  ]
	}`)
	sys, err := robustness.ParseSpec(doc)
	if err != nil {
		log.Fatal(err)
	}
	a, err := robustness.Analyze(sys.Features, sys.Perturbation, sys.Options)
	if err != nil {
		log.Fatal(err)
	}
	out := robustness.EncodeAnalysis(sys.Name, a)
	fmt.Printf("rho = %.4f %s\n", out.Robustness, out.Units)
	fmt.Printf("critical feature: %s\n", out.Critical)
	// Output:
	// rho = 2.1213 seconds
	// critical feature: finish(m0)
}

// A client's view of a fepiad cluster: the same ring arithmetic the
// nodes use (any membership order yields the same ring) plus the
// ResponseMeta block every /v1 result carries, so a caller can tell
// which node answered, whether the request was relayed to its ring
// owner, and whether the answer came warm from the radius cache.
func ExampleNewClusterRing() {
	peers, err := robustness.ParseClusterPeers("n0=http://a:8080,n1=http://b:8080,n2=http://c:8080")
	if err != nil {
		log.Fatal(err)
	}
	ids := make([]string, len(peers))
	for i, p := range peers {
		ids[i] = p.ID
	}
	ring, err := robustness.NewClusterRing(ids, 0)
	if err != nil {
		log.Fatal(err)
	}

	// The route key of a parsed spec document decides the owning node —
	// structurally identical systems always land on the same warm cache.
	sys, err := robustness.ParseSpec([]byte(`{
	  "perturbation": {"orig": [300, 200]},
	  "features": [{"max": 1000, "impact": {"type": "linear", "coeffs": [1, 1]}}]
	}`))
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("owner stays fixed: %v\n", ring.Owner(sys.RouteKey) == ring.Owner(sys.RouteKey))

	// Decoding the meta block of a forwarded /v1/analyze response.
	meta := robustness.ResponseMeta{Node: "n2", Forwarded: true, Cache: "hit"}
	fmt.Printf("served by %s (forwarded=%v, cache=%s)\n", meta.Node, meta.Forwarded, meta.Cache)
	// Output:
	// owner stays fixed: true
	// served by n2 (forwarded=true, cache=hit)
}
