package robustness_test

import (
	"fmt"
	"log"

	robustness "fepia"
)

// The §2 running example: two machines whose finishing times must stay
// within 1.3× the predicted makespan against ETC estimation errors.
func ExampleAnalyze() {
	f0, err := robustness.NewLinearImpact([]float64{1, 1, 0}, 0) // m0 runs a0, a1
	if err != nil {
		log.Fatal(err)
	}
	f1, err := robustness.NewLinearImpact([]float64{0, 0, 1}, 0) // m1 runs a2
	if err != nil {
		log.Fatal(err)
	}
	features := []robustness.Feature{
		{Name: "finish(m0)", Impact: f0, Bounds: robustness.NoMin(13)},
		{Name: "finish(m1)", Impact: f1, Bounds: robustness.NoMin(13)},
	}
	p := robustness.Perturbation{Name: "C", Orig: []float64{6, 4, 8}, Units: "seconds"}
	a, err := robustness.Analyze(features, p, robustness.Options{})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("rho = %.4f %s\n", a.Robustness, a.Units)
	fmt.Printf("critical feature: %s\n", a.CriticalFeature().Feature)
	// Output:
	// rho = 2.1213 seconds
	// critical feature: finish(m0)
}

// A single feature's robustness radius: the distance from the operating
// point to the hyperplane where the bound is met with equality.
func ExampleComputeRadius() {
	impact, err := robustness.NewLinearImpact([]float64{1, 2}, 0)
	if err != nil {
		log.Fatal(err)
	}
	f := robustness.Feature{Name: "load", Impact: impact, Bounds: robustness.NoMin(10)}
	p := robustness.Perturbation{Name: "x", Orig: []float64{0, 0}}
	r, err := robustness.ComputeRadius(f, p, robustness.Options{})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("radius = %.4f (%s)\n", r.Radius, r.Kind)
	// Output:
	// radius = 4.4721 (beta-max)
}

// The §3.1 closed form (Eq. 6/7): makespan robustness of a concrete
// mapping against ETC errors.
func ExampleEvaluateIndependentAllocation() {
	etc := [][]float64{
		{1, 9}, // a0: fast on m0
		{2, 9}, // a1
		{9, 3}, // a2: fast on m1
		{9, 4}, // a3
	}
	res, err := robustness.EvaluateIndependentAllocation(etc, []int{0, 0, 1, 1}, 1.2)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("predicted makespan = %g\n", res.PredictedMakespan)
	fmt.Printf("rho = %.4f on machine m%d\n", res.Robustness, res.CriticalMachine)
	// Output:
	// predicted makespan = 7
	// rho = 0.9899 on machine m1
}

// Simultaneous perturbation of two parameters (the case the paper defers
// to its reference [1]): execution times and a machine slowdown factor.
func ExampleConcatPerturbations() {
	c := robustness.Perturbation{Name: "C", Orig: []float64{6, 4}, Units: "s"}
	s := robustness.Perturbation{Name: "s", Orig: []float64{1}}
	joint, err := robustness.ConcatPerturbations("", c, s)
	if err != nil {
		log.Fatal(err)
	}
	// F(C, s) = s·(C0 + C1): bilinear, analysed with the annealing pass.
	impact := &robustness.FuncImpact{
		N: 3,
		F: func(x []float64) float64 { return x[2] * (x[0] + x[1]) },
	}
	a, err := robustness.Analyze([]robustness.Feature{
		{Name: "F", Impact: impact, Bounds: robustness.NoMin(13)},
	}, joint.Perturbation, robustness.Options{})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("joint parameter %s has %d components\n", joint.Name, len(joint.Orig))
	fmt.Printf("joint rho is positive and below the pure-slowdown excursion 0.3: %v\n",
		a.Robustness > 0 && a.Robustness <= 0.3+1e-9)
	// Output:
	// joint parameter C⊕s has 3 components
	// joint rho is positive and below the pure-slowdown excursion 0.3: true
}
