#!/usr/bin/env sh
# checklinks.sh — verify every intra-repo markdown link in README.md and
# docs/*.md points at a file that exists.
#
# External links (http/https/mailto) and pure anchors (#section) are
# skipped; relative targets are resolved against the linking file's
# directory with any #fragment stripped. CI runs this in the docs job so
# a renamed file or a typoed path fails the build instead of shipping a
# dead link.
#
#   ./scripts/checklinks.sh
set -eu

cd "$(dirname "$0")/.."

python3 - README.md docs/*.md <<'EOF'
import os, re, sys

# Inline markdown links: [text](target). Reference-style definitions
# ([name]: target) are rare here and intentionally out of scope.
LINK = re.compile(r"\]\(([^)\s]+)\)")

bad = 0
for path in sys.argv[1:]:
    base = os.path.dirname(path)
    with open(path, encoding="utf-8") as fh:
        for lineno, line in enumerate(fh, 1):
            for target in LINK.findall(line):
                if target.startswith(("http://", "https://", "mailto:", "#")):
                    continue
                rel = target.split("#", 1)[0]
                if not rel:
                    continue
                resolved = os.path.normpath(os.path.join(base, rel))
                if not os.path.exists(resolved):
                    print(f"{path}:{lineno}: broken link {target} -> {resolved}", file=sys.stderr)
                    bad += 1
if bad:
    print(f"checklinks: {bad} broken link(s)", file=sys.stderr)
    sys.exit(1)
print("checklinks: all intra-repo markdown links resolve")
EOF
