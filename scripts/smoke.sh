#!/bin/sh
# smoke.sh — boot a real fepiad binary, drive one analysis through it,
# and verify the observability surfaces answer: /healthz, /metrics
# (Prometheus text exposition), /debug/vars, and /debug/traces with the
# request's spans — then stream a short /v1/watch session and verify the
# incremental frames and the fepiad_watch_* counters on both metric
# surfaces. Then boot a 2-node consistent-hash ring and verify
# cluster serving: /v1/ring membership, owner forwarding with the
# X-Fepiad-Forwarded / X-Fepiad-Node headers, the response meta block
# (docs/CLUSTER.md), cross-node trace stitching on the ingress
# /debug/traces, the federated /v1/cluster/status and
# /metrics?federate=1 views, and the SLO burn-rate gauges
# (docs/OBSERVABILITY.md). Exits non-zero on the first failed check.
set -eu

PORT="${FEPIAD_SMOKE_PORT:-18080}"
BASE="http://127.0.0.1:$PORT"
TMP="$(mktemp -d)"
SERVER_PID=""
RING_A_PID=""
RING_B_PID=""
trap 'kill "${SERVER_PID:-}" "${RING_A_PID:-}" "${RING_B_PID:-}" 2>/dev/null || true; rm -rf "$TMP"' EXIT

echo "smoke: building fepiad"
go build -o "$TMP/fepiad" ./cmd/fepiad

echo "smoke: starting fepiad on :$PORT"
"$TMP/fepiad" -addr "127.0.0.1:$PORT" -log-format text >"$TMP/fepiad.log" 2>&1 &
SERVER_PID=$!

ok=0
for _ in $(seq 1 50); do
    if curl -fsS "$BASE/healthz" >/dev/null 2>&1; then ok=1; break; fi
    sleep 0.1
done
if [ "$ok" != 1 ]; then
    echo "smoke: fepiad never became healthy" >&2
    cat "$TMP/fepiad.log" >&2
    exit 1
fi

echo "smoke: POST /v1/analyze"
cat >"$TMP/spec.json" <<'EOF'
{
  "name": "smoke",
  "perturbation": {"name": "λ", "orig": [300, 200], "units": "req/s"},
  "features": [
    {"name": "load(edge)", "max": 1100,
     "impact": {"type": "linear", "coeffs": [1, 1], "offset": 0}}
  ]
}
EOF
curl -fsS -X POST -H "Content-Type: application/json" -H "X-Request-Id: smoke-1" \
    --data-binary @"$TMP/spec.json" "$BASE/v1/analyze" >"$TMP/result.json"
grep -q '"robustness"' "$TMP/result.json" || {
    echo "smoke: analysis result missing robustness radius" >&2
    cat "$TMP/result.json" >&2
    exit 1
}

echo "smoke: GET /metrics"
curl -fsS "$BASE/metrics" >"$TMP/metrics.txt"
for series in \
    '# TYPE fepiad_requests_total counter' \
    'fepiad_requests_total{endpoint="analyze"} 1' \
    'fepiad_request_duration_ms_count{endpoint="analyze"} 1' \
    'fepiad_analyses_total 1' \
    'fepiad_cache_shards' \
    'fepiad_cache_dup_suppressed' \
    'fepiad_cache_shard_entries{shard="0"}' \
    'fepiad_slo_burn_rate{endpoint="analyze",slo="availability",window="5m"} 0' \
    'fepiad_slo_burn_rate{endpoint="analyze",slo="latency",window="1h"} 0' \
    'fepiad_slo_error_budget_remaining{endpoint="analyze",slo="availability"} 1' \
    'fepiad_slo_objective{endpoint="analyze",slo="latency"} 500' \
    '# {trace_id="' \
    'go_goroutines'; do
    grep -qF "$series" "$TMP/metrics.txt" || {
        echo "smoke: /metrics missing: $series" >&2
        cat "$TMP/metrics.txt" >&2
        exit 1
    }
done

echo "smoke: GET /debug/vars"
curl -fsS "$BASE/debug/vars" >"$TMP/vars.json"
for key in '"fepiad.requests": 1' '"fepiad.latency_ms.analyze"' '"fepiad.cache"' '"dup_suppressed"' '"shards"'; do
    grep -qF "$key" "$TMP/vars.json" || {
        echo "smoke: /debug/vars missing: $key" >&2
        cat "$TMP/vars.json" >&2
        exit 1
    }
done

echo "smoke: GET /debug/traces"
curl -fsS "$BASE/debug/traces" >"$TMP/traces.json"
for field in '"id": "smoke-1"' '"name": "parse"' '"name": "solve"' '"name": "encode"'; do
    grep -qF "$field" "$TMP/traces.json" || {
        echo "smoke: /debug/traces missing: $field" >&2
        cat "$TMP/traces.json" >&2
        exit 1
    }
done

# A 3-step watch session over the smoke system: one ndjson frame per
# step plus a clean summary. The first frame reports every radius, the
# later single-coordinate steps only what moved, and the session shows
# up as fepiad_watch_* on /metrics and fepiad.watch on /debug/vars.
echo "smoke: POST /v1/watch"
cat >"$TMP/watch.json" <<'EOF'
{
  "system": {
    "name": "smoke-watch",
    "perturbation": {"name": "λ", "orig": [300, 200], "units": "req/s"},
    "features": [
      {"name": "load(edge)", "max": 1100,
       "impact": {"type": "linear", "coeffs": [1, 1], "offset": 0}}
    ]
  },
  "points": [[300, 200], [300, 210], [280, 210]]
}
EOF
curl -fsS -X POST -H "Content-Type: application/json" \
    --data-binary @"$TMP/watch.json" "$BASE/v1/watch" >"$TMP/watch-stream.ndjson"
frames=$(grep -c '"changed_count"' "$TMP/watch-stream.ndjson" || true)
if [ "$frames" -lt 2 ]; then
    echo "smoke: watch session streamed $frames frames, want >= 2" >&2
    cat "$TMP/watch-stream.ndjson" >&2
    exit 1
fi
grep -qF '"done":true' "$TMP/watch-stream.ndjson" || {
    echo "smoke: watch stream ended without a clean summary" >&2
    cat "$TMP/watch-stream.ndjson" >&2
    exit 1
}
grep -qF '"changed":[{' "$TMP/watch-stream.ndjson" || {
    echo "smoke: no watch frame carried changed radii" >&2
    cat "$TMP/watch-stream.ndjson" >&2
    exit 1
}
curl -fsS "$BASE/metrics" >"$TMP/metrics-watch.txt"
for series in \
    'fepiad_watch_sessions_total 1' \
    'fepiad_watch_steps_total 3' \
    'fepiad_watch_changed_radii_total'; do
    grep -qF "$series" "$TMP/metrics-watch.txt" || {
        echo "smoke: /metrics missing after watch session: $series" >&2
        cat "$TMP/metrics-watch.txt" >&2
        exit 1
    }
done
curl -fsS "$BASE/debug/vars" | grep -qF '"fepiad.watch"' || {
    echo "smoke: /debug/vars missing fepiad.watch after watch session" >&2
    exit 1
}

echo "smoke: graceful shutdown"
kill -TERM "$SERVER_PID"
wait "$SERVER_PID" || {
    echo "smoke: fepiad exited non-zero on SIGTERM" >&2
    cat "$TMP/fepiad.log" >&2
    exit 1
}
grep -q 'final metrics' "$TMP/fepiad.log" || {
    echo "smoke: no final metrics flush line in shutdown log" >&2
    cat "$TMP/fepiad.log" >&2
    exit 1
}

echo "smoke: 2-node ring"
PORT_A=$((PORT + 1))
PORT_B=$((PORT + 2))
BASE_A="http://127.0.0.1:$PORT_A"
BASE_B="http://127.0.0.1:$PORT_B"
PEERS="a=$BASE_A,b=$BASE_B"
"$TMP/fepiad" -addr "127.0.0.1:$PORT_A" -node-id a -peers "$PEERS" -log-format text >"$TMP/ring-a.log" 2>&1 &
RING_A_PID=$!
"$TMP/fepiad" -addr "127.0.0.1:$PORT_B" -node-id b -peers "$PEERS" -log-format text >"$TMP/ring-b.log" 2>&1 &
RING_B_PID=$!
for node in "$BASE_A" "$BASE_B"; do
    ok=0
    for _ in $(seq 1 50); do
        if curl -fsS "$node/healthz" >/dev/null 2>&1; then ok=1; break; fi
        sleep 0.1
    done
    if [ "$ok" != 1 ]; then
        echo "smoke: ring node $node never became healthy" >&2
        cat "$TMP/ring-a.log" "$TMP/ring-b.log" >&2
        exit 1
    fi
done

echo "smoke: GET /v1/ring"
curl -fsS "$BASE_A/v1/ring" >"$TMP/ring.json"
for field in '"self": "a"' '"id": "a"' '"id": "b"' '"share"'; do
    grep -qF "$field" "$TMP/ring.json" || {
        echo "smoke: /v1/ring missing: $field" >&2
        cat "$TMP/ring.json" >&2
        exit 1
    }
done

# The same document posted to both nodes: whichever node does not own
# its route key must relay it to the owner and mark the relay with
# X-Fepiad-Forwarded — exactly one of the two responses carries it.
echo "smoke: owner forwarding + response meta"
curl -fsS -D "$TMP/head-a.txt" -X POST -H "Content-Type: application/json" \
    --data-binary @"$TMP/spec.json" "$BASE_A/v1/analyze" >"$TMP/res-a.json"
curl -fsS -D "$TMP/head-b.txt" -X POST -H "Content-Type: application/json" \
    --data-binary @"$TMP/spec.json" "$BASE_B/v1/analyze" >"$TMP/res-b.json"
for res in "$TMP/res-a.json" "$TMP/res-b.json"; do
    for field in '"robustness"' '"meta"' '"node"' '"cache"'; do
        grep -qF "$field" "$res" || {
            echo "smoke: ring analysis missing $field in $res" >&2
            cat "$res" >&2
            exit 1
        }
    done
done
forwarded=$(cat "$TMP/head-a.txt" "$TMP/head-b.txt" | grep -ci '^X-Fepiad-Forwarded: true' || true)
if [ "$forwarded" != 1 ]; then
    echo "smoke: expected exactly one forwarded response, saw $forwarded" >&2
    cat "$TMP/head-a.txt" "$TMP/head-b.txt" >&2
    exit 1
fi
grep -qi '^X-Fepiad-Node:' "$TMP/head-a.txt" || {
    echo "smoke: response missing X-Fepiad-Node header" >&2
    cat "$TMP/head-a.txt" >&2
    exit 1
}
grep -qF '"forwarded": true' "$TMP/res-a.json" "$TMP/res-b.json" || {
    echo "smoke: neither ring response carries meta.forwarded" >&2
    cat "$TMP/res-a.json" "$TMP/res-b.json" >&2
    exit 1
}

# The forwarded request's ingress holds ONE stitched trace: its own
# forward span plus the owning node's server/pipeline spans, annotated
# with the remote node ID (docs/OBSERVABILITY.md, "Cross-node traces").
echo "smoke: cross-node trace stitching"
if grep -qi '^X-Fepiad-Forwarded: true' "$TMP/head-a.txt"; then
    INGRESS="$BASE_A"; REMOTE="b"
else
    INGRESS="$BASE_B"; REMOTE="a"
fi
curl -fsS "$INGRESS/debug/traces" >"$TMP/ring-traces.json"
for field in '"name": "forward"' '"name": "server"' "\"node\": \"$REMOTE\"" '"peer"'; do
    grep -qF "$field" "$TMP/ring-traces.json" || {
        echo "smoke: ingress /debug/traces missing remote span marker: $field" >&2
        cat "$TMP/ring-traces.json" >&2
        exit 1
    }
done

echo "smoke: GET /v1/cluster/status"
curl -fsS "$INGRESS/v1/cluster/status" >"$TMP/cluster.json"
for field in '"nodes_total": 2' '"nodes_healthy": 2' '"node": "a"' '"node": "b"' '"ring_share"'; do
    grep -qF "$field" "$TMP/cluster.json" || {
        echo "smoke: /v1/cluster/status missing: $field" >&2
        cat "$TMP/cluster.json" >&2
        exit 1
    }
done

echo "smoke: GET /metrics?federate=1"
curl -fsS "$INGRESS/metrics?federate=1" >"$TMP/federated.txt"
# Three analyze requests fleet-wide: one per POST on its ingress, plus
# the forwarded copy the owner served.
for series in \
    "fepiad_federation_peer_up{peer=\"$REMOTE\"} 1" \
    'fepiad_requests_total{endpoint="analyze"} 3'; do
    grep -qF "$series" "$TMP/federated.txt" || {
        echo "smoke: federated /metrics missing: $series" >&2
        cat "$TMP/federated.txt" >&2
        exit 1
    }
done

kill -TERM "$RING_A_PID" "$RING_B_PID"
wait "$RING_A_PID" "$RING_B_PID" || {
    echo "smoke: ring node exited non-zero on SIGTERM" >&2
    cat "$TMP/ring-a.log" "$TMP/ring-b.log" >&2
    exit 1
}

# Restart persistence: boot with -snapshot-path, warm the cache with one
# analysis (a miss), SIGTERM (the drain writes the snapshot), reboot on
# the same path — the very first request of the new process must be
# served warm: meta reports "cache": "hit", and the snapshot counters
# show on both observability surfaces (docs/SERVICE.md, "Persistence &
# anytime responses").
echo "smoke: snapshot restart"
PORT_R=$((PORT + 3))
BASE_R="http://127.0.0.1:$PORT_R"
SNAP="$TMP/cache.snap"
"$TMP/fepiad" -addr "127.0.0.1:$PORT_R" -snapshot-path "$SNAP" -log-format text >"$TMP/restart-1.log" 2>&1 &
SERVER_PID=$!
ok=0
for _ in $(seq 1 50); do
    if curl -fsS "$BASE_R/healthz" >/dev/null 2>&1; then ok=1; break; fi
    sleep 0.1
done
[ "$ok" = 1 ] || { echo "smoke: snapshot node never became healthy" >&2; cat "$TMP/restart-1.log" >&2; exit 1; }
curl -fsS -X POST -H "Content-Type: application/json" \
    --data-binary @"$TMP/spec.json" "$BASE_R/v1/analyze" >"$TMP/warm.json"
grep -qF '"cache": "miss"' "$TMP/warm.json" || {
    echo "smoke: first-life request should be a cold miss" >&2
    cat "$TMP/warm.json" >&2
    exit 1
}
kill -TERM "$SERVER_PID"
wait "$SERVER_PID" || { echo "smoke: snapshot node exited non-zero on SIGTERM" >&2; cat "$TMP/restart-1.log" >&2; exit 1; }
[ -s "$SNAP" ] || { echo "smoke: drain wrote no snapshot at $SNAP" >&2; cat "$TMP/restart-1.log" >&2; exit 1; }
grep -q 'cache snapshot written' "$TMP/restart-1.log" || {
    echo "smoke: no snapshot-written log line on drain" >&2
    cat "$TMP/restart-1.log" >&2
    exit 1
}

"$TMP/fepiad" -addr "127.0.0.1:$PORT_R" -snapshot-path "$SNAP" -log-format text >"$TMP/restart-2.log" 2>&1 &
SERVER_PID=$!
ok=0
for _ in $(seq 1 50); do
    if curl -fsS "$BASE_R/healthz" >/dev/null 2>&1; then ok=1; break; fi
    sleep 0.1
done
[ "$ok" = 1 ] || { echo "smoke: restarted node never became healthy" >&2; cat "$TMP/restart-2.log" >&2; exit 1; }
curl -fsS -X POST -H "Content-Type: application/json" \
    --data-binary @"$TMP/spec.json" "$BASE_R/v1/analyze" >"$TMP/rewarm.json"
grep -qF '"cache": "hit"' "$TMP/rewarm.json" || {
    echo "smoke: first post-restart request was not served from the snapshot" >&2
    cat "$TMP/rewarm.json" "$TMP/restart-2.log" >&2
    exit 1
}
curl -fsS "$BASE_R/metrics" | grep -q '^fepiad_snapshot_loads_total 1' || {
    echo "smoke: /metrics missing fepiad_snapshot_loads_total 1 after warm boot" >&2
    exit 1
}
curl -fsS "$BASE_R/debug/vars" | grep -qF '"fepiad.snapshot"' || {
    echo "smoke: /debug/vars missing fepiad.snapshot" >&2
    exit 1
}
kill -TERM "$SERVER_PID"
wait "$SERVER_PID" || { echo "smoke: restarted node exited non-zero on SIGTERM" >&2; cat "$TMP/restart-2.log" >&2; exit 1; }
SERVER_PID=""

echo "smoke: OK"
