#!/bin/sh
# smoke.sh — boot a real fepiad binary, drive one analysis through it,
# and verify the observability surfaces answer: /healthz, /metrics
# (Prometheus text exposition), /debug/vars, and /debug/traces with the
# request's spans. Exits non-zero on the first failed check.
set -eu

PORT="${FEPIAD_SMOKE_PORT:-18080}"
BASE="http://127.0.0.1:$PORT"
TMP="$(mktemp -d)"
trap 'kill "$SERVER_PID" 2>/dev/null || true; rm -rf "$TMP"' EXIT

echo "smoke: building fepiad"
go build -o "$TMP/fepiad" ./cmd/fepiad

echo "smoke: starting fepiad on :$PORT"
"$TMP/fepiad" -addr "127.0.0.1:$PORT" -log-format text >"$TMP/fepiad.log" 2>&1 &
SERVER_PID=$!

ok=0
for _ in $(seq 1 50); do
    if curl -fsS "$BASE/healthz" >/dev/null 2>&1; then ok=1; break; fi
    sleep 0.1
done
if [ "$ok" != 1 ]; then
    echo "smoke: fepiad never became healthy" >&2
    cat "$TMP/fepiad.log" >&2
    exit 1
fi

echo "smoke: POST /v1/analyze"
cat >"$TMP/spec.json" <<'EOF'
{
  "name": "smoke",
  "perturbation": {"name": "λ", "orig": [300, 200], "units": "req/s"},
  "features": [
    {"name": "load(edge)", "max": 1100,
     "impact": {"type": "linear", "coeffs": [1, 1], "offset": 0}}
  ]
}
EOF
curl -fsS -X POST -H "Content-Type: application/json" -H "X-Request-Id: smoke-1" \
    --data-binary @"$TMP/spec.json" "$BASE/v1/analyze" >"$TMP/result.json"
grep -q '"robustness"' "$TMP/result.json" || {
    echo "smoke: analysis result missing robustness radius" >&2
    cat "$TMP/result.json" >&2
    exit 1
}

echo "smoke: GET /metrics"
curl -fsS "$BASE/metrics" >"$TMP/metrics.txt"
for series in \
    '# TYPE fepiad_requests_total counter' \
    'fepiad_requests_total{endpoint="analyze"} 1' \
    'fepiad_request_duration_ms_count{endpoint="analyze"} 1' \
    'fepiad_analyses_total 1' \
    'fepiad_cache_shards' \
    'fepiad_cache_dup_suppressed' \
    'fepiad_cache_shard_entries{shard="0"}' \
    'go_goroutines'; do
    grep -qF "$series" "$TMP/metrics.txt" || {
        echo "smoke: /metrics missing: $series" >&2
        cat "$TMP/metrics.txt" >&2
        exit 1
    }
done

echo "smoke: GET /debug/vars"
curl -fsS "$BASE/debug/vars" >"$TMP/vars.json"
for key in '"fepiad.requests": 1' '"fepiad.latency_ms.analyze"' '"fepiad.cache"' '"dup_suppressed"' '"shards"'; do
    grep -qF "$key" "$TMP/vars.json" || {
        echo "smoke: /debug/vars missing: $key" >&2
        cat "$TMP/vars.json" >&2
        exit 1
    }
done

echo "smoke: GET /debug/traces"
curl -fsS "$BASE/debug/traces" >"$TMP/traces.json"
for field in '"id": "smoke-1"' '"name": "parse"' '"name": "solve"' '"name": "encode"'; do
    grep -qF "$field" "$TMP/traces.json" || {
        echo "smoke: /debug/traces missing: $field" >&2
        cat "$TMP/traces.json" >&2
        exit 1
    }
done

echo "smoke: graceful shutdown"
kill -TERM "$SERVER_PID"
wait "$SERVER_PID" || {
    echo "smoke: fepiad exited non-zero on SIGTERM" >&2
    cat "$TMP/fepiad.log" >&2
    exit 1
}
grep -q 'final metrics' "$TMP/fepiad.log" || {
    echo "smoke: no final metrics flush line in shutdown log" >&2
    cat "$TMP/fepiad.log" >&2
    exit 1
}

echo "smoke: OK"
