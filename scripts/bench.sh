#!/usr/bin/env sh
# bench.sh — reproducible benchmark run behind `make bench`.
#
# Builds cmd/bench, cmd/loadgen, and cmd/fepiad and runs them with
# pinned seeds and workload shape, so two runs on the same machine
# measure the same byte-identical key stream. Writes BENCH_10.json (cold
# / warm / contended cache series for the frozen single-mutex baseline
# and the live sharded cache, the kernel_warm / kernel_cold / mixed
# series for the SoA analytic kernel, the incremental_1 / incremental_k
# series for the delta re-analysis session against full recomputes,
# the loadgen-driven cluster series
# — 1-node LRU-thrash vs 3-node consistent-hash ring on the same
# per-node cache capacity, plus the kill-a-node chaos story — the
# restart series — warm boot from a cache snapshot vs cold restart —
# and the derived speedup summary) to the repo root; CI uploads it as
# an artifact. Override the output path with BENCH_OUT, the
# cache/kernel workload with BENCH_FLAGS, the cluster workload with
# BENCH_CLUSTER_FLAGS, the restart workload with BENCH_RESTART_FLAGS.
#
#   ./scripts/bench.sh
#   BENCH_OUT=/tmp/b.json BENCH_FLAGS="-keys 1024 -dim 16" ./scripts/bench.sh
set -eu

cd "$(dirname "$0")/.."

OUT="${BENCH_OUT:-BENCH_10.json}"
FLAGS="${BENCH_FLAGS:--seed 2003 -keys 512 -dim 8 -iters 20000 -reps 5 -sweeps 100}"
# The cluster workload: 96 distinct systems × ~13 cacheable radius
# subproblems ≈ 1250 entries against a 1024-entry per-node cache, cycled
# deterministically. One node thrashes its LRU (every request re-runs
# the convex solver); three nodes each own an arc of ~420 entries that
# stays resident, so the same capacity serves the whole set warm.
CLUSTER_FLAGS="${BENCH_CLUSTER_FLAGS:--cache 1024 -pool 96 -heavy 10 -batch 1 -cycle -warmup -n 576 -c 8 -seed 2003}"
# The restart workload: 48 heavy convex systems cycled over 192 requests
# against a real fepiad process — small enough that the whole working set
# fits the snapshot, heavy enough that every cold miss pays the numeric
# solver the warm boot skips.
RESTART_FLAGS="${BENCH_RESTART_FLAGS:--pool 48 -heavy 10 -batch 1 -cycle -n 192 -c 8 -seed 2003}"
RESTART_PORT="${BENCH_RESTART_PORT:-18190}"

TMP="${TMPDIR:-/tmp}"
go build -o "$TMP/fepia-bench" ./cmd/bench
go build -o "$TMP/fepia-loadgen" ./cmd/loadgen
go build -o "$TMP/fepia-fepiad" ./cmd/fepiad
# shellcheck disable=SC2086  # FLAGS is intentionally word-split
"$TMP/fepia-bench" -out "$OUT" $FLAGS

# The cluster series: identical workload against one node and against a
# 3-node in-process ring, then the chaos story — same ring, node n1
# killed halfway through the run. Client failover plus degraded serving
# must keep every request answered.
# shellcheck disable=SC2086
"$TMP/fepia-loadgen" -self -nodes 1 $CLUSTER_FLAGS -json >"$TMP/fepia-cluster-1.json"
# shellcheck disable=SC2086
"$TMP/fepia-loadgen" -self -nodes 3 $CLUSTER_FLAGS -json >"$TMP/fepia-cluster-3.json"
# shellcheck disable=SC2086
"$TMP/fepia-loadgen" -self -nodes 3 $CLUSTER_FLAGS -kill 1@0.5 -json >"$TMP/fepia-cluster-chaos.json"

# The restart series needs a real fepiad process (the snapshot must
# survive the process, which -self cannot model). Three lives of one
# node: a cold first life that drains a snapshot, a warm-boot second life
# restored from it (its FIRST request must report meta.cache "hit"), and
# a cold-restart control with the snapshot deleted.
SNAP="$TMP/fepia-bench.snap"
rm -f "$SNAP"
BENCH_BASE="http://127.0.0.1:$RESTART_PORT"
start_fepiad() {
    "$TMP/fepia-fepiad" -addr "127.0.0.1:$RESTART_PORT" -cache 4096 "$@" >"$TMP/fepia-fepiad.log" 2>&1 &
    FEPIAD_PID=$!
    i=0
    while ! curl -fsS "$BENCH_BASE/healthz" >/dev/null 2>&1; do
        i=$((i + 1))
        if [ "$i" -gt 100 ]; then
            echo "bench: fepiad never became healthy" >&2
            cat "$TMP/fepia-fepiad.log" >&2
            exit 1
        fi
        sleep 0.1
    done
}
stop_fepiad() {
    kill -TERM "$FEPIAD_PID"
    wait "$FEPIAD_PID"
}
start_fepiad -snapshot-path "$SNAP"
# shellcheck disable=SC2086
"$TMP/fepia-loadgen" -url "$BENCH_BASE" $RESTART_FLAGS -json >"$TMP/fepia-restart-first.json"
stop_fepiad
start_fepiad -snapshot-path "$SNAP"
# shellcheck disable=SC2086
"$TMP/fepia-loadgen" -url "$BENCH_BASE" $RESTART_FLAGS -json >"$TMP/fepia-restart-warm.json"
stop_fepiad
rm -f "$SNAP"
start_fepiad
# shellcheck disable=SC2086
"$TMP/fepia-loadgen" -url "$BENCH_BASE" $RESTART_FLAGS -json >"$TMP/fepia-restart-cold.json"
stop_fepiad

# Merge the loadgen reports into the bench artifact and gate the
# headline claims so a regression fails the target, not just drifts the
# artifact: contended speedup over the single-mutex baseline must hold
# >= 2x, the shared warm-hit path must not allocate, the SoA kernel must
# hold >= 4x over the per-feature analytic loop, both byte-identity
# checks (all-linear and mixed routing through the engine) must have
# passed inside the harness, the incremental delta session must beat the
# full recompute >= 3x on single-coordinate moves with its own identity
# bit set, the 3-node ring must serve the warm workload
# >= 2.2x faster than one node, the chaos story must drop zero requests,
# the warm boot's FIRST request must be a snapshot-restored cache hit
# while both cold lives open on a miss, and warm-boot p99 must beat the
# cold restart by >= 1.5x.
python3 - "$OUT" "$TMP/fepia-cluster-1.json" "$TMP/fepia-cluster-3.json" "$TMP/fepia-cluster-chaos.json" \
    "$TMP/fepia-restart-first.json" "$TMP/fepia-restart-warm.json" "$TMP/fepia-restart-cold.json" <<'EOF'
import json, sys
rep = json.load(open(sys.argv[1]))
one = json.load(open(sys.argv[2]))
three = json.load(open(sys.argv[3]))
chaos = json.load(open(sys.argv[4]))
first = json.load(open(sys.argv[5]))
warm = json.load(open(sys.argv[6]))
cold = json.load(open(sys.argv[7]))

rep["cluster"] = {"one_node": one, "three_node": three, "chaos": chaos}
rep["restart"] = {"first_life": first, "warm_boot": warm, "cold_boot": cold}
s = rep["summary"]
s["cluster_scaling"] = three["throughput_rps"] / one["throughput_rps"]
s["cluster_one_node_rps"] = one["throughput_rps"]
s["cluster_three_node_rps"] = three["throughput_rps"]
s["cluster_chaos_dropped"] = chaos["failed"]
s["cluster_chaos_degraded"] = chaos.get("degraded", 0)
s["cluster_chaos_failovers"] = chaos.get("failovers", 0)
s["restart_warm_first_cache"] = warm.get("first_cache", "")
s["restart_cold_first_cache"] = cold.get("first_cache", "")
s["restart_warm_p99_ms"] = warm["latency"]["p99_ms"]
s["restart_cold_p99_ms"] = cold["latency"]["p99_ms"]
s["restart_p99_speedup"] = cold["latency"]["p99_ms"] / warm["latency"]["p99_ms"]
json.dump(rep, open(sys.argv[1], "w"), indent=2)

ok = True
if s["contended_speedup"] < 2.0:
    print(f"FAIL: contended speedup {s['contended_speedup']:.2f}x < 2x", file=sys.stderr)
    ok = False
if s["warm_hit_allocs_sharded_shared"] >= 0.5:
    print(f"FAIL: shared warm-hit path allocates ({s['warm_hit_allocs_sharded_shared']}/op)", file=sys.stderr)
    ok = False
if s["kernel_speedup"] < 4.0:
    print(f"FAIL: kernel warm speedup {s['kernel_speedup']:.2f}x < 4x", file=sys.stderr)
    ok = False
if not s["kernel_identical"]:
    print("FAIL: kernel results are not byte-identical to the scalar path", file=sys.stderr)
    ok = False
if not s["kernel_mixed_identical"]:
    print("FAIL: mixed-batch kernel routing changed the analysis", file=sys.stderr)
    ok = False
if s["incremental_speedup_1"] < 3.0:
    print(f"FAIL: incremental single-coordinate speedup {s['incremental_speedup_1']:.2f}x < 3x",
          file=sys.stderr)
    ok = False
if not s["incremental_identical"]:
    print("FAIL: delta session results are not byte-identical to full recomputes",
          file=sys.stderr)
    ok = False
if s["cluster_scaling"] < 2.2:
    print(f"FAIL: 3-node warm-hit scaling {s['cluster_scaling']:.2f}x < 2.2x", file=sys.stderr)
    ok = False
if chaos["failed"] != 0 or chaos["ok"] != chaos["requests"]:
    print(f"FAIL: chaos story dropped requests ({chaos['failed']} failed, "
          f"{chaos['ok']}/{chaos['requests']} ok)", file=sys.stderr)
    ok = False
if not chaos.get("killed"):
    print("FAIL: chaos story did not kill a node", file=sys.stderr)
    ok = False
if chaos.get("degraded", 0) <= 0 and chaos.get("failovers", 0) <= 0:
    print("FAIL: chaos story shows no degraded serving and no failovers — "
          "the kill had no observable effect", file=sys.stderr)
    ok = False
if first.get("first_cache") != "miss":
    print(f"FAIL: first life opened warm ({first.get('first_cache')!r}) — "
          "the snapshot story has no cold baseline", file=sys.stderr)
    ok = False
if warm.get("first_cache") != "hit":
    print(f"FAIL: warm boot's first request was {warm.get('first_cache')!r}, "
          "not a snapshot-restored hit", file=sys.stderr)
    ok = False
if cold.get("first_cache") != "miss":
    print(f"FAIL: cold-restart control opened {cold.get('first_cache')!r}, "
          "not a miss — the control is not cold", file=sys.stderr)
    ok = False
if s["restart_p99_speedup"] < 1.5:
    print(f"FAIL: warm-boot p99 speedup {s['restart_p99_speedup']:.2f}x < 1.5x "
          f"(cold {s['restart_cold_p99_ms']:.2f}ms / warm {s['restart_warm_p99_ms']:.2f}ms)",
          file=sys.stderr)
    ok = False
print(f"bench: contended x{s['contended_workers']} speedup {s['contended_speedup']:.2f}x, "
      f"warm allocs/op baseline={s['warm_hit_allocs_baseline']:.1f} "
      f"shared={s['warm_hit_allocs_sharded_shared']:.2f}, "
      f"kernel warm {s['kernel_speedup']:.2f}x cold {s['kernel_cold_speedup']:.2f}x "
      f"identical={s['kernel_identical']} mixed={s['kernel_mixed_identical']}")
print(f"bench: incremental 1-coord {s['incremental_speedup_1']:.2f}x "
      f"k-coord {s['incremental_speedup_k']:.2f}x "
      f"({s['incremental_full_ns_per_op']:.0f} -> {s['incremental_delta_ns_per_op']:.0f} ns/step) "
      f"identical={s['incremental_identical']}")
print(f"bench: cluster 3-node/1-node warm-hit {s['cluster_scaling']:.2f}x "
      f"({one['throughput_rps']:.0f} -> {three['throughput_rps']:.0f} req/s), "
      f"chaos killed {chaos.get('killed', '?')}: {chaos['ok']}/{chaos['requests']} ok, "
      f"{chaos['failed']} dropped, {chaos.get('degraded', 0)} degraded, "
      f"{chaos.get('failovers', 0)} failovers")
print(f"bench: restart warm boot first_cache={s['restart_warm_first_cache']} "
      f"p99 {s['restart_warm_p99_ms']:.2f}ms vs cold {s['restart_cold_p99_ms']:.2f}ms "
      f"({s['restart_p99_speedup']:.2f}x)")
sys.exit(0 if ok else 1)
EOF
