#!/usr/bin/env sh
# bench.sh — reproducible benchmark run behind `make bench`.
#
# Builds cmd/bench and cmd/loadgen and runs them with pinned seeds and
# workload shape, so two runs on the same machine measure the same
# byte-identical key stream. Writes BENCH_7.json (cold / warm /
# contended cache series for the frozen single-mutex baseline and the
# live sharded cache, the kernel_warm / kernel_cold / mixed series for
# the SoA analytic kernel, the loadgen-driven cluster series — 1-node
# LRU-thrash vs 3-node consistent-hash ring on the same per-node cache
# capacity, plus the kill-a-node chaos story — and the derived speedup
# summary) to the repo root; CI uploads it as an artifact. Override the
# output path with BENCH_OUT, the cache/kernel workload with
# BENCH_FLAGS, the cluster workload with BENCH_CLUSTER_FLAGS.
#
#   ./scripts/bench.sh
#   BENCH_OUT=/tmp/b.json BENCH_FLAGS="-keys 1024 -dim 16" ./scripts/bench.sh
set -eu

cd "$(dirname "$0")/.."

OUT="${BENCH_OUT:-BENCH_7.json}"
FLAGS="${BENCH_FLAGS:--seed 2003 -keys 512 -dim 8 -iters 20000 -reps 5 -sweeps 100}"
# The cluster workload: 96 distinct systems × ~13 cacheable radius
# subproblems ≈ 1250 entries against a 1024-entry per-node cache, cycled
# deterministically. One node thrashes its LRU (every request re-runs
# the convex solver); three nodes each own an arc of ~420 entries that
# stays resident, so the same capacity serves the whole set warm.
CLUSTER_FLAGS="${BENCH_CLUSTER_FLAGS:--cache 1024 -pool 96 -heavy 10 -batch 1 -cycle -warmup -n 576 -c 8 -seed 2003}"

TMP="${TMPDIR:-/tmp}"
go build -o "$TMP/fepia-bench" ./cmd/bench
go build -o "$TMP/fepia-loadgen" ./cmd/loadgen
# shellcheck disable=SC2086  # FLAGS is intentionally word-split
"$TMP/fepia-bench" -out "$OUT" $FLAGS

# The cluster series: identical workload against one node and against a
# 3-node in-process ring, then the chaos story — same ring, node n1
# killed halfway through the run. Client failover plus degraded serving
# must keep every request answered.
# shellcheck disable=SC2086
"$TMP/fepia-loadgen" -self -nodes 1 $CLUSTER_FLAGS -json >"$TMP/fepia-cluster-1.json"
# shellcheck disable=SC2086
"$TMP/fepia-loadgen" -self -nodes 3 $CLUSTER_FLAGS -json >"$TMP/fepia-cluster-3.json"
# shellcheck disable=SC2086
"$TMP/fepia-loadgen" -self -nodes 3 $CLUSTER_FLAGS -kill 1@0.5 -json >"$TMP/fepia-cluster-chaos.json"

# Merge the loadgen reports into the bench artifact and gate the
# headline claims so a regression fails the target, not just drifts the
# artifact: contended speedup over the single-mutex baseline must hold
# >= 2x, the shared warm-hit path must not allocate, the SoA kernel must
# hold >= 4x over the per-feature analytic loop, both byte-identity
# checks (all-linear and mixed routing through the engine) must have
# passed inside the harness, the 3-node ring must serve the warm workload
# >= 2.2x faster than one node, and the chaos story must drop zero
# requests.
python3 - "$OUT" "$TMP/fepia-cluster-1.json" "$TMP/fepia-cluster-3.json" "$TMP/fepia-cluster-chaos.json" <<'EOF'
import json, sys
rep = json.load(open(sys.argv[1]))
one = json.load(open(sys.argv[2]))
three = json.load(open(sys.argv[3]))
chaos = json.load(open(sys.argv[4]))

rep["cluster"] = {"one_node": one, "three_node": three, "chaos": chaos}
s = rep["summary"]
s["cluster_scaling"] = three["throughput_rps"] / one["throughput_rps"]
s["cluster_one_node_rps"] = one["throughput_rps"]
s["cluster_three_node_rps"] = three["throughput_rps"]
s["cluster_chaos_dropped"] = chaos["failed"]
s["cluster_chaos_degraded"] = chaos.get("degraded", 0)
s["cluster_chaos_failovers"] = chaos.get("failovers", 0)
json.dump(rep, open(sys.argv[1], "w"), indent=2)

ok = True
if s["contended_speedup"] < 2.0:
    print(f"FAIL: contended speedup {s['contended_speedup']:.2f}x < 2x", file=sys.stderr)
    ok = False
if s["warm_hit_allocs_sharded_shared"] >= 0.5:
    print(f"FAIL: shared warm-hit path allocates ({s['warm_hit_allocs_sharded_shared']}/op)", file=sys.stderr)
    ok = False
if s["kernel_speedup"] < 4.0:
    print(f"FAIL: kernel warm speedup {s['kernel_speedup']:.2f}x < 4x", file=sys.stderr)
    ok = False
if not s["kernel_identical"]:
    print("FAIL: kernel results are not byte-identical to the scalar path", file=sys.stderr)
    ok = False
if not s["kernel_mixed_identical"]:
    print("FAIL: mixed-batch kernel routing changed the analysis", file=sys.stderr)
    ok = False
if s["cluster_scaling"] < 2.2:
    print(f"FAIL: 3-node warm-hit scaling {s['cluster_scaling']:.2f}x < 2.2x", file=sys.stderr)
    ok = False
if chaos["failed"] != 0 or chaos["ok"] != chaos["requests"]:
    print(f"FAIL: chaos story dropped requests ({chaos['failed']} failed, "
          f"{chaos['ok']}/{chaos['requests']} ok)", file=sys.stderr)
    ok = False
if not chaos.get("killed"):
    print("FAIL: chaos story did not kill a node", file=sys.stderr)
    ok = False
if chaos.get("degraded", 0) <= 0 and chaos.get("failovers", 0) <= 0:
    print("FAIL: chaos story shows no degraded serving and no failovers — "
          "the kill had no observable effect", file=sys.stderr)
    ok = False
print(f"bench: contended x{s['contended_workers']} speedup {s['contended_speedup']:.2f}x, "
      f"warm allocs/op baseline={s['warm_hit_allocs_baseline']:.1f} "
      f"shared={s['warm_hit_allocs_sharded_shared']:.2f}, "
      f"kernel warm {s['kernel_speedup']:.2f}x cold {s['kernel_cold_speedup']:.2f}x "
      f"identical={s['kernel_identical']} mixed={s['kernel_mixed_identical']}")
print(f"bench: cluster 3-node/1-node warm-hit {s['cluster_scaling']:.2f}x "
      f"({one['throughput_rps']:.0f} -> {three['throughput_rps']:.0f} req/s), "
      f"chaos killed {chaos.get('killed', '?')}: {chaos['ok']}/{chaos['requests']} ok, "
      f"{chaos['failed']} dropped, {chaos.get('degraded', 0)} degraded, "
      f"{chaos.get('failovers', 0)} failovers")
sys.exit(0 if ok else 1)
EOF
