#!/usr/bin/env sh
# bench.sh — reproducible benchmark run behind `make bench`.
#
# Builds cmd/bench and runs it with pinned seeds and workload shape, so
# two runs on the same machine measure the same byte-identical key
# stream. Writes BENCH_6.json (cold / warm / contended cache series for
# the frozen single-mutex baseline and the live sharded cache, the
# kernel_warm / kernel_cold / mixed series for the SoA analytic kernel,
# plus the derived speedup summary) to the repo root; CI uploads it as
# an artifact. Override the output path with BENCH_OUT, the workload
# with BENCH_FLAGS.
#
#   ./scripts/bench.sh
#   BENCH_OUT=/tmp/b.json BENCH_FLAGS="-keys 1024 -dim 16" ./scripts/bench.sh
set -eu

cd "$(dirname "$0")/.."

OUT="${BENCH_OUT:-BENCH_6.json}"
FLAGS="${BENCH_FLAGS:--seed 2003 -keys 512 -dim 8 -iters 20000 -reps 5 -sweeps 100}"

go build -o "${TMPDIR:-/tmp}/fepia-bench" ./cmd/bench
# shellcheck disable=SC2086  # FLAGS is intentionally word-split
"${TMPDIR:-/tmp}/fepia-bench" -out "$OUT" $FLAGS

# Gate the headline claims so a regression fails the target, not just
# drifts the artifact: contended speedup over the single-mutex baseline
# must hold >= 2x, the shared warm-hit path must not allocate, the SoA
# kernel must hold >= 4x over the per-feature analytic loop, and both
# byte-identity checks (all-linear and mixed routing through the engine)
# must have passed inside the harness.
python3 - "$OUT" <<'EOF'
import json, sys
rep = json.load(open(sys.argv[1]))
s = rep["summary"]
ok = True
if s["contended_speedup"] < 2.0:
    print(f"FAIL: contended speedup {s['contended_speedup']:.2f}x < 2x", file=sys.stderr)
    ok = False
if s["warm_hit_allocs_sharded_shared"] >= 0.5:
    print(f"FAIL: shared warm-hit path allocates ({s['warm_hit_allocs_sharded_shared']}/op)", file=sys.stderr)
    ok = False
if s["kernel_speedup"] < 4.0:
    print(f"FAIL: kernel warm speedup {s['kernel_speedup']:.2f}x < 4x", file=sys.stderr)
    ok = False
if not s["kernel_identical"]:
    print("FAIL: kernel results are not byte-identical to the scalar path", file=sys.stderr)
    ok = False
if not s["kernel_mixed_identical"]:
    print("FAIL: mixed-batch kernel routing changed the analysis", file=sys.stderr)
    ok = False
print(f"bench: contended x{s['contended_workers']} speedup {s['contended_speedup']:.2f}x, "
      f"warm allocs/op baseline={s['warm_hit_allocs_baseline']:.1f} "
      f"shared={s['warm_hit_allocs_sharded_shared']:.2f}, "
      f"kernel warm {s['kernel_speedup']:.2f}x cold {s['kernel_cold_speedup']:.2f}x "
      f"identical={s['kernel_identical']} mixed={s['kernel_mixed_identical']}")
sys.exit(0 if ok else 1)
EOF
