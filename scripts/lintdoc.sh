#!/usr/bin/env sh
# lintdoc.sh — fail `make lint` when an exported identifier in the
# audited packages lacks a doc comment.
#
# The audit is a deliberately small grep/awk pass, not a full linter: it
# looks at top-level declarations that begin with an exported name —
# `func Name`, `func (r T) Name`, `type Name`, `var Name`, `const Name`
# — and requires the preceding line to be a comment. Grouped const/var
# blocks are outside its scope (their members rarely carry individual
# doc comments by design). Audited packages are the ones whose doc
# surface the performance work leans on; extend PKGS as packages mature.
#
#   ./scripts/lintdoc.sh
set -eu

cd "$(dirname "$0")/.."

PKGS="internal/vecmath internal/batch internal/kernel"

fail=0
for pkg in $PKGS; do
	for f in "$pkg"/*.go; do
		case "$f" in
		*_test.go) continue ;;
		esac
		if ! awk -v file="$f" '
			/^func [A-Z]/ || /^func \([^)]*\) [A-Z]/ || /^type [A-Z]/ || /^var [A-Z]/ || /^const [A-Z]/ {
				if (prev !~ /^\/\//) {
					split($0, parts, "{")
					printf "%s:%d: exported declaration has no doc comment: %s\n", file, NR, parts[1]
					bad = 1
				}
			}
			{ prev = $0 }
			END { exit bad }
		' "$f"; then
			fail=1
		fi
	done
done

if [ "$fail" -ne 0 ]; then
	echo "lintdoc: missing doc comments (see above)" >&2
	exit 1
fi
echo "lintdoc: all exported identifiers in $PKGS are documented"
