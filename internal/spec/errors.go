package spec

import (
	"errors"
	"fmt"
	"strings"
)

// ErrInvalidSpec is the sentinel matched by every spec-validation failure:
// errors.Is(err, ErrInvalidSpec) reports whether err means "the submitted
// system description is wrong", as opposed to an engine failure while
// analysing a well-formed system. Services built on the parser (cmd/fepiad)
// map it to HTTP 400.
var ErrInvalidSpec = errors.New("invalid system spec")

// ValidationError is the typed parse/validation failure produced by Parse,
// Build, and ParseBatch. Path locates the offending JSON field in the
// submitted document (e.g. "features[2].impact.coeffs", or
// "systems[4].norm" for batch envelopes); an empty Path means the document
// as a whole (e.g. malformed JSON).
//
// A ValidationError matches ErrInvalidSpec with errors.Is and exposes the
// underlying cause (a json.SyntaxError, a core validation error, …)
// through errors.As when one exists.
type ValidationError struct {
	// Path is the JSON field path of the offending value, "" for
	// document-level failures.
	Path string
	// Msg says what is wrong with the value at Path.
	Msg string
	// Err is the underlying cause, if any.
	Err error
}

// Error renders "spec: <path>: <msg>".
func (e *ValidationError) Error() string {
	if e.Path == "" {
		return "spec: " + e.Msg
	}
	return "spec: " + e.Path + ": " + e.Msg
}

// Unwrap links the error to the ErrInvalidSpec sentinel and to its
// underlying cause.
func (e *ValidationError) Unwrap() []error {
	if e.Err != nil {
		return []error{ErrInvalidSpec, e.Err}
	}
	return []error{ErrInvalidSpec}
}

// invalidf builds a ValidationError at path from a format string.
func invalidf(path, format string, args ...any) error {
	return &ValidationError{Path: path, Msg: fmt.Sprintf(format, args...)}
}

// invalidErr wraps an underlying validation cause (typically a core
// Validate error) at path, stripping the "core: " prefix so the message
// reads in spec terms.
func invalidErr(path string, err error) error {
	return &ValidationError{Path: path, Msg: strings.TrimPrefix(err.Error(), "core: "), Err: err}
}

// PrefixPath relocates a ValidationError under prefix (joined with '.'),
// so envelope parsers can report "systems[3].features[0].impact" while the
// inner parser only knows "features[0].impact". Non-validation errors pass
// through unchanged.
func PrefixPath(prefix string, err error) error {
	var ve *ValidationError
	if !errors.As(err, &ve) {
		return err
	}
	path := ve.Path
	switch {
	case path == "":
		path = prefix
	case strings.HasPrefix(path, "["):
		path = prefix + path
	default:
		path = prefix + "." + path
	}
	return &ValidationError{Path: path, Msg: ve.Msg, Err: ve.Err}
}
