package spec

import (
	"encoding/json"
	"math"
	"strings"
	"testing"

	"fepia/internal/core"
)

const webFarm = `{
  "name": "web farm",
  "perturbation": {"name": "λ", "orig": [300, 200], "units": "req/s"},
  "features": [
    {"name": "T(edge)", "max": 1000,
     "impact": {"type": "linear", "coeffs": [1, 1], "offset": 0}},
    {"name": "T(db)", "max": 250000,
     "impact": {"type": "terms", "terms": [
       {"kind": "power", "index": 0, "coeff": 2, "p": 2},
       {"kind": "linear", "index": 1, "coeff": 3}
     ]}}
  ]
}`

func TestParseAndAnalyze(t *testing.T) {
	sys, err := Parse([]byte(webFarm))
	if err != nil {
		t.Fatal(err)
	}
	if sys.Name != "web farm" || len(sys.Features) != 2 {
		t.Fatalf("parsed system: %+v", sys)
	}
	a, err := core.Analyze(sys.Features, sys.Perturbation, sys.Options)
	if err != nil {
		t.Fatal(err)
	}
	// Feature 1: plane λ₁+λ₂ = 1000 from (300,200): radius 500/√2.
	want := 500 / math.Sqrt2
	if math.Abs(a.Radii[0].Radius-want) > 1e-9 {
		t.Errorf("linear radius = %v want %v", a.Radii[0].Radius, want)
	}
	// Feature 2: convex 2λ₁² + 3λ₂ = 250000 — solved by the convex path;
	// just require a finite positive radius on the boundary.
	if !(a.Radii[1].Radius > 0) || math.IsInf(a.Radii[1].Radius, 0) {
		t.Errorf("convex radius = %v", a.Radii[1].Radius)
	}
	if got := sys.Features[1].Impact.Eval(a.Radii[1].Boundary); math.Abs(got-250000) > 1 {
		t.Errorf("boundary point off: f = %v", got)
	}
}

// Two decodes of the same document must produce terms impacts with the
// same content fingerprint — that equality is what lets the radius cache
// (and a peer node the request is forwarded to) reuse a convex solve
// across requests. Different term lists must not collide.
func TestTermsImpactFingerprintStable(t *testing.T) {
	fp := func(doc string) []byte {
		t.Helper()
		sys, err := Parse([]byte(doc))
		if err != nil {
			t.Fatal(err)
		}
		fi, ok := sys.Features[1].Impact.(*core.FuncImpact)
		if !ok {
			t.Fatalf("terms impact decoded as %T, want *core.FuncImpact", sys.Features[1].Impact)
		}
		if len(fi.Fingerprint) == 0 {
			t.Fatal("terms impact has no fingerprint")
		}
		return fi.Fingerprint
	}
	a, b := fp(webFarm), fp(webFarm)
	if string(a) != string(b) {
		t.Fatalf("same document, different fingerprints:\n%x\n%x", a, b)
	}
	other := strings.Replace(webFarm, `"coeff": 2, "p": 2`, `"coeff": 2, "p": 3`, 1)
	if string(fp(other)) == string(a) {
		t.Fatal("different term lists share a fingerprint")
	}
}

func TestParseNorms(t *testing.T) {
	base := `{"perturbation": {"orig": [0, 0]}, "norm": %q,
	  "features": [{"max": 10, "impact": {"type": "linear", "coeffs": [1, 2]}}]}`
	for norm, want := range map[string]float64{
		"l2":   10 / math.Sqrt(5),
		"l1":   5,
		"linf": 10.0 / 3,
	} {
		sys, err := Parse([]byte(strings.Replace(base, "%q", `"`+norm+`"`, 1)))
		if err != nil {
			t.Fatalf("%s: %v", norm, err)
		}
		a, err := core.Analyze(sys.Features, sys.Perturbation, sys.Options)
		if err != nil {
			t.Fatal(err)
		}
		if math.Abs(a.Robustness-want) > 1e-9 {
			t.Errorf("%s: ρ = %v want %v", norm, a.Robustness, want)
		}
	}
	if _, err := Parse([]byte(strings.Replace(base, "%q", `"l7"`, 1))); err == nil {
		t.Errorf("unknown norm accepted")
	}
}

func TestParseErrors(t *testing.T) {
	cases := map[string]string{
		"malformed JSON":     `{`,
		"empty perturbation": `{"features":[{"max":1,"impact":{"type":"linear","coeffs":[1]}}]}`,
		"no features":        `{"perturbation":{"orig":[1]}}`,
		"no bounds":          `{"perturbation":{"orig":[1]},"features":[{"impact":{"type":"linear","coeffs":[1]}}]}`,
		"coeff dimension":    `{"perturbation":{"orig":[1]},"features":[{"max":1,"impact":{"type":"linear","coeffs":[1,2]}}]}`,
		"missing type":       `{"perturbation":{"orig":[1]},"features":[{"max":1,"impact":{}}]}`,
		"unknown type":       `{"perturbation":{"orig":[1]},"features":[{"max":1,"impact":{"type":"magic"}}]}`,
		"empty terms":        `{"perturbation":{"orig":[1]},"features":[{"max":1,"impact":{"type":"terms"}}]}`,
		"unknown kind":       `{"perturbation":{"orig":[1]},"features":[{"max":1,"impact":{"type":"terms","terms":[{"kind":"quux","index":0,"coeff":1}]}}]}`,
		"bad term index":     `{"perturbation":{"orig":[1]},"features":[{"max":1,"impact":{"type":"terms","terms":[{"kind":"linear","index":5,"coeff":1}]}}]}`,
		"non-convex power":   `{"perturbation":{"orig":[1]},"features":[{"max":1,"impact":{"type":"terms","terms":[{"kind":"power","index":0,"coeff":1,"p":0.5}]}}]}`,
		"inverted bounds":    `{"perturbation":{"orig":[1]},"features":[{"min":5,"max":1,"impact":{"type":"linear","coeffs":[1]}}]}`,
	}
	for name, doc := range cases {
		if _, err := Parse([]byte(doc)); err == nil {
			t.Errorf("%s accepted", name)
		}
	}
}

func TestDefaultsApplied(t *testing.T) {
	doc := `{"perturbation":{"orig":[1,1]},
	  "features":[{"max":10,"impact":{"type":"linear","coeffs":[1,1]}}]}`
	sys, err := Parse([]byte(doc))
	if err != nil {
		t.Fatal(err)
	}
	if sys.Perturbation.Name != "π" {
		t.Errorf("default perturbation name = %q", sys.Perturbation.Name)
	}
	if sys.Features[0].Name != "phi_1" {
		t.Errorf("default feature name = %q", sys.Features[0].Name)
	}
	if !math.IsInf(sys.Features[0].Bounds.Min, -1) {
		t.Errorf("absent min should be −Inf")
	}
}

func TestLinearTermsCollapse(t *testing.T) {
	// An all-linear "terms" impact becomes a LinearImpact (hyperplane
	// path).
	doc := `{"perturbation":{"orig":[0,0]},
	  "features":[{"max":6,"impact":{"type":"terms","terms":[
	    {"kind":"linear","index":0,"coeff":1},
	    {"kind":"linear","index":1,"coeff":1}]}}]}`
	sys, err := Parse([]byte(doc))
	if err != nil {
		t.Fatal(err)
	}
	if _, ok := sys.Features[0].Impact.(*core.LinearImpact); !ok {
		t.Errorf("all-linear terms did not collapse: %T", sys.Features[0].Impact)
	}
}

func TestEncode(t *testing.T) {
	sys, err := Parse([]byte(webFarm))
	if err != nil {
		t.Fatal(err)
	}
	a, err := core.Analyze(sys.Features, sys.Perturbation, sys.Options)
	if err != nil {
		t.Fatal(err)
	}
	out := Encode(sys.Name, a)
	if out.Name != "web farm" || out.Robustness <= 0 || len(out.Radii) != 2 {
		t.Errorf("encoded: %+v", out)
	}
	data, err := json.Marshal(out)
	if err != nil {
		t.Fatalf("result not JSON-serialisable: %v", err)
	}
	if !strings.Contains(string(data), "critical_feature") {
		t.Errorf("JSON missing fields: %s", data)
	}
	// Infinite radii must serialise as −1, keeping the document plain JSON.
	inf := core.Analysis{
		Perturbation: "π",
		Robustness:   math.Inf(1),
		Critical:     -1,
		Radii:        []core.RadiusResult{{Feature: "f", Radius: math.Inf(1), Kind: core.Unreachable}},
	}
	enc := Encode("x", inf)
	if enc.Robustness != -1 || enc.Radii[0].Radius != -1 {
		t.Errorf("infinite radii not sanitised: %+v", enc)
	}
	if _, err := json.Marshal(enc); err != nil {
		t.Errorf("infinite-result document not serialisable: %v", err)
	}
}
