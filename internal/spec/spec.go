// Package spec parses JSON descriptions of arbitrary systems into the
// FePIA vocabulary, so the robustness analysis can be run from the command
// line without writing Go (cmd/fepia and cmd/certify build on it). A spec
// captures the outcome of FePIA steps 1–3 — features with bounds,
// perturbation parameter, impact functions — and the tool performs step 4.
//
// Format:
//
//	{
//	  "name": "web farm",
//	  "perturbation": {
//	    "name": "λ", "orig": [300, 200], "units": "req/s", "discrete": false
//	  },
//	  "norm": "l2",                      // optional: l2 (default), l1, linf
//	  "features": [
//	    {
//	      "name": "T(edge)",
//	      "max": 0.01,                   // omit min/max for one-sided bounds
//	      "impact": {"type": "linear", "coeffs": [0.9, 1.1], "offset": 0}
//	    },
//	    {
//	      "name": "T(db)",
//	      "max": 0.05,
//	      "impact": {"type": "terms", "terms": [
//	        {"kind": "power", "index": 0, "coeff": 2.5, "p": 2},
//	        {"kind": "xlogx", "index": 1, "coeff": 0.3}
//	      ]}
//	    }
//	  ]
//	}
//
// "terms" impacts are built from the §3.2 convex forms (linear, power with
// p ≥ 1, exp with p > 0, xlogx) and are therefore convex and analysed with
// the global convex solver.
package spec

import (
	"encoding/binary"
	"encoding/json"
	"fmt"
	"hash/fnv"
	"math"

	"fepia/internal/convexfn"
	"fepia/internal/core"
	"fepia/internal/vecmath"
)

// File is the top-level JSON document.
type File struct {
	// Name labels reports.
	Name string `json:"name"`
	// Perturbation is FePIA step 2.
	Perturbation PerturbationSpec `json:"perturbation"`
	// Norm selects the perturbation-space norm: "l2" (default), "l1",
	// "linf".
	Norm string `json:"norm,omitempty"`
	// Features is FePIA steps 1 and 3.
	Features []FeatureSpec `json:"features"`
	// Anytime opts this document into anytime serving: if the request
	// deadline expires before a numeric boundary solve converges, the
	// response carries the best certified lower bound ("bound": "lower",
	// meta.anytime true) instead of failing with a timeout. The fepiad
	// -anytime flag enables the same behaviour server-wide. omitempty
	// keeps the canonical route-key digest of non-anytime documents
	// unchanged.
	Anytime bool `json:"anytime,omitempty"`
}

// PerturbationSpec mirrors core.Perturbation.
type PerturbationSpec struct {
	Name     string    `json:"name"`
	Orig     []float64 `json:"orig"`
	Units    string    `json:"units,omitempty"`
	Discrete bool      `json:"discrete,omitempty"`
}

// FeatureSpec is one performance feature. Min/Max are pointers so "absent"
// (one-sided bound) is distinguishable from zero.
type FeatureSpec struct {
	Name   string     `json:"name"`
	Min    *float64   `json:"min,omitempty"`
	Max    *float64   `json:"max,omitempty"`
	Impact ImpactSpec `json:"impact"`
}

// ImpactSpec describes an impact function.
type ImpactSpec struct {
	// Type is "linear" or "terms".
	Type string `json:"type"`
	// Coeffs and Offset apply to "linear".
	Coeffs []float64 `json:"coeffs,omitempty"`
	Offset float64   `json:"offset,omitempty"`
	// Terms applies to "terms".
	Terms []TermSpec `json:"terms,omitempty"`
}

// TermSpec is one convex term.
type TermSpec struct {
	// Kind is "linear", "power", "exp", or "xlogx".
	Kind string `json:"kind"`
	// Index is the perturbation component the term depends on.
	Index int `json:"index"`
	// Coeff is the non-negative multiplier.
	Coeff float64 `json:"coeff"`
	// P is the exponent/rate for "power" and "exp".
	P float64 `json:"p,omitempty"`
}

// System is a parsed, validated spec ready for analysis.
type System struct {
	// Name labels reports.
	Name string
	// Features is Φ.
	Features []core.Feature
	// Perturbation is π with its operating point.
	Perturbation core.Perturbation
	// Options carries the norm selection.
	Options core.Options
	// RouteKey is a deterministic 64-bit digest of the canonical spec
	// document, identical for the same spec on every node regardless of
	// request formatting. The cluster layer (internal/cluster) hashes it
	// onto the consistent-hash ring to pick the owning fepiad node, so
	// structurally identical systems always land on the same node's warm
	// cache.
	RouteKey uint64
	// File is the decoded source document the system was built from,
	// retained so cluster forwarding can re-marshal sub-batches without
	// keeping the original request body around.
	File File
}

// Parse decodes and validates a JSON spec. Every failure is a
// *ValidationError carrying the JSON field path of the offending value
// (and matching ErrInvalidSpec), so callers can distinguish client
// mistakes from engine failures with errors.As.
func Parse(data []byte) (*System, error) {
	var f File
	if err := json.Unmarshal(data, &f); err != nil {
		return nil, &ValidationError{Msg: "malformed JSON: " + err.Error(), Err: err}
	}
	return Build(f)
}

// Build validates a decoded File and assembles the analysable system.
func Build(f File) (*System, error) {
	p := core.Perturbation{
		Name:     f.Perturbation.Name,
		Orig:     vecmath.Clone(f.Perturbation.Orig),
		Units:    f.Perturbation.Units,
		Discrete: f.Perturbation.Discrete,
	}
	if p.Name == "" {
		p.Name = "π"
	}
	if err := p.Validate(); err != nil {
		return nil, invalidErr("perturbation", err)
	}
	dim := len(p.Orig)

	var opts core.Options
	switch f.Norm {
	case "", "l2":
		opts.Norm = vecmath.L2{}
	case "l1":
		opts.Norm = vecmath.L1{}
	case "linf":
		opts.Norm = vecmath.LInf{}
	default:
		return nil, invalidf("norm", "unknown norm %q (want l2, l1, or linf)", f.Norm)
	}

	if len(f.Features) == 0 {
		return nil, invalidf("features", "no features")
	}
	features := make([]core.Feature, 0, len(f.Features))
	for i, fs := range f.Features {
		fpath := fmt.Sprintf("features[%d]", i)
		name := fs.Name
		if name == "" {
			name = fmt.Sprintf("phi_%d", i+1)
		}
		bounds := core.Bounds{Min: math.Inf(-1), Max: math.Inf(1)}
		if fs.Min != nil {
			bounds.Min = *fs.Min
		}
		if fs.Max != nil {
			bounds.Max = *fs.Max
		}
		if fs.Min == nil && fs.Max == nil {
			return nil, invalidf(fpath, "feature %q has neither min nor max", name)
		}
		impact, err := buildImpact(fs.Impact, dim, fpath+".impact")
		if err != nil {
			return nil, err
		}
		feature := core.Feature{Name: name, Impact: impact, Bounds: bounds}
		if err := feature.Validate(); err != nil {
			return nil, invalidErr(fpath, err)
		}
		features = append(features, feature)
	}
	return &System{Name: f.Name, Features: features, Perturbation: p, Options: opts,
		RouteKey: routeKey(f), File: f}, nil
}

// routeKey digests the canonical re-marshaled form of a decoded File —
// struct field order is fixed and request whitespace is gone, so two
// nodes decoding the same spec always agree on the key.
func routeKey(f File) uint64 {
	doc, err := json.Marshal(f)
	if err != nil {
		// A decoded File always re-marshals; keep Build infallible here.
		return 0
	}
	h := fnv.New64a()
	_, _ = h.Write(doc)
	return h.Sum64()
}

// buildImpact assembles the impact function of one feature; path locates
// the impact object in the document for error reporting.
func buildImpact(is ImpactSpec, dim int, path string) (core.Impact, error) {
	switch is.Type {
	case "linear":
		if len(is.Coeffs) != dim {
			return nil, invalidf(path+".coeffs", "%d coefficients for a %d-dimensional perturbation", len(is.Coeffs), dim)
		}
		imp, err := core.NewLinearImpact(is.Coeffs, is.Offset)
		if err != nil {
			return nil, invalidErr(path, err)
		}
		return imp, nil
	case "terms":
		if len(is.Terms) == 0 {
			return nil, invalidf(path+".terms", "empty term list")
		}
		var c convexfn.Complexity
		for j, ts := range is.Terms {
			kind, err := parseKind(ts.Kind)
			if err != nil {
				return nil, invalidErr(fmt.Sprintf("%s.terms[%d].kind", path, j), err)
			}
			c = append(c, convexfn.Term{Kind: kind, Index: ts.Index, Coeff: ts.Coeff, P: ts.P})
		}
		if err := c.Validate(dim); err != nil {
			return nil, invalidErr(path+".terms", err)
		}
		if c.IsLinear() {
			imp, err := core.NewLinearImpact(c.LinearCoeffs(dim), 0)
			if err != nil {
				return nil, invalidErr(path+".terms", err)
			}
			return imp, nil
		}
		cc := c
		return &core.FuncImpact{
			N:      dim,
			F:      cc.Eval,
			Grad:   cc.Gradient,
			Convex: true,
			// The term list fully determines the function, so encode it as
			// the impact's content identity: decoding the same document
			// twice — or on two cluster nodes — yields cache-equal
			// impacts, and convex radii memoise across requests like
			// linear ones do.
			Fingerprint: termsFingerprint(dim, cc),
		}, nil
	case "":
		return nil, invalidf(path+".type", "impact type missing")
	default:
		return nil, invalidf(path+".type", "unknown impact type %q (want linear or terms)", is.Type)
	}
}

// termsFingerprint canonically encodes a validated term list (plus the
// perturbation dimension) as the FuncImpact content identity. Every
// field that changes the function's value enters the encoding, floats by
// IEEE-754 bit pattern, so fingerprint equality is exactly functional
// equality for terms-built impacts.
func termsFingerprint(dim int, c convexfn.Complexity) []byte {
	b := make([]byte, 0, 8+24*len(c))
	b = append(b, 't', '1') // terms encoding, version 1
	b = binary.LittleEndian.AppendUint64(b, uint64(dim))
	for _, t := range c {
		b = append(b, byte(t.Kind))
		b = binary.LittleEndian.AppendUint64(b, uint64(t.Index))
		b = binary.LittleEndian.AppendUint64(b, math.Float64bits(t.Coeff))
		b = binary.LittleEndian.AppendUint64(b, math.Float64bits(t.P))
	}
	return b
}

// parseKind maps the JSON kind strings onto TermKind.
func parseKind(s string) (convexfn.TermKind, error) {
	switch s {
	case "linear":
		return convexfn.LinearTerm, nil
	case "power":
		return convexfn.PowerTerm, nil
	case "exp":
		return convexfn.ExpTerm, nil
	case "xlogx":
		return convexfn.XLogXTerm, nil
	default:
		return 0, fmt.Errorf("unknown term kind %q (want linear, power, exp, or xlogx)", s)
	}
}

// ResultJSON is the machine-readable analysis output of cmd/fepia.
type ResultJSON struct {
	Name         string       `json:"name,omitempty"`
	Perturbation string       `json:"perturbation"`
	Units        string       `json:"units,omitempty"`
	Robustness   float64      `json:"robustness"`
	Critical     string       `json:"critical_feature,omitempty"`
	Radii        []RadiusJSON `json:"radii"`
	// Degraded marks an analysis served from the fepiad radius cache
	// while the engine was unavailable (circuit open or a solve failure).
	//
	// Deprecated: the top-level marker is superseded by Meta.Degraded and
	// is only emitted by fepiad behind the -compat-v1-degraded flag (one
	// release of grace; see docs/SERVICE.md). Library callers and the CLIs
	// never set it.
	Degraded bool `json:"degraded,omitempty"`
	// Meta is the fepiad serving envelope: which node answered, whether
	// the request was forwarded across the cluster ring, whether the
	// answer was served degraded, and where the radii came from (cache
	// hit, fresh solve, coalesced wait, or kernel sweep). Nil on library
	// and CLI output, so in-process documents stay byte-identical to
	// pre-cluster releases.
	Meta *ResponseMeta `json:"meta,omitempty"`
}

// RadiusJSON is one feature's radius.
type RadiusJSON struct {
	Feature  string    `json:"feature"`
	Radius   float64   `json:"radius"`
	Kind     string    `json:"bound"`
	Boundary []float64 `json:"boundary,omitempty"`
}

// Encode converts an analysis into the JSON result document.
// Non-finite radii are serialised as the string "inf" by the caller's
// encoder settings; to stay plain-JSON compatible they are emitted as −1
// with the bound "unreachable".
func Encode(name string, a core.Analysis) ResultJSON {
	out := ResultJSON{
		Name:         name,
		Perturbation: a.Perturbation,
		Units:        a.Units,
		Robustness:   finiteOr(a.Robustness, -1),
	}
	if cf := a.CriticalFeature(); cf != nil {
		out.Critical = cf.Feature
	}
	for _, r := range a.Radii {
		out.Radii = append(out.Radii, RadiusJSON{
			Feature:  r.Feature,
			Radius:   finiteOr(r.Radius, -1),
			Kind:     r.Kind.String(),
			Boundary: r.Boundary,
		})
	}
	return out
}

func finiteOr(x, alt float64) float64 {
	if math.IsInf(x, 0) || math.IsNaN(x) {
		return alt
	}
	return x
}
