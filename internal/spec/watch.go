package spec

import "fepia/internal/core"

// Watch wire format (docs/SERVICE.md, "/v1/watch"): one request document
// opens an incremental re-analysis session over a trajectory of operating
// points; the response is newline-delimited JSON — one WatchFrame per
// step, then exactly one WatchSummary. The same types drive cmd/loadgen
// -watch and cmd/scenariolab -mode live, so every consumer of the stream
// decodes the wire the server encodes.

// WatchRequest is the body of GET|POST /v1/watch: the system to watch
// plus the ordered operating points to step it through. Every point must
// have the system's perturbation dimension.
type WatchRequest struct {
	System File        `json:"system"`
	Points [][]float64 `json:"points"`
}

// WatchFrame is one streamed step: the operating point analysed, the
// resulting robustness metric, and ONLY the radii whose answer moved
// since the previous frame (on the first frame, all of them). A client
// reconstructs the full radius set by overlaying changed radii onto its
// running copy — that is the point of the incremental wire: a
// single-coordinate move ships one radius, not the whole system.
type WatchFrame struct {
	// Step is the 1-based step index within the session.
	Step int `json:"step"`
	// Orig is the operating point this frame was analysed at.
	Orig []float64 `json:"orig"`
	// Robustness is ρ_μ(Φ, π) at Orig (paper Eq. 6); -1 when unreachable,
	// matching ResultJSON's non-finite convention.
	Robustness float64 `json:"robustness"`
	// Critical names the feature attaining the minimum radius.
	Critical string `json:"critical_feature,omitempty"`
	// Changed carries the radii that moved, in ascending feature order.
	Changed []RadiusJSON `json:"changed"`
	// ChangedCount duplicates len(Changed) so consumers aggregating the
	// stream (loadgen, smoke checks) need not decode the radii.
	ChangedCount int `json:"changed_count"`
	// Meta is the per-frame serving envelope: node identity, cache
	// provenance of this step's scalar-path solves, anytime marker.
	Meta *ResponseMeta `json:"meta,omitempty"`
}

// WatchSummary is the final frame of every watch stream, successful or
// not. Done is always true — it is the end-of-stream marker clients key
// on. A mid-stream failure (the HTTP status is already committed to 200
// by then) reports itself here via Error and ErrorKind, with Steps
// holding the number of frames that were completed and are trustworthy.
type WatchSummary struct {
	Done         bool   `json:"done"`
	Steps        int    `json:"steps"`
	TotalChanged int    `json:"total_changed"`
	Error        string `json:"error,omitempty"`
	ErrorKind    string `json:"error_kind,omitempty"`
}

// EncodeWatchFrame assembles the wire frame for one analysed step at
// operating point orig: changed indexes a.Radii (ascending), exactly as
// batch.StepResult reports it. Non-finite radii follow Encode's -1
// convention.
func EncodeWatchFrame(step int, orig []float64, a core.Analysis, changed []int) WatchFrame {
	f := WatchFrame{
		Step:         step,
		Orig:         orig,
		Robustness:   finiteOr(a.Robustness, -1),
		Changed:      make([]RadiusJSON, 0, len(changed)),
		ChangedCount: len(changed),
	}
	if cf := a.CriticalFeature(); cf != nil {
		f.Critical = cf.Feature
	}
	for _, i := range changed {
		r := a.Radii[i]
		f.Changed = append(f.Changed, RadiusJSON{
			Feature:  r.Feature,
			Radius:   finiteOr(r.Radius, -1),
			Kind:     r.Kind.String(),
			Boundary: r.Boundary,
		})
	}
	return f
}
