package spec

// This file defines the serving-metadata block of the fepiad wire
// protocol, introduced with cluster serving (docs/CLUSTER.md). Every
// fepiad 2xx answer embeds a ResponseMeta — per result on /v1/analyze,
// per result AND at the top level on /v1/batch — so clients can see
// which node answered, whether the cluster forwarded, and how fresh the
// radii are, without parsing headers.

// Cache provenance values of ResponseMeta.Cache, ordered coldest first.
// A batch's top-level meta reports the coldest source any of its systems
// needed.
const (
	// CacheMiss: at least one radius was solved fresh for this request.
	CacheMiss = "miss"
	// CacheCoalesced: at least one radius was obtained by waiting on an
	// identical in-flight solve (singleflight), none solved fresh.
	CacheCoalesced = "coalesced"
	// CacheKernel: at least one radius came out of a vectorized SoA
	// kernel sweep (which populates the cache for later hits), none
	// solved fresh or coalesced.
	CacheKernel = "kernel"
	// CacheHit: every radius was served from the warm radius cache.
	CacheHit = "hit"
)

// ResponseMeta is the serving envelope attached to fepiad results. It
// describes how the answer was produced, never what the answer is: two
// responses for the same spec are byte-identical outside their meta
// blocks regardless of which node solved, forwarded, or degraded.
type ResponseMeta struct {
	// Node is the ID of the fepiad node that produced the result (the
	// ring owner on a forwarded request). Empty on a solo node with no
	// -node-id configured.
	Node string `json:"node,omitempty"`
	// Forwarded reports that the result crossed the cluster: the node
	// that accepted the request did not own the spec's ring arc and
	// relayed it to Node.
	Forwarded bool `json:"forwarded,omitempty"`
	// Degraded marks an answer produced while the preferred path was
	// unavailable — served from the radius cache behind an open breaker,
	// or solved locally because the owning peer was unreachable. The
	// values are exact; only their freshness guarantee is weaker.
	Degraded bool `json:"degraded,omitempty"`
	// Cache is the radii's provenance: "hit", "miss", "coalesced", or
	// "kernel" (see the Cache* constants). Empty when the engine did not
	// consult the radius cache at all.
	Cache string `json:"cache,omitempty"`
	// Anytime marks a partial answer: the request deadline expired
	// before every boundary solve converged, and at least one radius is
	// a certified lower bound ("bound": "lower" on the radius) rather
	// than a converged value. Only set when anytime serving was opted
	// into (-anytime or the spec's "anytime" field); a batch's top-level
	// meta sets it when any of its systems is partial.
	Anytime bool `json:"anytime,omitempty"`
}

// WorstCache returns the colder of two cache-provenance values, using
// the miss < coalesced < kernel < hit order; empty strings lose to any
// named source. Batch handlers fold per-system sources with it.
func WorstCache(a, b string) string {
	rank := func(s string) int {
		switch s {
		case CacheMiss:
			return 1
		case CacheCoalesced:
			return 2
		case CacheKernel:
			return 3
		case CacheHit:
			return 4
		}
		return 5
	}
	if a == "" {
		return b
	}
	if b == "" {
		return a
	}
	if rank(b) < rank(a) {
		return b
	}
	return a
}
