package spec

import (
	"errors"
	"strings"
	"testing"
)

// TestValidationErrorPaths checks every parse failure is a typed
// *ValidationError carrying the JSON field path of the offending value
// and matching the ErrInvalidSpec sentinel.
func TestValidationErrorPaths(t *testing.T) {
	cases := []struct {
		name, doc, wantPath string
	}{
		{"malformed JSON", `{`, ""},
		{"empty perturbation", `{"features":[{"max":1,"impact":{"type":"linear","coeffs":[1]}}]}`, "perturbation"},
		{"unknown norm", `{"perturbation":{"orig":[1]},"norm":"l7","features":[{"max":1,"impact":{"type":"linear","coeffs":[1]}}]}`, "norm"},
		{"no features", `{"perturbation":{"orig":[1]}}`, "features"},
		{"no bounds", `{"perturbation":{"orig":[1]},"features":[{"impact":{"type":"linear","coeffs":[1]}}]}`, "features[0]"},
		{"inverted bounds", `{"perturbation":{"orig":[1]},"features":[{"min":5,"max":1,"impact":{"type":"linear","coeffs":[1]}}]}`, "features[0]"},
		{"coeff dimension", `{"perturbation":{"orig":[1]},"features":[{"max":1,"impact":{"type":"linear","coeffs":[1,2]}}]}`, "features[0].impact.coeffs"},
		{"missing type", `{"perturbation":{"orig":[1]},"features":[{"max":1,"impact":{}}]}`, "features[0].impact.type"},
		{"unknown type", `{"perturbation":{"orig":[1]},"features":[{"max":1,"impact":{"type":"magic"}}]}`, "features[0].impact.type"},
		{"empty terms", `{"perturbation":{"orig":[1]},"features":[{"max":1,"impact":{"type":"terms"}}]}`, "features[0].impact.terms"},
		{"unknown kind", `{"perturbation":{"orig":[1]},"features":[{"max":1,"impact":{"type":"terms","terms":[{"kind":"linear","index":0,"coeff":1},{"kind":"quux","index":0,"coeff":1}]}}]}`, "features[0].impact.terms[1].kind"},
		{"bad term index", `{"perturbation":{"orig":[1]},"features":[{"max":1,"impact":{"type":"terms","terms":[{"kind":"linear","index":5,"coeff":1}]}}]}`, "features[0].impact.terms"},
	}
	for _, tc := range cases {
		_, err := Parse([]byte(tc.doc))
		if err == nil {
			t.Errorf("%s: accepted", tc.name)
			continue
		}
		if !errors.Is(err, ErrInvalidSpec) {
			t.Errorf("%s: %v does not match ErrInvalidSpec", tc.name, err)
		}
		var ve *ValidationError
		if !errors.As(err, &ve) {
			t.Errorf("%s: %T is not a *ValidationError", tc.name, err)
			continue
		}
		if ve.Path != tc.wantPath {
			t.Errorf("%s: path %q, want %q (msg: %s)", tc.name, ve.Path, tc.wantPath, ve.Msg)
		}
		if !strings.Contains(err.Error(), "spec: ") {
			t.Errorf("%s: error text %q lacks the spec prefix", tc.name, err)
		}
	}
}

// TestValidationErrorUnwrap checks the underlying cause stays reachable.
func TestValidationErrorUnwrap(t *testing.T) {
	_, err := Parse([]byte(`{`))
	var ve *ValidationError
	if !errors.As(err, &ve) || ve.Err == nil {
		t.Fatalf("malformed JSON lost its cause: %+v", err)
	}
	if !strings.Contains(ve.Msg, "malformed JSON") {
		t.Errorf("msg = %q", ve.Msg)
	}
}

// TestPrefixPath relocates validation paths and passes other errors
// through.
func TestPrefixPath(t *testing.T) {
	inner := &ValidationError{Path: "features[2].impact", Msg: "x"}
	var ve *ValidationError
	if !errors.As(PrefixPath("systems[7]", inner), &ve) || ve.Path != "systems[7].features[2].impact" {
		t.Errorf("prefixed path = %+v", ve)
	}
	if !errors.As(PrefixPath("systems[0]", &ValidationError{Msg: "doc-level"}), &ve) || ve.Path != "systems[0]" {
		t.Errorf("doc-level prefix = %+v", ve)
	}
	plain := errors.New("not a validation error")
	if got := PrefixPath("systems[0]", plain); got != plain {
		t.Errorf("non-validation error was rewritten: %v", got)
	}
}

// TestParseBatch round-trips the batch envelope and roots inner failures
// at systems[i].
func TestParseBatch(t *testing.T) {
	good := `{"systems": [
	  {"name":"a","perturbation":{"orig":[1,2]},"features":[{"max":10,"impact":{"type":"linear","coeffs":[1,1]}}]},
	  {"name":"b","perturbation":{"orig":[3]},"norm":"l1","features":[{"max":9,"impact":{"type":"linear","coeffs":[2]}}]}
	]}`
	systems, err := ParseBatch([]byte(good))
	if err != nil {
		t.Fatal(err)
	}
	if len(systems) != 2 || systems[0].Name != "a" || systems[1].Name != "b" {
		t.Fatalf("parsed: %+v", systems)
	}

	for name, tc := range map[string]struct{ doc, wantPath string }{
		"malformed":  {`{"systems": [`, ""},
		"empty":      {`{"systems": []}`, "systems"},
		"bad second": {`{"systems": [{"perturbation":{"orig":[1]},"features":[{"max":1,"impact":{"type":"linear","coeffs":[1]}}]},{"perturbation":{"orig":[1]},"features":[]}]}`, "systems[1].features"},
	} {
		_, err := ParseBatch([]byte(tc.doc))
		var ve *ValidationError
		if !errors.As(err, &ve) {
			t.Errorf("%s: %v is not a ValidationError", name, err)
			continue
		}
		if ve.Path != tc.wantPath {
			t.Errorf("%s: path %q, want %q", name, ve.Path, tc.wantPath)
		}
	}
}
