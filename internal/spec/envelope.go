package spec

// This file defines the envelope types of the fepiad wire protocol.
// POST /v1/analyze accepts a bare File document and answers with a
// ResultJSON; POST /v1/batch accepts a BatchRequest and answers with a
// BatchResponse whose results are in request order. Every non-2xx answer
// is an ErrorJSON.

import (
	"encoding/json"
	"fmt"
)

// BatchRequest is the POST /v1/batch body: many systems analysed in one
// round trip over the server's worker pool and shared radius cache.
type BatchRequest struct {
	// Systems are the spec documents to analyse, each self-contained
	// (own perturbation, norm, and features).
	Systems []File `json:"systems"`
}

// BatchResponse is the POST /v1/batch answer.
type BatchResponse struct {
	// Results holds one analysis per submitted system, in request order.
	// Each carries its own ResponseMeta when served by fepiad (systems in
	// one batch may resolve on different cluster nodes).
	Results []ResultJSON `json:"results"`
	// Meta summarises the whole batch: the accepting node, whether ANY
	// system was forwarded or degraded, and the coldest cache source any
	// system needed. Nil on library output.
	Meta *ResponseMeta `json:"meta,omitempty"`
}

// ErrorJSON is the error envelope of every non-2xx fepiad response.
type ErrorJSON struct {
	// Error is the human-readable message.
	Error string `json:"error"`
	// Kind classifies the failure: "invalid_spec", "unsupported",
	// "solver_failure", "timeout", "overloaded", "shutting_down",
	// "circuit_open", "degraded", or "internal".
	Kind string `json:"kind"`
	// Path is the JSON field path of the offending value for
	// "invalid_spec" errors (e.g. "systems[3].features[0].impact").
	Path string `json:"path,omitempty"`
}

// ParseBatch decodes and validates a BatchRequest, returning one analysable
// System per entry, in order. Failures are *ValidationError values whose
// paths are rooted at "systems[i]".
func ParseBatch(data []byte) ([]*System, error) {
	var req BatchRequest
	if err := json.Unmarshal(data, &req); err != nil {
		return nil, &ValidationError{Msg: "malformed JSON: " + err.Error(), Err: err}
	}
	if len(req.Systems) == 0 {
		return nil, invalidf("systems", "no systems")
	}
	out := make([]*System, len(req.Systems))
	for i, f := range req.Systems {
		sys, err := Build(f)
		if err != nil {
			return nil, PrefixPath(fmt.Sprintf("systems[%d]", i), err)
		}
		out[i] = sys
	}
	return out, nil
}
