package spec

import (
	"testing"

	"fepia/internal/core"
)

// FuzzParse checks that arbitrary byte input never panics the spec parser
// and that everything it accepts is actually analysable (the invariant
// downstream tools rely on). Run the seeds with `go test`; explore with
// `go test -fuzz=FuzzParse ./internal/spec`.
func FuzzParse(f *testing.F) {
	f.Add([]byte(webFarm))
	f.Add([]byte(`{`))
	f.Add([]byte(`{"perturbation":{"orig":[1]},"features":[{"max":1,"impact":{"type":"linear","coeffs":[1]}}]}`))
	f.Add([]byte(`{"perturbation":{"orig":[0,0]},"norm":"l1","features":[{"min":-1,"impact":{"type":"terms","terms":[{"kind":"exp","index":1,"coeff":2,"p":0.1}]}}]}`))
	f.Add([]byte(`{"perturbation":{"orig":[1e308,1e308]},"features":[{"max":1e308,"impact":{"type":"linear","coeffs":[1e308,1e308]}}]}`))
	f.Fuzz(func(t *testing.T, data []byte) {
		sys, err := Parse(data)
		if err != nil {
			return // rejected input is fine; panics are not
		}
		// Accepted specs must be analysable without panicking. Errors are
		// legitimate (e.g. non-ℓ₂ norm with a non-linear impact).
		a, err := core.Analyze(sys.Features, sys.Perturbation, sys.Options)
		if err != nil {
			return
		}
		// And the result must be encodable.
		_ = Encode(sys.Name, a)
	})
}
