package core

import (
	"context"
	"fmt"
	"math"
	"sort"
	"strings"
)

// Analysis is the outcome of FePIA step 4 for one perturbation parameter:
// every feature's robustness radius and the aggregate robustness metric.
type Analysis struct {
	// Perturbation names the parameter analysed.
	Perturbation string
	// Units echoes the parameter's units (the metric has the same units).
	Units string
	// Radii holds one entry per feature, in input order.
	Radii []RadiusResult
	// Robustness is ρ_μ(Φ, π_j) = min_i r_μ(φ_i, π_j), floored when the
	// parameter is discrete (§3.2). +Inf if every radius is infinite.
	Robustness float64
	// Critical is the index (into Radii) of the feature attaining the
	// minimum — the feature that fails first as the parameter drifts.
	// −1 when every radius is infinite.
	Critical int
}

// Analyze evaluates Eq. 2: it computes the robustness radius of every
// feature in Φ against the perturbation parameter and aggregates them by
// taking the minimum. The feature set must be non-empty. It delegates to
// AnalyzeContext with context.Background(); callers that need to bound or
// cancel an analysis should call AnalyzeContext directly.
func Analyze(features []Feature, p Perturbation, opts Options) (Analysis, error) {
	return AnalyzeContext(context.Background(), features, p, opts)
}

// AnalyzeContext is Analyze under a context: cancellation or deadline
// expiry is observed between per-feature radius computations (a single
// radius solve is never interrupted mid-flight), and the ctx error is
// returned verbatim so callers can match context.Canceled and
// context.DeadlineExceeded with errors.Is.
func AnalyzeContext(ctx context.Context, features []Feature, p Perturbation, opts Options) (Analysis, error) {
	if len(features) == 0 {
		return Analysis{}, fmt.Errorf("core: empty feature set Φ")
	}
	radii := make([]RadiusResult, len(features))
	for i, f := range features {
		if err := ctx.Err(); err != nil {
			return Analysis{}, err
		}
		r, err := ComputeRadius(f, p, opts)
		if err != nil {
			return Analysis{}, err
		}
		radii[i] = r
	}
	return NewAnalysis(p, radii), nil
}

// NewAnalysis aggregates precomputed per-feature radii into the Eq. 2
// metric: the minimum radius, the index of the binding feature, and the
// §3.2 floor for discrete parameters. It is the shared final step of
// Analyze and of the concurrent batch engine, which computes the radii
// out of band (possibly cached) and must aggregate identically.
func NewAnalysis(p Perturbation, radii []RadiusResult) Analysis {
	a := Analysis{
		Perturbation: p.Name,
		Units:        p.Units,
		Radii:        radii,
		Robustness:   math.Inf(1),
		Critical:     -1,
	}
	for i, r := range radii {
		if r.Radius < a.Robustness {
			a.Robustness = r.Radius
			a.Critical = i
		}
	}
	if p.Discrete && !math.IsInf(a.Robustness, 1) {
		a.Robustness = math.Floor(a.Robustness)
	}
	return a
}

// CriticalFeature returns the result for the binding feature, or nil when
// all radii are infinite.
func (a Analysis) CriticalFeature() *RadiusResult {
	if a.Critical < 0 {
		return nil
	}
	return &a.Radii[a.Critical]
}

// String renders a short multi-line report: the metric, the critical
// feature, and the per-feature radii sorted ascending (ties by name).
func (a Analysis) String() string {
	var b strings.Builder
	units := a.Units
	if units != "" {
		units = " " + units
	}
	fmt.Fprintf(&b, "robustness ρ(Φ, %s) = %g%s\n", a.Perturbation, a.Robustness, units)
	if cf := a.CriticalFeature(); cf != nil {
		fmt.Fprintf(&b, "critical feature: %s (%s, %s)\n", cf.Feature, cf.Kind, cf.Method)
	}
	order := make([]int, len(a.Radii))
	for i := range order {
		order[i] = i
	}
	sort.Slice(order, func(x, y int) bool {
		rx, ry := a.Radii[order[x]], a.Radii[order[y]]
		if rx.Radius != ry.Radius {
			return rx.Radius < ry.Radius
		}
		return rx.Feature < ry.Feature
	})
	for _, i := range order {
		r := a.Radii[i]
		fmt.Fprintf(&b, "  r(%s) = %g (%s)\n", r.Feature, r.Radius, r.Kind)
	}
	return b.String()
}

// ParameterSet couples one perturbation parameter with the features (and
// impact functions) it affects — the input to a multi-parameter analysis.
// The paper analyses one parameter at a time and defers simultaneous
// parameters to [1]; MultiAnalyze implements the per-parameter extension:
// each parameter gets its own ρ, and the report collects them so a designer
// can see which uncertainty dimension the mapping is most fragile against.
type ParameterSet struct {
	// Perturbation is π_j.
	Perturbation Perturbation
	// Features are the φ_i with their impact functions f_ij against this
	// parameter.
	Features []Feature
}

// MultiAnalysis aggregates per-parameter analyses.
type MultiAnalysis struct {
	// ByParameter holds one Analysis per ParameterSet, in input order.
	ByParameter []Analysis
}

// MultiAnalyze runs Analyze for every parameter set. It delegates to
// MultiAnalyzeContext with context.Background().
func MultiAnalyze(sets []ParameterSet, opts Options) (MultiAnalysis, error) {
	return MultiAnalyzeContext(context.Background(), sets, opts)
}

// MultiAnalyzeContext is MultiAnalyze under a context, threading ctx into
// every per-parameter AnalyzeContext call.
func MultiAnalyzeContext(ctx context.Context, sets []ParameterSet, opts Options) (MultiAnalysis, error) {
	if len(sets) == 0 {
		return MultiAnalysis{}, fmt.Errorf("core: empty parameter set Π")
	}
	out := MultiAnalysis{ByParameter: make([]Analysis, len(sets))}
	for i, s := range sets {
		a, err := AnalyzeContext(ctx, s.Features, s.Perturbation, opts)
		if err != nil {
			return MultiAnalysis{}, fmt.Errorf("core: parameter %q: %w", s.Perturbation.Name, err)
		}
		out.ByParameter[i] = a
	}
	return out, nil
}

// MostFragile returns the analysis with the smallest robustness metric
// normalised by the Euclidean norm of its operating point (so parameters
// with different units can be compared on relative fragility), together
// with its index. It returns index −1 for an empty analysis.
//
// Note: cross-parameter comparison is inherently unit-sensitive; the
// normalisation makes ρ dimensionless but is a pragmatic choice, not part
// of the paper's formulation.
func (m MultiAnalysis) MostFragile(origNorms []float64) (int, *Analysis) {
	best := -1
	bestVal := math.Inf(1)
	for i := range m.ByParameter {
		v := m.ByParameter[i].Robustness
		if len(origNorms) == len(m.ByParameter) && origNorms[i] > 0 {
			v /= origNorms[i]
		}
		if v < bestVal {
			bestVal = v
			best = i
		}
	}
	if best < 0 {
		return -1, nil
	}
	return best, &m.ByParameter[best]
}
