package core

import (
	"fmt"
	"math"

	"fepia/internal/vecmath"
)

// Bounds is the tuple ⟨β^min, β^max⟩ of step 1: the tolerable variation of
// a performance feature. Use math.Inf(-1) / math.Inf(1) for one-sided
// requirements (e.g. the makespan example only bounds the maximum).
type Bounds struct {
	Min, Max float64
}

// NoMin returns bounds with only an upper limit.
func NoMin(max float64) Bounds { return Bounds{Min: math.Inf(-1), Max: max} }

// NoMax returns bounds with only a lower limit.
func NoMax(min float64) Bounds { return Bounds{Min: min, Max: math.Inf(1)} }

// Validate rejects NaNs and inverted bounds.
func (b Bounds) Validate() error {
	if math.IsNaN(b.Min) || math.IsNaN(b.Max) {
		return fmt.Errorf("core: bounds contain NaN")
	}
	if b.Min > b.Max {
		return fmt.Errorf("core: inverted bounds ⟨%v, %v⟩", b.Min, b.Max)
	}
	return nil
}

// Contains reports whether value v satisfies β^min ≤ v ≤ β^max.
func (b Bounds) Contains(v float64) bool { return v >= b.Min && v <= b.Max }

// String renders the tuple as the paper writes it.
func (b Bounds) String() string { return fmt.Sprintf("⟨%g, %g⟩", b.Min, b.Max) }

// Feature is one performance feature φ_i ∈ Φ together with its tolerable
// variation (step 1) and its impact function against one perturbation
// parameter (step 3).
type Feature struct {
	// Name identifies the feature in reports (e.g. "F_3" or "L_7").
	Name string
	// Impact is f_ij for this feature against the perturbation parameter
	// under analysis.
	Impact Impact
	// Bounds is the tolerable variation ⟨β^min, β^max⟩.
	Bounds Bounds
}

// Validate checks the feature is analysable.
func (f Feature) Validate() error {
	if f.Impact == nil {
		return fmt.Errorf("core: feature %q has no impact function", f.Name)
	}
	if err := f.Bounds.Validate(); err != nil {
		return fmt.Errorf("core: feature %q: %w", f.Name, err)
	}
	return nil
}

// Perturbation is one perturbation parameter π_j ∈ Π: an uncertain vector
// quantity with an assumed operating point π_j^orig (step 2).
type Perturbation struct {
	// Name identifies the parameter in reports (e.g. "C" or "λ").
	Name string
	// Orig is π_j^orig, the value at which the system is assumed to
	// operate.
	Orig []float64
	// Units, optional, annotates reports (the metric inherits the units of
	// the parameter — seconds for ETC errors, objects/data-set for loads).
	Units string
	// Discrete marks integer-valued parameters such as the HiPer-D sensor
	// loads; the aggregate metric ρ is then floored, as §3.2 prescribes.
	Discrete bool
}

// Validate rejects empty or non-finite operating points.
func (p Perturbation) Validate() error {
	if len(p.Orig) == 0 {
		return fmt.Errorf("core: perturbation %q has an empty operating point", p.Name)
	}
	if !vecmath.AllFinite(p.Orig) {
		return fmt.Errorf("core: perturbation %q has a non-finite operating point", p.Name)
	}
	return nil
}
