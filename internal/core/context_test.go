package core

import (
	"context"
	"errors"
	"testing"

	"fepia/internal/vecmath"
)

// twoFeatures builds a minimal valid analysis input.
func twoFeatures(t *testing.T) ([]Feature, Perturbation) {
	t.Helper()
	f0, err := NewLinearImpact([]float64{1, 1}, 0)
	if err != nil {
		t.Fatal(err)
	}
	f1, err := NewLinearImpact([]float64{2, -1}, 0)
	if err != nil {
		t.Fatal(err)
	}
	features := []Feature{
		{Name: "a", Impact: f0, Bounds: NoMin(10)},
		{Name: "b", Impact: f1, Bounds: NoMin(10)},
	}
	return features, Perturbation{Name: "π", Orig: []float64{1, 1}}
}

// TestAnalyzeContextCancelled: a cancelled context aborts the analysis
// with the verbatim ctx error.
func TestAnalyzeContextCancelled(t *testing.T) {
	features, p := twoFeatures(t)
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	if _, err := AnalyzeContext(ctx, features, p, Options{}); !errors.Is(err, context.Canceled) {
		t.Fatalf("err = %v, want context.Canceled", err)
	}
	// MultiAnalyzeContext threads the same context.
	sets := []ParameterSet{{Perturbation: p, Features: features}}
	if _, err := MultiAnalyzeContext(ctx, sets, Options{}); !errors.Is(err, context.Canceled) {
		t.Fatalf("multi err = %v, want context.Canceled", err)
	}
}

// TestAnalyzeDelegates: the context-free path stays byte-identical to the
// context path under a live context.
func TestAnalyzeDelegates(t *testing.T) {
	features, p := twoFeatures(t)
	plain, err := Analyze(features, p, Options{})
	if err != nil {
		t.Fatal(err)
	}
	withCtx, err := AnalyzeContext(context.Background(), features, p, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if plain.Robustness != withCtx.Robustness || plain.Critical != withCtx.Critical {
		t.Fatalf("Analyze %+v != AnalyzeContext %+v", plain, withCtx)
	}
}

// TestSolveErrorTyped: engine-side failures surface as *SolveError with
// the underlying cause reachable through errors.Is.
func TestSolveErrorTyped(t *testing.T) {
	imp := &FuncImpact{
		N:      2,
		F:      func(x []float64) float64 { return x[0]*x[0] + x[1] },
		Convex: true,
	}
	f := Feature{Name: "q", Impact: imp, Bounds: NoMin(10)}
	p := Perturbation{Name: "π", Orig: []float64{1, 1}}
	// A non-linear impact under a non-ℓ₂ norm is unsolvable by design.
	_, err := ComputeRadius(f, p, Options{Norm: vecmath.L1{}})
	if err == nil {
		t.Fatal("non-ℓ₂ norm with a non-linear impact was accepted")
	}
	var se *SolveError
	if !errors.As(err, &se) {
		t.Fatalf("%T is not a *SolveError: %v", err, err)
	}
	if se.Feature != "q" || se.Kind != AtMax {
		t.Errorf("SolveError fields: %+v", se)
	}
	if !errors.Is(err, ErrNormUnsupported) {
		t.Errorf("underlying cause not reachable: %v", err)
	}
}
