package core

import (
	"fmt"
	"math"
	"strings"

	"fepia/internal/vecmath"
)

// This file implements the simultaneous-perturbation extension. Step 3 of
// the FePIA procedure assumes each perturbation parameter affects a
// feature independently and the paper defers the simultaneous case to
// reference [1]. Concatenating the parameter vectors reduces it to the
// single-parameter machinery: features over the joint vector can mix
// blocks freely (e.g. finishing times that depend on both the execution
// times AND per-machine slowdown factors), and the usual Eq. 1/2 analysis
// applies to the joint space.
//
// Caveat: the joint Euclidean norm adds components with different units.
// Either express the blocks in comparable units, or use a weighted norm
// (Options.Norm with vecmath.WeightedL2) to make the metric meaningful —
// the helper JointWeights builds per-block weights from the operating
// point magnitudes.

// JointPerturbation is a concatenation of several perturbation parameters
// with the bookkeeping needed to address blocks.
type JointPerturbation struct {
	// Perturbation is the combined parameter (Orig is the concatenation).
	Perturbation
	// Offsets[i] is the start index of block i; Offsets has one extra
	// trailing entry equal to the total length.
	Offsets []int
	// Names preserves the component parameters' names.
	Names []string
}

// ConcatPerturbations builds the joint parameter. The result is marked
// discrete only if every component is discrete (flooring a mixed vector's
// metric would be meaningless).
func ConcatPerturbations(name string, ps ...Perturbation) (JointPerturbation, error) {
	if len(ps) == 0 {
		return JointPerturbation{}, fmt.Errorf("core: no perturbations to concatenate")
	}
	j := JointPerturbation{
		Perturbation: Perturbation{Name: name, Discrete: true},
		Offsets:      make([]int, 0, len(ps)+1),
	}
	var units []string
	for _, p := range ps {
		if err := p.Validate(); err != nil {
			return JointPerturbation{}, err
		}
		j.Offsets = append(j.Offsets, len(j.Orig))
		j.Orig = append(j.Orig, p.Orig...)
		j.Names = append(j.Names, p.Name)
		if !p.Discrete {
			j.Discrete = false
		}
		if p.Units != "" {
			units = append(units, p.Units)
		}
	}
	j.Offsets = append(j.Offsets, len(j.Orig))
	j.Units = strings.Join(units, "⊕")
	if name == "" {
		j.Perturbation.Name = strings.Join(j.Names, "⊕")
	}
	return j, nil
}

// Block returns the sub-slice of x corresponding to block i of the joint
// parameter. The returned slice aliases x.
func (j JointPerturbation) Block(x []float64, i int) []float64 {
	if i < 0 || i >= len(j.Offsets)-1 {
		panic(fmt.Sprintf("core: block %d out of range [0,%d)", i, len(j.Offsets)-1))
	}
	return x[j.Offsets[i]:j.Offsets[i+1]]
}

// BlockImpact lifts an impact function defined on one block into the joint
// space: all other components are ignored. It lets single-parameter
// derivations (e.g. the Eq. 4 finishing times over C) be reused verbatim
// inside a joint analysis.
type BlockImpact struct {
	// Joint describes the concatenation.
	Joint JointPerturbation
	// BlockIndex selects the block the inner impact reads.
	BlockIndex int
	// Inner is the single-parameter impact.
	Inner Impact
}

// NewBlockImpact validates dimensions.
func NewBlockImpact(j JointPerturbation, block int, inner Impact) (*BlockImpact, error) {
	if block < 0 || block >= len(j.Offsets)-1 {
		return nil, fmt.Errorf("core: block %d out of range [0,%d)", block, len(j.Offsets)-1)
	}
	if want := j.Offsets[block+1] - j.Offsets[block]; inner.Dim() != want {
		return nil, fmt.Errorf("core: inner impact dimension %d != block size %d", inner.Dim(), want)
	}
	return &BlockImpact{Joint: j, BlockIndex: block, Inner: inner}, nil
}

// Eval applies the inner impact to the block.
func (b *BlockImpact) Eval(x []float64) float64 {
	return b.Inner.Eval(b.Joint.Block(x, b.BlockIndex))
}

// Dim returns the joint dimension.
func (b *BlockImpact) Dim() int { return len(b.Joint.Orig) }

// Gradient embeds the inner gradient into the joint space (zero outside
// the block).
func (b *BlockImpact) Gradient(dst, x []float64) []float64 {
	if len(dst) != len(x) {
		dst = make([]float64, len(x))
	} else {
		for i := range dst {
			dst[i] = 0
		}
	}
	blk := b.Joint.Block(x, b.BlockIndex)
	var inner []float64
	if gi, ok := b.Inner.(GradImpact); ok {
		inner = gi.Gradient(nil, blk)
	} else {
		fi := &FuncImpact{N: len(blk), F: b.Inner.Eval}
		inner = fi.Gradient(nil, blk)
	}
	copy(b.Joint.Block(dst, b.BlockIndex), inner)
	return dst
}

// JointWeights builds per-component weights for a weighted ℓ₂ norm that
// makes the blocks commensurable: each component is weighted by
// 1/scale_i² where scale_i is the block's characteristic magnitude
// (‖orig_block‖₂/√n_block, or 1 for an all-zero block). Under this norm a
// distance of 1 means "one characteristic unit of relative change",
// regardless of the blocks' native units.
func JointWeights(j JointPerturbation) (*vecmath.WeightedL2, error) {
	w := make([]float64, len(j.Orig))
	for b := 0; b < len(j.Offsets)-1; b++ {
		blk := j.Block(j.Orig, b)
		scale := vecmath.Euclidean(blk)
		if n := len(blk); n > 0 {
			scale /= math.Sqrt(float64(n))
		}
		if scale == 0 {
			scale = 1
		}
		for i := j.Offsets[b]; i < j.Offsets[b+1]; i++ {
			w[i] = 1 / (scale * scale)
		}
	}
	return vecmath.NewWeightedL2(w)
}
