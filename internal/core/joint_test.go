package core

import (
	"math"
	"testing"

	"fepia/internal/vecmath"
)

func TestConcatPerturbations(t *testing.T) {
	c := Perturbation{Name: "C", Orig: []float64{6, 4, 8}, Units: "s"}
	s := Perturbation{Name: "s", Orig: []float64{1, 1}, Units: "x", Discrete: true}
	j, err := ConcatPerturbations("", c, s)
	if err != nil {
		t.Fatal(err)
	}
	if len(j.Orig) != 5 {
		t.Fatalf("joint length %d", len(j.Orig))
	}
	if j.Offsets[0] != 0 || j.Offsets[1] != 3 || j.Offsets[2] != 5 {
		t.Errorf("offsets = %v", j.Offsets)
	}
	if j.Name != "C⊕s" || j.Units != "s⊕x" {
		t.Errorf("name %q units %q", j.Name, j.Units)
	}
	// Mixed discreteness → continuous.
	if j.Discrete {
		t.Errorf("mixed discreteness should not be discrete")
	}
	// All-discrete → discrete.
	d1 := Perturbation{Name: "a", Orig: []float64{1}, Discrete: true}
	d2 := Perturbation{Name: "b", Orig: []float64{2}, Discrete: true}
	jd, err := ConcatPerturbations("J", d1, d2)
	if err != nil {
		t.Fatal(err)
	}
	if !jd.Discrete || jd.Name != "J" {
		t.Errorf("all-discrete joint: %+v", jd.Perturbation)
	}
	// Blocks alias the input vector.
	x := []float64{10, 20, 30, 40, 50}
	blk := j.Block(x, 1)
	if len(blk) != 2 || blk[0] != 40 {
		t.Errorf("block = %v", blk)
	}
	// Errors.
	if _, err := ConcatPerturbations("x"); err == nil {
		t.Errorf("empty concat accepted")
	}
	if _, err := ConcatPerturbations("x", Perturbation{Name: "bad"}); err == nil {
		t.Errorf("invalid component accepted")
	}
	func() {
		defer func() {
			if recover() == nil {
				t.Errorf("out-of-range block access should panic")
			}
		}()
		j.Block(x, 5)
	}()
}

func TestBlockImpact(t *testing.T) {
	c := Perturbation{Name: "C", Orig: []float64{6, 4}, Units: "s"}
	s := Perturbation{Name: "s", Orig: []float64{1}, Units: "x"}
	j, err := ConcatPerturbations("", c, s)
	if err != nil {
		t.Fatal(err)
	}
	inner := mustLinear([]float64{1, 1}, 0) // F = C₀ + C₁
	bi, err := NewBlockImpact(j, 0, inner)
	if err != nil {
		t.Fatal(err)
	}
	x := []float64{6, 4, 9}
	if got := bi.Eval(x); got != 10 {
		t.Errorf("Eval = %v", got)
	}
	if bi.Dim() != 3 {
		t.Errorf("Dim = %d", bi.Dim())
	}
	g := bi.Gradient(nil, x)
	if g[0] != 1 || g[1] != 1 || g[2] != 0 {
		t.Errorf("Gradient = %v", g)
	}
	// Analysing a block-only feature in joint space must reproduce the
	// single-parameter radius (the extra dimensions add nothing).
	feature := Feature{Name: "F", Impact: bi, Bounds: NoMin(13)}
	a, err := Analyze([]Feature{feature}, j.Perturbation, Options{})
	if err != nil {
		t.Fatal(err)
	}
	want := 3 / math.Sqrt2
	if math.Abs(a.Robustness-want) > 1e-9 {
		t.Errorf("joint block radius = %v want %v", a.Robustness, want)
	}
	// Dimension validation.
	if _, err := NewBlockImpact(j, 1, inner); err == nil {
		t.Errorf("mismatched inner dimension accepted")
	}
	if _, err := NewBlockImpact(j, 9, inner); err == nil {
		t.Errorf("bad block index accepted")
	}
}

func TestJointBilinearSimultaneousPerturbation(t *testing.T) {
	// The genuinely simultaneous case the paper defers to [1]: machine m
	// runs two applications with estimated times (6, 4) and a slowdown
	// factor s (orig 1); its finishing time is F = s·(C₀ + C₁), bilinear —
	// and therefore NOT convex — in the joint vector (C₀, C₁, s). The
	// bound is 13. The analysis must find a radius no larger than the
	// closest single-block excursions: pure-C distance 3/√2 ≈ 2.121 and
	// pure-s distance 13/10 − 1 = 0.3.
	c := Perturbation{Name: "C", Orig: []float64{6, 4}, Units: "s"}
	s := Perturbation{Name: "s", Orig: []float64{1}}
	j, err := ConcatPerturbations("", c, s)
	if err != nil {
		t.Fatal(err)
	}
	impact := &FuncImpact{
		N: 3,
		F: func(x []float64) float64 {
			return x[2] * (x[0] + x[1])
		},
		Convex: false, // bilinear: run the annealing fallback too
	}
	feature := Feature{Name: "F", Impact: impact, Bounds: NoMin(13)}
	a, err := Analyze([]Feature{feature}, j.Perturbation, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if !(a.Robustness > 0) {
		t.Fatalf("joint ρ = %v", a.Robustness)
	}
	if a.Robustness > 0.3+1e-6 {
		t.Errorf("joint ρ = %v exceeds the pure-slowdown excursion 0.3", a.Robustness)
	}
	// The boundary point must be on the bound.
	if got := impact.Eval(a.Radii[0].Boundary); math.Abs(got-13) > 1e-4 {
		t.Errorf("boundary value = %v", got)
	}
}

func TestJointWeights(t *testing.T) {
	// Blocks with very different magnitudes become commensurable.
	big := Perturbation{Name: "λ", Orig: []float64{1000, 1000}}
	small := Perturbation{Name: "s", Orig: []float64{1}}
	j, err := ConcatPerturbations("", big, small)
	if err != nil {
		t.Fatal(err)
	}
	w, err := JointWeights(j)
	if err != nil {
		t.Fatal(err)
	}
	// A 10% relative change in either block has the same weighted norm.
	dBig := []float64{100, 100, 0}
	dSmall := []float64{0, 0, 0.1 * math.Sqrt2} // match the 2-component block's √2
	nBig := w.Of(dBig)
	nSmall := w.Of(dSmall)
	if math.Abs(nBig-nSmall) > 1e-9*nBig {
		t.Errorf("relative changes not commensurable: %v vs %v", nBig, nSmall)
	}
	// Zero block falls back to weight 1.
	zero := Perturbation{Name: "z", Orig: []float64{0, 0}}
	jz, err := ConcatPerturbations("", zero, small)
	if err != nil {
		t.Fatal(err)
	}
	wz, err := JointWeights(jz)
	if err != nil {
		t.Fatal(err)
	}
	if wz.W[0] != 1 || wz.W[1] != 1 {
		t.Errorf("zero-block weights = %v", wz.W[:2])
	}
	// Weighted analysis of a linear joint feature uses the dual norm.
	impact := mustLinear([]float64{1, 1, 0}, 0)
	feature := Feature{Name: "F", Impact: impact, Bounds: NoMin(3000)}
	a, err := Analyze([]Feature{feature}, j.Perturbation, Options{Norm: w})
	if err != nil {
		t.Fatal(err)
	}
	if !(a.Robustness > 0) || math.IsInf(a.Robustness, 0) {
		t.Errorf("weighted joint ρ = %v", a.Robustness)
	}
	_ = vecmath.L2{} // keep the import for the package's norm vocabulary
}
