package core

import (
	"context"
	"math"
	"sort"
	"testing"
	"time"

	"fepia/internal/vecmath"
)

// sphereFeature: impact ‖π‖² with analytic gradient, violated at β — the
// convex model system whose radius from the origin is √β.
func sphereFeature(beta float64) Feature {
	return Feature{
		Name: "sphere",
		Impact: &FuncImpact{
			N:      2,
			F:      func(pi []float64) float64 { return vecmath.Dot(pi, pi) },
			Convex: true,
		},
		Bounds: NoMin(beta),
	}
}

// With a context that never expires and no callback, the anytime entry
// point must be bit-identical to ComputeRadius — same solvers, same
// options, same order.
func TestAnytimeBitIdenticalWithoutDeadline(t *testing.T) {
	lin, err := NewLinearImpact([]float64{3, 4}, 0)
	if err != nil {
		t.Fatal(err)
	}
	cases := []Feature{
		sphereFeature(25),
		{Name: "lin", Impact: lin, Bounds: NoMin(25)},
		{Name: "nonconvex", Impact: &FuncImpact{
			N: 2,
			F: func(pi []float64) float64 {
				d := pi[0] - 2
				return d*d*d*d - 8*d*d + pi[1]*pi[1]
			},
		}, Bounds: NoMin(5)},
	}
	p := Perturbation{Name: "π", Orig: []float64{1, 0}}
	for _, f := range cases {
		plain, perr := ComputeRadius(f, p, Options{})
		any, aerr := ComputeRadiusAnytime(context.Background(), f, p, Options{}, nil)
		if (perr == nil) != (aerr == nil) {
			t.Fatalf("%s: errors diverge: %v vs %v", f.Name, perr, aerr)
		}
		if math.Float64bits(plain.Radius) != math.Float64bits(any.Radius) {
			t.Fatalf("%s: radius %v != %v (not bit-identical)", f.Name, plain.Radius, any.Radius)
		}
		if plain.Kind != any.Kind || plain.Method != any.Method {
			t.Fatalf("%s: kind/method %v/%v != %v/%v", f.Name, plain.Kind, plain.Method, any.Kind, any.Method)
		}
		for i := range plain.Boundary {
			if math.Float64bits(plain.Boundary[i]) != math.Float64bits(any.Boundary[i]) {
				t.Fatalf("%s: boundary[%d] %v != %v", f.Name, i, plain.Boundary[i], any.Boundary[i])
			}
		}
	}
}

// The progress stream must be strictly increasing and every value — the
// final one included — must stay at or below the converged radius (the
// certificates are mathematical; allow only the solver's own tolerance).
func TestAnytimeBoundsMonotoneBelowExact(t *testing.T) {
	f := sphereFeature(25)
	p := Perturbation{Name: "π", Orig: []float64{1, 0}} // radius 4: (5,0) is nearest violation
	var bounds []float64
	res, err := ComputeRadiusAnytime(context.Background(), f, p, Options{},
		func(lb float64) { bounds = append(bounds, lb) })
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(res.Radius-4) > 1e-6 {
		t.Fatalf("radius = %v, want 4", res.Radius)
	}
	if len(bounds) == 0 {
		t.Fatal("no certified bounds reported")
	}
	if !sort.Float64sAreSorted(bounds) {
		t.Fatalf("bounds not monotone: %v", bounds)
	}
	for i := 1; i < len(bounds); i++ {
		if bounds[i] <= bounds[i-1] {
			t.Fatalf("bounds not strictly increasing at %d: %v", i, bounds)
		}
	}
	slack := 1e-9 * (1 + res.Radius)
	if last := bounds[len(bounds)-1]; last > res.Radius+slack {
		t.Fatalf("certified bound %v exceeds converged radius %v", last, res.Radius)
	}
	if last := bounds[len(bounds)-1]; last <= 0 {
		t.Fatalf("final bound %v not positive", last)
	}
}

// An expired deadline yields a partial answer: Kind == LowerBound,
// Method == MethodAnytime, nil Boundary, nil error — and the partial
// radius is a true lower bound on the exact one.
func TestAnytimeDeadlinePartial(t *testing.T) {
	f := sphereFeature(25)
	p := Perturbation{Name: "π", Orig: []float64{1, 0}}
	exact, err := ComputeRadius(f, p, Options{})
	if err != nil {
		t.Fatal(err)
	}

	ctx, cancel := context.WithDeadline(context.Background(), time.Unix(0, 1))
	defer cancel()
	partial, err := ComputeRadiusAnytime(ctx, f, p, Options{}, nil)
	if err != nil {
		t.Fatalf("deadline expiry must not be an error in anytime mode: %v", err)
	}
	if partial.Kind != LowerBound || partial.Method != MethodAnytime {
		t.Fatalf("partial = %+v, want Kind=LowerBound Method=anytime", partial)
	}
	if partial.Boundary != nil {
		t.Fatalf("partial answer carries a boundary point: %v", partial.Boundary)
	}
	if partial.Radius < 0 || partial.Radius > exact.Radius+1e-9 {
		t.Fatalf("partial radius %v outside [0, exact=%v]", partial.Radius, exact.Radius)
	}
	if partial.Kind.String() != "lower" {
		t.Fatalf("LowerBound renders as %q on the wire, want \"lower\"", partial.Kind.String())
	}
}

// Cancellation that is not a deadline propagates as an error, exactly
// like the rest of the engine: a gone client gets nothing, not a bound.
func TestAnytimeCancelledPropagates(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	_, err := ComputeRadiusAnytime(ctx, sphereFeature(25), Perturbation{Name: "π", Orig: []float64{1, 0}}, Options{}, nil)
	if err != context.Canceled {
		t.Fatalf("err = %v, want context.Canceled", err)
	}
}

// A non-convex impact certifies nothing: under an expired deadline the
// partial answer is the trivial bound 0, never a guess from a partial
// annealing run.
func TestAnytimeNonConvexUncertified(t *testing.T) {
	f := Feature{Name: "w", Impact: &FuncImpact{
		N: 2,
		F: func(pi []float64) float64 {
			d := pi[0] - 2
			return d*d*d*d - 8*d*d + pi[1]*pi[1]
		},
	}, Bounds: NoMin(5)}
	ctx, cancel := context.WithDeadline(context.Background(), time.Unix(0, 1))
	defer cancel()
	res, err := ComputeRadiusAnytime(ctx, f, Perturbation{Name: "π", Orig: []float64{2, 0}}, Options{}, nil)
	if err != nil {
		t.Fatal(err)
	}
	if res.Kind != LowerBound || res.Radius != 0 {
		t.Fatalf("non-convex partial = %+v, want the trivial bound 0", res)
	}
}

// Linear impacts are closed-form: the deadline is irrelevant and the
// answer stays exact even under an already-expired context (matching the
// analytic kernel's behaviour).
func TestAnytimeLinearExactUnderDeadline(t *testing.T) {
	lin, err := NewLinearImpact([]float64{3, 4}, 0)
	if err != nil {
		t.Fatal(err)
	}
	f := Feature{Name: "lin", Impact: lin, Bounds: NoMin(25)}
	p := Perturbation{Name: "π", Orig: []float64{1, 0}}
	ctx, cancel := context.WithDeadline(context.Background(), time.Unix(0, 1))
	defer cancel()
	var got []float64
	res, err := ComputeRadiusAnytime(ctx, f, p, Options{}, func(lb float64) { got = append(got, lb) })
	if err != nil {
		t.Fatal(err)
	}
	if res.Kind == LowerBound {
		t.Fatalf("linear radius degraded to a bound: %+v", res)
	}
	exact, _ := ComputeRadius(f, p, Options{})
	if math.Float64bits(res.Radius) != math.Float64bits(exact.Radius) {
		t.Fatalf("radius %v != exact %v", res.Radius, exact.Radius)
	}
	if len(got) != 1 || got[0] != res.Radius {
		t.Fatalf("progress for an exact linear answer = %v, want one report of the radius", got)
	}
}
