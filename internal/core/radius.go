package core

import (
	"errors"
	"fmt"
	"math"

	"fepia/internal/optimize"
	"fepia/internal/vecmath"
)

// BoundKind says which boundary relationship produced a radius.
type BoundKind int

const (
	// AtMax means the binding relationship was f(π) = β^max.
	AtMax BoundKind = iota
	// AtMin means the binding relationship was f(π) = β^min.
	AtMin
	// AlreadyViolated means f(π^orig) was outside the bounds, so the
	// radius is zero without any perturbation.
	AlreadyViolated
	// Unreachable means no boundary can be reached: the feature satisfies
	// its requirement for every value of the parameter, and the radius is
	// +Inf.
	Unreachable
	// LowerBound marks an anytime partial answer: the deadline expired
	// before the minimiser converged, and Radius is a certified lower
	// bound on the true radius — the system is proven safe for every
	// perturbation smaller than it, but larger perturbations are
	// undecided. Only ComputeRadiusAnytime produces it.
	LowerBound
)

// String names the bound kind.
func (k BoundKind) String() string {
	switch k {
	case AtMax:
		return "beta-max"
	case AtMin:
		return "beta-min"
	case AlreadyViolated:
		return "already-violated"
	case Unreachable:
		return "unreachable"
	case LowerBound:
		return "lower"
	default:
		return fmt.Sprintf("BoundKind(%d)", int(k))
	}
}

// Method records how a radius was computed.
type Method string

const (
	// MethodHyperplane is the exact point-to-hyperplane formula (affine
	// impact functions; Eq. 6 is the special case with 0/1 coefficients).
	MethodHyperplane Method = "hyperplane"
	// MethodConvex is the sequential-linearisation convex solver.
	MethodConvex Method = "convex-slp"
	// MethodAnneal is the simulated-annealing fallback (non-convex
	// impacts); the smaller of MethodConvex/MethodAnneal is kept.
	MethodAnneal Method = "anneal"
	// MethodNone means no optimisation was needed (violated / unreachable).
	MethodNone Method = "none"
	// MethodAnytime marks a partial result assembled from certified
	// lower bounds after a deadline expired mid-solve (Kind LowerBound).
	MethodAnytime Method = "anytime"
)

// Options tunes the analysis.
type Options struct {
	// Norm is the perturbation-space norm; nil selects the paper's ℓ₂.
	// Non-ℓ₂ norms are supported analytically for linear impact functions
	// (via the dual norm) and rejected for general impacts.
	Norm vecmath.Norm
	// Solver configures the convex minimum-norm solver; the zero value
	// selects optimize.DefaultOptions.
	Solver optimize.Options
	// Anneal configures the non-convex fallback; the zero value selects
	// optimize.DefaultAnnealOptions.
	Anneal optimize.AnnealOptions
}

// WithDefaults returns a copy with every zero-valued field replaced by its
// default (ℓ₂ norm, optimize.DefaultOptions, optimize.DefaultAnnealOptions).
// ComputeRadius applies it internally; callers that need a stable identity
// for a configuration — the batch cache keys on it — can normalise first.
func (o Options) WithDefaults() Options {
	if o.Norm == nil {
		o.Norm = vecmath.L2{}
	}
	if o.Solver.MaxIter == 0 {
		o.Solver = optimize.DefaultOptions()
	}
	if o.Anneal.Steps == 0 {
		o.Anneal = optimize.DefaultAnnealOptions()
	}
	return o
}

// RadiusResult reports the robustness radius r_μ(φ_i, π_j) of one feature.
type RadiusResult struct {
	// Feature is the feature's name.
	Feature string
	// Radius is r_μ(φ_i, π_j); +Inf when no parameter value can violate
	// the requirement.
	Radius float64
	// Boundary is the minimising boundary point π*(φ_i); nil when the
	// radius is infinite.
	Boundary []float64
	// Kind says which boundary relationship was binding.
	Kind BoundKind
	// Method says how the radius was computed.
	Method Method
}

// ErrNormUnsupported is returned when a non-ℓ₂ norm is combined with a
// non-linear impact function.
var ErrNormUnsupported = errors.New("core: non-ℓ₂ norms are only supported for linear impact functions")

// SolveError reports that the minimum-norm solver failed while computing a
// robustness radius — an engine-side failure on a valid input, as opposed
// to the validation errors ComputeRadius returns for malformed features.
// Callers that relay analyses (cmd/fepiad maps it to HTTP 500) detect it
// with errors.As; the underlying optimize error stays reachable through
// errors.Is/As via Unwrap.
type SolveError struct {
	// Feature names the feature whose radius was being computed.
	Feature string
	// Kind says which boundary relationship was being solved.
	Kind BoundKind
	// Err is the underlying solver error.
	Err error
}

// Error renders "core: feature %q at <bound>: <cause>".
func (e *SolveError) Error() string {
	return fmt.Sprintf("core: feature %q at %s: %v", e.Feature, e.Kind, e.Err)
}

// Unwrap exposes the underlying solver error.
func (e *SolveError) Unwrap() error { return e.Err }

// ErrSolvePanic marks SolveErrors recovered from a panic inside a radius
// solve: errors.Is(err, ErrSolvePanic) distinguishes a crashed solve from
// one that failed with an ordinary solver error.
var ErrSolvePanic = errors.New("panic during radius solve")

// RecoveredSolveError converts a recovered panic value into the typed
// engine failure for the one item whose solve crashed — the batch
// engine's per-task panic isolation. The result wraps ErrSolvePanic, and
// when the panic value is itself an error (e.g. an injected fault) it
// stays reachable through errors.Is/As so retry classification and HTTP
// mapping see through the recovery.
func RecoveredSolveError(feature string, rec any) *SolveError {
	var err error
	if cause, ok := rec.(error); ok {
		err = fmt.Errorf("%w: %w", ErrSolvePanic, cause)
	} else {
		err = fmt.Errorf("%w: %v", ErrSolvePanic, rec)
	}
	return &SolveError{Feature: feature, Err: err}
}

// ComputeRadius evaluates Eq. 1 for a single feature: the smallest
// variation of the perturbation parameter (measured by opts.Norm, ℓ₂ by
// default) that drives the feature onto either boundary of its tolerable
// range.
func ComputeRadius(f Feature, p Perturbation, opts Options) (RadiusResult, error) {
	if err := validateRadiusInputs(f, p); err != nil {
		return RadiusResult{}, err
	}
	opts = opts.WithDefaults()

	v0 := f.Impact.Eval(p.Orig)
	if math.IsNaN(v0) {
		return RadiusResult{}, fmt.Errorf("core: feature %q impact is NaN at the operating point", f.Name)
	}
	if !f.Bounds.Contains(v0) {
		// The system violates the requirement before any perturbation.
		return RadiusResult{
			Feature:  f.Name,
			Radius:   0,
			Boundary: vecmath.Clone(p.Orig),
			Kind:     AlreadyViolated,
			Method:   MethodNone,
		}, nil
	}

	best := RadiusResult{Feature: f.Name, Radius: math.Inf(1), Kind: Unreachable, Method: MethodNone}
	for _, side := range []struct {
		beta float64
		kind BoundKind
	}{
		{f.Bounds.Max, AtMax},
		{f.Bounds.Min, AtMin},
	} {
		if math.IsInf(side.beta, 0) {
			continue // one-sided requirement
		}
		r, x, method, err := distanceToLevel(f.Impact, p.Orig, side.beta, opts)
		if err != nil {
			if errors.Is(err, optimize.ErrUnreachable) {
				continue
			}
			return RadiusResult{}, &SolveError{Feature: f.Name, Kind: side.kind, Err: err}
		}
		if r < best.Radius {
			best = RadiusResult{Feature: f.Name, Radius: r, Boundary: x, Kind: side.kind, Method: method}
		}
	}
	return best, nil
}

// validateRadiusInputs is the shared input validation of ComputeRadius
// and ComputeRadiusAnytime, so both reject malformed inputs with
// identical errors.
func validateRadiusInputs(f Feature, p Perturbation) error {
	if err := f.Validate(); err != nil {
		return err
	}
	if err := p.Validate(); err != nil {
		return err
	}
	if d := f.Impact.Dim(); d != len(p.Orig) {
		return fmt.Errorf("core: feature %q impact dimension %d != perturbation dimension %d", f.Name, d, len(p.Orig))
	}
	return nil
}

// distanceToLevel dispatches on the impact type: exact dual-norm hyperplane
// distance for affine impacts, convex solver (plus annealing fallback for
// declared-non-convex impacts) otherwise.
func distanceToLevel(imp Impact, orig []float64, beta float64, opts Options) (float64, []float64, Method, error) {
	if lin, ok := imp.(*LinearImpact); ok {
		return linearDistance(lin, orig, beta, opts.Norm)
	}
	if _, ok := opts.Norm.(vecmath.L2); !ok {
		return 0, nil, MethodNone, ErrNormUnsupported
	}
	obj := optimize.Objective{F: imp.Eval}
	if gi, ok := imp.(GradImpact); ok {
		obj.Grad = gi.Gradient
	}
	res, err := optimize.MinNormToLevelSet(obj, orig, beta, opts.Solver)
	method := MethodConvex
	if fi, ok := imp.(*FuncImpact); ok && !fi.Convex {
		ares, aerr := optimize.AnnealMinDistance(obj, orig, beta, opts.Anneal)
		switch {
		case err != nil && aerr == nil:
			res, err, method = ares, nil, MethodAnneal
		case err == nil && aerr == nil && ares.Distance < res.Distance:
			res, method = ares, MethodAnneal
		}
	}
	if err != nil {
		return 0, nil, MethodNone, err
	}
	return res.Distance, res.X, method, nil
}

// linearDistance computes the exact distance from orig to the hyperplane
// {π : coeffs·π + offset = beta} under the chosen norm, using the dual-norm
// form of the point-to-plane formula.
func linearDistance(lin *LinearImpact, orig []float64, beta float64, norm vecmath.Norm) (float64, []float64, Method, error) {
	residual := beta - lin.Eval(orig)
	dual, err := DualNorm(lin.Coeffs, norm)
	if err != nil {
		return 0, nil, MethodNone, err
	}
	if dual == 0 {
		// Constant impact: either it never reaches beta, or is identically
		// on it (residual 0 → distance 0 at the operating point).
		if residual == 0 {
			return 0, vecmath.Clone(orig), MethodHyperplane, nil
		}
		return 0, nil, MethodNone, optimize.ErrUnreachable
	}
	dist := math.Abs(residual) / dual
	// The minimising boundary point under ℓ₂ is the orthogonal projection;
	// for other norms report the ℓ₂ projection of the same hyperplane as a
	// representative witness (any norm's minimiser lies on the same plane).
	h := vecmath.Hyperplane{A: lin.Coeffs, C: beta - lin.Offset}
	x := h.Project(nil, orig)
	return dist, x, MethodHyperplane, nil
}

// DualNorm returns ‖a‖_* for the dual of the chosen norm:
// ℓ₂↔ℓ₂, ℓ₁↔ℓ∞, ℓ∞↔ℓ₁, weighted-ℓ₂(w) ↔ sqrt(Σ a_i²/w_i). It is the
// single source of truth for the dual-norm factor of the linear radius
// formula — internal/kernel precomputes it per feature at pack time, so
// kernel and scalar path agree bit for bit by construction. It errors on
// a weighted norm whose weight vector does not match the coefficient
// dimension, and wraps ErrNormUnsupported for norms with no analytic
// dual here.
func DualNorm(a []float64, norm vecmath.Norm) (float64, error) {
	switch n := norm.(type) {
	case vecmath.L2:
		return vecmath.Euclidean(a), nil
	case vecmath.L1:
		return vecmath.LInf{}.Of(a), nil
	case vecmath.LInf:
		return vecmath.L1{}.Of(a), nil
	case *vecmath.WeightedL2:
		if len(n.W) != len(a) {
			return 0, fmt.Errorf("core: weighted norm dimension %d != coefficient dimension %d", len(n.W), len(a))
		}
		var k vecmath.KahanSum
		for i, ai := range a {
			k.Add(ai * ai / n.W[i])
		}
		return math.Sqrt(k.Sum()), nil
	default:
		return 0, fmt.Errorf("%w: norm %q", ErrNormUnsupported, norm.Name())
	}
}
