// Package core implements the paper's primary contribution: the
// generalized robustness metric of Section 2 and the analysis step of the
// FePIA procedure.
//
// The FePIA procedure derives a robustness metric in four steps:
//
//  1. Fe — identify the performance features Φ that must stay within
//     tolerable bounds ⟨β_i^min, β_i^max⟩ (the Feature type);
//  2. P — identify the perturbation parameters Π (the Perturbation type);
//  3. I — identify the impact f_ij of each parameter on each feature (the
//     Impact interface);
//  4. A — analyse: find the smallest collective variation of the parameter
//     that drives some feature out of its bounds (ComputeRadius/Analyze).
//
// The robustness radius (Eq. 1) is
//
//	r_μ(φ_i, π_j) = min ‖π_j − π_j^orig‖₂  over  f_ij(π_j) ∈ {β_i^min, β_i^max}
//
// and the robustness metric (Eq. 2) is ρ_μ(Φ, π_j) = min_i r_μ(φ_i, π_j).
package core

import (
	"fmt"
	"math"

	"fepia/internal/optimize"
	"fepia/internal/vecmath"
)

// Impact is the relationship φ_i = f_ij(π_j) identified in step 3 of the
// FePIA procedure: a scalar-valued function of the perturbation-parameter
// vector.
type Impact interface {
	// Eval returns f(π).
	Eval(pi []float64) float64
	// Dim returns the expected length of π.
	Dim() int
}

// GradImpact is an Impact that can supply its own gradient; the analysis
// uses it to avoid finite differences.
type GradImpact interface {
	Impact
	// Gradient stores ∇f(π) into dst (allocating when dst is nil) and
	// returns it.
	Gradient(dst, pi []float64) []float64
}

// LinearImpact is the affine impact function f(π) = coeffs·π + offset.
// Both example systems in the paper reduce to this form: Eq. 4 (finishing
// times as sums of execution times) and the §4.3 computation-time functions
// Σ_z b_ijz·λ_z. Its boundary relationships are hyperplanes, so robustness
// radii have the closed form of Eq. 6.
type LinearImpact struct {
	// Coeffs holds the linear coefficients.
	Coeffs []float64
	// Offset is the constant term.
	Offset float64
}

// NewLinearImpact validates the coefficients (finite; any values allowed,
// including all-zero, which models a feature unaffected by the parameter).
func NewLinearImpact(coeffs []float64, offset float64) (*LinearImpact, error) {
	if !vecmath.AllFinite(coeffs) || math.IsNaN(offset) || math.IsInf(offset, 0) {
		return nil, fmt.Errorf("core: linear impact coefficients must be finite")
	}
	return &LinearImpact{Coeffs: vecmath.Clone(coeffs), Offset: offset}, nil
}

// Eval returns coeffs·π + offset.
func (l *LinearImpact) Eval(pi []float64) float64 {
	return vecmath.Dot(l.Coeffs, pi) + l.Offset
}

// Dim returns the coefficient count.
func (l *LinearImpact) Dim() int { return len(l.Coeffs) }

// Gradient returns the (constant) coefficient vector.
func (l *LinearImpact) Gradient(dst, pi []float64) []float64 {
	if len(dst) != len(l.Coeffs) {
		dst = make([]float64, len(l.Coeffs))
	}
	copy(dst, l.Coeffs)
	return dst
}

// FuncImpact adapts an arbitrary function (with optional gradient) to the
// Impact interface — the general case of step 3, e.g. convex complexity
// functions such as x^p or e^px (§3.2 lists the admissible forms).
type FuncImpact struct {
	// N is the perturbation dimension.
	N int
	// F evaluates the impact.
	F func(pi []float64) float64
	// Grad, optional, stores the gradient in dst and returns it.
	Grad func(dst, pi []float64) []float64
	// Convex declares that F is convex; the analysis then trusts the
	// sequential-linearisation solver's global optimum. Non-convex impacts
	// additionally run the simulated-annealing fallback and keep the
	// smaller radius.
	Convex bool
	// Fingerprint, optional, is a content identity for memoisation: two
	// FuncImpacts with equal non-empty fingerprints are treated as the
	// same function by the radius cache, so decoding the same document
	// twice hits the cache instead of re-solving. Leave nil for closures
	// with no canonical encoding — identity then falls back to the
	// pointer, which is always safe. Callers that set it own the
	// contract: equal fingerprints MUST imply identical F (and Grad).
	Fingerprint []byte
}

// Eval invokes F.
func (f *FuncImpact) Eval(pi []float64) float64 { return f.F(pi) }

// Dim returns N.
func (f *FuncImpact) Dim() int { return f.N }

// Gradient uses Grad when provided; otherwise the caller falls back to
// finite differences via the optimizer.
func (f *FuncImpact) Gradient(dst, pi []float64) []float64 {
	if f.Grad == nil {
		obj := optimize.Objective{F: f.F}
		return obj.Gradient(dst, pi, 1e-6)
	}
	return f.Grad(dst, pi)
}
