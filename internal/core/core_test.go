package core

import (
	"errors"
	"math"
	"strings"
	"testing"

	"fepia/internal/vecmath"
)

func linear(t *testing.T, coeffs []float64, offset float64) *LinearImpact {
	t.Helper()
	l, err := NewLinearImpact(coeffs, offset)
	if err != nil {
		t.Fatal(err)
	}
	return l
}

func TestBounds(t *testing.T) {
	if err := (Bounds{Min: 2, Max: 1}).Validate(); err == nil {
		t.Errorf("inverted bounds accepted")
	}
	if err := (Bounds{Min: math.NaN(), Max: 1}).Validate(); err == nil {
		t.Errorf("NaN bounds accepted")
	}
	b := NoMin(10)
	if !b.Contains(-1e18) || !b.Contains(10) || b.Contains(10.1) {
		t.Errorf("NoMin bounds wrong: %v", b)
	}
	b = NoMax(0)
	if !b.Contains(1e18) || b.Contains(-0.1) {
		t.Errorf("NoMax bounds wrong: %v", b)
	}
	if (Bounds{1, 2}).String() == "" {
		t.Errorf("empty bounds string")
	}
}

func TestLinearImpact(t *testing.T) {
	if _, err := NewLinearImpact([]float64{math.Inf(1)}, 0); err == nil {
		t.Errorf("Inf coefficient accepted")
	}
	if _, err := NewLinearImpact([]float64{1}, math.NaN()); err == nil {
		t.Errorf("NaN offset accepted")
	}
	l := linear(t, []float64{2, 3}, 1)
	if got := l.Eval([]float64{1, 1}); got != 6 {
		t.Errorf("Eval = %v", got)
	}
	if l.Dim() != 2 {
		t.Errorf("Dim = %d", l.Dim())
	}
	g := l.Gradient(nil, []float64{5, 5})
	if g[0] != 2 || g[1] != 3 {
		t.Errorf("Gradient = %v", g)
	}
	// Constructor must clone.
	c := []float64{1, 1}
	l2, _ := NewLinearImpact(c, 0)
	c[0] = 99
	if l2.Coeffs[0] != 1 {
		t.Errorf("NewLinearImpact shares storage")
	}
}

func TestFuncImpactGradient(t *testing.T) {
	f := &FuncImpact{N: 2, F: func(pi []float64) float64 { return pi[0] * pi[0] * pi[1] }}
	g := f.Gradient(nil, []float64{2, 3}) // ∇ = (2xy, x²) = (12, 4)
	if math.Abs(g[0]-12) > 1e-5 || math.Abs(g[1]-4) > 1e-5 {
		t.Errorf("numeric gradient = %v", g)
	}
	fa := &FuncImpact{
		N:    2,
		F:    f.F,
		Grad: func(dst, pi []float64) []float64 { return append(dst[:0], 7, 7) },
	}
	if g := fa.Gradient(make([]float64, 2), []float64{2, 3}); g[0] != 7 {
		t.Errorf("analytic gradient unused")
	}
}

func TestComputeRadiusValidation(t *testing.T) {
	p := Perturbation{Name: "π", Orig: []float64{1, 1}}
	if _, err := ComputeRadius(Feature{Name: "f", Bounds: Bounds{0, 1}}, p, Options{}); err == nil {
		t.Errorf("nil impact accepted")
	}
	f := Feature{Name: "f", Impact: linear(t, []float64{1, 1}, 0), Bounds: Bounds{Min: 1, Max: 0}}
	if _, err := ComputeRadius(f, p, Options{}); err == nil {
		t.Errorf("inverted bounds accepted")
	}
	f = Feature{Name: "f", Impact: linear(t, []float64{1}, 0), Bounds: Bounds{0, 10}}
	if _, err := ComputeRadius(f, p, Options{}); err == nil {
		t.Errorf("dimension mismatch accepted")
	}
	if _, err := ComputeRadius(f, Perturbation{Name: "π"}, Options{}); err == nil {
		t.Errorf("empty perturbation accepted")
	}
	if _, err := ComputeRadius(f, Perturbation{Name: "π", Orig: []float64{math.NaN()}}, Options{}); err == nil {
		t.Errorf("NaN operating point accepted")
	}
}

func TestRadiusLinearTwoSided(t *testing.T) {
	// f(π) = π₁ + π₂, bounds ⟨0, 10⟩, orig (2,2) → f=4.
	// Distance to max boundary: |10−4|/√2 = 4.243; to min: |0−4|/√2 = 2.828.
	f := Feature{Name: "f", Impact: linear(t, []float64{1, 1}, 0), Bounds: Bounds{0, 10}}
	p := Perturbation{Name: "π", Orig: []float64{2, 2}}
	r, err := ComputeRadius(f, p, Options{})
	if err != nil {
		t.Fatal(err)
	}
	want := 4 / math.Sqrt2
	if math.Abs(r.Radius-want) > 1e-12 {
		t.Errorf("radius = %v want %v", r.Radius, want)
	}
	if r.Kind != AtMin {
		t.Errorf("binding bound = %v, want beta-min", r.Kind)
	}
	if r.Method != MethodHyperplane {
		t.Errorf("method = %v", r.Method)
	}
	// The boundary point must be on the binding hyperplane.
	if got := f.Impact.Eval(r.Boundary); math.Abs(got-0) > 1e-9 {
		t.Errorf("boundary point off the plane: f = %v", got)
	}
}

func TestRadiusAlreadyViolated(t *testing.T) {
	f := Feature{Name: "f", Impact: linear(t, []float64{1}, 0), Bounds: Bounds{0, 1}}
	p := Perturbation{Name: "π", Orig: []float64{5}}
	r, err := ComputeRadius(f, p, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if r.Radius != 0 || r.Kind != AlreadyViolated {
		t.Errorf("violated start: %+v", r)
	}
}

func TestRadiusUnreachable(t *testing.T) {
	// Constant impact inside its bounds can never violate → +Inf.
	f := Feature{Name: "f", Impact: linear(t, []float64{0, 0}, 5), Bounds: Bounds{0, 10}}
	p := Perturbation{Name: "π", Orig: []float64{1, 1}}
	r, err := ComputeRadius(f, p, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if !math.IsInf(r.Radius, 1) || r.Kind != Unreachable {
		t.Errorf("unreachable: %+v", r)
	}
	// Constant impact exactly on a boundary → radius 0 at the origin.
	f = Feature{Name: "f", Impact: linear(t, []float64{0}, 10), Bounds: Bounds{0, 10}}
	r, err = ComputeRadius(f, Perturbation{Name: "π", Orig: []float64{3}}, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if r.Radius != 0 || r.Kind != AtMax {
		t.Errorf("on-boundary constant: %+v", r)
	}
}

func TestRadiusConvexImpact(t *testing.T) {
	// f(π) = π₁² + π₂² (convex), bound max 25 from (1,0): radius 4.
	f := Feature{
		Name: "f",
		Impact: &FuncImpact{
			N:      2,
			F:      func(pi []float64) float64 { return pi[0]*pi[0] + pi[1]*pi[1] },
			Convex: true,
		},
		Bounds: NoMin(25),
	}
	p := Perturbation{Name: "π", Orig: []float64{1, 0}}
	r, err := ComputeRadius(f, p, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(r.Radius-4) > 1e-6 {
		t.Errorf("convex radius = %v want 4", r.Radius)
	}
	if r.Method != MethodConvex {
		t.Errorf("method = %v", r.Method)
	}
}

func TestRadiusNonConvexUsesAnneal(t *testing.T) {
	// Two-basin impact: the nearer boundary is around (−1,0), distance 0.5.
	f := Feature{
		Name: "f",
		Impact: &FuncImpact{
			N: 2,
			F: func(x []float64) float64 {
				a := (x[0]-4)*(x[0]-4) + x[1]*x[1]
				b := (x[0]+1)*(x[0]+1) + x[1]*x[1]
				return -math.Min(a, b) // rises to 0 at either disc boundary… make bound min
			},
			Convex: false,
		},
		Bounds: NoMin(-0.25), // violated when entering either disc of radius 0.5
	}
	p := Perturbation{Name: "π", Orig: []float64{0, 0}}
	r, err := ComputeRadius(f, p, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if r.Radius > 0.55 || r.Radius < 0.45 {
		t.Errorf("non-convex radius = %v want ≈0.5", r.Radius)
	}
}

func TestRadiusDualNorms(t *testing.T) {
	// Plane π₁ + 2π₂ = 10 from origin.
	coeffs := []float64{1, 2}
	f := Feature{Name: "f", Impact: linear(t, coeffs, 0), Bounds: NoMin(10)}
	p := Perturbation{Name: "π", Orig: []float64{0, 0}}
	cases := []struct {
		norm vecmath.Norm
		want float64
	}{
		{vecmath.L2{}, 10 / math.Sqrt(5)}, // ‖a‖₂ = √5
		{vecmath.L1{}, 10.0 / 2},          // dual = ‖a‖∞ = 2
		{vecmath.LInf{}, 10.0 / 3},        // dual = ‖a‖₁ = 3
	}
	for _, c := range cases {
		r, err := ComputeRadius(f, p, Options{Norm: c.norm})
		if err != nil {
			t.Fatal(err)
		}
		if math.Abs(r.Radius-c.want) > 1e-12 {
			t.Errorf("%s radius = %v want %v", c.norm.Name(), r.Radius, c.want)
		}
	}
	// Weighted ℓ₂ with weights (4,1): dual = sqrt(1/4 + 4) = sqrt(17)/2.
	w, _ := vecmath.NewWeightedL2([]float64{4, 1})
	r, err := ComputeRadius(f, p, Options{Norm: w})
	if err != nil {
		t.Fatal(err)
	}
	want := 10 / (math.Sqrt(17) / 2)
	if math.Abs(r.Radius-want) > 1e-12 {
		t.Errorf("weighted radius = %v want %v", r.Radius, want)
	}
	// Non-ℓ₂ norm with a non-linear impact is rejected.
	nl := Feature{Name: "g", Impact: &FuncImpact{N: 2, F: func(pi []float64) float64 { return pi[0] }}, Bounds: NoMin(10)}
	if _, err := ComputeRadius(nl, p, Options{Norm: vecmath.L1{}}); !errors.Is(err, ErrNormUnsupported) {
		t.Errorf("err = %v", err)
	}
}

func TestAnalyzeMinimumAndCritical(t *testing.T) {
	p := Perturbation{Name: "C", Orig: []float64{1, 1, 1}, Units: "seconds"}
	features := []Feature{
		{Name: "F_1", Impact: linear(t, []float64{1, 0, 0}, 0), Bounds: NoMin(10)}, // dist 9
		{Name: "F_2", Impact: linear(t, []float64{0, 1, 1}, 0), Bounds: NoMin(5)},  // dist 3/√2 ≈ 2.12
		{Name: "F_3", Impact: linear(t, []float64{0, 0, 0}, 1), Bounds: NoMin(10)}, // unreachable
	}
	a, err := Analyze(features, p, Options{})
	if err != nil {
		t.Fatal(err)
	}
	want := 3 / math.Sqrt2
	if math.Abs(a.Robustness-want) > 1e-12 {
		t.Errorf("ρ = %v want %v", a.Robustness, want)
	}
	if a.Critical != 1 || a.CriticalFeature().Feature != "F_2" {
		t.Errorf("critical = %d", a.Critical)
	}
	if !math.IsInf(a.Radii[2].Radius, 1) {
		t.Errorf("unreachable feature radius = %v", a.Radii[2].Radius)
	}
	s := a.String()
	for _, want := range []string{"F_2", "seconds", "robustness"} {
		if !strings.Contains(s, want) {
			t.Errorf("report missing %q:\n%s", want, s)
		}
	}
}

func TestAnalyzeDiscreteFloors(t *testing.T) {
	p := Perturbation{Name: "λ", Orig: []float64{0, 0}, Discrete: true}
	features := []Feature{
		{Name: "T", Impact: linear(t, []float64{1, 1}, 0), Bounds: NoMin(10)}, // 10/√2 ≈ 7.07
	}
	a, err := Analyze(features, p, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if a.Robustness != 7 {
		t.Errorf("floored ρ = %v want 7", a.Robustness)
	}
}

func TestAnalyzeEmptyAndErrors(t *testing.T) {
	if _, err := Analyze(nil, Perturbation{Name: "π", Orig: []float64{1}}, Options{}); err == nil {
		t.Errorf("empty Φ accepted")
	}
	bad := []Feature{{Name: "f", Impact: linear(t, []float64{1}, 0), Bounds: Bounds{5, 1}}}
	if _, err := Analyze(bad, Perturbation{Name: "π", Orig: []float64{1}}, Options{}); err == nil {
		t.Errorf("invalid feature accepted")
	}
}

func TestAnalyzeAllUnreachable(t *testing.T) {
	features := []Feature{
		{Name: "f", Impact: linear(t, []float64{0}, 1), Bounds: NoMin(10)},
	}
	a, err := Analyze(features, Perturbation{Name: "π", Orig: []float64{1}}, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if !math.IsInf(a.Robustness, 1) || a.Critical != -1 || a.CriticalFeature() != nil {
		t.Errorf("all-unreachable analysis: %+v", a)
	}
}

func TestMultiAnalyze(t *testing.T) {
	sets := []ParameterSet{
		{
			Perturbation: Perturbation{Name: "C", Orig: []float64{0, 0}},
			Features: []Feature{
				{Name: "F", Impact: mustLinear([]float64{1, 1}, 0), Bounds: NoMin(10)},
			},
		},
		{
			Perturbation: Perturbation{Name: "λ", Orig: []float64{0}},
			Features: []Feature{
				{Name: "T", Impact: mustLinear([]float64{1}, 0), Bounds: NoMin(2)},
			},
		},
	}
	m, err := MultiAnalyze(sets, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if len(m.ByParameter) != 2 {
		t.Fatalf("analyses = %d", len(m.ByParameter))
	}
	idx, a := m.MostFragile(nil)
	if idx != 1 || a.Perturbation != "λ" {
		t.Errorf("most fragile = %d (%v)", idx, a)
	}
	// Normalised comparison can flip the answer.
	idx, _ = m.MostFragile([]float64{100, 0.1})
	if idx != 0 {
		t.Errorf("normalised most fragile = %d, want 0", idx)
	}
	if _, err := MultiAnalyze(nil, Options{}); err == nil {
		t.Errorf("empty Π accepted")
	}
	if _, a := (MultiAnalysis{}).MostFragile(nil); a != nil {
		t.Errorf("empty MostFragile should be nil")
	}
}

func TestBoundKindStrings(t *testing.T) {
	for _, k := range []BoundKind{AtMax, AtMin, AlreadyViolated, Unreachable, BoundKind(42)} {
		if k.String() == "" {
			t.Errorf("empty BoundKind string for %d", int(k))
		}
	}
}

func mustLinear(c []float64, off float64) *LinearImpact {
	l, err := NewLinearImpact(c, off)
	if err != nil {
		panic(err)
	}
	return l
}
