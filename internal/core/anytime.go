package core

import (
	"context"
	"errors"
	"fmt"
	"math"

	"fepia/internal/optimize"
	"fepia/internal/vecmath"
)

// anytimeSide tracks one finite boundary of an anytime computation: the
// certified lower bound tightens while the solver runs, and exactly one
// of exact/unreachable/skipped describes how the side ended.
type anytimeSide struct {
	beta float64
	kind BoundKind
	// lb is the best certified lower bound on this side's distance so
	// far; 0 until the first certificate lands (always sound).
	lb float64
	// exact, when non-nil, is the side's converged solution.
	exact *RadiusResult
	// unreachable: the level set cannot be reached (contributes +Inf).
	unreachable bool
	// skipped: the deadline expired before this side converged; lb is
	// everything that is known about it.
	skipped bool
}

// ComputeRadiusAnytime evaluates Eq. 1 like ComputeRadius, but under a
// context with certified anytime semantics:
//
//   - progress, when non-nil, receives a strictly increasing stream of
//     certified lower bounds on the final radius while the solve runs.
//     Every reported value is proven safe — no perturbation smaller than
//     it can violate the feature — by convexity certificates (a
//     supporting-halfspace bound on boundaries approached from above, a
//     cross-polytope inscribed-ball bound from below), not by trusting
//     solver iterates.
//   - when ctx's deadline expires mid-solve, the best certified bound is
//     returned as a partial result with Kind == LowerBound, Method ==
//     MethodAnytime, a nil Boundary, and a nil error. For non-convex
//     impacts nothing can be certified, so the partial radius is 0.
//   - cancellation that is not a deadline (client gone, forced drain) is
//     returned as an error, exactly like the rest of the engine.
//
// With a context that never expires, the result is bit-identical to
// ComputeRadius: the same solvers run with the same options in the same
// order, and the certification probes never feed back into them.
func ComputeRadiusAnytime(ctx context.Context, f Feature, p Perturbation, opts Options, progress func(lower float64)) (RadiusResult, error) {
	if err := validateRadiusInputs(f, p); err != nil {
		return RadiusResult{}, err
	}
	opts = opts.WithDefaults()

	// Everything with a closed form is exact in microseconds — deadlines
	// are a numeric-minimiser problem. Linear impacts (any norm) and the
	// non-ℓ₂ rejection path behave exactly like ComputeRadius.
	if _, ok := f.Impact.(*LinearImpact); ok {
		r, err := ComputeRadius(f, p, opts)
		if err == nil && progress != nil && !math.IsInf(r.Radius, 1) {
			progress(r.Radius)
		}
		return r, err
	}
	if _, ok := opts.Norm.(vecmath.L2); !ok {
		return ComputeRadius(f, p, opts)
	}

	v0 := f.Impact.Eval(p.Orig)
	if math.IsNaN(v0) {
		return RadiusResult{}, fmt.Errorf("core: feature %q impact is NaN at the operating point", f.Name)
	}
	if !f.Bounds.Contains(v0) {
		return RadiusResult{
			Feature:  f.Name,
			Radius:   0,
			Boundary: vecmath.Clone(p.Orig),
			Kind:     AlreadyViolated,
			Method:   MethodNone,
		}, nil
	}

	fi, isFunc := f.Impact.(*FuncImpact)
	convex := isFunc && fi.Convex
	obj := optimize.Objective{F: f.Impact.Eval}
	if gi, ok := f.Impact.(GradImpact); ok {
		obj.Grad = gi.Gradient
	}

	sides := make([]anytimeSide, 0, 2)
	for _, side := range []struct {
		beta float64
		kind BoundKind
	}{
		{f.Bounds.Max, AtMax},
		{f.Bounds.Min, AtMin},
	} {
		if math.IsInf(side.beta, 0) {
			continue
		}
		sides = append(sides, anytimeSide{beta: side.beta, kind: side.kind})
	}

	// The radius is the min over sides, so the certified combined bound
	// is the min of the per-side bounds (exact sides contribute their
	// radius, unreachable sides +Inf). progress sees only improvements.
	combined := func() float64 {
		lb := math.Inf(1)
		for i := range sides {
			s := &sides[i]
			switch {
			case s.unreachable:
			case s.exact != nil:
				lb = math.Min(lb, s.exact.Radius)
			default:
				lb = math.Min(lb, s.lb)
			}
		}
		return lb
	}
	reported := 0.0
	emit := func() {
		if progress == nil {
			return
		}
		if lb := combined(); lb > reported && !math.IsInf(lb, 1) {
			reported = lb
			progress(lb)
		}
	}

	// Certification pass: before any expensive exact solve, put a floor
	// under every side a convexity argument can reach. Boundaries
	// approached from below (v0 < β) get the cross-polytope probe
	// certificate here; boundaries approached from above are certified by
	// the solver's own halfspace bounds from its first gradient onward.
	if convex {
		for i := range sides {
			s := &sides[i]
			if v0 < s.beta {
				optimize.CertifyLevelBelow(ctx, obj, p.Orig, s.beta, opts.Solver, func(lower float64) {
					if lower > s.lb {
						s.lb = lower
						emit()
					}
				})
			}
		}
	}

	for i := range sides {
		s := &sides[i]
		var onBound func(float64)
		if convex {
			onBound = func(lower float64) {
				if lower > s.lb {
					s.lb = lower
					emit()
				}
			}
		}
		res, err := optimize.MinNormToLevelSetCtx(ctx, obj, p.Orig, s.beta, opts.Solver, onBound)
		if err != nil && isContextErr(err) {
			if !errors.Is(err, context.DeadlineExceeded) {
				return RadiusResult{}, err
			}
			s.skipped = true
			continue
		}
		method := MethodConvex
		if isFunc && !fi.Convex {
			ares, aerr := optimize.AnnealMinDistanceCtx(ctx, obj, p.Orig, s.beta, opts.Anneal)
			if aerr != nil && isContextErr(aerr) {
				if !errors.Is(aerr, context.DeadlineExceeded) {
					return RadiusResult{}, aerr
				}
				// A partial annealing run certifies nothing and taking the
				// SLP answer alone could exceed the true (anneal-found)
				// minimum, so the whole side degrades to its bound.
				s.skipped = true
				continue
			}
			switch {
			case err != nil && aerr == nil:
				res, err, method = ares, nil, MethodAnneal
			case err == nil && aerr == nil && ares.Distance < res.Distance:
				res, method = ares, MethodAnneal
			}
		}
		if err != nil {
			if errors.Is(err, optimize.ErrUnreachable) {
				s.unreachable = true
				emit()
				continue
			}
			return RadiusResult{}, &SolveError{Feature: f.Name, Kind: s.kind, Err: err}
		}
		s.exact = &RadiusResult{Feature: f.Name, Radius: res.Distance, Boundary: res.X, Kind: s.kind, Method: method}
		emit()
	}

	anySkipped := false
	best := RadiusResult{Feature: f.Name, Radius: math.Inf(1), Kind: Unreachable, Method: MethodNone}
	for i := range sides {
		s := &sides[i]
		if s.skipped {
			anySkipped = true
		}
		if s.exact != nil && s.exact.Radius < best.Radius {
			best = *s.exact
		}
	}
	if !anySkipped {
		return best, nil
	}
	// Deadline expired with at least one side undecided. If an exact side
	// already answers below every pending side's certified floor, the min
	// is decided anyway and the result is exact; otherwise hand back the
	// combined certified bound as a first-class partial answer.
	lbPending := math.Inf(1)
	for i := range sides {
		if sides[i].skipped {
			lbPending = math.Min(lbPending, sides[i].lb)
		}
	}
	if best.Radius <= lbPending {
		return best, nil
	}
	return RadiusResult{Feature: f.Name, Radius: lbPending, Kind: LowerBound, Method: MethodAnytime}, nil
}

// isContextErr reports whether a solver error is the context's own
// (deadline or cancellation) rather than a numeric failure.
func isContextErr(err error) bool {
	return errors.Is(err, context.DeadlineExceeded) || errors.Is(err, context.Canceled)
}
