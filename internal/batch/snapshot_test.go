package batch

import (
	"bytes"
	"encoding/binary"
	"errors"
	"hash/crc32"
	"math"
	"testing"

	"fepia/internal/core"
)

// fpFeature builds a fingerprinted convex FuncImpact feature — the 'T'
// key class, which persists across restarts by content identity.
func fpFeature(name string, fp []byte, max float64) core.Feature {
	return core.Feature{
		Name: name,
		Impact: &core.FuncImpact{
			N:           2,
			F:           func(x []float64) float64 { return x[0]*x[0] + x[1]*x[1] },
			Convex:      true,
			Fingerprint: fp,
		},
		Bounds: core.NoMin(max),
	}
}

// TestSnapshotRoundTrip is the acceptance property of the codec: a
// snapshot written at one shard count restores byte-identical radii at
// any other shard count, because keys re-route through the reader's own
// shard layout.
func TestSnapshotRoundTrip(t *testing.T) {
	src := NewCacheSharded(64, 8)
	p := core.Perturbation{Name: "π", Orig: []float64{1, 2}}

	feats := []core.Feature{
		linFeature(t, "lin-a", []float64{3, 4}, 25),
		linFeature(t, "lin-b", []float64{1, 1}, 10),
		fpFeature("terms", []byte("fp-terms-1"), 9),
	}
	want := make([]core.RadiusResult, len(feats))
	for i, f := range feats {
		r, err := src.Radius(f, p, core.Options{})
		if err != nil {
			t.Fatal(err)
		}
		want[i] = r
	}
	// A pointer-keyed impact (no fingerprint) must be skipped: its key is
	// an in-process address, meaningless after a restart.
	ptr := core.Feature{
		Name:   "ptr",
		Impact: &core.FuncImpact{N: 2, F: func(x []float64) float64 { return x[0] + x[1] }, Convex: true},
		Bounds: core.NoMin(100),
	}
	if _, err := src.Radius(ptr, p, core.Options{}); err != nil {
		t.Fatal(err)
	}

	var buf bytes.Buffer
	n, err := src.Snapshot(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if n != len(feats) {
		t.Fatalf("Snapshot wrote %d entries, want %d (pointer-keyed entry must be skipped)", n, len(feats))
	}

	for _, shards := range []int{1, 2, 8, 64} {
		dst, restored, err := RestoreCache(bytes.NewReader(buf.Bytes()), 64, shards)
		if err != nil {
			t.Fatalf("shards=%d: %v", shards, err)
		}
		if restored != n {
			t.Fatalf("shards=%d: restored %d entries, want %d", shards, restored, n)
		}
		if got := dst.Stats().Size; got != n {
			t.Fatalf("shards=%d: size %d after restore, want %d", shards, got, n)
		}
		for i, f := range feats {
			got, ok := dst.Lookup(f, p, core.Options{})
			if !ok {
				t.Fatalf("shards=%d: feature %q missing after restore", shards, f.Name)
			}
			if math.Float64bits(got.Radius) != math.Float64bits(want[i].Radius) {
				t.Fatalf("shards=%d %q: radius %v != %v (not bit-identical)", shards, f.Name, got.Radius, want[i].Radius)
			}
			if got.Kind != want[i].Kind || got.Method != want[i].Method {
				t.Fatalf("shards=%d %q: kind/method %v/%v != %v/%v",
					shards, f.Name, got.Kind, got.Method, want[i].Kind, want[i].Method)
			}
			if len(got.Boundary) != len(want[i].Boundary) {
				t.Fatalf("shards=%d %q: boundary dim %d != %d", shards, f.Name, len(got.Boundary), len(want[i].Boundary))
			}
			for j := range got.Boundary {
				if math.Float64bits(got.Boundary[j]) != math.Float64bits(want[i].Boundary[j]) {
					t.Fatalf("shards=%d %q: boundary[%d] %v != %v", shards, f.Name, j, got.Boundary[j], want[i].Boundary[j])
				}
			}
		}
		if _, ok := dst.Lookup(ptr, p, core.Options{}); ok {
			t.Fatalf("shards=%d: pointer-keyed entry survived the restart", shards)
		}
		// A restore is neither a hit nor a miss (Lookup counts nothing
		// either): statistics describe serving, not persistence.
		if st := dst.Stats(); st.Hits != 0 || st.Misses != 0 {
			t.Fatalf("shards=%d: restore moved the counters: %+v", shards, st)
		}
	}
}

// A snapshot of an empty cache round-trips to an empty cache.
func TestSnapshotEmpty(t *testing.T) {
	var buf bytes.Buffer
	n, err := NewCache(16).Snapshot(&buf)
	if err != nil || n != 0 {
		t.Fatalf("Snapshot = %d, %v; want 0, nil", n, err)
	}
	c, restored, err := RestoreCache(&buf, 16, 0)
	if err != nil || restored != 0 {
		t.Fatalf("RestoreCache = %d, %v; want 0, nil", restored, err)
	}
	if c.Stats().Size != 0 {
		t.Fatalf("restored empty snapshot has size %d", c.Stats().Size)
	}
}

// An infinite radius (Unreachable, nil Boundary) must survive the nil /
// empty boundary distinction and the Float64bits round-trip.
func TestSnapshotUnreachableRadius(t *testing.T) {
	src := NewCache(16)
	// A zero hyperplane can never reach a positive threshold.
	f := linFeature(t, "flat", []float64{0, 0}, 5)
	p := core.Perturbation{Name: "π", Orig: []float64{1, 2}}
	r, err := src.Radius(f, p, core.Options{})
	if err != nil {
		t.Fatal(err)
	}
	if !math.IsInf(r.Radius, 1) || r.Boundary != nil {
		t.Fatalf("setup: want +Inf/nil boundary, got %+v", r)
	}
	var buf bytes.Buffer
	if _, err := src.Snapshot(&buf); err != nil {
		t.Fatal(err)
	}
	dst, _, err := RestoreCache(&buf, 16, 0)
	if err != nil {
		t.Fatal(err)
	}
	got, ok := dst.Lookup(f, p, core.Options{})
	if !ok || !math.IsInf(got.Radius, 1) || got.Boundary != nil || got.Kind != core.Unreachable {
		t.Fatalf("unreachable entry corrupted by round-trip: ok=%v %+v", ok, got)
	}
}

// Every way a snapshot can be damaged must decode to a typed ErrSnapshot
// with nothing inserted — all-or-nothing, never a crash.
func TestSnapshotCorruptionRejected(t *testing.T) {
	src := NewCacheSharded(32, 4)
	p := core.Perturbation{Name: "π", Orig: []float64{1, 2}}
	for _, f := range []core.Feature{
		linFeature(t, "a", []float64{3, 4}, 25),
		linFeature(t, "b", []float64{1, 1}, 10),
	} {
		if _, err := src.Radius(f, p, core.Options{}); err != nil {
			t.Fatal(err)
		}
	}
	var buf bytes.Buffer
	if _, err := src.Snapshot(&buf); err != nil {
		t.Fatal(err)
	}
	good := buf.Bytes()

	reseal := func(b []byte) []byte {
		// Re-seal a mutated body with a valid CRC so the test exercises
		// the structural validation, not just the checksum.
		out := append([]byte(nil), b[:len(b)-4]...)
		var crc [4]byte
		for i, v := range checksum(out) {
			crc[i] = v
		}
		return append(out, crc[:]...)
	}

	cases := map[string][]byte{
		"empty":        {},
		"short header": good[:8],
		"truncated":    good[:len(good)-9],
		"bit flip": func() []byte {
			b := append([]byte(nil), good...)
			b[len(b)/2] ^= 0x40
			return b
		}(),
		"bad magic": func() []byte {
			b := append([]byte(nil), good...)
			copy(b, "NOPE")
			return reseal(b)
		}(),
		"bad version": func() []byte {
			b := append([]byte(nil), good...)
			b[4] = 0xFF
			return reseal(b)
		}(),
		"trailing bytes": reseal(append(append([]byte(nil), good[:len(good)-4]...), 0, 0, 0, 0, 0, 0, 0, 0)),
		"entry count lies": func() []byte {
			b := append([]byte(nil), good...)
			b[12] = 0xEE // far more entries than the body holds
			return reseal(b)
		}(),
	}
	for name, data := range cases {
		c := NewCache(16)
		n, err := c.Restore(bytes.NewReader(data))
		if !errors.Is(err, ErrSnapshot) {
			t.Errorf("%s: Restore err = %v, want ErrSnapshot", name, err)
		}
		if n != 0 || c.Stats().Size != 0 {
			t.Errorf("%s: failed restore inserted %d entries (size %d), want all-or-nothing", name, n, c.Stats().Size)
		}
	}

	// The unmodified image still loads — the harness itself is sound.
	if _, err := NewCache(16).Restore(bytes.NewReader(good)); err != nil {
		t.Fatalf("pristine snapshot rejected: %v", err)
	}
}

// checksum recomputes the trailer for a mutated body (little-endian
// CRC-32 IEEE, same as the writer).
func checksum(body []byte) []byte {
	var out [4]byte
	binary.LittleEndian.PutUint32(out[:], crc32.ChecksumIEEE(body))
	return out[:]
}
