package batch

import (
	"bytes"
	"errors"
	"testing"

	"fepia/internal/core"
)

// FuzzSnapshotDecode drives arbitrary bytes through the snapshot decoder.
// The invariant under fuzzing: every input either decodes fully or fails
// with an error wrapping ErrSnapshot — never a panic, never a silent
// partial load (a failed Restore must leave the cache empty).
func FuzzSnapshotDecode(f *testing.F) {
	// Seed with a real snapshot plus mutations of it, so coverage starts
	// past the header checks instead of dying on the magic bytes.
	src := NewCacheSharded(16, 2)
	p := core.Perturbation{Name: "π", Orig: []float64{1, 2}}
	lin, err := core.NewLinearImpact([]float64{3, 4}, 0)
	if err != nil {
		f.Fatal(err)
	}
	feat := core.Feature{Name: "F", Impact: lin, Bounds: core.NoMin(25)}
	if _, err := src.Radius(feat, p, core.Options{}); err != nil {
		f.Fatal(err)
	}
	var buf bytes.Buffer
	if _, err := src.Snapshot(&buf); err != nil {
		f.Fatal(err)
	}
	good := buf.Bytes()
	f.Add(good)
	f.Add(good[:len(good)/2])
	f.Add([]byte("FPSN"))
	f.Add([]byte{})
	flipped := append([]byte(nil), good...)
	flipped[len(flipped)-2] ^= 0xFF
	f.Add(flipped)

	f.Fuzz(func(t *testing.T, data []byte) {
		c := NewCache(8)
		n, err := c.Restore(bytes.NewReader(data))
		if err != nil {
			if !errors.Is(err, ErrSnapshot) {
				t.Fatalf("Restore failed with a non-snapshot error: %v", err)
			}
			if n != 0 || c.Stats().Size != 0 {
				t.Fatalf("failed restore inserted %d entries (size %d)", n, c.Stats().Size)
			}
			return
		}
		if n != c.Stats().Size {
			t.Fatalf("restored %d entries but size is %d", n, c.Stats().Size)
		}
	})
}
