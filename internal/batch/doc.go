// Package batch is the concurrent batch-analysis engine: it evaluates
// many robustness analyses (N mappings × M perturbation parameters) over
// a bounded worker pool with deterministic result ordering and context
// cancellation, and memoises individual robustness radii in an LRU cache
// so repeated evaluations of identical subproblems — the same impact
// function against the same bounds at the same operating point — are
// solved once.
//
// The paper's evaluation (§4) is embarrassingly parallel: every radius
// r_μ(φ_i, π_j) of Eq. 1 is an independent minimum-norm problem, and the
// §4.2/§4.3 experiments evaluate 1000 random mappings whose feature sets
// overlap heavily (two mappings that place the same applications on some
// machine induce the identical hyperplane for that machine). This package
// exploits both facts. It underlies robustness.AnalyzeBatch on the public
// facade, the experiment harness in internal/experiments, the Monte-Carlo
// certifier's CertifyAll, and the population evaluation inside the
// robustness-aware heuristics.
//
// Determinism: Analyze returns results indexed exactly like its input —
// result i is byte-identical to what core.Analyze would have produced for
// job i — regardless of worker count, cache state, or scheduling order.
// All engine state (the worker pool, the cache) is safe for concurrent
// use from multiple goroutines.
//
// With Options.Kernel set, the engine additionally routes every
// kernel-eligible linear feature of a job through the vectorized
// struct-of-arrays sweep in internal/kernel (one pack, one dot-product
// sweep, one amortised boundary allocation) while convex and non-convex
// impacts keep the per-feature internal/optimize path. Routing never
// changes results: the kernel is bit-identical to the scalar path by
// contract, and traced or fault-injected requests skip it wholesale so
// observability and chaos semantics are preserved. docs/PERFORMANCE.md
// documents the routing table and the measured speedups.
package batch
