package batch

import (
	"context"
	"testing"

	"fepia/internal/obs"
)

// BenchmarkAnalyzeOneObs prices the observability instrumentation on the
// engine's warm path (every radius served from the cache, so the obs
// plumbing dominates). "untraced" is the production steady state —
// StartSpan finds no trace in the context and every span call no-ops —
// and must stay within a few percent of the pre-instrumentation engine.
// "traced" records the full per-feature span set the way a request with
// an X-Request-Id does, and prices what /debug/traces retention costs.
//
// Pin (docs/OBSERVABILITY.md, min-of-10): "untraced" must stay within
// +2% of the 4.20µs/op pre-instrumentation seed — 4.23µs/op ceiling —
// with allocs/op unchanged. The distributed-tracing and SLO layers ride
// on the same no-op StartSpan path, so they must not move this number;
// their per-request server-side cost (SLO window record + exemplar
// store + slow-threshold compare) is priced separately by
// "untraced_slo" so a regression shows up as a delta between the two
// rather than silently inflating the engine number.
func BenchmarkAnalyzeOneObs(b *testing.B) {
	jobs := paperJobs(b, 8, 2003)
	cache := NewCache(0)
	opts := Options{Cache: cache}
	ctx := context.Background()
	for _, job := range jobs {
		if _, err := AnalyzeOneContext(ctx, job, opts); err != nil {
			b.Fatal(err)
		}
	}

	b.Run("untraced", func(b *testing.B) {
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			if _, err := AnalyzeOneContext(ctx, jobs[i%len(jobs)], opts); err != nil {
				b.Fatal(err)
			}
		}
	})
	b.Run("untraced_slo", func(b *testing.B) {
		// The warm path plus the per-request server-side SLO accounting:
		// a burn-window record, an exemplar store on the latency
		// histogram, and the slow-threshold compare. This is what every
		// production request pays beyond "untraced".
		b.ReportAllocs()
		reg := obs.NewRegistry()
		slo := obs.NewSLO(reg, []string{"bench"}, obs.SLOConfig{}, nil)
		hist := reg.Histogram("bench_latency_ms", "bench", []float64{1, 5, 25, 100},
			obs.L("endpoint", "bench"))
		const slowMS = 250.0
		slow := 0
		for i := 0; i < b.N; i++ {
			if _, err := AnalyzeOneContext(ctx, jobs[i%len(jobs)], opts); err != nil {
				b.Fatal(err)
			}
			durMS := 0.004
			slo.Record("bench", 200, durMS)
			hist.ObserveExemplar(durMS, "0123456789abcdef")
			if durMS >= slowMS {
				slow++
			}
		}
		if slow != 0 {
			b.Fatal("benchmark durations crossed the slow threshold")
		}
	})
	b.Run("traced", func(b *testing.B) {
		b.ReportAllocs()
		ring := obs.NewTraceRing(64)
		for i := 0; i < b.N; i++ {
			tr := obs.NewTrace(obs.NewID(), "bench")
			tctx := obs.WithTrace(ctx, tr)
			if _, err := AnalyzeOneContext(tctx, jobs[i%len(jobs)], opts); err != nil {
				b.Fatal(err)
			}
			ring.Add(tr.Finish(200))
		}
	})
	b.Run("traced_remote", func(b *testing.B) {
		// A forwarded-in request on the owning node: the trace adopts the
		// ingress trace ID, records the pipeline spans, and exports its
		// subtree for the X-Fepiad-Spans response header — pricing the
		// cross-node stitching wire on top of "traced".
		b.ReportAllocs()
		ring := obs.NewTraceRing(64)
		for i := 0; i < b.N; i++ {
			tr := obs.NewTraceRemote(obs.NewID(), "bench",
				"0123456789abcdef", "fedcba9876543210")
			tctx := obs.WithTrace(ctx, tr)
			if _, err := AnalyzeOneContext(tctx, jobs[i%len(jobs)], opts); err != nil {
				b.Fatal(err)
			}
			if len(tr.ExportSpans("bench-node", 64)) == 0 {
				b.Fatal("empty span export")
			}
			ring.Add(tr.Finish(200))
		}
	})
}
