package batch

import (
	"context"
	"testing"

	"fepia/internal/obs"
)

// BenchmarkAnalyzeOneObs prices the observability instrumentation on the
// engine's warm path (every radius served from the cache, so the obs
// plumbing dominates). "untraced" is the production steady state —
// StartSpan finds no trace in the context and every span call no-ops —
// and must stay within a few percent of the pre-instrumentation engine.
// "traced" records the full per-feature span set the way a request with
// an X-Request-Id does, and prices what /debug/traces retention costs.
func BenchmarkAnalyzeOneObs(b *testing.B) {
	jobs := paperJobs(b, 8, 2003)
	cache := NewCache(0)
	opts := Options{Cache: cache}
	ctx := context.Background()
	for _, job := range jobs {
		if _, err := AnalyzeOneContext(ctx, job, opts); err != nil {
			b.Fatal(err)
		}
	}

	b.Run("untraced", func(b *testing.B) {
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			if _, err := AnalyzeOneContext(ctx, jobs[i%len(jobs)], opts); err != nil {
				b.Fatal(err)
			}
		}
	})
	b.Run("traced", func(b *testing.B) {
		b.ReportAllocs()
		ring := obs.NewTraceRing(64)
		for i := 0; i < b.N; i++ {
			tr := obs.NewTrace(obs.NewID(), "bench")
			tctx := obs.WithTrace(ctx, tr)
			if _, err := AnalyzeOneContext(tctx, jobs[i%len(jobs)], opts); err != nil {
				b.Fatal(err)
			}
			ring.Add(tr.Finish(200))
		}
	})
}
