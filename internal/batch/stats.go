package batch

import (
	"context"
	"sync/atomic"
)

// RequestStats accumulates the cache provenance of one served request:
// how many radii came from warm hits, fresh solves, coalesced waits on
// another caller's in-flight solve, and kernel sweeps. The fepiad server
// attaches one per request with WithRequestStats and folds it into the
// ResponseMeta "cache" field; the engine records into it wherever the
// radius cache is consulted. All fields are atomic, so one collector can
// span every worker of a batch request.
type RequestStats struct {
	// Hits counts radii served from the warm cache (scalar or kernel
	// path).
	Hits atomic.Uint64
	// Misses counts radii solved fresh (singleflight leaders and kernel
	// sweeps both count here through the cache's own miss accounting —
	// see Source for how the label is chosen).
	Misses atomic.Uint64
	// Coalesced counts radii obtained by parking on an identical
	// in-flight solve.
	Coalesced atomic.Uint64
	// Kernel counts radii produced by a vectorized kernel sweep (cold
	// kernel-eligible features; their results populate the cache).
	Kernel atomic.Uint64
}

// Source folds the counters into the request's coldest provenance
// label — "miss" beats "coalesced" beats "kernel" beats "hit", matching
// the spec.Cache* wire constants — or "" when the request never touched
// the radius cache.
func (rs *RequestStats) Source() string {
	switch {
	case rs == nil:
		return ""
	case rs.Misses.Load() > 0:
		return "miss"
	case rs.Coalesced.Load() > 0:
		return "coalesced"
	case rs.Kernel.Load() > 0:
		return "kernel"
	case rs.Hits.Load() > 0:
		return "hit"
	}
	return ""
}

// reqStatsKey carries the collector through the engine's contexts.
type reqStatsKey struct{}

// WithRequestStats returns a context whose engine calls record their
// cache provenance into rs.
func WithRequestStats(ctx context.Context, rs *RequestStats) context.Context {
	return context.WithValue(ctx, reqStatsKey{}, rs)
}

// requestStats extracts the request's collector; nil when none is
// attached (library callers, CLIs).
func requestStats(ctx context.Context) *RequestStats {
	rs, _ := ctx.Value(reqStatsKey{}).(*RequestStats)
	return rs
}
