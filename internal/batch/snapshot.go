package batch

import (
	"encoding/binary"
	"errors"
	"fmt"
	"hash/crc32"
	"io"
	"math"

	"fepia/internal/core"
)

// Snapshot wire format (all integers little-endian):
//
//	magic   "FPSN"                      4 bytes
//	version u32                         currently 1
//	shards  u32                         writer's shard count (informational)
//	entries u64
//	entry × entries:
//	    keyLen   u32, key bytes         radius cache key (appendRadiusKey)
//	    featLen  u32, feature name
//	    radius   u64                    math.Float64bits
//	    kind     u8                     core.BoundKind
//	    methLen  u32, method string
//	    boundary u32                    point count, 0xFFFFFFFF = nil
//	    coord    u64 × boundary         math.Float64bits each
//	crc     u32                         CRC-32 (IEEE) of everything above
//
// The shard count is recorded for observability only: keys re-route
// through the reader's own shardFor on restore, so a snapshot written
// with 16 shards loads cleanly into a 4-shard cache.
const (
	snapshotMagic   = "FPSN"
	snapshotVersion = 1

	// maxSnapshotBytes bounds how much Restore will read before giving
	// up — a corrupt length field must not turn into an OOM.
	maxSnapshotBytes   = 1 << 30
	maxSnapshotEntries = 1 << 26
	maxSnapshotKeyLen  = 1 << 20
	maxSnapshotStrLen  = 1 << 16
	maxSnapshotDim     = 1 << 20

	// snapshotNilBoundary distinguishes a nil Boundary (infinite radius)
	// from an empty one in the boundary-count field.
	snapshotNilBoundary = ^uint32(0)
)

// ErrSnapshot marks every way a snapshot can fail to decode — truncated,
// corrupt, wrong magic, unknown version, oversized fields. Callers match
// it with errors.Is and boot cold; a failed Restore never inserts
// anything, so there is no silent partial load to reason about.
var ErrSnapshot = errors.New("batch: invalid cache snapshot")

// snapshotEntry is one decoded cache record, held until the whole
// snapshot has validated so Restore is all-or-nothing.
type snapshotEntry struct {
	key string
	res core.RadiusResult
}

// Snapshot serialises every restart-safe cache entry to w and returns
// the number of entries written. Pointer-keyed entries (unfingerprinted
// impacts, keyed by their in-process address) are skipped: their keys
// are meaningless in the next process. Each shard is walked LRU→MRU so a
// restore replays inserts in recency order and ends with the same LRU
// ordering the writer had.
//
// The encoding happens outside the shard locks — only the entry
// references are collected under them, which is sound because a cached
// RadiusResult is immutable once published.
func (c *Cache) Snapshot(w io.Writer) (int, error) {
	if c == nil {
		return 0, fmt.Errorf("batch: Snapshot on a nil cache")
	}
	var entries []snapshotEntry
	for _, s := range c.shards {
		c.lock(s)
		for el := s.order.Back(); el != nil; el = el.Prev() {
			e := el.Value.(*cacheEntry)
			if len(e.key) == 0 || (e.key[0] != 'L' && e.key[0] != 'T') {
				continue
			}
			entries = append(entries, snapshotEntry{key: e.key, res: e.result})
		}
		s.mu.Unlock()
	}

	buf := make([]byte, 0, 64+128*len(entries))
	buf = append(buf, snapshotMagic...)
	buf = binary.LittleEndian.AppendUint32(buf, snapshotVersion)
	buf = binary.LittleEndian.AppendUint32(buf, uint32(len(c.shards)))
	buf = binary.LittleEndian.AppendUint64(buf, uint64(len(entries)))
	for _, e := range entries {
		buf = binary.LittleEndian.AppendUint32(buf, uint32(len(e.key)))
		buf = append(buf, e.key...)
		buf = binary.LittleEndian.AppendUint32(buf, uint32(len(e.res.Feature)))
		buf = append(buf, e.res.Feature...)
		buf = binary.LittleEndian.AppendUint64(buf, math.Float64bits(e.res.Radius))
		buf = append(buf, byte(e.res.Kind))
		buf = binary.LittleEndian.AppendUint32(buf, uint32(len(e.res.Method)))
		buf = append(buf, e.res.Method...)
		if e.res.Boundary == nil {
			buf = binary.LittleEndian.AppendUint32(buf, snapshotNilBoundary)
		} else {
			buf = binary.LittleEndian.AppendUint32(buf, uint32(len(e.res.Boundary)))
			for _, v := range e.res.Boundary {
				buf = binary.LittleEndian.AppendUint64(buf, math.Float64bits(v))
			}
		}
	}
	buf = binary.LittleEndian.AppendUint32(buf, crc32.ChecksumIEEE(buf))
	if _, err := w.Write(buf); err != nil {
		return 0, err
	}
	return len(entries), nil
}

// Restore loads a snapshot written by Snapshot into the cache and
// returns the number of entries inserted. The whole stream is decoded
// and CRC-verified before the first insert, so a failure (any error
// wrapping ErrSnapshot, or the reader's own error) leaves the cache
// exactly as it was. Hit/miss statistics are untouched: a restore is
// neither. Entries re-route through this cache's shard layout, so the
// writer's shard count does not have to match.
func (c *Cache) Restore(r io.Reader) (int, error) {
	if c == nil {
		return 0, fmt.Errorf("batch: Restore on a nil cache")
	}
	data, err := io.ReadAll(io.LimitReader(r, maxSnapshotBytes+1))
	if err != nil {
		return 0, err
	}
	entries, err := decodeSnapshot(data)
	if err != nil {
		return 0, err
	}
	for i := range entries {
		c.restoreEntry(entries[i].key, entries[i].res)
	}
	return len(entries), nil
}

// RestoreCache builds a fresh cache (capacity/shards as NewCacheSharded)
// and loads a snapshot into it — the boot-time convenience wrapper.
func RestoreCache(r io.Reader, capacity, shards int) (*Cache, int, error) {
	c := NewCacheSharded(capacity, shards)
	n, err := c.Restore(r)
	if err != nil {
		return nil, 0, err
	}
	return c, n, nil
}

// restoreEntry inserts one decoded record without touching the hit/miss
// counters. The entry's impact reference stays nil, which is sound
// because only value- and fingerprint-keyed records are ever persisted —
// nothing pointer-identified needs pinning.
func (c *Cache) restoreEntry(key string, res core.RadiusResult) {
	s := c.shardFor([]byte(key))
	c.lock(s)
	if el, found := s.entries[key]; found {
		el.Value.(*cacheEntry).result = res
		s.order.MoveToFront(el)
	} else {
		s.entries[key] = s.order.PushFront(&cacheEntry{key: key, result: res})
		for s.order.Len() > s.capacity {
			oldest := s.order.Back()
			s.order.Remove(oldest)
			delete(s.entries, oldest.Value.(*cacheEntry).key)
		}
	}
	s.mu.Unlock()
}

// decodeSnapshot validates and decodes a complete snapshot image. Every
// failure wraps ErrSnapshot with a description of what broke and where.
func decodeSnapshot(data []byte) ([]snapshotEntry, error) {
	if len(data) > maxSnapshotBytes {
		return nil, fmt.Errorf("%w: larger than %d bytes", ErrSnapshot, maxSnapshotBytes)
	}
	// magic + version + shards + entry count + CRC trailer.
	if len(data) < len(snapshotMagic)+4+4+8+4 {
		return nil, fmt.Errorf("%w: %d bytes is shorter than the fixed header", ErrSnapshot, len(data))
	}
	body, trailer := data[:len(data)-4], data[len(data)-4:]
	if got, want := crc32.ChecksumIEEE(body), binary.LittleEndian.Uint32(trailer); got != want {
		return nil, fmt.Errorf("%w: CRC mismatch (computed %08x, stored %08x)", ErrSnapshot, got, want)
	}
	d := snapshotDecoder{buf: body}
	if magic := d.bytes(len(snapshotMagic), "magic"); string(magic) != snapshotMagic {
		return nil, fmt.Errorf("%w: bad magic %q", ErrSnapshot, magic)
	}
	if v := d.u32("version"); v != snapshotVersion {
		return nil, fmt.Errorf("%w: unsupported version %d (want %d)", ErrSnapshot, v, snapshotVersion)
	}
	d.u32("shard count") // informational; any value loads
	n := d.u64("entry count")
	if d.err != nil {
		return nil, d.err
	}
	if n > maxSnapshotEntries {
		return nil, fmt.Errorf("%w: %d entries exceeds the %d cap", ErrSnapshot, n, maxSnapshotEntries)
	}
	// Cheapest possible entry: four length fields, radius, kind.
	if minBytes := n * (4 + 4 + 8 + 1 + 4); minBytes > uint64(len(body)) {
		return nil, fmt.Errorf("%w: %d entries cannot fit in %d bytes", ErrSnapshot, n, len(body))
	}
	entries := make([]snapshotEntry, 0, n)
	for i := uint64(0); i < n; i++ {
		key := d.str(maxSnapshotKeyLen, "key")
		feature := d.str(maxSnapshotStrLen, "feature name")
		radius := math.Float64frombits(d.u64("radius"))
		kind := d.bytes(1, "bound kind")
		method := d.str(maxSnapshotStrLen, "method")
		var boundary []float64
		if cnt := d.u32("boundary count"); d.err == nil && cnt != snapshotNilBoundary {
			if cnt > maxSnapshotDim {
				d.err = fmt.Errorf("%w: boundary dimension %d exceeds the %d cap", ErrSnapshot, cnt, maxSnapshotDim)
			} else {
				boundary = make([]float64, cnt)
				for j := range boundary {
					boundary[j] = math.Float64frombits(d.u64("boundary point"))
				}
			}
		}
		if d.err != nil {
			return nil, fmt.Errorf("entry %d: %w", i, d.err)
		}
		if len(key) == 0 || (key[0] != 'L' && key[0] != 'T') {
			return nil, fmt.Errorf("%w: entry %d has non-persistable key prefix %q", ErrSnapshot, i, key)
		}
		if bk := core.BoundKind(kind[0]); bk < core.AtMax || bk > core.LowerBound {
			return nil, fmt.Errorf("%w: entry %d has unknown bound kind %d", ErrSnapshot, i, kind[0])
		}
		entries = append(entries, snapshotEntry{
			key: key,
			res: core.RadiusResult{
				Feature:  feature,
				Radius:   radius,
				Boundary: boundary,
				Kind:     core.BoundKind(kind[0]),
				Method:   core.Method(method),
			},
		})
	}
	if d.off != len(d.buf) {
		return nil, fmt.Errorf("%w: %d trailing bytes after the last entry", ErrSnapshot, len(d.buf)-d.off)
	}
	return entries, nil
}

// snapshotDecoder is a bounds-checked cursor over the snapshot body;
// the first failure sticks in err and every later read is a no-op.
type snapshotDecoder struct {
	buf []byte
	off int
	err error
}

func (d *snapshotDecoder) bytes(n int, what string) []byte {
	if d.err != nil {
		return nil
	}
	if n < 0 || n > len(d.buf)-d.off {
		d.err = fmt.Errorf("%w: truncated reading %s at offset %d", ErrSnapshot, what, d.off)
		return nil
	}
	b := d.buf[d.off : d.off+n]
	d.off += n
	return b
}

func (d *snapshotDecoder) u32(what string) uint32 {
	b := d.bytes(4, what)
	if d.err != nil {
		return 0
	}
	return binary.LittleEndian.Uint32(b)
}

func (d *snapshotDecoder) u64(what string) uint64 {
	b := d.bytes(8, what)
	if d.err != nil {
		return 0
	}
	return binary.LittleEndian.Uint64(b)
}

func (d *snapshotDecoder) str(max uint32, what string) string {
	n := d.u32(what + " length")
	if d.err != nil {
		return ""
	}
	if n > max {
		d.err = fmt.Errorf("%w: %s length %d exceeds the %d cap", ErrSnapshot, what, n, max)
		return ""
	}
	return string(d.bytes(int(n), what))
}
