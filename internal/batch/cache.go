package batch

import (
	"container/list"
	"context"
	"encoding/binary"
	"fmt"
	"math"
	"math/bits"
	"reflect"
	"runtime"
	"sync"
	"sync/atomic"

	"fepia/internal/core"
	"fepia/internal/faults"
	"fepia/internal/obs"
	"fepia/internal/vecmath"
)

// DefaultCacheCapacity bounds a zero-configured cache. At ~50 features per
// HiPer-D mapping it holds the working set of several full §4.3 sweeps.
const DefaultCacheCapacity = 8192

// maxShards bounds the shard count: past a few hundred shards the
// per-shard maps cost more memory than the contention they remove.
const maxShards = 256

// Cache memoises per-feature radius computations. The key identifies the
// complete subproblem of Eq. 1: the impact function, the bounds
// ⟨β^min, β^max⟩, the operating point π^orig, and the analysis options
// (norm plus solver/anneal budgets). Affine impacts are keyed by value
// (coefficients and offset), so structurally identical hyperplanes hit
// across distinct mappings; all other impacts are keyed by pointer
// identity, which is sound because the cached entry pins the impact and
// its result cannot go stale while the entry lives.
//
// Scaling: the cache is split into a power-of-two number of shards, each
// its own mutex + LRU list + map, selected by a 64-bit FNV-1a hash of the
// byte key. The hash only routes — it never decides equality; the shard
// map is keyed by the full byte key, so a hash collision merely co-locates
// two subproblems on one shard. Concurrent misses on the same key are
// deduplicated (singleflight): the first caller becomes the leader and
// runs core.ComputeRadius once, every concurrent caller of the same key
// parks until the leader publishes, and a leader failure propagates to
// the waiters without anything being cached.
//
// Eviction is LRU per shard with a fixed per-shard entry capacity. All
// methods are safe for concurrent use; a nil *Cache is valid and simply
// computes every radius.
type Cache struct {
	shards []*cacheShard
	mask   uint64

	// putFails counts inserts skipped because a cache_put fault fired; a
	// put failure only costs future hits, never the computed result.
	putFails atomic.Uint64
	// contended counts shard-lock acquisitions that found the lock held
	// (TryLock failed before the blocking Lock): a cheap proxy for how
	// often the sharding actually had to absorb contention.
	contended atomic.Uint64
}

// cacheShard is one independently locked slice of the key space.
type cacheShard struct {
	mu       sync.Mutex
	capacity int
	order    *list.List // front = most recently used
	entries  map[string]*list.Element
	inflight map[string]*flight
	hits     uint64
	misses   uint64
	dup      uint64
}

// flight is one in-progress radius computation being shared by every
// concurrent caller of its key. res and err are written exactly once,
// before done is closed; the close is the publication barrier. done is
// created lazily, under the shard lock, by the FIRST caller that
// actually parks — the uncontended cold path (one caller, no waiters)
// therefore never allocates or closes a channel. The leader's publish
// reads done under the same lock, so it either sees the waiter's
// channel (and closes it) or the waiter never saw the flight at all.
type flight struct {
	done chan struct{}
	res  core.RadiusResult
	err  error
}

// cacheEntry is one memoised radius. The impact reference keeps
// pointer-keyed impacts alive so their addresses cannot be recycled into
// a colliding key by the garbage collector. key retains the full byte key
// for exact-equality eviction bookkeeping (the shard hash never decides
// identity).
type cacheEntry struct {
	key    string
	impact core.Impact
	result core.RadiusResult
}

// keyBuf is a pooled key-construction buffer: the radius hot path builds
// its byte key in one of these and returns it, so a cache hit allocates
// nothing for the key (map lookups index with string(b), which Go
// compiles without a copy).
type keyBuf struct{ b []byte }

var keyPool = sync.Pool{New: func() any { return &keyBuf{b: make([]byte, 0, 256)} }}

// NewCache returns a cache bounded to the given number of entries with a
// shard count derived from GOMAXPROCS; capacity ≤ 0 selects
// DefaultCacheCapacity.
func NewCache(capacity int) *Cache {
	return NewCacheSharded(capacity, 0)
}

// NewCacheSharded returns a cache bounded to ~capacity entries split over
// the given number of shards. shards is rounded up to a power of two,
// clamped so every shard holds at least one entry, and ≤ 0 selects a
// default derived from GOMAXPROCS. The effective total capacity is
// shards × ceil(capacity/shards), so it may exceed the request by less
// than one entry per shard.
func NewCacheSharded(capacity, shards int) *Cache {
	if capacity <= 0 {
		capacity = DefaultCacheCapacity
	}
	if shards <= 0 {
		shards = defaultShardCount()
	}
	shards = nextPowerOfTwo(shards)
	for shards > 1 && shards > capacity {
		shards >>= 1
	}
	perShard := (capacity + shards - 1) / shards
	c := &Cache{shards: make([]*cacheShard, shards), mask: uint64(shards - 1)}
	for i := range c.shards {
		c.shards[i] = &cacheShard{
			capacity: perShard,
			order:    list.New(),
			entries:  make(map[string]*list.Element, perShard),
			inflight: make(map[string]*flight),
		}
	}
	return c
}

// defaultShardCount sizes the shard set for the machine: enough shards
// that GOMAXPROCS concurrent lookups rarely collide, clamped to
// [8, maxShards].
func defaultShardCount() int {
	n := runtime.GOMAXPROCS(0) * 8
	if n < 8 {
		n = 8
	}
	if n > maxShards {
		n = maxShards
	}
	return nextPowerOfTwo(n)
}

// nextPowerOfTwo rounds n up to the next power of two (min 1).
func nextPowerOfTwo(n int) int {
	if n <= 1 {
		return 1
	}
	return 1 << bits.Len(uint(n-1))
}

// fnv1a is a 64-bit FNV-1a hash of the byte key, folding eight bytes per
// round instead of one: radius keys run ~300 bytes and the byte-wise
// loop was over half the warm-hit cost under profile. FNV's multiply
// only propagates entropy upward, so a final avalanche spreads the high
// bits back into the low bits the shard mask reads. The hash only
// selects a shard — equality is always decided by the full key — so a
// collision costs distribution, never correctness.
func fnv1a(b []byte) uint64 {
	const (
		offset64 = 14695981039346656037
		prime64  = 1099511628211
	)
	h := uint64(offset64)
	for len(b) >= 8 {
		h = (h ^ binary.LittleEndian.Uint64(b)) * prime64
		b = b[8:]
	}
	var tail uint64
	for i := len(b) - 1; i >= 0; i-- {
		tail = tail<<8 | uint64(b[i])
	}
	h = (h ^ tail) * prime64
	h ^= h >> 33
	h *= 0xff51afd7ed558ccd
	h ^= h >> 29
	return h
}

// shardFor routes a key to its shard.
func (c *Cache) shardFor(b []byte) *cacheShard {
	return c.shards[fnv1a(b)&c.mask]
}

// lock acquires a shard's mutex, counting the acquisitions that had to
// wait as the cache's contention proxy.
func (c *Cache) lock(s *cacheShard) {
	if s.mu.TryLock() {
		return
	}
	c.contended.Add(1)
	s.mu.Lock()
}

// CacheStats reports cache effectiveness, merged across every shard.
// The merge locks one shard at a time, so under concurrent traffic it is
// a consistent-per-shard (not globally atomic) snapshot.
type CacheStats struct {
	// Hits counts Radius calls served from the cache. Misses counts
	// singleflight leaders: concurrent duplicate solvers of one key count
	// one miss (the leader) with the duplicates in DupSuppressed, so
	// HitRate prices real solver work, not queueing. Uncacheable impacts
	// (exotic non-pointer Impact implementations) appear in no count.
	Hits, Misses uint64
	// DupSuppressed counts calls that coalesced onto another caller's
	// in-flight computation instead of solving (or missing) themselves.
	DupSuppressed uint64
	// Size and Capacity describe current occupancy, summed over shards.
	Size, Capacity int
	// Shards is the shard count (a power of two).
	Shards int
	// PutFailures counts inserts dropped by injected cache_put faults
	// (the computed result was still returned to the caller).
	PutFailures uint64
	// Contended counts shard-lock acquisitions that found the lock held —
	// the contention the sharding did not manage to spread.
	Contended uint64
}

// HitRate returns Hits/(Hits+Misses), or 0 before any lookup.
func (s CacheStats) HitRate() float64 {
	total := s.Hits + s.Misses
	if total == 0 {
		return 0
	}
	return float64(s.Hits) / float64(total)
}

// Stats returns the merged counters.
func (c *Cache) Stats() CacheStats {
	if c == nil {
		return CacheStats{}
	}
	st := CacheStats{
		Shards:      len(c.shards),
		PutFailures: c.putFails.Load(),
		Contended:   c.contended.Load(),
	}
	for _, s := range c.shards {
		s.mu.Lock()
		st.Hits += s.hits
		st.Misses += s.misses
		st.DupSuppressed += s.dup
		st.Size += s.order.Len()
		st.Capacity += s.capacity
		s.mu.Unlock()
	}
	return st
}

// ShardSizes returns the current entry count of every shard, in shard
// order — the per-shard occupancy the fepiad metrics export.
func (c *Cache) ShardSizes() []int {
	if c == nil {
		return nil
	}
	out := make([]int, len(c.shards))
	for i, s := range c.shards {
		s.mu.Lock()
		out[i] = s.order.Len()
		s.mu.Unlock()
	}
	return out
}

// ShardSize returns the entry count of one shard, or 0 for an index out
// of range. Scrape-time gauges call this per shard so a scrape stays
// O(shards) rather than rebuilding the full ShardSizes slice per gauge.
func (c *Cache) ShardSize(i int) int {
	if c == nil || i < 0 || i >= len(c.shards) {
		return 0
	}
	s := c.shards[i]
	s.mu.Lock()
	n := s.order.Len()
	s.mu.Unlock()
	return n
}

// Radius returns core.ComputeRadius(f, p, opts), memoised. On a hit the
// boundary point is cloned so callers may mutate their copy freely. A nil
// receiver computes directly. opts should be pre-normalised with
// WithDefaults when the caller loops, so equal configurations key
// equally; Radius normalises again only for key construction, never for
// semantics (core.ComputeRadius applies its own defaults). It delegates
// to RadiusContext with context.Background(), so no fault-injection
// points fire.
func (c *Cache) Radius(f core.Feature, p core.Perturbation, opts core.Options) (core.RadiusResult, error) {
	return c.radius(context.Background(), f, p, opts, true)
}

// RadiusContext is Radius under a context: the harness's cache_get and
// cache_put injection points fire around the lookup and the insert. A
// get-side fault fails the call (the retry layer re-attempts transient
// ones); a put-side fault is absorbed — the computed result is returned
// and only the memoisation is lost, counted in CacheStats.PutFailures.
func (c *Cache) RadiusContext(ctx context.Context, f core.Feature, p core.Perturbation, opts core.Options) (core.RadiusResult, error) {
	return c.radius(ctx, f, p, opts, true)
}

// RadiusContextShared is RadiusContext without the defensive boundary
// clone: on a hit (or a coalesced miss) the result's Boundary aliases
// cache-owned memory, so the caller must treat it as read-only. It exists
// for pipelines that only read the result — the fepiad handlers encode it
// to JSON and drop it — where the clone is the last allocation on the
// warm path.
func (c *Cache) RadiusContextShared(ctx context.Context, f core.Feature, p core.Perturbation, opts core.Options) (core.RadiusResult, error) {
	return c.radius(ctx, f, p, opts, false)
}

func (c *Cache) radius(ctx context.Context, f core.Feature, p core.Perturbation, opts core.Options, clone bool) (core.RadiusResult, error) {
	if c == nil {
		return core.ComputeRadius(f, p, opts)
	}
	kb := keyPool.Get().(*keyBuf)
	b, ok := appendRadiusKey(kb.b[:0], f, p, opts.WithDefaults())
	kb.b = b // keep the grown buffer when it goes back to the pool
	if !ok {
		keyPool.Put(kb)
		return core.ComputeRadius(f, p, opts)
	}
	gsp := obs.StartSpan(ctx, "cache_get")
	if err := faults.Inject(ctx, faults.CacheGet); err != nil {
		keyPool.Put(kb)
		gsp.End(err)
		return core.RadiusResult{}, err
	}

	rs := requestStats(ctx)
	s := c.shardFor(b)
	c.lock(s)
	if el, found := s.entries[string(b)]; found {
		s.order.MoveToFront(el)
		s.hits++
		res := el.Value.(*cacheEntry).result
		s.mu.Unlock()
		keyPool.Put(kb)
		if rs != nil {
			rs.Hits.Add(1)
		}
		gsp.Set("hit", "true")
		gsp.End(nil)
		if clone {
			res.Boundary = vecmath.Clone(res.Boundary)
		}
		// The key identifies the subproblem, not the feature's display
		// name: re-stamp the caller's name so a hit is indistinguishable
		// from a fresh core.ComputeRadius call.
		res.Feature = f.Name
		return res, nil
	}
	if fl, found := s.inflight[string(b)]; found {
		// Another caller is already solving this key: park on its flight
		// instead of duplicating the solve. The leader's verdict — result
		// or failure — is shared verbatim. The park channel is created
		// here, under the shard lock, on first need: a flight that never
		// gathers waiters never pays for one.
		if fl.done == nil {
			fl.done = make(chan struct{})
		}
		done := fl.done
		s.dup++
		s.mu.Unlock()
		keyPool.Put(kb)
		if rs != nil {
			rs.Coalesced.Add(1)
		}
		gsp.Set("hit", "false").Set("coalesced", "true")
		select {
		case <-ctx.Done():
			gsp.End(ctx.Err())
			return core.RadiusResult{}, ctx.Err()
		case <-done:
		}
		if fl.err != nil {
			gsp.End(fl.err)
			return core.RadiusResult{}, fl.err
		}
		gsp.End(nil)
		res := fl.res
		if clone {
			res.Boundary = vecmath.Clone(res.Boundary)
		}
		res.Feature = f.Name
		return res, nil
	}
	// Miss with no flight in progress: become the leader. The map key is
	// materialised as a string exactly once, here — never on the hit path.
	key := string(b)
	keyPool.Put(kb)
	fl := &flight{}
	s.inflight[key] = fl
	s.misses++
	s.mu.Unlock()
	if rs != nil {
		rs.Misses.Add(1)
	}
	gsp.Set("hit", "false")
	gsp.End(nil)
	return c.lead(ctx, s, key, fl, f, p, opts, clone)
}

// lead runs the computation a singleflight leader owes its waiters and
// publishes the outcome exactly once. Publication must survive every exit
// path — including a panicking solve or an injected panic fault at the
// cache_put point — or parked waiters would deadlock, so the panic path
// publishes the failure before re-panicking into the caller's per-feature
// recovery (solveFeature converts it into a typed *core.SolveError).
//
// Publish and insert share ONE critical section: the original split —
// insert under one lock, then retire the flight under another — charged
// every first-touch miss a second lock round-trip (measured as part of
// the BENCH_8 cold-path gap against the single-mutex baseline). res and
// err are written before the lock is taken and the waiter channel is
// read under it, so a waiter that parked sees both via the close.
func (c *Cache) lead(ctx context.Context, s *cacheShard, key string, fl *flight, f core.Feature, p core.Perturbation, opts core.Options, clone bool) (core.RadiusResult, error) {
	published := false
	publish := func(res core.RadiusResult, err error, insert bool) {
		fl.res, fl.err = res, err
		c.lock(s)
		if insert {
			if _, found := s.entries[key]; !found {
				s.entries[key] = s.order.PushFront(&cacheEntry{key: key, impact: f.Impact, result: res})
				for s.order.Len() > s.capacity {
					oldest := s.order.Back()
					s.order.Remove(oldest)
					delete(s.entries, oldest.Value.(*cacheEntry).key)
				}
			}
		}
		delete(s.inflight, key)
		done := fl.done
		s.mu.Unlock()
		published = true
		if done != nil {
			close(done)
		}
	}
	defer func() {
		if published {
			return
		}
		rec := recover()
		err := fmt.Errorf("batch: radius singleflight leader exited without publishing")
		if e, ok := rec.(error); ok {
			err = e // keep injected faults classifiable by the retry layer
		} else if rec != nil {
			err = fmt.Errorf("batch: radius singleflight leader panicked: %v", rec)
		}
		publish(core.RadiusResult{}, err, false)
		if rec != nil {
			panic(rec)
		}
	}()

	res, err := core.ComputeRadius(f, p, opts)
	if err != nil {
		// A failed solve is never cached: the next caller leads a fresh
		// attempt. Waiters receive this leader's error verbatim.
		publish(core.RadiusResult{}, err, false)
		return core.RadiusResult{}, err
	}

	psp := obs.StartSpan(ctx, "cache_put")
	if ferr := faults.Inject(ctx, faults.CachePut); ferr != nil {
		// A put fault costs only the memoisation — the result still
		// reaches this caller and every parked waiter.
		c.putFails.Add(1)
		psp.Set("dropped", "true")
		psp.End(ferr)
		publish(res, nil, false)
	} else {
		publish(res, nil, true)
		psp.End(nil)
	}

	out := res
	if clone {
		out.Boundary = vecmath.Clone(out.Boundary)
	}
	out.Feature = f.Name
	return out, nil
}

// Lookup returns the memoised radius for the subproblem, or ok=false when
// it is absent or uncacheable. It never starts a solve, never joins a
// flight, and no injection point fires — this is the degraded serving
// path of the fepiad server, which must answer from whatever the cache
// already holds when the engine is unavailable. A successful lookup
// refreshes the entry's LRU position but moves neither the hit nor the
// miss counter, so degraded serving does not distort the
// cache-effectiveness statistics.
func (c *Cache) Lookup(f core.Feature, p core.Perturbation, opts core.Options) (core.RadiusResult, bool) {
	return c.lookup(f, p, opts, true)
}

// LookupShared is Lookup without the defensive boundary clone; the
// returned Boundary aliases cache-owned memory and must be treated as
// read-only (see RadiusContextShared).
func (c *Cache) LookupShared(f core.Feature, p core.Perturbation, opts core.Options) (core.RadiusResult, bool) {
	return c.lookup(f, p, opts, false)
}

func (c *Cache) lookup(f core.Feature, p core.Perturbation, opts core.Options, clone bool) (core.RadiusResult, bool) {
	if c == nil {
		return core.RadiusResult{}, false
	}
	kb := keyPool.Get().(*keyBuf)
	b, ok := appendRadiusKey(kb.b[:0], f, p, opts.WithDefaults())
	kb.b = b
	if !ok {
		keyPool.Put(kb)
		return core.RadiusResult{}, false
	}
	s := c.shardFor(b)
	c.lock(s)
	el, found := s.entries[string(b)]
	if !found {
		s.mu.Unlock()
		keyPool.Put(kb)
		return core.RadiusResult{}, false
	}
	s.order.MoveToFront(el)
	res := el.Value.(*cacheEntry).result
	s.mu.Unlock()
	keyPool.Put(kb)
	if clone {
		res.Boundary = vecmath.Clone(res.Boundary)
	}
	res.Feature = f.Name
	return res, true
}

// kernelGet is the kernel path's counting cache read: like Lookup it
// never starts a solve and never joins a flight, but a hit moves the
// shard's hit counter and the entry's LRU position exactly like Radius —
// kernel-eligible traffic participates in the cache, so its hits must
// show in the effectiveness statistics the bench and the cluster
// affinity story read. clone governs the defensive Boundary copy (see
// RadiusContextShared).
func (c *Cache) kernelGet(f core.Feature, p core.Perturbation, opts core.Options, clone bool) (core.RadiusResult, bool) {
	if c == nil {
		return core.RadiusResult{}, false
	}
	kb := keyPool.Get().(*keyBuf)
	b, ok := appendRadiusKey(kb.b[:0], f, p, opts.WithDefaults())
	kb.b = b
	if !ok {
		keyPool.Put(kb)
		return core.RadiusResult{}, false
	}
	s := c.shardFor(b)
	c.lock(s)
	el, found := s.entries[string(b)]
	if !found {
		s.mu.Unlock()
		keyPool.Put(kb)
		return core.RadiusResult{}, false
	}
	s.order.MoveToFront(el)
	s.hits++
	res := el.Value.(*cacheEntry).result
	s.mu.Unlock()
	keyPool.Put(kb)
	if clone {
		res.Boundary = vecmath.Clone(res.Boundary)
	}
	res.Feature = f.Name
	return res, true
}

// Put inserts a radius the caller solved outside the cache's own miss
// path — the vectorized kernel sweep, whose results are bit-identical to
// core.ComputeRadius and therefore safe to serve to later scalar-path
// callers. The cache stores a private clone of the Boundary so it owns
// its memory exclusively regardless of what the caller does with the
// original. One miss is counted per call: the caller did real solver
// work, and CacheStats prices solver work, not map traffic. A nil
// receiver or an uncacheable impact is a no-op.
func (c *Cache) Put(f core.Feature, p core.Perturbation, opts core.Options, res core.RadiusResult) {
	if c == nil {
		return
	}
	kb := keyPool.Get().(*keyBuf)
	b, ok := appendRadiusKey(kb.b[:0], f, p, opts.WithDefaults())
	kb.b = b
	if !ok {
		keyPool.Put(kb)
		return
	}
	res.Boundary = vecmath.Clone(res.Boundary)
	s := c.shardFor(b)
	c.lock(s)
	s.misses++
	if _, found := s.entries[string(b)]; !found {
		key := string(b)
		s.entries[key] = s.order.PushFront(&cacheEntry{key: key, impact: f.Impact, result: res})
		for s.order.Len() > s.capacity {
			oldest := s.order.Back()
			s.order.Remove(oldest)
			delete(s.entries, oldest.Value.(*cacheEntry).key)
		}
	}
	s.mu.Unlock()
	keyPool.Put(kb)
}

// appendRadiusKey appends the memoisation key of the subproblem to b,
// reporting ok=false for impacts it cannot identify (non-pointer Impact
// implementations other than LinearImpact). Callers pass a pooled buffer
// so a cache hit constructs its key without allocating.
func appendRadiusKey(b []byte, f core.Feature, p core.Perturbation, opts core.Options) ([]byte, bool) {
	switch imp := f.Impact.(type) {
	case *core.LinearImpact:
		b = append(b, 'L')
		b = appendFloats(b, imp.Coeffs)
		b = appendFloat(b, imp.Offset)
	case *core.FuncImpact:
		// A fingerprinted FuncImpact carries its own content identity —
		// spec-decoded convex features set one, so re-decoding the same
		// document (or another node forwarding it) hits the cache instead
		// of re-running the solver. Unfingerprinted closures keep pointer
		// identity below.
		if len(imp.Fingerprint) == 0 {
			b = append(b, 'P')
			b = binary.LittleEndian.AppendUint64(b, uint64(reflect.ValueOf(f.Impact).Pointer()))
			break
		}
		b = append(b, 'T')
		b = binary.LittleEndian.AppendUint64(b, uint64(len(imp.Fingerprint)))
		b = append(b, imp.Fingerprint...)
	default:
		v := reflect.ValueOf(f.Impact)
		switch v.Kind() {
		case reflect.Pointer, reflect.Func, reflect.Map, reflect.Chan, reflect.UnsafePointer:
			b = append(b, 'P')
			b = binary.LittleEndian.AppendUint64(b, uint64(v.Pointer()))
		default:
			return b, false
		}
	}

	b = append(b, '|')
	b = appendFloat(b, f.Bounds.Min)
	b = appendFloat(b, f.Bounds.Max)
	b = append(b, '|')
	b = appendFloats(b, p.Orig)
	b = append(b, '|')
	b = append(b, opts.Norm.Name()...)
	if w, ok := opts.Norm.(*vecmath.WeightedL2); ok {
		b = appendFloats(b, w.W)
	}
	b = append(b, '|')
	s := opts.Solver
	b = appendFloats(b, []float64{s.Tol, float64(s.MaxIter), float64(s.Restarts), float64(s.Seed), s.GradStep, s.RayMax})
	a := opts.Anneal
	b = appendFloats(b, []float64{float64(a.Steps), a.InitialTemp, a.FinalTemp, a.Sigma, float64(a.Seed), a.Tol, a.RayMax})
	return b, true
}

// appendFloat appends the IEEE-754 bit pattern (distinguishes ±0 and
// preserves every finite and infinite value exactly).
func appendFloat(b []byte, v float64) []byte {
	return binary.LittleEndian.AppendUint64(b, math.Float64bits(v))
}

func appendFloats(b []byte, vs []float64) []byte {
	b = binary.LittleEndian.AppendUint64(b, uint64(len(vs)))
	for _, v := range vs {
		b = appendFloat(b, v)
	}
	return b
}
