package batch

import (
	"container/list"
	"context"
	"encoding/binary"
	"math"
	"reflect"
	"sync"
	"sync/atomic"

	"fepia/internal/core"
	"fepia/internal/faults"
	"fepia/internal/obs"
	"fepia/internal/vecmath"
)

// DefaultCacheCapacity bounds a zero-configured cache. At ~50 features per
// HiPer-D mapping it holds the working set of several full §4.3 sweeps.
const DefaultCacheCapacity = 8192

// Cache memoises per-feature radius computations. The key identifies the
// complete subproblem of Eq. 1: the impact function, the bounds
// ⟨β^min, β^max⟩, the operating point π^orig, and the analysis options
// (norm plus solver/anneal budgets). Affine impacts are keyed by value
// (coefficients and offset), so structurally identical hyperplanes hit
// across distinct mappings; all other impacts are keyed by pointer
// identity, which is sound because the cached entry pins the impact and
// its result cannot go stale while the entry lives.
//
// Eviction is LRU with a fixed entry capacity. All methods are safe for
// concurrent use; a nil *Cache is valid and simply computes every radius.
type Cache struct {
	mu       sync.Mutex
	capacity int
	order    *list.List // front = most recently used
	entries  map[string]*list.Element
	hits     uint64
	misses   uint64
	// putFails counts inserts skipped because a cache_put fault fired; a
	// put failure only costs future hits, never the computed result.
	putFails atomic.Uint64
}

// cacheEntry is one memoised radius. The impact reference keeps
// pointer-keyed impacts alive so their addresses cannot be recycled into
// a colliding key by the garbage collector.
type cacheEntry struct {
	key    string
	impact core.Impact
	result core.RadiusResult
}

// NewCache returns a cache bounded to the given number of entries;
// capacity ≤ 0 selects DefaultCacheCapacity.
func NewCache(capacity int) *Cache {
	if capacity <= 0 {
		capacity = DefaultCacheCapacity
	}
	return &Cache{
		capacity: capacity,
		order:    list.New(),
		entries:  make(map[string]*list.Element, capacity),
	}
}

// CacheStats reports cache effectiveness.
type CacheStats struct {
	// Hits and Misses count Radius calls served from / added to the
	// cache. Uncacheable impacts (exotic non-pointer Impact
	// implementations) appear in neither count.
	Hits, Misses uint64
	// Size and Capacity describe current occupancy.
	Size, Capacity int
	// PutFailures counts inserts dropped by injected cache_put faults
	// (the computed result was still returned to the caller).
	PutFailures uint64
}

// HitRate returns Hits/(Hits+Misses), or 0 before any lookup.
func (s CacheStats) HitRate() float64 {
	total := s.Hits + s.Misses
	if total == 0 {
		return 0
	}
	return float64(s.Hits) / float64(total)
}

// Stats returns a consistent snapshot of the counters.
func (c *Cache) Stats() CacheStats {
	if c == nil {
		return CacheStats{}
	}
	c.mu.Lock()
	defer c.mu.Unlock()
	return CacheStats{Hits: c.hits, Misses: c.misses, Size: c.order.Len(), Capacity: c.capacity,
		PutFailures: c.putFails.Load()}
}

// Radius returns core.ComputeRadius(f, p, opts), memoised. On a hit the
// boundary point is cloned so callers may mutate their copy freely. A nil
// receiver computes directly. opts should be pre-normalised with
// WithDefaults when the caller loops, so equal configurations key
// equally; Radius normalises again only for key construction, never for
// semantics (core.ComputeRadius applies its own defaults). It delegates
// to RadiusContext with context.Background(), so no fault-injection
// points fire.
func (c *Cache) Radius(f core.Feature, p core.Perturbation, opts core.Options) (core.RadiusResult, error) {
	return c.RadiusContext(context.Background(), f, p, opts)
}

// RadiusContext is Radius under a context: the harness's cache_get and
// cache_put injection points fire around the lookup and the insert. A
// get-side fault fails the call (the retry layer re-attempts transient
// ones); a put-side fault is absorbed — the computed result is returned
// and only the memoisation is lost, counted in CacheStats.PutFailures.
func (c *Cache) RadiusContext(ctx context.Context, f core.Feature, p core.Perturbation, opts core.Options) (core.RadiusResult, error) {
	if c == nil {
		return core.ComputeRadius(f, p, opts)
	}
	key, ok := radiusKey(f, p, opts.WithDefaults())
	if !ok {
		return core.ComputeRadius(f, p, opts)
	}
	gsp := obs.StartSpan(ctx, "cache_get")
	if err := faults.Inject(ctx, faults.CacheGet); err != nil {
		gsp.End(err)
		return core.RadiusResult{}, err
	}

	c.mu.Lock()
	if el, found := c.entries[key]; found {
		c.order.MoveToFront(el)
		c.hits++
		res := el.Value.(*cacheEntry).result
		c.mu.Unlock()
		gsp.Set("hit", "true")
		gsp.End(nil)
		res.Boundary = vecmath.Clone(res.Boundary)
		// The key identifies the subproblem, not the feature's display
		// name: re-stamp the caller's name so a hit is indistinguishable
		// from a fresh core.ComputeRadius call.
		res.Feature = f.Name
		return res, nil
	}
	c.mu.Unlock()
	gsp.Set("hit", "false")
	gsp.End(nil)

	res, err := core.ComputeRadius(f, p, opts)
	if err != nil {
		return core.RadiusResult{}, err
	}

	psp := obs.StartSpan(ctx, "cache_put")
	if err := faults.Inject(ctx, faults.CachePut); err != nil {
		c.putFails.Add(1)
		psp.Set("dropped", "true")
		psp.End(err)
		return res, nil
	}

	c.mu.Lock()
	defer c.mu.Unlock()
	if _, found := c.entries[key]; !found {
		// First writer wins; concurrent solvers of the same key computed
		// identical results, so dropping duplicates is harmless.
		c.entries[key] = c.order.PushFront(&cacheEntry{key: key, impact: f.Impact, result: res})
		for c.order.Len() > c.capacity {
			oldest := c.order.Back()
			c.order.Remove(oldest)
			delete(c.entries, oldest.Value.(*cacheEntry).key)
		}
	}
	c.misses++
	stored := res
	stored.Boundary = vecmath.Clone(stored.Boundary)
	psp.End(nil)
	return stored, nil
}

// Lookup returns the memoised radius for the subproblem, or ok=false when
// it is absent or uncacheable. It never starts a solve and no injection
// point fires — this is the degraded serving path of the fepiad server,
// which must answer from whatever the cache already holds when the engine
// is unavailable. A successful lookup refreshes the entry's LRU position
// but moves neither the hit nor the miss counter, so degraded serving
// does not distort the cache-effectiveness statistics.
func (c *Cache) Lookup(f core.Feature, p core.Perturbation, opts core.Options) (core.RadiusResult, bool) {
	if c == nil {
		return core.RadiusResult{}, false
	}
	key, ok := radiusKey(f, p, opts.WithDefaults())
	if !ok {
		return core.RadiusResult{}, false
	}
	c.mu.Lock()
	el, found := c.entries[key]
	if !found {
		c.mu.Unlock()
		return core.RadiusResult{}, false
	}
	c.order.MoveToFront(el)
	res := el.Value.(*cacheEntry).result
	c.mu.Unlock()
	res.Boundary = vecmath.Clone(res.Boundary)
	res.Feature = f.Name
	return res, true
}

// radiusKey builds the memoisation key, reporting ok=false for impacts it
// cannot identify (non-pointer Impact implementations other than
// LinearImpact).
func radiusKey(f core.Feature, p core.Perturbation, opts core.Options) (string, bool) {
	b := make([]byte, 0, 64+8*len(p.Orig))

	switch imp := f.Impact.(type) {
	case *core.LinearImpact:
		b = append(b, 'L')
		b = appendFloats(b, imp.Coeffs)
		b = appendFloat(b, imp.Offset)
	default:
		v := reflect.ValueOf(f.Impact)
		switch v.Kind() {
		case reflect.Pointer, reflect.Func, reflect.Map, reflect.Chan, reflect.UnsafePointer:
			b = append(b, 'P')
			b = binary.LittleEndian.AppendUint64(b, uint64(v.Pointer()))
		default:
			return "", false
		}
	}

	b = append(b, '|')
	b = appendFloat(b, f.Bounds.Min)
	b = appendFloat(b, f.Bounds.Max)
	b = append(b, '|')
	b = appendFloats(b, p.Orig)
	b = append(b, '|')
	b = append(b, opts.Norm.Name()...)
	if w, ok := opts.Norm.(*vecmath.WeightedL2); ok {
		b = appendFloats(b, w.W)
	}
	b = append(b, '|')
	s := opts.Solver
	b = appendFloats(b, []float64{s.Tol, float64(s.MaxIter), float64(s.Restarts), float64(s.Seed), s.GradStep, s.RayMax})
	a := opts.Anneal
	b = appendFloats(b, []float64{float64(a.Steps), a.InitialTemp, a.FinalTemp, a.Sigma, float64(a.Seed), a.Tol, a.RayMax})
	return string(b), true
}

// appendFloat appends the IEEE-754 bit pattern (distinguishes ±0 and
// preserves every finite and infinite value exactly).
func appendFloat(b []byte, v float64) []byte {
	return binary.LittleEndian.AppendUint64(b, math.Float64bits(v))
}

func appendFloats(b []byte, vs []float64) []byte {
	b = binary.LittleEndian.AppendUint64(b, uint64(len(vs)))
	for _, v := range vs {
		b = appendFloat(b, v)
	}
	return b
}
