package batch

import (
	"context"
	"errors"
	"fmt"
	"runtime"
	"runtime/pprof"
	"strconv"
	"sync"
	"sync/atomic"

	"fepia/internal/core"
	"fepia/internal/faults"
	"fepia/internal/obs"
)

// Options tunes a batch run.
type Options struct {
	// Workers bounds the number of concurrent analysis goroutines;
	// values ≤ 0 select runtime.GOMAXPROCS(0).
	Workers int
	// Cache, when non-nil, memoises per-feature radius computations
	// across the whole batch (and across batches — the cache is shared
	// state). A nil cache disables memoisation.
	Cache *Cache
	// Core configures every underlying radius computation (norm choice,
	// solver budgets).
	Core core.Options
	// Retry, when non-nil, re-attempts transiently failing per-feature
	// radius solves (injected faults, flaky delegated backends) with
	// decorrelated-jitter backoff. Permanent failures — validation,
	// cancellation, unsupported norms — are never retried, so a nil
	// policy and the default classifier behave identically on fault-free
	// runs.
	Retry *faults.Policy
	// ShareBoundaries skips the defensive per-hit clone of each cached
	// RadiusResult.Boundary: results may alias cache-owned memory, so the
	// caller must treat Boundary slices as read-only. The fepiad server
	// sets it — its results are JSON-encoded and dropped — which makes
	// the warm cache-hit path allocation-free. Leave it false whenever
	// results escape to callers that might mutate them (the public
	// facade).
	ShareBoundaries bool
	// Kernel routes eligible features — valid linear impacts under an
	// ℓ₂/ℓ₁/ℓ∞/weighted-ℓ₂ norm — through the vectorized SoA analytic
	// kernel (internal/kernel): all their radii are computed in one
	// cache-friendly sweep with results bit-identical to the per-feature
	// path. Ineligible features (non-linear impacts, unsupported or
	// mismatched norms, invalid inputs) keep the exact per-feature path,
	// as does the whole job on a fault-injected request, so chaos
	// injection points never silently disappear. Traced requests use the
	// kernel and record one "kernel" span for the sweep in place of
	// per-feature solve spans. Kernel-routed features flow through the
	// radius cache in both directions: memoised radii are served from
	// warm hits without sweeping, and every swept radius populates the
	// cache — so degraded serving and cluster cache-affinity cover the
	// kernel path too (see docs/PERFORMANCE.md for the routing rules).
	Kernel bool
	// Anytime turns a mid-solve deadline expiry into a certified partial
	// answer instead of an aborted analysis: per-feature solves run
	// through core.ComputeRadiusAnytime, and a feature whose minimiser
	// did not converge in time reports its best certified lower bound
	// (Kind core.LowerBound) with a nil error. Cancellation that is not
	// a deadline still aborts. Partial results never enter the cache or
	// the singleflight — waiters under different deadlines must not
	// inherit them — so anytime misses bypass flight coalescing: warm
	// hits are still served (and counted) from the shared cache, and
	// exact results still populate it.
	Anytime bool
}

// workers resolves the effective worker count.
func (o Options) workers() int {
	if o.Workers > 0 {
		return o.Workers
	}
	return runtime.GOMAXPROCS(0)
}

// Job is one analysis unit: a feature set Φ against one perturbation
// parameter π — exactly the input of core.Analyze.
type Job struct {
	// Features is Φ: the features with their impact functions against
	// this job's parameter.
	Features []core.Feature
	// Perturbation is π with its operating point π^orig.
	Perturbation core.Perturbation
}

// ForEach runs fn(0) … fn(n−1) over a pool of at most `workers`
// goroutines (≤ 0 selects GOMAXPROCS) and returns the first error
// encountered, cancelling the remaining work. It is the scheduling
// substrate of Analyze and of the experiment harness: callers write
// result i into slot i of a preallocated slice, so output order never
// depends on scheduling.
func ForEach(ctx context.Context, n, workers int, fn func(i int) error) error {
	if n <= 0 {
		return nil
	}
	if workers <= 0 {
		workers = runtime.GOMAXPROCS(0)
	}
	if workers > n {
		workers = n
	}
	ctx, cancel := context.WithCancel(ctx)
	defer cancel()

	var (
		next     atomic.Int64
		wg       sync.WaitGroup
		errOnce  sync.Once
		firstErr error
	)
	fail := func(err error) {
		errOnce.Do(func() { firstErr = err })
		cancel()
	}
	// run isolates a stray task panic (one that escaped the per-feature
	// recovery in solveFeature, e.g. from a caller-supplied fn) into the
	// batch's first error instead of tearing down the process.
	run := func(i int) (err error) {
		defer func() {
			if rec := recover(); rec != nil {
				err = fmt.Errorf("batch: task %d panicked: %v", i, rec)
			}
		}()
		return fn(i)
	}
	for w := 0; w < workers; w++ {
		if w > 0 {
			// Chaos harness worker_spawn point: a fault means this worker
			// is never born and the survivors drain the queue. Worker 0 is
			// exempt, so the pool always makes progress.
			if err := faults.Inject(ctx, faults.WorkerSpawn); err != nil {
				continue
			}
		}
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			// Inherit the caller's pprof label set (the fepiad handlers
			// attach endpoint=…) and add the worker index, so CPU profiles
			// attribute engine time to the endpoint and worker that spent it.
			pprof.SetGoroutineLabels(pprof.WithLabels(ctx, pprof.Labels("batch_worker", strconv.Itoa(w))))
			for {
				i := int(next.Add(1)) - 1
				if i >= n {
					return
				}
				if err := ctx.Err(); err != nil {
					fail(err)
					return
				}
				if err := run(i); err != nil {
					fail(err)
					return
				}
			}
		}(w)
	}
	wg.Wait()
	return firstErr
}

// Analyze evaluates every job concurrently and returns one core.Analysis
// per job, in input order. Each result is identical to what
// core.Analyze(job.Features, job.Perturbation, opts.Core) would return;
// only the schedule (and, with opts.Cache set, the amount of repeated
// solving) differs. The first failing job aborts the batch.
func Analyze(ctx context.Context, jobs []Job, opts Options) ([]core.Analysis, error) {
	out := make([]core.Analysis, len(jobs))
	err := ForEach(ctx, len(jobs), opts.workers(), func(i int) error {
		a, err := AnalyzeOneContext(ctx, jobs[i], opts)
		if err != nil {
			return fmt.Errorf("batch: job %d (%s): %w", i, jobs[i].Perturbation.Name, err)
		}
		out[i] = a
		return nil
	})
	if err != nil {
		return nil, err
	}
	return out, nil
}

// AnalyzeOne evaluates a single job through the engine's cached radius
// path without spawning workers. It exists so callers with their own
// per-item pipelines (e.g. hiperd.EvaluateBatch, which interleaves
// feature construction and slack computation) can still share one radius
// cache; it is safe to call concurrently. It delegates to
// AnalyzeOneContext with context.Background().
func AnalyzeOne(job Job, opts Options) (core.Analysis, error) {
	return AnalyzeOneContext(context.Background(), job, opts)
}

// AnalyzeOneContext is AnalyzeOne under a context: like
// core.AnalyzeContext, cancellation is observed between per-feature
// radius computations and the ctx error is returned verbatim. It is the
// per-request entry point of the fepiad server, which must never run an
// uncancellable solve.
//
// Resilience: every per-feature solve is panic-isolated (a crash becomes
// a typed *core.SolveError wrapping core.ErrSolvePanic for this job only)
// and, with opts.Retry set, transient failures are re-attempted under the
// policy. The faults.Solve / faults.CacheGet / faults.CachePut injection
// points fire when ctx carries an injector.
func AnalyzeOneContext(ctx context.Context, job Job, opts Options) (core.Analysis, error) {
	if len(job.Features) == 0 {
		return core.Analysis{}, fmt.Errorf("core: empty feature set Φ")
	}
	copts := opts.Core.WithDefaults()
	radii := make([]core.RadiusResult, len(job.Features))
	// With Options.Kernel set, the vectorized analytic kernel fills the
	// slots of every eligible linear feature in one SoA sweep; the loop
	// below then only visits what the kernel could not take (solved is
	// nil when the kernel is off or nothing was eligible).
	solved := kernelSolve(ctx, job, copts, opts, radii)
	for i, f := range job.Features {
		if solved != nil && solved[i] {
			continue
		}
		if err := ctx.Err(); err != nil {
			// In anytime mode a passed deadline is not fatal: the solve
			// below returns a certified partial bound for this feature.
			if !opts.Anytime || !errors.Is(err, context.DeadlineExceeded) {
				return core.Analysis{}, err
			}
		}
		r, err := solveFeature(ctx, i, f, job.Perturbation, copts, opts)
		if err != nil {
			return core.Analysis{}, err
		}
		radii[i] = r
	}
	return core.NewAnalysis(job.Perturbation, radii), nil
}

// solveFeature computes one radius through the cached path under the
// retry policy, converting a panicking attempt (an Impact.Eval crash, or
// an injected panic fault) into a typed *core.SolveError so the rest of
// the batch is never lost to a single bad item. On a traced request it
// records a per-feature solve span carrying the retry attempts the
// policy spent; on an untraced one the instrumentation is a no-op.
func solveFeature(ctx context.Context, idx int, f core.Feature, p core.Perturbation, copts core.Options, opts Options) (core.RadiusResult, error) {
	sp := obs.StartSpan(ctx, "solve").Set("feature", f.Name)
	if sp != nil {
		sp.Set("feature_index", strconv.Itoa(idx))
		// Traced requests also label their profile samples per feature,
		// so a CPU profile of a slow request names the feature that burned
		// the time. Untraced requests skip the label copy.
		defer pprof.SetGoroutineLabels(ctx)
		pprof.SetGoroutineLabels(pprof.WithLabels(ctx, pprof.Labels("feature", f.Name)))
	}
	var r core.RadiusResult
	attempts := 0
	attempt := func() (err error) {
		attempts++
		defer func() {
			if rec := recover(); rec != nil {
				err = core.RecoveredSolveError(f.Name, rec)
			}
		}()
		if err := faults.Inject(ctx, faults.Solve); err != nil {
			return err
		}
		if opts.Anytime {
			r, err = anytimeRadius(ctx, f, p, copts, opts)
			return err
		}
		if opts.ShareBoundaries {
			r, err = opts.Cache.RadiusContextShared(ctx, f, p, copts)
		} else {
			r, err = opts.Cache.RadiusContext(ctx, f, p, copts)
		}
		return err
	}
	err := opts.Retry.Do(ctx, attempt)
	sp.AddRetries(attempts - 1)
	if err == nil && r.Kind == core.LowerBound {
		sp.Set("anytime", "partial")
	}
	sp.End(err)
	if err != nil {
		return core.RadiusResult{}, err
	}
	return r, nil
}

// anytimeRadius is the anytime-mode cache discipline: a counting warm
// lookup first (a hit is an exact answer regardless of the deadline),
// then a direct certified solve outside the singleflight — a partial
// result must never be published to coalesced waiters holding different
// deadlines, nor cached. Exact results are inserted with Put so later
// traffic still warms up; the trade-off is that concurrent anytime
// misses on one key may solve it more than once.
func anytimeRadius(ctx context.Context, f core.Feature, p core.Perturbation, copts core.Options, opts Options) (core.RadiusResult, error) {
	rs := requestStats(ctx)
	if r, ok := opts.Cache.kernelGet(f, p, copts, !opts.ShareBoundaries); ok {
		if rs != nil {
			rs.Hits.Add(1)
		}
		return r, nil
	}
	r, err := core.ComputeRadiusAnytime(ctx, f, p, copts, nil)
	if err != nil {
		return core.RadiusResult{}, err
	}
	if rs != nil {
		rs.Misses.Add(1)
	}
	if r.Kind != core.LowerBound {
		opts.Cache.Put(f, p, copts, r)
	}
	return r, nil
}

// Result pairs one job's analysis with its error: the item-isolated
// output of AnalyzeAll. Exactly one of Analysis and Err is meaningful.
type Result struct {
	Analysis core.Analysis
	Err      error
}

// AnalyzeAll evaluates every job like Analyze but never aborts the
// batch: each item's failure — including a recovered panic — lands in
// its own Result slot while every other item completes normally, in
// input order. Only context cancellation stops the sweep early, in which
// case the unvisited items carry the context error.
func AnalyzeAll(ctx context.Context, jobs []Job, opts Options) []Result {
	out := make([]Result, len(jobs))
	err := ForEach(ctx, len(jobs), opts.workers(), func(i int) error {
		a, err := AnalyzeOneContext(ctx, jobs[i], opts)
		out[i] = Result{Analysis: a, Err: err}
		return nil // item failures stay in their slot; only ctx aborts
	})
	if err != nil {
		for i := range out {
			if out[i].Err == nil && out[i].Analysis.Radii == nil {
				out[i].Err = err
			}
		}
	}
	return out
}

// AnalyzeCached evaluates a job purely from the cache: ok is false
// (with a zero Analysis) unless every feature's radius is already
// memoised. No solve is ever started and no injection point fires — this
// is the degraded serving path of the fepiad server when its engine
// breaker is open or the engine just failed.
func AnalyzeCached(job Job, opts Options) (core.Analysis, bool) {
	if opts.Cache == nil || len(job.Features) == 0 {
		return core.Analysis{}, false
	}
	copts := opts.Core.WithDefaults()
	radii := make([]core.RadiusResult, len(job.Features))
	for i, f := range job.Features {
		var (
			r  core.RadiusResult
			ok bool
		)
		if opts.ShareBoundaries {
			r, ok = opts.Cache.LookupShared(f, job.Perturbation, copts)
		} else {
			r, ok = opts.Cache.Lookup(f, job.Perturbation, copts)
		}
		if !ok {
			return core.Analysis{}, false
		}
		radii[i] = r
	}
	return core.NewAnalysis(job.Perturbation, radii), true
}
