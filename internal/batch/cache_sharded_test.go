package batch

import (
	"fmt"
	"reflect"
	"sync"
	"testing"

	"fepia/internal/core"
)

// TestShardRouting pins the routing contract: the shard index is a pure
// function of the byte key, so the same subproblem always lands on the
// same shard, from any goroutine, and an insert occupies exactly one
// shard.
func TestShardRouting(t *testing.T) {
	c := NewCacheSharded(64, 8)
	if got := len(c.shards); got != 8 {
		t.Fatalf("shards = %d, want 8", got)
	}
	f := linFeature(t, "F", []float64{1, 2}, 10)
	p := core.Perturbation{Name: "π", Orig: []float64{1, 2}}
	opts := core.Options{}.WithDefaults()

	key, ok := appendRadiusKey(nil, f, p, opts)
	if !ok {
		t.Fatal("linear impact must be cacheable")
	}
	want := c.shardFor(key)

	// Many goroutines building the key independently must route identically.
	var wg sync.WaitGroup
	for w := 0; w < 8; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			k, ok := appendRadiusKey(nil, f, p, opts)
			if !ok || c.shardFor(k) != want {
				t.Error("same key routed to a different shard")
			}
		}()
	}
	wg.Wait()

	if _, err := c.Radius(f, p, core.Options{}); err != nil {
		t.Fatal(err)
	}
	sizes := c.ShardSizes()
	occupied, total := 0, 0
	for _, n := range sizes {
		total += n
		if n > 0 {
			occupied++
		}
	}
	if occupied != 1 || total != 1 {
		t.Fatalf("one insert should occupy exactly one shard, got sizes %v", sizes)
	}
}

// TestShardStatsMergeExact drives a known hit/miss schedule over many
// shards and asserts the merged CacheStats reproduce it exactly: k
// distinct keys solved once each (k misses), every key re-read r times
// (k·r hits), occupancy k, and per-shard sizes summing to the merged
// Size.
func TestShardStatsMergeExact(t *testing.T) {
	const k, r = 24, 3
	c := NewCacheSharded(128, 16)
	p := core.Perturbation{Name: "π", Orig: []float64{1, 2}}
	features := make([]core.Feature, k)
	for i := range features {
		features[i] = linFeature(t, fmt.Sprintf("F%d", i), []float64{1 + float64(i), 1}, float64(10 + i))
	}
	for _, f := range features {
		if _, err := c.Radius(f, p, core.Options{}); err != nil {
			t.Fatal(err)
		}
	}
	for pass := 0; pass < r; pass++ {
		for _, f := range features {
			if _, err := c.Radius(f, p, core.Options{}); err != nil {
				t.Fatal(err)
			}
		}
	}

	st := c.Stats()
	if st.Misses != k || st.Hits != k*r || st.DupSuppressed != 0 {
		t.Fatalf("stats = %+v, want %d misses / %d hits / 0 dups", st, k, k*r)
	}
	if st.Size != k {
		t.Fatalf("size = %d, want %d", st.Size, k)
	}
	if st.Shards != 16 {
		t.Fatalf("shards = %d, want 16", st.Shards)
	}
	sum := 0
	for _, n := range c.ShardSizes() {
		sum += n
	}
	if sum != st.Size {
		t.Fatalf("per-shard sizes sum to %d, merged Size is %d", sum, st.Size)
	}
	if got, want := st.HitRate(), float64(k*r)/float64(k*r+k); got != want {
		t.Fatalf("hit rate = %v, want %v", got, want)
	}
}

// TestCachePerShardLRUEviction fills a 2-shard cache with one entry per
// shard far past capacity: every shard must evict independently and never
// exceed its slice of the budget.
func TestCachePerShardLRUEviction(t *testing.T) {
	const distinct = 32
	c := NewCacheSharded(2, 2) // per-shard capacity 1
	p := core.Perturbation{Name: "π", Orig: []float64{0, 0}}
	for i := 0; i < distinct; i++ {
		f := linFeature(t, fmt.Sprintf("F%d", i), []float64{1 + float64(i), 1}, 1)
		if _, err := c.Radius(f, p, core.Options{}); err != nil {
			t.Fatal(err)
		}
		for shard, n := range c.ShardSizes() {
			if n > 1 {
				t.Fatalf("shard %d holds %d entries, per-shard capacity is 1", shard, n)
			}
		}
	}
	st := c.Stats()
	if st.Size > st.Capacity {
		t.Fatalf("size %d exceeds capacity %d", st.Size, st.Capacity)
	}
	if st.Misses != distinct {
		t.Fatalf("misses = %d, want %d distinct solves", st.Misses, distinct)
	}

	// The most recently used key of each shard must still be resident:
	// re-reading the last inserted key is a hit, not a recompute.
	last := linFeature(t, fmt.Sprintf("F%d", distinct-1), []float64{1 + float64(distinct-1), 1}, 1)
	before := c.Stats()
	if _, err := c.Radius(last, p, core.Options{}); err != nil {
		t.Fatal(err)
	}
	if st := c.Stats(); st.Hits != before.Hits+1 {
		t.Fatalf("most recent entry was evicted from its shard: %+v", st)
	}
}

// TestCacheShardClamping pins the constructor's shaping rules: shard
// counts round up to powers of two, never exceed the entry budget, and
// the effective capacity is the per-shard sum.
func TestCacheShardClamping(t *testing.T) {
	for _, tc := range []struct {
		capacity, shards int
		wantShards       int
	}{
		{16, 3, 4},   // rounds up to a power of two
		{2, 64, 2},   // clamped: no more shards than entries
		{1, 8, 1},    // degenerate single-entry cache
		{100, 16, 16}, // ceil(100/16)=7 per shard, effective capacity 112
	} {
		c := NewCacheSharded(tc.capacity, tc.shards)
		if got := len(c.shards); got != tc.wantShards {
			t.Errorf("NewCacheSharded(%d, %d): shards = %d, want %d", tc.capacity, tc.shards, got, tc.wantShards)
		}
		st := c.Stats()
		if st.Capacity < tc.capacity {
			t.Errorf("NewCacheSharded(%d, %d): capacity %d below request", tc.capacity, tc.shards, st.Capacity)
		}
	}
}

// TestSharedLookupMatchesCloned pins the Shared variants: identical
// values to the cloning paths, with the boundary aliasing cache memory
// instead of copying it.
func TestSharedLookupMatchesCloned(t *testing.T) {
	c := NewCache(16)
	f := linFeature(t, "F", []float64{1, 1}, 10)
	p := core.Perturbation{Name: "π", Orig: []float64{1, 2}}
	if _, err := c.Radius(f, p, core.Options{}); err != nil {
		t.Fatal(err)
	}
	cloned, ok1 := c.Lookup(f, p, core.Options{})
	shared, ok2 := c.LookupShared(f, p, core.Options{})
	if !ok1 || !ok2 || !reflect.DeepEqual(cloned, shared) {
		t.Fatalf("shared lookup diverges: %+v (%v) vs %+v (%v)", cloned, ok1, shared, ok2)
	}
	if len(shared.Boundary) > 0 && &shared.Boundary[0] == &cloned.Boundary[0] {
		t.Fatal("Lookup must clone; it returned the shared backing array")
	}
	again, _ := c.LookupShared(f, p, core.Options{})
	if len(shared.Boundary) > 0 && &shared.Boundary[0] != &again.Boundary[0] {
		t.Fatal("LookupShared should alias the cache-owned boundary")
	}
}
