package batch

import (
	"context"
	"errors"
	"fmt"
	"math"
	"strconv"

	"fepia/internal/core"
	"fepia/internal/faults"
	"fepia/internal/kernel"
	"fepia/internal/obs"
)

// Watcher is the engine's incremental re-analysis session: one feature
// set Φ watched as its operating point π^orig moves. It packs the
// kernel-eligible features ONCE (the pack is reused across every step)
// and opens a kernel.Delta session on it, so a step that moves only
// some coordinates re-solves only the radii those coordinates can
// touch; everything else — non-linear impacts, unsupported norms,
// NaN-fallback features — keeps the exact per-feature path with the
// engine's full cache/retry/fault/anytime discipline, every step.
//
// Cache discipline: kernel-delta results bypass the radius cache in
// both directions. A watch session's operating point moves every step,
// so each point is a brand-new cache key — inserting them would churn
// the LRU with entries no other request can hit, and looking them up
// costs more than the delta update itself. Scalar-path features DO keep
// the cached path (solveFeature), so convex solves still memoise,
// degraded serving still covers them, and injected cache faults still
// fire. Fault-injected steps route every feature through the scalar
// path (mirroring kernelSolve's rule) and mark the delta session for a
// cold resync on the next clean step, so injection points never
// silently disappear mid-session.
//
// Results returned by Step alias session-owned memory (the delta
// witness arena) and, with Options.ShareBoundaries, cache-owned memory:
// they are valid until the next Step call. A Watcher is single-
// goroutine; concurrent sessions share packs' underlying caches safely.
type Watcher struct {
	opts  Options
	copts core.Options
	job   Job
	pert  core.Perturbation

	pack  *kernel.Batch
	delta *kernel.Delta
	// kidx maps pack-local feature indices to job-global ones; kout is
	// the session-owned result slice the delta writes.
	kidx []int
	kout []core.RadiusResult
	// scalar lists the features that always take the per-feature path.
	scalar []int

	point    []float64
	radii    []core.RadiusResult
	prevBits []uint64
	prevKind []core.BoundKind
	changed  []int
	started  bool
	resync   bool
	steps    int
}

// StepResult is one watch frame: the full analysis at the new operating
// point plus the indices of the features whose answer moved since the
// previous step (radius bits, bound kind, or method — boundary-witness
// coordinates tracking the operating point do not count). On the first
// step every feature is "changed".
type StepResult struct {
	Analysis core.Analysis
	// Changed indexes into Analysis.Radii / the job's feature slice,
	// ascending. It aliases a session buffer overwritten by the next Step.
	Changed []int
	// Step is the 1-based step count of the session.
	Step int
}

// NewWatcher opens a session on the job. The job's
// Perturbation.Orig provides the dimension (and the first step's
// previous point for delta purposes, though the first Step always
// performs a full solve). Kernel packing follows Options.Kernel and
// per-feature eligibility exactly like the one-shot engine.
func NewWatcher(job Job, opts Options) (*Watcher, error) {
	if len(job.Features) == 0 {
		return nil, fmt.Errorf("core: empty feature set Φ")
	}
	if err := job.Perturbation.Validate(); err != nil {
		return nil, err
	}
	copts := opts.Core.WithDefaults()
	dim := len(job.Perturbation.Orig)
	w := &Watcher{
		opts:     opts,
		copts:    copts,
		job:      job,
		pert:     job.Perturbation,
		point:    make([]float64, dim),
		radii:    make([]core.RadiusResult, len(job.Features)),
		prevBits: make([]uint64, len(job.Features)),
		prevKind: make([]core.BoundKind, len(job.Features)),
		changed:  make([]int, 0, len(job.Features)),
	}
	copy(w.point, job.Perturbation.Orig)
	w.pert.Orig = w.point

	if opts.Kernel && kernel.SupportedNorm(copts.Norm) {
		for i, f := range job.Features {
			if kernel.Eligible(f, dim, copts.Norm) {
				w.kidx = append(w.kidx, i)
			} else {
				w.scalar = append(w.scalar, i)
			}
		}
		if len(w.kidx) > 0 {
			eligible := make([]core.Feature, len(w.kidx))
			for j, i := range w.kidx {
				eligible[j] = job.Features[i]
			}
			pack, err := kernel.Pack(eligible, dim, copts.Norm)
			if err != nil {
				// Defensive, like kernelSolve: Eligible vetted every
				// feature. Fall back to the scalar path wholesale.
				w.kidx, w.scalar, w.pack = nil, nil, nil
			} else {
				w.pack = pack
				w.delta = pack.Delta()
				w.kout = make([]core.RadiusResult, len(w.kidx))
			}
		}
	}
	if w.pack == nil {
		w.scalar = w.scalar[:0]
		for i := range job.Features {
			w.scalar = append(w.scalar, i)
		}
	}
	return w, nil
}

// Dim returns the session's perturbation dimension.
func (w *Watcher) Dim() int { return len(w.point) }

// Steps returns the number of completed steps.
func (w *Watcher) Steps() int { return w.steps }

// Step advances the session to the operating point next and returns the
// analysis there plus the changed-feature set. Results are byte-
// identical to a one-shot AnalyzeOneContext of the same job at next.
// On error the session keeps its previous point of record, so a retried
// or subsequent Step stays consistent (the delta session resyncs itself
// if it had already advanced).
func (w *Watcher) Step(ctx context.Context, next []float64) (StepResult, error) {
	if len(next) != len(w.point) {
		return StepResult{}, fmt.Errorf("batch: watcher step dimension %d != session dimension %d", len(next), len(w.point))
	}
	// The perturbation handed to solves and to the result must carry the
	// NEW point; w.point stays the previous point until the step commits.
	stepPert := w.pert
	stepPert.Orig = next

	// Mirror kernelSolve's routing: a fault-injected step and an invalid
	// operating point (non-finite coordinates) keep the per-feature path
	// wholesale — the former so injection points fire, the latter so the
	// scalar path surfaces its authoritative validation error.
	injected := faults.From(ctx) != nil
	kernelStep := w.pack != nil && !injected && stepPert.Validate() == nil
	first := !w.started
	w.changed = w.changed[:0]

	// scalarSolve runs one feature through the engine's per-feature
	// discipline (cache, retry, panic isolation, faults, anytime) and
	// records whether its answer moved.
	scalarSolve := func(i int) error {
		if err := ctx.Err(); err != nil {
			if !w.opts.Anytime || !errors.Is(err, context.DeadlineExceeded) {
				return err
			}
		}
		r, err := solveFeature(ctx, i, w.job.Features[i], stepPert, w.copts, w.opts)
		if err != nil {
			return err
		}
		w.radii[i] = r
		bits := math.Float64bits(r.Radius)
		if first || bits != w.prevBits[i] || r.Kind != w.prevKind[i] {
			w.changed = append(w.changed, i)
		}
		w.prevBits[i], w.prevKind[i] = bits, r.Kind
		return nil
	}

	var fallback []int
	if kernelStep {
		var (
			changedK []int
			err      error
		)
		if first || w.resync {
			fallback, err = w.delta.Full(next, w.kout)
			changedK = nil // every kernel feature reports changed below
		} else {
			changedK, fallback, err = w.delta.ComputeDelta(w.point, next, nil, w.kout)
		}
		if err != nil {
			return StepResult{}, err
		}
		isFallback := make(map[int]bool, len(fallback))
		for _, j := range fallback {
			isFallback[j] = true
		}
		if first || w.resync {
			for j, i := range w.kidx {
				if !isFallback[j] {
					w.changed = append(w.changed, i)
				}
			}
		} else {
			for _, j := range changedK {
				if !isFallback[j] {
					w.changed = append(w.changed, w.kidx[j])
				}
			}
		}
		for j, i := range w.kidx {
			if isFallback[j] {
				continue
			}
			w.radii[i] = w.kout[j]
			w.prevBits[i] = math.Float64bits(w.kout[j].Radius)
			w.prevKind[i] = w.kout[j].Kind
		}
		if sp := obs.StartSpan(ctx, "kernel_delta"); sp != nil {
			sp.Set("features", strconv.Itoa(len(w.kidx)-len(fallback)))
			sp.Set("changed", strconv.Itoa(len(w.changed)))
			sp.Set("fallback", strconv.Itoa(len(fallback)))
			sp.End(nil)
		}
	}

	// Scalar features every step; kernel NaN-fallback features whenever
	// they are in fallback at this point.
	if kernelStep {
		for _, i := range w.scalar {
			if err := scalarSolve(i); err != nil {
				return StepResult{}, err
			}
		}
		for _, j := range fallback {
			if err := scalarSolve(w.kidx[j]); err != nil {
				return StepResult{}, err
			}
		}
	} else {
		for i := range w.job.Features {
			if err := scalarSolve(i); err != nil {
				return StepResult{}, err
			}
		}
		// The delta session (if any) was bypassed: its point of record is
		// now stale, so the next kernel step must resweep cold.
		w.resync = w.pack != nil
	}
	if kernelStep {
		w.resync = false
	}

	copy(w.point, next)
	w.started = true
	w.steps++
	sortInts(w.changed)
	resPert := w.pert // Orig aliases w.point, which now holds next
	return StepResult{
		Analysis: core.NewAnalysis(resPert, w.radii),
		Changed:  w.changed,
		Step:     w.steps,
	}, nil
}

// sortInts is an insertion sort for the small changed-index buffer —
// kernel and scalar contributions interleave, and frames promise
// ascending order. Avoids pulling package sort into the hot step path
// (the buffer is usually tiny).
func sortInts(a []int) {
	for i := 1; i < len(a); i++ {
		for j := i; j > 0 && a[j] < a[j-1]; j-- {
			a[j], a[j-1] = a[j-1], a[j]
		}
	}
}
