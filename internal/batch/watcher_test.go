package batch

import (
	"context"
	"fmt"
	"math"
	"math/rand"
	"testing"
	"time"

	"fepia/internal/core"
	"fepia/internal/faults"
)

// watcherWalk drives a Watcher along a seeded trajectory and asserts
// every frame byte-identical to a one-shot AnalyzeOneContext of the
// same job at the same point, under the given engine options.
func watcherWalk(t *testing.T, job Job, opts Options, steps int, seed int64) {
	t.Helper()
	w, err := NewWatcher(job, opts)
	if err != nil {
		t.Fatal(err)
	}
	rng := rand.New(rand.NewSource(seed))
	ctx := context.Background()
	point := append([]float64(nil), job.Perturbation.Orig...)
	// Reference engine with its own cache so watch-path cache traffic
	// cannot mask a divergence.
	refOpts := opts
	refOpts.Cache = NewCache(0)
	for s := 0; s < steps; s++ {
		res, err := w.Step(ctx, point)
		if err != nil {
			t.Fatalf("step %d: %v", s, err)
		}
		refJob := job
		refJob.Perturbation.Orig = point
		want, err := AnalyzeOneContext(ctx, refJob, refOpts)
		if err != nil {
			t.Fatalf("step %d: reference: %v", s, err)
		}
		if !resultsMatch(res.Analysis, want) {
			t.Fatalf("step %d: watcher diverged from one-shot engine\n got: %+v\nwant: %+v",
				s, res.Analysis, want)
		}
		if s == 0 && len(res.Changed) != len(job.Features) {
			t.Fatalf("first step changed = %v, want all %d features", res.Changed, len(job.Features))
		}
		// Move 1..3 coordinates.
		next := append([]float64(nil), point...)
		for m := 0; m < 1+rng.Intn(3); m++ {
			j := rng.Intn(len(next))
			next[j] = math.Abs(next[j]*(0.9+0.2*rng.Float64())) + 0.01
		}
		point = next
	}
}

// resultsMatch compares two analyses bitwise (radius, kind, method,
// boundary witness, robustness, critical index).
func resultsMatch(got, want core.Analysis) bool {
	if math.Float64bits(got.Robustness) != math.Float64bits(want.Robustness) || got.Critical != want.Critical {
		return false
	}
	if len(got.Radii) != len(want.Radii) {
		return false
	}
	for i := range want.Radii {
		g, w := got.Radii[i], want.Radii[i]
		if g.Feature != w.Feature || math.Float64bits(g.Radius) != math.Float64bits(w.Radius) ||
			g.Kind != w.Kind || g.Method != w.Method || (g.Boundary == nil) != (w.Boundary == nil) {
			return false
		}
		for j := range w.Boundary {
			if math.Float64bits(g.Boundary[j]) != math.Float64bits(w.Boundary[j]) {
				return false
			}
		}
	}
	return true
}

// TestWatcherMatchesOneShot: a watch session over paper-shaped HCS jobs
// must reproduce the one-shot engine bit for bit at every point, with
// the kernel on and off.
func TestWatcherMatchesOneShot(t *testing.T) {
	job := paperJobs(t, 1, 404)[0]
	for _, kernelOn := range []bool{true, false} {
		t.Run(fmt.Sprintf("kernel=%v", kernelOn), func(t *testing.T) {
			watcherWalk(t, job, Options{Cache: NewCache(0), Kernel: kernelOn}, 20, 17)
		})
	}
}

// TestWatcherMixedFeatures: non-kernel features (a convex FuncImpact)
// ride the scalar path every step while linear ones take the delta; the
// assembled frame still matches the one-shot engine bitwise.
func TestWatcherMixedFeatures(t *testing.T) {
	job := paperJobs(t, 1, 405)[0]
	dim := len(job.Perturbation.Orig)
	job.Features = append(job.Features, core.Feature{
		Name: "quad",
		Impact: &core.FuncImpact{
			N: dim,
			F: func(pi []float64) float64 {
				var s float64
				for _, x := range pi {
					s += x * x
				}
				return s / float64(dim)
			},
			Convex:      true,
			Fingerprint: []byte("watcher-test-quad"),
		},
		Bounds: core.NoMin(1e6),
	})
	watcherWalk(t, job, Options{Cache: NewCache(0), Kernel: true}, 10, 23)
}

// TestWatcherChangedSet: moving one machine's ETC coordinate changes
// only that machine's finishing-time radius (plus any features whose
// radius value genuinely moved).
func TestWatcherChangedSet(t *testing.T) {
	job := paperJobs(t, 1, 406)[0]
	w, err := NewWatcher(job, Options{Cache: NewCache(0), Kernel: true})
	if err != nil {
		t.Fatal(err)
	}
	ctx := context.Background()
	point := append([]float64(nil), job.Perturbation.Orig...)
	if _, err := w.Step(ctx, point); err != nil {
		t.Fatal(err)
	}
	// Identical point: nothing changes.
	res, err := w.Step(ctx, point)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Changed) != 0 {
		t.Fatalf("no-op step changed = %v, want none", res.Changed)
	}
	// One coordinate: the indalloc features are 0/1 indicator rows, so
	// exactly the owning machine's feature can change.
	next := append([]float64(nil), point...)
	next[0] *= 1.25
	res, err = w.Step(ctx, next)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Changed) != 1 {
		t.Fatalf("single-coordinate step changed = %v, want exactly one feature", res.Changed)
	}
}

// TestWatcherFaultInjectedStep: a step carrying a fault injector keeps
// the per-feature path (injection points fire), and the session recovers
// byte-identically on the next clean step.
func TestWatcherFaultInjectedStep(t *testing.T) {
	job := paperJobs(t, 1, 407)[0]
	retry := &faults.Policy{
		MaxAttempts: 3,
		Sleep:       func(context.Context, time.Duration) error { return nil },
	}
	w, err := NewWatcher(job, Options{Cache: NewCache(0), Kernel: true, Retry: retry})
	if err != nil {
		t.Fatal(err)
	}
	ctx := context.Background()
	point := append([]float64(nil), job.Perturbation.Orig...)
	if _, err := w.Step(ctx, point); err != nil {
		t.Fatal(err)
	}

	// Injected step: every solve takes the scalar path; the transient
	// fault is retried away by the policy.
	inj := faults.NewScript().At(faults.Solve, 1, faults.KindError)
	next := append([]float64(nil), point...)
	next[1] *= 1.1
	ictx := faults.With(ctx, inj)
	res, err := w.Step(ictx, next)
	if err != nil {
		t.Fatalf("injected step: %v", err)
	}
	refJob := job
	refJob.Perturbation.Orig = next
	want, err := AnalyzeOneContext(ctx, refJob, Options{Cache: NewCache(0), Kernel: true})
	if err != nil {
		t.Fatal(err)
	}
	if !resultsMatch(res.Analysis, want) {
		t.Fatal("injected step diverged from engine")
	}

	// Next clean step: the delta session resyncs cold and stays exact.
	clean := append([]float64(nil), next...)
	clean[2] *= 1.2
	res, err = w.Step(ctx, clean)
	if err != nil {
		t.Fatal(err)
	}
	refJob.Perturbation.Orig = clean
	want, err = AnalyzeOneContext(ctx, refJob, Options{Cache: NewCache(0), Kernel: true})
	if err != nil {
		t.Fatal(err)
	}
	if !resultsMatch(res.Analysis, want) {
		t.Fatal("post-injection resync diverged from engine")
	}
}

// TestWatcherErrors pins construction and step validation.
func TestWatcherErrors(t *testing.T) {
	if _, err := NewWatcher(Job{}, Options{}); err == nil {
		t.Fatal("NewWatcher accepted an empty job")
	}
	job := paperJobs(t, 1, 408)[0]
	w, err := NewWatcher(job, Options{Kernel: true})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := w.Step(context.Background(), []float64{1}); err == nil {
		t.Fatal("Step accepted a mis-dimensioned point")
	}
	// A non-finite point surfaces the scalar path's validation error.
	bad := append([]float64(nil), job.Perturbation.Orig...)
	bad[0] = math.NaN()
	if _, err := w.Step(context.Background(), bad); err == nil {
		t.Fatal("Step accepted a non-finite point")
	}
}

// TestWatcherStepAllocs pins the steady-state kernel-delta step: with
// every feature on the delta path, a single-coordinate step performs no
// per-step heap allocation beyond the fallback map (bounded small).
func TestWatcherStepAllocs(t *testing.T) {
	job := paperJobs(t, 1, 409)[0]
	w, err := NewWatcher(job, Options{Kernel: true})
	if err != nil {
		t.Fatal(err)
	}
	ctx := context.Background()
	point := append([]float64(nil), job.Perturbation.Orig...)
	if _, err := w.Step(ctx, point); err != nil {
		t.Fatal(err)
	}
	next := append([]float64(nil), point...)
	i := 0
	allocs := testing.AllocsPerRun(200, func() {
		j := i % len(next)
		i++
		next[j] += 0.001
		if _, err := w.Step(ctx, next); err != nil {
			t.Fatal(err)
		}
	})
	if allocs > 1 {
		t.Fatalf("Watcher.Step allocs/op = %g, want ≤ 1", allocs)
	}
}
