package batch

import (
	"context"
	"errors"
	"strings"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"fepia/internal/core"
	"fepia/internal/faults"
)

// gateImpact is a convex impact whose first evaluation parks until
// released, so a test can hold a singleflight leader mid-solve while
// waiters pile onto its flight. evals counts every Eval call; the solver
// is deterministic, so a fixed subproblem costs a fixed number of
// evaluations and the total counts solves exactly.
type gateImpact struct {
	evals   atomic.Int64
	entered chan struct{} // closed when the first Eval begins
	release chan struct{} // Eval proceeds once this is closed
	once    sync.Once
}

func newGateImpact() *gateImpact {
	return &gateImpact{entered: make(chan struct{}), release: make(chan struct{})}
}

func (g *gateImpact) eval(x []float64) float64 {
	g.evals.Add(1)
	g.once.Do(func() {
		close(g.entered)
		<-g.release
	})
	return x[0]*x[0] + x[1]*x[1]
}

// waitFor polls cond until it holds or the deadline passes — chaos tests
// must never hang on a broken singleflight, they must fail.
func waitFor(t *testing.T, what string, cond func() bool) {
	t.Helper()
	deadline := time.Now().Add(5 * time.Second)
	for !cond() {
		if time.Now().After(deadline) {
			t.Fatalf("timed out waiting for %s", what)
		}
		time.Sleep(time.Millisecond)
	}
}

// TestSingleflightSingleCompute is the dedup contract: N concurrent
// misses on one key run core.ComputeRadius exactly once. The leader is
// parked inside its first impact evaluation until every other goroutine
// has joined its flight, so the schedule cannot race past the window;
// the deterministic solver's evaluation count then proves one solve.
func TestSingleflightSingleCompute(t *testing.T) {
	const workers = 8
	p := core.Perturbation{Name: "π", Orig: []float64{1, 1}}

	// Price one solo solve of the same subproblem (same seed, same
	// options) so the concurrent run has an exact evaluation budget.
	solo := newGateImpact()
	close(solo.release)
	fSolo := core.Feature{Name: "q", Impact: &core.FuncImpact{N: 2, F: solo.eval, Convex: true}, Bounds: core.NoMin(9)}
	want, err := core.ComputeRadius(fSolo, p, core.Options{})
	if err != nil {
		t.Fatal(err)
	}
	evalsPerSolve := solo.evals.Load()

	g := newGateImpact()
	f := core.Feature{Name: "q", Impact: &core.FuncImpact{N: 2, F: g.eval, Convex: true}, Bounds: core.NoMin(9)}
	c := NewCacheSharded(64, 8)

	results := make([]core.RadiusResult, workers)
	errs := make([]error, workers)
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		w := w
		wg.Add(1)
		go func() {
			defer wg.Done()
			results[w], errs[w] = c.Radius(f, p, core.Options{})
		}()
	}

	// Leader is inside Eval; hold it until the other workers are parked
	// on its flight.
	<-g.entered
	waitFor(t, "waiters to coalesce", func() bool { return c.Stats().DupSuppressed == workers-1 })
	close(g.release)
	wg.Wait()

	for w := 0; w < workers; w++ {
		if errs[w] != nil {
			t.Fatalf("worker %d: %v", w, errs[w])
		}
		if results[w].Radius != want.Radius || results[w].Kind != want.Kind {
			t.Fatalf("worker %d diverged: %+v vs %+v", w, results[w], want)
		}
	}
	if got := g.evals.Load(); got != evalsPerSolve {
		t.Fatalf("impact evaluated %d times, want %d (exactly one solve)", got, evalsPerSolve)
	}
	st := c.Stats()
	if st.Misses != 1 || st.DupSuppressed != workers-1 || st.Hits != 0 {
		t.Fatalf("stats = %+v, want 1 miss / %d dups / 0 hits", st, workers-1)
	}
	if st.Size != 1 {
		t.Fatalf("size = %d, want the one shared entry", st.Size)
	}
}

// TestSingleflightLeaderErrorPropagates parks waiters on a leader whose
// solve fails, and requires the leader's error verbatim at every waiter
// with nothing cached — a failed solve must be retried by a future
// caller, not memoised.
func TestSingleflightLeaderErrorPropagates(t *testing.T) {
	const workers = 6
	p := core.Perturbation{Name: "π", Orig: []float64{1, 1}}
	g := newGateImpact()
	// NaN at the operating point is a deterministic ComputeRadius error —
	// but only after the gated first Eval, so waiters have time to park.
	impact := &core.FuncImpact{N: 2, F: func(x []float64) float64 {
		g.eval(x)
		return nan()
	}, Convex: true}
	f := core.Feature{Name: "bad", Impact: impact, Bounds: core.NoMin(9)}
	c := NewCacheSharded(64, 8)

	errs := make([]error, workers)
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		w := w
		wg.Add(1)
		go func() {
			defer wg.Done()
			_, errs[w] = c.Radius(f, p, core.Options{})
		}()
	}
	<-g.entered
	waitFor(t, "waiters to coalesce", func() bool { return c.Stats().DupSuppressed == workers-1 })
	close(g.release)
	wg.Wait()

	for w := 0; w < workers; w++ {
		if errs[w] == nil || !strings.Contains(errs[w].Error(), "NaN") {
			t.Fatalf("worker %d: error = %v, want the leader's NaN failure", w, errs[w])
		}
	}
	st := c.Stats()
	if st.Size != 0 {
		t.Fatalf("a failed solve was cached: %+v", st)
	}
	if st.Misses != 1 || st.DupSuppressed != workers-1 {
		t.Fatalf("stats = %+v, want 1 miss / %d dups", st, workers-1)
	}

	// The failure is not sticky: the key is free again, so a fresh call
	// leads a fresh attempt (and fails the same way, as a new leader).
	if _, err := c.Radius(f, p, core.Options{}); err == nil {
		t.Fatal("second attempt should re-solve and fail again")
	}
	if st := c.Stats(); st.Misses != 2 {
		t.Fatalf("stats = %+v, want a second leader miss", st)
	}
}

func nan() float64 {
	var zero float64
	return zero / zero
}

// TestSingleflightChaosPutFaultOnLeader is the PR 3 chaos-suite extension
// for the singleflight layer: a cache_put fault firing on the leader
// while waiters are parked must not deadlock them and must not poison the
// cache — every caller still receives the computed result, the insert is
// dropped and accounted, and a subsequent Lookup misses.
func TestSingleflightChaosPutFaultOnLeader(t *testing.T) {
	const workers = 6
	p := core.Perturbation{Name: "π", Orig: []float64{1, 1}}
	g := newGateImpact()
	f := core.Feature{Name: "q", Impact: &core.FuncImpact{N: 2, F: g.eval, Convex: true}, Bounds: core.NoMin(9)}
	c := NewCacheSharded(64, 8)

	// Exactly one cache_put consult happens (the leader's); fail it.
	inj := faults.NewScript().At(faults.CachePut, 1, faults.KindError)
	ctx := faults.With(context.Background(), inj)

	results := make([]core.RadiusResult, workers)
	errs := make([]error, workers)
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		w := w
		wg.Add(1)
		go func() {
			defer wg.Done()
			results[w], errs[w] = c.RadiusContext(ctx, f, p, core.Options{})
		}()
	}
	<-g.entered
	waitFor(t, "waiters to coalesce", func() bool { return c.Stats().DupSuppressed == workers-1 })
	close(g.release)
	wg.Wait()

	for w := 0; w < workers; w++ {
		if errs[w] != nil {
			t.Fatalf("worker %d: put fault must not fail the call: %v", w, errs[w])
		}
		if results[w].Radius != results[0].Radius {
			t.Fatalf("worker %d diverged from the shared result", w)
		}
	}
	st := c.Stats()
	if st.PutFailures != 1 {
		t.Fatalf("put failures = %d, want the leader's dropped insert", st.PutFailures)
	}
	if st.Size != 0 {
		t.Fatalf("dropped insert still landed in the cache: %+v", st)
	}
	if _, ok := c.Lookup(f, p, core.Options{}); ok {
		t.Fatal("Lookup found an entry the put fault should have dropped")
	}
	if got := inj.Calls(faults.CachePut); got != 1 {
		t.Fatalf("cache_put consulted %d times, want 1 (the leader only)", got)
	}
}

// TestSingleflightChaosPanicFaultOnLeader injects a panic-kind fault at
// the leader's cache_put: the leader's caller sees the panic (recovered
// into a typed solve failure by the engine's per-feature isolation), the
// parked waiters receive the injected error instead of deadlocking, and
// the cache stays clean. The waiters' error keeps its injected-fault
// identity, so the retry layer still classifies it as transient.
func TestSingleflightChaosPanicFaultOnLeader(t *testing.T) {
	const workers = 5
	p := core.Perturbation{Name: "π", Orig: []float64{1, 1}}
	g := newGateImpact()
	f := core.Feature{Name: "q", Impact: &core.FuncImpact{N: 2, F: g.eval, Convex: true}, Bounds: core.NoMin(9)}
	c := NewCacheSharded(64, 8)

	inj := faults.NewScript().At(faults.CachePut, 1, faults.KindPanic)
	ctx := faults.With(context.Background(), inj)

	errs := make([]error, workers)
	var panics atomic.Int64
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		w := w
		wg.Add(1)
		go func() {
			defer wg.Done()
			defer func() {
				if rec := recover(); rec != nil {
					panics.Add(1)
					if _, ok := rec.(*faults.InjectedError); !ok {
						t.Errorf("worker %d: panic value %v, want the injected fault", w, rec)
					}
				}
			}()
			_, errs[w] = c.RadiusContext(ctx, f, p, core.Options{})
		}()
	}
	<-g.entered
	waitFor(t, "waiters to coalesce", func() bool { return c.Stats().DupSuppressed == workers-1 })
	close(g.release)
	wg.Wait()

	if got := panics.Load(); got != 1 {
		t.Fatalf("%d goroutines panicked, want only the leader", got)
	}
	var ie *faults.InjectedError
	failed := 0
	for w := 0; w < workers; w++ {
		if errs[w] != nil {
			failed++
			if !errors.As(errs[w], &ie) {
				t.Fatalf("worker %d: error %v lost its injected-fault identity", w, errs[w])
			}
		}
	}
	if failed != workers-1 {
		t.Fatalf("%d waiters saw the leader's failure, want %d", failed, workers-1)
	}
	st := c.Stats()
	if st.Size != 0 {
		t.Fatalf("a panicked put left a cache entry: %+v", st)
	}

	// The flight is gone: the same key solves cleanly afterwards.
	got, err := c.RadiusContext(context.Background(), f, p, core.Options{})
	if err != nil {
		t.Fatalf("post-panic solve: %v", err)
	}
	if got.Feature != "q" {
		t.Fatalf("post-panic solve returned %+v", got)
	}
}

// TestSingleflightChaosWaiterCancellation parks waiters, cancels one of
// their contexts, and requires the cancelled waiter to return promptly
// with ctx.Err() while the remaining waiters still receive the leader's
// result.
func TestSingleflightChaosWaiterCancellation(t *testing.T) {
	const workers = 4
	p := core.Perturbation{Name: "π", Orig: []float64{1, 1}}
	g := newGateImpact()
	f := core.Feature{Name: "q", Impact: &core.FuncImpact{N: 2, F: g.eval, Convex: true}, Bounds: core.NoMin(9)}
	c := NewCacheSharded(64, 8)

	cancelCtx, cancel := context.WithCancel(context.Background())
	errs := make([]error, workers)
	var wg sync.WaitGroup
	// Worker 0 starts alone and is parked inside its solve before anyone
	// else is launched, so it is provably the leader and the cancelled
	// caller below is provably a waiter.
	wg.Add(1)
	go func() {
		defer wg.Done()
		_, errs[0] = c.RadiusContext(context.Background(), f, p, core.Options{})
	}()
	<-g.entered
	cancelledErr := make(chan error, 1)
	for w := 1; w < workers; w++ {
		w := w
		wg.Add(1)
		go func() {
			defer wg.Done()
			ctx := context.Background()
			if w == workers-1 {
				ctx = cancelCtx
			}
			_, errs[w] = c.RadiusContext(ctx, f, p, core.Options{})
			if w == workers-1 {
				cancelledErr <- errs[w]
			}
		}()
	}
	waitFor(t, "waiters to coalesce", func() bool { return c.Stats().DupSuppressed == workers-1 })
	cancel()
	// The cancelled caller must unpark without the leader finishing...
	select {
	case err := <-cancelledErr:
		if !errors.Is(err, context.Canceled) {
			t.Fatalf("cancelled waiter returned %v, want context.Canceled", err)
		}
	case <-time.After(5 * time.Second):
		t.Fatal("cancelled waiter never unparked while the leader was held")
	}
	// ...and everyone else completes once the leader is released.
	close(g.release)
	wg.Wait()

	cancelled, succeeded := 0, 0
	for w := 0; w < workers; w++ {
		switch {
		case errs[w] == nil:
			succeeded++
		case errors.Is(errs[w], context.Canceled):
			cancelled++
		default:
			t.Fatalf("worker %d: unexpected error %v", w, errs[w])
		}
	}
	if cancelled != 1 || succeeded != workers-1 {
		t.Fatalf("cancelled=%d succeeded=%d, want 1/%d", cancelled, succeeded, workers-1)
	}
}
