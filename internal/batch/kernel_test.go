package batch

import (
	"context"
	"fmt"
	"math"
	"math/rand"
	"testing"

	"fepia/internal/core"
	"fepia/internal/faults"
	"fepia/internal/obs"
)

// kernelJob builds a mixed job: mostly linear features (kernel-eligible)
// with a sprinkling of convex and non-convex FuncImpacts that must keep
// the internal/optimize path.
func kernelJob(t *testing.T, seed int64, n, dim int, mixed bool) Job {
	t.Helper()
	rng := rand.New(rand.NewSource(seed))
	orig := make([]float64, dim)
	for i := range orig {
		orig[i] = -1 + 2*rng.Float64()
	}
	features := make([]core.Feature, n)
	for k := range features {
		if mixed && k%5 == 3 {
			// Convex quadratic ‖π‖² with a reachable max bound.
			features[k] = core.Feature{
				Name: fmt.Sprintf("Q%d", k),
				Impact: &core.FuncImpact{
					N: dim,
					F: func(pi []float64) float64 {
						s := 0.0
						for _, v := range pi {
							s += v * v
						}
						return s
					},
					Convex: true,
				},
				Bounds: core.NoMin(float64(dim) * 16),
			}
			continue
		}
		if mixed && k%5 == 4 {
			// Non-convex impact: routed through the annealing fallback.
			features[k] = core.Feature{
				Name: fmt.Sprintf("N%d", k),
				Impact: &core.FuncImpact{
					N: dim,
					F: func(pi []float64) float64 {
						s := 0.0
						for _, v := range pi {
							s += math.Sin(v) + v*v
						}
						return s
					},
				},
				Bounds: core.NoMin(float64(dim) * 16),
			}
			continue
		}
		coeffs := make([]float64, dim)
		for i := range coeffs {
			coeffs[i] = -2 + 4*rng.Float64()
		}
		imp, err := core.NewLinearImpact(coeffs, -1+2*rng.Float64())
		if err != nil {
			t.Fatal(err)
		}
		v0 := imp.Eval(orig)
		var b core.Bounds
		switch k % 4 {
		case 0:
			b = core.Bounds{Min: v0 - 1 - rng.Float64(), Max: v0 + 1 + rng.Float64()}
		case 1:
			b = core.NoMin(v0 + rng.Float64()*3)
		case 2:
			b = core.NoMax(v0 - rng.Float64()*3)
		default:
			b = core.Bounds{Min: v0 + 1, Max: v0 + 2} // already violated
		}
		features[k] = core.Feature{Name: fmt.Sprintf("L%d", k), Impact: imp, Bounds: b}
	}
	return Job{Features: features, Perturbation: core.Perturbation{Name: "π", Orig: orig}}
}

// assertAnalysesIdentical compares two analyses field by field with
// bit-level float comparison.
func assertAnalysesIdentical(t *testing.T, tag string, got, want core.Analysis) {
	t.Helper()
	if len(got.Radii) != len(want.Radii) {
		t.Fatalf("%s: %d radii, want %d", tag, len(got.Radii), len(want.Radii))
	}
	if math.Float64bits(got.Robustness) != math.Float64bits(want.Robustness) {
		t.Fatalf("%s: Robustness = %g, want %g", tag, got.Robustness, want.Robustness)
	}
	for i := range got.Radii {
		g, w := got.Radii[i], want.Radii[i]
		if g.Feature != w.Feature || g.Kind != w.Kind || g.Method != w.Method {
			t.Fatalf("%s: radii[%d] = {%s %v %v}, want {%s %v %v}", tag, i, g.Feature, g.Kind, g.Method, w.Feature, w.Kind, w.Method)
		}
		if math.Float64bits(g.Radius) != math.Float64bits(w.Radius) {
			t.Fatalf("%s: radii[%d].Radius = %x, want %x", tag, i, math.Float64bits(g.Radius), math.Float64bits(w.Radius))
		}
		if (g.Boundary == nil) != (w.Boundary == nil) || len(g.Boundary) != len(w.Boundary) {
			t.Fatalf("%s: radii[%d].Boundary shape mismatch", tag, i)
		}
		for j := range g.Boundary {
			if math.Float64bits(g.Boundary[j]) != math.Float64bits(w.Boundary[j]) {
				t.Fatalf("%s: radii[%d].Boundary[%d] = %x, want %x", tag, i, j,
					math.Float64bits(g.Boundary[j]), math.Float64bits(w.Boundary[j]))
			}
		}
	}
}

// TestKernelAnalyzeByteIdentical: AnalyzeOneContext with Options.Kernel
// on and off produces bit-equal analyses for all-linear jobs.
func TestKernelAnalyzeByteIdentical(t *testing.T) {
	for seed := int64(0); seed < 5; seed++ {
		job := kernelJob(t, 100+seed, 33, 7, false)
		off, err := AnalyzeOneContext(context.Background(), job, Options{})
		if err != nil {
			t.Fatalf("kernel off: %v", err)
		}
		on, err := AnalyzeOneContext(context.Background(), job, Options{Kernel: true})
		if err != nil {
			t.Fatalf("kernel on: %v", err)
		}
		assertAnalysesIdentical(t, fmt.Sprintf("seed=%d", seed), on, off)
	}
}

// TestKernelMixedBatchRouting: in a mixed job the linear features come
// back MethodHyperplane while the convex and non-convex ones carry the
// internal/optimize methods — proof the kernel never swallows a feature
// it cannot answer exactly.
func TestKernelMixedBatchRouting(t *testing.T) {
	job := kernelJob(t, 7, 20, 4, true)
	got, err := AnalyzeOneContext(context.Background(), job, Options{Kernel: true})
	if err != nil {
		t.Fatal(err)
	}
	var hyper, optimized int
	for i, r := range got.Radii {
		name := job.Features[i].Name
		switch name[0] {
		case 'L':
			if r.Method != core.MethodHyperplane && r.Method != core.MethodNone {
				t.Errorf("%s: Method = %v, want hyperplane or none", name, r.Method)
			}
			hyper++
		case 'Q', 'N':
			if r.Method != core.MethodConvex && r.Method != core.MethodAnneal {
				t.Errorf("%s: Method = %v, want convex-slp or anneal", name, r.Method)
			}
			optimized++
		}
	}
	if hyper == 0 || optimized == 0 {
		t.Fatalf("mixed job lost a class: %d linear, %d optimized", hyper, optimized)
	}
	// And the mixed job is still byte-identical to the kernel-off run for
	// the deterministic (linear + convex) slots; annealed radii depend on
	// a seeded RNG inside optimize, which both paths share identically
	// because the per-feature path solves them in both runs.
	off, err := AnalyzeOneContext(context.Background(), job, Options{})
	if err != nil {
		t.Fatal(err)
	}
	assertAnalysesIdentical(t, "mixed", got, off)
}

// noopInjector never fires a fault; its presence on the context is what
// the routing check keys on.
type noopInjector struct{}

func (noopInjector) Inject(context.Context, faults.Point) error { return nil }

// TestKernelRoutingFidelity: the kernel path participates in the radius
// cache (a cold sweep populates it, a warm request serves from it), so
// cache statistics make routing observable. A plain or traced request
// with Kernel on must populate a fresh cache from its sweep (fepiad
// traces every request, so the kernel must engage on traced requests
// too — recording a "kernel" span for the sweep); a request carrying a
// fault injector must fall back to the per-feature cached path so
// injection points keep firing per feature.
func TestKernelRoutingFidelity(t *testing.T) {
	job := kernelJob(t, 11, 12, 5, false)

	t.Run("cold sweep populates cache", func(t *testing.T) {
		c := NewCache(64)
		if _, err := AnalyzeOneContext(context.Background(), job, Options{Kernel: true, Cache: c}); err != nil {
			t.Fatal(err)
		}
		if s := c.Stats(); s.Misses != 12 || s.Size != 12 || s.Hits != 0 {
			t.Fatalf("cold kernel sweep did not populate the cache: %+v", s)
		}
	})

	t.Run("warm request serves kernel-eligible features from cache", func(t *testing.T) {
		c := NewCache(64)
		cold, err := AnalyzeOneContext(context.Background(), job, Options{Kernel: true, Cache: c})
		if err != nil {
			t.Fatal(err)
		}
		warm, err := AnalyzeOneContext(context.Background(), job, Options{Kernel: true, Cache: c})
		if err != nil {
			t.Fatal(err)
		}
		if s := c.Stats(); s.Hits != 12 || s.Misses != 12 {
			t.Fatalf("warm kernel request did not hit the cache: %+v", s)
		}
		assertAnalysesIdentical(t, "warm-vs-cold", warm, cold)
	})

	t.Run("scalar path hits kernel-populated entries", func(t *testing.T) {
		// Cross-path affinity: radii swept by the kernel must be warm hits
		// for a later Kernel-off request, byte-identical to a fresh solve.
		c := NewCache(64)
		if _, err := AnalyzeOneContext(context.Background(), job, Options{Kernel: true, Cache: c}); err != nil {
			t.Fatal(err)
		}
		scalar, err := AnalyzeOneContext(context.Background(), job, Options{Cache: c})
		if err != nil {
			t.Fatal(err)
		}
		if s := c.Stats(); s.Hits != 12 {
			t.Fatalf("scalar path missed kernel-populated entries: %+v", s)
		}
		fresh, err := AnalyzeOneContext(context.Background(), job, Options{})
		if err != nil {
			t.Fatal(err)
		}
		assertAnalysesIdentical(t, "scalar-vs-fresh", scalar, fresh)
	})

	t.Run("kernel path hits scalar-populated entries", func(t *testing.T) {
		// And the other direction: radii solved per-feature are warm hits
		// for a later kernel request, which then sweeps nothing.
		c := NewCache(64)
		if _, err := AnalyzeOneContext(context.Background(), job, Options{Cache: c}); err != nil {
			t.Fatal(err)
		}
		tr := obs.NewTrace(obs.NewID(), "test")
		ctx := obs.WithTrace(context.Background(), tr)
		if _, err := AnalyzeOneContext(ctx, job, Options{Kernel: true, Cache: c}); err != nil {
			t.Fatal(err)
		}
		if s := c.Stats(); s.Hits != 12 {
			t.Fatalf("kernel path missed scalar-populated entries: %+v", s)
		}
		for _, sp := range tr.Finish(200).Spans {
			if sp.Name == "kernel" {
				if got := sp.Attrs["cache_hits"]; got != "12" {
					t.Errorf("kernel span cache_hits = %q, want \"12\"", got)
				}
				if got := sp.Attrs["features"]; got != "0" {
					t.Errorf("fully warm kernel span swept features = %q, want \"0\"", got)
				}
			}
		}
	})

	t.Run("traced request uses kernel and records a span", func(t *testing.T) {
		c := NewCache(64)
		tr := obs.NewTrace(obs.NewID(), "test")
		ctx := obs.WithTrace(context.Background(), tr)
		if _, err := AnalyzeOneContext(ctx, job, Options{Kernel: true, Cache: c}); err != nil {
			t.Fatal(err)
		}
		if s := c.Stats(); s.Misses != 12 || s.Size != 12 {
			t.Fatalf("traced kernel sweep did not populate the cache: %+v", s)
		}
		td := tr.Finish(200)
		var kernelSpans, solveSpans int
		for _, sp := range td.Spans {
			switch sp.Name {
			case "kernel":
				kernelSpans++
				if got := sp.Attrs["features"]; got != "12" {
					t.Errorf("kernel span features = %q, want \"12\"", got)
				}
				if got := sp.Attrs["fallback"]; got != "0" {
					t.Errorf("kernel span fallback = %q, want \"0\"", got)
				}
				if got := sp.Attrs["cache_hits"]; got != "0" {
					t.Errorf("cold kernel span cache_hits = %q, want \"0\"", got)
				}
			case "solve":
				solveSpans++
			}
		}
		if kernelSpans != 1 {
			t.Fatalf("recorded %d kernel spans, want 1 (spans: %+v)", kernelSpans, td.Spans)
		}
		if solveSpans != 0 {
			t.Fatalf("all-linear kernel job recorded %d per-feature solve spans, want 0", solveSpans)
		}
	})

	t.Run("injected request keeps per-feature path", func(t *testing.T) {
		c := NewCache(64)
		ctx := faults.With(context.Background(), noopInjector{})
		if _, err := AnalyzeOneContext(ctx, job, Options{Kernel: true, Cache: c}); err != nil {
			t.Fatal(err)
		}
		if s := c.Stats(); s.Misses == 0 {
			t.Fatalf("injected request skipped the per-feature path: %+v", s)
		}
	})

	t.Run("request stats label kernel and hit provenance", func(t *testing.T) {
		c := NewCache(64)
		var coldStats RequestStats
		ctx := WithRequestStats(context.Background(), &coldStats)
		if _, err := AnalyzeOneContext(ctx, job, Options{Kernel: true, Cache: c}); err != nil {
			t.Fatal(err)
		}
		if got := coldStats.Source(); got != "kernel" {
			t.Fatalf("cold kernel request Source() = %q, want \"kernel\" (stats: kernel=%d hits=%d misses=%d)",
				got, coldStats.Kernel.Load(), coldStats.Hits.Load(), coldStats.Misses.Load())
		}
		var warmStats RequestStats
		ctx = WithRequestStats(context.Background(), &warmStats)
		if _, err := AnalyzeOneContext(ctx, job, Options{Kernel: true, Cache: c}); err != nil {
			t.Fatal(err)
		}
		if got := warmStats.Source(); got != "hit" {
			t.Fatalf("warm kernel request Source() = %q, want \"hit\"", got)
		}
	})
}
