package batch

import (
	"context"
	"fmt"
	"math"
	"reflect"
	"sync"
	"testing"

	"fepia/internal/core"
	"fepia/internal/faults"
)

func linFeature(t *testing.T, name string, coeffs []float64, max float64) core.Feature {
	t.Helper()
	imp, err := core.NewLinearImpact(coeffs, 0)
	if err != nil {
		t.Fatal(err)
	}
	return core.Feature{Name: name, Impact: imp, Bounds: core.NoMin(max)}
}

func TestCacheHitMissAccounting(t *testing.T) {
	c := NewCache(16)
	f := linFeature(t, "F", []float64{1, 1}, 10)
	p := core.Perturbation{Name: "π", Orig: []float64{1, 2}}

	first, err := c.Radius(f, p, core.Options{})
	if err != nil {
		t.Fatal(err)
	}
	second, err := c.Radius(f, p, core.Options{})
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(first, second) {
		t.Fatalf("cached result differs: %+v vs %+v", first, second)
	}
	st := c.Stats()
	if st.Hits != 1 || st.Misses != 1 || st.Size != 1 {
		t.Fatalf("stats = %+v, want 1 hit / 1 miss / size 1", st)
	}
	if got := st.HitRate(); got != 0.5 {
		t.Fatalf("hit rate = %v, want 0.5", got)
	}

	// A hit's boundary is an independent clone: mutating it must not
	// corrupt later lookups.
	second.Boundary[0] = math.Inf(1)
	third, err := c.Radius(f, p, core.Options{})
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(first, third) {
		t.Fatalf("boundary mutation leaked into the cache: %+v", third)
	}
}

// Structurally identical affine impacts must hit even when they are
// distinct objects — this is the cross-mapping sharing that makes the
// cache pay off in the §4.3 sweep.
func TestCacheValueKeyedLinearImpacts(t *testing.T) {
	c := NewCache(16)
	p := core.Perturbation{Name: "π", Orig: []float64{1, 2}}
	fa := linFeature(t, "A", []float64{3, 4}, 25)
	fb := linFeature(t, "B", []float64{3, 4}, 25) // same hyperplane, new object

	ra, err := c.Radius(fa, p, core.Options{})
	if err != nil {
		t.Fatal(err)
	}
	rb, err := c.Radius(fb, p, core.Options{})
	if err != nil {
		t.Fatal(err)
	}
	if st := c.Stats(); st.Hits != 1 || st.Misses != 1 {
		t.Fatalf("stats = %+v, want the second distinct object to hit", st)
	}
	// The memo stores the radius computation, which does not depend on
	// the feature's display name — but the hit must carry the caller's
	// name, not the name of the feature that populated the entry.
	if ra.Radius != rb.Radius || ra.Kind != rb.Kind {
		t.Fatalf("radii differ: %+v vs %+v", ra, rb)
	}
	if ra.Feature != "A" || rb.Feature != "B" {
		t.Fatalf("feature names not re-stamped on hit: %q / %q", ra.Feature, rb.Feature)
	}

	// Different bounds on the same impact is a different subproblem.
	fc := linFeature(t, "C", []float64{3, 4}, 26)
	if _, err := c.Radius(fc, p, core.Options{}); err != nil {
		t.Fatal(err)
	}
	// ... and so is a different operating point.
	p2 := core.Perturbation{Name: "π", Orig: []float64{0, 0}}
	if _, err := c.Radius(fa, p2, core.Options{}); err != nil {
		t.Fatal(err)
	}
	if st := c.Stats(); st.Misses != 3 {
		t.Fatalf("stats = %+v, want 3 misses (distinct bounds / operating point)", st)
	}
}

// Non-linear impacts are keyed by pointer identity: the same object hits,
// a behaviourally identical clone does not.
func TestCachePointerKeyedFuncImpacts(t *testing.T) {
	c := NewCache(16)
	p := core.Perturbation{Name: "π", Orig: []float64{1, 1}}
	square := func(x []float64) float64 { return x[0]*x[0] + x[1]*x[1] }
	fa := core.Feature{Name: "q", Impact: &core.FuncImpact{N: 2, F: square, Convex: true}, Bounds: core.NoMin(9)}
	fb := core.Feature{Name: "q", Impact: &core.FuncImpact{N: 2, F: square, Convex: true}, Bounds: core.NoMin(9)}

	if _, err := c.Radius(fa, p, core.Options{}); err != nil {
		t.Fatal(err)
	}
	if _, err := c.Radius(fa, p, core.Options{}); err != nil {
		t.Fatal(err)
	}
	if _, err := c.Radius(fb, p, core.Options{}); err != nil {
		t.Fatal(err)
	}
	if st := c.Stats(); st.Hits != 1 || st.Misses != 2 {
		t.Fatalf("stats = %+v, want same-object hit and clone miss", st)
	}
}

// A FuncImpact with a Fingerprint is keyed by that content identity:
// distinct objects with equal fingerprints share one cache entry (the
// spec decoder sets one per terms impact, so re-decoded documents hit),
// while differing fingerprints stay distinct subproblems.
func TestCacheFingerprintKeyedFuncImpacts(t *testing.T) {
	c := NewCache(16)
	p := core.Perturbation{Name: "π", Orig: []float64{1, 1}}
	square := func(x []float64) float64 { return x[0]*x[0] + x[1]*x[1] }
	mk := func(fp string) core.Feature {
		return core.Feature{
			Name:   "q",
			Impact: &core.FuncImpact{N: 2, F: square, Convex: true, Fingerprint: []byte(fp)},
			Bounds: core.NoMin(9),
		}
	}

	a1, err := c.Radius(mk("sum-of-squares"), p, core.Options{})
	if err != nil {
		t.Fatal(err)
	}
	a2, err := c.Radius(mk("sum-of-squares"), p, core.Options{})
	if err != nil {
		t.Fatal(err)
	}
	if st := c.Stats(); st.Hits != 1 || st.Misses != 1 {
		t.Fatalf("stats = %+v, want equal fingerprints to share one entry", st)
	}
	if math.Float64bits(a1.Radius) != math.Float64bits(a2.Radius) {
		t.Fatalf("fingerprint hit changed the radius: %v vs %v", a1.Radius, a2.Radius)
	}
	if _, err := c.Radius(mk("other-function"), p, core.Options{}); err != nil {
		t.Fatal(err)
	}
	if st := c.Stats(); st.Hits != 1 || st.Misses != 2 {
		t.Fatalf("stats = %+v, want a different fingerprint to miss", st)
	}
}

func TestCacheLRUEviction(t *testing.T) {
	// One shard pins the global-LRU semantics this test asserts; the
	// per-shard variant lives in TestCachePerShardLRUEviction.
	c := NewCacheSharded(2, 1)
	p := core.Perturbation{Name: "π", Orig: []float64{0, 0}}
	f1 := linFeature(t, "1", []float64{1, 0}, 1)
	f2 := linFeature(t, "2", []float64{0, 1}, 1)
	f3 := linFeature(t, "3", []float64{1, 1}, 1)

	for _, f := range []core.Feature{f1, f2} {
		if _, err := c.Radius(f, p, core.Options{}); err != nil {
			t.Fatal(err)
		}
	}
	// Touch f1 so f2 becomes least-recently used, then insert f3.
	if _, err := c.Radius(f1, p, core.Options{}); err != nil {
		t.Fatal(err)
	}
	if _, err := c.Radius(f3, p, core.Options{}); err != nil {
		t.Fatal(err)
	}
	if st := c.Stats(); st.Size != 2 {
		t.Fatalf("size = %d, want capacity 2", st.Size)
	}
	// f1 must still be cached (hit), f2 must have been evicted (miss).
	before := c.Stats()
	if _, err := c.Radius(f1, p, core.Options{}); err != nil {
		t.Fatal(err)
	}
	if st := c.Stats(); st.Hits != before.Hits+1 {
		t.Fatalf("f1 should have survived eviction: %+v", st)
	}
	before = c.Stats()
	if _, err := c.Radius(f2, p, core.Options{}); err != nil {
		t.Fatal(err)
	}
	if st := c.Stats(); st.Misses != before.Misses+1 {
		t.Fatalf("f2 should have been evicted: %+v", st)
	}
}

// valueImpact is an Impact implemented by a value type: it has no stable
// identity, so the cache must bypass it rather than risk collisions.
type valueImpact struct{ c float64 }

func (v valueImpact) Eval(pi []float64) float64 { return v.c * pi[0] }
func (v valueImpact) Dim() int                  { return 1 }

func TestCacheBypassesUncacheableAndNil(t *testing.T) {
	p := core.Perturbation{Name: "π", Orig: []float64{1}}
	f := core.Feature{Name: "v", Impact: valueImpact{c: 2}, Bounds: core.NoMin(4)}

	var nilCache *Cache
	r, err := nilCache.Radius(f, p, core.Options{})
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(r.Radius-1) > 1e-6 {
		t.Fatalf("radius = %v, want ≈1 (2x = 4 at x=2, distance 1)", r.Radius)
	}
	if st := nilCache.Stats(); st != (CacheStats{}) {
		t.Fatalf("nil cache stats = %+v", st)
	}

	c := NewCache(4)
	for i := 0; i < 3; i++ {
		if _, err := c.Radius(f, p, core.Options{}); err != nil {
			t.Fatal(err)
		}
	}
	if st := c.Stats(); st.Hits != 0 || st.Misses != 0 || st.Size != 0 {
		t.Fatalf("uncacheable impact should bypass entirely, got %+v", st)
	}
}

// TestCacheConcurrentEvictionWithPutFaults hammers a deliberately tiny
// cache — so inserts and LRU evictions race constantly — from many
// goroutines while a seeded schedule fails half the cache_put calls. The
// contract under test: every call still returns the correct radius (no
// result is ever lost to a put fault or duplicated into the wrong key),
// the dropped inserts are accounted in PutFailures, and the whole dance is
// race-clean (this test is the reason `make chaos` runs under -race).
func TestCacheConcurrentEvictionWithPutFaults(t *testing.T) {
	const (
		distinct   = 24 // feature variants, 3× the cache capacity
		workers    = 8
		iterations = 40
	)
	p := core.Perturbation{Name: "π", Orig: []float64{1, 2}}
	features := make([]core.Feature, distinct)
	want := make([]core.RadiusResult, distinct)
	for i := range features {
		features[i] = linFeature(t, fmt.Sprintf("F%d", i), []float64{1 + float64(i%5), 1}, float64(10+i))
		var err error
		want[i], err = core.ComputeRadius(features[i], p, core.Options{})
		if err != nil {
			t.Fatal(err)
		}
	}

	c := NewCache(distinct / 3)
	inj := faults.NewSeeded(11, faults.Config{
		Rates: map[faults.Point]map[faults.Kind]float64{
			faults.CachePut: {faults.KindError: 0.5},
		},
	})
	ctx := faults.With(context.Background(), inj)

	var wg sync.WaitGroup
	errs := make(chan error, workers)
	for w := 0; w < workers; w++ {
		w := w
		wg.Add(1)
		go func() {
			defer wg.Done()
			for it := 0; it < iterations; it++ {
				i := (w*13 + it*7) % distinct // per-worker stride over all keys
				got, err := c.RadiusContext(ctx, features[i], p, core.Options{})
				if err != nil {
					errs <- fmt.Errorf("worker %d: feature %d: %v", w, i, err)
					return
				}
				if !reflect.DeepEqual(got, want[i]) {
					errs <- fmt.Errorf("worker %d: feature %d: result diverged from direct ComputeRadius", w, i)
					return
				}
				// Lookup must agree with Radius whenever it reports a hit,
				// even while other workers are evicting around it.
				if cached, ok := c.Lookup(features[i], p, core.Options{}); ok {
					if !reflect.DeepEqual(cached, want[i]) {
						errs <- fmt.Errorf("worker %d: feature %d: Lookup returned a wrong result", w, i)
						return
					}
				}
			}
		}()
	}
	wg.Wait()
	close(errs)
	for err := range errs {
		t.Fatal(err)
	}

	st := c.Stats()
	if st.PutFailures == 0 {
		t.Fatalf("no cache_put faults delivered (stats %+v) — schedule exercised nothing", st)
	}
	if st.Size > st.Capacity {
		t.Fatalf("cache overflowed its capacity: %+v", st)
	}
	if st.Hits == 0 || st.Misses == 0 {
		t.Fatalf("expected both hits and misses under churn, got %+v", st)
	}
	t.Logf("churn stats: %+v, injected put faults: %d", st, inj.Delivered())
}
