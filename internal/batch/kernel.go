package batch

import (
	"context"
	"strconv"

	"fepia/internal/core"
	"fepia/internal/faults"
	"fepia/internal/kernel"
	"fepia/internal/obs"
)

// kernelSolve is the engine's routing step for Options.Kernel: it serves
// every kernel-eligible feature already memoised straight from the warm
// radius cache, packs the remaining cold subset into one SoA batch,
// computes those radii in a single sweep, populates the cache with the
// swept results, scatters everything into its input-ordered slot, and
// returns a mask of the slots it filled. A nil return means "kernel took
// nothing" — the caller's per-feature loop then behaves exactly as if
// Kernel were off.
//
// Routing rules (the full table lives in docs/PERFORMANCE.md):
//
//   - a request carrying a fault injector keeps the per-feature path
//     wholesale, so the solve/cache_get/cache_put injection points fire
//     per feature exactly as the chaos suite expects;
//   - an invalid perturbation keeps the per-feature path so the scalar
//     validation error is surfaced verbatim;
//   - per feature, only valid linear impacts of matching dimension under
//     a supported norm are packed (kernel.Eligible); everything else —
//     convex/non-convex impacts headed for internal/optimize, exotic
//     norms, malformed features — keeps the per-feature path;
//   - a feature whose impact evaluates to NaN at the operating point is
//     handed back by the kernel and re-routed through the scalar path,
//     which owns that error's wording.
//
// Traced requests DO use the kernel (fepiad traces every request into
// the /debug/traces ring, so falling back on trace presence would
// disable the kernel for the whole serving surface); the sweep records
// one "kernel" span carrying the hit/solved/fallback counts, and only
// the features re-routed to the per-feature path get individual solve
// spans.
//
// Cache integration: kernel-swept results are bit-identical to
// core.ComputeRadius, so they flow through the shared radius cache in
// both directions — warm entries are served without sweeping (counted as
// cache hits), and every swept radius is inserted for later hits
// (counted as misses through Cache.Put, preserving the one-miss-per-
// solve accounting). This keeps cluster cache-affinity and degraded
// serving effective on the kernel path. The cache is consulted without
// injection points, which is sound because a fault-injected request
// never reaches the kernel path at all.
func kernelSolve(ctx context.Context, job Job, copts core.Options, opts Options, radii []core.RadiusResult) []bool {
	if !opts.Kernel {
		return nil
	}
	if faults.From(ctx) != nil {
		return nil
	}
	if job.Perturbation.Validate() != nil {
		return nil
	}
	dim := len(job.Perturbation.Orig)
	if !kernel.SupportedNorm(copts.Norm) {
		return nil
	}
	idx := make([]int, 0, len(job.Features))
	for i, f := range job.Features {
		if kernel.Eligible(f, dim, copts.Norm) {
			idx = append(idx, i)
		}
	}
	if len(idx) == 0 {
		return nil
	}
	sp := obs.StartSpan(ctx, "kernel")
	rs := requestStats(ctx)
	solved := make([]bool, len(job.Features))

	// Warm reads first: a memoised radius is cheaper than re-sweeping it,
	// and on a cluster node that owns this spec's arc the whole request
	// should resolve here. In-place filter — cold reuses idx's backing
	// array, writing only behind the read position.
	cold := idx[:0]
	hits := 0
	for _, i := range idx {
		if r, ok := opts.Cache.kernelGet(job.Features[i], job.Perturbation, copts, !opts.ShareBoundaries); ok {
			radii[i] = r
			solved[i] = true
			hits++
			continue
		}
		cold = append(cold, i)
	}
	if rs != nil && hits > 0 {
		rs.Hits.Add(uint64(hits))
	}
	sp.Set("cache_hits", strconv.Itoa(hits))
	if len(cold) == 0 {
		sp.Set("features", "0")
		sp.Set("fallback", "0")
		sp.End(nil)
		return solved
	}

	eligible := make([]core.Feature, len(cold))
	for j, i := range cold {
		eligible[j] = job.Features[i]
	}
	b, err := kernel.Pack(eligible, dim, copts.Norm)
	if err != nil {
		// Defensive: Eligible vetted every feature, so Pack cannot fail;
		// if it ever does, the per-feature path still produces a correct
		// answer (or the authoritative error) for the cold subset.
		sp.End(err)
		return solved
	}
	out := make([]core.RadiusResult, len(cold))
	fallback, err := b.Compute(job.Perturbation.Orig, out)
	if err != nil {
		sp.End(err)
		return solved
	}
	swept := make([]bool, len(cold))
	for j := range cold {
		swept[j] = true
	}
	for _, j := range fallback {
		swept[j] = false
	}
	sweptN := 0
	for j, i := range cold {
		if !swept[j] {
			continue
		}
		solved[i] = true
		radii[i] = out[j]
		sweptN++
		// Populate the shared cache so the next request — on this node or
		// served degraded — hits instead of sweeping again.
		opts.Cache.Put(job.Features[i], job.Perturbation, copts, out[j])
	}
	if rs != nil && sweptN > 0 {
		rs.Kernel.Add(uint64(sweptN))
	}
	sp.Set("features", strconv.Itoa(sweptN))
	sp.Set("fallback", strconv.Itoa(len(fallback)))
	sp.End(nil)
	return solved
}
