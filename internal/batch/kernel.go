package batch

import (
	"context"
	"strconv"

	"fepia/internal/core"
	"fepia/internal/faults"
	"fepia/internal/kernel"
	"fepia/internal/obs"
)

// kernelSolve is the engine's routing step for Options.Kernel: it packs
// the kernel-eligible subset of the job's features into one SoA batch,
// computes their radii in a single sweep, scatters the results into
// their input-ordered slots, and returns a mask of the slots it filled.
// A nil return means "kernel took nothing" — the caller's per-feature
// loop then behaves exactly as if Kernel were off.
//
// Routing rules (the full table lives in docs/PERFORMANCE.md):
//
//   - a request carrying a fault injector keeps the per-feature path
//     wholesale, so the solve/cache_get/cache_put injection points fire
//     per feature exactly as the chaos suite expects;
//   - an invalid perturbation keeps the per-feature path so the scalar
//     validation error is surfaced verbatim;
//   - per feature, only valid linear impacts of matching dimension under
//     a supported norm are packed (kernel.Eligible); everything else —
//     convex/non-convex impacts headed for internal/optimize, exotic
//     norms, malformed features — keeps the per-feature path;
//   - a feature whose impact evaluates to NaN at the operating point is
//     handed back by the kernel and re-routed through the scalar path,
//     which owns that error's wording.
//
// Traced requests DO use the kernel (fepiad traces every request into
// the /debug/traces ring, so falling back on trace presence would
// disable the kernel for the whole serving surface); the sweep records
// one "kernel" span carrying the solved/fallback counts, and only the
// features re-routed to the per-feature path get individual solve
// spans.
//
// The kernel path consults no cache and fires no injection point; its
// results are nevertheless bit-identical to the cached per-feature path
// because the cache stores exactly what core.ComputeRadius returns.
func kernelSolve(ctx context.Context, job Job, copts core.Options, opts Options, radii []core.RadiusResult) []bool {
	if !opts.Kernel {
		return nil
	}
	if faults.From(ctx) != nil {
		return nil
	}
	if job.Perturbation.Validate() != nil {
		return nil
	}
	dim := len(job.Perturbation.Orig)
	if !kernel.SupportedNorm(copts.Norm) {
		return nil
	}
	idx := make([]int, 0, len(job.Features))
	for i, f := range job.Features {
		if kernel.Eligible(f, dim, copts.Norm) {
			idx = append(idx, i)
		}
	}
	if len(idx) == 0 {
		return nil
	}
	sp := obs.StartSpan(ctx, "kernel")
	eligible := make([]core.Feature, len(idx))
	for j, i := range idx {
		eligible[j] = job.Features[i]
	}
	b, err := kernel.Pack(eligible, dim, copts.Norm)
	if err != nil {
		// Defensive: Eligible vetted every feature, so Pack cannot fail;
		// if it ever does, the per-feature path still produces a correct
		// answer (or the authoritative error).
		sp.End(err)
		return nil
	}
	out := make([]core.RadiusResult, len(idx))
	fallback, err := b.Compute(job.Perturbation.Orig, out)
	if err != nil {
		sp.End(err)
		return nil
	}
	solved := make([]bool, len(job.Features))
	for j, i := range idx {
		solved[i] = true
		radii[i] = out[j]
	}
	for _, j := range fallback {
		solved[idx[j]] = false
	}
	sp.Set("features", strconv.Itoa(len(idx)-len(fallback)))
	sp.Set("fallback", strconv.Itoa(len(fallback)))
	sp.End(nil)
	return solved
}
