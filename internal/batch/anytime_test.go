package batch

import (
	"context"
	"math"
	"testing"
	"time"

	"fepia/internal/core"
)

// convexJob is one system whose only feature needs the numeric convex
// solver — the workload where a deadline can actually expire mid-solve.
func convexJob(fp []byte) Job {
	return Job{
		Features: []core.Feature{{
			Name: "sphere",
			Impact: &core.FuncImpact{
				N:           2,
				F:           func(pi []float64) float64 { return pi[0]*pi[0] + pi[1]*pi[1] },
				Convex:      true,
				Fingerprint: fp,
			},
			Bounds: core.NoMin(25),
		}},
		Perturbation: core.Perturbation{Name: "π", Orig: []float64{1, 0}},
	}
}

// The anytime cache discipline: a partial answer is never cached; an
// exact answer is; and a warm hit is served exact even when the request
// deadline has already expired.
func TestAnytimeCacheDiscipline(t *testing.T) {
	c := NewCache(16)
	job := convexJob([]byte("anytime-sphere"))
	opts := Options{Cache: c, Anytime: true}

	// 1. Expired deadline, cold cache → a certified partial, not cached.
	expired, cancel := context.WithDeadline(context.Background(), time.Unix(0, 1))
	defer cancel()
	a, err := AnalyzeOneContext(expired, job, opts)
	if err != nil {
		t.Fatal(err)
	}
	if a.Radii[0].Kind != core.LowerBound {
		t.Fatalf("cold expired analysis = %+v, want a LowerBound partial", a.Radii[0])
	}
	if got := c.Stats().Size; got != 0 {
		t.Fatalf("partial result was cached (size %d)", got)
	}

	// 2. Live deadline → exact answer, inserted into the cache.
	b, err := AnalyzeOneContext(context.Background(), job, opts)
	if err != nil {
		t.Fatal(err)
	}
	if b.Radii[0].Kind == core.LowerBound {
		t.Fatalf("unhurried analysis degraded to a bound: %+v", b.Radii[0])
	}
	if got := c.Stats().Size; got != 1 {
		t.Fatalf("exact result not cached (size %d)", got)
	}

	// 3. Expired deadline, warm cache → the exact cached answer, served
	// as a hit.
	hitsBefore := c.Stats().Hits
	d, err := AnalyzeOneContext(expired, job, opts)
	if err != nil {
		t.Fatal(err)
	}
	if d.Radii[0].Kind == core.LowerBound {
		t.Fatalf("warm expired analysis degraded to a bound: %+v", d.Radii[0])
	}
	if math.Float64bits(d.Radii[0].Radius) != math.Float64bits(b.Radii[0].Radius) {
		t.Fatalf("warm radius %v != exact %v", d.Radii[0].Radius, b.Radii[0].Radius)
	}
	if got := c.Stats().Hits; got != hitsBefore+1 {
		t.Fatalf("warm anytime serve not counted as a hit (%d → %d)", hitsBefore, got)
	}
}

// Anytime mode with a healthy deadline must agree with the plain path
// bit-for-bit, so opting in costs nothing when the solver is fast enough.
func TestAnytimeMatchesPlainPath(t *testing.T) {
	job := convexJob([]byte("anytime-parity"))
	plain, err := AnalyzeOneContext(context.Background(), job, Options{})
	if err != nil {
		t.Fatal(err)
	}
	anytime, err := AnalyzeOneContext(context.Background(), job, Options{Anytime: true})
	if err != nil {
		t.Fatal(err)
	}
	if math.Float64bits(plain.Radii[0].Radius) != math.Float64bits(anytime.Radii[0].Radius) {
		t.Fatalf("anytime radius %v != plain %v", anytime.Radii[0].Radius, plain.Radii[0].Radius)
	}
	if plain.Radii[0].Kind != anytime.Radii[0].Kind || plain.Radii[0].Method != anytime.Radii[0].Method {
		t.Fatalf("kind/method diverge: %+v vs %+v", plain.Radii[0], anytime.Radii[0])
	}
}

// Plain cancellation (no deadline) still fails an anytime request: the
// partial-answer contract covers deadlines only.
func TestAnytimeCancelledStillFails(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	_, err := AnalyzeOneContext(ctx, convexJob(nil), Options{Anytime: true})
	if err == nil {
		t.Fatal("cancelled anytime analysis returned a result")
	}
}
