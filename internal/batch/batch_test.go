package batch

import (
	"context"
	"errors"
	"fmt"
	"reflect"
	"sync"
	"testing"

	"fepia/internal/core"
	"fepia/internal/etcgen"
	"fepia/internal/hcs"
	"fepia/internal/indalloc"
	"fepia/internal/stats"
)

// paperJobs builds n analysis jobs from random §3.1 mappings of one
// paper-distribution instance.
func paperJobs(t testing.TB, n int, seed int64) []Job {
	t.Helper()
	etc, err := etcgen.Generate(stats.NewRNG(seed), etcgen.PaperParams())
	if err != nil {
		t.Fatal(err)
	}
	inst, err := hcs.NewInstance(etc)
	if err != nil {
		t.Fatal(err)
	}
	rng := stats.NewRNG(seed + 1)
	jobs := make([]Job, n)
	for i := range jobs {
		m := hcs.RandomMapping(rng, inst)
		features, p, err := indalloc.Features(m, 1.2)
		if err != nil {
			t.Fatal(err)
		}
		jobs[i] = Job{Features: features, Perturbation: p}
	}
	return jobs
}

// TestAnalyzeMatchesSequential is the engine's core contract: for every
// worker count and cache configuration, batch results must be
// byte-identical to core.Analyze run job by job.
func TestAnalyzeMatchesSequential(t *testing.T) {
	jobs := paperJobs(t, 40, 7)
	want := make([]core.Analysis, len(jobs))
	for i, j := range jobs {
		a, err := core.Analyze(j.Features, j.Perturbation, core.Options{})
		if err != nil {
			t.Fatal(err)
		}
		want[i] = a
	}
	for _, tc := range []struct {
		name string
		opts Options
	}{
		{"sequential", Options{Workers: 1}},
		{"parallel", Options{Workers: 8}},
		{"parallel-cached", Options{Workers: 8, Cache: NewCache(0)}},
		{"parallel-cached-1shard", Options{Workers: 8, Cache: NewCacheSharded(0, 1)}},
		{"parallel-cached-4shards", Options{Workers: 8, Cache: NewCacheSharded(0, 4)}},
		{"parallel-cached-64shards", Options{Workers: 8, Cache: NewCacheSharded(0, 64)}},
		{"parallel-cached-shared", Options{Workers: 8, Cache: NewCacheSharded(0, 4), ShareBoundaries: true}},
		{"default-workers", Options{}},
	} {
		t.Run(tc.name, func(t *testing.T) {
			got, err := Analyze(context.Background(), jobs, tc.opts)
			if err != nil {
				t.Fatal(err)
			}
			if !reflect.DeepEqual(got, want) {
				t.Fatalf("batch results differ from sequential core.Analyze")
			}
			// A second pass over the same jobs must also be identical —
			// this is the warm-cache path when a cache is configured.
			again, err := Analyze(context.Background(), jobs, tc.opts)
			if err != nil {
				t.Fatal(err)
			}
			if !reflect.DeepEqual(again, want) {
				t.Fatalf("second (warm) batch pass differs from sequential results")
			}
		})
	}
}

func TestAnalyzeEmptyAndInvalid(t *testing.T) {
	if out, err := Analyze(context.Background(), nil, Options{}); err != nil || len(out) != 0 {
		t.Fatalf("empty batch: out=%v err=%v", out, err)
	}
	// An empty feature set must fail exactly like core.Analyze.
	_, err := Analyze(context.Background(), []Job{{Perturbation: core.Perturbation{Name: "π", Orig: []float64{1}}}}, Options{})
	if err == nil {
		t.Fatal("empty feature set should fail")
	}
}

func TestAnalyzeCancellation(t *testing.T) {
	jobs := paperJobs(t, 16, 11)
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	if _, err := Analyze(ctx, jobs, Options{Workers: 4}); !errors.Is(err, context.Canceled) {
		t.Fatalf("err = %v, want context.Canceled", err)
	}
}

func TestForEachVisitsEveryIndexOnce(t *testing.T) {
	const n = 257
	counts := make([]int32, n)
	var mu sync.Mutex
	err := ForEach(context.Background(), n, 7, func(i int) error {
		mu.Lock()
		counts[i]++
		mu.Unlock()
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
	for i, c := range counts {
		if c != 1 {
			t.Fatalf("index %d visited %d times", i, c)
		}
	}
}

func TestForEachPropagatesFirstError(t *testing.T) {
	boom := fmt.Errorf("boom")
	err := ForEach(context.Background(), 100, 4, func(i int) error {
		if i == 17 {
			return boom
		}
		return nil
	})
	if !errors.Is(err, boom) {
		t.Fatalf("err = %v, want boom", err)
	}
	if err := ForEach(context.Background(), 0, 4, func(int) error { return boom }); err != nil {
		t.Fatalf("n=0 should be a no-op, got %v", err)
	}
}

// TestAnalyzeBatchRaceHammer drives one shared engine + cache from many
// goroutines with a mix of identical and distinct inputs. Run under the
// race detector by the tier-2 target (go test -race ./internal/batch/...).
func TestAnalyzeBatchRaceHammer(t *testing.T) {
	shared := paperJobs(t, 6, 23) // identical across goroutines → cache contention
	distinct := make([][]Job, 16) // per-goroutine inputs
	for g := range distinct {
		distinct[g] = paperJobs(t, 4, int64(100+g))
	}
	cache := NewCache(64) // small: forces concurrent eviction too
	var wg sync.WaitGroup
	errs := make(chan error, 16)
	for g := 0; g < 16; g++ {
		g := g
		wg.Add(1)
		go func() {
			defer wg.Done()
			for round := 0; round < 3; round++ {
				for _, jobs := range [][]Job{shared, distinct[g]} {
					if _, err := Analyze(context.Background(), jobs, Options{Workers: 2, Cache: cache}); err != nil {
						errs <- err
						return
					}
				}
			}
		}()
	}
	wg.Wait()
	close(errs)
	for err := range errs {
		t.Fatal(err)
	}
	if st := cache.Stats(); st.Hits == 0 {
		t.Fatalf("expected cache hits under contention, got %+v", st)
	}
}
