package hcs

import (
	"encoding/json"
	"math"
	"testing"
	"testing/quick"

	"fepia/internal/etcgen"
	"fepia/internal/stats"
)

// fixture: 4 applications on 2 machines with easy numbers.
func testInstance(t *testing.T) *Instance {
	t.Helper()
	inst, err := NewInstance(etcgen.Matrix{
		{1, 10},
		{2, 20},
		{3, 30},
		{4, 40},
	})
	if err != nil {
		t.Fatal(err)
	}
	return inst
}

func TestNewInstanceValidates(t *testing.T) {
	if _, err := NewInstance(etcgen.Matrix{{1}, {-1}}); err == nil {
		t.Errorf("invalid ETC accepted")
	}
	inst := testInstance(t)
	if inst.Applications() != 4 || inst.Machines() != 2 {
		t.Errorf("dims %d,%d", inst.Applications(), inst.Machines())
	}
	if inst.ETC(2, 1) != 30 {
		t.Errorf("ETC(2,1)=%v", inst.ETC(2, 1))
	}
	if got := inst.ETCRow(1); got[0] != 2 || got[1] != 20 {
		t.Errorf("ETCRow = %v", got)
	}
}

func TestNewInstanceClones(t *testing.T) {
	m := etcgen.Matrix{{1, 2}}
	inst, err := NewInstance(m)
	if err != nil {
		t.Fatal(err)
	}
	m[0][0] = 99
	if inst.ETC(0, 0) != 1 {
		t.Errorf("instance shares caller's matrix storage")
	}
}

func TestNewMappingValidation(t *testing.T) {
	inst := testInstance(t)
	if _, err := NewMapping(inst, []int{0, 0, 0}); err == nil {
		t.Errorf("wrong-length assignment accepted")
	}
	if _, err := NewMapping(inst, []int{0, 0, 0, 2}); err == nil {
		t.Errorf("out-of-range machine accepted")
	}
	if _, err := NewMapping(inst, []int{0, 0, 0, -1}); err == nil {
		t.Errorf("negative machine accepted")
	}
}

func TestDerivedQuantities(t *testing.T) {
	inst := testInstance(t)
	// a0,a1 → m0 (1+2 = 3); a2,a3 → m1 (30+40 = 70).
	m, err := NewMapping(inst, []int{0, 0, 1, 1})
	if err != nil {
		t.Fatal(err)
	}
	c := m.ETCVector()
	want := []float64{1, 2, 30, 40}
	for i := range want {
		if c[i] != want[i] {
			t.Fatalf("ETCVector = %v", c)
		}
	}
	f := m.PredictedFinishingTimes()
	if f[0] != 3 || f[1] != 70 {
		t.Fatalf("finishing times = %v", f)
	}
	if ms := m.PredictedMakespan(); ms != 70 {
		t.Errorf("makespan = %v", ms)
	}
	if j := m.CriticalMachine(c); j != 1 {
		t.Errorf("critical machine = %d", j)
	}
	if lbi := m.LoadBalanceIndex(); !almost(lbi, 3.0/70.0) {
		t.Errorf("load balance index = %v", lbi)
	}
	if n := m.Count(0); n != 2 {
		t.Errorf("Count(0) = %d", n)
	}
	if got := m.OnMachine(1); len(got) != 2 || got[0] != 2 || got[1] != 3 {
		t.Errorf("OnMachine(1) = %v", got)
	}
	if m.MaxCount() != 2 {
		t.Errorf("MaxCount = %d", m.MaxCount())
	}
}

func TestEmptyMachineBehaviour(t *testing.T) {
	inst := testInstance(t)
	m, _ := NewMapping(inst, []int{0, 0, 0, 0})
	f := m.PredictedFinishingTimes()
	if f[1] != 0 {
		t.Errorf("empty machine finishing time = %v", f[1])
	}
	if lbi := m.LoadBalanceIndex(); lbi != 0 {
		t.Errorf("LBI with idle machine = %v", lbi)
	}
}

func TestFinishingTimesPanicsOnLength(t *testing.T) {
	inst := testInstance(t)
	m, _ := NewMapping(inst, []int{0, 1, 0, 1})
	defer func() {
		if recover() == nil {
			t.Fatalf("length mismatch accepted")
		}
	}()
	m.FinishingTimes([]float64{1, 2})
}

func TestRandomMappingValidAndDeterministic(t *testing.T) {
	etc, _ := etcgen.Generate(stats.NewRNG(1), etcgen.PaperParams())
	inst, _ := NewInstance(etc)
	a := RandomMapping(stats.NewRNG(7), inst)
	b := RandomMapping(stats.NewRNG(7), inst)
	for i := range a.Assign {
		if a.Assign[i] != b.Assign[i] {
			t.Fatalf("same seed produced different mappings")
		}
		if a.Assign[i] < 0 || a.Assign[i] >= inst.Machines() {
			t.Fatalf("invalid assignment %d", a.Assign[i])
		}
	}
}

func TestCloneIndependence(t *testing.T) {
	inst := testInstance(t)
	m, _ := NewMapping(inst, []int{0, 1, 0, 1})
	c := m.Clone()
	c.Assign[0] = 1
	if m.Assign[0] != 0 {
		t.Errorf("Clone shares assignment storage")
	}
	if c.Instance() != m.Instance() {
		t.Errorf("Clone should share the instance")
	}
}

func TestJSONRoundTrip(t *testing.T) {
	inst := testInstance(t)
	m, _ := NewMapping(inst, []int{0, 1, 0, 1})
	data, err := json.Marshal(m)
	if err != nil {
		t.Fatal(err)
	}
	var back Mapping
	if err := json.Unmarshal(data, &back); err != nil {
		t.Fatal(err)
	}
	if back.PredictedMakespan() != m.PredictedMakespan() {
		t.Errorf("round trip changed makespan")
	}
	if err := json.Unmarshal([]byte(`{"etc":[[1]],"assign":[5]}`), &back); err == nil {
		t.Errorf("invalid JSON mapping accepted")
	}
	if err := json.Unmarshal([]byte(`{`), &back); err == nil {
		t.Errorf("malformed JSON accepted")
	}
}

// Property: the makespan is an upper bound on every finishing time, and is
// attained; LBI is within [0,1]; sum of Count over machines equals |A|.
func TestQuickMappingInvariants(t *testing.T) {
	etc, _ := etcgen.Generate(stats.NewRNG(3), etcgen.PaperParams())
	inst, _ := NewInstance(etc)
	rng := stats.NewRNG(4)
	f := func(struct{}) bool {
		m := RandomMapping(rng, inst)
		ft := m.PredictedFinishingTimes()
		ms := m.PredictedMakespan()
		attained := false
		for _, x := range ft {
			if x > ms {
				return false
			}
			if x == ms {
				attained = true
			}
		}
		if !attained {
			return false
		}
		lbi := m.LoadBalanceIndex()
		if lbi < 0 || lbi > 1 || math.IsNaN(lbi) {
			return false
		}
		total := 0
		for j := 0; j < inst.Machines(); j++ {
			total += m.Count(j)
		}
		return total == inst.Applications()
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Error(err)
	}
}

func almost(a, b float64) bool { return math.Abs(a-b) < 1e-12 }
