// Package hcs models the heterogeneous computing system of §3.1 of the
// paper: a set A of independent applications mapped onto a set M of
// machines, each machine executing its assigned applications one at a time.
// The package provides the Mapping type with the derived quantities the
// experiments need — per-machine finishing times F_j, makespan, and the
// load-balance index of §4.2 — plus random-mapping generation for the
// 1000-mapping experiment behind Figure 3.
package hcs

import (
	"encoding/json"
	"fmt"

	"fepia/internal/etcgen"
	"fepia/internal/stats"
	"fepia/internal/vecmath"
)

// Instance is an immutable problem instance: the ETC matrix C_ij for |A|
// applications on |M| machines.
type Instance struct {
	etc etcgen.Matrix
}

// NewInstance validates the ETC matrix and wraps it. The matrix is cloned so
// later mutation by the caller cannot corrupt the instance.
func NewInstance(etc etcgen.Matrix) (*Instance, error) {
	if err := etc.Validate(); err != nil {
		return nil, err
	}
	return &Instance{etc: etc.Clone()}, nil
}

// Applications returns |A|.
func (in *Instance) Applications() int { return in.etc.Tasks() }

// Machines returns |M|.
func (in *Instance) Machines() int { return in.etc.Machines() }

// ETC returns C_ij, the estimated time to compute application i on
// machine j.
func (in *Instance) ETC(i, j int) float64 { return in.etc[i][j] }

// ETCRow returns the (read-only) row of estimated times for application i
// across all machines. Callers must not modify it.
func (in *Instance) ETCRow(i int) []float64 { return in.etc[i] }

// Mapping assigns each application to one machine: Assign[i] = j means
// application a_i runs on machine m_j. Within a machine the execution order
// is irrelevant to every quantity in this package (finishing time is a sum).
type Mapping struct {
	// Assign[i] is the machine index for application i.
	Assign []int
	inst   *Instance
}

// NewMapping validates the assignment vector against the instance.
func NewMapping(inst *Instance, assign []int) (*Mapping, error) {
	if len(assign) != inst.Applications() {
		return nil, fmt.Errorf("hcs: assignment length %d, want %d applications", len(assign), inst.Applications())
	}
	for i, j := range assign {
		if j < 0 || j >= inst.Machines() {
			return nil, fmt.Errorf("hcs: application %d assigned to machine %d, want [0,%d)", i, j, inst.Machines())
		}
	}
	return &Mapping{Assign: append([]int(nil), assign...), inst: inst}, nil
}

// RandomMapping draws a uniformly random machine for every application —
// exactly the mapping generator of §4.1 ("assigning a randomly chosen
// machine to each application").
func RandomMapping(rng *stats.RNG, inst *Instance) *Mapping {
	assign := make([]int, inst.Applications())
	for i := range assign {
		assign[i] = rng.Intn(inst.Machines())
	}
	m, err := NewMapping(inst, assign)
	if err != nil {
		panic(err) // unreachable: generated assignment is valid by construction
	}
	return m
}

// Instance returns the problem instance the mapping refers to.
func (m *Mapping) Instance() *Instance { return m.inst }

// OnMachine returns the indices of the applications assigned to machine j,
// in application order.
func (m *Mapping) OnMachine(j int) []int {
	var out []int
	for i, mj := range m.Assign {
		if mj == j {
			out = append(out, i)
		}
	}
	return out
}

// Count returns n(m_j), the number of applications mapped to machine j.
func (m *Mapping) Count(j int) int {
	n := 0
	for _, mj := range m.Assign {
		if mj == j {
			n++
		}
	}
	return n
}

// ETCVector returns C^orig: the estimated execution time of each application
// on the machine it is mapped to (Eq. 4 operates on this vector).
func (m *Mapping) ETCVector() []float64 {
	c := make([]float64, len(m.Assign))
	for i, j := range m.Assign {
		c[i] = m.inst.ETC(i, j)
	}
	return c
}

// FinishingTimes returns F_j for every machine under the execution-time
// vector c (len |A|). Passing the result of ETCVector gives the predicted
// finishing times; passing perturbed times gives actual finishing times.
func (m *Mapping) FinishingTimes(c []float64) []float64 {
	if len(c) != len(m.Assign) {
		panic(fmt.Sprintf("hcs: execution-time vector length %d, want %d", len(c), len(m.Assign)))
	}
	sums := make([]vecmath.KahanSum, m.inst.Machines())
	for i, j := range m.Assign {
		sums[j].Add(c[i])
	}
	f := make([]float64, len(sums))
	for j := range sums {
		f[j] = sums[j].Sum()
	}
	return f
}

// PredictedFinishingTimes returns F_j(C^orig) for every machine.
func (m *Mapping) PredictedFinishingTimes() []float64 {
	return m.FinishingTimes(m.ETCVector())
}

// Makespan returns the completion time of the entire application set under
// execution-time vector c: max_j F_j(c).
func (m *Mapping) Makespan(c []float64) float64 {
	f := m.FinishingTimes(c)
	max, _ := vecmath.Max(f)
	return max
}

// PredictedMakespan returns M^orig, the makespan under the estimated times.
func (m *Mapping) PredictedMakespan() float64 { return m.Makespan(m.ETCVector()) }

// CriticalMachine returns the index of the machine that determines the
// makespan under c (ties broken by the lowest index) — m(C) in §4.2.
func (m *Mapping) CriticalMachine(c []float64) int {
	f := m.FinishingTimes(c)
	_, j := vecmath.Max(f)
	return j
}

// LoadBalanceIndex returns the §4.2 metric: the finishing time of the
// machine that finishes first divided by the makespan. 1 is perfectly
// balanced. Machines with no applications finish at time 0, making the
// index 0.
func (m *Mapping) LoadBalanceIndex() float64 {
	f := m.PredictedFinishingTimes()
	min, _ := vecmath.Min(f)
	max, _ := vecmath.Max(f)
	if max == 0 {
		return 0
	}
	return min / max
}

// MaxCount returns max_j n(m_j), the largest number of applications on any
// machine — the x of the cluster sets S₁(x) in §4.2.
func (m *Mapping) MaxCount() int {
	counts := make([]int, m.inst.Machines())
	for _, j := range m.Assign {
		counts[j]++
	}
	best := 0
	for _, n := range counts {
		if n > best {
			best = n
		}
	}
	return best
}

// Clone returns a mapping with an independent assignment vector sharing the
// same instance.
func (m *Mapping) Clone() *Mapping {
	return &Mapping{Assign: append([]int(nil), m.Assign...), inst: m.inst}
}

// mappingJSON is the serialisation schema for a mapping plus its instance.
type mappingJSON struct {
	ETC    [][]float64 `json:"etc"`
	Assign []int       `json:"assign"`
}

// MarshalJSON encodes the mapping together with its ETC matrix so a file is
// self-contained.
func (m *Mapping) MarshalJSON() ([]byte, error) {
	return json.Marshal(mappingJSON{ETC: m.inst.etc, Assign: m.Assign})
}

// UnmarshalJSON decodes a mapping and rebuilds its instance, validating
// both.
func (m *Mapping) UnmarshalJSON(data []byte) error {
	var raw mappingJSON
	if err := json.Unmarshal(data, &raw); err != nil {
		return err
	}
	inst, err := NewInstance(raw.ETC)
	if err != nil {
		return err
	}
	mm, err := NewMapping(inst, raw.Assign)
	if err != nil {
		return err
	}
	*m = *mm
	return nil
}
