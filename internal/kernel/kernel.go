package kernel

import (
	"fmt"
	"math"
	"sync"

	"fepia/internal/core"
	"fepia/internal/vecmath"
)

// SupportedNorm reports whether the kernel has an analytic dual for the
// norm: ℓ₂ (nil selects it, matching core.Options), ℓ₁, ℓ∞, and
// weighted-ℓ₂. Any other norm keeps the scalar path, which rejects it
// with core.ErrNormUnsupported for linear impacts it cannot handle.
func SupportedNorm(n vecmath.Norm) bool {
	switch n.(type) {
	case nil, vecmath.L2, vecmath.L1, vecmath.LInf, *vecmath.WeightedL2:
		return true
	default:
		return false
	}
}

// Eligible reports whether one feature can be routed through the kernel
// for a perturbation of the given dimension: a valid linear impact of
// matching dimension under a supported norm (a weighted norm must also
// match the dimension — a mismatch must surface the scalar path's
// SolveError, not a kernel guess). Ineligible features keep the exact
// per-feature path, so routing never changes results or error text.
func Eligible(f core.Feature, dim int, norm vecmath.Norm) bool {
	lin, ok := f.Impact.(*core.LinearImpact)
	if !ok || lin == nil {
		return false
	}
	if len(lin.Coeffs) != dim {
		return false
	}
	if f.Validate() != nil {
		return false
	}
	if !SupportedNorm(norm) {
		return false
	}
	if w, ok := norm.(*vecmath.WeightedL2); ok && len(w.W) != dim {
		return false
	}
	return true
}

// Batch is the packed struct-of-arrays form of n linear features: flat
// per-feature blocks built once per mapping (Pack) and swept per
// operating point (Compute). The coefficient block plus the offset,
// bound, dual-norm, and squared-norm arrays fully determine every radius
// except the dot product a_k·π^orig, which is the only per-point work.
//
// A Batch is immutable after Pack: Compute draws its dot-product
// scratch from an internal pool, so one Batch may be shared by any
// number of concurrent Compute callers (and Delta sessions — each
// session is single-goroutine, but sessions on one Batch are
// independent). The batch engine builds one Batch per job; sweep
// drivers reuse one Batch across operating points.
type Batch struct {
	n, dim int
	// coeffs is the flat row-major coefficient block: feature k's
	// coefficients occupy coeffs[k*dim : (k+1)*dim].
	coeffs []float64
	// offsets, minB, maxB are the affine constants and the tolerable
	// bounds ⟨β^min, β^max⟩, one entry per feature.
	offsets, minB, maxB []float64
	// dual is ‖a_k‖_* under the pack norm (core.DualNorm), hoisted out of
	// the per-point sweep; aa is the compensated ‖a_k‖₂² the boundary
	// projection divides by.
	dual, aa []float64
	// names re-stamps results with the caller's feature names.
	names []string
	// dotPool recycles the per-Compute dot-product scratch (one n-length
	// slice per in-flight sweep) so a shared Batch never serialises
	// concurrent Compute callers on a single scratch array. The pool
	// holds *[]float64 so Get/Put never box a slice header.
	dotPool sync.Pool
}

// getDots leases an n-length dot scratch from the pool.
func (b *Batch) getDots() *[]float64 {
	if p, ok := b.dotPool.Get().(*[]float64); ok {
		return p
	}
	s := make([]float64, b.n)
	return &s
}

// Len returns the packed feature count.
func (b *Batch) Len() int { return b.n }

// Dim returns the perturbation dimension the pack was built for.
func (b *Batch) Dim() int { return b.dim }

// Pack builds the SoA form of the features for perturbations of the
// given dimension under the given norm (nil selects ℓ₂, matching
// core.Options.WithDefaults). Every feature must satisfy Eligible; Pack
// errors on any that does not, because silently keeping it would change
// which path computes its radius. The pack is reusable across operating
// points: nothing in it depends on π^orig.
func Pack(features []core.Feature, dim int, norm vecmath.Norm) (*Batch, error) {
	if dim <= 0 {
		return nil, fmt.Errorf("kernel: non-positive perturbation dimension %d", dim)
	}
	if norm == nil {
		norm = vecmath.L2{}
	}
	n := len(features)
	b := &Batch{
		n: n, dim: dim,
		coeffs:  make([]float64, n*dim),
		offsets: make([]float64, n),
		minB:    make([]float64, n),
		maxB:    make([]float64, n),
		dual:    make([]float64, n),
		aa:      make([]float64, n),
		names:   make([]string, n),
	}
	for k, f := range features {
		if !Eligible(f, dim, norm) {
			return nil, fmt.Errorf("kernel: feature %q is not kernel-eligible", f.Name)
		}
		lin := f.Impact.(*core.LinearImpact)
		copy(b.coeffs[k*dim:(k+1)*dim], lin.Coeffs)
		b.offsets[k] = lin.Offset
		b.minB[k] = f.Bounds.Min
		b.maxB[k] = f.Bounds.Max
		b.names[k] = f.Name
		// The dual-norm factor and the squared ℓ₂ norm are computed by the
		// same code the scalar path runs (core.DualNorm, vecmath.Dot), so
		// the per-point sweep starts from bit-identical constants.
		d, err := core.DualNorm(lin.Coeffs, norm)
		if err != nil {
			return nil, fmt.Errorf("kernel: feature %q: %w", f.Name, err)
		}
		b.dual[k] = d
		b.aa[k] = vecmath.Dot(lin.Coeffs, lin.Coeffs)
	}
	return b, nil
}

// Compute evaluates every packed feature's robustness radius at the
// operating point and writes out[k] for feature k. Results are
// bit-identical to core.ComputeRadius on the same inputs. The rare
// features whose impact evaluates to NaN at the operating point (an
// overflowing dot product) are NOT written; their indices are returned
// in fallback so the caller can route them through the scalar path,
// which owns the error wording for that case. Boundary witnesses are
// carved from one backing allocation per sweep (full-capacity slices, so
// appends never alias a neighbour); callers that let results escape to
// mutating consumers get the same value semantics as the scalar path.
//
// Compute is safe for concurrent use on one shared Batch: the dot
// scratch comes from a pool and the witness block is a fresh per-call
// allocation, because witnesses escape into the caller's results (and
// from there into the radius cache). Sweep drivers that keep results
// inside one session — the delta path — reuse a session-owned block
// instead and run allocation-free (see Delta).
func (b *Batch) Compute(orig []float64, out []core.RadiusResult) (fallback []int, err error) {
	if len(orig) != b.dim {
		return nil, fmt.Errorf("kernel: operating-point dimension %d != pack dimension %d", len(orig), b.dim)
	}
	if len(out) < b.n {
		return nil, fmt.Errorf("kernel: result slice length %d < feature count %d", len(out), b.n)
	}
	dp := b.getDots()
	dots := *dp
	b.dotSweep(orig, dots)
	// One backing block for every boundary witness of the sweep: the
	// per-feature make([]float64, dim) of the scalar path amortises to
	// one allocation per batch. Witness slots are carved densely and
	// full-capacity, so appending to one witness never aliases another.
	block := make([]float64, 0, b.n*b.dim)
	used := 0
	for k := 0; k < b.n; k++ {
		x := block[used : used+b.dim : used+b.dim]
		if !b.result(k, dots[k], orig, x, &out[k]) {
			fallback = append(fallback, k)
			continue
		}
		if out[k].Boundary != nil {
			used += b.dim
		}
	}
	b.dotPool.Put(dp)
	return fallback, nil
}

// dotSweep fills dots[k] = a_k·π^orig for every feature, four features
// per iteration. Each feature owns an independent Kahan–Babuška
// accumulator pair held in registers, so the per-feature accumulation
// order — and therefore every rounding and compensation step — is
// exactly vecmath.Dot's, while the four independent carry chains let the
// CPU overlap what the scalar path serialises.
func (b *Batch) dotSweep(orig []float64, dots []float64) {
	dim := b.dim
	k := 0
	for ; k+4 <= b.n; k += 4 {
		r0 := b.coeffs[(k+0)*dim : (k+1)*dim]
		r1 := b.coeffs[(k+1)*dim : (k+2)*dim]
		r2 := b.coeffs[(k+2)*dim : (k+3)*dim]
		r3 := b.coeffs[(k+3)*dim : (k+4)*dim]
		var s0, c0, s1, c1, s2, c2, s3, c3 float64
		for i, x := range orig {
			s0, c0 = kahanAdd(s0, c0, r0[i]*x)
			s1, c1 = kahanAdd(s1, c1, r1[i]*x)
			s2, c2 = kahanAdd(s2, c2, r2[i]*x)
			s3, c3 = kahanAdd(s3, c3, r3[i]*x)
		}
		dots[k+0] = s0 + c0
		dots[k+1] = s1 + c1
		dots[k+2] = s2 + c2
		dots[k+3] = s3 + c3
	}
	for ; k < b.n; k++ {
		dots[k] = b.dotOne(k, orig)
	}
}

// dotOne is one feature's compensated dot product a_k·π^orig, term for
// term the arithmetic (and accumulation order) of dotSweep's per-feature
// chain — the delta path re-sweeps individual affected features through
// it so a partial update can never diverge bitwise from a full sweep.
func (b *Batch) dotOne(k int, orig []float64) float64 {
	row := b.coeffs[k*b.dim : (k+1)*b.dim]
	var s, c float64
	for i, x := range orig {
		s, c = kahanAdd(s, c, row[i]*x)
	}
	return s + c
}

// kahanAdd is one Kahan–Babuška (Neumaier) accumulation step, term for
// term the arithmetic of vecmath.KahanSum.Add, in a form the compiler
// inlines with the state in registers.
func kahanAdd(s, c, x float64) (float64, float64) {
	t := s + x
	if math.Abs(s) >= math.Abs(x) {
		c += (s - t) + x
	} else {
		c += (x - t) + s
	}
	return t, c
}

// result assembles feature k's RadiusResult from the precomputed pack
// constants and the swept dot product, replaying core.ComputeRadius's
// decision sequence exactly: NaN check, already-violated check, then the
// β^max side followed by the β^min side with a strictly-smaller
// comparison (so ties keep the β^max witness, like the scalar loop). It
// reports false — compute nothing — for the NaN case, whose error text
// belongs to the scalar path. A boundary witness, when the feature has
// one, is written into x (a dim-length, full-capacity slot the caller
// carves from its backing block); out.Boundary is x or nil, so the
// caller can tell whether the slot was consumed.
func (b *Batch) result(k int, dot float64, orig, x []float64, out *core.RadiusResult) bool {
	v0 := dot + b.offsets[k]
	if math.IsNaN(v0) {
		return false
	}
	if !(v0 >= b.minB[k] && v0 <= b.maxB[k]) {
		// Already violated at the operating point: radius zero, the
		// operating point itself is the witness.
		copy(x, orig)
		*out = core.RadiusResult{
			Feature:  b.names[k],
			Radius:   0,
			Boundary: x,
			Kind:     core.AlreadyViolated,
			Method:   core.MethodNone,
		}
		return true
	}

	bestR := math.Inf(1)
	bestKind := core.Unreachable
	bestBeta := 0.0
	found := false
	dual := b.dual[k]
	for side := 0; side < 2; side++ {
		var beta float64
		var kind core.BoundKind
		if side == 0 {
			beta, kind = b.maxB[k], core.AtMax
		} else {
			beta, kind = b.minB[k], core.AtMin
		}
		if math.IsInf(beta, 0) {
			continue // one-sided requirement
		}
		residual := beta - v0
		var r float64
		if dual == 0 {
			// Constant impact: on the boundary exactly (distance zero) or
			// unreachable from everywhere.
			if residual != 0 {
				continue
			}
			r = 0
		} else {
			r = math.Abs(residual) / dual
		}
		if r < bestR {
			bestR, bestKind, bestBeta, found = r, kind, beta, true
		}
	}
	if !found {
		*out = core.RadiusResult{Feature: b.names[k], Radius: math.Inf(1), Kind: core.Unreachable, Method: core.MethodNone}
		return true
	}

	if dual == 0 {
		// residual == 0 on the winning side: the operating point already
		// sits on the boundary.
		copy(x, orig)
	} else {
		// The ℓ₂ projection witness, computed exactly as
		// vecmath.Hyperplane.Project: t = (C − a·π)/‖a‖₂² with C = β − b.
		t := ((bestBeta - b.offsets[k]) - dot) / b.aa[k]
		row := b.coeffs[k*b.dim : (k+1)*b.dim]
		for i, o := range orig {
			x[i] = o + t*row[i]
		}
	}
	*out = core.RadiusResult{Feature: b.names[k], Radius: bestR, Boundary: x, Kind: bestKind, Method: core.MethodHyperplane}
	return true
}
