package kernel

import (
	"fmt"
	"math"

	"fepia/internal/core"
)

// Per-feature witness/state modes of a Delta session. The mode drives
// what an incremental step must do to keep a feature's RadiusResult
// byte-identical to a cold Compute at the new operating point.
const (
	// dmFallback: the impact evaluated to NaN at the operating point.
	// The sweep wrote nothing; the caller routes this feature through
	// the scalar path, which owns the error wording.
	dmFallback uint8 = iota
	// dmNoWitness: a result with no boundary witness (Unreachable).
	dmNoWitness
	// dmCopy: the witness is a copy of the operating point
	// (AlreadyViolated, or a constant impact sitting on its boundary).
	dmCopy
	// dmProj: the witness is the hyperplane projection π^orig + t·a.
	dmProj
)

// Delta is the pack's incremental re-analysis session: the state a
// sweep must remember so that, when only some coordinates of π^orig
// move, it can update the affected radii — and ONLY those — with
// results that stay byte-identical to a cold Compute at the new point.
//
// Why a session and not a stateless Batch method: the dirty-set rule
// below keeps unaffected features' dot products bitwise unchanged, but
// their boundary witnesses still move — a projection witness has
// x[j] = π_j + t·a_j at every coordinate, dirty ones included. Patching
// x[j] exactly needs the projection parameter t of the sweep that
// produced the witness (its SIGN decides whether a ±0.0 term flips the
// sign of a zero coordinate), and t is not bit-recoverable from the
// radius alone (r = |residual|/‖a‖_* forgets the side's sign context).
// So the session records, per feature, the swept dot product, the
// witness mode, and t — a few words per feature, the price of exactness.
//
// Dirty-set rule (why unaffected features are free): the sweep's
// Kahan–Babuška accumulators start at +0.0 and, under round-to-nearest,
// a sum can only be −0.0 when BOTH operands are −0.0 — so neither the
// running sum nor the compensation term is ever −0.0. Adding a ±0.0
// term to such a pair changes no bits. A coordinate move at j therefore
// leaves feature k's dot product bit-identical whenever a_kj == 0 and
// both old and new π_j are finite (the term is ±0.0 before and after);
// it can affect the dot only when a_kj ≠ 0 or a non-finite π_j makes
// 0·π_j = NaN. Affected features are re-swept whole in dotSweep's exact
// per-feature order — a true O(|dirty|) adjustment of a compensated sum
// cannot preserve bit-identity, because the compensation path depends
// on the full accumulation history.
//
// A Delta is single-goroutine; the Batch it was built from stays
// shareable (sessions never write the pack). Steady-state Full and
// ComputeDelta calls allocate nothing: witnesses live in a fixed
// session-owned arena (feature k's slot is block[k·dim : (k+1)·dim]),
// and the returned changed/fallback slices are session-owned buffers
// overwritten by the next call.
type Delta struct {
	b *Batch
	// prev is the session's operating point of record: an owned copy of
	// the last swept point, compared bitwise against the caller's prev.
	prev []float64
	// dots[k] is a_k·prev — carried across steps for unaffected
	// features, fully re-swept (never adjusted) for affected ones.
	dots []float64
	// t[k] is the projection parameter of feature k's witness (dmProj).
	t    []float64
	mode []uint8
	// radBits/kinds snapshot each feature's answer for change detection
	// (radius compared bitwise, so 0 vs −0 and NaN payloads count).
	radBits []uint64
	kinds   []core.BoundKind
	// block is the witness arena: feature k's witness, when it has one,
	// always occupies block[k*dim : (k+1)*dim] (full-capacity slot).
	block []float64
	// dirtyMark/dirtyBuf dedupe and materialise the effective dirty set.
	dirtyMark []bool
	dirtyBuf  []int
	changed   []int
	fallback  []int
	valid     bool
}

// Delta opens an incremental re-analysis session on the pack.
func (b *Batch) Delta() *Delta {
	return &Delta{
		b:         b,
		prev:      make([]float64, b.dim),
		dots:      make([]float64, b.n),
		t:         make([]float64, b.n),
		mode:      make([]uint8, b.n),
		radBits:   make([]uint64, b.n),
		kinds:     make([]core.BoundKind, b.n),
		block:     make([]float64, b.n*b.dim),
		dirtyMark: make([]bool, b.dim),
		dirtyBuf:  make([]int, 0, b.dim),
		changed:   make([]int, 0, b.n),
		fallback:  make([]int, 0, b.n),
	}
}

// slot is feature k's fixed witness slot in the session arena.
func (d *Delta) slot(k int) []float64 {
	dim := d.b.dim
	return d.block[k*dim : (k+1)*dim : (k+1)*dim]
}

// Full performs a cold sweep at orig, (re)establishing the session
// state. Results are byte-identical to Batch.Compute on the same inputs;
// witnesses live in the session arena and stay valid until the next
// Full/ComputeDelta call. The returned fallback slice (session-owned,
// overwritten next call) lists the features whose impact evaluated to
// NaN, exactly like Compute.
func (d *Delta) Full(orig []float64, out []core.RadiusResult) (fallback []int, err error) {
	if err := d.check(orig, out); err != nil {
		return nil, err
	}
	d.full(orig, out)
	return d.fallback, nil
}

// full is the unvalidated cold sweep shared by Full and the resync path.
func (d *Delta) full(orig []float64, out []core.RadiusResult) {
	b := d.b
	copy(d.prev, orig)
	b.dotSweep(orig, d.dots)
	d.fallback = d.fallback[:0]
	for k := 0; k < b.n; k++ {
		d.sweepOne(k, orig, out)
		if d.mode[k] == dmFallback {
			d.fallback = append(d.fallback, k)
		}
	}
	d.valid = true
}

// sweepOne recomputes feature k's result at orig from its (already
// updated) dot product and records the session state the next
// incremental step needs.
func (d *Delta) sweepOne(k int, orig []float64, out []core.RadiusResult) {
	b := d.b
	dot := d.dots[k]
	if !b.result(k, dot, orig, d.slot(k), &out[k]) {
		d.mode[k] = dmFallback
		return
	}
	d.radBits[k] = math.Float64bits(out[k].Radius)
	d.kinds[k] = out[k].Kind
	switch {
	case out[k].Boundary == nil:
		d.mode[k] = dmNoWitness
	case out[k].Kind == core.AlreadyViolated || b.dual[k] == 0:
		d.mode[k] = dmCopy
	default:
		d.mode[k] = dmProj
		// Recompute the projection parameter exactly as result() did —
		// same expression, same inputs, same bits.
		beta := b.maxB[k]
		if out[k].Kind == core.AtMin {
			beta = b.minB[k]
		}
		d.t[k] = ((beta - b.offsets[k]) - dot) / b.aa[k]
	}
}

// ComputeDelta advances the session from prev to next, where dirty lists
// the coordinates that may have moved (nil means "derive it": every
// coordinate is compared). It fully populates out — affected features
// are re-swept, unaffected ones are reconstructed from session state
// with their witnesses patched in place — so out is byte-identical to a
// cold Compute at next, for every feature, every time.
//
// changed lists the features whose analytic answer moved: a dirty
// coordinate touched their dot product AND the radius bits, bound kind,
// or reachability differ from the previous point. Witness coordinates
// of unaffected features also track the operating point (x[j] follows
// π_j), but that is bookkeeping, not a change in the robustness answer,
// so those features are not reported. fallback is the full NaN-fallback
// set at next (not just the newly fallen), mirroring Compute's contract.
// Both slices are session-owned and overwritten by the next call.
//
// The caller's prev must be the session's last swept point. A bitwise
// mismatch (or a never-swept session) does not guess: the session
// resyncs with a cold sweep at next and reports every feature changed.
func (d *Delta) ComputeDelta(prev, next []float64, dirty []int, out []core.RadiusResult) (changed, fallback []int, err error) {
	if err := d.check(next, out); err != nil {
		return nil, nil, err
	}
	if len(prev) != d.b.dim {
		return nil, nil, fmt.Errorf("kernel: previous-point dimension %d != pack dimension %d", len(prev), d.b.dim)
	}
	if !d.valid || !sameBits(prev, d.prev) {
		d.full(next, out)
		d.changed = d.changed[:0]
		for k := 0; k < d.b.n; k++ {
			d.changed = append(d.changed, k)
		}
		return d.changed, d.fallback, nil
	}

	dirtyEff := d.effectiveDirty(next, dirty)
	d.changed = d.changed[:0]
	if len(dirtyEff) == 0 {
		// Nothing moved: out still must reflect the current point.
		d.reconstructAll(out)
		return d.changed, d.currentFallback(), nil
	}

	b := d.b
	for k := 0; k < b.n; k++ {
		if d.affected(k, dirtyEff, next) {
			wasMode, wasBits, wasKind := d.mode[k], d.radBits[k], d.kinds[k]
			d.dots[k] = b.dotOne(k, next)
			d.sweepOne(k, next, out)
			if d.mode[k] != wasMode || (d.mode[k] != dmFallback && (d.radBits[k] != wasBits || d.kinds[k] != wasKind)) {
				d.changed = append(d.changed, k)
			}
			continue
		}
		d.patch(k, next, dirtyEff, out)
	}
	copy(d.prev, next)
	for _, j := range dirtyEff {
		d.dirtyMark[j] = false
	}
	return d.changed, d.currentFallback(), nil
}

// effectiveDirty filters the caller's dirty set (or all coordinates when
// nil) down to those whose value actually changed bitwise, deduplicated
// via the session's mark array. The marks stay set for affected() and
// are cleared by the caller after the step.
func (d *Delta) effectiveDirty(next []float64, dirty []int) []int {
	d.dirtyBuf = d.dirtyBuf[:0]
	add := func(j int) {
		if j < 0 || j >= d.b.dim || d.dirtyMark[j] {
			return
		}
		if math.Float64bits(d.prev[j]) == math.Float64bits(next[j]) {
			return
		}
		d.dirtyMark[j] = true
		d.dirtyBuf = append(d.dirtyBuf, j)
	}
	if dirty == nil {
		for j := 0; j < d.b.dim; j++ {
			add(j)
		}
	} else {
		for _, j := range dirty {
			add(j)
		}
	}
	return d.dirtyBuf
}

// affected reports whether a dirty coordinate can touch feature k's dot
// product: a_kj ≠ 0 (either sign of zero counts as zero), or a
// non-finite old/new value at j turning the ±0.0 no-op term into NaN.
func (d *Delta) affected(k int, dirty []int, next []float64) bool {
	row := d.b.coeffs[k*d.b.dim : (k+1)*d.b.dim]
	for _, j := range dirty {
		if row[j] != 0 {
			return true
		}
		if !finite(d.prev[j]) || !finite(next[j]) {
			return true
		}
	}
	return false
}

// patch rewrites an unaffected feature's out slot from session state and
// moves its witness's dirty coordinates to the new operating point. The
// projection patch is computed literally as x[j] = π_j + t·a_j — with
// a_kj == 0 the term is ±0.0 whose sign follows t (or NaN when t
// overflowed to ±Inf), exactly what a cold sweep produces; a bare
// x[j] = next[j] would get the sign of a zero coordinate wrong.
func (d *Delta) patch(k int, next []float64, dirty []int, out []core.RadiusResult) {
	b := d.b
	switch d.mode[k] {
	case dmFallback:
		// Still NaN at next (the dot is unchanged): the sweep writes
		// nothing, same as Compute.
		return
	case dmNoWitness:
		out[k] = core.RadiusResult{
			Feature: b.names[k],
			Radius:  math.Float64frombits(d.radBits[k]),
			Kind:    d.kinds[k],
			Method:  method(d.kinds[k]),
		}
		return
	}
	x := d.slot(k)
	if d.mode[k] == dmCopy {
		for _, j := range dirty {
			x[j] = next[j]
		}
	} else {
		row := b.coeffs[k*b.dim : (k+1)*b.dim]
		t := d.t[k]
		for _, j := range dirty {
			x[j] = next[j] + t*row[j]
		}
	}
	out[k] = core.RadiusResult{
		Feature:  b.names[k],
		Radius:   math.Float64frombits(d.radBits[k]),
		Boundary: x,
		Kind:     d.kinds[k],
		Method:   method(d.kinds[k]),
	}
}

// reconstructAll rewrites every non-fallback out slot from session state
// (a zero-dirty step: values are already current, but the caller's out
// may be fresh).
func (d *Delta) reconstructAll(out []core.RadiusResult) {
	b := d.b
	for k := 0; k < b.n; k++ {
		switch d.mode[k] {
		case dmFallback:
		case dmNoWitness:
			out[k] = core.RadiusResult{
				Feature: b.names[k],
				Radius:  math.Float64frombits(d.radBits[k]),
				Kind:    d.kinds[k],
				Method:  method(d.kinds[k]),
			}
		default:
			out[k] = core.RadiusResult{
				Feature:  b.names[k],
				Radius:   math.Float64frombits(d.radBits[k]),
				Boundary: d.slot(k),
				Kind:     d.kinds[k],
				Method:   method(d.kinds[k]),
			}
		}
	}
}

// currentFallback materialises the full NaN-fallback set at the current
// point into the session buffer.
func (d *Delta) currentFallback() []int {
	d.fallback = d.fallback[:0]
	for k := 0; k < d.b.n; k++ {
		if d.mode[k] == dmFallback {
			d.fallback = append(d.fallback, k)
		}
	}
	return d.fallback
}

// check validates the shared Full/ComputeDelta preconditions.
func (d *Delta) check(point []float64, out []core.RadiusResult) error {
	if len(point) != d.b.dim {
		return fmt.Errorf("kernel: operating-point dimension %d != pack dimension %d", len(point), d.b.dim)
	}
	if len(out) < d.b.n {
		return fmt.Errorf("kernel: result slice length %d < feature count %d", len(out), d.b.n)
	}
	return nil
}

// method maps a bound kind onto the Method a kernel sweep stamps.
func method(k core.BoundKind) core.Method {
	if k == core.AlreadyViolated || k == core.Unreachable {
		return core.MethodNone
	}
	return core.MethodHyperplane
}

// sameBits reports bitwise equality of two equal-length vectors (NaNs
// compare by payload, ±0 are distinct — the session must not guess).
func sameBits(a, b []float64) bool {
	for i := range a {
		if math.Float64bits(a[i]) != math.Float64bits(b[i]) {
			return false
		}
	}
	return true
}

// finite reports x is neither Inf nor NaN.
func finite(x float64) bool {
	return !math.IsInf(x, 0) && !math.IsNaN(x)
}
