package kernel

import (
	"fmt"
	"math"
	"math/rand"
	"testing"

	"fepia/internal/core"
	"fepia/internal/vecmath"
)

// bitsEqual compares two floats by IEEE-754 bit pattern, so ±0, NaN
// payloads, and infinities all compare exactly.
func bitsEqual(a, b float64) bool {
	return math.Float64bits(a) == math.Float64bits(b)
}

// assertSame fails unless the kernel result is bit-identical to the
// scalar one in every field.
func assertSame(t *testing.T, tag string, got, want core.RadiusResult) {
	t.Helper()
	if got.Feature != want.Feature {
		t.Fatalf("%s: Feature = %q, want %q", tag, got.Feature, want.Feature)
	}
	if !bitsEqual(got.Radius, want.Radius) {
		t.Fatalf("%s: Radius = %x (%g), want %x (%g)", tag,
			math.Float64bits(got.Radius), got.Radius, math.Float64bits(want.Radius), want.Radius)
	}
	if got.Kind != want.Kind {
		t.Fatalf("%s: Kind = %v, want %v", tag, got.Kind, want.Kind)
	}
	if got.Method != want.Method {
		t.Fatalf("%s: Method = %v, want %v", tag, got.Method, want.Method)
	}
	if (got.Boundary == nil) != (want.Boundary == nil) || len(got.Boundary) != len(want.Boundary) {
		t.Fatalf("%s: Boundary shape %v, want %v", tag, got.Boundary, want.Boundary)
	}
	for i := range got.Boundary {
		if !bitsEqual(got.Boundary[i], want.Boundary[i]) {
			t.Fatalf("%s: Boundary[%d] = %x (%g), want %x (%g)", tag, i,
				math.Float64bits(got.Boundary[i]), got.Boundary[i],
				math.Float64bits(want.Boundary[i]), want.Boundary[i])
		}
	}
}

// norms lists every supported norm for a given dimension; the nil entry
// exercises the "zero Options selects ℓ₂" path.
func norms(t *testing.T, rng *rand.Rand, dim int) map[string]vecmath.Norm {
	t.Helper()
	w := make([]float64, dim)
	for i := range w {
		w[i] = 0.25 + 2*rng.Float64()
	}
	wl2, err := vecmath.NewWeightedL2(w)
	if err != nil {
		t.Fatalf("NewWeightedL2: %v", err)
	}
	return map[string]vecmath.Norm{
		"default": nil,
		"l2":      vecmath.L2{},
		"l1":      vecmath.L1{},
		"linf":    vecmath.LInf{},
		"wl2":     wl2,
	}
}

// randomFeature draws one linear feature covering the interesting
// regimes: dense/sparse/zero coefficients; two-sided, one-sided, and
// degenerate (min == max) bounds; operating points inside, on, and
// outside the tolerable range.
func randomFeature(rng *rand.Rand, name string, dim int, orig []float64) core.Feature {
	coeffs := make([]float64, dim)
	switch rng.Intn(10) {
	case 0: // all-zero: a feature the parameter cannot move
	case 1: // sparse
		coeffs[rng.Intn(dim)] = -3 + 6*rng.Float64()
	default:
		for i := range coeffs {
			coeffs[i] = -3 + 6*rng.Float64()
		}
	}
	offset := -5 + 10*rng.Float64()
	imp, err := core.NewLinearImpact(coeffs, offset)
	if err != nil {
		panic(err)
	}
	v0 := imp.Eval(orig)
	var b core.Bounds
	switch rng.Intn(8) {
	case 0: // already violated below
		b = core.Bounds{Min: v0 + 1 + rng.Float64(), Max: v0 + 3}
	case 1: // already violated above
		b = core.Bounds{Min: v0 - 3, Max: v0 - 1 - rng.Float64()}
	case 2: // one-sided max
		b = core.NoMin(v0 + rng.Float64()*4)
	case 3: // one-sided min
		b = core.NoMax(v0 - rng.Float64()*4)
	case 4: // sitting exactly on the boundary
		b = core.Bounds{Min: v0, Max: v0}
	case 5: // unbounded both sides: always unreachable
		b = core.Bounds{Min: math.Inf(-1), Max: math.Inf(1)}
	default: // two-sided, feasible, often asymmetric
		b = core.Bounds{Min: v0 - 0.1 - 5*rng.Float64(), Max: v0 + 0.1 + 5*rng.Float64()}
	}
	return core.Feature{Name: name, Impact: imp, Bounds: b}
}

// TestKernelMatchesScalar is the byte-identity property: across seeded
// random mappings, every supported norm, and every bound regime, the SoA
// kernel reproduces core.ComputeRadius bit for bit — radius, kind,
// method, and boundary witness.
func TestKernelMatchesScalar(t *testing.T) {
	for _, dim := range []int{1, 2, 3, 5, 8, 17} {
		for trial := 0; trial < 8; trial++ {
			rng := rand.New(rand.NewSource(int64(1000*dim + trial)))
			orig := make([]float64, dim)
			for i := range orig {
				orig[i] = -2 + 4*rng.Float64()
			}
			p := core.Perturbation{Name: "π", Orig: orig}
			n := 1 + rng.Intn(40)
			features := make([]core.Feature, n)
			for k := range features {
				features[k] = randomFeature(rng, fmt.Sprintf("F%d", k), dim, orig)
			}
			for name, norm := range norms(t, rng, dim) {
				opts := core.Options{Norm: norm}.WithDefaults()
				b, err := Pack(features, dim, opts.Norm)
				if err != nil {
					t.Fatalf("dim=%d trial=%d norm=%s: Pack: %v", dim, trial, name, err)
				}
				out := make([]core.RadiusResult, n)
				fb, err := b.Compute(orig, out)
				if err != nil {
					t.Fatalf("dim=%d trial=%d norm=%s: Compute: %v", dim, trial, name, err)
				}
				if len(fb) != 0 {
					t.Fatalf("dim=%d trial=%d norm=%s: unexpected fallback %v", dim, trial, name, fb)
				}
				for k := range features {
					want, err := core.ComputeRadius(features[k], p, opts)
					if err != nil {
						t.Fatalf("scalar ComputeRadius(%s): %v", features[k].Name, err)
					}
					assertSame(t, fmt.Sprintf("dim=%d trial=%d norm=%s feature=%d", dim, trial, name, k), out[k], want)
				}
			}
		}
	}
}

// TestKernelPackReuse pins the "built once per mapping, reusable across
// perturbations" contract: one Pack swept at many operating points keeps
// matching the scalar path at each of them.
func TestKernelPackReuse(t *testing.T) {
	rng := rand.New(rand.NewSource(42))
	const dim, n = 6, 24
	orig := make([]float64, dim)
	for i := range orig {
		orig[i] = 1 + rng.Float64()
	}
	features := make([]core.Feature, n)
	for k := range features {
		features[k] = randomFeature(rng, fmt.Sprintf("F%d", k), dim, orig)
	}
	opts := core.Options{}.WithDefaults()
	b, err := Pack(features, dim, opts.Norm)
	if err != nil {
		t.Fatalf("Pack: %v", err)
	}
	out := make([]core.RadiusResult, n)
	for sweep := 0; sweep < 16; sweep++ {
		pt := make([]float64, dim)
		for i := range pt {
			pt[i] = -4 + 8*rng.Float64()
		}
		if _, err := b.Compute(pt, out); err != nil {
			t.Fatalf("sweep %d: Compute: %v", sweep, err)
		}
		p := core.Perturbation{Name: "π", Orig: pt}
		for k := range features {
			want, err := core.ComputeRadius(features[k], p, opts)
			if err != nil {
				t.Fatalf("sweep %d scalar: %v", sweep, err)
			}
			assertSame(t, fmt.Sprintf("sweep=%d feature=%d", sweep, k), out[k], want)
		}
	}
}

// TestKernelNaNFallback: a dot product that overflows to NaN at the
// operating point is not the kernel's to answer — the feature comes back
// in the fallback list so the scalar path can produce its canonical
// error.
func TestKernelNaNFallback(t *testing.T) {
	big := math.MaxFloat64
	imp, err := core.NewLinearImpact([]float64{big, big}, 0)
	if err != nil {
		t.Fatal(err)
	}
	ok, err := core.NewLinearImpact([]float64{1, 1}, 0)
	if err != nil {
		t.Fatal(err)
	}
	features := []core.Feature{
		{Name: "fine", Impact: ok, Bounds: core.NoMin(10)},
		{Name: "overflows", Impact: imp, Bounds: core.NoMin(10)},
	}
	// big*2 → +Inf, big*-2 → −Inf, sum → NaN.
	orig := []float64{2, -2}
	b, err := Pack(features, 2, vecmath.L2{})
	if err != nil {
		t.Fatalf("Pack: %v", err)
	}
	out := make([]core.RadiusResult, 2)
	fb, err := b.Compute(orig, out)
	if err != nil {
		t.Fatalf("Compute: %v", err)
	}
	if len(fb) != 1 || fb[0] != 1 {
		t.Fatalf("fallback = %v, want [1]", fb)
	}
	// The scalar path errors on the same feature, which is exactly why
	// the kernel refuses to answer for it.
	if _, err := core.ComputeRadius(features[1], core.Perturbation{Name: "π", Orig: orig}, core.Options{}); err == nil {
		t.Fatalf("scalar path unexpectedly succeeded on the NaN feature")
	}
	// The well-behaved slot is still filled and still identical.
	want, err := core.ComputeRadius(features[0], core.Perturbation{Name: "π", Orig: orig}, core.Options{})
	if err != nil {
		t.Fatal(err)
	}
	assertSame(t, "fine", out[0], want)
}

// TestEligible rejects everything the kernel must not touch.
func TestEligible(t *testing.T) {
	lin, err := core.NewLinearImpact([]float64{1, 2}, 0)
	if err != nil {
		t.Fatal(err)
	}
	fn := &core.FuncImpact{N: 2, F: func(pi []float64) float64 { return pi[0] * pi[0] }, Convex: true}
	w3, err := vecmath.NewWeightedL2([]float64{1, 1, 1})
	if err != nil {
		t.Fatal(err)
	}
	good := core.Feature{Name: "ok", Impact: lin, Bounds: core.NoMin(5)}
	cases := []struct {
		name string
		f    core.Feature
		dim  int
		norm vecmath.Norm
		want bool
	}{
		{"linear-l2", good, 2, vecmath.L2{}, true},
		{"linear-nil-norm", good, 2, nil, true},
		{"non-linear", core.Feature{Name: "fn", Impact: fn, Bounds: core.NoMin(5)}, 2, vecmath.L2{}, false},
		{"nil-impact", core.Feature{Name: "none", Bounds: core.NoMin(5)}, 2, vecmath.L2{}, false},
		{"dim-mismatch", good, 3, vecmath.L2{}, false},
		{"inverted-bounds", core.Feature{Name: "bad", Impact: lin, Bounds: core.Bounds{Min: 2, Max: 1}}, 2, vecmath.L2{}, false},
		{"weighted-dim-mismatch", good, 2, w3, false},
	}
	for _, c := range cases {
		if got := Eligible(c.f, c.dim, c.norm); got != c.want {
			t.Errorf("Eligible(%s) = %v, want %v", c.name, got, c.want)
		}
	}
	if _, err := Pack([]core.Feature{{Name: "fn", Impact: fn, Bounds: core.NoMin(5)}}, 2, vecmath.L2{}); err == nil {
		t.Errorf("Pack accepted an ineligible feature")
	}
}

// TestComputeShapeErrors pins the two defensive errors.
func TestComputeShapeErrors(t *testing.T) {
	lin, err := core.NewLinearImpact([]float64{1, 2}, 0)
	if err != nil {
		t.Fatal(err)
	}
	b, err := Pack([]core.Feature{{Name: "f", Impact: lin, Bounds: core.NoMin(5)}}, 2, nil)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := b.Compute([]float64{1}, make([]core.RadiusResult, 1)); err == nil {
		t.Errorf("Compute accepted a mismatched operating point")
	}
	if _, err := b.Compute([]float64{1, 2}, nil); err == nil {
		t.Errorf("Compute accepted a short result slice")
	}
	if b.Len() != 1 || b.Dim() != 2 {
		t.Errorf("Len/Dim = %d/%d, want 1/2", b.Len(), b.Dim())
	}
}
