// Package kernel is the vectorized analytic radius kernel: a
// struct-of-arrays (SoA) evaluation path for the Eq. 6 closed form that
// computes every linear feature's robustness radius in one cache-friendly
// sweep instead of one interface-dispatched core.ComputeRadius call per
// feature.
//
// The paper's closed form for an affine impact f(π) = a·π + b against a
// boundary level β is a dot product and a scalar divide:
//
//	r = |β − f(π^orig)| / ‖a‖_*
//
// where ‖a‖_* is the dual of the perturbation norm (ℓ₂↔ℓ₂, ℓ₁↔ℓ∞,
// ℓ∞↔ℓ₁, weighted-ℓ₂ ↔ its reciprocal-weighted dual). Everything in that
// formula except the dot product a·π^orig is a function of the mapping
// alone, so Pack hoists it: the coefficient rows of all features are laid
// out in one flat []float64 block next to per-feature offset, bound,
// dual-norm, and ‖a‖₂² arrays, built once per mapping and reusable across
// operating points. Compute then evaluates all dot products in a single
// sweep — four features at a time, each with its own register-resident
// Kahan–Babuška accumulator, so the compensation arithmetic of the scalar
// path is preserved term for term while the four independent carry chains
// give the CPU instruction-level parallelism the one-at-a-time path
// cannot.
//
// Byte-identical results are the contract, not an aspiration: for every
// feature the kernel performs the exact floating-point operations of
// core.ComputeRadius in the exact order (the same compensated dot
// product, the same dual-norm factor via core.DualNorm, the same
// projection arithmetic for the boundary witness, the same
// strictly-smaller tie-breaking between the β^max and β^min sides), so
// kernel-on and kernel-off runs produce bit-equal RadiusResults. The
// property tests in kernel_test.go pin this across seeded random
// mappings, every supported norm, one- and two-sided bounds,
// already-violated and unreachable features.
//
// Eligibility is decided per feature by the batch engine (see
// batch.Options.Kernel): linear impacts under a supported norm route
// here; convex and non-convex impacts keep the internal/optimize
// numeric path, and fault-injected requests keep the per-feature path
// wholesale so chaos injection semantics are never silently lost.
// Traced requests use the kernel and record one "kernel" span for the
// sweep. docs/PERFORMANCE.md documents the routing rules and the
// measured speedups (BENCH_6.json, `make bench`).
package kernel
