package kernel

import (
	"fmt"
	"math"
	"math/rand"
	"sync"
	"testing"

	"fepia/internal/core"
	"fepia/internal/vecmath"
)

// walkPoint draws the next operating point from prev by moving `moves`
// distinct coordinates, covering the regimes the dirty-set rule must
// survive: ordinary moves, sign-of-zero flips, and non-finite values
// entering and leaving a coordinate.
func walkPoint(rng *rand.Rand, prev []float64, moves int) (next []float64, dirty []int) {
	next = append([]float64(nil), prev...)
	perm := rng.Perm(len(prev))
	for _, j := range perm[:moves] {
		switch rng.Intn(12) {
		case 0:
			next[j] = 0.0
		case 1:
			next[j] = math.Copysign(0, -1) // −0: witness sign-of-zero regime
		case 2:
			next[j] = math.Inf(1) // 0·Inf = NaN poisons unaffected sums
		case 3:
			next[j] = math.NaN()
		default:
			next[j] = -4 + 8*rng.Float64()
		}
		dirty = append(dirty, j)
	}
	return next, dirty
}

// assertFallback fails unless the two fallback index sets are equal.
func assertFallback(t *testing.T, tag string, got, want []int) {
	t.Helper()
	if len(got) != len(want) {
		t.Fatalf("%s: fallback = %v, want %v", tag, got, want)
	}
	for i := range got {
		if got[i] != want[i] {
			t.Fatalf("%s: fallback = %v, want %v", tag, got, want)
		}
	}
}

// TestDeltaMatchesCold is the tentpole's byte-identity property: across
// seeded random mappings, every supported norm, dirty-set sizes
// 1..dim, NaN fallback, and sign-of-zero traffic, a session stepped
// through ComputeDelta reproduces a cold Compute on a fresh pack bit
// for bit at every point of the trajectory — radius, kind, method,
// boundary witness, and the fallback set.
func TestDeltaMatchesCold(t *testing.T) {
	for _, dim := range []int{1, 2, 3, 5, 8} {
		for trial := 0; trial < 8; trial++ {
			rng := rand.New(rand.NewSource(int64(7000*dim + trial)))
			orig := make([]float64, dim)
			for i := range orig {
				orig[i] = -2 + 4*rng.Float64()
			}
			n := 1 + rng.Intn(40)
			features := make([]core.Feature, n)
			for k := range features {
				features[k] = randomFeature(rng, fmt.Sprintf("f%02d", k), dim, orig)
			}
			for name, norm := range norms(t, rng, dim) {
				pack, err := Pack(features, dim, norm)
				if err != nil {
					t.Fatalf("dim=%d trial=%d norm=%s: Pack: %v", dim, trial, name, err)
				}
				d := pack.Delta()
				out := make([]core.RadiusResult, n)
				fb, err := d.Full(orig, out)
				if err != nil {
					t.Fatalf("Full: %v", err)
				}
				checkAgainstCold(t, fmt.Sprintf("dim=%d trial=%d norm=%s full", dim, trial, name),
					features, dim, norm, orig, out, fb)

				prev := append([]float64(nil), orig...)
				for step := 0; step < 12; step++ {
					moves := 1 + rng.Intn(dim)
					next, dirty := walkPoint(rng, prev, moves)
					if rng.Intn(3) == 0 {
						dirty = nil // exercise dirty-set derivation
					} else if rng.Intn(3) == 0 {
						// Redundant entries and unmoved coordinates must be harmless.
						dirty = append(dirty, dirty[0], rng.Intn(dim))
					}
					_, fb, err := d.ComputeDelta(prev, next, dirty, out)
					if err != nil {
						t.Fatalf("ComputeDelta: %v", err)
					}
					tag := fmt.Sprintf("dim=%d trial=%d norm=%s step=%d", dim, trial, name, step)
					checkAgainstCold(t, tag, features, dim, norm, next, out, fb)
					prev = next
				}
			}
		}
	}
}

// checkAgainstCold packs the features fresh, sweeps cold at point, and
// asserts every written result and the fallback set match bitwise.
func checkAgainstCold(t *testing.T, tag string, features []core.Feature, dim int, norm vecmath.Norm,
	point []float64, got []core.RadiusResult, gotFallback []int) {
	t.Helper()
	fresh, err := Pack(features, dim, norm)
	if err != nil {
		t.Fatalf("%s: fresh Pack: %v", tag, err)
	}
	want := make([]core.RadiusResult, len(features))
	wantFallback, err := fresh.Compute(point, want)
	if err != nil {
		t.Fatalf("%s: cold Compute: %v", tag, err)
	}
	assertFallback(t, tag, gotFallback, wantFallback)
	isFallback := make(map[int]bool, len(wantFallback))
	for _, k := range wantFallback {
		isFallback[k] = true
	}
	for k := range want {
		if isFallback[k] {
			continue // slot not written by either path
		}
		assertSame(t, fmt.Sprintf("%s feature=%d", tag, k), got[k], want[k])
	}
}

// TestDeltaChangedSet pins the changed-set semantics: only features
// whose dot product a dirty coordinate can touch are reported, an
// unmoved point reports nothing, and a session handed a stale prev
// resyncs cold and reports everything.
func TestDeltaChangedSet(t *testing.T) {
	// Block-sparse mapping: feature k owns coordinates {2k, 2k+1}.
	const n, dim = 4, 8
	features := make([]core.Feature, n)
	for k := 0; k < n; k++ {
		coeffs := make([]float64, dim)
		coeffs[2*k] = 1.5
		coeffs[2*k+1] = -0.5
		imp, err := core.NewLinearImpact(coeffs, 0.25)
		if err != nil {
			t.Fatal(err)
		}
		features[k] = core.Feature{Name: fmt.Sprintf("m%d", k), Impact: imp, Bounds: core.NoMin(10)}
	}
	pack, err := Pack(features, dim, nil)
	if err != nil {
		t.Fatal(err)
	}
	d := pack.Delta()
	out := make([]core.RadiusResult, n)
	orig := []float64{1, 1, 1, 1, 1, 1, 1, 1}
	if _, err := d.Full(orig, out); err != nil {
		t.Fatal(err)
	}

	// Move coordinate 2 (feature 1's territory): exactly feature 1 changes.
	next := append([]float64(nil), orig...)
	next[2] = 2
	changed, _, err := d.ComputeDelta(orig, next, []int{2}, out)
	if err != nil {
		t.Fatal(err)
	}
	if len(changed) != 1 || changed[0] != 1 {
		t.Fatalf("changed = %v, want [1]", changed)
	}

	// A step that moves nothing changes nothing.
	changed, _, err = d.ComputeDelta(next, next, nil, out)
	if err != nil {
		t.Fatal(err)
	}
	if len(changed) != 0 {
		t.Fatalf("no-op step: changed = %v, want []", changed)
	}

	// Stale prev: the session must resync and report every feature.
	stale := append([]float64(nil), orig...)
	stale[7] = 99
	far := append([]float64(nil), next...)
	far[0] = 3
	changed, _, err = d.ComputeDelta(stale, far, []int{0}, out)
	if err != nil {
		t.Fatal(err)
	}
	if len(changed) != n {
		t.Fatalf("resync: changed = %v, want all %d", changed, n)
	}
	checkAgainstCold(t, "resync", features, dim, nil, far, out, nil)
}

// TestDeltaShapeErrors pins the validation errors.
func TestDeltaShapeErrors(t *testing.T) {
	imp, err := core.NewLinearImpact([]float64{1, 2}, 0)
	if err != nil {
		t.Fatal(err)
	}
	f := core.Feature{Name: "f", Impact: imp, Bounds: core.NoMin(5)}
	pack, err := Pack([]core.Feature{f}, 2, nil)
	if err != nil {
		t.Fatal(err)
	}
	d := pack.Delta()
	out := make([]core.RadiusResult, 1)
	if _, err := d.Full([]float64{1}, out); err == nil {
		t.Fatal("Full accepted a mis-dimensioned point")
	}
	if _, err := d.Full([]float64{1, 2}, nil); err == nil {
		t.Fatal("Full accepted a short result slice")
	}
	if _, _, err := d.ComputeDelta([]float64{1}, []float64{1, 2}, nil, out); err == nil {
		t.Fatal("ComputeDelta accepted a mis-dimensioned prev")
	}
	if _, _, err := d.ComputeDelta([]float64{1, 2}, []float64{1}, nil, out); err == nil {
		t.Fatal("ComputeDelta accepted a mis-dimensioned next")
	}
}

// TestBatchSharedConcurrently is the pack-reuse race property: ONE Batch
// shared by concurrent Compute callers and per-goroutine Delta sessions,
// each walking its own trajectory, must produce results byte-identical
// to fresh single-owner packs. Run under -race this also proves the pack
// is never written after Pack.
func TestBatchSharedConcurrently(t *testing.T) {
	rng := rand.New(rand.NewSource(99))
	const dim, n = 6, 24
	orig := make([]float64, dim)
	for i := range orig {
		orig[i] = -1 + 2*rng.Float64()
	}
	features := make([]core.Feature, n)
	for k := range features {
		features[k] = randomFeature(rng, fmt.Sprintf("f%02d", k), dim, orig)
	}
	shared, err := Pack(features, dim, nil)
	if err != nil {
		t.Fatal(err)
	}

	const goroutines = 8
	const steps = 50
	var wg sync.WaitGroup
	errs := make(chan error, goroutines)
	for g := 0; g < goroutines; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			rng := rand.New(rand.NewSource(int64(100 + g)))
			point := make([]float64, dim)
			for i := range point {
				point[i] = -2 + 4*rng.Float64()
			}
			fail := func(format string, args ...any) {
				select {
				case errs <- fmt.Errorf(format, args...):
				default:
				}
			}
			check := func(tag string, got []core.RadiusResult, gotFB []int, at []float64) bool {
				fresh, err := Pack(features, dim, nil)
				if err != nil {
					fail("g%d %s: fresh Pack: %v", g, tag, err)
					return false
				}
				want := make([]core.RadiusResult, n)
				wantFB, err := fresh.Compute(at, want)
				if err != nil {
					fail("g%d %s: cold Compute: %v", g, tag, err)
					return false
				}
				if len(gotFB) != len(wantFB) {
					fail("g%d %s: fallback %v want %v", g, tag, gotFB, wantFB)
					return false
				}
				isFB := make(map[int]bool)
				for _, k := range wantFB {
					isFB[k] = true
				}
				for k := range want {
					if isFB[k] {
						continue
					}
					w, gr := want[k], got[k]
					if !bitsEqual(gr.Radius, w.Radius) || gr.Kind != w.Kind || gr.Method != w.Method ||
						(gr.Boundary == nil) != (w.Boundary == nil) {
						fail("g%d %s feature %d: %+v want %+v", g, tag, k, gr, w)
						return false
					}
					for i := range w.Boundary {
						if !bitsEqual(gr.Boundary[i], w.Boundary[i]) {
							fail("g%d %s feature %d boundary[%d]", g, tag, k, i)
							return false
						}
					}
				}
				return true
			}
			if g%2 == 0 {
				// Compute caller: fresh sweep per step on the shared pack.
				out := make([]core.RadiusResult, n)
				for s := 0; s < steps; s++ {
					fb, err := shared.Compute(point, out)
					if err != nil {
						fail("g%d Compute: %v", g, err)
						return
					}
					if !check(fmt.Sprintf("compute step %d", s), out, fb, point) {
						return
					}
					point, _ = walkPoint(rng, point, 1+rng.Intn(dim))
				}
				return
			}
			// Delta caller: one session on the shared pack.
			d := shared.Delta()
			out := make([]core.RadiusResult, n)
			fb, err := d.Full(point, out)
			if err != nil {
				fail("g%d Full: %v", g, err)
				return
			}
			if !check("full", out, fb, point) {
				return
			}
			for s := 0; s < steps; s++ {
				next, dirty := walkPoint(rng, point, 1+rng.Intn(dim))
				_, fb, err := d.ComputeDelta(point, next, dirty, out)
				if err != nil {
					fail("g%d ComputeDelta: %v", g, err)
					return
				}
				if !check(fmt.Sprintf("delta step %d", s), out, fb, next) {
					return
				}
				point = next
			}
		}(g)
	}
	wg.Wait()
	close(errs)
	for err := range errs {
		t.Error(err)
	}
}

// TestDeltaStepAllocFree pins the session satellite: a steady-state
// incremental step allocates nothing — witnesses live in the session
// arena, changed/fallback in session buffers.
func TestDeltaStepAllocFree(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	const dim, n = 8, 32
	orig := make([]float64, dim)
	for i := range orig {
		orig[i] = 1 + rng.Float64()
	}
	features := make([]core.Feature, n)
	for k := range features {
		features[k] = randomFeature(rng, fmt.Sprintf("f%02d", k), dim, orig)
	}
	pack, err := Pack(features, dim, nil)
	if err != nil {
		t.Fatal(err)
	}
	d := pack.Delta()
	out := make([]core.RadiusResult, n)
	if _, err := d.Full(orig, out); err != nil {
		t.Fatal(err)
	}
	prev := append([]float64(nil), orig...)
	next := append([]float64(nil), orig...)
	dirty := []int{0}
	step := 0
	allocs := testing.AllocsPerRun(200, func() {
		j := step % dim
		step++
		next[j] = prev[j] + 0.001
		dirty[0] = j
		if _, _, err := d.ComputeDelta(prev, next, dirty, out); err != nil {
			t.Fatal(err)
		}
		prev[j] = next[j]
	})
	if allocs != 0 {
		t.Fatalf("ComputeDelta allocs/op = %g, want 0", allocs)
	}
}

// TestComputeAllocsPinned pins the engine-path sweep at its one
// unavoidable allocation: the witness block, which escapes into the
// caller's results (and from there into the radius cache), cannot be
// pooled; the dot scratch no longer allocates.
func TestComputeAllocsPinned(t *testing.T) {
	rng := rand.New(rand.NewSource(11))
	const dim, n = 8, 32
	orig := make([]float64, dim)
	for i := range orig {
		orig[i] = 1 + rng.Float64()
	}
	features := make([]core.Feature, n)
	for k := range features {
		features[k] = randomFeature(rng, fmt.Sprintf("f%02d", k), dim, orig)
	}
	pack, err := Pack(features, dim, nil)
	if err != nil {
		t.Fatal(err)
	}
	out := make([]core.RadiusResult, n)
	allocs := testing.AllocsPerRun(200, func() {
		if _, err := pack.Compute(orig, out); err != nil {
			t.Fatal(err)
		}
	})
	if allocs > 1 {
		t.Fatalf("Compute allocs/op = %g, want ≤ 1 (the escaping witness block)", allocs)
	}
}

// BenchmarkDeltaStep prices an incremental single-coordinate step
// against the full sweep it replaces, on a block-sparse mapping shaped
// like the HCS machine-finishing-time features (each feature owns
// dim/n coordinates).
func BenchmarkDeltaStep(b *testing.B) {
	const machines, perMachine = 32, 8
	const dim = machines * perMachine
	features := make([]core.Feature, machines)
	for m := 0; m < machines; m++ {
		coeffs := make([]float64, dim)
		for i := 0; i < perMachine; i++ {
			coeffs[m*perMachine+i] = 0.5 + float64(i)*0.1
		}
		imp, err := core.NewLinearImpact(coeffs, 0)
		if err != nil {
			b.Fatal(err)
		}
		features[m] = core.Feature{Name: fmt.Sprintf("m%02d", m), Impact: imp, Bounds: core.NoMin(100)}
	}
	pack, err := Pack(features, dim, nil)
	if err != nil {
		b.Fatal(err)
	}
	orig := make([]float64, dim)
	for i := range orig {
		orig[i] = 1
	}
	out := make([]core.RadiusResult, machines)

	b.Run("full", func(b *testing.B) {
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			if _, err := pack.Compute(orig, out); err != nil {
				b.Fatal(err)
			}
		}
	})
	b.Run("delta_1", func(b *testing.B) {
		d := pack.Delta()
		if _, err := d.Full(orig, out); err != nil {
			b.Fatal(err)
		}
		prev := append([]float64(nil), orig...)
		next := append([]float64(nil), orig...)
		dirty := []int{0}
		b.ReportAllocs()
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			j := i % dim
			next[j] = prev[j] + 0.0001
			dirty[0] = j
			if _, _, err := d.ComputeDelta(prev, next, dirty, out); err != nil {
				b.Fatal(err)
			}
			prev[j] = next[j]
		}
	})
}
