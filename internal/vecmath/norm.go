package vecmath

import (
	"fmt"
	"math"
)

// Norm computes a vector norm and exposes enough structure (a unit "dual"
// direction) for the minimum-norm boundary computations in the robustness
// analysis. The paper fixes the Euclidean norm; the interface lets the
// library study how the metric changes under other choices (an extension
// flagged in DESIGN.md).
type Norm interface {
	// Of returns the norm of v.
	Of(v []float64) float64
	// Name returns a short identifier such as "l2".
	Name() string
}

// L2 is the Euclidean norm used throughout the paper (Eq. 1).
type L2 struct{}

// Of returns sqrt(sum v_i^2), computed with scaling to avoid overflow.
func (L2) Of(v []float64) float64 { return Euclidean(v) }

// Name returns "l2".
func (L2) Name() string { return "l2" }

// L1 is the Manhattan norm.
type L1 struct{}

// Of returns sum |v_i|.
func (L1) Of(v []float64) float64 {
	var k KahanSum
	for _, x := range v {
		k.Add(math.Abs(x))
	}
	return k.Sum()
}

// Name returns "l1".
func (L1) Name() string { return "l1" }

// LInf is the maximum norm.
type LInf struct{}

// Of returns max |v_i|.
func (LInf) Of(v []float64) float64 {
	var m float64
	for _, x := range v {
		if a := math.Abs(x); a > m {
			m = a
		}
	}
	return m
}

// Name returns "linf".
func (LInf) Name() string { return "linf" }

// WeightedL2 is a diagonally weighted Euclidean norm
// ‖v‖_W = sqrt(sum w_i v_i^2) with w_i > 0. It lets a robustness analysis
// express that some perturbation components are more likely to move than
// others.
type WeightedL2 struct {
	// W holds the strictly positive per-component weights.
	W []float64
}

// NewWeightedL2 validates the weights and returns the norm. It returns an
// error if any weight is non-positive or non-finite.
func NewWeightedL2(w []float64) (*WeightedL2, error) {
	for i, x := range w {
		if !(x > 0) || math.IsInf(x, 0) {
			return nil, fmt.Errorf("vecmath: weight %d = %v must be finite and > 0", i, x)
		}
	}
	return &WeightedL2{W: Clone(w)}, nil
}

// Of returns sqrt(sum w_i v_i^2). It panics if v and the weight vector have
// different lengths.
func (n *WeightedL2) Of(v []float64) float64 {
	if err := checkSameLen(n.W, v); err != nil {
		panic(err)
	}
	var k KahanSum
	for i, x := range v {
		k.Add(n.W[i] * x * x)
	}
	return math.Sqrt(k.Sum())
}

// Name returns "wl2".
func (n *WeightedL2) Name() string { return "wl2" }

// Euclidean returns the ℓ₂ norm of v using the two-pass scaled algorithm,
// which is immune to overflow/underflow of the squared terms.
func Euclidean(v []float64) float64 {
	var scale float64
	for _, x := range v {
		if a := math.Abs(x); a > scale {
			scale = a
		}
	}
	if scale == 0 {
		return 0
	}
	if math.IsInf(scale, 0) {
		return math.Inf(1)
	}
	var k KahanSum
	for _, x := range v {
		r := x / scale
		k.Add(r * r)
	}
	return scale * math.Sqrt(k.Sum())
}

// Distance returns ‖a−b‖₂ without allocating.
func Distance(a, b []float64) float64 {
	if err := checkSameLen(a, b); err != nil {
		panic(err)
	}
	var scale float64
	for i := range a {
		if d := math.Abs(a[i] - b[i]); d > scale {
			scale = d
		}
	}
	if scale == 0 {
		return 0
	}
	if math.IsInf(scale, 0) {
		return math.Inf(1)
	}
	var k KahanSum
	for i := range a {
		r := (a[i] - b[i]) / scale
		k.Add(r * r)
	}
	return scale * math.Sqrt(k.Sum())
}

// Normalize stores v/‖v‖₂ in dst and returns dst together with the norm.
// If v has zero norm, dst is filled with zeros and the returned norm is 0.
func Normalize(dst, v []float64) ([]float64, float64) {
	n := Euclidean(v)
	dst = ensure(dst, len(v))
	if n == 0 {
		Fill(dst, 0)
		return dst, 0
	}
	for i := range v {
		dst[i] = v[i] / n
	}
	return dst, n
}
