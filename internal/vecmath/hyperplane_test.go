package vecmath

import (
	"errors"
	"math"
	"math/rand"
	"testing"
	"testing/quick"
)

func TestNewHyperplaneValidation(t *testing.T) {
	if _, err := NewHyperplane([]float64{0, 0}, 1); !errors.Is(err, ErrDegenerateHyperplane) {
		t.Errorf("zero normal: err = %v", err)
	}
	if _, err := NewHyperplane([]float64{math.NaN()}, 1); err == nil {
		t.Errorf("NaN normal accepted")
	}
	if _, err := NewHyperplane([]float64{1}, math.Inf(1)); err == nil {
		t.Errorf("Inf offset accepted")
	}
	h, err := NewHyperplane([]float64{1, 1}, 2)
	if err != nil {
		t.Fatal(err)
	}
	// The constructor must copy the normal.
	a := h.A
	a[0] = 100
	if h.A[0] != 100 {
		t.Skip() // unreachable; silence linters about unused write
	}
}

func TestHyperplaneDistanceKnown(t *testing.T) {
	// Plane x + y = 2; point at origin. Distance = 2/sqrt(2) = sqrt(2).
	h, _ := NewHyperplane([]float64{1, 1}, 2)
	if got := h.Distance([]float64{0, 0}); !ScalarEqualApprox(got, math.Sqrt2, 1e-15) {
		t.Errorf("distance = %v", got)
	}
	// Signed distance is negative below the plane, positive above.
	if got := h.SignedDistance([]float64{0, 0}); got >= 0 {
		t.Errorf("signed distance should be negative, got %v", got)
	}
	if got := h.SignedDistance([]float64{3, 3}); got <= 0 {
		t.Errorf("signed distance should be positive, got %v", got)
	}
	// A point on the plane.
	if got := h.Distance([]float64{1, 1}); got != 0 {
		t.Errorf("on-plane distance = %v", got)
	}
}

func TestProjectLandsOnPlaneAndIsClosest(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	for trial := 0; trial < 200; trial++ {
		n := 1 + rng.Intn(10)
		a := make([]float64, n)
		for i := range a {
			a[i] = rng.NormFloat64()
		}
		if Euclidean(a) == 0 {
			continue
		}
		c := rng.NormFloat64() * 10
		h, err := NewHyperplane(a, c)
		if err != nil {
			t.Fatal(err)
		}
		x := make([]float64, n)
		for i := range x {
			x[i] = rng.NormFloat64() * 5
		}
		p := h.Project(nil, x)
		if !h.Contains(p, 1e-9) {
			t.Fatalf("projection not on plane: residual %v", h.Distance(p))
		}
		// The projection distance must equal the analytic distance.
		if got, want := Distance(x, p), h.Distance(x); !ScalarEqualApprox(got, want, 1e-9) {
			t.Fatalf("‖x−proj‖=%v want %v", got, want)
		}
		// No random on-plane point may be closer (optimality check).
		for k := 0; k < 10; k++ {
			q := make([]float64, n)
			for i := range q {
				q[i] = rng.NormFloat64() * 5
			}
			q = h.Project(nil, q)
			if Distance(x, q) < h.Distance(x)-1e-9 {
				t.Fatalf("found closer on-plane point than projection")
			}
		}
	}
}

func TestDistanceSubsetMatchesEq6(t *testing.T) {
	// Machine m with 3 of 5 applications mapped to it; plane Σ_{i∈idx} C_i = τM.
	// Eq. 6: radius = (τM − F(C^orig))/sqrt(3).
	a := []float64{1, 0, 1, 1, 0} // indicator of apps on machine m
	tauM := 120.0
	h, _ := NewHyperplane(a, tauM)
	orig := []float64{10, 99, 20, 30, 42} // apps 1 and 4 belong to other machines
	idx := []int{0, 2, 3}
	got, err := h.DistanceSubset(orig, idx)
	if err != nil {
		t.Fatal(err)
	}
	want := (tauM - (10 + 20 + 30)) / math.Sqrt(3)
	if !ScalarEqualApprox(got, want, 1e-12) {
		t.Errorf("subset distance = %v want %v", got, want)
	}
	// With all coordinates free, the subset distance equals the plain distance.
	all := []int{0, 1, 2, 3, 4}
	full := []float64{1, 1, 1, 1, 1}
	h2, _ := NewHyperplane(full, 300)
	gotAll, err := h2.DistanceSubset(orig, all)
	if err != nil {
		t.Fatal(err)
	}
	if want := h2.Distance(orig); !ScalarEqualApprox(gotAll, want, 1e-12) {
		t.Errorf("full-subset distance = %v want %v", gotAll, want)
	}
}

func TestDistanceSubsetErrors(t *testing.T) {
	h, _ := NewHyperplane([]float64{1, 1}, 1)
	if _, err := h.DistanceSubset([]float64{0, 0, 0}, []int{0}); err == nil {
		t.Errorf("length mismatch accepted")
	}
	if _, err := h.DistanceSubset([]float64{0, 0}, []int{5}); err == nil {
		t.Errorf("out-of-range index accepted")
	}
	if _, err := h.DistanceSubset([]float64{0, 0}, []int{0, 0}); err == nil {
		t.Errorf("duplicate index accepted")
	}
	// Constraint with no weight on the chosen coordinate is degenerate.
	h3, _ := NewHyperplane([]float64{0, 1}, 1)
	if _, err := h3.DistanceSubset([]float64{0, 0}, []int{0}); err == nil {
		t.Errorf("degenerate subset accepted")
	}
}

func TestQuickSubsetDistanceAtLeastFull(t *testing.T) {
	// Restricting which coordinates may move can never shorten the path to
	// the plane, so subset distance ≥ full distance.
	rng := rand.New(rand.NewSource(11))
	f := func() bool {
		n := 2 + rng.Intn(8)
		a := make([]float64, n)
		x := make([]float64, n)
		for i := range a {
			a[i] = rng.NormFloat64()
			x[i] = rng.NormFloat64() * 3
		}
		if Euclidean(a) == 0 {
			return true
		}
		h, err := NewHyperplane(a, rng.NormFloat64()*5)
		if err != nil {
			return true
		}
		// Choose a random non-empty subset that has at least one non-zero coeff.
		var idx []int
		for i := range a {
			if rng.Intn(2) == 0 {
				idx = append(idx, i)
			}
		}
		if len(idx) == 0 {
			idx = []int{0}
		}
		sub, err := h.DistanceSubset(x, idx)
		if err != nil {
			return true // degenerate subset; nothing to compare
		}
		return sub >= h.Distance(x)-1e-9
	}
	if err := quick.Check(func(struct{}) bool { return f() }, &quick.Config{MaxCount: 300}); err != nil {
		t.Error(err)
	}
}
