package vecmath

import (
	"errors"
	"fmt"
	"math"
)

// ErrDimensionMismatch is returned (or wrapped) when two vectors of
// different lengths are combined.
var ErrDimensionMismatch = errors.New("vecmath: dimension mismatch")

// checkSameLen returns ErrDimensionMismatch if the two slices differ in length.
func checkSameLen(a, b []float64) error {
	if len(a) != len(b) {
		return fmt.Errorf("%w: %d vs %d", ErrDimensionMismatch, len(a), len(b))
	}
	return nil
}

// Clone returns a copy of v. A nil input yields a nil output.
func Clone(v []float64) []float64 {
	if v == nil {
		return nil
	}
	out := make([]float64, len(v))
	copy(out, v)
	return out
}

// Add stores a+b in dst and returns dst. If dst is nil a new slice is
// allocated. Add panics if the lengths of a and b differ.
func Add(dst, a, b []float64) []float64 {
	if err := checkSameLen(a, b); err != nil {
		panic(err)
	}
	dst = ensure(dst, len(a))
	for i := range a {
		dst[i] = a[i] + b[i]
	}
	return dst
}

// Sub stores a-b in dst and returns dst. If dst is nil a new slice is
// allocated. Sub panics if the lengths of a and b differ.
func Sub(dst, a, b []float64) []float64 {
	if err := checkSameLen(a, b); err != nil {
		panic(err)
	}
	dst = ensure(dst, len(a))
	for i := range a {
		dst[i] = a[i] - b[i]
	}
	return dst
}

// Scale stores s*a in dst and returns dst. If dst is nil a new slice is
// allocated.
func Scale(dst []float64, s float64, a []float64) []float64 {
	dst = ensure(dst, len(a))
	for i := range a {
		dst[i] = s * a[i]
	}
	return dst
}

// AddScaled stores a + s*b in dst and returns dst (the BLAS "axpy"
// operation). It panics if the lengths of a and b differ.
func AddScaled(dst, a []float64, s float64, b []float64) []float64 {
	if err := checkSameLen(a, b); err != nil {
		panic(err)
	}
	dst = ensure(dst, len(a))
	for i := range a {
		dst[i] = a[i] + s*b[i]
	}
	return dst
}

// Dot returns the inner product of a and b. It panics if the lengths differ.
// Kahan–Babuška compensated summation keeps the result stable for the long,
// similarly-signed sums that arise when accumulating execution times.
func Dot(a, b []float64) float64 {
	if err := checkSameLen(a, b); err != nil {
		panic(err)
	}
	var k KahanSum
	for i := range a {
		k.Add(a[i] * b[i])
	}
	return k.Sum()
}

// Sum returns the compensated sum of the elements of v.
func Sum(v []float64) float64 {
	var k KahanSum
	for _, x := range v {
		k.Add(x)
	}
	return k.Sum()
}

// Fill sets every element of v to x.
func Fill(v []float64, x float64) {
	for i := range v {
		v[i] = x
	}
}

// Max returns the maximum element of v and its index. It panics if v is
// empty. NaN elements are ignored unless all elements are NaN, in which case
// the first element is returned.
func Max(v []float64) (float64, int) {
	if len(v) == 0 {
		panic("vecmath: Max of empty vector")
	}
	best, idx := v[0], 0
	for i, x := range v {
		if x > best || (math.IsNaN(best) && !math.IsNaN(x)) {
			best, idx = x, i
		}
	}
	return best, idx
}

// Min returns the minimum element of v and its index. It panics if v is
// empty. NaN elements are ignored unless all elements are NaN, in which case
// the first element is returned.
func Min(v []float64) (float64, int) {
	if len(v) == 0 {
		panic("vecmath: Min of empty vector")
	}
	best, idx := v[0], 0
	for i, x := range v {
		if x < best || (math.IsNaN(best) && !math.IsNaN(x)) {
			best, idx = x, i
		}
	}
	return best, idx
}

// AllFinite reports whether every element of v is finite (neither NaN nor
// ±Inf).
func AllFinite(v []float64) bool {
	for _, x := range v {
		if math.IsNaN(x) || math.IsInf(x, 0) {
			return false
		}
	}
	return true
}

// EqualApprox reports whether a and b have the same length and each pair of
// elements differs by at most tol in absolute value or relative value
// (whichever bound is looser).
func EqualApprox(a, b []float64, tol float64) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if !ScalarEqualApprox(a[i], b[i], tol) {
			return false
		}
	}
	return true
}

// ScalarEqualApprox reports whether x and y are within tol of each other,
// absolutely or relative to the larger magnitude.
func ScalarEqualApprox(x, y, tol float64) bool {
	d := math.Abs(x - y)
	if d <= tol {
		return true
	}
	m := math.Max(math.Abs(x), math.Abs(y))
	return d <= tol*m
}

// ensure returns dst if it has length n, otherwise a freshly allocated
// slice of length n.
func ensure(dst []float64, n int) []float64 {
	if len(dst) == n {
		return dst
	}
	return make([]float64, n)
}

// KahanSum accumulates float64 values with Kahan–Babuška (Neumaier)
// compensation. The zero value is ready to use.
type KahanSum struct {
	sum float64
	c   float64
}

// Add accumulates x into the running sum.
func (k *KahanSum) Add(x float64) {
	t := k.sum + x
	if math.Abs(k.sum) >= math.Abs(x) {
		k.c += (k.sum - t) + x
	} else {
		k.c += (x - t) + k.sum
	}
	k.sum = t
}

// Sum returns the compensated total.
func (k *KahanSum) Sum() float64 { return k.sum + k.c }

// Reset clears the accumulator to zero.
func (k *KahanSum) Reset() { k.sum, k.c = 0, 0 }
