// Package vecmath provides the small amount of dense linear algebra needed
// by the robustness-metric computations: vector arithmetic, norms, Kahan
// summation, and point-to-hyperplane geometry.
//
// Everything operates on []float64 without hidden allocation where the
// caller provides a destination slice. The package is deliberately free of
// external dependencies so that the repository builds with the standard
// library alone.
//
// Numerical contract: the compensated accumulation here (KahanSum, Dot,
// the two-pass scaled Euclidean norm) is the single source of truth for
// floating-point results across the repository. Any alternative
// evaluation path — notably the vectorized SoA sweep in internal/kernel —
// must replay these exact operations in the exact order to honour the
// engine's byte-identical results guarantee, which is why their doc
// comments call out accumulation order explicitly.
package vecmath
