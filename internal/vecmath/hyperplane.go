package vecmath

import (
	"errors"
	"fmt"
	"math"
)

// Hyperplane represents the affine set {x : a·x = c} in ℝⁿ. The paper's
// step-4 analysis for linear impact functions reduces the robustness radius
// to the distance from the assumed operating point to such a hyperplane
// (Eq. 5 → Eq. 6).
type Hyperplane struct {
	// A is the normal (coefficient) vector; it must contain at least one
	// non-zero entry.
	A []float64
	// C is the offset: the plane is a·x = c.
	C float64
}

// ErrDegenerateHyperplane is returned when the normal vector is zero (the
// constraint is either vacuous or infeasible, never a hyperplane).
var ErrDegenerateHyperplane = errors.New("vecmath: zero normal vector does not define a hyperplane")

// NewHyperplane validates the normal vector and returns the hyperplane
// a·x = c.
func NewHyperplane(a []float64, c float64) (*Hyperplane, error) {
	if !AllFinite(a) || math.IsNaN(c) || math.IsInf(c, 0) {
		return nil, fmt.Errorf("vecmath: hyperplane coefficients must be finite")
	}
	if Euclidean(a) == 0 {
		return nil, ErrDegenerateHyperplane
	}
	return &Hyperplane{A: Clone(a), C: c}, nil
}

// Distance returns the Euclidean distance from x to the hyperplane:
// |a·x − c| / ‖a‖₂ (the point-to-plane formula the paper cites from [23]).
// It panics if x and the normal differ in length.
func (h *Hyperplane) Distance(x []float64) float64 {
	return math.Abs(h.SignedDistance(x))
}

// SignedDistance returns (a·x − c)/‖a‖₂; the sign tells which side of the
// plane x lies on (positive on the side the normal points to).
func (h *Hyperplane) SignedDistance(x []float64) float64 {
	return (Dot(h.A, x) - h.C) / Euclidean(h.A)
}

// Project stores in dst the closest point on the hyperplane to x — the
// boundary point π*(φ) of Figure 1 when the boundary relationship is
// affine — and returns it.
func (h *Hyperplane) Project(dst, x []float64) []float64 {
	t := (h.C - Dot(h.A, x)) / Dot(h.A, h.A)
	return AddScaled(dst, x, t, h.A)
}

// Contains reports whether x satisfies a·x = c to within tol of Euclidean
// distance.
func (h *Hyperplane) Contains(x []float64, tol float64) bool {
	return h.Distance(x) <= tol
}

// DistanceSubset returns the distance from x to the hyperplane defined by
// restricting the constraint a·x = c to the coordinates listed in idx,
// holding every other coordinate of x fixed. Equivalently it is the
// distance in the |idx|-dimensional subspace from the sub-vector x[idx] to
// the plane Σ_{i∈idx} a_i y_i = c − Σ_{i∉idx} a_i x_i.
//
// This is exactly the situation of Eq. 6: only the applications mapped to
// machine m_j appear in F_j, so the closest boundary point leaves every
// other component of the ETC vector unchanged.
func (h *Hyperplane) DistanceSubset(x []float64, idx []int) (float64, error) {
	if err := checkSameLen(h.A, x); err != nil {
		return 0, err
	}
	in := make([]bool, len(x))
	var sub KahanSum // ‖a[idx]‖² accumulator
	for _, i := range idx {
		if i < 0 || i >= len(x) {
			return 0, fmt.Errorf("vecmath: subset index %d out of range [0,%d)", i, len(x))
		}
		if in[i] {
			return 0, fmt.Errorf("vecmath: duplicate subset index %d", i)
		}
		in[i] = true
		sub.Add(h.A[i] * h.A[i])
	}
	norm2 := sub.Sum()
	if norm2 == 0 {
		return 0, fmt.Errorf("vecmath: constraint does not involve the chosen coordinates: %w", ErrDegenerateHyperplane)
	}
	// residual = c − a·x ; moving only coordinates in idx must absorb all of it.
	residual := h.C - Dot(h.A, x)
	return math.Abs(residual) / math.Sqrt(norm2), nil
}
