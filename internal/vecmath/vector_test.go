package vecmath

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"
)

func TestCloneIndependence(t *testing.T) {
	a := []float64{1, 2, 3}
	b := Clone(a)
	b[0] = 99
	if a[0] != 1 {
		t.Fatalf("Clone shares backing array")
	}
	if Clone(nil) != nil {
		t.Fatalf("Clone(nil) should be nil")
	}
}

func TestAddSubScale(t *testing.T) {
	a := []float64{1, 2, 3}
	b := []float64{4, 5, 6}
	if got := Add(nil, a, b); !EqualApprox(got, []float64{5, 7, 9}, 0) {
		t.Errorf("Add = %v", got)
	}
	if got := Sub(nil, b, a); !EqualApprox(got, []float64{3, 3, 3}, 0) {
		t.Errorf("Sub = %v", got)
	}
	if got := Scale(nil, 2, a); !EqualApprox(got, []float64{2, 4, 6}, 0) {
		t.Errorf("Scale = %v", got)
	}
	if got := AddScaled(nil, a, -1, b); !EqualApprox(got, []float64{-3, -3, -3}, 0) {
		t.Errorf("AddScaled = %v", got)
	}
}

func TestAddPanicsOnMismatch(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatalf("expected panic on dimension mismatch")
		}
	}()
	Add(nil, []float64{1}, []float64{1, 2})
}

func TestDstReuse(t *testing.T) {
	a := []float64{1, 2}
	dst := make([]float64, 2)
	got := Add(dst, a, a)
	if &got[0] != &dst[0] {
		t.Fatalf("Add should reuse dst when it has the right length")
	}
}

func TestDotAndSum(t *testing.T) {
	a := []float64{1, 2, 3}
	b := []float64{4, -5, 6}
	if got := Dot(a, b); got != 1*4-2*5+3*6 {
		t.Errorf("Dot = %v", got)
	}
	if got := Sum(a); got != 6 {
		t.Errorf("Sum = %v", got)
	}
}

func TestKahanSumCancellation(t *testing.T) {
	// Naive summation of [1e16, 1, -1e16] loses the 1; Kahan keeps it.
	var k KahanSum
	for _, x := range []float64{1e16, 1, -1e16} {
		k.Add(x)
	}
	if got := k.Sum(); got != 1 {
		t.Errorf("KahanSum = %v, want 1", got)
	}
	k.Reset()
	if k.Sum() != 0 {
		t.Errorf("Reset did not clear accumulator")
	}
}

func TestMaxMin(t *testing.T) {
	v := []float64{3, -1, 7, 7, 2}
	if x, i := Max(v); x != 7 || i != 2 {
		t.Errorf("Max = %v,%d", x, i)
	}
	if x, i := Min(v); x != -1 || i != 1 {
		t.Errorf("Min = %v,%d", x, i)
	}
	nan := math.NaN()
	if x, _ := Max([]float64{nan, 2, 1}); x != 2 {
		t.Errorf("Max with leading NaN = %v", x)
	}
	if x, _ := Min([]float64{nan, 2, 1}); x != 1 {
		t.Errorf("Min with leading NaN = %v", x)
	}
}

func TestAllFinite(t *testing.T) {
	if !AllFinite([]float64{1, 2, 3}) {
		t.Errorf("finite vector reported non-finite")
	}
	if AllFinite([]float64{1, math.NaN()}) || AllFinite([]float64{math.Inf(1)}) {
		t.Errorf("non-finite vector reported finite")
	}
}

func TestScalarEqualApprox(t *testing.T) {
	if !ScalarEqualApprox(1e12, 1e12*(1+1e-12), 1e-9) {
		t.Errorf("relative comparison failed")
	}
	if ScalarEqualApprox(0, 1, 1e-9) {
		t.Errorf("distinct values compared equal")
	}
}

func TestEuclideanExtremes(t *testing.T) {
	if got := Euclidean([]float64{3, 4}); got != 5 {
		t.Errorf("Euclidean(3,4) = %v", got)
	}
	if got := Euclidean(nil); got != 0 {
		t.Errorf("Euclidean(nil) = %v", got)
	}
	// Components near sqrt(MaxFloat64) would overflow a naive sum of squares.
	big := math.Sqrt(math.MaxFloat64)
	got := Euclidean([]float64{big, big})
	want := big * math.Sqrt2
	if math.IsInf(got, 0) || !ScalarEqualApprox(got, want, 1e-12) {
		t.Errorf("Euclidean overflowed: got %v want %v", got, want)
	}
	if !math.IsInf(Euclidean([]float64{math.Inf(1)}), 1) {
		t.Errorf("Euclidean of Inf should be +Inf")
	}
}

func TestDistanceMatchesSubNorm(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	for trial := 0; trial < 100; trial++ {
		n := 1 + rng.Intn(20)
		a := make([]float64, n)
		b := make([]float64, n)
		for i := range a {
			a[i] = rng.NormFloat64() * 100
			b[i] = rng.NormFloat64() * 100
		}
		want := Euclidean(Sub(nil, a, b))
		if got := Distance(a, b); !ScalarEqualApprox(got, want, 1e-12) {
			t.Fatalf("Distance=%v want %v", got, want)
		}
	}
}

func TestNormalize(t *testing.T) {
	v := []float64{3, 4}
	u, n := Normalize(nil, v)
	if n != 5 || !EqualApprox(u, []float64{0.6, 0.8}, 1e-15) {
		t.Errorf("Normalize = %v, %v", u, n)
	}
	z, n := Normalize(nil, []float64{0, 0})
	if n != 0 || !EqualApprox(z, []float64{0, 0}, 0) {
		t.Errorf("Normalize zero vector = %v, %v", z, n)
	}
}

// clampVec maps arbitrary quick-generated values into a sane finite range.
func clampVec(v []float64) []float64 {
	out := make([]float64, 0, len(v))
	for _, x := range v {
		if math.IsNaN(x) || math.IsInf(x, 0) {
			x = 1
		}
		out = append(out, math.Mod(x, 1e6))
	}
	if len(out) == 0 {
		out = []float64{1}
	}
	return out
}

func TestQuickNormAxioms(t *testing.T) {
	norms := []Norm{L1{}, L2{}, LInf{}}
	for _, nm := range norms {
		nm := nm
		// Absolute homogeneity: ‖s v‖ = |s| ‖v‖.
		homog := func(raw []float64, s float64) bool {
			v := clampVec(raw)
			if math.IsNaN(s) || math.IsInf(s, 0) {
				s = 2
			}
			s = math.Mod(s, 1e3)
			lhs := nm.Of(Scale(nil, s, v))
			rhs := math.Abs(s) * nm.Of(v)
			return ScalarEqualApprox(lhs, rhs, 1e-9)
		}
		if err := quick.Check(homog, &quick.Config{MaxCount: 200}); err != nil {
			t.Errorf("%s homogeneity: %v", nm.Name(), err)
		}
		// Triangle inequality: ‖a+b‖ ≤ ‖a‖+‖b‖ (+ slack for rounding).
		tri := func(rawA, rawB []float64) bool {
			a := clampVec(rawA)
			b := clampVec(rawB)
			if len(a) != len(b) {
				if len(a) > len(b) {
					a = a[:len(b)]
				} else {
					b = b[:len(a)]
				}
			}
			return nm.Of(Add(nil, a, b)) <= nm.Of(a)+nm.Of(b)+1e-6
		}
		if err := quick.Check(tri, &quick.Config{MaxCount: 200}); err != nil {
			t.Errorf("%s triangle inequality: %v", nm.Name(), err)
		}
		// Positivity: ‖v‖ ≥ 0 and ‖0‖ = 0.
		if nm.Of(make([]float64, 7)) != 0 {
			t.Errorf("%s of zero vector != 0", nm.Name())
		}
	}
}

func TestNormOrdering(t *testing.T) {
	// ‖v‖∞ ≤ ‖v‖₂ ≤ ‖v‖₁ for every vector.
	f := func(raw []float64) bool {
		v := clampVec(raw)
		linf := LInf{}.Of(v)
		l2 := L2{}.Of(v)
		l1 := L1{}.Of(v)
		return linf <= l2*(1+1e-12)+1e-12 && l2 <= l1*(1+1e-12)+1e-12
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Error(err)
	}
}

func TestWeightedL2(t *testing.T) {
	if _, err := NewWeightedL2([]float64{1, 0}); err == nil {
		t.Errorf("zero weight accepted")
	}
	if _, err := NewWeightedL2([]float64{1, -2}); err == nil {
		t.Errorf("negative weight accepted")
	}
	w, err := NewWeightedL2([]float64{4, 9})
	if err != nil {
		t.Fatal(err)
	}
	if got := w.Of([]float64{1, 1}); !ScalarEqualApprox(got, math.Sqrt(13), 1e-12) {
		t.Errorf("weighted norm = %v", got)
	}
	// Unit weights must reduce to the plain Euclidean norm.
	u, _ := NewWeightedL2([]float64{1, 1, 1})
	v := []float64{1, -2, 2}
	if got, want := u.Of(v), Euclidean(v); !ScalarEqualApprox(got, want, 1e-12) {
		t.Errorf("unit-weighted = %v want %v", got, want)
	}
}
