package faults

import (
	"sync"
	"time"
)

// Breaker state and probe defaults applied by NewBreaker.
const (
	// defaultHalfOpenProbes is how many consecutive successful probes
	// close a half-open breaker.
	defaultHalfOpenProbes = 1
)

// breakerState is the classic three-state circuit-breaker automaton.
type breakerState int32

const (
	breakerClosed breakerState = iota
	breakerOpen
	breakerHalfOpen
)

// String renders the state as exported on /debug/vars.
func (s breakerState) String() string {
	switch s {
	case breakerOpen:
		return "open"
	case breakerHalfOpen:
		return "half_open"
	default:
		return "closed"
	}
}

// BreakerConfig tunes one Breaker. Window must be positive; the zero
// values of Probes and Now select one closing probe and the wall clock.
type BreakerConfig struct {
	// Window is the sliding outcome window; the breaker trips only once
	// the window is full.
	Window int
	// Threshold is the failure rate in [0, 1] that opens the breaker.
	Threshold float64
	// Cooldown is how long an open breaker rejects before probing.
	Cooldown time.Duration
	// Probes is how many consecutive half-open successes close it
	// (0 selects one).
	Probes int
	// Now is the clock, stubbed by tests; nil selects time.Now.
	Now func() time.Time
}

// Breaker is a circuit breaker over a sliding failure-rate window,
// guarding one downstream — an engine endpoint in the fepiad server, one
// cluster peer in internal/cluster. Outcomes are reported with Report;
// Allow gates each request. Closed: everything passes and outcomes fill
// the ring. Open: everything is rejected until Cooldown elapses.
// Half-open: one probe at a time reaches the downstream; a probe failure
// reopens, enough successes close and reset the window. Safe for
// concurrent use.
type Breaker struct {
	cfg BreakerConfig

	mu            sync.Mutex
	state         breakerState
	ring          []bool // true = failure
	ringN         int    // outcomes recorded, ≤ len(ring)
	ringI         int    // next write position
	fails         int    // failures currently in the ring
	openedAt      time.Time
	probeOK       int  // consecutive successful probes while half-open
	probeInFlight bool // a half-open probe is at the downstream
	opens         uint64
}

// NewBreaker builds a breaker; cfg.Window must be positive.
func NewBreaker(cfg BreakerConfig) *Breaker {
	if cfg.Now == nil {
		cfg.Now = time.Now
	}
	if cfg.Probes <= 0 {
		cfg.Probes = defaultHalfOpenProbes
	}
	return &Breaker{cfg: cfg, ring: make([]bool, cfg.Window)}
}

// Allow reports whether a request may reach the downstream. In the open
// state it flips to half-open once the cooldown has elapsed and admits a
// single probe; callers that are let through must call Report with the
// outcome (or CancelProbe when no verdict was produced).
func (b *Breaker) Allow() bool {
	b.mu.Lock()
	defer b.mu.Unlock()
	switch b.state {
	case breakerClosed:
		return true
	case breakerOpen:
		if b.cfg.Now().Sub(b.openedAt) < b.cfg.Cooldown {
			return false
		}
		b.state = breakerHalfOpen
		b.probeOK = 0
		b.probeInFlight = true
		return true
	default: // half-open: one probe at a time
		if b.probeInFlight {
			return false
		}
		b.probeInFlight = true
		return true
	}
}

// Report records one downstream outcome. In the closed state it advances
// the sliding window and trips to open when the full window's failure
// rate reaches the threshold. In the half-open state it resolves the
// probe: failure reopens immediately, success counts toward closing.
// Reports landing while open (stragglers admitted before the trip) are
// dropped.
func (b *Breaker) Report(failure bool) {
	b.mu.Lock()
	defer b.mu.Unlock()
	switch b.state {
	case breakerClosed:
		if b.ringN == len(b.ring) {
			if b.ring[b.ringI] {
				b.fails--
			}
		} else {
			b.ringN++
		}
		b.ring[b.ringI] = failure
		if failure {
			b.fails++
		}
		b.ringI = (b.ringI + 1) % len(b.ring)
		if b.ringN == len(b.ring) && float64(b.fails) >= b.cfg.Threshold*float64(len(b.ring)) {
			b.trip()
		}
	case breakerHalfOpen:
		b.probeInFlight = false
		if failure {
			b.trip()
			return
		}
		b.probeOK++
		if b.probeOK >= b.cfg.Probes {
			b.state = breakerClosed
			b.reset()
		}
	}
}

// CancelProbe returns a half-open probe slot without counting an
// outcome: the request Allow admitted never produced a downstream
// verdict (it was shed at admission, or failed for a client-side
// reason). A no-op in every other state, so stragglers from a previous
// era cannot disturb a later probe.
func (b *Breaker) CancelProbe() {
	b.mu.Lock()
	defer b.mu.Unlock()
	if b.state == breakerHalfOpen {
		b.probeInFlight = false
	}
}

// trip opens the breaker and clears the window for the next closed era.
func (b *Breaker) trip() {
	b.state = breakerOpen
	b.openedAt = b.cfg.Now()
	b.opens++
	b.probeInFlight = false
	b.reset()
}

// reset clears the sliding window (caller holds the lock).
func (b *Breaker) reset() {
	for i := range b.ring {
		b.ring[i] = false
	}
	b.ringN, b.ringI, b.fails = 0, 0, 0
}

// BreakerSnapshot is the /debug/vars view of one breaker.
type BreakerSnapshot struct {
	// State is "closed", "open", or "half_open".
	State string `json:"state"`
	// Failures and Samples describe the sliding window's current content;
	// Window is its capacity.
	Failures int `json:"failures"`
	// Samples is the number of outcomes currently recorded in the window.
	Samples int `json:"samples"`
	// Window is the sliding window capacity.
	Window int `json:"window"`
	// Opens counts trips over the breaker's lifetime.
	Opens uint64 `json:"opens"`
}

// Snapshot returns a consistent point-in-time view.
func (b *Breaker) Snapshot() BreakerSnapshot {
	b.mu.Lock()
	defer b.mu.Unlock()
	return BreakerSnapshot{
		State:    b.state.String(),
		Failures: b.fails,
		Samples:  b.ringN,
		Window:   len(b.ring),
		Opens:    b.opens,
	}
}
