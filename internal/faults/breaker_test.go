package faults

import (
	"testing"
	"time"
)

// testClock is a manually advanced clock for driving breaker cooldowns
// without sleeping.
type testClock struct{ t time.Time }

func (c *testClock) now() time.Time          { return c.t }
func (c *testClock) advance(d time.Duration) { c.t = c.t.Add(d) }

func testBreaker(window int, threshold float64, cooldown time.Duration) (*Breaker, *testClock) {
	clk := &testClock{t: time.Unix(1000, 0)}
	b := NewBreaker(BreakerConfig{Window: window, Threshold: threshold, Cooldown: cooldown, Now: clk.now})
	return b, clk
}

func TestBreakerTripsOnlyOnFullWindow(t *testing.T) {
	b, _ := testBreaker(4, 0.5, time.Minute)
	// Three straight failures: window not yet full, must stay closed.
	for i := 0; i < 3; i++ {
		if !b.Allow() {
			t.Fatalf("closed breaker rejected request %d", i)
		}
		b.Report(true)
	}
	if snap := b.Snapshot(); snap.State != "closed" || snap.Failures != 3 || snap.Samples != 3 {
		t.Fatalf("before full window: %+v", snap)
	}
	// The fourth outcome fills the window; even though it is a success,
	// 3/4 ≥ 0.5 trips the breaker.
	b.Report(false)
	if snap := b.Snapshot(); snap.State != "open" || snap.Opens != 1 {
		t.Fatalf("full failing window did not open the breaker: %+v", snap)
	}
	if b.Allow() {
		t.Fatal("open breaker admitted a request before cooldown")
	}
}

func TestBreakerStaysClosedUnderThreshold(t *testing.T) {
	b, _ := testBreaker(4, 0.5, time.Minute)
	// Alternate success/failure: 1/4 and 2/4 windows briefly, but keep the
	// rate below threshold by reporting 1 failure per 4 outcomes.
	outcomes := []bool{true, false, false, false, true, false, false, false}
	for i, f := range outcomes {
		if !b.Allow() {
			t.Fatalf("request %d rejected", i)
		}
		b.Report(f)
	}
	if snap := b.Snapshot(); snap.State != "closed" {
		t.Fatalf("25%% failure rate tripped a 50%% threshold: %+v", snap)
	}
}

func TestBreakerWindowSlides(t *testing.T) {
	b, _ := testBreaker(4, 0.5, time.Minute)
	// An early failure scrolls out of the window as successes keep
	// arriving; the breaker must never open and the failure count must
	// return to zero once the failure has slid out.
	for _, f := range []bool{true, false, false, false, false} {
		b.Report(f)
	}
	if snap := b.Snapshot(); snap.State != "closed" || snap.Failures != 0 {
		t.Fatalf("old failures did not slide out: %+v", snap)
	}
}

func TestBreakerHalfOpenProbeCycle(t *testing.T) {
	b, clk := testBreaker(2, 0.5, time.Minute)
	b.Report(true)
	b.Report(true)
	if snap := b.Snapshot(); snap.State != "open" {
		t.Fatalf("want open, got %+v", snap)
	}
	if b.Allow() {
		t.Fatal("admitted during cooldown")
	}
	clk.advance(time.Minute)
	// Cooldown elapsed: exactly one probe is admitted.
	if !b.Allow() {
		t.Fatal("probe not admitted after cooldown")
	}
	if snap := b.Snapshot(); snap.State != "half_open" {
		t.Fatalf("want half_open, got %+v", snap)
	}
	if b.Allow() {
		t.Fatal("second concurrent probe admitted")
	}
	// Probe fails: straight back to open, new cooldown era.
	b.Report(true)
	if snap := b.Snapshot(); snap.State != "open" || snap.Opens != 2 {
		t.Fatalf("failed probe did not reopen: %+v", snap)
	}
	if b.Allow() {
		t.Fatal("admitted right after reopening")
	}
	clk.advance(time.Minute)
	if !b.Allow() {
		t.Fatal("second probe not admitted")
	}
	// Probe succeeds: closed with a clean window.
	b.Report(false)
	snap := b.Snapshot()
	if snap.State != "closed" || snap.Failures != 0 || snap.Samples != 0 {
		t.Fatalf("successful probe did not close and reset: %+v", snap)
	}
	if !b.Allow() {
		t.Fatal("closed breaker rejected")
	}
}

func TestBreakerCancelProbeReleasesSlot(t *testing.T) {
	b, clk := testBreaker(2, 0.5, time.Minute)
	b.Report(true)
	b.Report(true) // trips
	clk.advance(time.Minute)
	if !b.Allow() {
		t.Fatal("probe not admitted after cooldown")
	}
	if b.Allow() {
		t.Fatal("second concurrent probe admitted")
	}
	// The probe never reached the downstream (shed at admission, or the
	// client went away): CancelProbe must return the slot with no
	// outcome counted, or the breaker wedges half-open forever.
	b.CancelProbe()
	if snap := b.Snapshot(); snap.State != "half_open" {
		t.Fatalf("CancelProbe changed state: %+v", snap)
	}
	if !b.Allow() {
		t.Fatal("probe slot not released by CancelProbe")
	}
	// The re-admitted probe still resolves the half-open era normally.
	b.Report(false)
	if snap := b.Snapshot(); snap.State != "closed" {
		t.Fatalf("probe after cancel did not close the breaker: %+v", snap)
	}
}

func TestBreakerCancelProbeNoopOutsideHalfOpen(t *testing.T) {
	b, _ := testBreaker(2, 0.5, time.Minute)
	// Closed: nothing to release.
	b.CancelProbe()
	if !b.Allow() {
		t.Fatal("closed breaker rejected after CancelProbe")
	}
	b.Report(true)
	b.Report(true) // trips
	// Open, cooldown running: a straggler's cancel must not admit early.
	b.CancelProbe()
	if b.Allow() {
		t.Fatal("CancelProbe while open admitted a request before cooldown")
	}
}

func TestBreakerDropsStragglersWhileOpen(t *testing.T) {
	b, _ := testBreaker(2, 0.5, time.Minute)
	b.Report(true)
	b.Report(true) // trips
	// A request admitted before the trip reports late: must not disturb
	// the open state or the next closed era's window.
	b.Report(false)
	b.Report(true)
	if snap := b.Snapshot(); snap.State != "open" || snap.Samples != 0 || snap.Failures != 0 {
		t.Fatalf("straggler reports disturbed the open breaker: %+v", snap)
	}
}
