package faults

import (
	"context"
	"errors"
	"math/rand"
	"sync"
	"time"

	"fepia/internal/core"
	"fepia/internal/spec"
)

// Retry policy defaults.
const (
	// DefaultRetryBase is the first backoff delay.
	DefaultRetryBase = 2 * time.Millisecond
	// DefaultRetryMax caps a single backoff delay.
	DefaultRetryMax = 50 * time.Millisecond
)

// temporary is the convention foreign transient errors may implement.
type temporary interface{ Temporary() bool }

// Retryable is the default transient-failure classifier of the retry
// policy. It is deliberately conservative: an error is retryable only
// when something in its chain positively marks it transient (an injected
// transient fault, or any error implementing Temporary() bool returning
// true). Permanent failures — context cancellation, deadline expiry,
// spec validation errors, and unsupported-norm requests — are never
// retryable, even deep inside %w wrapping or errors.Join trees, and they
// veto any transient marker joined alongside them.
func Retryable(err error) bool {
	if err == nil {
		return false
	}
	// Permanent classes veto first, so a joined [Canceled, transient]
	// chain is never retried.
	if errors.Is(err, context.Canceled) || errors.Is(err, context.DeadlineExceeded) {
		return false
	}
	if errors.Is(err, spec.ErrInvalidSpec) {
		return false
	}
	var ve *spec.ValidationError
	if errors.As(err, &ve) {
		return false
	}
	if errors.Is(err, core.ErrNormUnsupported) {
		return false
	}
	var ie *InjectedError
	if errors.As(err, &ie) {
		return ie.Transient
	}
	var tmp temporary
	if errors.As(err, &tmp) {
		return tmp.Temporary()
	}
	return false
}

// Policy is a capped-attempt, context-aware retry policy with
// decorrelated-jitter backoff (delay_k ∈ [base, min(cap, 3·delay_{k−1})],
// uniformly drawn from a seeded PRNG). A nil *Policy, or MaxAttempts ≤ 1,
// runs the attempt exactly once. Policies are safe for concurrent use
// through a pointer; do not copy one after first use.
type Policy struct {
	// MaxAttempts is the total attempt budget including the first call;
	// values ≤ 1 disable retrying.
	MaxAttempts int
	// BaseDelay is the first backoff (≤ 0 selects DefaultRetryBase).
	BaseDelay time.Duration
	// MaxDelay caps each backoff (≤ 0 selects DefaultRetryMax).
	MaxDelay time.Duration
	// Seed seeds the jitter PRNG so backoff sequences are reproducible
	// (0 selects a fixed default seed).
	Seed int64
	// Classify reports whether an error is worth retrying; nil selects
	// Retryable.
	Classify func(error) bool
	// Sleep waits between attempts; nil selects a context-aware real
	// sleep. Tests stub it to run backoff without wall-clock delay.
	Sleep func(ctx context.Context, d time.Duration) error
	// OnRetry, when non-nil, observes each re-attempt (the fepiad server
	// counts them on /debug/vars).
	OnRetry func(attempt int, delay time.Duration, err error)

	once sync.Once
	mu   sync.Mutex
	rng  *rand.Rand
}

// Do runs f under the policy: transient failures (per Classify) are
// re-attempted up to MaxAttempts with decorrelated-jitter backoff, and
// ctx cancellation during backoff aborts immediately. The returned error
// is the last attempt's error verbatim — typed errors stay matchable with
// errors.Is/As — except when the backoff sleep itself is cancelled, in
// which case the context error is joined in front of it.
func (p *Policy) Do(ctx context.Context, f func() error) error {
	if p == nil || p.MaxAttempts <= 1 {
		return f()
	}
	base, ceil := p.BaseDelay, p.MaxDelay
	if base <= 0 {
		base = DefaultRetryBase
	}
	if ceil < base {
		ceil = DefaultRetryMax
		if ceil < base {
			ceil = base
		}
	}
	classify := p.Classify
	if classify == nil {
		classify = Retryable
	}
	prev := base
	for attempt := 1; ; attempt++ {
		err := f()
		if err == nil || attempt >= p.MaxAttempts || !classify(err) {
			return err
		}
		// Decorrelated jitter: widen the window from the previous delay,
		// never below base, never above cap.
		hi := 3 * prev
		if hi > ceil {
			hi = ceil
		}
		d := base
		if hi > base {
			d = base + time.Duration(p.rand63n(int64(hi-base)))
		}
		prev = d
		if p.OnRetry != nil {
			p.OnRetry(attempt, d, err)
		}
		if serr := p.sleep(ctx, d); serr != nil {
			return errors.Join(serr, err)
		}
	}
}

// sleep waits d or until ctx is done.
func (p *Policy) sleep(ctx context.Context, d time.Duration) error {
	if p.Sleep != nil {
		return p.Sleep(ctx, d)
	}
	t := time.NewTimer(d)
	defer t.Stop()
	select {
	case <-ctx.Done():
		return ctx.Err()
	case <-t.C:
		return nil
	}
}

// rand63n draws from the policy's seeded jitter PRNG.
func (p *Policy) rand63n(n int64) int64 {
	if n <= 0 {
		return 0
	}
	p.once.Do(func() {
		seed := p.Seed
		if seed == 0 {
			seed = 42
		}
		p.rng = rand.New(rand.NewSource(seed))
	})
	p.mu.Lock()
	defer p.mu.Unlock()
	return p.rng.Int63n(n)
}
