package faults

import (
	"context"
	"errors"
	"fmt"
	"testing"

	"fepia/internal/core"
	"fepia/internal/spec"
)

// FuzzRetryable drives the transient-failure classifier with arbitrary
// error chains assembled from fuzz input: leaf errors of every class the
// stack produces, combined by %w wrapping, errors.Join, and the typed
// wrappers (core.SolveError, core.RecoveredSolveError). The invariants
// under test are the safety guarantees of the retry layer:
//
//  1. a chain containing context.Canceled (or DeadlineExceeded) is never
//     retryable — a cancelled request must not be re-run;
//  2. a chain containing a *spec.ValidationError (or spec.ErrInvalidSpec)
//     is never retryable — resubmitting an invalid document cannot help;
//  3. a chain with no transient marker anywhere is never retryable — the
//     classifier stays conservative by default.
func FuzzRetryable(f *testing.F) {
	f.Add([]byte{0, 1, 2})
	f.Add([]byte{8, 0, 9, 1, 10})      // wrap(canceled), join(validation, transient)
	f.Add([]byte{10, 10, 10, 10})      // deep join of transients
	f.Add([]byte{12, 4, 11, 0, 13, 2}) // typed wrappers around permanents
	f.Fuzz(func(t *testing.T, program []byte) {
		if len(program) > 64 {
			program = program[:64]
		}
		err, hasPermanent := buildChain(program)
		if err == nil {
			return
		}
		got := Retryable(err)
		if hasPermanent && got {
			t.Fatalf("chain with a permanent class classified retryable: %v", err)
		}
		// Independent of how the chain was built: Is/As see through every
		// combinator used above, so these must agree with the classifier.
		var ve *spec.ValidationError
		if (errors.Is(err, context.Canceled) || errors.As(err, &ve)) && got {
			t.Fatalf("canceled/validation present yet retryable: %v", err)
		}
		if !hasTransientMarker(err) && got {
			t.Fatalf("no transient marker in chain yet retryable: %v", err)
		}
	})
}

// buildChain interprets the fuzz bytes as a tiny stack program: opcodes
// 0–7 push leaf errors, 8+ combine what is on the stack. It returns the
// resulting chain and whether any permanent-class leaf went into it.
func buildChain(program []byte) (error, bool) {
	var (
		stack     []error
		permanent bool
	)
	push := func(e error, perm bool) {
		stack = append(stack, e)
		permanent = permanent || perm
	}
	pop := func() error {
		if len(stack) == 0 {
			return nil
		}
		e := stack[len(stack)-1]
		stack = stack[:len(stack)-1]
		return e
	}
	for _, op := range program {
		switch op % 14 {
		case 0:
			push(context.Canceled, true)
		case 1:
			push(context.DeadlineExceeded, true)
		case 2:
			push(&spec.ValidationError{Path: "features[0]", Msg: "fuzz"}, true)
		case 3:
			push(spec.ErrInvalidSpec, true)
		case 4:
			push(core.ErrNormUnsupported, true)
		case 5:
			push(errors.New("opaque"), false)
		case 6:
			push(&InjectedError{Point: Solve, Kind: KindError, Transient: true}, false)
		case 7:
			push(&InjectedError{Point: Solve, Kind: KindCancel, Err: context.Canceled}, true)
		case 8: // %w-wrap top of stack
			if e := pop(); e != nil {
				push(fmt.Errorf("layer: %w", e), false)
			}
		case 9, 10: // join top two (order differs by opcode)
			a, b := pop(), pop()
			switch {
			case a != nil && b != nil && op%14 == 9:
				push(errors.Join(a, b), false)
			case a != nil && b != nil:
				push(errors.Join(b, a), false)
			case a != nil:
				push(a, false)
			case b != nil:
				push(b, false)
			}
		case 11: // typed solve wrapper
			if e := pop(); e != nil {
				push(&core.SolveError{Feature: "f", Err: e}, false)
			}
		case 12: // recovered panic carrying the top error
			if e := pop(); e != nil {
				push(core.RecoveredSolveError("f", e), false)
			}
		case 13: // recovered panic with a non-error payload
			push(core.RecoveredSolveError("f", "slice bounds"), false)
		}
	}
	// Fold whatever is left into one chain.
	var out error
	for _, e := range stack {
		if out == nil {
			out = e
		} else {
			out = errors.Join(out, e)
		}
	}
	return out, permanent
}

// hasTransientMarker walks the full chain (including Join fan-out)
// looking for anything the classifier could legitimately treat as
// transient.
func hasTransientMarker(err error) bool {
	if err == nil {
		return false
	}
	var ie *InjectedError
	if errors.As(err, &ie) && ie.Transient {
		return true
	}
	var tmp temporary
	if errors.As(err, &tmp) && tmp.Temporary() {
		return true
	}
	switch u := err.(type) {
	case interface{ Unwrap() error }:
		return hasTransientMarker(u.Unwrap())
	case interface{ Unwrap() []error }:
		for _, e := range u.Unwrap() {
			if hasTransientMarker(e) {
				return true
			}
		}
	}
	return false
}
