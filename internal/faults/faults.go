// Package faults is the deterministic, seeded fault-injection harness of
// the analysis stack — the perturbation generator the serving pipeline
// applies to *itself*. The paper quantifies how an allocation tolerates
// perturbation of its inputs (Eq. 1–2); this package perturbs the system
// that computes the metric, so the resilience layer around it (per-task
// panic isolation in internal/batch, the retry policy below, the circuit
// breaker and degraded mode in internal/server) can be driven through
// reproducible fault schedules and held to the engine's determinism
// contract: wherever a response is produced, it is byte-identical to the
// fault-free run.
//
// Injection sites are named Points. Production code marks a site with one
// call — faults.Inject(ctx, faults.Solve) — which is a no-op unless an
// Injector was attached to the context with faults.With; without one the
// cost is a single context lookup, so the harness stays out of the hot
// path in production builds.
//
// A firing fault takes one of four Kinds: an injected transient error, a
// panic (recovered per-task by the batch engine), a latency spike, or a
// simulated context cancellation. Errors and recovered panics surface as
// *InjectedError values, which the retry classifier recognises as
// transient; cancel faults wrap context.Canceled and must never be
// retried.
package faults

import (
	"context"
	"fmt"
	"time"
)

// Point names an injection site in the analysis stack.
type Point string

const (
	// Solve fires before each per-feature radius computation
	// (batch.AnalyzeOneContext).
	Solve Point = "solve"
	// CacheGet fires before a radius-cache lookup (batch.Cache).
	CacheGet Point = "cache_get"
	// CachePut fires before a radius-cache insert; a put fault costs only
	// future hits — the computed result is still returned.
	CachePut Point = "cache_put"
	// WorkerSpawn fires as the batch worker pool starts each worker past
	// the first; a fault means that worker is never born and the
	// remaining workers drain the queue.
	WorkerSpawn Point = "worker_spawn"
	// Admission fires in the fepiad admission gate; a fault sheds the
	// request with 503 + Retry-After exactly like saturation.
	Admission Point = "admission"
	// SnapshotWrite fires before the fepiad cache snapshotter persists
	// to disk; a fault loses that snapshot (the previous good file
	// survives untouched) and never affects request serving.
	SnapshotWrite Point = "snapshot_write"
)

// Points lists every injection site, in a fixed order.
var Points = []Point{Solve, CacheGet, CachePut, WorkerSpawn, Admission, SnapshotWrite}

// Kind is the failure mode a firing fault takes.
type Kind string

const (
	// KindError delivers a transient *InjectedError.
	KindError Kind = "error"
	// KindPanic panics with an *InjectedError value. At panic-unsafe
	// points (WorkerSpawn, Admission, SnapshotWrite — no per-task
	// recovery scope above them) injectors downgrade it to KindError.
	KindPanic Kind = "panic"
	// KindLatency sleeps for the configured spike, then succeeds.
	KindLatency Kind = "latency"
	// KindCancel delivers an *InjectedError wrapping context.Canceled —
	// a permanent failure the retry layer must not retry.
	KindCancel Kind = "cancel"
)

// Kinds lists every fault kind, in a fixed order. The seeded injector
// draws in this order so a schedule is reproducible for a given seed,
// and the fepiad metrics registry enumerates it to expose
// injected-fault counters by point and kind.
var Kinds = []Kind{KindError, KindPanic, KindLatency, KindCancel}

// kindOrder is the internal alias the injectors iterate.
var kindOrder = Kinds

// InjectedError is the failure delivered by error-, panic-, and
// cancel-kind faults. The batch engine recovers panic-kind values into
// typed *core.SolveError wrappers, so an InjectedError stays reachable
// with errors.As from every layer above the injection site.
type InjectedError struct {
	// Point is the site that fired.
	Point Point
	// Kind is the delivered failure mode.
	Kind Kind
	// Seq is the injector's 1-based call sequence number that fired, for
	// correlating a failure with a schedule.
	Seq uint64
	// Transient reports whether a retry may succeed; the Retryable
	// classifier keys on it.
	Transient bool
	// Err is the underlying error for faults that simulate one
	// (context.Canceled for KindCancel), nil otherwise.
	Err error
}

// Error renders "faults: injected <kind> at <point> (call <n>)".
func (e *InjectedError) Error() string {
	return fmt.Sprintf("faults: injected %s at %s (call %d)", e.Kind, e.Point, e.Seq)
}

// Unwrap exposes the simulated underlying error, if any.
func (e *InjectedError) Unwrap() error { return e.Err }

// Temporary reports Transient — the net-package convention the retry
// classifier also accepts from foreign error types.
func (e *InjectedError) Temporary() bool { return e.Transient }

// Injector decides, per call, whether a fault fires at an injection
// point. Inject returns nil (no fault, or a latency spike that already
// elapsed), returns an error (error/cancel fault), or panics with an
// *InjectedError (panic fault). Implementations must be safe for
// concurrent use and must deliver panic-kind faults at WorkerSpawn and
// Admission as errors instead — those sites cannot recover a panic
// per-task.
type Injector interface {
	Inject(ctx context.Context, p Point) error
}

// ctxKey carries the context's injector.
type ctxKey struct{}

// With returns a context carrying inj; a nil inj returns ctx unchanged.
// Every downstream Inject call on the returned context consults inj.
func With(ctx context.Context, inj Injector) context.Context {
	if inj == nil {
		return ctx
	}
	return context.WithValue(ctx, ctxKey{}, inj)
}

// From returns the context's injector, or nil when none is attached.
func From(ctx context.Context) Injector {
	inj, _ := ctx.Value(ctxKey{}).(Injector)
	return inj
}

// Inject fires the context's injector at p. Without an injector it is a
// no-op — the production fast path.
func Inject(ctx context.Context, p Point) error {
	if inj := From(ctx); inj != nil {
		return inj.Inject(ctx, p)
	}
	return nil
}

// deliver realises a chosen fault kind at a point: the shared action of
// every injector in this package.
func deliver(ctx context.Context, p Point, k Kind, seq uint64, latency time.Duration) error {
	switch k {
	case KindLatency:
		if latency <= 0 {
			latency = time.Millisecond
		}
		t := time.NewTimer(latency)
		defer t.Stop()
		select {
		case <-ctx.Done():
			return ctx.Err()
		case <-t.C:
			return nil
		}
	case KindCancel:
		return &InjectedError{Point: p, Kind: KindCancel, Seq: seq, Err: context.Canceled}
	case KindPanic:
		if p == WorkerSpawn || p == Admission || p == SnapshotWrite {
			// Panic-unsafe sites: downgrade (see Injector contract).
			return &InjectedError{Point: p, Kind: KindError, Seq: seq, Transient: true}
		}
		panic(&InjectedError{Point: p, Kind: KindPanic, Seq: seq, Transient: true})
	default:
		return &InjectedError{Point: p, Kind: KindError, Seq: seq, Transient: true}
	}
}
