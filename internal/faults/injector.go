package faults

import (
	"context"
	"fmt"
	"math/rand"
	"strconv"
	"strings"
	"sync"
	"time"
)

// Config schedules faults for a Seeded injector.
type Config struct {
	// Rates maps an injection point to the per-call probability, in
	// [0, 1], of each fault kind firing there. Kinds at one point are
	// mutually exclusive per call; their rates should sum to ≤ 1.
	Rates map[Point]map[Kind]float64
	// Latency is the sleep applied by latency faults (≤ 0 selects 1ms).
	Latency time.Duration
	// MaxFaults, when > 0, bounds the total faults delivered; afterwards
	// the injector goes quiet. Chaos tests use it so every schedule
	// eventually lets the run converge to the fault-free result.
	MaxFaults int
}

// Stats counts delivered faults by point and kind.
type Stats map[Point]map[Kind]uint64

// Total sums every counter.
func (s Stats) Total() uint64 {
	var n uint64
	for _, kinds := range s {
		for _, c := range kinds {
			n += c
		}
	}
	return n
}

// Seeded is a probabilistic injector whose decision sequence is drawn
// from one seeded PRNG: the k-th Inject call that consults the schedule
// makes the same decision for a given seed, regardless of which goroutine
// makes it (a mutex serialises draws; placement across goroutines still
// follows the scheduler, which is why chaos assertions are phrased as
// invariants, not positions). Safe for concurrent use.
type Seeded struct {
	mu        sync.Mutex
	rng       *rand.Rand
	cfg       Config
	seq       uint64
	delivered int
	counts    Stats
}

// NewSeeded builds a Seeded injector for the given schedule.
func NewSeeded(seed int64, cfg Config) *Seeded {
	return &Seeded{rng: rand.New(rand.NewSource(seed)), cfg: cfg, counts: make(Stats)}
}

// Inject implements Injector.
func (s *Seeded) Inject(ctx context.Context, p Point) error {
	s.mu.Lock()
	s.seq++
	seq := s.seq
	rates := s.cfg.Rates[p]
	if len(rates) == 0 || (s.cfg.MaxFaults > 0 && s.delivered >= s.cfg.MaxFaults) {
		s.mu.Unlock()
		return nil
	}
	u := s.rng.Float64()
	kind, fired := Kind(""), false
	for _, k := range kindOrder {
		r := rates[k]
		if r <= 0 {
			continue
		}
		if u < r {
			kind, fired = k, true
			break
		}
		u -= r
	}
	if fired {
		s.delivered++
		if s.counts[p] == nil {
			s.counts[p] = make(map[Kind]uint64)
		}
		s.counts[p][kind]++
	}
	latency := s.cfg.Latency
	s.mu.Unlock()
	if !fired {
		return nil
	}
	return deliver(ctx, p, kind, seq, latency)
}

// Stats returns a copy of the delivered-fault counters.
func (s *Seeded) Stats() Stats {
	s.mu.Lock()
	defer s.mu.Unlock()
	out := make(Stats, len(s.counts))
	for p, kinds := range s.counts {
		out[p] = make(map[Kind]uint64, len(kinds))
		for k, c := range kinds {
			out[p][k] = c
		}
	}
	return out
}

// Delivered returns the total number of faults delivered so far.
func (s *Seeded) Delivered() int {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.delivered
}

// Script is an exact-schedule injector for tests: the n-th Inject call at
// point p (1-based, counted per point) delivers the planned kind. With a
// single worker the per-point call order is deterministic, so a Script
// pins a fault to a known task. Safe for concurrent use.
type Script struct {
	// Latency is the latency-fault sleep (≤ 0 selects 1ms).
	Latency time.Duration

	mu    sync.Mutex
	plan  map[Point]map[uint64]Kind
	calls map[Point]uint64
}

// NewScript returns an empty script; populate it with At.
func NewScript() *Script {
	return &Script{plan: make(map[Point]map[uint64]Kind), calls: make(map[Point]uint64)}
}

// At schedules kind k on the call-th Inject call at p and returns the
// script for chaining.
func (s *Script) At(p Point, call int, k Kind) *Script {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.plan[p] == nil {
		s.plan[p] = make(map[uint64]Kind)
	}
	s.plan[p][uint64(call)] = k
	return s
}

// Calls reports how many times point p has been consulted.
func (s *Script) Calls(p Point) uint64 {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.calls[p]
}

// Inject implements Injector.
func (s *Script) Inject(ctx context.Context, p Point) error {
	s.mu.Lock()
	s.calls[p]++
	n := s.calls[p]
	kind, fired := s.plan[p][n]
	latency := s.Latency
	s.mu.Unlock()
	if !fired {
		return nil
	}
	return deliver(ctx, p, kind, n, latency)
}

// ParseSchedule builds a Seeded injector from a compact schedule string —
// the FEPIAD_FAULTS env knob of cmd/fepiad. The format is
// semicolon-separated tokens:
//
//	seed=7;max=100;latency=5ms;solve:error=0.05;cache_put:panic=0.01
//
// where point:kind=rate schedules a fault and seed/max/latency set the
// PRNG seed, the delivered-fault bound, and the latency spike. An empty
// string returns (nil, nil): injection disabled.
func ParseSchedule(s string) (*Seeded, error) {
	s = strings.TrimSpace(s)
	if s == "" {
		return nil, nil
	}
	var (
		seed int64 = 1
		cfg        = Config{Rates: make(map[Point]map[Kind]float64)}
	)
	for _, tok := range strings.Split(s, ";") {
		tok = strings.TrimSpace(tok)
		if tok == "" {
			continue
		}
		name, val, ok := strings.Cut(tok, "=")
		if !ok {
			return nil, fmt.Errorf("faults: schedule token %q: want name=value", tok)
		}
		switch name {
		case "seed":
			n, err := strconv.ParseInt(val, 10, 64)
			if err != nil {
				return nil, fmt.Errorf("faults: schedule seed %q: %v", val, err)
			}
			seed = n
		case "max":
			n, err := strconv.Atoi(val)
			if err != nil || n < 0 {
				return nil, fmt.Errorf("faults: schedule max %q: want a non-negative integer", val)
			}
			cfg.MaxFaults = n
		case "latency":
			d, err := time.ParseDuration(val)
			if err != nil {
				return nil, fmt.Errorf("faults: schedule latency %q: %v", val, err)
			}
			cfg.Latency = d
		default:
			pt, kd, ok := strings.Cut(name, ":")
			if !ok {
				return nil, fmt.Errorf("faults: schedule token %q: want point:kind=rate", tok)
			}
			point, kind := Point(pt), Kind(kd)
			if !validPoint(point) {
				return nil, fmt.Errorf("faults: unknown injection point %q", pt)
			}
			if !validKind(kind) {
				return nil, fmt.Errorf("faults: unknown fault kind %q", kd)
			}
			rate, err := strconv.ParseFloat(val, 64)
			if err != nil || rate < 0 || rate > 1 {
				return nil, fmt.Errorf("faults: rate %q for %s: want a probability in [0, 1]", val, name)
			}
			if cfg.Rates[point] == nil {
				cfg.Rates[point] = make(map[Kind]float64)
			}
			cfg.Rates[point][kind] = rate
		}
	}
	// Kinds at one point are mutually exclusive per call (the Config
	// contract): rates summing past 1 would silently starve later kinds
	// in the draw order rather than fire as written.
	for point, kinds := range cfg.Rates {
		var sum float64
		for _, r := range kinds {
			sum += r
		}
		if sum > 1+1e-9 {
			return nil, fmt.Errorf("faults: rates at point %s sum to %g: want ≤ 1", point, sum)
		}
	}
	return NewSeeded(seed, cfg), nil
}

func validPoint(p Point) bool {
	for _, q := range Points {
		if p == q {
			return true
		}
	}
	return false
}

func validKind(k Kind) bool {
	for _, q := range kindOrder {
		if k == q {
			return true
		}
	}
	return false
}
