// Chaos suite for the batch engine: seeded fault schedules driven through
// the real analysis pipeline, asserting the resilience layer's central
// contract — wherever a result is produced, it is byte-identical to the
// fault-free run, and a failing item never takes the rest of the batch
// with it. FEPIA_CHAOS_SEED pins the seeded schedule for reproducing a
// failure (`make chaos` sets it).
package faults_test

import (
	"context"
	"errors"
	"fmt"
	"os"
	"reflect"
	"strconv"
	"testing"
	"time"

	"fepia/internal/batch"
	"fepia/internal/core"
	"fepia/internal/faults"
)

// chaosJobs builds n small linear-feature jobs (finish-time style
// hyperplanes) cheap enough to re-solve many times under fault schedules.
func chaosJobs(t testing.TB, n int) []batch.Job {
	t.Helper()
	jobs := make([]batch.Job, n)
	for i := range jobs {
		feats := make([]core.Feature, 3)
		for j := range feats {
			imp, err := core.NewLinearImpact([]float64{
				1 + float64((i+j)%4), 0.5 * float64(1+j), 2,
			}, 0.25*float64(j))
			if err != nil {
				t.Fatal(err)
			}
			feats[j] = core.Feature{
				Name:   fmt.Sprintf("finish(m%d)", j),
				Impact: imp,
				Bounds: core.NoMin(40 + float64(5*i+j)),
			}
		}
		jobs[i] = batch.Job{
			Features: feats,
			Perturbation: core.Perturbation{
				Name: fmt.Sprintf("C%d", i),
				Orig: []float64{1 + 0.1*float64(i), 2, 3},
			},
		}
	}
	return jobs
}

// baseline runs the batch fault-free.
func baseline(t testing.TB, jobs []batch.Job) []core.Analysis {
	t.Helper()
	want, err := batch.Analyze(context.Background(), jobs, batch.Options{Workers: 4, Cache: batch.NewCache(0)})
	if err != nil {
		t.Fatal(err)
	}
	return want
}

// chaosSeeds returns the seeds to sweep; FEPIA_CHAOS_SEED pins one.
func chaosSeeds(t testing.TB) []int64 {
	if v := os.Getenv("FEPIA_CHAOS_SEED"); v != "" {
		seed, err := strconv.ParseInt(v, 10, 64)
		if err != nil {
			t.Fatalf("FEPIA_CHAOS_SEED=%q: %v", v, err)
		}
		return []int64{seed}
	}
	return []int64{1, 7, 42}
}

// noSleep removes backoff wall-clock time from chaos runs.
func noSleep(context.Context, time.Duration) error { return nil }

// TestChaosSeededConvergesToBaseline is the headline invariant: under any
// bounded schedule of error, panic, and latency faults at every engine
// injection point, the batch — with retry enabled — still produces results
// byte-identical to the fault-free run. MaxFaults bounds the schedule so
// the injector eventually goes quiet; a retry budget above that bound
// guarantees convergence for any seed.
func TestChaosSeededConvergesToBaseline(t *testing.T) {
	jobs := chaosJobs(t, 12)
	want := baseline(t, jobs)
	for _, seed := range chaosSeeds(t) {
		seed := seed
		t.Run(fmt.Sprintf("seed=%d", seed), func(t *testing.T) {
			const maxFaults = 40
			inj := faults.NewSeeded(seed, faults.Config{
				Rates: map[faults.Point]map[faults.Kind]float64{
					faults.Solve:       {faults.KindError: 0.2, faults.KindPanic: 0.1, faults.KindLatency: 0.05},
					faults.CacheGet:    {faults.KindError: 0.15},
					faults.CachePut:    {faults.KindError: 0.15},
					faults.WorkerSpawn: {faults.KindError: 0.5},
				},
				Latency:   50 * time.Microsecond,
				MaxFaults: maxFaults,
			})
			opts := batch.Options{
				Workers: 4,
				Cache:   batch.NewCache(0),
				Retry:   &faults.Policy{MaxAttempts: maxFaults + 2, Sleep: noSleep, Seed: seed},
			}
			ctx := faults.With(context.Background(), inj)
			got, err := batch.Analyze(ctx, jobs, opts)
			if err != nil {
				t.Fatalf("batch did not converge under schedule: %v", err)
			}
			if !reflect.DeepEqual(got, want) {
				t.Fatalf("results under faults differ from fault-free baseline")
			}
			if inj.Delivered() == 0 {
				t.Fatalf("schedule delivered no faults — test exercised nothing")
			}
			t.Logf("converged through %d injected faults: %v", inj.Delivered(), inj.Stats())
		})
	}
}

// TestChaosPanicIsolation pins a panic fault to one known item (Workers: 1
// and one injection per feature make the per-point call order
// deterministic) and asserts, via AnalyzeAll, that only that item fails —
// with a typed, fully unwrappable error — while every other slot is
// byte-identical to the baseline.
func TestChaosPanicIsolation(t *testing.T) {
	jobs := chaosJobs(t, 6)
	want := baseline(t, jobs)
	// Features are solved in order, 3 per job: solve call 8 is job 2's
	// second feature.
	const victim = 2
	script := faults.NewScript().At(faults.Solve, victim*3+2, faults.KindPanic)
	ctx := faults.With(context.Background(), script)
	results := batch.AnalyzeAll(ctx, jobs, batch.Options{Workers: 1})
	for i, r := range results {
		if i == victim {
			if r.Err == nil {
				t.Fatalf("item %d: scripted panic produced no error", i)
			}
			if !errors.Is(r.Err, core.ErrSolvePanic) {
				t.Fatalf("item %d: error does not wrap ErrSolvePanic: %v", i, r.Err)
			}
			var se *core.SolveError
			if !errors.As(r.Err, &se) || se.Feature != jobs[i].Features[1].Name {
				t.Fatalf("item %d: want *core.SolveError for feature %q, got %v", i, jobs[i].Features[1].Name, r.Err)
			}
			var ie *faults.InjectedError
			if !errors.As(r.Err, &ie) || ie.Kind != faults.KindPanic {
				t.Fatalf("item %d: injected cause lost through recovery: %v", i, r.Err)
			}
			continue
		}
		if r.Err != nil {
			t.Fatalf("item %d: bystander failed: %v", i, r.Err)
		}
		if !reflect.DeepEqual(r.Analysis, want[i]) {
			t.Fatalf("item %d: bystander result differs from baseline", i)
		}
	}
	// The same schedule through fail-fast Analyze aborts with the typed
	// error instead of crashing the process.
	script2 := faults.NewScript().At(faults.Solve, victim*3+2, faults.KindPanic)
	_, err := batch.Analyze(faults.With(context.Background(), script2), jobs, batch.Options{Workers: 1})
	if !errors.Is(err, core.ErrSolvePanic) {
		t.Fatalf("Analyze under scripted panic: %v", err)
	}
}

// TestChaosWorkerSpawnStarvation kills every spawnable worker (rate 1.0):
// the exempt worker 0 must drain the whole queue alone and the results
// must still match the baseline exactly.
func TestChaosWorkerSpawnStarvation(t *testing.T) {
	jobs := chaosJobs(t, 8)
	want := baseline(t, jobs)
	inj := faults.NewSeeded(1, faults.Config{
		Rates: map[faults.Point]map[faults.Kind]float64{
			faults.WorkerSpawn: {faults.KindError: 1.0},
		},
	})
	got, err := batch.Analyze(faults.With(context.Background(), inj), jobs, batch.Options{Workers: 8})
	if err != nil {
		t.Fatalf("starved pool failed the batch: %v", err)
	}
	if !reflect.DeepEqual(got, want) {
		t.Fatalf("starved-pool results differ from baseline")
	}
	if got := inj.Stats()[faults.WorkerSpawn][faults.KindError]; got != 7 {
		t.Fatalf("delivered %d worker_spawn faults, want 7 (workers 1..7)", got)
	}
}

// TestChaosCancelFaultNotRetried: a cancel-kind fault is a permanent
// failure — it must surface as context.Canceled without consuming retry
// budget.
func TestChaosCancelFaultNotRetried(t *testing.T) {
	jobs := chaosJobs(t, 1)
	script := faults.NewScript().At(faults.Solve, 1, faults.KindCancel)
	retried := 0
	opts := batch.Options{
		Workers: 1,
		Retry: &faults.Policy{
			MaxAttempts: 5,
			Sleep:       noSleep,
			OnRetry:     func(int, time.Duration, error) { retried++ },
		},
	}
	_, err := batch.AnalyzeOneContext(faults.With(context.Background(), script), jobs[0], opts)
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("cancel fault did not surface context.Canceled: %v", err)
	}
	var ie *faults.InjectedError
	if !errors.As(err, &ie) || ie.Kind != faults.KindCancel {
		t.Fatalf("injected cancel fault not reachable: %v", err)
	}
	if retried != 0 {
		t.Fatalf("cancel fault consumed %d retries, want 0", retried)
	}
	if calls := script.Calls(faults.Solve); calls != 1 {
		t.Fatalf("solve point consulted %d times, want 1", calls)
	}
}

// TestChaosLatencyOnlyIsInvisible: a schedule of pure latency spikes must
// not change results, error anything, or require retries.
func TestChaosLatencyOnlyIsInvisible(t *testing.T) {
	jobs := chaosJobs(t, 6)
	want := baseline(t, jobs)
	inj := faults.NewSeeded(3, faults.Config{
		Rates: map[faults.Point]map[faults.Kind]float64{
			faults.Solve:    {faults.KindLatency: 0.5},
			faults.CacheGet: {faults.KindLatency: 0.5},
		},
		Latency:   20 * time.Microsecond,
		MaxFaults: 30,
	})
	got, err := batch.Analyze(faults.With(context.Background(), inj), jobs, batch.Options{Workers: 4, Cache: batch.NewCache(0)})
	if err != nil {
		t.Fatalf("latency-only schedule errored: %v", err)
	}
	if !reflect.DeepEqual(got, want) {
		t.Fatalf("latency-only schedule changed results")
	}
	if inj.Delivered() == 0 {
		t.Fatal("schedule delivered no latency spikes")
	}
}
