package faults

import (
	"context"
	"errors"
	"fmt"
	"testing"
	"time"

	"fepia/internal/core"
	"fepia/internal/spec"
)

// noSleep stubs backoff so policy tests run without wall-clock delay.
func noSleep(context.Context, time.Duration) error { return nil }

func transientErr() error {
	return &InjectedError{Point: Solve, Kind: KindError, Transient: true}
}

func TestPolicyRetriesTransientUntilSuccess(t *testing.T) {
	p := &Policy{MaxAttempts: 5, Sleep: noSleep}
	calls := 0
	err := p.Do(context.Background(), func() error {
		calls++
		if calls < 3 {
			return transientErr()
		}
		return nil
	})
	if err != nil || calls != 3 {
		t.Fatalf("err=%v calls=%d, want success on attempt 3", err, calls)
	}
}

func TestPolicyStopsOnPermanentError(t *testing.T) {
	perm := &spec.ValidationError{Path: "features", Msg: "bad"}
	p := &Policy{MaxAttempts: 5, Sleep: noSleep}
	calls := 0
	err := p.Do(context.Background(), func() error { calls++; return perm })
	if calls != 1 {
		t.Fatalf("permanent error retried %d times", calls-1)
	}
	var ve *spec.ValidationError
	if !errors.As(err, &ve) {
		t.Fatalf("typed error lost through the policy: %v", err)
	}
}

func TestPolicyRespectsAttemptCap(t *testing.T) {
	p := &Policy{MaxAttempts: 4, Sleep: noSleep}
	calls := 0
	err := p.Do(context.Background(), func() error { calls++; return transientErr() })
	if calls != 4 {
		t.Fatalf("calls = %d, want exactly MaxAttempts", calls)
	}
	var ie *InjectedError
	if !errors.As(err, &ie) {
		t.Fatalf("last error not returned verbatim: %v", err)
	}
}

func TestPolicyNilAndDisabledRunOnce(t *testing.T) {
	var nilPolicy *Policy
	calls := 0
	if err := nilPolicy.Do(context.Background(), func() error { calls++; return transientErr() }); err == nil || calls != 1 {
		t.Fatalf("nil policy: err=%v calls=%d", err, calls)
	}
	calls = 0
	p := &Policy{MaxAttempts: 1, Sleep: noSleep}
	if err := p.Do(context.Background(), func() error { calls++; return transientErr() }); err == nil || calls != 1 {
		t.Fatalf("MaxAttempts=1: err=%v calls=%d", err, calls)
	}
}

func TestPolicyCancelledBackoffAborts(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	p := &Policy{MaxAttempts: 10, BaseDelay: time.Hour, MaxDelay: time.Hour}
	calls := 0
	done := make(chan error, 1)
	go func() {
		done <- p.Do(ctx, func() error { calls++; return transientErr() })
	}()
	cancel()
	select {
	case err := <-done:
		if !errors.Is(err, context.Canceled) {
			t.Fatalf("err = %v, want context.Canceled in the chain", err)
		}
		// The attempt's own failure must survive the join.
		var ie *InjectedError
		if !errors.As(err, &ie) {
			t.Fatalf("attempt error lost on cancelled backoff: %v", err)
		}
	case <-time.After(5 * time.Second):
		t.Fatal("Do did not abort when the backoff sleep was cancelled")
	}
	if calls != 1 {
		t.Fatalf("calls = %d, want 1 before the hour-long backoff", calls)
	}
}

// TestPolicyDecorrelatedJitterBounds: every backoff delay stays within
// [base, cap], and the same seed reproduces the same delay sequence.
func TestPolicyDecorrelatedJitterBounds(t *testing.T) {
	const base, cap = 2 * time.Millisecond, 20 * time.Millisecond
	sequence := func(seed int64) []time.Duration {
		var delays []time.Duration
		p := &Policy{
			MaxAttempts: 12, BaseDelay: base, MaxDelay: cap, Seed: seed,
			Sleep:   noSleep,
			OnRetry: func(_ int, d time.Duration, _ error) { delays = append(delays, d) },
		}
		_ = p.Do(context.Background(), func() error { return transientErr() })
		return delays
	}
	a, b, c := sequence(7), sequence(7), sequence(8)
	if len(a) != 11 {
		t.Fatalf("%d delays, want MaxAttempts-1", len(a))
	}
	for i, d := range a {
		if d < base || d > cap {
			t.Fatalf("delay %d = %v outside [%v, %v]", i, d, base, cap)
		}
	}
	if fmt.Sprint(a) != fmt.Sprint(b) {
		t.Fatalf("same seed produced different delay sequences:\n%v\n%v", a, b)
	}
	if fmt.Sprint(a) == fmt.Sprint(c) {
		t.Fatalf("different seeds produced identical delay sequences: %v", a)
	}
}

func TestRetryableClassification(t *testing.T) {
	transient := transientErr()
	cancelFault := &InjectedError{Point: Solve, Kind: KindCancel, Err: context.Canceled}
	cases := []struct {
		name string
		err  error
		want bool
	}{
		{"nil", nil, false},
		{"canceled", context.Canceled, false},
		{"deadline", context.DeadlineExceeded, false},
		{"wrapped canceled", fmt.Errorf("rpc: %w", context.Canceled), false},
		{"validation", &spec.ValidationError{Path: "norm", Msg: "bad"}, false},
		{"wrapped validation", fmt.Errorf("parse: %w", &spec.ValidationError{Msg: "bad"}), false},
		{"norm unsupported", core.ErrNormUnsupported, false},
		{"plain error", errors.New("boom"), false},
		{"transient injected", transient, true},
		{"wrapped transient", fmt.Errorf("solve: %w", transient), true},
		{"transient inside SolveError", &core.SolveError{Feature: "f", Err: transient}, true},
		{"recovered transient panic", core.RecoveredSolveError("f", transient), true},
		{"cancel fault", cancelFault, false},
		{"join transient+canceled", errors.Join(transient, context.Canceled), false},
		{"join canceled+transient", errors.Join(context.Canceled, transient), false},
		{"join transient+validation", errors.Join(transient, &spec.ValidationError{Msg: "x"}), false},
		{"join transient+plain", errors.Join(transient, errors.New("boom")), true},
		{"recovered plain panic", core.RecoveredSolveError("f", "index out of range"), false},
	}
	for _, tc := range cases {
		if got := Retryable(tc.err); got != tc.want {
			t.Errorf("%s: Retryable = %v, want %v (err: %v)", tc.name, got, tc.want, tc.err)
		}
	}
}

func TestParseSchedule(t *testing.T) {
	if inj, err := ParseSchedule(""); inj != nil || err != nil {
		t.Fatalf("empty schedule: %v %v", inj, err)
	}
	inj, err := ParseSchedule("seed=7;max=3;latency=5ms;solve:error=1;cache_put:panic=0.5")
	if err != nil || inj == nil {
		t.Fatalf("valid schedule rejected: %v", err)
	}
	// rate 1 at solve: the first three calls fire, then MaxFaults mutes it.
	for i := 0; i < 3; i++ {
		if err := inj.Inject(context.Background(), Solve); err == nil {
			t.Fatalf("call %d: rate-1 schedule did not fire", i)
		}
	}
	if err := inj.Inject(context.Background(), Solve); err != nil {
		t.Fatalf("max=3 not honored: %v", err)
	}
	if got := inj.Stats().Total(); got != 3 {
		t.Fatalf("delivered %d faults, want 3", got)
	}
	for _, bad := range []string{"solve", "nowhere:error=0.1", "solve:explode=0.1", "solve:error=2", "seed=x", "max=-1", "latency=fast",
		// Kind rates at one point must sum to ≤ 1; oversubscribed
		// schedules would silently starve later kinds in the draw order.
		"solve:error=0.8;solve:panic=0.8", "cache_get:error=0.5;cache_get:latency=0.3;cache_get:cancel=0.3"} {
		if _, err := ParseSchedule(bad); err == nil {
			t.Errorf("schedule %q accepted", bad)
		}
	}
	// A point whose rates sum to exactly 1 is fine, as are rates split
	// across different points.
	if _, err := ParseSchedule("solve:error=0.5;solve:panic=0.5;cache_put:error=0.9"); err != nil {
		t.Fatalf("rates summing to 1 rejected: %v", err)
	}
}
