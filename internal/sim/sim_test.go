package sim

import (
	"math"
	"sort"
	"testing"

	"fepia/internal/etcgen"
	"fepia/internal/hcs"
	"fepia/internal/indalloc"
	"fepia/internal/stats"
)

func paperMapping(t *testing.T, seed int64) *hcs.Mapping {
	t.Helper()
	etc, err := etcgen.Generate(stats.NewRNG(seed), etcgen.PaperParams())
	if err != nil {
		t.Fatal(err)
	}
	inst, err := hcs.NewInstance(etc)
	if err != nil {
		t.Fatal(err)
	}
	return hcs.RandomMapping(stats.NewRNG(seed+1), inst)
}

func TestRunMatchesAnalyticFinishingTimes(t *testing.T) {
	// The event loop and Eq. 4 must agree on every machine finish time.
	m := paperMapping(t, 1)
	c := m.ETCVector()
	tr, err := Run(m, c)
	if err != nil {
		t.Fatal(err)
	}
	want := m.FinishingTimes(c)
	for j := range want {
		if math.Abs(tr.MachineFinish[j]-want[j]) > 1e-9 {
			t.Errorf("machine %d: simulated %v analytic %v", j, tr.MachineFinish[j], want[j])
		}
	}
	if math.Abs(tr.Makespan-m.Makespan(c)) > 1e-9 {
		t.Errorf("makespan: simulated %v analytic %v", tr.Makespan, m.Makespan(c))
	}
}

func TestRunTraceStructure(t *testing.T) {
	inst, _ := hcs.NewInstance(etcgen.Matrix{{2, 9}, {3, 9}, {9, 4}})
	m, _ := hcs.NewMapping(inst, []int{0, 0, 1})
	tr, err := Run(m, m.ETCVector())
	if err != nil {
		t.Fatal(err)
	}
	// a0 on m0: [0,2); a1 on m0: [2,5); a2 on m1: [0,4).
	if tr.StartTime[0] != 0 || tr.FinishTime[0] != 2 {
		t.Errorf("a0 times = %v,%v", tr.StartTime[0], tr.FinishTime[0])
	}
	if tr.StartTime[1] != 2 || tr.FinishTime[1] != 5 {
		t.Errorf("a1 times = %v,%v", tr.StartTime[1], tr.FinishTime[1])
	}
	if tr.StartTime[2] != 0 || tr.FinishTime[2] != 4 {
		t.Errorf("a2 times = %v,%v", tr.StartTime[2], tr.FinishTime[2])
	}
	if tr.Makespan != 5 {
		t.Errorf("makespan = %v", tr.Makespan)
	}
	// Each application gets exactly one Start and one Complete, start ≤
	// complete, and per-machine intervals do not overlap.
	starts := map[int]float64{}
	completes := map[int]float64{}
	for _, e := range tr.Events {
		switch e.Kind {
		case Start:
			starts[e.App] = e.Time
		case Complete:
			completes[e.App] = e.Time
		}
		if e.Kind.String() == "" {
			t.Errorf("empty kind string")
		}
	}
	if len(starts) != 3 || len(completes) != 3 {
		t.Fatalf("event counts: %d starts %d completes", len(starts), len(completes))
	}
	for j := 0; j < inst.Machines(); j++ {
		apps := m.OnMachine(j)
		sort.Slice(apps, func(a, b int) bool { return starts[apps[a]] < starts[apps[b]] })
		for i := 1; i < len(apps); i++ {
			if starts[apps[i]] < completes[apps[i-1]]-1e-12 {
				t.Errorf("machine %d overlap between a%d and a%d", j, apps[i-1], apps[i])
			}
		}
	}
}

func TestRunValidation(t *testing.T) {
	m := paperMapping(t, 2)
	if _, err := Run(m, []float64{1}); err == nil {
		t.Errorf("short vector accepted")
	}
	bad := m.ETCVector()
	bad[0] = -1
	if _, err := Run(m, bad); err == nil {
		t.Errorf("negative time accepted")
	}
	bad[0] = math.NaN()
	if _, err := Run(m, bad); err == nil {
		t.Errorf("NaN time accepted")
	}
}

func TestErrorModels(t *testing.T) {
	rng := stats.NewRNG(3)
	orig := []float64{10, 20, 30}
	g := GaussianError{Sigma: 1}
	c := g.Sample(rng, orig)
	if len(c) != 3 {
		t.Fatalf("sample length %d", len(c))
	}
	for _, x := range c {
		if x < 0 {
			t.Errorf("negative sampled time")
		}
	}
	gr := GaussianError{Sigma: 0.1, Relative: true}
	if gr.Name() == g.Name() || gr.Name() == "" {
		t.Errorf("names: %q vs %q", g.Name(), gr.Name())
	}
	s := SphereError{Radius: 2}
	c = s.Sample(rng, orig)
	var norm2 float64
	for i := range c {
		d := c[i] - orig[i]
		norm2 += d * d
	}
	// Clamping can only shrink the norm; with these magnitudes it should
	// be exact.
	if math.Abs(math.Sqrt(norm2)-2) > 1e-9 {
		t.Errorf("sphere sample norm = %v", math.Sqrt(norm2))
	}
	if s.Name() == "" {
		t.Errorf("empty sphere name")
	}
}

func TestViolationGuarantee(t *testing.T) {
	// Within the ρ-ball there must be zero violations; the experiment
	// tracks that directly.
	m := paperMapping(t, 4)
	res, err := indalloc.Evaluate(m, 1.2)
	if err != nil {
		t.Fatal(err)
	}
	rng := stats.NewRNG(5)
	st, err := Violation(rng, m, 1.2, res.Robustness, GaussianError{Sigma: res.Robustness / 4}, 3000)
	if err != nil {
		t.Fatal(err)
	}
	if st.WithinRadius == 0 {
		t.Fatalf("no samples landed inside the radius; test is vacuous")
	}
	if st.WithinRadiusViolations != 0 {
		t.Errorf("%d violations inside the ρ-ball", st.WithinRadiusViolations)
	}
	if st.Samples != 3000 {
		t.Errorf("samples = %d", st.Samples)
	}
	if math.IsNaN(st.Probability()) {
		t.Errorf("probability NaN")
	}
	if st.MeanMakespan <= 0 {
		t.Errorf("mean makespan = %v", st.MeanMakespan)
	}
}

func TestViolationCurveStepsAtRho(t *testing.T) {
	m := paperMapping(t, 6)
	res, err := indalloc.Evaluate(m, 1.2)
	if err != nil {
		t.Fatal(err)
	}
	rho := res.Robustness
	radii := []float64{0.25 * rho, 0.5 * rho, 0.99 * rho, 1.5 * rho, 3 * rho, 10 * rho}
	rng := stats.NewRNG(7)
	curve, err := ViolationCurve(rng, m, 1.2, radii, 400)
	if err != nil {
		t.Fatal(err)
	}
	// Exactly zero at and below ρ.
	for _, pt := range curve[:3] {
		if pt.Probability != 0 {
			t.Errorf("violation probability %v at radius %v ≤ ρ=%v", pt.Probability, pt.Radius, rho)
		}
	}
	// Positive well beyond ρ (10ρ spheres almost surely cross a boundary
	// in at least one of 400 draws).
	if curve[len(curve)-1].Probability == 0 {
		t.Errorf("no violations at 10ρ")
	}
	// Monotone non-decreasing in radius (within sampling noise we just
	// require the last point to dominate the first positive one).
	first := -1.0
	for _, pt := range curve {
		if pt.Probability > 0 {
			first = pt.Probability
			break
		}
	}
	if first > 0 && curve[len(curve)-1].Probability < first {
		t.Errorf("violation curve decreased: %v", curve)
	}
}

func TestViolationValidation(t *testing.T) {
	m := paperMapping(t, 8)
	rng := stats.NewRNG(9)
	if _, err := Violation(rng, m, 1.2, 1, GaussianError{Sigma: 1}, 0); err == nil {
		t.Errorf("zero samples accepted")
	}
	if _, err := Violation(rng, m, 0.5, 1, GaussianError{Sigma: 1}, 10); err == nil {
		t.Errorf("bad tau accepted")
	}
	if _, err := ViolationCurve(rng, m, 1.2, []float64{-1}, 10); err == nil {
		t.Errorf("negative radius accepted")
	}
	if _, err := ViolationCurve(rng, m, 1.2, []float64{1}, 0); err == nil {
		t.Errorf("zero perRadius accepted")
	}
}
