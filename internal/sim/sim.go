// Package sim provides an event-driven execution simulator for the
// independent-application system of §3.1 and Monte-Carlo experiments that
// connect the robustness metric to empirical violation behaviour.
//
// The simulator is deliberately independent of the analytic code: machines
// process their queues through a time-ordered event loop rather than by
// summing vectors, so agreement between simulated makespans and Eq. 4's
// finishing times is genuine cross-validation. On top of it, the violation
// experiments demonstrate the metric's defining property empirically: ETC
// error vectors with ‖δ‖₂ ≤ ρ never push the makespan past τ·M^orig,
// while the violation probability rises once ‖δ‖₂ exceeds ρ.
package sim

import (
	"container/heap"
	"fmt"
	"math"

	"fepia/internal/hcs"
	"fepia/internal/stats"
	"fepia/internal/vecmath"
)

// EventKind classifies trace events.
type EventKind int

const (
	// Start marks an application beginning execution on its machine.
	Start EventKind = iota
	// Complete marks an application finishing.
	Complete
)

// String returns "start" or "complete".
func (k EventKind) String() string {
	if k == Start {
		return "start"
	}
	return "complete"
}

// Event is one entry of the execution trace.
type Event struct {
	// Time is the simulation clock at the event.
	Time float64
	// App and Machine identify the work.
	App, Machine int
	// Kind is Start or Complete.
	Kind EventKind
}

// Trace is the outcome of one simulated execution.
type Trace struct {
	// StartTime and FinishTime are per-application clocks.
	StartTime, FinishTime []float64
	// MachineFinish is F_j per machine.
	MachineFinish []float64
	// Makespan is the completion time of the whole set.
	Makespan float64
	// Events is the time-ordered log.
	Events []Event
}

// machineItem orders machines by their next idle time in the event loop.
type machineItem struct {
	idleAt  float64
	machine int
	queue   []int // remaining applications, in assignment order
}

type machineHeap []*machineItem

func (h machineHeap) Len() int { return len(h) }
func (h machineHeap) Less(i, j int) bool {
	if h[i].idleAt != h[j].idleAt {
		return h[i].idleAt < h[j].idleAt
	}
	return h[i].machine < h[j].machine
}
func (h machineHeap) Swap(i, j int)       { h[i], h[j] = h[j], h[i] }
func (h *machineHeap) Push(x interface{}) { *h = append(*h, x.(*machineItem)) }
func (h *machineHeap) Pop() interface{} {
	old := *h
	n := len(old)
	x := old[n-1]
	*h = old[:n-1]
	return x
}

// Run simulates the mapping under the actual execution-time vector c
// (len |A|): each machine executes its assigned applications one at a time
// in assignment order, exactly the §3.1 model. It returns the full trace.
func Run(m *hcs.Mapping, c []float64) (*Trace, error) {
	inst := m.Instance()
	if len(c) != inst.Applications() {
		return nil, fmt.Errorf("sim: execution-time vector length %d, want %d", len(c), inst.Applications())
	}
	for i, x := range c {
		if x < 0 || math.IsNaN(x) || math.IsInf(x, 0) {
			return nil, fmt.Errorf("sim: execution time %d = %v must be finite and ≥ 0", i, x)
		}
	}
	tr := &Trace{
		StartTime:     make([]float64, inst.Applications()),
		FinishTime:    make([]float64, inst.Applications()),
		MachineFinish: make([]float64, inst.Machines()),
	}
	var mh machineHeap
	for j := 0; j < inst.Machines(); j++ {
		q := m.OnMachine(j)
		if len(q) == 0 {
			continue
		}
		mh = append(mh, &machineItem{machine: j, queue: q})
	}
	heap.Init(&mh)
	for mh.Len() > 0 {
		it := heap.Pop(&mh).(*machineItem)
		app := it.queue[0]
		it.queue = it.queue[1:]
		start := it.idleAt
		finish := start + c[app]
		tr.StartTime[app] = start
		tr.FinishTime[app] = finish
		tr.MachineFinish[it.machine] = finish
		tr.Events = append(tr.Events,
			Event{Time: start, App: app, Machine: it.machine, Kind: Start},
			Event{Time: finish, App: app, Machine: it.machine, Kind: Complete},
		)
		if finish > tr.Makespan {
			tr.Makespan = finish
		}
		if len(it.queue) > 0 {
			it.idleAt = finish
			heap.Push(&mh, it)
		}
	}
	return tr, nil
}

// ErrorModel samples actual execution-time vectors around the estimates.
type ErrorModel interface {
	// Sample returns the actual times given the estimates. Times are
	// clamped at 0 (an application cannot take negative time).
	Sample(rng *stats.RNG, orig []float64) []float64
	// Name identifies the model in reports.
	Name() string
}

// GaussianError adds independent N(0, σ²) noise per application;
// Relative scales σ by each estimate.
type GaussianError struct {
	Sigma    float64
	Relative bool
}

// Name implements ErrorModel.
func (g GaussianError) Name() string {
	if g.Relative {
		return fmt.Sprintf("gaussian-rel(%.3g)", g.Sigma)
	}
	return fmt.Sprintf("gaussian(%.3g)", g.Sigma)
}

// Sample implements ErrorModel.
func (g GaussianError) Sample(rng *stats.RNG, orig []float64) []float64 {
	out := make([]float64, len(orig))
	for i, x := range orig {
		s := g.Sigma
		if g.Relative {
			s *= x
		}
		out[i] = math.Max(0, x+s*rng.NormFloat64())
	}
	return out
}

// SphereError places the error vector uniformly on the sphere of the given
// radius — the exact geometry of the robustness radius.
type SphereError struct {
	Radius float64
}

// Name implements ErrorModel.
func (s SphereError) Name() string { return fmt.Sprintf("sphere(%.4g)", s.Radius) }

// Sample implements ErrorModel.
func (s SphereError) Sample(rng *stats.RNG, orig []float64) []float64 {
	dir := make([]float64, len(orig))
	for {
		for i := range dir {
			dir[i] = rng.NormFloat64()
		}
		if _, n := vecmath.Normalize(dir, dir); n > 0 {
			break
		}
	}
	out := make([]float64, len(orig))
	for i, x := range orig {
		out[i] = math.Max(0, x+s.Radius*dir[i])
	}
	return out
}

// ViolationStats summarises a Monte-Carlo violation experiment.
type ViolationStats struct {
	// Samples is the number of simulated executions.
	Samples int
	// Violations counts makespans exceeding τ·M^orig.
	Violations int
	// WithinRadius counts samples whose error norm was ≤ ρ.
	WithinRadius int
	// WithinRadiusViolations counts violations among those — the metric
	// guarantees this is zero.
	WithinRadiusViolations int
	// MeanMakespan is the average simulated makespan.
	MeanMakespan float64
}

// Probability returns Violations/Samples.
func (v ViolationStats) Probability() float64 {
	if v.Samples == 0 {
		return math.NaN()
	}
	return float64(v.Violations) / float64(v.Samples)
}

// Violation runs n simulated executions under the error model and counts
// makespan violations relative to tolerance tau, tracking the ρ-ball
// guarantee separately (rho is the precomputed robustness metric of the
// mapping; pass math.Inf(1) to skip the tracking).
func Violation(rng *stats.RNG, m *hcs.Mapping, tau, rho float64, model ErrorModel, n int) (ViolationStats, error) {
	if n <= 0 {
		return ViolationStats{}, fmt.Errorf("sim: sample count %d must be positive", n)
	}
	if !(tau >= 1) {
		return ViolationStats{}, fmt.Errorf("sim: tau = %v must be ≥ 1", tau)
	}
	orig := m.ETCVector()
	bound := tau * m.PredictedMakespan()
	var out ViolationStats
	var meansum vecmath.KahanSum
	for i := 0; i < n; i++ {
		c := model.Sample(rng, orig)
		tr, err := Run(m, c)
		if err != nil {
			return ViolationStats{}, err
		}
		out.Samples++
		meansum.Add(tr.Makespan)
		violated := tr.Makespan > bound*(1+1e-12)
		if violated {
			out.Violations++
		}
		if vecmath.Distance(c, orig) <= rho {
			out.WithinRadius++
			if violated {
				out.WithinRadiusViolations++
			}
		}
	}
	out.MeanMakespan = meansum.Sum() / float64(out.Samples)
	return out, nil
}

// CurvePoint is one point of the violation-probability curve.
type CurvePoint struct {
	// Radius is the error-sphere radius ‖δ‖₂.
	Radius float64
	// Probability is the estimated P(violation | ‖δ‖₂ = Radius).
	Probability float64
}

// ViolationCurve estimates P(violation) as a function of the error norm by
// sampling on spheres of the given radii. The defining property of the
// robustness metric shows as a step: exactly 0 for radii ≤ ρ, positive
// beyond (approaching 1 as the sphere leaves the robust region entirely).
func ViolationCurve(rng *stats.RNG, m *hcs.Mapping, tau float64, radii []float64, perRadius int) ([]CurvePoint, error) {
	if perRadius <= 0 {
		return nil, fmt.Errorf("sim: perRadius = %d must be positive", perRadius)
	}
	curve := make([]CurvePoint, 0, len(radii))
	for _, r := range radii {
		if r < 0 {
			return nil, fmt.Errorf("sim: negative radius %v", r)
		}
		st, err := Violation(rng, m, tau, math.Inf(1), SphereError{Radius: r}, perRadius)
		if err != nil {
			return nil, err
		}
		curve = append(curve, CurvePoint{Radius: r, Probability: st.Probability()})
	}
	return curve, nil
}
