package experiments

import (
	"fmt"
	"io"
	"strings"

	"fepia/internal/etcgen"
)

// ConsistencyConfig parameterises the ETC-consistency ablation. Braun et
// al. [7] evaluate mapping heuristics across consistent, semi-consistent,
// and inconsistent ETC matrices; the paper's §4.2 uses inconsistent ones.
// This experiment asks how the robustness landscape itself changes with
// the class: the correlation between makespan and ρ, the spread at similar
// makespan, and how many S₁(x) clusters appear.
type ConsistencyConfig struct {
	// Seed drives workload and mapping generation.
	Seed int64
	// Mappings is the population per class.
	Mappings int
	// Tau is the makespan tolerance.
	Tau float64
	// Base is the workload shape; its Consistency field is overridden per
	// class.
	Base etcgen.Params
}

// PaperConsistencyConfig uses the §4.2 workload with 500 mappings per
// class.
func PaperConsistencyConfig() ConsistencyConfig {
	return ConsistencyConfig{Seed: 2003, Mappings: 500, Tau: 1.2, Base: etcgen.PaperParams()}
}

// ConsistencyRow is one class's summary.
type ConsistencyRow struct {
	// Class names the ETC structure.
	Class string
	// Pearson is corr(makespan, ρ).
	Pearson float64
	// MeanRho and MeanMakespan are population means.
	MeanRho, MeanMakespan float64
	// Spread is the max robustness ratio at < 1% makespan difference.
	Spread float64
	// Clusters is the number of distinct S₁(x) lines observed.
	Clusters int
}

// ConsistencyResult is the ablation outcome.
type ConsistencyResult struct {
	Config ConsistencyConfig
	Rows   []ConsistencyRow
}

// RunConsistency executes the ablation across the three classes.
func RunConsistency(cfg ConsistencyConfig) (*ConsistencyResult, error) {
	if cfg.Mappings <= 0 {
		return nil, fmt.Errorf("experiments: consistency config needs a positive mapping count")
	}
	classes := []etcgen.Consistency{etcgen.Inconsistent, etcgen.SemiConsistent, etcgen.Consistent}
	out := &ConsistencyResult{Config: cfg}
	for _, class := range classes {
		params := cfg.Base
		params.Consistency = class
		fig3, err := RunFig3(Fig3Config{
			Seed:     cfg.Seed,
			Mappings: cfg.Mappings,
			Tau:      cfg.Tau,
			ETC:      params,
		})
		if err != nil {
			return nil, err
		}
		var rhoSum, mkSum float64
		for _, row := range fig3.Rows {
			rhoSum += row.Robustness
			mkSum += row.Makespan
		}
		out.Rows = append(out.Rows, ConsistencyRow{
			Class:        class.String(),
			Pearson:      fig3.PearsonMakespan,
			MeanRho:      rhoSum / float64(len(fig3.Rows)),
			MeanMakespan: mkSum / float64(len(fig3.Rows)),
			Spread:       fig3.MaxSpreadSimilarMakespan,
			Clusters:     len(fig3.ClusterSlopes),
		})
	}
	return out, nil
}

// WriteCSV emits the per-class summaries.
func (r *ConsistencyResult) WriteCSV(w io.Writer) error {
	if _, err := fmt.Fprintln(w, "class,pearson,mean_rho,mean_makespan,spread,clusters"); err != nil {
		return err
	}
	for _, row := range r.Rows {
		if _, err := fmt.Fprintf(w, "%s,%g,%g,%g,%g,%d\n",
			row.Class, row.Pearson, row.MeanRho, row.MeanMakespan, row.Spread, row.Clusters); err != nil {
			return err
		}
	}
	return nil
}

// Report renders the ablation.
func (r *ConsistencyResult) Report() string {
	var b strings.Builder
	fmt.Fprintf(&b, "ETC consistency ablation (%d random mappings per class, tau=%.2f)\n\n",
		r.Config.Mappings, r.Config.Tau)
	fmt.Fprintf(&b, "%-16s %10s %10s %12s %8s %9s\n",
		"class", "corr(M,ρ)", "mean ρ", "mean M", "spread", "clusters")
	for _, row := range r.Rows {
		fmt.Fprintf(&b, "%-16s %10.3f %10.4g %12.4g %7.2fx %9d\n",
			row.Class, row.Pearson, row.MeanRho, row.MeanMakespan, row.Spread, row.Clusters)
	}
	b.WriteString("\nThe Eq. 6 geometry (linear clusters, ρ ∝ M within S₁(x)) is structural\n")
	b.WriteString("and appears in every class; the classes differ in the makespans random\n")
	b.WriteString("mappings produce and therefore in the absolute ρ scale.\n")
	return b.String()
}
