package experiments

import (
	"context"
	"fmt"
	"io"
	"math"
	"sort"
	"strings"

	"fepia/internal/batch"
	"fepia/internal/etcgen"
	"fepia/internal/hcs"
	"fepia/internal/indalloc"
	"fepia/internal/stats"
)

// Fig3Config parameterises the §4.2 experiment. The zero value is not
// runnable; start from PaperFig3Config.
type Fig3Config struct {
	// Seed drives the whole experiment deterministically.
	Seed int64
	// Mappings is the number of random mappings (1000 in the paper).
	Mappings int
	// Tau is the makespan tolerance (1.2 in the paper).
	Tau float64
	// ETC parameterises the workload generator.
	ETC etcgen.Params
	// Workers bounds the concurrent mapping evaluations (≤ 0 selects
	// GOMAXPROCS). Results are independent of the worker count.
	Workers int
}

// PaperFig3Config reproduces §4.2: 1000 random mappings of 20 applications
// on 5 machines, Gamma ETCs with mean 10 and heterogeneities 0.7, τ = 1.2.
func PaperFig3Config() Fig3Config {
	return Fig3Config{Seed: 2003, Mappings: 1000, Tau: 1.2, ETC: etcgen.PaperParams()}
}

// Fig3Row is one mapping's evaluation.
type Fig3Row struct {
	// Makespan is M^orig.
	Makespan float64
	// Robustness is ρ_μ(Φ, C) in seconds.
	Robustness float64
	// LoadBalance is the §4.2 load-balance index.
	LoadBalance float64
	// X is n(m(C^orig)) — the cluster coordinate of §4.2.
	X int
	// InS1 reports membership of S₁(X) (on-line points).
	InS1 bool
}

// Fig3Result is the full experiment outcome.
type Fig3Result struct {
	Config Fig3Config
	Rows   []Fig3Row
	// PearsonMakespan is corr(makespan, robustness) over all mappings.
	PearsonMakespan float64
	// PearsonLoadBalance is corr(load-balance index, robustness).
	PearsonLoadBalance float64
	// ClusterSlopes[x] is the empirical slope ρ/M for the S₁(x) members;
	// Eq. 6 predicts exactly (τ−1)/√x.
	ClusterSlopes map[int]float64
	// MaxSpreadSimilarMakespan is the largest robustness ratio found
	// between two mappings whose makespans differ by < 1% — the paper's
	// "sharp differences … at very similar values of makespan".
	MaxSpreadSimilarMakespan float64
}

// RunFig3 executes the experiment.
func RunFig3(cfg Fig3Config) (*Fig3Result, error) {
	if cfg.Mappings <= 0 {
		return nil, fmt.Errorf("experiments: Fig3 Mappings = %d must be positive", cfg.Mappings)
	}
	rng := stats.NewRNG(cfg.Seed)
	etc, err := etcgen.Generate(rng, cfg.ETC)
	if err != nil {
		return nil, err
	}
	inst, err := hcs.NewInstance(etc)
	if err != nil {
		return nil, err
	}
	// Draw the population sequentially so the sampled mappings are
	// independent of the worker count, then evaluate it in parallel:
	// every per-mapping analysis is an independent Eq. 6/7 computation.
	mappings := make([]*hcs.Mapping, cfg.Mappings)
	for i := range mappings {
		mappings[i] = hcs.RandomMapping(rng, inst)
	}
	res := &Fig3Result{Config: cfg, Rows: make([]Fig3Row, cfg.Mappings)}
	err = batch.ForEach(context.Background(), cfg.Mappings, cfg.Workers, func(i int) error {
		m := mappings[i]
		ev, err := indalloc.Evaluate(m, cfg.Tau)
		if err != nil {
			return err
		}
		info, err := indalloc.Classify(m, cfg.Tau)
		if err != nil {
			return err
		}
		res.Rows[i] = Fig3Row{
			Makespan:    ev.PredictedMakespan,
			Robustness:  ev.Robustness,
			LoadBalance: m.LoadBalanceIndex(),
			X:           info.X,
			InS1:        info.InS1,
		}
		return nil
	})
	if err != nil {
		return nil, err
	}
	res.summarise()
	return res, nil
}

func (r *Fig3Result) summarise() {
	n := len(r.Rows)
	mk := make([]float64, n)
	rho := make([]float64, n)
	lbi := make([]float64, n)
	for i, row := range r.Rows {
		mk[i], rho[i], lbi[i] = row.Makespan, row.Robustness, row.LoadBalance
	}
	r.PearsonMakespan = stats.Pearson(mk, rho)
	r.PearsonLoadBalance = stats.Pearson(lbi, rho)

	// Empirical slope per cluster: mean of ρ/M over S₁(x) members.
	r.ClusterSlopes = make(map[int]float64)
	counts := make(map[int]int)
	for _, row := range r.Rows {
		if row.InS1 && row.Makespan > 0 {
			r.ClusterSlopes[row.X] += row.Robustness / row.Makespan
			counts[row.X]++
		}
	}
	for x := range r.ClusterSlopes {
		r.ClusterSlopes[x] /= float64(counts[x])
	}

	// Largest robustness ratio among mappings with near-identical makespan.
	order := make([]int, n)
	for i := range order {
		order[i] = i
	}
	sort.Slice(order, func(a, b int) bool { return mk[order[a]] < mk[order[b]] })
	for i := 0; i < n; i++ {
		for j := i + 1; j < n && mk[order[j]] <= mk[order[i]]*1.01; j++ {
			lo := math.Min(rho[order[i]], rho[order[j]])
			hi := math.Max(rho[order[i]], rho[order[j]])
			if lo > 0 && hi/lo > r.MaxSpreadSimilarMakespan {
				r.MaxSpreadSimilarMakespan = hi / lo
			}
		}
	}
}

// Series returns the (makespan, robustness) series of the scatter plot.
func (r *Fig3Result) Series() (x, y []float64) {
	x = make([]float64, len(r.Rows))
	y = make([]float64, len(r.Rows))
	for i, row := range r.Rows {
		x[i], y[i] = row.Makespan, row.Robustness
	}
	return x, y
}

// WriteCSV emits one row per mapping.
func (r *Fig3Result) WriteCSV(w io.Writer) error {
	rows := make([][]float64, len(r.Rows))
	for i, row := range r.Rows {
		inS1 := 0.0
		if row.InS1 {
			inS1 = 1
		}
		rows[i] = []float64{row.Makespan, row.Robustness, row.LoadBalance, float64(row.X), inS1}
	}
	return WriteCSV(w, []string{"makespan", "robustness", "load_balance_index", "x", "in_s1"}, rows)
}

// Report renders the scatter plot plus the quantitative summary recorded
// in EXPERIMENTS.md.
func (r *Fig3Result) Report() string {
	var b strings.Builder
	x, y := r.Series()
	b.WriteString("Figure 3 — robustness against makespan, ")
	fmt.Fprintf(&b, "%d random mappings (tau=%.2f)\n\n", len(r.Rows), r.Config.Tau)
	b.WriteString(Scatter(x, y, 72, 24, "makespan (s)", "robustness (s)"))
	fmt.Fprintf(&b, "\ncorr(makespan, robustness)            = %+.3f\n", r.PearsonMakespan)
	fmt.Fprintf(&b, "corr(load-balance index, robustness)  = %+.3f\n", r.PearsonLoadBalance)
	fmt.Fprintf(&b, "max robustness ratio at ~equal makespan = %.2fx\n", r.MaxSpreadSimilarMakespan)
	b.WriteString("cluster slopes ρ/M for S1(x) (Eq. 6 predicts (τ−1)/√x):\n")
	xs := make([]int, 0, len(r.ClusterSlopes))
	for x := range r.ClusterSlopes {
		xs = append(xs, x)
	}
	sort.Ints(xs)
	for _, x := range xs {
		pred := (r.Config.Tau - 1) / math.Sqrt(float64(x))
		fmt.Fprintf(&b, "  x=%2d  measured %.5f  predicted %.5f\n", x, r.ClusterSlopes[x], pred)
	}
	return b.String()
}
