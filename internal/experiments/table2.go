package experiments

import (
	"fmt"
	"math"
	"sort"
	"strings"

	"fepia/internal/hiperd"
)

// Table2Pair is the Table 2 analogue: two mappings of the same HiPer-D
// instance with nearly identical slack but widely different robustness.
type Table2Pair struct {
	// System is the instance both mappings share.
	System *hiperd.System
	// A is the fragile mapping, B the robust one.
	A, B Fig4Row
	// Ratio is robustness(B) / robustness(A).
	Ratio float64
	// SlackGap is |slack(A) − slack(B)|.
	SlackGap float64
}

// FindTable2Pair scans a Figure 4 population for the pair with the largest
// robustness ratio among feasible mappings whose slacks differ by at most
// slackTol (the paper's pair: slacks 0.5961 vs 0.5914, robustness 353 vs
// 1166 — a 3.3× ratio at a 0.005 slack gap). It returns an error when no
// such pair exists.
func FindTable2Pair(res *Fig4Result, slackTol float64) (*Table2Pair, error) {
	if slackTol <= 0 {
		slackTol = 0.01
	}
	var feasible []Fig4Row
	for _, row := range res.Rows {
		if row.Slack > 0 && row.Robustness > 0 {
			feasible = append(feasible, row)
		}
	}
	if len(feasible) < 2 {
		return nil, fmt.Errorf("experiments: fewer than two feasible mappings")
	}
	// Tiny denominators otherwise dominate the ratio search with
	// uninteresting near-violation pairs; the paper's pair sits mid-range
	// (slack ≈ 0.59, robustness in the hundreds). Keep only mappings above
	// the 25th robustness percentile — scale-free and faithful to the
	// phenomenon being demonstrated.
	rhos := make([]float64, len(feasible))
	for i, row := range feasible {
		rhos[i] = row.Robustness
	}
	sort.Float64s(rhos)
	floor := rhos[len(rhos)/4]
	kept := feasible[:0]
	for _, row := range feasible {
		if row.Robustness >= floor {
			kept = append(kept, row)
		}
	}
	feasible = kept
	if len(feasible) < 2 {
		return nil, fmt.Errorf("experiments: fewer than two mappings above the robustness floor")
	}
	sort.Slice(feasible, func(a, b int) bool { return feasible[a].Slack < feasible[b].Slack })
	best := &Table2Pair{Ratio: 0}
	for i := 0; i < len(feasible); i++ {
		for j := i + 1; j < len(feasible) && feasible[j].Slack-feasible[i].Slack <= slackTol; j++ {
			lo, hi := feasible[i], feasible[j]
			if lo.Robustness > hi.Robustness {
				lo, hi = hi, lo
			}
			if ratio := hi.Robustness / lo.Robustness; ratio > best.Ratio {
				best = &Table2Pair{
					System:   res.System,
					A:        lo,
					B:        hi,
					Ratio:    ratio,
					SlackGap: math.Abs(lo.Slack - hi.Slack),
				}
			}
		}
	}
	if best.Ratio == 0 {
		return nil, fmt.Errorf("experiments: no pair within slack tolerance %v", slackTol)
	}
	return best, nil
}

// Report renders the pair in the layout of the paper's Table 2:
// robustness, slack, the final sensor loads λ*, the application
// assignments per machine, and the effective computation-time functions
// T_ij^c(λ) with the multitasking factor outside the parenthesis.
func (t *Table2Pair) Report() string {
	var b strings.Builder
	fmt.Fprintf(&b, "Table 2 analogue — initial sensor loads λ^orig = %s\n\n", formatLoads(t.System.OrigLoads))
	fmt.Fprintf(&b, "%-28s %-22s %-22s\n", "", "mapping A", "mapping B")
	fmt.Fprintf(&b, "%-28s %-22s %-22s\n", "robustness (objects/data set)",
		fmt.Sprintf("%.0f", t.A.Robustness), fmt.Sprintf("%.0f", t.B.Robustness))
	fmt.Fprintf(&b, "%-28s %-22s %-22s\n", "slack",
		fmt.Sprintf("%.4f", t.A.Slack), fmt.Sprintf("%.4f", t.B.Slack))
	fmt.Fprintf(&b, "%-28s %-22s %-22s\n", "λ1*, λ2*, λ3*",
		formatLoads(t.A.BoundaryLoads), formatLoads(t.B.BoundaryLoads))
	fmt.Fprintf(&b, "%-28s %-22s %-22s\n", "critical feature", t.A.Critical, t.B.Critical)
	b.WriteString("\napplication assignments:\n")
	for j := 0; j < t.System.Machines; j++ {
		fmt.Fprintf(&b, "  m%-2d  %-30s %-30s\n", j+1,
			assignedApps(t.System, t.A.Mapping, j), assignedApps(t.System, t.B.Mapping, j))
	}
	b.WriteString("\ncomputation time functions T_ij^c(λ) (factor × linear complexity):\n")
	for a := 0; a < t.System.Applications(); a++ {
		fmt.Fprintf(&b, "  %-5s %-34s %-34s\n", t.System.G.NameOf(t.System.AppNode(a)),
			compFunction(t.System, t.A.Mapping, a), compFunction(t.System, t.B.Mapping, a))
	}
	fmt.Fprintf(&b, "\nrobustness ratio B/A = %.2fx at slack gap %.4f\n", t.Ratio, t.SlackGap)
	return b.String()
}

func formatLoads(loads []float64) string {
	if loads == nil {
		return "-"
	}
	parts := make([]string, len(loads))
	for i, l := range loads {
		parts[i] = fmt.Sprintf("%.0f", l)
	}
	return strings.Join(parts, ", ")
}

func assignedApps(s *hiperd.System, m hiperd.Mapping, machine int) string {
	var names []string
	for a, j := range m {
		if j == machine {
			names = append(names, s.G.NameOf(s.AppNode(a)))
		}
	}
	if len(names) == 0 {
		return "(idle)"
	}
	return strings.Join(names, ", ")
}

// compFunction renders the paper's "factor(complexity)" notation, e.g.
// "5.20(3.1λ1 + 0.4λ3)".
func compFunction(s *hiperd.System, m hiperd.Mapping, a int) string {
	j := m[a]
	factor := hiperd.MultitaskFactor(m.Counts(s)[j])
	c := s.CompFuncs[a][j]
	if len(c) == 0 {
		return "0"
	}
	return fmt.Sprintf("%.2f(%s)", factor, c)
}
