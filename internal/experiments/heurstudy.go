package experiments

import (
	"context"
	"fmt"
	"io"
	"strings"

	"fepia/internal/batch"
	"fepia/internal/etcgen"
	"fepia/internal/hcs"
	"fepia/internal/heuristics"
	"fepia/internal/indalloc"
	"fepia/internal/stats"
)

// HeurStudyConfig parameterises the heuristic ablation: every mapping
// heuristic evaluated on makespan, robustness (Eq. 7), and load-balance
// index over several §4.2-distributed instances.
type HeurStudyConfig struct {
	// Seed drives instance generation and the heuristics' randomness.
	Seed int64
	// Trials is the number of instances averaged over.
	Trials int
	// Tau is the tolerance used both by the metric and by the robust
	// variants.
	Tau float64
	// ETC parameterises the workload.
	ETC etcgen.Params
	// Workers bounds the concurrent (trial × heuristic) evaluations
	// (≤ 0 selects GOMAXPROCS). Every cell of the grid runs a heuristic
	// with its own deterministic RNG, so results are independent of the
	// worker count.
	Workers int
}

// PaperHeurStudyConfig averages over 10 paper-distribution instances at
// τ = 1.2.
func PaperHeurStudyConfig() HeurStudyConfig {
	return HeurStudyConfig{Seed: 2003, Trials: 10, Tau: 1.2, ETC: etcgen.PaperParams()}
}

// HeurRow is one heuristic's averages.
type HeurRow struct {
	Name                 string
	Makespan, Rho, LBI   float64
	RhoVersusMinMin      float64
	MakespanVersusMinMin float64
}

// HeurStudyResult is the ablation table.
type HeurStudyResult struct {
	Config HeurStudyConfig
	Rows   []HeurRow
}

// RunHeurStudy executes the study over the full suite (the eleven Braun
// et al. heuristics, Sufferage, and the robustness-aware variants).
func RunHeurStudy(cfg HeurStudyConfig) (*HeurStudyResult, error) {
	if cfg.Trials <= 0 {
		return nil, fmt.Errorf("experiments: heuristic study needs a positive trial count")
	}
	if !(cfg.Tau >= 1) {
		return nil, fmt.Errorf("experiments: tau = %v must be ≥ 1", cfg.Tau)
	}
	suite := append(heuristics.All(),
		heuristics.RobustGreedy{Tau: cfg.Tau},
		heuristics.RobustRefine{Tau: cfg.Tau},
		heuristics.RobustGA{Tau: cfg.Tau},
	)
	type agg struct{ makespan, rho, lbi float64 }
	sums := make([]agg, len(suite))

	// Generate the instances sequentially (the shared RNG stream fixes
	// them regardless of scheduling), then evaluate the full
	// trial × heuristic grid concurrently: every cell seeds its own RNG,
	// so each run is bitwise reproducible in isolation.
	rng := stats.NewRNG(cfg.Seed)
	instances := make([]*hcs.Instance, cfg.Trials)
	for trial := range instances {
		etc, err := etcgen.Generate(rng, cfg.ETC)
		if err != nil {
			return nil, err
		}
		inst, err := hcs.NewInstance(etc)
		if err != nil {
			return nil, err
		}
		instances[trial] = inst
	}
	cells := make([]agg, cfg.Trials*len(suite))
	err := batch.ForEach(context.Background(), len(cells), cfg.Workers, func(c int) error {
		trial, i := c/len(suite), c%len(suite)
		h := suite[i]
		m, err := h.Map(stats.NewRNG(cfg.Seed+int64(trial)), instances[trial])
		if err != nil {
			return fmt.Errorf("experiments: %s: %w", h.Name(), err)
		}
		res, err := indalloc.Evaluate(m, cfg.Tau)
		if err != nil {
			return err
		}
		cells[c] = agg{makespan: res.PredictedMakespan, rho: res.Robustness, lbi: m.LoadBalanceIndex()}
		return nil
	})
	if err != nil {
		return nil, err
	}
	// Accumulate in the fixed (trial, heuristic) order so floating-point
	// summation matches the sequential implementation exactly.
	for trial := 0; trial < cfg.Trials; trial++ {
		for i := range suite {
			cell := cells[trial*len(suite)+i]
			sums[i].makespan += cell.makespan
			sums[i].rho += cell.rho
			sums[i].lbi += cell.lbi
		}
	}

	out := &HeurStudyResult{Config: cfg}
	n := float64(cfg.Trials)
	var minminRho, minminSpan float64
	for i, h := range suite {
		if h.Name() == "Min-min" {
			minminRho = sums[i].rho / n
			minminSpan = sums[i].makespan / n
		}
	}
	for i, h := range suite {
		row := HeurRow{
			Name:     h.Name(),
			Makespan: sums[i].makespan / n,
			Rho:      sums[i].rho / n,
			LBI:      sums[i].lbi / n,
		}
		if minminRho > 0 {
			row.RhoVersusMinMin = row.Rho / minminRho
		}
		if minminSpan > 0 {
			row.MakespanVersusMinMin = row.Makespan / minminSpan
		}
		out.Rows = append(out.Rows, row)
	}
	return out, nil
}

// WriteCSV emits the ablation table.
func (r *HeurStudyResult) WriteCSV(w io.Writer) error {
	if _, err := fmt.Fprintln(w, "heuristic,makespan,rho,lbi,rho_vs_minmin,makespan_vs_minmin"); err != nil {
		return err
	}
	for _, row := range r.Rows {
		if _, err := fmt.Fprintf(w, "%s,%g,%g,%g,%g,%g\n",
			row.Name, row.Makespan, row.Rho, row.LBI, row.RhoVersusMinMin, row.MakespanVersusMinMin); err != nil {
			return err
		}
	}
	return nil
}

// Report renders the table.
func (r *HeurStudyResult) Report() string {
	var b strings.Builder
	fmt.Fprintf(&b, "heuristic study: %d instances of %d applications on %d machines (tau=%.2f)\n\n",
		r.Config.Trials, r.Config.ETC.Tasks, r.Config.ETC.Machines, r.Config.Tau)
	fmt.Fprintf(&b, "%-24s %10s %10s %8s %14s %14s\n",
		"heuristic", "makespan", "rho", "LBI", "rho/Min-min", "span/Min-min")
	for _, row := range r.Rows {
		fmt.Fprintf(&b, "%-24s %10.4g %10.4g %8.3f %14.2f %14.2f\n",
			row.Name, row.Makespan, row.Rho, row.LBI, row.RhoVersusMinMin, row.MakespanVersusMinMin)
	}
	b.WriteString("\nmakespan and rho are means over instances; rho is the Eq. 7 metric\n")
	b.WriteString("(larger is better); LBI is the load-balance index of §4.2.\n")
	return b.String()
}
