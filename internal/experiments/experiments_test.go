package experiments

import (
	"math"
	"strings"
	"testing"
)

func TestScatterBasics(t *testing.T) {
	s := Scatter([]float64{0, 1, 2}, []float64{0, 1, 4}, 40, 10, "x", "y")
	for _, want := range []string{"x", "y", "."} {
		if !strings.Contains(s, want) {
			t.Errorf("scatter missing %q:\n%s", want, s)
		}
	}
	if !strings.Contains(Scatter(nil, nil, 40, 10, "x", "y"), "no data") {
		t.Errorf("empty scatter should say so")
	}
	if !strings.Contains(Scatter([]float64{1}, []float64{1, 2}, 40, 10, "x", "y"), "mismatched") {
		t.Errorf("mismatched series should be reported")
	}
	// Degenerate single point and NaN/Inf points must not panic.
	_ = Scatter([]float64{5, math.NaN()}, []float64{5, math.Inf(1)}, 1, 1, "x", "y")
}

func TestWriteCSV(t *testing.T) {
	var sb strings.Builder
	err := WriteCSV(&sb, []string{"a", "b"}, [][]float64{{1, 2}, {3.5, -4}})
	if err != nil {
		t.Fatal(err)
	}
	want := "a,b\n1,2\n3.5,-4\n"
	if sb.String() != want {
		t.Errorf("CSV = %q want %q", sb.String(), want)
	}
}

func TestRunFig3PaperShape(t *testing.T) {
	cfg := PaperFig3Config()
	cfg.Mappings = 300 // keep the unit test quick; the bench runs 1000
	res, err := RunFig3(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Rows) != 300 {
		t.Fatalf("rows = %d", len(res.Rows))
	}
	// The paper's headline claims:
	// (1) robustness and makespan are generally correlated;
	if res.PearsonMakespan < 0.3 {
		t.Errorf("corr(makespan, robustness) = %v, expected clearly positive", res.PearsonMakespan)
	}
	// (2) mappings with very similar makespan differ sharply in robustness;
	if res.MaxSpreadSimilarMakespan < 1.5 {
		t.Errorf("max spread at similar makespan = %v, expected ≥1.5x", res.MaxSpreadSimilarMakespan)
	}
	// (3) S1(x) cluster slopes match the Eq. 6 prediction (τ−1)/√x.
	checked := 0
	for x, slope := range res.ClusterSlopes {
		pred := (cfg.Tau - 1) / math.Sqrt(float64(x))
		if math.Abs(slope-pred) > 1e-9 {
			t.Errorf("cluster x=%d slope %v != predicted %v", x, slope, pred)
		}
		checked++
	}
	if checked == 0 {
		t.Errorf("no S1 clusters found")
	}
	// Report renders and mentions the key numbers.
	rep := res.Report()
	for _, want := range []string{"Figure 3", "corr(makespan", "cluster slopes"} {
		if !strings.Contains(rep, want) {
			t.Errorf("report missing %q", want)
		}
	}
	var sb strings.Builder
	if err := res.WriteCSV(&sb); err != nil {
		t.Fatal(err)
	}
	if lines := strings.Count(sb.String(), "\n"); lines != 301 {
		t.Errorf("CSV lines = %d", lines)
	}
	if _, err := RunFig3(Fig3Config{}); err == nil {
		t.Errorf("zero config accepted")
	}
}

func TestRunFig4PaperShape(t *testing.T) {
	cfg := PaperFig4Config()
	cfg.Mappings = 300
	res, err := RunFig4(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Rows) != 300 {
		t.Fatalf("rows = %d", len(res.Rows))
	}
	// Most mappings must be feasible (the paper's population all is).
	if res.Feasible < 150 {
		t.Errorf("only %d/300 feasible", res.Feasible)
	}
	// Slack and robustness correlate positively…
	if !(res.PearsonSlack > 0.2) {
		t.Errorf("corr(slack, robustness) = %v", res.PearsonSlack)
	}
	// …but similar slack hides large robustness differences (Table 2's
	// point; the paper reports 3.3×).
	if res.MaxSpreadSimilarSlack < 2 {
		t.Errorf("max spread at similar slack = %v, expected ≥2x", res.MaxSpreadSimilarSlack)
	}
	// Binding diagnostics must cover every feasible mapping exactly once.
	total := 0
	for _, n := range res.BindingByClass {
		total += n
	}
	if total != res.Feasible {
		t.Errorf("binding counts %d != feasible %d", total, res.Feasible)
	}
	if len(res.TopBinding) == 0 || res.TopBinding[0].Count == 0 {
		t.Errorf("no top binding features")
	}
	for i := 1; i < len(res.TopBinding); i++ {
		if res.TopBinding[i].Count > res.TopBinding[i-1].Count {
			t.Errorf("top binding not sorted: %v", res.TopBinding)
		}
	}
	rep := res.Report()
	for _, want := range []string{"Figure 4", "corr(slack", "binding constraint class"} {
		if !strings.Contains(rep, want) {
			t.Errorf("report missing %q", want)
		}
	}
	var sb strings.Builder
	if err := res.WriteCSV(&sb); err != nil {
		t.Fatal(err)
	}
	if _, err := RunFig4(Fig4Config{}); err == nil {
		t.Errorf("zero config accepted")
	}
}

func TestFindTable2Pair(t *testing.T) {
	cfg := PaperFig4Config()
	cfg.Mappings = 300
	res, err := RunFig4(cfg)
	if err != nil {
		t.Fatal(err)
	}
	pair, err := FindTable2Pair(res, 0.01)
	if err != nil {
		t.Fatal(err)
	}
	if pair.Ratio < 2 {
		t.Errorf("pair ratio = %v, expected ≥2 (paper: 3.3)", pair.Ratio)
	}
	if pair.SlackGap > 0.01 {
		t.Errorf("slack gap = %v", pair.SlackGap)
	}
	if pair.A.Robustness > pair.B.Robustness {
		t.Errorf("A should be the fragile mapping")
	}
	rep := pair.Report()
	for _, want := range []string{"mapping A", "mapping B", "λ1*", "application assignments", "computation time functions", "robustness ratio"} {
		if !strings.Contains(rep, want) {
			t.Errorf("Table 2 report missing %q", want)
		}
	}
	// Tolerance too small to admit any pair → error. (Zero robustness
	// mappings are excluded, so an absurdly tiny tolerance with distinct
	// slacks yields nothing.)
	if _, err := FindTable2Pair(&Fig4Result{Rows: []Fig4Row{{Slack: 0.1, Robustness: 1}, {Slack: 0.9, Robustness: 2}}}, 0.001); err == nil {
		t.Errorf("impossible tolerance accepted")
	}
	if _, err := FindTable2Pair(&Fig4Result{}, 0.01); err == nil {
		t.Errorf("empty population accepted")
	}
}

func TestRunFig1(t *testing.T) {
	res, err := RunFig1(PaperFig1Config())
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Curve) != PaperFig1Config().CurvePoints {
		t.Errorf("curve points = %d", len(res.Curve))
	}
	// Every curve point satisfies f = β^max.
	imp := fig1Impact()
	for _, pt := range res.Curve {
		if v := imp.Eval(pt[:]); math.Abs(v-res.Config.BetaMax) > 1e-6 {
			t.Fatalf("curve point off the boundary: f=%v", v)
		}
	}
	// π* is on the boundary and no sampled point is closer than the radius.
	if v := imp.Eval(res.Star); math.Abs(v-res.Config.BetaMax) > 1e-4 {
		t.Errorf("π* off boundary: f=%v", v)
	}
	for _, pt := range res.Curve {
		dx := pt[0] - res.Config.Orig[0]
		dy := pt[1] - res.Config.Orig[1]
		if d := math.Hypot(dx, dy); d < res.Radius-1e-6 {
			t.Errorf("sampled point closer than radius: %v < %v", d, res.Radius)
		}
	}
	rep := res.Report()
	for _, want := range []string{"Figure 1", "π^orig", "robustness radius"} {
		if !strings.Contains(rep, want) {
			t.Errorf("report missing %q", want)
		}
	}
	var sb strings.Builder
	if err := res.WriteCSV(&sb); err != nil {
		t.Fatal(err)
	}
	// Errors: wrong dimension, infeasible operating point.
	if _, err := RunFig1(Fig1Config{Orig: []float64{1}, BetaMax: 25}); err == nil {
		t.Errorf("1-D config accepted")
	}
	if _, err := RunFig1(Fig1Config{Orig: []float64{10, 10}, BetaMax: 25}); err == nil {
		t.Errorf("infeasible operating point accepted")
	}
}

func TestRunFig2(t *testing.T) {
	res, err := RunFig2(PaperFig2Config())
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Paths) != 19 {
		t.Errorf("paths = %d want 19", len(res.Paths))
	}
	rep := res.Report()
	for _, want := range []string{"Figure 2", "19 paths", "trigger"} {
		if !strings.Contains(rep, want) {
			t.Errorf("report missing %q", want)
		}
	}
	// Without a target the generator still produces a valid result.
	free, err := RunFig2(Fig2Config{Seed: 1, Gen: PaperFig2Config().Gen})
	if err != nil {
		t.Fatal(err)
	}
	if len(free.Paths) == 0 {
		t.Errorf("no paths enumerated")
	}
}
