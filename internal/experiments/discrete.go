package experiments

import (
	"fmt"
	"io"
	"math"
	"strings"

	"fepia/internal/core"
	"fepia/internal/hiperd"
	"fepia/internal/lattice"
	"fepia/internal/stats"
)

// DiscreteConfig parameterises the discrete-radius experiment: §3.2 floors
// the continuous metric because the sensor loads are integers and defers
// the exact treatment to [1]; this experiment quantifies how conservative
// the floor is against the exact lattice radius computed by
// internal/lattice.
type DiscreteConfig struct {
	// Seed drives instance generation and mapping sampling.
	Seed int64
	// Mappings is the number of feasible mappings compared.
	Mappings int
	// System parameterises the HiPer-D generator.
	System hiperd.GenParams
}

// PaperDiscreteConfig compares 50 feasible mappings of the §4.3 instance.
func PaperDiscreteConfig() DiscreteConfig {
	return DiscreteConfig{Seed: 2003, Mappings: 50, System: hiperd.PaperGenParams()}
}

// DiscreteRow is one mapping's three radii.
type DiscreteRow struct {
	// Continuous is ρ from Eq. 11 before flooring.
	Continuous float64
	// Floored is the paper's metric, floor(Continuous).
	Floored float64
	// Exact is the distance to the nearest violating integer load vector.
	Exact float64
}

// DiscreteResult summarises the comparison.
type DiscreteResult struct {
	Config DiscreteConfig
	Rows   []DiscreteRow
	// MeanGiveaway is the average of (Exact − Floored): robustness the
	// floor approximation gives away, in objects per data set.
	MeanGiveaway float64
	// MaxGiveaway is the worst case.
	MaxGiveaway float64
	// OrderingViolations counts rows where floored ≤ continuous ≤ exact
	// fails — always 0 if the implementations are correct.
	OrderingViolations int
}

// RunDiscrete executes the experiment.
func RunDiscrete(cfg DiscreteConfig) (*DiscreteResult, error) {
	if cfg.Mappings <= 0 {
		return nil, fmt.Errorf("experiments: discrete config needs a positive mapping count")
	}
	rng := stats.NewRNG(cfg.Seed)
	sys, err := hiperd.GenerateSystem(rng, cfg.System)
	if err != nil {
		return nil, err
	}
	res := &DiscreteResult{Config: cfg}
	var sum float64
	for len(res.Rows) < cfg.Mappings {
		m := hiperd.RandomMapping(rng, sys)
		if hiperd.Slack(sys, m) <= 0 {
			continue // infeasible: all three radii are zero, uninformative
		}
		features, p, err := hiperd.Features(sys, m)
		if err != nil {
			return nil, err
		}
		cont, floored, exact, err := lattice.ExactDiscreteRadius(features, p, core.Options{}, lattice.Options{
			NonNegative: true,
		})
		if err != nil {
			return nil, err
		}
		row := DiscreteRow{Continuous: cont, Floored: floored, Exact: exact.Radius}
		res.Rows = append(res.Rows, row)
		if !(row.Floored <= row.Continuous+1e-9 && row.Continuous <= row.Exact+1e-9) {
			res.OrderingViolations++
		}
		give := row.Exact - row.Floored
		sum += give
		if give > res.MaxGiveaway {
			res.MaxGiveaway = give
		}
	}
	res.MeanGiveaway = sum / float64(len(res.Rows))
	return res, nil
}

// WriteCSV emits one row per mapping.
func (r *DiscreteResult) WriteCSV(w io.Writer) error {
	rows := make([][]float64, len(r.Rows))
	for i, row := range r.Rows {
		rows[i] = []float64{row.Continuous, row.Floored, row.Exact}
	}
	return WriteCSV(w, []string{"continuous", "floored", "exact_discrete"}, rows)
}

// Report renders the comparison.
func (r *DiscreteResult) Report() string {
	var b strings.Builder
	fmt.Fprintf(&b, "Discrete perturbation parameter: floor(ρ) vs exact lattice radius (%d feasible mappings)\n\n", len(r.Rows))
	fmt.Fprintf(&b, "%12s %12s %12s %12s\n", "continuous", "floored", "exact", "giveaway")
	show := r.Rows
	if len(show) > 12 {
		show = show[:12]
	}
	for _, row := range show {
		fmt.Fprintf(&b, "%12.3f %12.0f %12.3f %12.3f\n",
			row.Continuous, row.Floored, row.Exact, row.Exact-row.Floored)
	}
	if len(r.Rows) > len(show) {
		fmt.Fprintf(&b, "  … (%d more rows in the CSV)\n", len(r.Rows)-len(show))
	}
	fmt.Fprintf(&b, "\nordering floored ≤ continuous ≤ exact violated: %d times (must be 0)\n", r.OrderingViolations)
	fmt.Fprintf(&b, "robustness given away by flooring: mean %.3f, max %.3f objects/data set\n",
		r.MeanGiveaway, r.MaxGiveaway)
	avgRel := 0.0
	n := 0
	for _, row := range r.Rows {
		if row.Exact > 0 && !math.IsInf(row.Exact, 1) {
			avgRel += (row.Exact - row.Floored) / row.Exact
			n++
		}
	}
	if n > 0 {
		fmt.Fprintf(&b, "relative giveaway: %.2f%% on average — the paper's floor is a cheap, nearly-tight approximation\n",
			100*avgRel/float64(n))
	}
	return b.String()
}
