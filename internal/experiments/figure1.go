package experiments

import (
	"fmt"
	"io"
	"math"
	"strings"

	"fepia/internal/core"
	"fepia/internal/vecmath"
)

// Fig1Config parameterises the Figure 1 illustration: one feature with a
// curved boundary f(π) = β^max over a two-element perturbation parameter.
type Fig1Config struct {
	// Orig is π^orig (paper draws it strictly inside the robust region).
	Orig []float64
	// BetaMax is the upper bound of the feature.
	BetaMax float64
	// CurvePoints is the number of boundary samples emitted (default 64).
	CurvePoints int
}

// PaperFig1Config uses f(π) = π₁² + π₁π₂ + π₂² — a convex quadratic whose
// level set is the kind of concave-from-origin curve the figure sketches —
// with π^orig = (1.5, 1.0) and β^max = 25.
func PaperFig1Config() Fig1Config {
	return Fig1Config{Orig: []float64{1.5, 1.0}, BetaMax: 25, CurvePoints: 64}
}

// Fig1Result holds the boundary curve, the operating point, the
// minimising boundary point π*, and the robustness radius.
type Fig1Result struct {
	Config Fig1Config
	// Curve is the sampled set {π : f(π) = β^max} in the first quadrant.
	Curve [][2]float64
	// Star is π*(φ) — the closest boundary point to Orig.
	Star []float64
	// Radius is r_μ(φ, π) = ‖π* − π^orig‖₂.
	Radius float64
}

// fig1Impact is the fixed quadratic used by the illustration.
func fig1Impact() *core.FuncImpact {
	return &core.FuncImpact{
		N: 2,
		F: func(pi []float64) float64 {
			return pi[0]*pi[0] + pi[0]*pi[1] + pi[1]*pi[1]
		},
		Grad: func(dst, pi []float64) []float64 {
			if len(dst) != 2 {
				dst = make([]float64, 2)
			}
			dst[0] = 2*pi[0] + pi[1]
			dst[1] = pi[0] + 2*pi[1]
			return dst
		},
		Convex: true,
	}
}

// RunFig1 computes the illustration data.
func RunFig1(cfg Fig1Config) (*Fig1Result, error) {
	if len(cfg.Orig) != 2 {
		return nil, fmt.Errorf("experiments: Fig1 needs a 2-element π^orig")
	}
	if cfg.CurvePoints <= 0 {
		cfg.CurvePoints = 64
	}
	imp := fig1Impact()
	if imp.Eval(cfg.Orig) >= cfg.BetaMax {
		return nil, fmt.Errorf("experiments: π^orig is outside the robust region")
	}
	feature := core.Feature{Name: "phi", Impact: imp, Bounds: core.NoMin(cfg.BetaMax)}
	p := core.Perturbation{Name: "π", Orig: cfg.Orig}
	radius, err := core.ComputeRadius(feature, p, core.Options{})
	if err != nil {
		return nil, err
	}

	res := &Fig1Result{Config: cfg, Star: radius.Boundary, Radius: radius.Radius}
	// Sample the first-quadrant boundary by sweeping the angle and solving
	// f(t·cosθ, t·sinθ) = β along each ray from the origin (f is increasing
	// in t on rays in the first quadrant).
	for k := 0; k < cfg.CurvePoints; k++ {
		theta := math.Pi / 2 * float64(k) / float64(cfg.CurvePoints-1)
		ux, uy := math.Cos(theta), math.Sin(theta)
		// Quadratic in t: (ux²+uxuy+uy²)t² = β.
		q := ux*ux + ux*uy + uy*uy
		t := math.Sqrt(cfg.BetaMax / q)
		res.Curve = append(res.Curve, [2]float64{t * ux, t * uy})
	}
	return res, nil
}

// WriteCSV emits the boundary curve with the special points flagged.
func (r *Fig1Result) WriteCSV(w io.Writer) error {
	rows := make([][]float64, 0, len(r.Curve)+2)
	for _, pt := range r.Curve {
		rows = append(rows, []float64{pt[0], pt[1], 0})
	}
	rows = append(rows, []float64{r.Config.Orig[0], r.Config.Orig[1], 1}) // π^orig
	rows = append(rows, []float64{r.Star[0], r.Star[1], 2})               // π*
	return WriteCSV(w, []string{"pi1", "pi2", "kind"}, rows)
}

// Report renders the curve, π^orig, and π* as an ASCII sketch plus the
// computed radius.
func (r *Fig1Result) Report() string {
	var b strings.Builder
	b.WriteString("Figure 1 — boundary curve {π : f(π) = β^max}, operating point, and π*\n\n")
	var xs, ys []float64
	for _, pt := range r.Curve {
		xs = append(xs, pt[0])
		ys = append(ys, pt[1])
	}
	// Overlay the operating point and π* by appending them many times so
	// they show as dense glyphs.
	for i := 0; i < 9; i++ {
		xs = append(xs, r.Config.Orig[0])
		ys = append(ys, r.Config.Orig[1])
		xs = append(xs, r.Star[0])
		ys = append(ys, r.Star[1])
	}
	b.WriteString(Scatter(xs, ys, 64, 20, "π₁", "π₂"))
	fmt.Fprintf(&b, "\nπ^orig = (%.3f, %.3f)   f(π^orig) = %.3f\n",
		r.Config.Orig[0], r.Config.Orig[1], fig1Impact().Eval(r.Config.Orig))
	fmt.Fprintf(&b, "π*      = (%.3f, %.3f)   f(π*) = %.3f (β^max = %g)\n",
		r.Star[0], r.Star[1], fig1Impact().Eval(r.Star), r.Config.BetaMax)
	fmt.Fprintf(&b, "robustness radius r = ‖π* − π^orig‖₂ = %.4f\n", r.Radius)
	// Sanity echo: the radius equals the distance to the closest sampled
	// curve point up to discretisation.
	best := math.Inf(1)
	for _, pt := range r.Curve {
		if d := vecmath.Distance(pt[:], r.Config.Orig); d < best {
			best = d
		}
	}
	fmt.Fprintf(&b, "closest sampled curve point at distance %.4f (discretised check)\n", best)
	return b.String()
}
