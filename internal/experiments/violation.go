package experiments

import (
	"fmt"
	"io"
	"strings"

	"fepia/internal/etcgen"
	"fepia/internal/hcs"
	"fepia/internal/indalloc"
	"fepia/internal/sim"
	"fepia/internal/stats"
)

// ViolationConfig parameterises the simulation-backed validation
// experiment (an extension beyond the paper): the empirical violation
// probability as a function of the ETC error norm, which must be exactly
// zero up to the robustness radius ρ and rise beyond it.
type ViolationConfig struct {
	// Seed drives instance, mapping, and sampling.
	Seed int64
	// Tau is the makespan tolerance.
	Tau float64
	// ETC parameterises the workload.
	ETC etcgen.Params
	// RadiiFractions are the sphere radii as multiples of ρ.
	RadiiFractions []float64
	// PerRadius is the sample count per sphere.
	PerRadius int
}

// PaperViolationConfig uses the §4.2 workload with τ = 1.2 and spheres
// from 0.25ρ to 8ρ.
func PaperViolationConfig() ViolationConfig {
	return ViolationConfig{
		Seed:           2003,
		Tau:            1.2,
		ETC:            etcgen.PaperParams(),
		RadiiFractions: []float64{0.25, 0.5, 0.75, 0.9, 0.99, 1.1, 1.5, 2, 3, 5, 8},
		PerRadius:      2000,
	}
}

// ViolationResult is the curve plus the guarantee check.
type ViolationResult struct {
	Config ViolationConfig
	// Rho is the analytic robustness metric of the sampled mapping.
	Rho float64
	// Curve holds (radius, empirical violation probability) pairs.
	Curve []sim.CurvePoint
	// GuaranteeHolds reports that every sphere at or inside ρ had zero
	// violations.
	GuaranteeHolds bool
	// FirstViolationRadius is the smallest tested radius with a positive
	// violation probability (0 when none violated).
	FirstViolationRadius float64
}

// RunViolation executes the experiment on one random mapping of a fresh
// §4.2 instance.
func RunViolation(cfg ViolationConfig) (*ViolationResult, error) {
	if cfg.PerRadius <= 0 || len(cfg.RadiiFractions) == 0 {
		return nil, fmt.Errorf("experiments: violation config needs radii and samples")
	}
	rng := stats.NewRNG(cfg.Seed)
	etc, err := etcgen.Generate(rng, cfg.ETC)
	if err != nil {
		return nil, err
	}
	inst, err := hcs.NewInstance(etc)
	if err != nil {
		return nil, err
	}
	m := hcs.RandomMapping(rng, inst)
	ev, err := indalloc.Evaluate(m, cfg.Tau)
	if err != nil {
		return nil, err
	}
	radii := make([]float64, len(cfg.RadiiFractions))
	for i, f := range cfg.RadiiFractions {
		radii[i] = f * ev.Robustness
	}
	curve, err := sim.ViolationCurve(rng, m, cfg.Tau, radii, cfg.PerRadius)
	if err != nil {
		return nil, err
	}
	res := &ViolationResult{Config: cfg, Rho: ev.Robustness, Curve: curve, GuaranteeHolds: true}
	for i, pt := range curve {
		if cfg.RadiiFractions[i] <= 1 && pt.Probability > 0 {
			res.GuaranteeHolds = false
		}
		if pt.Probability > 0 && res.FirstViolationRadius == 0 {
			res.FirstViolationRadius = pt.Radius
		}
	}
	return res, nil
}

// WriteCSV emits the curve.
func (r *ViolationResult) WriteCSV(w io.Writer) error {
	rows := make([][]float64, len(r.Curve))
	for i, pt := range r.Curve {
		rows[i] = []float64{pt.Radius, pt.Radius / r.Rho, pt.Probability}
	}
	return WriteCSV(w, []string{"radius", "radius_over_rho", "violation_probability"}, rows)
}

// Report renders the curve and the guarantee verdict.
func (r *ViolationResult) Report() string {
	var b strings.Builder
	fmt.Fprintf(&b, "Violation probability vs ETC error norm (simulation; ρ = %.4g)\n\n", r.Rho)
	fmt.Fprintf(&b, "%12s %12s %14s\n", "‖δ‖₂", "‖δ‖₂/ρ", "P(violation)")
	for i, pt := range r.Curve {
		marker := ""
		if r.Config.RadiiFractions[i] <= 1 {
			marker = "  (guaranteed 0)"
		}
		fmt.Fprintf(&b, "%12.4g %12.3g %14.4f%s\n", pt.Radius, pt.Radius/r.Rho, pt.Probability, marker)
	}
	fmt.Fprintf(&b, "\nguarantee holds: %v", r.GuaranteeHolds)
	if r.FirstViolationRadius > 0 {
		fmt.Fprintf(&b, "; first observed violation at ‖δ‖₂ = %.4g (%.3gρ)",
			r.FirstViolationRadius, r.FirstViolationRadius/r.Rho)
	}
	b.WriteString("\n")
	return b.String()
}
