package experiments

import (
	"fmt"
	"strings"

	"fepia/internal/dag"
	"fepia/internal/stats"
)

// Fig2Config parameterises the Figure 2 illustration: a HiPer-D-like DAG
// with its path decomposition.
type Fig2Config struct {
	// Seed drives DAG generation.
	Seed int64
	// Gen configures the generator.
	Gen dag.GenConfig
	// TargetPaths retries generation until the path count matches
	// (0 disables).
	TargetPaths int
}

// PaperFig2Config mirrors the §4.3 instance: 3 sensors, 20 applications,
// 3 actuators, 19 paths.
func PaperFig2Config() Fig2Config {
	return Fig2Config{Seed: 2003, Gen: dag.PaperGenConfig(), TargetPaths: 19}
}

// Fig2Result is the generated DAG and its paths.
type Fig2Result struct {
	Config Fig2Config
	Graph  *dag.Graph
	Paths  []dag.Path
}

// RunFig2 generates the illustration instance.
func RunFig2(cfg Fig2Config) (*Fig2Result, error) {
	rng := stats.NewRNG(cfg.Seed)
	var g *dag.Graph
	var paths []dag.Path
	var err error
	if cfg.TargetPaths > 0 {
		g, paths, err = dag.GenerateWithPathCount(rng, cfg.Gen, cfg.TargetPaths, 0)
	} else {
		g, err = dag.Generate(rng, cfg.Gen)
		if err == nil {
			paths, err = g.Paths(0)
		}
	}
	if err != nil {
		return nil, err
	}
	return &Fig2Result{Config: cfg, Graph: g, Paths: paths}, nil
}

// Report renders the DAG adjacency (diamonds=sensors, circles=apps,
// rectangles=actuators in the paper; here prefixes s/a/act) and the path
// decomposition with its trigger/update classification.
func (r *Fig2Result) Report() string {
	var b strings.Builder
	g := r.Graph
	fmt.Fprintf(&b, "Figure 2 — application DAG: %d sensors, %d applications, %d actuators, %d paths\n\n",
		len(g.Sensors()), len(g.Applications()), len(g.Actuators()), len(r.Paths))
	b.WriteString("edges (producer -> consumers):\n")
	for v := 0; v < g.Len(); v++ {
		succ := g.Successors(v)
		if len(succ) == 0 {
			continue
		}
		names := make([]string, len(succ))
		for i, s := range succ {
			names[i] = g.NameOf(s)
		}
		marker := ""
		if g.MultiInput(v) {
			marker = "  [multi-input]"
		}
		fmt.Fprintf(&b, "  %-5s -> %s%s\n", g.NameOf(v), strings.Join(names, ", "), marker)
	}
	b.WriteString("\npaths (dashed enclosures of the paper's figure):\n")
	trigger, update := 0, 0
	for k, p := range r.Paths {
		if p.Kind == dag.Trigger {
			trigger++
		} else {
			update++
		}
		fmt.Fprintf(&b, "  P%-3d %s\n", k+1, p.Format(g))
	}
	fmt.Fprintf(&b, "\n%d trigger paths, %d update paths\n", trigger, update)
	return b.String()
}
