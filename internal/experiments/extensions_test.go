package experiments

import (
	"strings"
	"testing"
)

func TestRunViolation(t *testing.T) {
	cfg := PaperViolationConfig()
	cfg.PerRadius = 300 // keep the unit test fast
	res, err := RunViolation(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if !res.GuaranteeHolds {
		t.Errorf("violation inside the ρ-ball")
	}
	if len(res.Curve) != len(cfg.RadiiFractions) {
		t.Fatalf("curve points = %d", len(res.Curve))
	}
	// The big spheres must produce violations (otherwise the experiment
	// is vacuous).
	last := res.Curve[len(res.Curve)-1]
	if last.Probability == 0 {
		t.Errorf("no violations even at %gρ", cfg.RadiiFractions[len(cfg.RadiiFractions)-1])
	}
	if res.FirstViolationRadius <= res.Rho {
		t.Errorf("first violation at %v inside ρ=%v", res.FirstViolationRadius, res.Rho)
	}
	rep := res.Report()
	for _, want := range []string{"P(violation)", "guarantee holds: true"} {
		if !strings.Contains(rep, want) {
			t.Errorf("report missing %q", want)
		}
	}
	var sb strings.Builder
	if err := res.WriteCSV(&sb); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(sb.String(), "violation_probability") {
		t.Errorf("CSV header missing")
	}
	if _, err := RunViolation(ViolationConfig{}); err == nil {
		t.Errorf("zero config accepted")
	}
}

func TestRunDiscrete(t *testing.T) {
	cfg := PaperDiscreteConfig()
	cfg.Mappings = 8
	res, err := RunDiscrete(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Rows) != 8 {
		t.Fatalf("rows = %d", len(res.Rows))
	}
	if res.OrderingViolations != 0 {
		t.Errorf("%d ordering violations", res.OrderingViolations)
	}
	for i, row := range res.Rows {
		if row.Exact < row.Floored-1e-9 {
			t.Errorf("row %d: exact %v below floored %v", i, row.Exact, row.Floored)
		}
	}
	if res.MeanGiveaway < 0 {
		t.Errorf("negative mean giveaway %v", res.MeanGiveaway)
	}
	rep := res.Report()
	for _, want := range []string{"floor", "exact", "giveaway"} {
		if !strings.Contains(rep, want) {
			t.Errorf("report missing %q", want)
		}
	}
	var sb strings.Builder
	if err := res.WriteCSV(&sb); err != nil {
		t.Fatal(err)
	}
	if _, err := RunDiscrete(DiscreteConfig{}); err == nil {
		t.Errorf("zero config accepted")
	}
}

func TestRunConsistency(t *testing.T) {
	cfg := PaperConsistencyConfig()
	cfg.Mappings = 120
	res, err := RunConsistency(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Rows) != 3 {
		t.Fatalf("rows = %d", len(res.Rows))
	}
	classes := map[string]bool{}
	for _, row := range res.Rows {
		classes[row.Class] = true
		// The Eq. 6 structure is class-independent: positive correlation
		// and at least one S₁(x) cluster in every class.
		if row.Pearson < 0.2 {
			t.Errorf("%s: corr = %v", row.Class, row.Pearson)
		}
		if row.Clusters == 0 {
			t.Errorf("%s: no clusters", row.Class)
		}
		if row.MeanRho <= 0 || row.MeanMakespan <= 0 {
			t.Errorf("%s: implausible means %+v", row.Class, row)
		}
	}
	for _, want := range []string{"inconsistent", "semi-consistent", "consistent"} {
		if !classes[want] {
			t.Errorf("class %q missing", want)
		}
	}
	rep := res.Report()
	if !strings.Contains(rep, "consistency ablation") {
		t.Errorf("report header missing")
	}
	var sb strings.Builder
	if err := res.WriteCSV(&sb); err != nil {
		t.Fatal(err)
	}
	if lines := strings.Count(sb.String(), "\n"); lines != 4 {
		t.Errorf("CSV lines = %d", lines)
	}
	if _, err := RunConsistency(ConsistencyConfig{}); err == nil {
		t.Errorf("zero config accepted")
	}
}

func TestRunDynStudy(t *testing.T) {
	cfg := PaperDynStudyConfig()
	cfg.Trials = 3
	res, err := RunDynStudy(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Rows) != 8 { // 5 immediate + 3 batch
		t.Fatalf("rows = %d", len(res.Rows))
	}
	var olb, mct, batchMin DynRow
	for _, row := range res.Rows {
		if row.Makespan <= 0 || row.MeanRho < 0 || row.MinRho < 0 {
			t.Errorf("%s: implausible %+v", row.Name, row)
		}
		switch row.Name {
		case "OLB":
			olb = row
		case "MCT":
			mct = row
		case "batch-Min-min":
			batchMin = row
		}
	}
	if batchMin.Makespan <= 0 {
		t.Fatalf("batch rows missing")
	}
	// MCT sees ETCs, OLB does not: MCT wins on makespan for this
	// heterogeneous workload.
	if mct.Makespan > olb.Makespan {
		t.Errorf("MCT %v worse than OLB %v", mct.Makespan, olb.Makespan)
	}
	rep := res.Report()
	if !strings.Contains(rep, "min ρ(t)") {
		t.Errorf("report missing fragile-moment column")
	}
	var sb strings.Builder
	if err := res.WriteCSV(&sb); err != nil {
		t.Fatal(err)
	}
	if lines := strings.Count(sb.String(), "\n"); lines != 9 { // header + 8 rows
		t.Errorf("CSV lines = %d", lines)
	}
	if _, err := RunDynStudy(DynStudyConfig{}); err == nil {
		t.Errorf("zero config accepted")
	}
}

func TestRunNorms(t *testing.T) {
	cfg := PaperNormsConfig()
	cfg.Mappings = 100
	res, err := RunNorms(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.RhoL2) != 100 || len(res.RhoL1) != 100 || len(res.RhoLInf) != 100 {
		t.Fatalf("series lengths wrong")
	}
	// For the §3.1 system the dual norms order the metrics strictly:
	// ρ_ℓ∞ ≤ ρ_ℓ₂ ≤ ρ_ℓ₁ per mapping (1 ≤ √n ≤ n).
	for i := range res.RhoL2 {
		if !(res.RhoLInf[i] <= res.RhoL2[i]+1e-9 && res.RhoL2[i] <= res.RhoL1[i]+1e-9) {
			t.Fatalf("norm ordering violated at %d: %v %v %v", i, res.RhoLInf[i], res.RhoL2[i], res.RhoL1[i])
		}
	}
	if !(res.MeanRatioL1 >= 1) || !(res.MeanRatioLInf <= 1) {
		t.Errorf("mean ratios: l1 %v linf %v", res.MeanRatioL1, res.MeanRatioLInf)
	}
	// Rankings should be strongly (but not perfectly) preserved.
	if res.SpearmanL1 < 0.7 || res.SpearmanLInf < 0.7 {
		t.Errorf("rank correlations too low: %v %v", res.SpearmanL1, res.SpearmanLInf)
	}
	rep := res.Report()
	if !strings.Contains(rep, "Spearman") {
		t.Errorf("report missing correlations")
	}
	var sb strings.Builder
	if err := res.WriteCSV(&sb); err != nil {
		t.Fatal(err)
	}
	if _, err := RunNorms(NormsConfig{}); err == nil {
		t.Errorf("zero config accepted")
	}
}

func TestRunHeurStudy(t *testing.T) {
	cfg := PaperHeurStudyConfig()
	cfg.Trials = 2
	res, err := RunHeurStudy(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Rows) != 15 { // 11 classics + Sufferage + 3 robust variants
		t.Fatalf("rows = %d", len(res.Rows))
	}
	names := map[string]bool{}
	var minmin, refine HeurRow
	for _, row := range res.Rows {
		names[row.Name] = true
		if row.Makespan <= 0 || row.Rho <= 0 || row.LBI < 0 || row.LBI > 1 {
			t.Errorf("%s: implausible averages %+v", row.Name, row)
		}
		switch row.Name {
		case "Min-min":
			minmin = row
		case "Robust-refine(Min-min)":
			refine = row
		}
	}
	if !names["GA"] || !names["A*"] || !names["Robust-greedy"] || !names["Robust-GA"] {
		t.Errorf("suite incomplete: %v", names)
	}
	if minmin.RhoVersusMinMin != 1 {
		t.Errorf("Min-min self-ratio = %v", minmin.RhoVersusMinMin)
	}
	// The refinement maximises ρ subject to the τ cap: it must beat its
	// seed on ρ and stay within τ on makespan.
	if refine.Rho < minmin.Rho {
		t.Errorf("refinement ρ %v below Min-min %v", refine.Rho, minmin.Rho)
	}
	if refine.Makespan > cfg.Tau*minmin.Makespan*1.0001 {
		t.Errorf("refinement makespan %v exceeds τ×Min-min %v", refine.Makespan, cfg.Tau*minmin.Makespan)
	}
	rep := res.Report()
	if !strings.Contains(rep, "rho/Min-min") {
		t.Errorf("report missing ratio column")
	}
	var sb strings.Builder
	if err := res.WriteCSV(&sb); err != nil {
		t.Fatal(err)
	}
	if lines := strings.Count(sb.String(), "\n"); lines != 16 {
		t.Errorf("CSV lines = %d", lines)
	}
	if _, err := RunHeurStudy(HeurStudyConfig{}); err == nil {
		t.Errorf("zero config accepted")
	}
	if _, err := RunHeurStudy(HeurStudyConfig{Trials: 1, Tau: 0.5}); err == nil {
		t.Errorf("bad tau accepted")
	}
}
