// Package experiments reproduces the paper's evaluation artifacts:
// Figure 1 (the boundary-curve concept), Figure 2 (the HiPer-D DAG),
// Figure 3 (robustness vs makespan, 1000 random mappings), Figure 4
// (robustness vs slack, 1000 random mappings), and Table 2 (two mappings
// with similar slack but very different robustness). Beyond the paper it
// adds the extension studies X1–X6: the simulation-backed violation curve
// (X1), floor(ρ) vs the exact discrete lattice radius (X2), ρ under
// alternative norms (X3), the mapping-heuristic ablation (X4), the
// dynamic-mapping robustness timeline (X5), and the ETC consistency
// ablation (X6).
//
// Each experiment has a deterministic Run function returning plain data
// plus helpers to render ASCII scatter plots and CSV for external
// plotting. The population-scale experiments (Figures 3–4, X4, X5)
// dispatch their per-mapping work through internal/batch; every config
// exposes a Workers knob, and results are bit-identical for any worker
// count because RNG draws stay sequential and accumulation order is
// fixed.
package experiments

import (
	"fmt"
	"io"
	"math"
	"strings"
)

// Scatter renders an ASCII scatter plot of the points (x[i], y[i]) on a
// width×height character grid with axis annotations. Multiple points per
// cell darken the glyph (· : * #).
func Scatter(x, y []float64, width, height int, xlabel, ylabel string) string {
	if len(x) != len(y) {
		return fmt.Sprintf("scatter: mismatched series (%d vs %d)", len(x), len(y))
	}
	if len(x) == 0 {
		return "scatter: no data"
	}
	if width < 16 {
		width = 16
	}
	if height < 8 {
		height = 8
	}
	xmin, xmax := minMax(x)
	ymin, ymax := minMax(y)
	if xmax == xmin {
		xmax = xmin + 1
	}
	if ymax == ymin {
		ymax = ymin + 1
	}
	grid := make([][]int, height)
	for r := range grid {
		grid[r] = make([]int, width)
	}
	for i := range x {
		if math.IsNaN(x[i]) || math.IsNaN(y[i]) || math.IsInf(x[i], 0) || math.IsInf(y[i], 0) {
			continue
		}
		c := int((x[i] - xmin) / (xmax - xmin) * float64(width-1))
		r := int((y[i] - ymin) / (ymax - ymin) * float64(height-1))
		grid[height-1-r][c]++
	}
	glyph := func(n int) byte {
		switch {
		case n == 0:
			return ' '
		case n == 1:
			return '.'
		case n <= 3:
			return ':'
		case n <= 8:
			return '*'
		default:
			return '#'
		}
	}
	var b strings.Builder
	fmt.Fprintf(&b, "%s\n", ylabel)
	for r := 0; r < height; r++ {
		switch r {
		case 0:
			fmt.Fprintf(&b, "%10.4g |", ymax)
		case height - 1:
			fmt.Fprintf(&b, "%10.4g |", ymin)
		default:
			fmt.Fprintf(&b, "%10s |", "")
		}
		for c := 0; c < width; c++ {
			b.WriteByte(glyph(grid[r][c]))
		}
		b.WriteByte('\n')
	}
	fmt.Fprintf(&b, "%10s +%s\n", "", strings.Repeat("-", width))
	fmt.Fprintf(&b, "%10s  %-*.4g%*.4g\n", "", width/2, xmin, width-width/2, xmax)
	fmt.Fprintf(&b, "%10s  %s\n", "", center(xlabel, width))
	return b.String()
}

func center(s string, width int) string {
	if len(s) >= width {
		return s
	}
	pad := (width - len(s)) / 2
	return strings.Repeat(" ", pad) + s
}

func minMax(v []float64) (float64, float64) {
	lo, hi := math.Inf(1), math.Inf(-1)
	for _, x := range v {
		if math.IsNaN(x) || math.IsInf(x, 0) {
			continue
		}
		lo = math.Min(lo, x)
		hi = math.Max(hi, x)
	}
	if math.IsInf(lo, 1) { // no finite data
		return 0, 1
	}
	return lo, hi
}

// WriteCSV writes a header row and float rows in RFC-4180 style (numbers
// need no quoting).
func WriteCSV(w io.Writer, header []string, rows [][]float64) error {
	if _, err := fmt.Fprintln(w, strings.Join(header, ",")); err != nil {
		return err
	}
	for _, row := range rows {
		parts := make([]string, len(row))
		for i, v := range row {
			parts[i] = fmt.Sprintf("%g", v)
		}
		if _, err := fmt.Fprintln(w, strings.Join(parts, ",")); err != nil {
			return err
		}
	}
	return nil
}
