package experiments

import (
	"fmt"
	"io"
	"strings"

	"fepia/internal/core"
	"fepia/internal/etcgen"
	"fepia/internal/hcs"
	"fepia/internal/indalloc"
	"fepia/internal/stats"
	"fepia/internal/vecmath"
)

// NormsConfig parameterises the norm-sensitivity ablation: the paper fixes
// the ℓ₂ norm in Eq. 1; this experiment measures how much the metric — and
// more importantly the *ranking* of mappings by robustness — changes under
// ℓ₁ and ℓ∞. For the §3.1 system the dual norms give closed forms:
// ℓ₂ divides the headroom by √n_j, ℓ₁ by 1, ℓ∞ by n_j.
type NormsConfig struct {
	// Seed drives the workload and mappings.
	Seed int64
	// Mappings is the population size.
	Mappings int
	// Tau is the makespan tolerance.
	Tau float64
	// ETC parameterises the workload.
	ETC etcgen.Params
}

// PaperNormsConfig uses the §4.2 workload with 300 mappings.
func PaperNormsConfig() NormsConfig {
	return NormsConfig{Seed: 2003, Mappings: 300, Tau: 1.2, ETC: etcgen.PaperParams()}
}

// NormsResult summarises the ablation.
type NormsResult struct {
	Config NormsConfig
	// RhoL2, RhoL1, RhoLInf are the per-mapping metrics.
	RhoL2, RhoL1, RhoLInf []float64
	// MeanRatioL1 and MeanRatioLInf are mean(ρ_norm/ρ_ℓ₂).
	MeanRatioL1, MeanRatioLInf float64
	// SpearmanL1 and SpearmanLInf are rank correlations against the ℓ₂
	// ranking — how much mapping selection depends on the norm choice.
	SpearmanL1, SpearmanLInf float64
}

// RunNorms executes the ablation.
func RunNorms(cfg NormsConfig) (*NormsResult, error) {
	if cfg.Mappings <= 0 {
		return nil, fmt.Errorf("experiments: norms config needs a positive mapping count")
	}
	rng := stats.NewRNG(cfg.Seed)
	etc, err := etcgen.Generate(rng, cfg.ETC)
	if err != nil {
		return nil, err
	}
	inst, err := hcs.NewInstance(etc)
	if err != nil {
		return nil, err
	}
	res := &NormsResult{Config: cfg}
	norms := []struct {
		norm vecmath.Norm
		dst  *[]float64
	}{
		{vecmath.L2{}, &res.RhoL2},
		{vecmath.L1{}, &res.RhoL1},
		{vecmath.LInf{}, &res.RhoLInf},
	}
	for i := 0; i < cfg.Mappings; i++ {
		m := hcs.RandomMapping(rng, inst)
		features, p, err := indalloc.Features(m, cfg.Tau)
		if err != nil {
			return nil, err
		}
		for _, n := range norms {
			a, err := core.Analyze(features, p, core.Options{Norm: n.norm})
			if err != nil {
				return nil, err
			}
			*n.dst = append(*n.dst, a.Robustness)
		}
	}
	var r1, rInf float64
	for i := range res.RhoL2 {
		if res.RhoL2[i] > 0 {
			r1 += res.RhoL1[i] / res.RhoL2[i]
			rInf += res.RhoLInf[i] / res.RhoL2[i]
		}
	}
	res.MeanRatioL1 = r1 / float64(len(res.RhoL2))
	res.MeanRatioLInf = rInf / float64(len(res.RhoL2))
	res.SpearmanL1 = stats.Spearman(res.RhoL2, res.RhoL1)
	res.SpearmanLInf = stats.Spearman(res.RhoL2, res.RhoLInf)
	return res, nil
}

// WriteCSV emits the per-mapping triples.
func (r *NormsResult) WriteCSV(w io.Writer) error {
	rows := make([][]float64, len(r.RhoL2))
	for i := range rows {
		rows[i] = []float64{r.RhoL2[i], r.RhoL1[i], r.RhoLInf[i]}
	}
	return WriteCSV(w, []string{"rho_l2", "rho_l1", "rho_linf"}, rows)
}

// Report renders the ablation summary.
func (r *NormsResult) Report() string {
	var b strings.Builder
	fmt.Fprintf(&b, "Norm sensitivity of the robustness metric (%d random mappings)\n\n", len(r.RhoL2))
	fmt.Fprintf(&b, "mean ρ_ℓ₁ / ρ_ℓ₂   = %.3f  (ℓ₁ divides headroom by the largest coefficient)\n", r.MeanRatioL1)
	fmt.Fprintf(&b, "mean ρ_ℓ∞ / ρ_ℓ₂   = %.3f  (ℓ∞ divides headroom by the coefficient sum)\n", r.MeanRatioLInf)
	fmt.Fprintf(&b, "Spearman(ℓ₂, ℓ₁)   = %.3f\n", r.SpearmanL1)
	fmt.Fprintf(&b, "Spearman(ℓ₂, ℓ∞)   = %.3f\n", r.SpearmanLInf)
	b.WriteString("\nThe metric's magnitude is strongly norm-dependent, but high rank\n")
	b.WriteString("correlations mean the relative ordering of mappings — what a designer\n")
	b.WriteString("actually uses — is largely preserved; the paper's fixed ℓ₂ choice is a\n")
	b.WriteString("units convention more than a modelling commitment.\n")
	return b.String()
}
