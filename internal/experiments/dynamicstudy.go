package experiments

import (
	"fmt"
	"io"
	"math"
	"strings"

	"fepia/internal/dynamic"
	"fepia/internal/stats"
)

// DynStudyConfig parameterises the dynamic-mapping study: the five
// immediate-mode heuristics of Maheswaran et al. (reference [21] of the
// paper) compared on makespan and on the online robustness timeline —
// the conditional Eq. 6 radius of the committed work at every arrival.
type DynStudyConfig struct {
	// Seed drives workload generation and the heuristics.
	Seed int64
	// Trials is the number of workloads averaged over.
	Trials int
	// Tau is the tolerance for the conditional radii.
	Tau float64
	// Gen parameterises workload generation.
	Gen dynamic.GenParams
}

// PaperDynStudyConfig averages 20 paper-scale workloads at τ = 1.2.
func PaperDynStudyConfig() DynStudyConfig {
	return DynStudyConfig{Seed: 2003, Trials: 20, Tau: 1.2, Gen: dynamic.PaperGenParams()}
}

// DynRow is one heuristic's averages.
type DynRow struct {
	Name string
	// Makespan is the mean completion time of the workload.
	Makespan float64
	// MeanRho is the mean conditional robustness over all snapshots.
	MeanRho float64
	// MinRho is the mean over trials of the run's most fragile snapshot.
	MinRho float64
}

// DynStudyResult is the study outcome.
type DynStudyResult struct {
	Config DynStudyConfig
	Rows   []DynRow
}

// RunDynStudy executes the study over both the immediate-mode suite and
// the batch-mode suite (batch interval: four mean interarrival times, so
// each mapping event sees a handful of pending tasks).
func RunDynStudy(cfg DynStudyConfig) (*DynStudyResult, error) {
	if cfg.Trials <= 0 {
		return nil, fmt.Errorf("experiments: dynamic study needs a positive trial count")
	}
	immediate := dynamic.All()
	batch := dynamic.AllBatch()
	interval := 4 * cfg.Gen.MeanInterarrival
	total := len(immediate) + len(batch)
	type agg struct{ makespan, meanRho, minRho float64 }
	sums := make([]agg, total)

	accumulate := func(i int, res *dynamic.Result) {
		sums[i].makespan += res.Makespan
		sums[i].meanRho += res.MeanRobustness
		minRho := math.Inf(1)
		for _, s := range res.Snapshots {
			if s.Robustness < minRho {
				minRho = s.Robustness
			}
		}
		if !math.IsInf(minRho, 1) {
			sums[i].minRho += minRho
		}
	}

	rng := stats.NewRNG(cfg.Seed)
	for trial := 0; trial < cfg.Trials; trial++ {
		w, err := dynamic.Generate(rng, cfg.Gen)
		if err != nil {
			return nil, err
		}
		for i, h := range immediate {
			res, err := dynamic.Run(stats.NewRNG(cfg.Seed+int64(trial)), w, h, cfg.Tau)
			if err != nil {
				return nil, err
			}
			accumulate(i, res)
		}
		for i, h := range batch {
			res, err := dynamic.RunBatch(stats.NewRNG(cfg.Seed+int64(trial)), w, h, interval, cfg.Tau)
			if err != nil {
				return nil, err
			}
			accumulate(len(immediate)+i, res)
		}
	}
	out := &DynStudyResult{Config: cfg}
	n := float64(cfg.Trials)
	names := make([]string, 0, total)
	for _, h := range immediate {
		names = append(names, h.Name())
	}
	for _, h := range batch {
		names = append(names, h.Name())
	}
	for i, name := range names {
		out.Rows = append(out.Rows, DynRow{
			Name:     name,
			Makespan: sums[i].makespan / n,
			MeanRho:  sums[i].meanRho / n,
			MinRho:   sums[i].minRho / n,
		})
	}
	return out, nil
}

// WriteCSV emits the table.
func (r *DynStudyResult) WriteCSV(w io.Writer) error {
	if _, err := fmt.Fprintln(w, "heuristic,makespan,mean_rho,min_rho"); err != nil {
		return err
	}
	for _, row := range r.Rows {
		if _, err := fmt.Fprintf(w, "%s,%g,%g,%g\n", row.Name, row.Makespan, row.MeanRho, row.MinRho); err != nil {
			return err
		}
	}
	return nil
}

// Report renders the table.
func (r *DynStudyResult) Report() string {
	var b strings.Builder
	fmt.Fprintf(&b, "dynamic mapping study: %d workloads of %d arrivals on %d machines (tau=%.2f)\n\n",
		r.Config.Trials, r.Config.Gen.Tasks, r.Config.Gen.Machines, r.Config.Tau)
	fmt.Fprintf(&b, "%-14s %12s %12s %12s\n", "heuristic", "makespan", "mean ρ(t)", "min ρ(t)")
	for _, row := range r.Rows {
		fmt.Fprintf(&b, "%-14s %12.4g %12.4g %12.4g\n", row.Name, row.Makespan, row.MeanRho, row.MinRho)
	}
	b.WriteString("\nρ(t) is the conditional Eq. 6 radius of the committed work at each\n")
	b.WriteString("arrival: how much collective error in the outstanding estimates the\n")
	b.WriteString("current commitment tolerates. min ρ(t) is the run's most fragile moment.\n")
	return b.String()
}
