package experiments

import (
	"context"
	"fmt"
	"io"
	"math"
	"strings"

	batchengine "fepia/internal/batch"
	"fepia/internal/dynamic"
	"fepia/internal/stats"
)

// DynStudyConfig parameterises the dynamic-mapping study: the five
// immediate-mode heuristics of Maheswaran et al. (reference [21] of the
// paper) compared on makespan and on the online robustness timeline —
// the conditional Eq. 6 radius of the committed work at every arrival.
type DynStudyConfig struct {
	// Seed drives workload generation and the heuristics.
	Seed int64
	// Trials is the number of workloads averaged over.
	Trials int
	// Tau is the tolerance for the conditional radii.
	Tau float64
	// Gen parameterises workload generation.
	Gen dynamic.GenParams
	// Workers bounds the concurrent (trial × heuristic) simulations
	// (≤ 0 selects GOMAXPROCS). Each simulation owns its RNG, so results
	// are independent of the worker count.
	Workers int
}

// PaperDynStudyConfig averages 20 paper-scale workloads at τ = 1.2.
func PaperDynStudyConfig() DynStudyConfig {
	return DynStudyConfig{Seed: 2003, Trials: 20, Tau: 1.2, Gen: dynamic.PaperGenParams()}
}

// DynRow is one heuristic's averages.
type DynRow struct {
	Name string
	// Makespan is the mean completion time of the workload.
	Makespan float64
	// MeanRho is the mean conditional robustness over all snapshots.
	MeanRho float64
	// MinRho is the mean over trials of the run's most fragile snapshot.
	MinRho float64
}

// DynStudyResult is the study outcome.
type DynStudyResult struct {
	Config DynStudyConfig
	Rows   []DynRow
}

// RunDynStudy executes the study over both the immediate-mode suite and
// the batch-mode suite (batch interval: four mean interarrival times, so
// each mapping event sees a handful of pending tasks).
func RunDynStudy(cfg DynStudyConfig) (*DynStudyResult, error) {
	if cfg.Trials <= 0 {
		return nil, fmt.Errorf("experiments: dynamic study needs a positive trial count")
	}
	immediate := dynamic.All()
	batch := dynamic.AllBatch()
	interval := 4 * cfg.Gen.MeanInterarrival
	total := len(immediate) + len(batch)
	type agg struct{ makespan, meanRho, minRho float64 }
	sums := make([]agg, total)

	accumulate := func(i int, res *dynamic.Result) {
		sums[i].makespan += res.Makespan
		sums[i].meanRho += res.MeanRobustness
		minRho := math.Inf(1)
		for _, s := range res.Snapshots {
			if s.Robustness < minRho {
				minRho = s.Robustness
			}
		}
		if !math.IsInf(minRho, 1) {
			sums[i].minRho += minRho
		}
	}

	// Generate the workloads sequentially (shared RNG stream), then run
	// the trial × heuristic grid concurrently; each simulation seeds its
	// own RNG. Results land in a fixed grid and are accumulated in the
	// sequential order afterwards, so the averages are bit-identical to a
	// serial run.
	rng := stats.NewRNG(cfg.Seed)
	workloads := make([]dynamic.Workload, cfg.Trials)
	for trial := range workloads {
		w, err := dynamic.Generate(rng, cfg.Gen)
		if err != nil {
			return nil, err
		}
		workloads[trial] = w
	}
	grid := make([]*dynamic.Result, cfg.Trials*total)
	err := batchengine.ForEach(context.Background(), len(grid), cfg.Workers, func(c int) error {
		trial, i := c/total, c%total
		w := workloads[trial]
		var res *dynamic.Result
		var err error
		if i < len(immediate) {
			res, err = dynamic.Run(stats.NewRNG(cfg.Seed+int64(trial)), w, immediate[i], cfg.Tau)
		} else {
			res, err = dynamic.RunBatch(stats.NewRNG(cfg.Seed+int64(trial)), w, batch[i-len(immediate)], interval, cfg.Tau)
		}
		if err != nil {
			return err
		}
		grid[c] = res
		return nil
	})
	if err != nil {
		return nil, err
	}
	for trial := 0; trial < cfg.Trials; trial++ {
		for i := 0; i < total; i++ {
			accumulate(i, grid[trial*total+i])
		}
	}
	out := &DynStudyResult{Config: cfg}
	n := float64(cfg.Trials)
	names := make([]string, 0, total)
	for _, h := range immediate {
		names = append(names, h.Name())
	}
	for _, h := range batch {
		names = append(names, h.Name())
	}
	for i, name := range names {
		out.Rows = append(out.Rows, DynRow{
			Name:     name,
			Makespan: sums[i].makespan / n,
			MeanRho:  sums[i].meanRho / n,
			MinRho:   sums[i].minRho / n,
		})
	}
	return out, nil
}

// WriteCSV emits the table.
func (r *DynStudyResult) WriteCSV(w io.Writer) error {
	if _, err := fmt.Fprintln(w, "heuristic,makespan,mean_rho,min_rho"); err != nil {
		return err
	}
	for _, row := range r.Rows {
		if _, err := fmt.Fprintf(w, "%s,%g,%g,%g\n", row.Name, row.Makespan, row.MeanRho, row.MinRho); err != nil {
			return err
		}
	}
	return nil
}

// Report renders the table.
func (r *DynStudyResult) Report() string {
	var b strings.Builder
	fmt.Fprintf(&b, "dynamic mapping study: %d workloads of %d arrivals on %d machines (tau=%.2f)\n\n",
		r.Config.Trials, r.Config.Gen.Tasks, r.Config.Gen.Machines, r.Config.Tau)
	fmt.Fprintf(&b, "%-14s %12s %12s %12s\n", "heuristic", "makespan", "mean ρ(t)", "min ρ(t)")
	for _, row := range r.Rows {
		fmt.Fprintf(&b, "%-14s %12.4g %12.4g %12.4g\n", row.Name, row.Makespan, row.MeanRho, row.MinRho)
	}
	b.WriteString("\nρ(t) is the conditional Eq. 6 radius of the committed work at each\n")
	b.WriteString("arrival: how much collective error in the outstanding estimates the\n")
	b.WriteString("current commitment tolerates. min ρ(t) is the run's most fragile moment.\n")
	return b.String()
}
