package experiments

import (
	"context"
	"fmt"
	"io"
	"math"
	"sort"
	"strings"

	"fepia/internal/batch"
	"fepia/internal/hiperd"
	"fepia/internal/stats"
)

// Fig4Config parameterises the §4.3 experiment.
type Fig4Config struct {
	// Seed drives the experiment deterministically.
	Seed int64
	// Mappings is the number of random mappings (1000 in the paper).
	Mappings int
	// System parameterises the HiPer-D instance generator.
	System hiperd.GenParams
	// Workers bounds the concurrent mapping analyses (≤ 0 selects
	// GOMAXPROCS). Results are independent of the worker count.
	Workers int
	// CacheCapacity bounds the shared radius cache for the sweep (≤ 0
	// selects the batch default). Mappings that induce structurally
	// identical feature hyperplanes share the solved radii.
	CacheCapacity int
}

// PaperFig4Config reproduces §4.3: a 19-path, 3-sensor, 20-application,
// 5-machine instance with the published rates and loads, evaluated over
// 1000 random mappings.
func PaperFig4Config() Fig4Config {
	return Fig4Config{Seed: 2003, Mappings: 1000, System: hiperd.PaperGenParams()}
}

// Fig4Row is one mapping's evaluation.
type Fig4Row struct {
	// Slack is the §4.3 system-wide percentage slack at λ^orig.
	Slack float64
	// Robustness is ρ_μ(Φ, λ) in objects per data set.
	Robustness float64
	// Critical names the binding feature.
	Critical string
	// Mapping is the machine assignment (kept for Table 2 extraction).
	Mapping hiperd.Mapping
	// BoundaryLoads is λ* for the binding feature.
	BoundaryLoads []float64
}

// Fig4Result is the full experiment outcome.
type Fig4Result struct {
	Config Fig4Config
	// System is the generated instance shared by all mappings.
	System *hiperd.System
	Rows   []Fig4Row
	// PearsonSlack is corr(slack, robustness) over the feasible mappings.
	PearsonSlack float64
	// Feasible counts mappings with positive slack.
	Feasible int
	// MaxSpreadSimilarSlack is the largest robustness ratio between two
	// feasible mappings whose slacks differ by < 0.01 — the Table 2
	// phenomenon.
	MaxSpreadSimilarSlack float64
	// PlateauSize is the largest number of feasible mappings sharing one
	// robustness value while their slacks span ≥ 0.1 — the paper's
	// "virtually indistinguishable" cluster.
	PlateauSize int
	// PlateauRobustness is that shared robustness value.
	PlateauRobustness float64
	// BindingByClass counts which constraint class binds the metric across
	// feasible mappings: "throughput-comp" (Tc), "throughput-comm" (Tn),
	// or "latency" (L) — the bottleneck diagnosis a system designer acts
	// on.
	BindingByClass map[string]int
	// TopBinding lists the most frequently binding individual features,
	// most frequent first (up to 5).
	TopBinding []BindingCount
}

// BindingCount pairs a feature name with how often it was critical.
type BindingCount struct {
	Feature string
	Count   int
}

// RunFig4 executes the experiment.
func RunFig4(cfg Fig4Config) (*Fig4Result, error) {
	if cfg.Mappings <= 0 {
		return nil, fmt.Errorf("experiments: Fig4 Mappings = %d must be positive", cfg.Mappings)
	}
	rng := stats.NewRNG(cfg.Seed)
	sys, err := hiperd.GenerateSystem(rng, cfg.System)
	if err != nil {
		return nil, err
	}
	// Draw the population sequentially (worker-count independent), then
	// analyse it over the batch engine with a sweep-wide radius cache.
	mappings := make([]hiperd.Mapping, cfg.Mappings)
	for i := range mappings {
		mappings[i] = hiperd.RandomMapping(rng, sys)
	}
	evs, err := hiperd.EvaluateBatch(context.Background(), sys, mappings, batch.Options{
		Workers: cfg.Workers,
		Cache:   batch.NewCache(cfg.CacheCapacity),
	})
	if err != nil {
		return nil, err
	}
	res := &Fig4Result{Config: cfg, System: sys, Rows: make([]Fig4Row, 0, cfg.Mappings)}
	for i, ev := range evs {
		row := Fig4Row{
			Slack:         ev.Slack,
			Robustness:    ev.Robustness,
			Mapping:       mappings[i],
			BoundaryLoads: ev.BoundaryLoads,
		}
		if cf := ev.Analysis.CriticalFeature(); cf != nil {
			row.Critical = cf.Feature
		}
		res.Rows = append(res.Rows, row)
	}
	res.summarise()
	return res, nil
}

func (r *Fig4Result) summarise() {
	var slacks, rhos []float64
	for _, row := range r.Rows {
		if row.Slack > 0 {
			r.Feasible++
			slacks = append(slacks, row.Slack)
			rhos = append(rhos, row.Robustness)
		}
	}
	if len(slacks) >= 2 {
		r.PearsonSlack = stats.Pearson(slacks, rhos)
	} else {
		r.PearsonSlack = math.NaN()
	}

	// Largest robustness ratio at near-identical slack.
	order := make([]int, len(slacks))
	for i := range order {
		order[i] = i
	}
	sort.Slice(order, func(a, b int) bool { return slacks[order[a]] < slacks[order[b]] })
	for i := 0; i < len(order); i++ {
		for j := i + 1; j < len(order) && slacks[order[j]]-slacks[order[i]] < 0.01; j++ {
			lo := math.Min(rhos[order[i]], rhos[order[j]])
			hi := math.Max(rhos[order[i]], rhos[order[j]])
			if lo > 0 && hi/lo > r.MaxSpreadSimilarSlack {
				r.MaxSpreadSimilarSlack = hi / lo
			}
		}
	}

	// Plateau: robustness value shared by the most mappings, provided
	// their slack spread is ≥ 0.1.
	bySlack := make(map[float64][]float64) // robustness → slacks
	for i := range slacks {
		bySlack[rhos[i]] = append(bySlack[rhos[i]], slacks[i])
	}
	// Ties between equally large plateaus go to the smallest ρ, so the
	// report does not depend on map iteration order.
	for rho, ss := range bySlack {
		lo, hi := minMax(ss)
		if hi-lo < 0.1 {
			continue
		}
		if len(ss) > r.PlateauSize || (len(ss) == r.PlateauSize && rho < r.PlateauRobustness) {
			r.PlateauSize = len(ss)
			r.PlateauRobustness = rho
		}
	}

	// Binding-constraint diagnosis over feasible mappings.
	r.BindingByClass = make(map[string]int)
	byFeature := make(map[string]int)
	for _, row := range r.Rows {
		if row.Slack <= 0 || row.Critical == "" {
			continue
		}
		switch {
		case strings.HasPrefix(row.Critical, "Tc("):
			r.BindingByClass["throughput-comp"]++
		case strings.HasPrefix(row.Critical, "Tn("):
			r.BindingByClass["throughput-comm"]++
		case strings.HasPrefix(row.Critical, "L("):
			r.BindingByClass["latency"]++
		default:
			r.BindingByClass["other"]++
		}
		byFeature[row.Critical]++
	}
	for name, count := range byFeature {
		r.TopBinding = append(r.TopBinding, BindingCount{Feature: name, Count: count})
	}
	sort.Slice(r.TopBinding, func(a, b int) bool {
		if r.TopBinding[a].Count != r.TopBinding[b].Count {
			return r.TopBinding[a].Count > r.TopBinding[b].Count
		}
		return r.TopBinding[a].Feature < r.TopBinding[b].Feature
	})
	if len(r.TopBinding) > 5 {
		r.TopBinding = r.TopBinding[:5]
	}
}

// Series returns the (slack, robustness) series of the scatter plot
// (feasible mappings only, as in the paper's figure).
func (r *Fig4Result) Series() (x, y []float64) {
	for _, row := range r.Rows {
		if row.Slack > 0 {
			x = append(x, row.Slack)
			y = append(y, row.Robustness)
		}
	}
	return x, y
}

// WriteCSV emits one row per mapping (including infeasible ones, flagged
// by non-positive slack).
func (r *Fig4Result) WriteCSV(w io.Writer) error {
	rows := make([][]float64, len(r.Rows))
	for i, row := range r.Rows {
		rows[i] = []float64{row.Slack, row.Robustness}
	}
	return WriteCSV(w, []string{"slack", "robustness"}, rows)
}

// Report renders the scatter plus the quantitative summary.
func (r *Fig4Result) Report() string {
	var b strings.Builder
	x, y := r.Series()
	fmt.Fprintf(&b, "Figure 4 — robustness against slack, %d random mappings (%d feasible)\n\n", len(r.Rows), r.Feasible)
	b.WriteString(Scatter(x, y, 72, 24, "slack", "robustness (objects/data set)"))
	fmt.Fprintf(&b, "\ncorr(slack, robustness)               = %+.3f\n", r.PearsonSlack)
	fmt.Fprintf(&b, "max robustness ratio at ~equal slack   = %.2fx\n", r.MaxSpreadSimilarSlack)
	if r.PlateauSize > 0 {
		fmt.Fprintf(&b, "plateau: %d mappings share ρ=%g across ≥0.1 of slack\n", r.PlateauSize, r.PlateauRobustness)
	}
	if len(r.BindingByClass) > 0 {
		b.WriteString("\nbinding constraint class over feasible mappings:\n")
		for _, class := range []string{"throughput-comp", "throughput-comm", "latency", "other"} {
			if n := r.BindingByClass[class]; n > 0 {
				fmt.Fprintf(&b, "  %-16s %4d\n", class, n)
			}
		}
		b.WriteString("most frequently binding features:\n")
		for _, bc := range r.TopBinding {
			fmt.Fprintf(&b, "  %-10s %4d\n", bc.Feature, bc.Count)
		}
	}
	return b.String()
}
