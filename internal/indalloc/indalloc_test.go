package indalloc

import (
	"math"
	"testing"
	"testing/quick"

	"fepia/internal/core"
	"fepia/internal/etcgen"
	"fepia/internal/hcs"
	"fepia/internal/stats"
	"fepia/internal/vecmath"
)

// twoMachineMapping: a0,a1 → m0 (finish 3), a2,a3 → m1 (finish 7).
func twoMachineMapping(t *testing.T) *hcs.Mapping {
	t.Helper()
	inst, err := hcs.NewInstance(etcgen.Matrix{
		{1, 9}, {2, 9}, {9, 3}, {9, 4},
	})
	if err != nil {
		t.Fatal(err)
	}
	m, err := hcs.NewMapping(inst, []int{0, 0, 1, 1})
	if err != nil {
		t.Fatal(err)
	}
	return m
}

func TestEvaluateClosedForm(t *testing.T) {
	m := twoMachineMapping(t)
	// M^orig = 7, τ = 1.2 → bound 8.4.
	// r(m0) = (8.4−3)/√2 = 3.8184; r(m1) = (8.4−7)/√2 = 0.9899.
	res, err := Evaluate(m, 1.2)
	if err != nil {
		t.Fatal(err)
	}
	if res.PredictedMakespan != 7 {
		t.Errorf("M^orig = %v", res.PredictedMakespan)
	}
	want0 := (8.4 - 3) / math.Sqrt2
	want1 := (8.4 - 7) / math.Sqrt2
	if math.Abs(res.Radii[0]-want0) > 1e-12 || math.Abs(res.Radii[1]-want1) > 1e-12 {
		t.Errorf("radii = %v, want (%v, %v)", res.Radii, want0, want1)
	}
	if res.CriticalMachine != 1 {
		t.Errorf("critical machine = %d", res.CriticalMachine)
	}
	if math.Abs(res.Robustness-want1) > 1e-12 {
		t.Errorf("ρ = %v want %v", res.Robustness, want1)
	}
}

func TestEvaluateRejectsBadTau(t *testing.T) {
	m := twoMachineMapping(t)
	for _, tau := range []float64{0.5, 0.99, math.Inf(1), math.NaN()} {
		if _, err := Evaluate(m, tau); err == nil {
			t.Errorf("τ = %v accepted", tau)
		}
	}
	// τ = 1 is legal: zero tolerance means zero robustness.
	res, err := Evaluate(m, 1)
	if err != nil {
		t.Fatal(err)
	}
	if res.Robustness != 0 {
		t.Errorf("τ=1 robustness = %v, want 0", res.Robustness)
	}
}

func TestBoundaryETCObservations(t *testing.T) {
	// Observations (1) and (2) of §3.1: C* differs from C^orig only on the
	// critical machine, equally per application, and lies exactly on the
	// boundary F_j(C*) = τ·M^orig with ‖C*−C^orig‖₂ = ρ.
	m := twoMachineMapping(t)
	res, err := Evaluate(m, 1.2)
	if err != nil {
		t.Fatal(err)
	}
	orig := m.ETCVector()
	cstar := res.BoundaryETC
	// Applications on m0 (non-critical) unchanged.
	if cstar[0] != orig[0] || cstar[1] != orig[1] {
		t.Errorf("non-critical applications perturbed: %v vs %v", cstar, orig)
	}
	// Equal errors on the critical machine.
	d2 := cstar[2] - orig[2]
	d3 := cstar[3] - orig[3]
	if math.Abs(d2-d3) > 1e-12 {
		t.Errorf("unequal errors on critical machine: %v vs %v", d2, d3)
	}
	// On the boundary.
	f := m.FinishingTimes(cstar)
	if math.Abs(f[1]-1.2*7) > 1e-9 {
		t.Errorf("C* not on boundary: F_1 = %v", f[1])
	}
	// At distance ρ.
	if d := vecmath.Distance(cstar, orig); math.Abs(d-res.Robustness) > 1e-9 {
		t.Errorf("‖C*−C^orig‖ = %v want ρ = %v", d, res.Robustness)
	}
}

func TestEmptyMachineGetsInfiniteRadius(t *testing.T) {
	inst, _ := hcs.NewInstance(etcgen.Matrix{{1, 1}, {1, 1}})
	m, _ := hcs.NewMapping(inst, []int{0, 0})
	res, err := Evaluate(m, 1.2)
	if err != nil {
		t.Fatal(err)
	}
	if !math.IsInf(res.Radii[1], 1) {
		t.Errorf("idle machine radius = %v", res.Radii[1])
	}
	if res.CriticalMachine != 0 {
		t.Errorf("critical machine = %d", res.CriticalMachine)
	}
}

func TestFeaturesMatchEvaluate(t *testing.T) {
	// The generic core.Analyze on Features must reproduce Eq. 6/7 exactly.
	etc, _ := etcgen.Generate(stats.NewRNG(1), etcgen.PaperParams())
	inst, _ := hcs.NewInstance(etc)
	rng := stats.NewRNG(2)
	for trial := 0; trial < 25; trial++ {
		m := hcs.RandomMapping(rng, inst)
		res, err := Evaluate(m, 1.2)
		if err != nil {
			t.Fatal(err)
		}
		features, p, err := Features(m, 1.2)
		if err != nil {
			t.Fatal(err)
		}
		a, err := core.Analyze(features, p, core.Options{})
		if err != nil {
			t.Fatal(err)
		}
		if !vecmath.ScalarEqualApprox(a.Robustness, res.Robustness, 1e-9) {
			t.Fatalf("trial %d: generic ρ = %v, closed form = %v", trial, a.Robustness, res.Robustness)
		}
	}
	if _, _, err := Features(twoMachineMapping(t), 0.3); err == nil {
		t.Errorf("bad τ accepted by Features")
	}
}

func TestClassify(t *testing.T) {
	m := twoMachineMapping(t)
	info, err := Classify(m, 1.2)
	if err != nil {
		t.Fatal(err)
	}
	// Makespan machine is m1 with 2 apps; max count is 2 → in S1.
	if info.MakespanMachine != 1 || info.X != 2 || !info.InS1 {
		t.Errorf("cluster info = %+v", info)
	}
	if info.CriticalMachine != 1 {
		t.Errorf("critical machine = %d", info.CriticalMachine)
	}
	// An outlier case: makespan machine has fewer apps than another.
	inst, _ := hcs.NewInstance(etcgen.Matrix{
		{10, 1}, {1, 1}, {1, 1}, {1, 1},
	})
	m2, _ := hcs.NewMapping(inst, []int{0, 1, 1, 1})
	info2, err := Classify(m2, 1.2)
	if err != nil {
		t.Fatal(err)
	}
	// m0 finish = 10 (makespan machine, 1 app); m1 finish = 3 (3 apps).
	if info2.MakespanMachine != 0 || info2.X != 1 || info2.MaxCount != 3 || info2.InS1 {
		t.Errorf("outlier info = %+v", info2)
	}
	if _, err := Classify(m, 0.2); err == nil {
		t.Errorf("bad τ accepted by Classify")
	}
}

func TestVerifyRadiusHoldsOnRandomPerturbations(t *testing.T) {
	etc, _ := etcgen.Generate(stats.NewRNG(3), etcgen.PaperParams())
	inst, _ := hcs.NewInstance(etc)
	rng := stats.NewRNG(4)
	m := hcs.RandomMapping(rng, inst)
	res, err := Evaluate(m, 1.2)
	if err != nil {
		t.Fatal(err)
	}
	orig := m.ETCVector()
	n := len(orig)
	for trial := 0; trial < 2000; trial++ {
		// Random direction scaled to a random length ≤ ρ.
		dir := make([]float64, n)
		for i := range dir {
			dir[i] = rng.NormFloat64()
		}
		u, norm := vecmath.Normalize(nil, dir)
		if norm == 0 {
			continue
		}
		c := vecmath.AddScaled(nil, orig, rng.Float64()*res.Robustness, u)
		if err := VerifyRadius(m, 1.2, c); err != nil {
			t.Fatal(err)
		}
	}
	// And the boundary point itself violates just beyond ρ: scaling C*−C
	// by (1+ε) must exceed the bound.
	dir := vecmath.Sub(nil, res.BoundaryETC, orig)
	c := vecmath.AddScaled(nil, orig, 1.0001, dir)
	if m.Makespan(c) <= 1.2*res.PredictedMakespan {
		t.Errorf("point beyond the radius did not violate")
	}
}

// Property: robustness scales linearly with the ETC matrix — doubling all
// execution times doubles ρ (the metric has the units of C).
func TestQuickScaleInvariance(t *testing.T) {
	etc, _ := etcgen.Generate(stats.NewRNG(5), etcgen.PaperParams())
	inst, _ := hcs.NewInstance(etc)
	scaled := etc.Clone()
	for i := range scaled {
		for j := range scaled[i] {
			scaled[i][j] *= 2
		}
	}
	inst2, _ := hcs.NewInstance(scaled)
	rng := stats.NewRNG(6)
	f := func(struct{}) bool {
		m1 := hcs.RandomMapping(rng, inst)
		m2, err := hcs.NewMapping(inst2, m1.Assign)
		if err != nil {
			return false
		}
		r1, err1 := Evaluate(m1, 1.2)
		r2, err2 := Evaluate(m2, 1.2)
		if err1 != nil || err2 != nil {
			return false
		}
		return vecmath.ScalarEqualApprox(r2.Robustness, 2*r1.Robustness, 1e-9)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Error(err)
	}
}

// Property: increasing τ never decreases any radius or the metric.
func TestQuickTauMonotonicity(t *testing.T) {
	etc, _ := etcgen.Generate(stats.NewRNG(7), etcgen.PaperParams())
	inst, _ := hcs.NewInstance(etc)
	rng := stats.NewRNG(8)
	f := func(struct{}) bool {
		m := hcs.RandomMapping(rng, inst)
		lo, err1 := Evaluate(m, 1.1)
		hi, err2 := Evaluate(m, 1.5)
		if err1 != nil || err2 != nil {
			return false
		}
		for j := range lo.Radii {
			if hi.Radii[j] < lo.Radii[j] {
				return false
			}
		}
		return hi.Robustness >= lo.Robustness
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Error(err)
	}
}
