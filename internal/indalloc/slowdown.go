package indalloc

import (
	"fmt"
	"math"

	"fepia/internal/core"
	"fepia/internal/hcs"
	"fepia/internal/vecmath"
)

// This file derives a second robustness metric for the §3.1 system, with a
// different perturbation parameter: per-machine slowdown factors. It is a
// worked demonstration that the FePIA procedure — not just its makespan
// example — is what the library implements: same system, same features,
// new step-2 parameter, new metric.
//
//   - Features: the machine finishing times F_j, bounded by τ·M^orig
//     (unchanged from the ETC-error derivation).
//   - Perturbation: s = (s_1 … s_|M|), machine slowdown factors with
//     operating point s^orig = 1 (machine j at slowdown s_j completes its
//     queue in s_j·F_j(C^orig)). Background daemons, thermal throttling,
//     or co-scheduled work make s drift upward; the metric says how much
//     collective drift is tolerable.
//   - Impact: F_j(s) = s_j·W_j where W_j = Σ_{i on m_j} C_i^orig — affine
//     in s with a single non-zero coefficient.
//   - Analysis: the boundary F_j(s) = τ·M^orig is the axis-aligned plane
//     s_j = τ·M^orig/W_j, so r(F_j) = τ·M^orig/W_j − 1 and
//     ρ = τ·M^orig/max_j W_j − 1 = τ − 1: for THIS parameter the binding
//     machine is always the makespan machine and the metric is constant!
//     The per-machine radii still differentiate mappings (they show how
//     far each non-critical machine is from mattering), which is why
//     SlowdownResult reports them all.
type SlowdownResult struct {
	// Tau is the tolerance multiplier.
	Tau float64
	// PredictedMakespan is M^orig.
	PredictedMakespan float64
	// Radii[j] is r_μ(F_j, s): the tolerable slowdown of machine j alone
	// is 1 + Radii[j]. +Inf for idle machines.
	Radii []float64
	// Robustness is ρ_μ(Φ, s) = min_j Radii[j] = τ − 1 for any mapping
	// with work on the makespan machine.
	Robustness float64
	// CriticalMachine attains the minimum (the makespan machine).
	CriticalMachine int
}

// EvaluateSlowdown computes the slowdown-robustness analysis of a mapping.
func EvaluateSlowdown(m *hcs.Mapping, tau float64) (SlowdownResult, error) {
	if !(tau >= 1) || math.IsInf(tau, 0) {
		return SlowdownResult{}, fmt.Errorf("indalloc: tolerance τ = %v must be finite and ≥ 1", tau)
	}
	finish := m.PredictedFinishingTimes()
	mOrig, _ := vecmath.Max(finish)
	bound := tau * mOrig
	res := SlowdownResult{
		Tau:               tau,
		PredictedMakespan: mOrig,
		Radii:             make([]float64, len(finish)),
		Robustness:        math.Inf(1),
		CriticalMachine:   -1,
	}
	for j, w := range finish {
		if w == 0 {
			res.Radii[j] = math.Inf(1)
			continue
		}
		r := bound/w - 1
		if r < 0 {
			r = 0
		}
		res.Radii[j] = r
		if r < res.Robustness {
			res.Robustness = r
			res.CriticalMachine = j
		}
	}
	return res, nil
}

// SlowdownFeatures expresses the derivation in the generic FePIA
// vocabulary, for cross-validation against core.Analyze (tested): one
// affine feature per non-empty machine over the slowdown vector s.
func SlowdownFeatures(m *hcs.Mapping, tau float64) ([]core.Feature, core.Perturbation, error) {
	if !(tau >= 1) || math.IsInf(tau, 0) {
		return nil, core.Perturbation{}, fmt.Errorf("indalloc: tolerance τ = %v must be finite and ≥ 1", tau)
	}
	finish := m.PredictedFinishingTimes()
	mOrig, _ := vecmath.Max(finish)
	bound := tau * mOrig
	var features []core.Feature
	for j, w := range finish {
		if w == 0 {
			continue
		}
		coeffs := make([]float64, len(finish))
		coeffs[j] = w
		impact, err := core.NewLinearImpact(coeffs, 0)
		if err != nil {
			return nil, core.Perturbation{}, err
		}
		features = append(features, core.Feature{
			Name:   fmt.Sprintf("F_%d", j),
			Impact: impact,
			Bounds: core.NoMin(bound),
		})
	}
	orig := make([]float64, len(finish))
	for i := range orig {
		orig[i] = 1
	}
	p := core.Perturbation{Name: "s", Orig: orig, Units: "slowdown factor"}
	return features, p, nil
}
