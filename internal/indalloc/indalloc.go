// Package indalloc derives the robustness metric for the paper's first
// example system (§3.1): independent applications mapped to machines, with
// the makespan required to stay within τ times its predicted value against
// errors in the estimated times to compute (ETC).
//
// Following the FePIA procedure:
//
//   - Features (Eq. 3): the machine finishing times F_j.
//
//   - Perturbation: the vector C of actual execution times, with operating
//     point C^orig (the ETC values of the applications on their assigned
//     machines).
//
//   - Impact (Eq. 4): F_j(C) = Σ_{i: a_i on m_j} C_i — affine in C.
//
//   - Analysis (Eqs. 5–7): each boundary relationship F_j(C) = τ·M^orig is
//     a hyperplane whose distance from C^orig has the closed form
//
//     r_μ(F_j, C) = (τ·M^orig − F_j(C^orig)) / √(n(m_j))      (Eq. 6)
//
//     and the robustness metric is ρ_μ(Φ, C) = min_j r_μ(F_j, C) (Eq. 7).
package indalloc

import (
	"fmt"
	"math"

	"fepia/internal/core"
	"fepia/internal/hcs"
	"fepia/internal/vecmath"
)

// Result is the complete robustness analysis of one mapping.
type Result struct {
	// Tau is the tolerance multiplier (τ = 1.2 means a 20% tolerance).
	Tau float64
	// PredictedMakespan is M^orig.
	PredictedMakespan float64
	// Radii[j] is r_μ(F_j, C) per machine; +Inf for machines with no
	// applications (their finishing time is constant and can never
	// violate).
	Radii []float64
	// Robustness is ρ_μ(Φ, C) — the paper's metric, in the units of C
	// (time).
	Robustness float64
	// CriticalMachine is the machine attaining the minimum radius.
	CriticalMachine int
	// BoundaryETC is C*, the closest violating execution-time vector
	// (observations 1 and 2 of §3.1: it differs from C^orig only on the
	// critical machine, by an equal amount per application).
	BoundaryETC []float64
}

// Evaluate computes the robustness analysis of a mapping for tolerance τ.
// τ must be ≥ 1: the requirement is "actual makespan ≤ τ × predicted", and
// a τ below 1 is violated at the operating point itself.
func Evaluate(m *hcs.Mapping, tau float64) (Result, error) {
	if !(tau >= 1) || math.IsInf(tau, 0) {
		return Result{}, fmt.Errorf("indalloc: tolerance τ = %v must be finite and ≥ 1", tau)
	}
	orig := m.ETCVector()
	finish := m.FinishingTimes(orig)
	mOrig, _ := vecmath.Max(finish)
	bound := tau * mOrig

	machines := m.Instance().Machines()
	res := Result{
		Tau:               tau,
		PredictedMakespan: mOrig,
		Radii:             make([]float64, machines),
		Robustness:        math.Inf(1),
		CriticalMachine:   -1,
	}
	for j := 0; j < machines; j++ {
		n := m.Count(j)
		if n == 0 {
			res.Radii[j] = math.Inf(1)
			continue
		}
		r := (bound - finish[j]) / math.Sqrt(float64(n))
		if r < 0 {
			r = 0 // already violating (only possible when τ < 1, excluded)
		}
		res.Radii[j] = r
		if r < res.Robustness {
			res.Robustness = r
			res.CriticalMachine = j
		}
	}
	if res.CriticalMachine >= 0 {
		res.BoundaryETC = boundaryETC(m, orig, finish, bound, res.CriticalMachine)
	}
	return res, nil
}

// boundaryETC constructs C* for the binding machine: per observation (2) of
// §3.1, every application on that machine absorbs the same error
// (τM − F_j)/n_j, and per observation (1) all other applications keep their
// estimated times.
func boundaryETC(m *hcs.Mapping, orig, finish []float64, bound float64, j int) []float64 {
	cstar := vecmath.Clone(orig)
	n := m.Count(j)
	delta := (bound - finish[j]) / float64(n)
	for _, i := range m.OnMachine(j) {
		cstar[i] += delta
	}
	return cstar
}

// Features expresses the same analysis in the generic FePIA vocabulary of
// internal/core: one feature per non-empty machine with an affine impact
// function (the 0/1 indicator row of Eq. 4) bounded above by τ·M^orig, and
// the ETC vector as the perturbation parameter. Running core.Analyze on the
// output must agree with Evaluate — the library's cross-validation of
// Eq. 6 against the generic Eq. 1 machinery (tested in this package).
func Features(m *hcs.Mapping, tau float64) ([]core.Feature, core.Perturbation, error) {
	if !(tau >= 1) || math.IsInf(tau, 0) {
		return nil, core.Perturbation{}, fmt.Errorf("indalloc: tolerance τ = %v must be finite and ≥ 1", tau)
	}
	orig := m.ETCVector()
	bound := tau * m.Makespan(orig)
	nApps := m.Instance().Applications()
	var features []core.Feature
	for j := 0; j < m.Instance().Machines(); j++ {
		apps := m.OnMachine(j)
		if len(apps) == 0 {
			continue
		}
		coeffs := make([]float64, nApps)
		for _, i := range apps {
			coeffs[i] = 1
		}
		impact, err := core.NewLinearImpact(coeffs, 0)
		if err != nil {
			return nil, core.Perturbation{}, err
		}
		features = append(features, core.Feature{
			Name:   fmt.Sprintf("F_%d", j),
			Impact: impact,
			// Eq. 3 bounds the finishing times above by τ·M^orig; execution
			// times are non-negative, so the natural lower bound 0 of the
			// makespan example (⟨0, 1.3·M⟩ in §2 step 1) can never bind
			// for a mapping with positive ETCs — we keep the one-sided
			// form the analysis in §3.1 actually uses.
			Bounds: core.NoMin(bound),
		})
	}
	p := core.Perturbation{Name: "C", Orig: orig, Units: "time"}
	return features, p, nil
}

// ClusterInfo classifies a mapping for the §4.2 discussion of Figure 3's
// linear clusters: S₁(x) contains the mappings whose makespan machine also
// has the system-wide maximum application count x (for them, robustness is
// exactly proportional to M^orig); the outliers below each line are the
// mappings where some other machine determines the robustness.
type ClusterInfo struct {
	// MakespanMachine is m(C^orig).
	MakespanMachine int
	// X is n(m(C^orig)) — the application count of the makespan machine.
	X int
	// MaxCount is max_j n(m_j).
	MaxCount int
	// InS1 reports whether the mapping belongs to S₁(X), i.e.
	// X == MaxCount.
	InS1 bool
	// CriticalMachine is the machine that determines the robustness.
	CriticalMachine int
}

// Classify computes the cluster diagnostics of a mapping.
func Classify(m *hcs.Mapping, tau float64) (ClusterInfo, error) {
	res, err := Evaluate(m, tau)
	if err != nil {
		return ClusterInfo{}, err
	}
	orig := m.ETCVector()
	mk := m.CriticalMachine(orig)
	x := m.Count(mk)
	return ClusterInfo{
		MakespanMachine: mk,
		X:               x,
		MaxCount:        m.MaxCount(),
		InS1:            x == m.MaxCount(),
		CriticalMachine: res.CriticalMachine,
	}, nil
}

// VerifyRadius checks the defining property of the robustness metric for
// this system: for any execution-time vector c with ‖c − C^orig‖₂ ≤ ρ, the
// actual makespan is at most τ·M^orig. It returns an error describing the
// violation if the property fails (used by the Monte-Carlo certification
// tests).
func VerifyRadius(m *hcs.Mapping, tau float64, c []float64) error {
	res, err := Evaluate(m, tau)
	if err != nil {
		return err
	}
	dist := vecmath.Distance(c, m.ETCVector())
	actual := m.Makespan(c)
	bound := tau * res.PredictedMakespan
	if dist <= res.Robustness && actual > bound+1e-9*bound {
		return fmt.Errorf("indalloc: perturbation at distance %v ≤ ρ=%v violated the makespan bound: %v > %v",
			dist, res.Robustness, actual, bound)
	}
	return nil
}
