package indalloc

import (
	"math"
	"testing"

	"fepia/internal/core"
	"fepia/internal/etcgen"
	"fepia/internal/hcs"
	"fepia/internal/stats"
	"fepia/internal/vecmath"
)

func TestEvaluateSlowdownClosedForm(t *testing.T) {
	m := twoMachineMapping(t) // finish times (3, 7), M = 7.
	res, err := EvaluateSlowdown(m, 1.2)
	if err != nil {
		t.Fatal(err)
	}
	// r(F_0) = 1.2·7/3 − 1 = 1.8; r(F_1) = 1.2·7/7 − 1 = 0.2.
	if math.Abs(res.Radii[0]-1.8) > 1e-12 || math.Abs(res.Radii[1]-0.2) > 1e-12 {
		t.Errorf("radii = %v", res.Radii)
	}
	// ρ = τ − 1 with the makespan machine critical — always.
	if math.Abs(res.Robustness-0.2) > 1e-12 || res.CriticalMachine != 1 {
		t.Errorf("ρ = %v critical %d", res.Robustness, res.CriticalMachine)
	}
}

func TestSlowdownRhoIsTauMinusOne(t *testing.T) {
	// The §3.1 observation specific to this parameter: ρ is τ−1 for every
	// mapping (the makespan machine always binds).
	etc, _ := etcgen.Generate(stats.NewRNG(1), etcgen.PaperParams())
	inst, _ := hcs.NewInstance(etc)
	rng := stats.NewRNG(2)
	for trial := 0; trial < 25; trial++ {
		m := hcs.RandomMapping(rng, inst)
		for _, tau := range []float64{1.0, 1.2, 1.5} {
			res, err := EvaluateSlowdown(m, tau)
			if err != nil {
				t.Fatal(err)
			}
			if math.Abs(res.Robustness-(tau-1)) > 1e-9 {
				t.Fatalf("ρ = %v want τ−1 = %v", res.Robustness, tau-1)
			}
		}
	}
}

func TestSlowdownFeaturesMatchClosedForm(t *testing.T) {
	etc, _ := etcgen.Generate(stats.NewRNG(3), etcgen.PaperParams())
	inst, _ := hcs.NewInstance(etc)
	rng := stats.NewRNG(4)
	for trial := 0; trial < 10; trial++ {
		m := hcs.RandomMapping(rng, inst)
		res, err := EvaluateSlowdown(m, 1.2)
		if err != nil {
			t.Fatal(err)
		}
		features, p, err := SlowdownFeatures(m, 1.2)
		if err != nil {
			t.Fatal(err)
		}
		a, err := core.Analyze(features, p, core.Options{})
		if err != nil {
			t.Fatal(err)
		}
		if !vecmath.ScalarEqualApprox(a.Robustness, res.Robustness, 1e-9) {
			t.Fatalf("generic %v != closed form %v", a.Robustness, res.Robustness)
		}
	}
}

func TestSlowdownValidationAndIdle(t *testing.T) {
	m := twoMachineMapping(t)
	if _, err := EvaluateSlowdown(m, 0.9); err == nil {
		t.Errorf("bad τ accepted")
	}
	if _, _, err := SlowdownFeatures(m, math.Inf(1)); err == nil {
		t.Errorf("infinite τ accepted")
	}
	// Idle machine gets an infinite radius and no feature.
	inst, _ := hcs.NewInstance(etcgen.Matrix{{1, 1}, {1, 1}})
	mm, _ := hcs.NewMapping(inst, []int{0, 0})
	res, err := EvaluateSlowdown(mm, 1.2)
	if err != nil {
		t.Fatal(err)
	}
	if !math.IsInf(res.Radii[1], 1) {
		t.Errorf("idle machine radius = %v", res.Radii[1])
	}
	features, _, err := SlowdownFeatures(mm, 1.2)
	if err != nil {
		t.Fatal(err)
	}
	if len(features) != 1 {
		t.Errorf("features = %d, idle machine should be excluded", len(features))
	}
}
