package montecarlo

import (
	"context"

	"fepia/internal/batch"
	"fepia/internal/core"
	"fepia/internal/stats"
)

// Case is one certification unit for CertifyAll: a claimed radius with
// the feature set and perturbation it was computed for, plus the seed of
// the case's private sampling stream. Giving every case its own RNG is
// what makes the parallel run deterministic: reports do not depend on
// worker count or scheduling order.
type Case struct {
	// Seed initialises the case's sampling stream.
	Seed int64
	// Features is the feature set whose bounds define violation.
	Features []core.Feature
	// Perturbation supplies the operating point.
	Perturbation core.Perturbation
	// Rho is the claimed robustness metric under test.
	Rho float64
}

// CertifyAll certifies many claimed radii concurrently over the batch
// engine's worker pool (opts.Workers; the cache is not consulted —
// certification is pure sampling by design, independent of the analytic
// machinery it audits). Reports are returned in case order and are
// identical to calling Certify sequentially with each case's seed. The
// first failing case aborts the run.
func CertifyAll(ctx context.Context, cases []Case, cfg Config, opts batch.Options) ([]Report, error) {
	out := make([]Report, len(cases))
	err := batch.ForEach(ctx, len(cases), opts.Workers, func(i int) error {
		c := cases[i]
		rep, err := Certify(stats.NewRNG(c.Seed), c.Features, c.Perturbation, c.Rho, cfg)
		if err != nil {
			return err
		}
		out[i] = rep
		return nil
	})
	if err != nil {
		return nil, err
	}
	return out, nil
}
