// Package montecarlo provides statistical certification of computed
// robustness radii: samplers for perturbations in ℝⁿ and checks that (a) no
// sampled perturbation within the claimed radius violates any feature bound
// and (b) the empirical violation distance found by directional search is
// no smaller than the claimed radius. Together these give evidence that an
// implementation of Eq. 1/2 is sound (never over-promises) and tight
// (the boundary is actually attained).
package montecarlo

import (
	"fmt"
	"math"

	"fepia/internal/core"
	"fepia/internal/stats"
	"fepia/internal/vecmath"
)

// SampleDirection stores a uniformly random unit direction in dst
// (allocating when nil) and returns it.
func SampleDirection(rng *stats.RNG, dst []float64, n int) []float64 {
	if len(dst) != n {
		dst = make([]float64, n)
	}
	for {
		for i := range dst {
			dst[i] = rng.NormFloat64()
		}
		if _, norm := vecmath.Normalize(dst, dst); norm > 0 {
			return dst
		}
	}
}

// SampleOnSphere returns a uniform point on the sphere of the given radius
// around center.
func SampleOnSphere(rng *stats.RNG, center []float64, radius float64) []float64 {
	u := SampleDirection(rng, nil, len(center))
	return vecmath.AddScaled(u, center, radius, u)
}

// SampleInBall returns a uniform point in the closed ball of the given
// radius around center (radius scaled by U^{1/n} for uniform volume
// density).
func SampleInBall(rng *stats.RNG, center []float64, radius float64) []float64 {
	r := radius * math.Pow(rng.Float64(), 1/float64(len(center)))
	return SampleOnSphere(rng, center, r)
}

// SampleNonNegOnSphere returns a point on the sphere restricted to the
// non-negative orthant of directions (each component of the offset ≥ 0) —
// the "loads only increase" scenario of §3.2.
func SampleNonNegOnSphere(rng *stats.RNG, center []float64, radius float64) []float64 {
	u := SampleDirection(rng, nil, len(center))
	for i := range u {
		u[i] = math.Abs(u[i])
	}
	return vecmath.AddScaled(u, center, radius, u)
}

// Config tunes certification.
type Config struct {
	// InteriorSamples is the number of ball samples checked for
	// non-violation (default 2000).
	InteriorSamples int
	// Directions is the number of directional searches for the empirical
	// radius (default 200).
	Directions int
	// Slack is the relative tolerance applied when comparing against
	// bounds and radii (default 1e-9).
	Slack float64
	// MaxExpand bounds the directional bracketing excursion as a multiple
	// of the claimed radius (default 1e6).
	MaxExpand float64
}

func (c Config) withDefaults() Config {
	if c.InteriorSamples == 0 {
		c.InteriorSamples = 2000
	}
	if c.Directions == 0 {
		c.Directions = 200
	}
	if c.Slack == 0 {
		c.Slack = 1e-9
	}
	if c.MaxExpand == 0 {
		c.MaxExpand = 1e6
	}
	return c
}

// Report summarises a certification run.
type Report struct {
	// ClaimedRadius is the ρ under test.
	ClaimedRadius float64
	// InteriorSamples and InteriorViolations count the soundness check; a
	// sound radius has zero violations.
	InteriorSamples, InteriorViolations int
	// EmpiricalRadius is the smallest violation distance found by
	// directional search (+Inf when no direction violates within the
	// excursion bound). A tight radius has EmpiricalRadius ≈ ρ; a sound
	// one has EmpiricalRadius ≥ ρ (within Slack).
	EmpiricalRadius float64
	// Sound and Tight summarise the two properties. Tight uses a 5%
	// relative margin: directional sampling only approaches the true
	// minimising direction.
	Sound, Tight bool
}

// String renders the report on one line.
func (r Report) String() string {
	return fmt.Sprintf("claimed ρ=%.6g empirical=%.6g interior %d/%d violations sound=%v tight=%v",
		r.ClaimedRadius, r.EmpiricalRadius, r.InteriorViolations, r.InteriorSamples, r.Sound, r.Tight)
}

// violated reports whether any feature's bound fails at point x.
func violated(features []core.Feature, x []float64, slack float64) bool {
	for _, f := range features {
		v := f.Impact.Eval(x)
		if v > f.Bounds.Max+slack*math.Max(1, math.Abs(f.Bounds.Max)) ||
			v < f.Bounds.Min-slack*math.Max(1, math.Abs(f.Bounds.Min)) {
			return true
		}
	}
	return false
}

// Certify checks the claimed radius ρ of a feature set against the
// perturbation's operating point. It is pure sampling — no use of the
// analytic machinery being certified.
func Certify(rng *stats.RNG, features []core.Feature, p core.Perturbation, rho float64, cfg Config) (Report, error) {
	if len(features) == 0 {
		return Report{}, fmt.Errorf("montecarlo: empty feature set")
	}
	if err := p.Validate(); err != nil {
		return Report{}, err
	}
	if rho < 0 || math.IsNaN(rho) {
		return Report{}, fmt.Errorf("montecarlo: invalid claimed radius %v", rho)
	}
	cfg = cfg.withDefaults()
	rep := Report{ClaimedRadius: rho, EmpiricalRadius: math.Inf(1)}

	// Soundness: no interior sample may violate.
	if !math.IsInf(rho, 1) && rho > 0 {
		for i := 0; i < cfg.InteriorSamples; i++ {
			x := SampleInBall(rng, p.Orig, rho*(1-cfg.Slack))
			rep.InteriorSamples++
			if violated(features, x, cfg.Slack) {
				rep.InteriorViolations++
			}
		}
	}

	// Tightness: directional first-violation search.
	scale := math.Max(1, vecmath.Euclidean(p.Orig))
	tMax := cfg.MaxExpand * math.Max(rho, scale)
	if math.IsInf(rho, 1) {
		tMax = cfg.MaxExpand * scale
	}
	buf := make([]float64, len(p.Orig))
	for d := 0; d < cfg.Directions; d++ {
		u := SampleDirection(rng, nil, len(p.Orig))
		if t, ok := firstViolation(features, p.Orig, u, tMax, cfg.Slack, buf); ok && t < rep.EmpiricalRadius {
			rep.EmpiricalRadius = t
		}
	}

	rep.Sound = rep.InteriorViolations == 0 &&
		(math.IsInf(rep.EmpiricalRadius, 1) || rep.EmpiricalRadius >= rho*(1-1e-6))
	rep.Tight = math.IsInf(rho, 1) && math.IsInf(rep.EmpiricalRadius, 1) ||
		(!math.IsInf(rho, 1) && rep.EmpiricalRadius <= rho*1.05)
	return rep, nil
}

// firstViolation finds the smallest t ∈ (0, tMax] with a violation at
// orig + t·u, by geometric bracketing followed by bisection. It returns
// ok=false when the ray stays feasible up to tMax.
func firstViolation(features []core.Feature, orig, u []float64, tMax, slack float64, buf []float64) (float64, bool) {
	at := func(t float64) bool {
		vecmath.AddScaled(buf, orig, t, u)
		return violated(features, buf, slack)
	}
	if at(0) {
		return 0, true
	}
	lo := 0.0
	hi := tMax * 1e-9
	if hi == 0 {
		hi = 1e-9
	}
	for !at(hi) {
		lo = hi
		hi *= 2
		if hi > tMax {
			return 0, false
		}
	}
	for i := 0; i < 200 && hi-lo > 1e-12*math.Max(1, hi); i++ {
		mid := 0.5 * (lo + hi)
		if at(mid) {
			hi = mid
		} else {
			lo = mid
		}
	}
	return hi, true
}
