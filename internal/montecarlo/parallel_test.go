package montecarlo

import (
	"context"
	"reflect"
	"testing"

	"fepia/internal/batch"
	"fepia/internal/core"
	"fepia/internal/stats"
)

// TestCertifyAllMatchesSequential checks that the parallel certifier is
// deterministic: per-case seeds make every report identical to a
// sequential Certify run, for any worker count.
func TestCertifyAllMatchesSequential(t *testing.T) {
	impact, err := core.NewLinearImpact([]float64{1, 1}, 0)
	if err != nil {
		t.Fatal(err)
	}
	features := []core.Feature{{Name: "F", Impact: impact, Bounds: core.NoMin(10)}}
	p := core.Perturbation{Name: "π", Orig: []float64{3, 3}}
	cfg := Config{InteriorSamples: 200, Directions: 40}

	cases := make([]Case, 8)
	for i := range cases {
		cases[i] = Case{Seed: int64(i + 1), Features: features, Perturbation: p, Rho: 4 / 1.4142135623730951}
	}
	want := make([]Report, len(cases))
	for i, c := range cases {
		rep, err := Certify(stats.NewRNG(c.Seed), c.Features, c.Perturbation, c.Rho, cfg)
		if err != nil {
			t.Fatal(err)
		}
		want[i] = rep
	}
	for _, workers := range []int{1, 4, 0} {
		got, err := CertifyAll(context.Background(), cases, cfg, batch.Options{Workers: workers})
		if err != nil {
			t.Fatal(err)
		}
		if !reflect.DeepEqual(got, want) {
			t.Fatalf("CertifyAll(workers=%d) differs from sequential Certify", workers)
		}
	}
}

func TestCertifyAllPropagatesErrors(t *testing.T) {
	cases := []Case{{Seed: 1, Features: nil, Perturbation: core.Perturbation{Name: "π", Orig: []float64{1}}, Rho: 1}}
	if _, err := CertifyAll(context.Background(), cases, Config{}, batch.Options{}); err == nil {
		t.Fatal("empty feature set should fail")
	}
}
