package montecarlo

import (
	"math"
	"testing"

	"fepia/internal/core"
	"fepia/internal/etcgen"
	"fepia/internal/hcs"
	"fepia/internal/indalloc"
	"fepia/internal/stats"
	"fepia/internal/vecmath"
)

func TestSamplersGeometry(t *testing.T) {
	rng := stats.NewRNG(1)
	center := []float64{5, -3, 2}
	for i := 0; i < 500; i++ {
		x := SampleOnSphere(rng, center, 2)
		if d := vecmath.Distance(x, center); math.Abs(d-2) > 1e-9 {
			t.Fatalf("sphere sample at distance %v", d)
		}
		y := SampleInBall(rng, center, 2)
		if d := vecmath.Distance(y, center); d > 2+1e-9 {
			t.Fatalf("ball sample at distance %v", d)
		}
		z := SampleNonNegOnSphere(rng, center, 2)
		for k := range z {
			if z[k] < center[k]-1e-12 {
				t.Fatalf("non-negative sample decreased component %d", k)
			}
		}
		if d := vecmath.Distance(z, center); math.Abs(d-2) > 1e-9 {
			t.Fatalf("non-negative sphere sample at distance %v", d)
		}
	}
}

func TestSampleDirectionUnit(t *testing.T) {
	rng := stats.NewRNG(2)
	buf := make([]float64, 4)
	for i := 0; i < 100; i++ {
		u := SampleDirection(rng, buf, 4)
		if math.Abs(vecmath.Euclidean(u)-1) > 1e-9 {
			t.Fatalf("direction not unit: %v", u)
		}
	}
	// Ball sampling in dimension n concentrates near the surface; check the
	// mean radius exceeds the naive uniform-in-radius value.
	var sum float64
	const n = 4000
	for i := 0; i < n; i++ {
		sum += vecmath.Euclidean(SampleInBall(rng, []float64{0, 0, 0, 0}, 1))
	}
	if mean := sum / n; mean < 0.75 || mean > 0.85 { // E = n/(n+1) = 0.8
		t.Errorf("ball radius mean = %v, want ≈0.8", mean)
	}
}

func singleFeature(t *testing.T, coeffs []float64, bound float64) []core.Feature {
	t.Helper()
	imp, err := core.NewLinearImpact(coeffs, 0)
	if err != nil {
		t.Fatal(err)
	}
	return []core.Feature{{Name: "f", Impact: imp, Bounds: core.NoMin(bound)}}
}

func TestCertifyCorrectRadius(t *testing.T) {
	// Plane x+y = 10 from the origin: exact radius 10/√2.
	features := singleFeature(t, []float64{1, 1}, 10)
	p := core.Perturbation{Name: "π", Orig: []float64{0, 0}}
	rho := 10 / math.Sqrt2
	rep, err := Certify(stats.NewRNG(3), features, p, rho, Config{})
	if err != nil {
		t.Fatal(err)
	}
	if !rep.Sound {
		t.Errorf("correct radius reported unsound: %v", rep)
	}
	if !rep.Tight {
		t.Errorf("correct radius reported loose: %v", rep)
	}
	if rep.String() == "" {
		t.Errorf("empty report string")
	}
}

func TestCertifyDetectsOverclaim(t *testing.T) {
	// Claiming 2× the true radius must produce interior violations.
	features := singleFeature(t, []float64{1, 1}, 10)
	p := core.Perturbation{Name: "π", Orig: []float64{0, 0}}
	rep, err := Certify(stats.NewRNG(4), features, p, 2*10/math.Sqrt2, Config{})
	if err != nil {
		t.Fatal(err)
	}
	if rep.Sound {
		t.Errorf("overclaimed radius certified sound: %v", rep)
	}
	if rep.InteriorViolations == 0 {
		t.Errorf("no interior violations found for overclaim")
	}
}

func TestCertifyDetectsUnderclaim(t *testing.T) {
	// Claiming half the true radius is sound but not tight.
	features := singleFeature(t, []float64{1, 1}, 10)
	p := core.Perturbation{Name: "π", Orig: []float64{0, 0}}
	rep, err := Certify(stats.NewRNG(5), features, p, 0.5*10/math.Sqrt2, Config{})
	if err != nil {
		t.Fatal(err)
	}
	if !rep.Sound || rep.Tight {
		t.Errorf("underclaim should be sound but loose: %v", rep)
	}
}

func TestCertifyInfiniteRadius(t *testing.T) {
	// Constant feature inside its bound: radius +Inf, no direction ever
	// violates.
	imp, err := core.NewLinearImpact([]float64{0, 0}, 1)
	if err != nil {
		t.Fatal(err)
	}
	features := []core.Feature{{Name: "const", Impact: imp, Bounds: core.NoMin(5)}}
	p := core.Perturbation{Name: "π", Orig: []float64{0, 0}}
	rep, err := Certify(stats.NewRNG(6), features, p, math.Inf(1), Config{Directions: 32, MaxExpand: 100})
	if err != nil {
		t.Fatal(err)
	}
	if !rep.Sound || !rep.Tight {
		t.Errorf("infinite radius: %v", rep)
	}
}

func TestCertifyValidation(t *testing.T) {
	features := singleFeature(t, []float64{1}, 1)
	p := core.Perturbation{Name: "π", Orig: []float64{0}}
	if _, err := Certify(stats.NewRNG(1), nil, p, 1, Config{}); err == nil {
		t.Errorf("empty features accepted")
	}
	if _, err := Certify(stats.NewRNG(1), features, core.Perturbation{}, 1, Config{}); err == nil {
		t.Errorf("invalid perturbation accepted")
	}
	if _, err := Certify(stats.NewRNG(1), features, p, -1, Config{}); err == nil {
		t.Errorf("negative radius accepted")
	}
	if _, err := Certify(stats.NewRNG(1), features, p, math.NaN(), Config{}); err == nil {
		t.Errorf("NaN radius accepted")
	}
}

func TestCertifyIndependentAllocationEndToEnd(t *testing.T) {
	// Certify the §3.1 closed-form metric on a real instance: the analytic
	// ρ must be both sound and tight under pure sampling.
	etc, err := etcgen.Generate(stats.NewRNG(7), etcgen.PaperParams())
	if err != nil {
		t.Fatal(err)
	}
	inst, err := hcs.NewInstance(etc)
	if err != nil {
		t.Fatal(err)
	}
	rng := stats.NewRNG(8)
	for trial := 0; trial < 3; trial++ {
		m := hcs.RandomMapping(rng, inst)
		res, err := indalloc.Evaluate(m, 1.2)
		if err != nil {
			t.Fatal(err)
		}
		features, p, err := indalloc.Features(m, 1.2)
		if err != nil {
			t.Fatal(err)
		}
		rep, err := Certify(rng, features, p, res.Robustness, Config{InteriorSamples: 1000, Directions: 100})
		if err != nil {
			t.Fatal(err)
		}
		if !rep.Sound {
			t.Errorf("trial %d: analytic radius unsound: %v", trial, rep)
		}
		// Tightness by random directions alone is hopeless in 20
		// dimensions (the minimising direction is a measure-zero target),
		// so check it directly: pushing the boundary point outward by 0.1%
		// violates.
		dir := vecmath.Sub(nil, res.BoundaryETC, p.Orig)
		beyond := vecmath.AddScaled(nil, p.Orig, 1.001, dir)
		if !violatedAny(features, beyond) {
			t.Errorf("trial %d: boundary point not on the violation boundary", trial)
		}
	}
}

func violatedAny(features []core.Feature, x []float64) bool {
	for _, f := range features {
		if !f.Bounds.Contains(f.Impact.Eval(x)) {
			return true
		}
	}
	return false
}
