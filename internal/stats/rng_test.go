package stats

import (
	"math"
	"testing"
)

func TestRNGDeterminism(t *testing.T) {
	a := NewRNG(42)
	b := NewRNG(42)
	for i := 0; i < 100; i++ {
		if a.Float64() != b.Float64() {
			t.Fatalf("same seed diverged at draw %d", i)
		}
	}
	c := NewRNG(43)
	same := true
	a = NewRNG(42)
	for i := 0; i < 10; i++ {
		if a.Float64() != c.Float64() {
			same = false
		}
	}
	if same {
		t.Errorf("different seeds produced identical streams")
	}
}

func TestUniformBounds(t *testing.T) {
	g := NewRNG(1)
	for i := 0; i < 1000; i++ {
		x := g.Uniform(750, 1250)
		if x < 750 || x >= 1250 {
			t.Fatalf("Uniform out of range: %v", x)
		}
	}
	defer func() {
		if recover() == nil {
			t.Fatalf("inverted bounds accepted")
		}
	}()
	g.Uniform(2, 1)
}

func TestGammaMoments(t *testing.T) {
	g := NewRNG(2)
	cases := []struct{ shape, scale float64 }{
		{0.5, 2.0},  // shape < 1 exercises the boost path
		{1.0, 3.0},  // exponential
		{2.04, 4.9}, // paper-like: 1/0.7² ≈ 2.04
		{9.0, 0.5},
	}
	const n = 200000
	for _, c := range cases {
		var sum, sq float64
		for i := 0; i < n; i++ {
			x := g.Gamma(c.shape, c.scale)
			if x < 0 {
				t.Fatalf("negative Gamma sample %v", x)
			}
			sum += x
			sq += x * x
		}
		mean := sum / n
		variance := sq/n - mean*mean
		wantMean := c.shape * c.scale
		wantVar := c.shape * c.scale * c.scale
		if math.Abs(mean-wantMean) > 0.03*wantMean {
			t.Errorf("shape=%v scale=%v: mean=%v want %v", c.shape, c.scale, mean, wantMean)
		}
		if math.Abs(variance-wantVar) > 0.08*wantVar {
			t.Errorf("shape=%v scale=%v: var=%v want %v", c.shape, c.scale, variance, wantVar)
		}
	}
}

func TestGammaMeanCVHitsTargets(t *testing.T) {
	// The paper's workloads use mean 10, heterogeneity (CV) 0.7.
	g := NewRNG(3)
	const n = 200000
	samples := make([]float64, n)
	for i := range samples {
		samples[i] = g.GammaMeanCV(10, 0.7)
	}
	if m := Mean(samples); math.Abs(m-10) > 0.15 {
		t.Errorf("mean = %v, want ≈10", m)
	}
	if cv := CV(samples); math.Abs(cv-0.7) > 0.02 {
		t.Errorf("cv = %v, want ≈0.7", cv)
	}
}

func TestGammaPanicsOnBadParams(t *testing.T) {
	g := NewRNG(4)
	for _, f := range []func(){
		func() { g.Gamma(0, 1) },
		func() { g.Gamma(1, -1) },
		func() { g.GammaMeanCV(-5, 0.7) },
		func() { g.GammaMeanCV(10, 0) },
	} {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("bad Gamma parameters accepted")
				}
			}()
			f()
		}()
	}
}

func TestPermAndShuffle(t *testing.T) {
	g := NewRNG(5)
	p := g.Perm(10)
	seen := make([]bool, 10)
	for _, x := range p {
		if x < 0 || x >= 10 || seen[x] {
			t.Fatalf("Perm not a permutation: %v", p)
		}
		seen[x] = true
	}
	v := []int{1, 2, 3, 4, 5}
	sum := 0
	g.Shuffle(len(v), func(i, j int) { v[i], v[j] = v[j], v[i] })
	for _, x := range v {
		sum += x
	}
	if sum != 15 {
		t.Fatalf("Shuffle lost elements: %v", v)
	}
}
