// Package stats provides the statistical substrate for the robustness
// experiments: a deterministic random source, Gamma sampling parameterised
// by mean and heterogeneity (the coefficient-of-variation-based method of
// Ali, Siegel, Maheswaran, Hensgen, and Sedigh-Ali, 2000 — reference [3] of
// the paper), and the descriptive statistics used to analyse Figures 3
// and 4.
package stats

import (
	"fmt"
	"math"
	"math/rand"
)

// RNG wraps math/rand.Rand so experiments are reproducible from a single
// seed and so the sampling helpers live on one type.
type RNG struct {
	r *rand.Rand
}

// NewRNG returns a deterministic generator seeded with seed.
func NewRNG(seed int64) *RNG {
	return &RNG{r: rand.New(rand.NewSource(seed))}
}

// Float64 returns a uniform sample from [0,1).
func (g *RNG) Float64() float64 { return g.r.Float64() }

// Uniform returns a uniform sample from [lo,hi). It panics if hi < lo.
func (g *RNG) Uniform(lo, hi float64) float64 {
	if hi < lo {
		panic(fmt.Sprintf("stats: Uniform bounds inverted: [%v,%v)", lo, hi))
	}
	return lo + (hi-lo)*g.r.Float64()
}

// Intn returns a uniform sample from {0, …, n−1}.
func (g *RNG) Intn(n int) int { return g.r.Intn(n) }

// NormFloat64 returns a standard normal sample.
func (g *RNG) NormFloat64() float64 { return g.r.NormFloat64() }

// ExpFloat64 returns a rate-1 exponential sample.
func (g *RNG) ExpFloat64() float64 { return g.r.ExpFloat64() }

// Perm returns a random permutation of {0, …, n−1}.
func (g *RNG) Perm(n int) []int { return g.r.Perm(n) }

// Shuffle randomises the order of n elements using the provided swap.
func (g *RNG) Shuffle(n int, swap func(i, j int)) { g.r.Shuffle(n, swap) }

// Gamma returns a sample from the Gamma distribution with the given shape
// (α > 0) and scale (θ > 0), using the Marsaglia–Tsang squeeze method with
// the standard boost for shape < 1.
func (g *RNG) Gamma(shape, scale float64) float64 {
	if !(shape > 0) || !(scale > 0) {
		panic(fmt.Sprintf("stats: Gamma requires shape, scale > 0; got %v, %v", shape, scale))
	}
	if shape < 1 {
		// Boost: if X ~ Gamma(shape+1) and U ~ U(0,1) then
		// X·U^(1/shape) ~ Gamma(shape).
		u := g.r.Float64()
		for u == 0 {
			u = g.r.Float64()
		}
		return g.Gamma(shape+1, scale) * math.Pow(u, 1/shape)
	}
	d := shape - 1.0/3.0
	c := 1.0 / math.Sqrt(9*d)
	for {
		var x, v float64
		for {
			x = g.r.NormFloat64()
			v = 1 + c*x
			if v > 0 {
				break
			}
		}
		v = v * v * v
		u := g.r.Float64()
		if u < 1-0.0331*x*x*x*x {
			return scale * d * v
		}
		if u > 0 && math.Log(u) < 0.5*x*x+d*(1-v+math.Log(v)) {
			return scale * d * v
		}
	}
}

// GammaMeanCV returns a Gamma sample parameterised by its mean and its
// coefficient of variation V (standard deviation divided by mean) — the
// "heterogeneity" of reference [3]. Shape = 1/V², scale = mean·V².
func (g *RNG) GammaMeanCV(mean, cv float64) float64 {
	if !(mean > 0) || !(cv > 0) {
		panic(fmt.Sprintf("stats: GammaMeanCV requires mean, cv > 0; got %v, %v", mean, cv))
	}
	shape := 1 / (cv * cv)
	scale := mean * cv * cv
	return g.Gamma(shape, scale)
}
