package stats

import (
	"math"
	"testing"
	"testing/quick"
)

func approx(a, b, tol float64) bool { return math.Abs(a-b) <= tol }

func TestMeanVarianceKnown(t *testing.T) {
	v := []float64{2, 4, 4, 4, 5, 5, 7, 9}
	if m := Mean(v); m != 5 {
		t.Errorf("Mean = %v", m)
	}
	if s := Variance(v); !approx(s, 32.0/7.0, 1e-12) {
		t.Errorf("Variance = %v", s)
	}
	if !math.IsNaN(Mean(nil)) || !math.IsNaN(Variance([]float64{1})) {
		t.Errorf("degenerate inputs should be NaN")
	}
}

func TestCV(t *testing.T) {
	// CV of a constant-plus-spread set around mean 10.
	v := []float64{8, 12}
	want := StdDev(v) / 10
	if got := CV(v); !approx(got, want, 1e-12) {
		t.Errorf("CV = %v want %v", got, want)
	}
	if !math.IsNaN(CV([]float64{-1, 1})) {
		t.Errorf("CV with zero mean should be NaN")
	}
}

func TestQuantileMedian(t *testing.T) {
	v := []float64{3, 1, 2}
	if q := Median(v); q != 2 {
		t.Errorf("Median = %v", q)
	}
	if q := Quantile(v, 0); q != 1 {
		t.Errorf("Q0 = %v", q)
	}
	if q := Quantile(v, 1); q != 3 {
		t.Errorf("Q1 = %v", q)
	}
	if q := Quantile([]float64{1, 2}, 0.5); q != 1.5 {
		t.Errorf("interpolated median = %v", q)
	}
	if q := Quantile([]float64{7}, 0.9); q != 7 {
		t.Errorf("single-element quantile = %v", q)
	}
	// Input must not be reordered.
	if v[0] != 3 || v[1] != 1 || v[2] != 2 {
		t.Errorf("Quantile mutated its input: %v", v)
	}
}

func TestPearsonKnown(t *testing.T) {
	x := []float64{1, 2, 3, 4}
	yUp := []float64{2, 4, 6, 8}
	yDown := []float64{8, 6, 4, 2}
	if r := Pearson(x, yUp); !approx(r, 1, 1e-12) {
		t.Errorf("perfect positive correlation = %v", r)
	}
	if r := Pearson(x, yDown); !approx(r, -1, 1e-12) {
		t.Errorf("perfect negative correlation = %v", r)
	}
	if !math.IsNaN(Pearson(x, []float64{5, 5, 5, 5})) {
		t.Errorf("zero-variance series should give NaN")
	}
}

func TestSpearmanMonotone(t *testing.T) {
	// Any strictly increasing transform has Spearman exactly 1.
	x := []float64{1, 2, 3, 4, 5}
	y := []float64{1, 8, 27, 64, 125}
	if r := Spearman(x, y); !approx(r, 1, 1e-12) {
		t.Errorf("Spearman of monotone transform = %v", r)
	}
}

func TestRanksTies(t *testing.T) {
	r := Ranks([]float64{10, 20, 20, 30})
	want := []float64{1, 2.5, 2.5, 4}
	for i := range want {
		if r[i] != want[i] {
			t.Fatalf("Ranks = %v want %v", r, want)
		}
	}
}

func TestDescribe(t *testing.T) {
	s := Describe([]float64{1, 2, 3, 4, 5})
	if s.N != 5 || s.Mean != 3 || s.Min != 1 || s.Max != 5 || s.Median != 3 {
		t.Errorf("Describe = %+v", s)
	}
	if s.String() == "" {
		t.Errorf("empty summary string")
	}
}

func TestHistogram(t *testing.T) {
	edges, counts := Histogram([]float64{0, 0.5, 1, 1.5, 2}, 2)
	if len(edges) != 3 || len(counts) != 2 {
		t.Fatalf("Histogram shapes: %v %v", edges, counts)
	}
	if counts[0]+counts[1] != 5 {
		t.Errorf("Histogram lost samples: %v", counts)
	}
	if counts[1] == 0 {
		t.Errorf("max value not in last bin: %v", counts)
	}
	// Degenerate single-value input still bins everything.
	_, c := Histogram([]float64{3, 3, 3}, 4)
	total := 0
	for _, x := range c {
		total += x
	}
	if total != 3 {
		t.Errorf("degenerate histogram lost samples: %v", c)
	}
}

func TestQuickMeanBounds(t *testing.T) {
	// The mean always lies within [min, max].
	f := func(raw []float64) bool {
		v := make([]float64, 0, len(raw))
		for _, x := range raw {
			if !math.IsNaN(x) && !math.IsInf(x, 0) {
				v = append(v, math.Mod(x, 1e9))
			}
		}
		if len(v) == 0 {
			return true
		}
		m := Mean(v)
		lo, hi := v[0], v[0]
		for _, x := range v {
			lo = math.Min(lo, x)
			hi = math.Max(hi, x)
		}
		return m >= lo-1e-9 && m <= hi+1e-9
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Error(err)
	}
}

func TestQuickPearsonRange(t *testing.T) {
	f := func(rawX, rawY []float64) bool {
		n := len(rawX)
		if len(rawY) < n {
			n = len(rawY)
		}
		if n < 2 {
			return true
		}
		x := make([]float64, n)
		y := make([]float64, n)
		for i := 0; i < n; i++ {
			x[i] = math.Mod(sanitize(rawX[i]), 1e6)
			y[i] = math.Mod(sanitize(rawY[i]), 1e6)
		}
		r := Pearson(x, y)
		return math.IsNaN(r) || (r >= -1-1e-9 && r <= 1+1e-9)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Error(err)
	}
}

func sanitize(x float64) float64 {
	if math.IsNaN(x) || math.IsInf(x, 0) {
		return 1
	}
	return x
}
