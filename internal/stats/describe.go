package stats

import (
	"fmt"
	"math"
	"sort"
)

// Mean returns the arithmetic mean of v, or NaN for an empty slice.
func Mean(v []float64) float64 {
	if len(v) == 0 {
		return math.NaN()
	}
	var sum, c float64
	for _, x := range v {
		t := sum + x
		if math.Abs(sum) >= math.Abs(x) {
			c += (sum - t) + x
		} else {
			c += (x - t) + sum
		}
		sum = t
	}
	return (sum + c) / float64(len(v))
}

// Variance returns the unbiased sample variance of v (n−1 denominator),
// or NaN when fewer than two samples are provided.
func Variance(v []float64) float64 {
	if len(v) < 2 {
		return math.NaN()
	}
	m := Mean(v)
	var ss float64
	for _, x := range v {
		d := x - m
		ss += d * d
	}
	return ss / float64(len(v)-1)
}

// StdDev returns the sample standard deviation of v.
func StdDev(v []float64) float64 { return math.Sqrt(Variance(v)) }

// CV returns the coefficient of variation (std-dev / mean) — the
// "heterogeneity" measure of reference [3]. NaN if the mean is zero or
// fewer than two samples are given.
func CV(v []float64) float64 {
	m := Mean(v)
	if m == 0 {
		return math.NaN()
	}
	return StdDev(v) / m
}

// Quantile returns the q-quantile (0 ≤ q ≤ 1) of v using linear
// interpolation between order statistics. It panics on an empty slice or an
// out-of-range q.
func Quantile(v []float64, q float64) float64 {
	if len(v) == 0 {
		panic("stats: Quantile of empty slice")
	}
	if q < 0 || q > 1 || math.IsNaN(q) {
		panic(fmt.Sprintf("stats: quantile %v out of [0,1]", q))
	}
	s := append([]float64(nil), v...)
	sort.Float64s(s)
	if len(s) == 1 {
		return s[0]
	}
	pos := q * float64(len(s)-1)
	lo := int(math.Floor(pos))
	hi := int(math.Ceil(pos))
	frac := pos - float64(lo)
	return s[lo]*(1-frac) + s[hi]*frac
}

// Median returns the 0.5-quantile of v.
func Median(v []float64) float64 { return Quantile(v, 0.5) }

// Pearson returns the Pearson product-moment correlation of the paired
// samples x and y. It panics on mismatched lengths and returns NaN when
// either series has zero variance or fewer than two points.
func Pearson(x, y []float64) float64 {
	if len(x) != len(y) {
		panic(fmt.Sprintf("stats: Pearson length mismatch %d vs %d", len(x), len(y)))
	}
	if len(x) < 2 {
		return math.NaN()
	}
	mx, my := Mean(x), Mean(y)
	var sxy, sxx, syy float64
	for i := range x {
		dx := x[i] - mx
		dy := y[i] - my
		sxy += dx * dy
		sxx += dx * dx
		syy += dy * dy
	}
	if sxx == 0 || syy == 0 {
		return math.NaN()
	}
	return sxy / math.Sqrt(sxx*syy)
}

// Spearman returns the Spearman rank correlation of the paired samples,
// using average ranks for ties.
func Spearman(x, y []float64) float64 {
	if len(x) != len(y) {
		panic(fmt.Sprintf("stats: Spearman length mismatch %d vs %d", len(x), len(y)))
	}
	return Pearson(Ranks(x), Ranks(y))
}

// Ranks returns the 1-based ranks of v with ties assigned their average
// rank (fractional ranks).
func Ranks(v []float64) []float64 {
	n := len(v)
	idx := make([]int, n)
	for i := range idx {
		idx[i] = i
	}
	sort.Slice(idx, func(a, b int) bool { return v[idx[a]] < v[idx[b]] })
	ranks := make([]float64, n)
	for i := 0; i < n; {
		j := i
		for j+1 < n && v[idx[j+1]] == v[idx[i]] {
			j++
		}
		avg := float64(i+j)/2 + 1
		for k := i; k <= j; k++ {
			ranks[idx[k]] = avg
		}
		i = j + 1
	}
	return ranks
}

// Summary bundles the descriptive statistics reported in EXPERIMENTS.md.
type Summary struct {
	N                int
	Mean, StdDev     float64
	Min, Max         float64
	Median           float64
	Q1, Q3           float64
	CoefficientOfVar float64
}

// Describe computes a Summary of v. It panics on an empty slice.
func Describe(v []float64) Summary {
	if len(v) == 0 {
		panic("stats: Describe of empty slice")
	}
	s := append([]float64(nil), v...)
	sort.Float64s(s)
	return Summary{
		N:                len(v),
		Mean:             Mean(v),
		StdDev:           StdDev(v),
		Min:              s[0],
		Max:              s[len(s)-1],
		Median:           Quantile(s, 0.5),
		Q1:               Quantile(s, 0.25),
		Q3:               Quantile(s, 0.75),
		CoefficientOfVar: CV(v),
	}
}

// String renders the summary on one line for experiment logs.
func (s Summary) String() string {
	return fmt.Sprintf("n=%d mean=%.4g sd=%.4g min=%.4g q1=%.4g med=%.4g q3=%.4g max=%.4g cv=%.3g",
		s.N, s.Mean, s.StdDev, s.Min, s.Q1, s.Median, s.Q3, s.Max, s.CoefficientOfVar)
}

// Histogram counts v into nbins equal-width bins spanning [min, max]. Values
// exactly at max land in the last bin. It returns the bin edges
// (nbins+1 values) and counts (nbins values). It panics if nbins < 1 or v is
// empty.
func Histogram(v []float64, nbins int) (edges []float64, counts []int) {
	if nbins < 1 {
		panic("stats: Histogram needs nbins >= 1")
	}
	if len(v) == 0 {
		panic("stats: Histogram of empty slice")
	}
	lo, hi := v[0], v[0]
	for _, x := range v {
		lo = math.Min(lo, x)
		hi = math.Max(hi, x)
	}
	if lo == hi { // degenerate: single-valued data
		hi = lo + 1
	}
	edges = make([]float64, nbins+1)
	for i := range edges {
		edges[i] = lo + (hi-lo)*float64(i)/float64(nbins)
	}
	counts = make([]int, nbins)
	width := (hi - lo) / float64(nbins)
	for _, x := range v {
		b := int((x - lo) / width)
		if b >= nbins {
			b = nbins - 1
		}
		if b < 0 {
			b = 0
		}
		counts[b]++
	}
	return edges, counts
}
