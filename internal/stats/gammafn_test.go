package stats

import (
	"math"
	"testing"
)

func TestRegIncGammaKnownValues(t *testing.T) {
	cases := []struct {
		a, x, want float64
	}{
		// P(1, x) = 1 − e^{−x} (exponential).
		{1, 0.5, 1 - math.Exp(-0.5)},
		{1, 2, 1 - math.Exp(-2)},
		// P(0.5, x) = erf(√x).
		{0.5, 1, math.Erf(1)},
		{0.5, 4, math.Erf(2)},
		// P(2, x) = 1 − (1+x)e^{−x}.
		{2, 3, 1 - 4*math.Exp(-3)},
		// Continued-fraction branch (x ≥ a+1).
		{3, 10, 1 - (1+10+50)*math.Exp(-10)},
	}
	for _, c := range cases {
		got, err := RegIncGamma(c.a, c.x)
		if err != nil {
			t.Fatalf("P(%v,%v): %v", c.a, c.x, err)
		}
		if math.Abs(got-c.want) > 1e-12 {
			t.Errorf("P(%v,%v) = %.15f want %.15f", c.a, c.x, got, c.want)
		}
	}
	// Edges.
	if p, _ := RegIncGamma(2, 0); p != 0 {
		t.Errorf("P(2,0) = %v", p)
	}
	if p, _ := RegIncGamma(2, math.Inf(1)); p != 1 {
		t.Errorf("P(2,∞) = %v", p)
	}
	for _, bad := range [][2]float64{{0, 1}, {-1, 1}, {1, -1}, {1, math.NaN()}} {
		if _, err := RegIncGamma(bad[0], bad[1]); err == nil {
			t.Errorf("P(%v,%v) accepted", bad[0], bad[1])
		}
	}
}

func TestRegIncGammaMonotone(t *testing.T) {
	// P(a, ·) is a CDF: non-decreasing from 0 to 1.
	for _, a := range []float64{0.3, 1, 2.04, 7, 25} {
		prev := 0.0
		for x := 0.0; x <= 80; x += 0.25 {
			p, err := RegIncGamma(a, x)
			if err != nil {
				t.Fatal(err)
			}
			if p < prev-1e-12 || p < 0 || p > 1 {
				t.Fatalf("P(%v,%v) = %v not monotone in [0,1]", a, x, p)
			}
			prev = p
		}
		if prev < 0.999 {
			t.Errorf("P(%v, 80) = %v, should be ≈1", a, prev)
		}
	}
}

func TestGammaCDF(t *testing.T) {
	// Median of Gamma(1, θ) is θ·ln 2.
	p, err := GammaCDF(1, 3, 3*math.Ln2)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(p-0.5) > 1e-12 {
		t.Errorf("CDF at median = %v", p)
	}
	if p, _ := GammaCDF(2, 1, -5); p != 0 {
		t.Errorf("negative x CDF = %v", p)
	}
	if _, err := GammaCDF(0, 1, 1); err == nil {
		t.Errorf("bad shape accepted")
	}
}

func TestKSAcceptsTrueDistribution(t *testing.T) {
	// Samples from Gamma(shape, scale) must pass the KS test against
	// their own CDF at any sane significance level.
	g := NewRNG(31)
	const shape, scale = 1 / (0.7 * 0.7), 10 * 0.7 * 0.7 // the paper's mean-10, CV-0.7
	samples := make([]float64, 5000)
	for i := range samples {
		samples[i] = g.Gamma(shape, scale)
	}
	d, p, err := KSOneSample(samples, func(x float64) (float64, error) {
		return GammaCDF(shape, scale, x)
	})
	if err != nil {
		t.Fatal(err)
	}
	if p < 0.01 {
		t.Errorf("true distribution rejected: D=%v p=%v", d, p)
	}
}

func TestKSRejectsWrongDistribution(t *testing.T) {
	// Exponential samples tested against a Gamma(3, ·) CDF must fail.
	g := NewRNG(32)
	samples := make([]float64, 3000)
	for i := range samples {
		samples[i] = g.ExpFloat64() * 10
	}
	d, p, err := KSOneSample(samples, func(x float64) (float64, error) {
		return GammaCDF(3, 10.0/3, x) // same mean, wrong shape
	})
	if err != nil {
		t.Fatal(err)
	}
	if p > 1e-6 {
		t.Errorf("wrong distribution not rejected: D=%v p=%v", d, p)
	}
}

func TestKSValidation(t *testing.T) {
	if _, _, err := KSOneSample(nil, func(x float64) (float64, error) { return 0, nil }); err == nil {
		t.Errorf("empty samples accepted")
	}
	if _, _, err := KSOneSample([]float64{1}, func(x float64) (float64, error) { return 2, nil }); err == nil {
		t.Errorf("out-of-range CDF accepted")
	}
	if _, _, err := KSOneSample([]float64{math.NaN()}, func(x float64) (float64, error) {
		return GammaCDF(1, 1, x)
	}); err == nil {
		t.Errorf("NaN sample accepted")
	}
}
