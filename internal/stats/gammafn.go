package stats

import (
	"fmt"
	"math"
	"sort"
)

// This file implements the regularised lower incomplete gamma function
// P(a, x) and the Gamma-distribution CDF built on it, used by the
// Kolmogorov–Smirnov goodness-of-fit check that validates the package's
// Gamma sampler against its target distribution (the workload generator's
// correctness rests on that sampler).

// RegIncGamma returns P(a, x) = γ(a, x)/Γ(a), the regularised lower
// incomplete gamma function, for a > 0 and x ≥ 0. It uses the series
// expansion for x < a+1 and the continued fraction otherwise (Numerical
// Recipes' gser/gcf split), accurate to ~1e-12.
func RegIncGamma(a, x float64) (float64, error) {
	if !(a > 0) || math.IsNaN(x) {
		return 0, fmt.Errorf("stats: RegIncGamma requires a > 0, finite x; got a=%v x=%v", a, x)
	}
	if x < 0 {
		return 0, fmt.Errorf("stats: RegIncGamma requires x ≥ 0; got %v", x)
	}
	if x == 0 {
		return 0, nil
	}
	if math.IsInf(x, 1) {
		return 1, nil
	}
	lnGammaA, _ := math.Lgamma(a)
	if x < a+1 {
		// Series: γ(a,x) = e^{-x} x^a Σ_{n≥0} x^n Γ(a)/Γ(a+1+n).
		ap := a
		sum := 1.0 / a
		del := sum
		for n := 0; n < 500; n++ {
			ap++
			del *= x / ap
			sum += del
			if math.Abs(del) < math.Abs(sum)*1e-15 {
				break
			}
		}
		return sum * math.Exp(-x+a*math.Log(x)-lnGammaA), nil
	}
	// Continued fraction for Q(a,x) = 1 − P(a,x) (modified Lentz).
	const tiny = 1e-300
	b := x + 1 - a
	c := 1 / tiny
	d := 1 / b
	h := d
	for i := 1; i < 500; i++ {
		an := -float64(i) * (float64(i) - a)
		b += 2
		d = an*d + b
		if math.Abs(d) < tiny {
			d = tiny
		}
		c = b + an/c
		if math.Abs(c) < tiny {
			c = tiny
		}
		d = 1 / d
		del := d * c
		h *= del
		if math.Abs(del-1) < 1e-15 {
			break
		}
	}
	q := math.Exp(-x+a*math.Log(x)-lnGammaA) * h
	return 1 - q, nil
}

// GammaCDF returns the CDF of the Gamma(shape, scale) distribution at x.
func GammaCDF(shape, scale, x float64) (float64, error) {
	if !(shape > 0) || !(scale > 0) {
		return 0, fmt.Errorf("stats: GammaCDF requires shape, scale > 0; got %v, %v", shape, scale)
	}
	if x <= 0 {
		return 0, nil
	}
	return RegIncGamma(shape, x/scale)
}

// KSOneSample computes the one-sample Kolmogorov–Smirnov statistic D of
// the samples against the given CDF, plus the asymptotic p-value
// (Kolmogorov distribution with the usual small-sample correction). Small
// p-values reject the hypothesis that the samples come from cdf.
func KSOneSample(samples []float64, cdf func(float64) (float64, error)) (d, pvalue float64, err error) {
	n := len(samples)
	if n == 0 {
		return 0, 0, fmt.Errorf("stats: KS test needs samples")
	}
	s := append([]float64(nil), samples...)
	sort.Float64s(s)
	for i, x := range s {
		f, err := cdf(x)
		if err != nil {
			return 0, 0, err
		}
		if f < 0 || f > 1 || math.IsNaN(f) {
			return 0, 0, fmt.Errorf("stats: CDF returned %v at %v", f, x)
		}
		lo := f - float64(i)/float64(n)
		hi := float64(i+1)/float64(n) - f
		if lo > d {
			d = lo
		}
		if hi > d {
			d = hi
		}
	}
	sqrtN := math.Sqrt(float64(n))
	lambda := (sqrtN + 0.12 + 0.11/sqrtN) * d
	pvalue = ksProb(lambda)
	return d, pvalue, nil
}

// ksProb is the Kolmogorov Q function: Q(λ) = 2 Σ_{k≥1} (−1)^{k−1} e^{−2k²λ²}.
func ksProb(lambda float64) float64 {
	if lambda <= 0 {
		return 1
	}
	sum := 0.0
	sign := 1.0
	for k := 1; k <= 100; k++ {
		term := sign * math.Exp(-2*float64(k*k)*lambda*lambda)
		sum += term
		if math.Abs(term) < 1e-16 {
			break
		}
		sign = -sign
	}
	p := 2 * sum
	return math.Min(1, math.Max(0, p))
}
