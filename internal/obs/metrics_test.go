package obs

import (
	"strings"
	"sync"
	"testing"
)

// TestPrometheusGolden pins the exact text exposition of a registry with
// one instrument of every type: families sorted by name, series by label
// signature, histograms as cumulative _bucket/_sum/_count triplets.
func TestPrometheusGolden(t *testing.T) {
	r := NewRegistry()
	r.Counter("fepiad_requests_total", "Requests by endpoint.", L("endpoint", "analyze")).Add(3)
	r.Counter("fepiad_requests_total", "Requests by endpoint.", L("endpoint", "batch")).Add(2)
	r.Gauge("fepiad_in_flight", "Admitted requests currently running.").Set(1)
	r.GaugeFunc("app_static", "A scrape-time gauge.", func() float64 { return 2.5 })
	h := r.Histogram("fepiad_request_duration_ms", "Latency by endpoint.", []float64{1, 5, 10}, L("endpoint", "analyze"))
	h.Observe(0.5)
	h.Observe(3)
	h.Observe(3)
	h.Observe(100)

	want := `# HELP app_static A scrape-time gauge.
# TYPE app_static gauge
app_static 2.5
# HELP fepiad_in_flight Admitted requests currently running.
# TYPE fepiad_in_flight gauge
fepiad_in_flight 1
# HELP fepiad_request_duration_ms Latency by endpoint.
# TYPE fepiad_request_duration_ms histogram
fepiad_request_duration_ms_bucket{endpoint="analyze",le="1"} 1
fepiad_request_duration_ms_bucket{endpoint="analyze",le="5"} 3
fepiad_request_duration_ms_bucket{endpoint="analyze",le="10"} 3
fepiad_request_duration_ms_bucket{endpoint="analyze",le="+Inf"} 4
fepiad_request_duration_ms_sum{endpoint="analyze"} 106.5
fepiad_request_duration_ms_count{endpoint="analyze"} 4
# HELP fepiad_requests_total Requests by endpoint.
# TYPE fepiad_requests_total counter
fepiad_requests_total{endpoint="analyze"} 3
fepiad_requests_total{endpoint="batch"} 2
`
	var b strings.Builder
	if err := r.WritePrometheus(&b); err != nil {
		t.Fatal(err)
	}
	if got := b.String(); got != want {
		t.Errorf("exposition mismatch:\n got:\n%s\nwant:\n%s", got, want)
	}
}

// TestRegistryIdempotentAndEscaped: re-registering returns the same
// instrument, and label values are escaped in the exposition.
func TestRegistryIdempotentAndEscaped(t *testing.T) {
	r := NewRegistry()
	a := r.Counter("c_total", "", L("k", `va"l\ue`))
	b := r.Counter("c_total", "", L("k", `va"l\ue`))
	if a != b {
		t.Fatal("re-registration returned a distinct counter")
	}
	a.Inc()
	var sb strings.Builder
	if err := r.WritePrometheus(&sb); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(sb.String(), `c_total{k="va\"l\\ue"} 1`) {
		t.Errorf("escaping wrong:\n%s", sb.String())
	}
}

// TestRegistryTypeMismatchPanics: one name cannot be two metric types.
func TestRegistryTypeMismatchPanics(t *testing.T) {
	r := NewRegistry()
	r.Counter("x_total", "")
	defer func() {
		if recover() == nil {
			t.Fatal("no panic on counter/gauge name collision")
		}
	}()
	r.Gauge("x_total", "")
}

// TestRegistryConcurrent hammers registration, updates, and exposition
// from parallel goroutines; run under -race this is the registry's
// thread-safety proof.
func TestRegistryConcurrent(t *testing.T) {
	r := NewRegistry()
	endpoints := []string{"a", "b", "c", "d"}
	var wg sync.WaitGroup
	for w := 0; w < 8; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; i < 500; i++ {
				ep := endpoints[(w+i)%len(endpoints)]
				r.Counter("req_total", "", L("endpoint", ep)).Inc()
				r.Gauge("inflight", "", L("endpoint", ep)).Add(1)
				r.Histogram("lat_ms", "", []float64{1, 10, 100}, L("endpoint", ep)).Observe(float64(i % 200))
				if i%50 == 0 {
					var b strings.Builder
					if err := r.WritePrometheus(&b); err != nil {
						t.Error(err)
						return
					}
				}
			}
		}(w)
	}
	wg.Wait()

	var total uint64
	for _, ep := range endpoints {
		total += r.Counter("req_total", "", L("endpoint", ep)).Value()
	}
	if total != 8*500 {
		t.Errorf("req_total sums to %d, want %d", total, 8*500)
	}
	var hcount uint64
	for _, ep := range endpoints {
		hcount += r.Histogram("lat_ms", "", nil, L("endpoint", ep)).Snapshot().Count
	}
	if hcount != 8*500 {
		t.Errorf("lat_ms count sums to %d, want %d", hcount, 8*500)
	}
}

// TestHistogramQuantile checks interpolation, the Max cap, and Merge.
func TestHistogramQuantile(t *testing.T) {
	h := NewHistogram([]float64{10, 20, 40})
	for v := 1.0; v <= 30; v++ {
		h.Observe(v)
	}
	s := h.Snapshot()
	if s.Count != 30 || s.Max != 30 {
		t.Fatalf("count %d max %g, want 30 / 30", s.Count, s.Max)
	}
	if p50 := s.Quantile(0.5); p50 < 10 || p50 > 20 {
		t.Errorf("p50 = %g, want within (10, 20]", p50)
	}
	if p100 := s.Quantile(1); p100 != 30 {
		t.Errorf("p100 = %g, want exactly max 30", p100)
	}
	if p99 := s.Quantile(0.99); p99 > 30 {
		t.Errorf("p99 = %g exceeds the observed max", p99)
	}
	if mean := s.Mean(); mean < 15 || mean > 16 {
		t.Errorf("mean = %g, want 15.5", mean)
	}

	other := NewHistogram([]float64{10, 20, 40})
	other.Observe(100)
	m := s.Merge(other.Snapshot())
	if m.Count != 31 || m.Max != 100 {
		t.Errorf("merge: count %d max %g, want 31 / 100", m.Count, m.Max)
	}
}

// TestHistogramConcurrent: parallel observers under -race, with
// snapshots taken mid-write.
func TestHistogramConcurrent(t *testing.T) {
	h := NewHistogram([]float64{1, 2, 4, 8})
	var wg sync.WaitGroup
	for w := 0; w < 8; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; i < 1000; i++ {
				h.Observe(float64(i % 10))
				if i%100 == 0 {
					_ = h.Snapshot()
				}
			}
		}(w)
	}
	wg.Wait()
	if s := h.Snapshot(); s.Count != 8000 {
		t.Errorf("count = %d, want 8000", s.Count)
	}
}
