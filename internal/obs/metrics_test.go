package obs

import (
	"encoding/json"
	"strings"
	"sync"
	"testing"
)

// TestPrometheusGolden pins the exact text exposition of a registry with
// one instrument of every type: families sorted by name, series by label
// signature, histograms as cumulative _bucket/_sum/_count triplets.
func TestPrometheusGolden(t *testing.T) {
	r := NewRegistry()
	r.Counter("fepiad_requests_total", "Requests by endpoint.", L("endpoint", "analyze")).Add(3)
	r.Counter("fepiad_requests_total", "Requests by endpoint.", L("endpoint", "batch")).Add(2)
	r.Gauge("fepiad_in_flight", "Admitted requests currently running.").Set(1)
	r.GaugeFunc("app_static", "A scrape-time gauge.", func() float64 { return 2.5 })
	h := r.Histogram("fepiad_request_duration_ms", "Latency by endpoint.", []float64{1, 5, 10}, L("endpoint", "analyze"))
	h.Observe(0.5)
	h.Observe(3)
	h.Observe(3)
	h.Observe(100)

	want := `# HELP app_static A scrape-time gauge.
# TYPE app_static gauge
app_static 2.5
# HELP fepiad_in_flight Admitted requests currently running.
# TYPE fepiad_in_flight gauge
fepiad_in_flight 1
# HELP fepiad_request_duration_ms Latency by endpoint.
# TYPE fepiad_request_duration_ms histogram
fepiad_request_duration_ms_bucket{endpoint="analyze",le="1"} 1
fepiad_request_duration_ms_bucket{endpoint="analyze",le="5"} 3
fepiad_request_duration_ms_bucket{endpoint="analyze",le="10"} 3
fepiad_request_duration_ms_bucket{endpoint="analyze",le="+Inf"} 4
fepiad_request_duration_ms_sum{endpoint="analyze"} 106.5
fepiad_request_duration_ms_count{endpoint="analyze"} 4
# HELP fepiad_requests_total Requests by endpoint.
# TYPE fepiad_requests_total counter
fepiad_requests_total{endpoint="analyze"} 3
fepiad_requests_total{endpoint="batch"} 2
`
	var b strings.Builder
	if err := r.WritePrometheus(&b); err != nil {
		t.Fatal(err)
	}
	if got := b.String(); got != want {
		t.Errorf("exposition mismatch:\n got:\n%s\nwant:\n%s", got, want)
	}
}

// TestRegistryIdempotentAndEscaped: re-registering returns the same
// instrument, and label values are escaped in the exposition.
func TestRegistryIdempotentAndEscaped(t *testing.T) {
	r := NewRegistry()
	a := r.Counter("c_total", "", L("k", `va"l\ue`))
	b := r.Counter("c_total", "", L("k", `va"l\ue`))
	if a != b {
		t.Fatal("re-registration returned a distinct counter")
	}
	a.Inc()
	var sb strings.Builder
	if err := r.WritePrometheus(&sb); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(sb.String(), `c_total{k="va\"l\\ue"} 1`) {
		t.Errorf("escaping wrong:\n%s", sb.String())
	}
}

// TestRegistryTypeMismatchPanics: one name cannot be two metric types.
func TestRegistryTypeMismatchPanics(t *testing.T) {
	r := NewRegistry()
	r.Counter("x_total", "")
	defer func() {
		if recover() == nil {
			t.Fatal("no panic on counter/gauge name collision")
		}
	}()
	r.Gauge("x_total", "")
}

// TestRegistryConcurrent hammers registration, updates, and exposition
// from parallel goroutines; run under -race this is the registry's
// thread-safety proof.
func TestRegistryConcurrent(t *testing.T) {
	r := NewRegistry()
	endpoints := []string{"a", "b", "c", "d"}
	var wg sync.WaitGroup
	for w := 0; w < 8; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; i < 500; i++ {
				ep := endpoints[(w+i)%len(endpoints)]
				r.Counter("req_total", "", L("endpoint", ep)).Inc()
				r.Gauge("inflight", "", L("endpoint", ep)).Add(1)
				r.Histogram("lat_ms", "", []float64{1, 10, 100}, L("endpoint", ep)).Observe(float64(i % 200))
				if i%50 == 0 {
					var b strings.Builder
					if err := r.WritePrometheus(&b); err != nil {
						t.Error(err)
						return
					}
				}
			}
		}(w)
	}
	wg.Wait()

	var total uint64
	for _, ep := range endpoints {
		total += r.Counter("req_total", "", L("endpoint", ep)).Value()
	}
	if total != 8*500 {
		t.Errorf("req_total sums to %d, want %d", total, 8*500)
	}
	var hcount uint64
	for _, ep := range endpoints {
		hcount += r.Histogram("lat_ms", "", nil, L("endpoint", ep)).Snapshot().Count
	}
	if hcount != 8*500 {
		t.Errorf("lat_ms count sums to %d, want %d", hcount, 8*500)
	}
}

// TestHistogramQuantile checks interpolation, the Max cap, and Merge.
func TestHistogramQuantile(t *testing.T) {
	h := NewHistogram([]float64{10, 20, 40})
	for v := 1.0; v <= 30; v++ {
		h.Observe(v)
	}
	s := h.Snapshot()
	if s.Count != 30 || s.Max != 30 {
		t.Fatalf("count %d max %g, want 30 / 30", s.Count, s.Max)
	}
	if p50 := s.Quantile(0.5); p50 < 10 || p50 > 20 {
		t.Errorf("p50 = %g, want within (10, 20]", p50)
	}
	if p100 := s.Quantile(1); p100 != 30 {
		t.Errorf("p100 = %g, want exactly max 30", p100)
	}
	if p99 := s.Quantile(0.99); p99 > 30 {
		t.Errorf("p99 = %g exceeds the observed max", p99)
	}
	if mean := s.Mean(); mean < 15 || mean > 16 {
		t.Errorf("mean = %g, want 15.5", mean)
	}

	other := NewHistogram([]float64{10, 20, 40})
	other.Observe(100)
	m := s.Merge(other.Snapshot())
	if m.Count != 31 || m.Max != 100 {
		t.Errorf("merge: count %d max %g, want 31 / 100", m.Count, m.Max)
	}
}

// TestHistogramConcurrent: parallel observers under -race, with
// snapshots taken mid-write.
func TestHistogramConcurrent(t *testing.T) {
	h := NewHistogram([]float64{1, 2, 4, 8})
	var wg sync.WaitGroup
	for w := 0; w < 8; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; i < 1000; i++ {
				h.Observe(float64(i % 10))
				if i%100 == 0 {
					_ = h.Snapshot()
				}
			}
		}(w)
	}
	wg.Wait()
	if s := h.Snapshot(); s.Count != 8000 {
		t.Errorf("count = %d, want 8000", s.Count)
	}
}

// TestHistogramExemplar: exemplars pin a recent trace ID per bucket,
// survive snapshots, and render OpenMetrics-style on the text surface —
// but only on buckets that have one, so exemplar-free output is
// byte-identical to the pre-exemplar format.
func TestHistogramExemplar(t *testing.T) {
	r := NewRegistry()
	h := r.Histogram("lat_ex_ms", "latency", []float64{1, 10, 100})
	h.Observe(0.5) // no exemplar on this bucket
	h.ObserveExemplar(5, "aaaa111122223333")
	h.ObserveExemplar(7, "bbbb111122223333") // same bucket: last writer wins
	s := h.Snapshot()
	if len(s.Exemplars) != 1 {
		t.Fatalf("%d exemplars, want 1: %+v", len(s.Exemplars), s.Exemplars)
	}
	ex := s.Exemplars[0]
	if ex.Bucket != 1 || ex.Value != 7 || ex.TraceID != "bbbb111122223333" {
		t.Fatalf("exemplar wrong: %+v", ex)
	}
	var b strings.Builder
	if err := r.WritePrometheus(&b); err != nil {
		t.Fatal(err)
	}
	out := b.String()
	if !strings.Contains(out, `lat_ex_ms_bucket{le="10"} 3 # {trace_id="bbbb111122223333"} 7`) {
		t.Fatalf("exemplar not rendered:\n%s", out)
	}
	if strings.Contains(out, `le="1"} 1 #`) {
		t.Fatalf("exemplar leaked onto a bucket without one:\n%s", out)
	}
}

// TestRegistrySnapshotRoundTrip: Snapshot → JSON → Snapshot →
// WritePrometheus must produce the identical document to rendering the
// live registry — the federation wire cannot lose precision.
func TestRegistrySnapshotRoundTrip(t *testing.T) {
	r := NewRegistry()
	r.Counter("rt_requests_total", "requests", L("endpoint", "analyze")).Add(42)
	r.Gauge("rt_in_flight", "in flight").Set(2.5)
	r.GaugeFunc("rt_share", "share", func() float64 { return 0.75 }, L("node", "a"))
	h := r.Histogram("rt_lat_ms", "latency", []float64{1, 10})
	h.ObserveExemplar(5, "cccc111122223333")

	var live strings.Builder
	if err := r.WritePrometheus(&live); err != nil {
		t.Fatal(err)
	}
	raw, err := json.Marshal(r.Snapshot())
	if err != nil {
		t.Fatal(err)
	}
	var snap RegistrySnapshot
	if err := json.Unmarshal(raw, &snap); err != nil {
		t.Fatal(err)
	}
	var wire strings.Builder
	if err := snap.WritePrometheus(&wire); err != nil {
		t.Fatal(err)
	}
	if live.String() != wire.String() {
		t.Fatalf("snapshot round-trip diverged.\nlive:\n%s\nwire:\n%s", live.String(), wire.String())
	}
}

// TestRegistrySnapshotMerge: the federation merge — counters and gauges
// sum, histograms merge bucket-wise, peer-only series are adopted, and
// a histogram with a different bucket layout is skipped instead of
// panicking.
func TestRegistrySnapshotMerge(t *testing.T) {
	a := NewRegistry()
	a.Counter("m_requests_total", "requests", L("endpoint", "analyze")).Add(10)
	a.Gauge("m_in_flight", "in flight").Set(1)
	a.Histogram("m_lat_ms", "latency", []float64{1, 10}).Observe(5)
	a.Histogram("m_skew_ms", "skewed", []float64{1, 10}).Observe(5)

	b := NewRegistry()
	b.Counter("m_requests_total", "requests", L("endpoint", "analyze")).Add(32)
	b.Counter("m_requests_total", "requests", L("endpoint", "batch")).Add(7)
	b.Gauge("m_in_flight", "in flight").Set(3)
	b.Histogram("m_lat_ms", "latency", []float64{1, 10}).Observe(0.5)
	b.Histogram("m_skew_ms", "skewed", []float64{1, 5, 10}).Observe(5)
	b.Counter("m_peer_only_total", "only on the peer").Add(9)

	merged := a.Snapshot()
	merged.Merge(b.Snapshot())

	var out strings.Builder
	if err := merged.WritePrometheus(&out); err != nil {
		t.Fatal(err)
	}
	doc := out.String()
	for _, line := range []string{
		`m_requests_total{endpoint="analyze"} 42`,
		`m_requests_total{endpoint="batch"} 7`,
		`m_in_flight 4`,
		`m_lat_ms_count 2`,
		`m_lat_ms_bucket{le="1"} 1`,
		`m_peer_only_total 9`,
		// Mismatched layout: the local histogram wins untouched.
		`m_skew_ms_count 1`,
	} {
		if !strings.Contains(doc, line) {
			t.Fatalf("merged document missing %q in:\n%s", line, doc)
		}
	}
	if strings.Contains(doc, `m_skew_ms_bucket{le="5"}`) {
		t.Fatalf("mismatched-bucket histogram leaked peer layout:\n%s", doc)
	}
}
