// Package obs is the stdlib-only observability substrate of the serving
// stack: a metrics registry (counters, gauges, fixed-bucket histograms)
// with Prometheus text exposition, request-scoped traces with per-stage
// spans recorded into a bounded ring buffer, slog helpers for structured
// per-request logging, and runtime gauges. The paper's thesis — a single
// scalar hides *why* a mapping is fragile; the per-feature radius that
// binds must be exposed (Eq. 1–2) — applies to the serving stack itself:
// a degraded response or a breaker trip must be attributable to a stage,
// a feature, and a fault point. See docs/OBSERVABILITY.md for the metric
// catalog and trace schema.
//
// Cost discipline: every instrument is atomic (no locks on the hot
// path), and tracing is a no-op — one context lookup — unless a Trace
// was attached to the context, so production code is instrumented
// unconditionally and pays only when a collector is listening.
package obs

import (
	"fmt"
	"io"
	"math"
	"sort"
	"strconv"
	"strings"
	"sync"
	"sync/atomic"
)

// Label is one name="value" pair attached to a metric series.
type Label struct {
	Name  string `json:"name"`
	Value string `json:"value"`
}

// L is shorthand for constructing a Label.
func L(name, value string) Label { return Label{Name: name, Value: value} }

// Counter is a monotonically increasing counter. The zero value is ready
// to use; obtain registered counters from Registry.Counter.
type Counter struct{ v atomic.Uint64 }

// Add increments the counter by n.
func (c *Counter) Add(n uint64) { c.v.Add(n) }

// Inc increments the counter by one.
func (c *Counter) Inc() { c.v.Add(1) }

// Value returns the current count.
func (c *Counter) Value() uint64 { return c.v.Load() }

// Gauge is a float64 value that may go up and down.
type Gauge struct{ bits atomic.Uint64 }

// Set replaces the gauge value.
func (g *Gauge) Set(v float64) { g.bits.Store(math.Float64bits(v)) }

// Add moves the gauge by delta.
func (g *Gauge) Add(delta float64) {
	for {
		old := g.bits.Load()
		if g.bits.CompareAndSwap(old, math.Float64bits(math.Float64frombits(old)+delta)) {
			return
		}
	}
}

// Value returns the current gauge value.
func (g *Gauge) Value() float64 { return math.Float64frombits(g.bits.Load()) }

// metricType tags a family for TYPE lines and registration checks.
type metricType string

const (
	typeCounter   metricType = "counter"
	typeGauge     metricType = "gauge"
	typeHistogram metricType = "histogram"
)

// series is one labelled instrument inside a family.
type series struct {
	labels []Label
	sig    string // canonical label signature, the sort key

	counter *Counter
	gauge   *Gauge
	fn      func() float64
	hist    *Histogram
}

// family groups every series of one metric name.
type family struct {
	name, help string
	typ        metricType
	buckets    []float64 // histogram families only
	series     map[string]*series
}

// Registry is a set of named metric families. All methods are safe for
// concurrent use; registration of an already-known (name, labels) series
// returns the existing instrument, so call sites may re-register freely.
type Registry struct {
	mu       sync.RWMutex
	families map[string]*family
}

// NewRegistry returns an empty registry.
func NewRegistry() *Registry {
	return &Registry{families: make(map[string]*family)}
}

// labelSig builds the canonical signature of a sorted label set.
func labelSig(labels []Label) string {
	var b strings.Builder
	for _, l := range labels {
		b.WriteString(l.Name)
		b.WriteByte('=')
		b.WriteString(l.Value)
		b.WriteByte(',')
	}
	return b.String()
}

// sortLabels returns labels sorted by name, copied so callers may reuse
// their slice.
func sortLabels(labels []Label) []Label {
	out := append([]Label(nil), labels...)
	sort.Slice(out, func(i, j int) bool { return out[i].Name < out[j].Name })
	return out
}

// register finds or creates the (name, labels) series, enforcing type
// consistency within a family.
func (r *Registry) register(name, help string, typ metricType, buckets []float64, labels []Label) *series {
	labels = sortLabels(labels)
	sig := labelSig(labels)
	r.mu.Lock()
	defer r.mu.Unlock()
	fam := r.families[name]
	if fam == nil {
		fam = &family{name: name, help: help, typ: typ, buckets: buckets, series: make(map[string]*series)}
		r.families[name] = fam
	}
	if fam.typ != typ {
		panic(fmt.Sprintf("obs: metric %q registered as %s and %s", name, fam.typ, typ))
	}
	s := fam.series[sig]
	if s == nil {
		s = &series{labels: labels, sig: sig}
		switch typ {
		case typeCounter:
			s.counter = &Counter{}
		case typeGauge:
			s.gauge = &Gauge{}
		case typeHistogram:
			s.hist = NewHistogram(fam.buckets)
		}
		fam.series[sig] = s
	}
	return s
}

// Counter returns the registered counter for (name, labels), creating it
// on first use.
func (r *Registry) Counter(name, help string, labels ...Label) *Counter {
	return r.register(name, help, typeCounter, nil, labels).counter
}

// Gauge returns the registered gauge for (name, labels), creating it on
// first use.
func (r *Registry) Gauge(name, help string, labels ...Label) *Gauge {
	return r.register(name, help, typeGauge, nil, labels).gauge
}

// GaugeFunc registers fn as the value source of the (name, labels)
// series, evaluated at exposition time. It replaces any previous function
// for the same series.
func (r *Registry) GaugeFunc(name, help string, fn func() float64, labels ...Label) {
	s := r.register(name, help, typeGauge, nil, labels)
	r.mu.Lock()
	s.fn = fn
	r.mu.Unlock()
}

// Histogram returns the registered histogram for (name, labels),
// creating it on first use with the given bucket upper bounds (the +Inf
// bucket is implicit). Every series of one family shares the family's
// first-registered buckets.
func (r *Registry) Histogram(name, help string, buckets []float64, labels ...Label) *Histogram {
	return r.register(name, help, typeHistogram, buckets, labels).hist
}

// WritePrometheus renders the registry in the Prometheus text exposition
// format (version 0.0.4), deterministically: families sorted by name,
// series sorted by label signature. It renders through Snapshot, so the
// live registry and a wire snapshot produce the same document.
func (r *Registry) WritePrometheus(w io.Writer) error {
	return r.Snapshot().WritePrometheus(w)
}

// writeHistogram emits the cumulative _bucket/_sum/_count triplet of one
// histogram series. Buckets with a recorded exemplar carry it
// OpenMetrics-style after the bucket value: `# {trace_id="…"} <v>`.
func writeHistogram(b *strings.Builder, name string, labels []Label, snap HistogramSnapshot) {
	exemplar := make(map[int]Exemplar, len(snap.Exemplars))
	for _, ex := range snap.Exemplars {
		exemplar[ex.Bucket] = ex
	}
	writeBucket := func(i int, le string, cum uint64) {
		fmt.Fprintf(b, "%s_bucket%s %d", name, renderLabels(append(append([]Label(nil), labels...), L("le", le))), cum)
		if ex, ok := exemplar[i]; ok {
			fmt.Fprintf(b, " # {trace_id=\"%s\"} %s", escapeLabel(ex.TraceID), formatFloat(ex.Value))
		}
		b.WriteByte('\n')
	}
	cum := uint64(0)
	for i, ub := range snap.Bounds {
		cum += snap.Counts[i]
		writeBucket(i, formatFloat(ub), cum)
	}
	cum += snap.Counts[len(snap.Bounds)]
	writeBucket(len(snap.Bounds), "+Inf", cum)
	fmt.Fprintf(b, "%s_sum%s %s\n", name, renderLabels(labels), formatFloat(snap.Sum))
	fmt.Fprintf(b, "%s_count%s %d\n", name, renderLabels(labels), snap.Count)
}

// renderLabels renders {a="x",b="y"}, or "" for an empty set.
func renderLabels(labels []Label) string {
	if len(labels) == 0 {
		return ""
	}
	var b strings.Builder
	b.WriteByte('{')
	for i, l := range labels {
		if i > 0 {
			b.WriteByte(',')
		}
		b.WriteString(l.Name)
		b.WriteString(`="`)
		b.WriteString(escapeLabel(l.Value))
		b.WriteByte('"')
	}
	b.WriteByte('}')
	return b.String()
}

// escapeLabel escapes a label value per the exposition format.
func escapeLabel(v string) string {
	v = strings.ReplaceAll(v, `\`, `\\`)
	v = strings.ReplaceAll(v, "\n", `\n`)
	return strings.ReplaceAll(v, `"`, `\"`)
}

// escapeHelp escapes a HELP string per the exposition format.
func escapeHelp(v string) string {
	v = strings.ReplaceAll(v, `\`, `\\`)
	return strings.ReplaceAll(v, "\n", `\n`)
}

// formatFloat renders a float the way Prometheus clients do: shortest
// round-trip representation, with +Inf/-Inf/NaN spelled out.
func formatFloat(v float64) string {
	switch {
	case math.IsInf(v, 1):
		return "+Inf"
	case math.IsInf(v, -1):
		return "-Inf"
	case math.IsNaN(v):
		return "NaN"
	}
	return strconv.FormatFloat(v, 'g', -1, 64)
}
