package obs

import (
	"strings"
	"testing"
	"time"
)

// sloGauge digs one gauge value out of a registry snapshot by name and
// label set.
func sloGauge(t *testing.T, reg *Registry, name string, labels ...Label) float64 {
	t.Helper()
	want := labelSig(sortLabels(labels))
	for _, fam := range reg.Snapshot().Families {
		if fam.Name != name {
			continue
		}
		for _, s := range fam.Series {
			if labelSig(s.Labels) == want && s.Gauge != nil {
				return *s.Gauge
			}
		}
	}
	t.Fatalf("gauge %s%v not found", name, labels)
	return 0
}

// TestSLOBurnRate: the burn-rate arithmetic — bad-rate over budget —
// on both objectives, and the budget-remaining complement.
func TestSLOBurnRate(t *testing.T) {
	clock := time.Unix(1_000_000, 0)
	now := func() time.Time { return clock }
	reg := NewRegistry()
	s := NewSLO(reg, []string{"analyze"}, SLOConfig{LatencyP99MS: 100, Availability: 0.999}, now)

	// 99 good + 1 bad availability events: bad rate 1%, budget 0.1% →
	// burn 10 on both windows.
	for i := 0; i < 99; i++ {
		s.Record("analyze", 200, 10)
	}
	s.Record("analyze", 500, 10)
	for _, window := range []string{"5m", "1h"} {
		got := sloGauge(t, reg, "fepiad_slo_burn_rate",
			L("endpoint", "analyze"), L("slo", "availability"), L("window", window))
		if got < 9.99 || got > 10.01 {
			t.Fatalf("availability burn (%s) = %v, want 10", window, got)
		}
	}
	// Latency: 99 fast + 1 over-threshold (the 500 above is excluded
	// from the latency ledger). Add one slow success: 1 bad of 100,
	// budget 1% → burn 1.
	s.Record("analyze", 200, 250)
	got := sloGauge(t, reg, "fepiad_slo_burn_rate",
		L("endpoint", "analyze"), L("slo", "latency"), L("window", "1h"))
	if got < 0.99 || got > 1.01 {
		t.Fatalf("latency burn = %v, want 1", got)
	}
	remaining := sloGauge(t, reg, "fepiad_slo_error_budget_remaining",
		L("endpoint", "analyze"), L("slo", "latency"))
	if remaining < -0.01 || remaining > 0.01 {
		t.Fatalf("latency budget remaining = %v, want 0 (burn exactly 1)", remaining)
	}
	if obj := sloGauge(t, reg, "fepiad_slo_objective",
		L("endpoint", "analyze"), L("slo", "latency")); obj != 100 {
		t.Fatalf("latency objective gauge = %v, want 100", obj)
	}

	// Two hours later every bucket has aged out of both windows.
	clock = clock.Add(2 * time.Hour)
	if got := sloGauge(t, reg, "fepiad_slo_burn_rate",
		L("endpoint", "analyze"), L("slo", "availability"), L("window", "1h")); got != 0 {
		t.Fatalf("burn after window expiry = %v, want 0", got)
	}
}

// TestSLOWindowDivergence: a burst of errors shows on the fast 5m
// window long after it aged out there but still weighs on the 1h one —
// the multi-window shape that separates blips from incidents.
func TestSLOWindowDivergence(t *testing.T) {
	clock := time.Unix(2_000_000, 0)
	now := func() time.Time { return clock }
	reg := NewRegistry()
	s := NewSLO(reg, []string{"analyze"}, SLOConfig{Availability: 0.999}, now)

	for i := 0; i < 10; i++ {
		s.Record("analyze", 503, 1)
	}
	clock = clock.Add(10 * time.Minute)
	for i := 0; i < 10; i++ {
		s.Record("analyze", 200, 1)
	}
	fast := sloGauge(t, reg, "fepiad_slo_burn_rate",
		L("endpoint", "analyze"), L("slo", "availability"), L("window", "5m"))
	slow := sloGauge(t, reg, "fepiad_slo_burn_rate",
		L("endpoint", "analyze"), L("slo", "availability"), L("window", "1h"))
	if fast != 0 {
		t.Fatalf("5m burn = %v, want 0 (burst aged out)", fast)
	}
	if slow < 499 || slow > 501 {
		t.Fatalf("1h burn = %v, want 500 (10 bad of 20, budget 0.1%%)", slow)
	}
}

// TestSLODefaultsAndUnknownEndpoint: zero config selects the documented
// defaults, availability 1.0 is clamped off the division-by-zero cliff,
// and recording an unregistered endpoint is a no-op.
func TestSLODefaultsAndUnknownEndpoint(t *testing.T) {
	cfg := SLOConfig{}.withDefaults()
	if cfg.LatencyP99MS != 500 || cfg.Availability != 0.999 {
		t.Fatalf("defaults wrong: %+v", cfg)
	}
	if c := (SLOConfig{Availability: 1.0}).withDefaults(); c.Availability >= 1 {
		t.Fatalf("availability 1.0 not clamped: %+v", c)
	}
	reg := NewRegistry()
	s := NewSLO(reg, []string{"analyze"}, SLOConfig{}, nil)
	s.Record("nope", 200, 1) // must not panic
	if s.Config().LatencyP99MS != 500 {
		t.Fatalf("effective config not defaulted: %+v", s.Config())
	}
}

// TestSLORenderOnMetrics: the gauges render on the Prometheus surface
// with the documented names and label shape.
func TestSLORenderOnMetrics(t *testing.T) {
	reg := NewRegistry()
	s := NewSLO(reg, []string{"analyze", "batch"}, SLOConfig{}, nil)
	s.Record("analyze", 200, 1)
	var b strings.Builder
	if err := reg.WritePrometheus(&b); err != nil {
		t.Fatal(err)
	}
	out := b.String()
	for _, line := range []string{
		`fepiad_slo_burn_rate{endpoint="analyze",slo="availability",window="5m"} 0`,
		`fepiad_slo_burn_rate{endpoint="analyze",slo="latency",window="1h"} 0`,
		`fepiad_slo_burn_rate{endpoint="batch",slo="availability",window="1h"} 0`,
		`fepiad_slo_error_budget_remaining{endpoint="analyze",slo="availability"} 1`,
		`fepiad_slo_objective{endpoint="analyze",slo="latency"} 500`,
		`fepiad_slo_objective{endpoint="batch",slo="availability"} 0.999`,
	} {
		if !strings.Contains(out, line) {
			t.Fatalf("metrics output missing %q in:\n%s", line, out)
		}
	}
}
