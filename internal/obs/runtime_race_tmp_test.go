package obs

import (
	"io"
	"sync"
	"testing"
	"time"
)

func TestRuntimeGaugeRaceTmp(t *testing.T) {
	r := NewRegistry()
	RegisterRuntime(r)
	// Force the cached sample to expire constantly so concurrent scrapes
	// interleave ReadMemStats writes with field reads.
	var wg sync.WaitGroup
	stop := time.After(200 * time.Millisecond)
	for i := 0; i < 4; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for {
				select {
				case <-stop:
					return
				default:
					_ = r.WritePrometheus(io.Discard)
				}
			}
		}()
	}
	wg.Wait()
}
