package obs

import (
	"math"
	"sort"
	"sync/atomic"
)

// DefaultLatencyBucketsMS is a log-ish spread of request-latency bucket
// upper bounds in milliseconds, from sub-millisecond cache hits to
// multi-second cold solves. cmd/loadgen and the fepiad per-endpoint
// request histograms use it.
var DefaultLatencyBucketsMS = []float64{0.1, 0.25, 0.5, 1, 2.5, 5, 10, 25, 50, 100, 250, 500, 1000, 2500, 5000, 10000, 30000}

// Histogram is a fixed-bucket histogram with atomic counters: Observe
// never locks, so parallel writers (batch workers, load-generator
// clients) record without contention. Obtain registered histograms from
// Registry.Histogram, or standalone ones from NewHistogram.
type Histogram struct {
	bounds    []float64 // sorted upper bounds; the +Inf bucket is implicit
	counts    []atomic.Uint64
	count     atomic.Uint64 // total observations
	sum       atomic.Uint64 // float64 bits, CAS-added
	max       atomic.Uint64 // float64 bits, CAS-maxed
	exemplars []atomic.Pointer[Exemplar]
}

// Exemplar links one histogram bucket to the trace that most recently
// landed in it, OpenMetrics-style: a slow latency bucket is one trace
// ID away from its /debug/traces document.
type Exemplar struct {
	// Bucket indexes the bucket the observation fell in
	// (len(Bounds) = the +Inf overflow bucket).
	Bucket  int     `json:"bucket"`
	Value   float64 `json:"value"`
	TraceID string  `json:"trace_id"`
}

// NewHistogram builds a histogram over the given bucket upper bounds
// (sorted copies are taken; nil selects DefaultLatencyBucketsMS).
func NewHistogram(bounds []float64) *Histogram {
	if len(bounds) == 0 {
		bounds = DefaultLatencyBucketsMS
	}
	b := append([]float64(nil), bounds...)
	sort.Float64s(b)
	return &Histogram{
		bounds:    b,
		counts:    make([]atomic.Uint64, len(b)+1),
		exemplars: make([]atomic.Pointer[Exemplar], len(b)+1),
	}
}

// Observe records one value.
func (h *Histogram) Observe(v float64) {
	h.observe(v, "")
}

// ObserveExemplar records one value and, when traceID is non-empty,
// pins it as the bucket's exemplar (last writer wins — recency is the
// point). The fepiad request-latency histograms use it so every bucket
// links to a recent trace.
func (h *Histogram) ObserveExemplar(v float64, traceID string) {
	h.observe(v, traceID)
}

func (h *Histogram) observe(v float64, traceID string) {
	i := sort.SearchFloat64s(h.bounds, v)
	if traceID != "" {
		h.exemplars[i].Store(&Exemplar{Bucket: i, Value: v, TraceID: traceID})
	}
	h.counts[i].Add(1)
	h.count.Add(1)
	for {
		old := h.sum.Load()
		if h.sum.CompareAndSwap(old, math.Float64bits(math.Float64frombits(old)+v)) {
			break
		}
	}
	// The zero bits decode to +0.0, so any non-negative observation
	// (latencies always are) takes the max slot on first touch.
	for {
		old := h.max.Load()
		if math.Float64frombits(old) >= v {
			break
		}
		if h.max.CompareAndSwap(old, math.Float64bits(v)) {
			break
		}
	}
}

// HistogramSnapshot is a point-in-time copy of a histogram's state.
type HistogramSnapshot struct {
	// Bounds are the bucket upper bounds; Counts[i] is the number of
	// observations ≤ Bounds[i] (non-cumulative), with Counts[len(Bounds)]
	// the +Inf overflow bucket.
	Bounds []float64 `json:"bounds"`
	Counts []uint64  `json:"counts"`
	// Count, Sum, and Max aggregate every observation.
	Count uint64  `json:"count"`
	Sum   float64 `json:"sum"`
	Max   float64 `json:"max"`
	// Exemplars holds at most one recent trace link per bucket, in
	// bucket order; buckets without an exemplar are absent.
	Exemplars []Exemplar `json:"exemplars,omitempty"`
}

// Snapshot copies the current state. Concurrent Observe calls may land
// between counter reads; the snapshot is internally consistent enough
// for exposition (bucket totals may trail Count by in-flight updates).
func (h *Histogram) Snapshot() HistogramSnapshot {
	s := HistogramSnapshot{
		Bounds: append([]float64(nil), h.bounds...),
		Counts: make([]uint64, len(h.counts)),
		Count:  h.count.Load(),
		Sum:    math.Float64frombits(h.sum.Load()),
		Max:    math.Float64frombits(h.max.Load()),
	}
	for i := range h.counts {
		s.Counts[i] = h.counts[i].Load()
	}
	for i := range h.exemplars {
		if ex := h.exemplars[i].Load(); ex != nil {
			s.Exemplars = append(s.Exemplars, *ex)
		}
	}
	return s
}

// Mean returns Sum/Count, or 0 before any observation.
func (s HistogramSnapshot) Mean() float64 {
	if s.Count == 0 {
		return 0
	}
	return s.Sum / float64(s.Count)
}

// Quantile estimates the p-quantile (p in [0, 1]) by linear
// interpolation inside the bucket containing the target rank. The
// estimate is capped by Max (observed exactly), so p=1 is exact and high
// quantiles never report beyond the largest observation.
func (s HistogramSnapshot) Quantile(p float64) float64 {
	if s.Count == 0 {
		return 0
	}
	if p < 0 {
		p = 0
	}
	if p > 1 {
		p = 1
	}
	rank := p * float64(s.Count)
	cum := 0.0
	lo := 0.0
	for i, c := range s.Counts {
		if c == 0 {
			if i < len(s.Bounds) {
				lo = s.Bounds[i]
			}
			continue
		}
		next := cum + float64(c)
		if rank <= next {
			hi := s.Max
			if i < len(s.Bounds) && s.Bounds[i] < hi {
				hi = s.Bounds[i]
			}
			if hi < lo {
				hi = lo
			}
			frac := (rank - cum) / float64(c)
			v := lo + frac*(hi-lo)
			if v > s.Max && s.Max > 0 {
				v = s.Max
			}
			return v
		}
		cum = next
		if i < len(s.Bounds) {
			lo = s.Bounds[i]
		}
	}
	return s.Max
}

// Merge returns the element-wise sum of two snapshots over identical
// bounds; it panics on mismatched bucket layouts. The fepiad /debug/vars
// aggregate latency histogram merges the per-endpoint series.
func (s HistogramSnapshot) Merge(o HistogramSnapshot) HistogramSnapshot {
	if len(s.Bounds) != len(o.Bounds) {
		panic("obs: merging histograms with different bucket layouts")
	}
	out := HistogramSnapshot{
		Bounds: append([]float64(nil), s.Bounds...),
		Counts: make([]uint64, len(s.Counts)),
		Count:  s.Count + o.Count,
		Sum:    s.Sum + o.Sum,
		Max:    math.Max(s.Max, o.Max),
	}
	for i := range out.Counts {
		out.Counts[i] = s.Counts[i] + o.Counts[i]
	}
	// Exemplars: keep one per bucket, receiver's first (both are "a
	// recent trace in this bucket" — either serves the purpose).
	have := make(map[int]bool, len(s.Exemplars))
	for _, ex := range s.Exemplars {
		out.Exemplars = append(out.Exemplars, ex)
		have[ex.Bucket] = true
	}
	for _, ex := range o.Exemplars {
		if !have[ex.Bucket] {
			out.Exemplars = append(out.Exemplars, ex)
		}
	}
	sort.Slice(out.Exemplars, func(i, j int) bool { return out.Exemplars[i].Bucket < out.Exemplars[j].Bucket })
	return out
}
