package obs

import (
	"runtime"
	"sync"
	"time"
)

// runtimeSampler caches one runtime.MemStats read across the several
// gauge functions that feed from it, so one /metrics scrape triggers at
// most one stop-the-world stats collection (and repeated scrapes within
// maxAge reuse it).
type runtimeSampler struct {
	mu     sync.Mutex
	at     time.Time
	maxAge time.Duration
	ms     runtime.MemStats
}

func (s *runtimeSampler) sample() *runtime.MemStats {
	s.mu.Lock()
	defer s.mu.Unlock()
	if time.Since(s.at) > s.maxAge {
		runtime.ReadMemStats(&s.ms)
		s.at = time.Now()
	}
	return &s.ms
}

// RegisterRuntime adds the process runtime gauges — goroutines, heap,
// GC — to the registry, evaluated at scrape time (with a 1s cache so a
// burst of scrapes costs one MemStats read).
func RegisterRuntime(r *Registry) {
	s := &runtimeSampler{maxAge: time.Second}
	r.GaugeFunc("go_goroutines", "Number of live goroutines.",
		func() float64 { return float64(runtime.NumGoroutine()) })
	r.GaugeFunc("go_heap_alloc_bytes", "Bytes of allocated heap objects.",
		func() float64 { return float64(s.sample().HeapAlloc) })
	r.GaugeFunc("go_heap_objects", "Number of allocated heap objects.",
		func() float64 { return float64(s.sample().HeapObjects) })
	r.GaugeFunc("go_gc_cycles_total", "Completed GC cycles.",
		func() float64 { return float64(s.sample().NumGC) })
	r.GaugeFunc("go_gc_pause_seconds_total", "Cumulative GC stop-the-world pause time.",
		func() float64 { return float64(s.sample().PauseTotalNs) / 1e9 })
}
