package obs

import (
	"fmt"
	"io"
	"sort"
	"strings"
)

// RegistrySnapshot is a point-in-time, JSON-marshalable copy of a
// Registry — the federation wire format. A node serves its snapshot on
// /v1/cluster/metrics; the scraped node merges peer snapshots into its
// own and renders the fleet view for /metrics?federate=1. Rendering a
// snapshot produces byte-identical output to rendering the live
// registry at the same instant.
type RegistrySnapshot struct {
	Families []FamilySnapshot `json:"families"`
}

// FamilySnapshot is one metric family: every series sharing a name.
type FamilySnapshot struct {
	Name   string           `json:"name"`
	Help   string           `json:"help,omitempty"`
	Type   string           `json:"type"`
	Series []SeriesSnapshot `json:"series"`
}

// SeriesSnapshot is one labelled series; exactly one of Counter, Gauge,
// Hist is set, matching the family type. Gauge functions are evaluated
// at snapshot time, so the wire carries plain values.
type SeriesSnapshot struct {
	Labels  []Label            `json:"labels,omitempty"`
	Counter *uint64            `json:"counter,omitempty"`
	Gauge   *float64           `json:"gauge,omitempty"`
	Hist    *HistogramSnapshot `json:"histogram,omitempty"`
}

// Snapshot copies the registry's current state: families sorted by
// name, series sorted by label signature, gauge functions evaluated.
func (r *Registry) Snapshot() RegistrySnapshot {
	r.mu.RLock()
	defer r.mu.RUnlock()
	names := make([]string, 0, len(r.families))
	for name := range r.families {
		names = append(names, name)
	}
	sort.Strings(names)
	out := RegistrySnapshot{Families: make([]FamilySnapshot, 0, len(names))}
	for _, name := range names {
		fam := r.families[name]
		fs := FamilySnapshot{Name: name, Help: fam.help, Type: string(fam.typ)}
		sigs := make([]string, 0, len(fam.series))
		for sig := range fam.series {
			sigs = append(sigs, sig)
		}
		sort.Strings(sigs)
		for _, sig := range sigs {
			s := fam.series[sig]
			ss := SeriesSnapshot{Labels: append([]Label(nil), s.labels...)}
			switch fam.typ {
			case typeCounter:
				v := s.counter.Value()
				ss.Counter = &v
			case typeGauge:
				v := 0.0
				if s.fn != nil {
					v = s.fn()
				} else {
					v = s.gauge.Value()
				}
				ss.Gauge = &v
			case typeHistogram:
				h := s.hist.Snapshot()
				ss.Hist = &h
			}
			fs.Series = append(fs.Series, ss)
		}
		out.Families = append(out.Families, fs)
	}
	return out
}

// Merge folds a peer's snapshot into the receiver, series by series:
// counters and gauges sum (the federated document reads as fleet
// totals), histograms merge bucket-wise. A peer series with no local
// counterpart is adopted; a histogram whose bucket layout disagrees
// with the local one is skipped rather than corrupting the merge (the
// local series wins). Families disagreeing on type are skipped whole.
func (s *RegistrySnapshot) Merge(o RegistrySnapshot) {
	byName := make(map[string]*FamilySnapshot, len(s.Families))
	for i := range s.Families {
		byName[s.Families[i].Name] = &s.Families[i]
	}
	// Adopted peer-only families are collected and appended after the
	// loop: appending mid-loop could reallocate s.Families and orphan
	// the byName pointers.
	var adopted []FamilySnapshot
	for _, of := range o.Families {
		sf := byName[of.Name]
		if sf == nil {
			adopted = append(adopted, of)
			continue
		}
		if sf.Type != of.Type {
			continue
		}
		bySig := make(map[string]*SeriesSnapshot, len(sf.Series))
		for i := range sf.Series {
			bySig[labelSig(sf.Series[i].Labels)] = &sf.Series[i]
		}
		for _, os := range of.Series {
			ss := bySig[labelSig(os.Labels)]
			if ss == nil {
				sf.Series = append(sf.Series, os)
				continue
			}
			switch {
			case ss.Counter != nil && os.Counter != nil:
				*ss.Counter += *os.Counter
			case ss.Gauge != nil && os.Gauge != nil:
				*ss.Gauge += *os.Gauge
			case ss.Hist != nil && os.Hist != nil:
				if len(ss.Hist.Bounds) == len(os.Hist.Bounds) {
					merged := ss.Hist.Merge(*os.Hist)
					*ss.Hist = merged
				}
			}
		}
		sort.Slice(sf.Series, func(i, j int) bool {
			return labelSig(sf.Series[i].Labels) < labelSig(sf.Series[j].Labels)
		})
	}
	s.Families = append(s.Families, adopted...)
	sort.Slice(s.Families, func(i, j int) bool { return s.Families[i].Name < s.Families[j].Name })
}

// WritePrometheus renders the snapshot in the Prometheus text
// exposition format (version 0.0.4), deterministically: families
// sorted by name, series sorted by label signature — the same document
// Registry.WritePrometheus emits.
func (s RegistrySnapshot) WritePrometheus(w io.Writer) error {
	var b strings.Builder
	for _, fam := range s.Families {
		if fam.Help != "" {
			fmt.Fprintf(&b, "# HELP %s %s\n", fam.Name, escapeHelp(fam.Help))
		}
		fmt.Fprintf(&b, "# TYPE %s %s\n", fam.Name, fam.Type)
		for _, ss := range fam.Series {
			switch {
			case ss.Counter != nil:
				fmt.Fprintf(&b, "%s%s %d\n", fam.Name, renderLabels(ss.Labels), *ss.Counter)
			case ss.Gauge != nil:
				fmt.Fprintf(&b, "%s%s %s\n", fam.Name, renderLabels(ss.Labels), formatFloat(*ss.Gauge))
			case ss.Hist != nil:
				writeHistogram(&b, fam.Name, ss.Labels, *ss.Hist)
			}
		}
	}
	_, err := io.WriteString(w, b.String())
	return err
}
