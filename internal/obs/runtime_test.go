package obs

import (
	"io"
	"sync"
	"testing"
	"time"
)

// TestRuntimeGaugeConcurrentScrapes forces the runtime gauges' cached
// memstats sample to expire constantly while several scrapers render the
// registry, so ReadMemStats refreshes interleave with field reads — a
// race-detector story. A closed channel broadcasts the deadline to every
// scraper (time.After delivers to only one receiver).
func TestRuntimeGaugeConcurrentScrapes(t *testing.T) {
	r := NewRegistry()
	RegisterRuntime(r)
	stop := make(chan struct{})
	time.AfterFunc(200*time.Millisecond, func() { close(stop) })
	var wg sync.WaitGroup
	for i := 0; i < 4; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for {
				select {
				case <-stop:
					return
				default:
					_ = r.WritePrometheus(io.Discard)
				}
			}
		}()
	}
	wg.Wait()
}
