package obs

import (
	"context"
	"crypto/rand"
	"encoding/binary"
	"encoding/hex"
	"sort"
	"sync"
	"sync/atomic"
	"time"
)

// maxSpansPerTrace bounds one trace's span list so a pathological batch
// (thousands of features) cannot balloon the ring; overflow is counted
// in TraceData.SpansDropped.
const maxSpansPerTrace = 512

// NewID returns a 16-hex-char request ID. It never fails: if the system
// entropy source is unavailable it falls back to a process-local counter,
// which is still unique within the process.
func NewID() string {
	var b [8]byte
	if _, err := rand.Read(b[:]); err != nil {
		n := fallbackID.Add(1)
		for i := range b {
			b[i] = byte(n >> (8 * i))
		}
	}
	return hex.EncodeToString(b[:])
}

var fallbackID atomic.Uint64

// randUint64 draws one random 64-bit value, with the same counter
// fallback as NewID when the entropy source is unavailable.
func randUint64() uint64 {
	var b [8]byte
	if _, err := rand.Read(b[:]); err != nil {
		return fallbackID.Add(1)
	}
	return binary.BigEndian.Uint64(b[:])
}

// spanIDString renders a span ID as 16 lowercase hex chars — the same
// shape as a trace or request ID, so every ID in a trace document greps
// alike.
func spanIDString(v uint64) string {
	var b [8]byte
	binary.BigEndian.PutUint64(b[:], v)
	return hex.EncodeToString(b[:])
}

// ParseTraceHeader parses an X-Fepiad-Trace value of the form
// "<trace-id>-<parent-span-id>" (16 lowercase hex chars each, W3C
// traceparent style). Anything malformed — wrong length, missing
// separator, uppercase or non-hex bytes — returns ok=false so the
// caller starts a fresh trace instead of erroring.
func ParseTraceHeader(v string) (traceID, parentID string, ok bool) {
	if len(v) != 33 || v[16] != '-' {
		return "", "", false
	}
	traceID, parentID = v[:16], v[17:]
	if !isHex16(traceID) || !isHex16(parentID) {
		return "", "", false
	}
	return traceID, parentID, true
}

// FormatTraceHeader renders the X-Fepiad-Trace wire value for a forward:
// the trace ID plus the span that becomes the remote server span's
// parent (the ingress forward span).
func FormatTraceHeader(traceID, parentID string) string {
	return traceID + "-" + parentID
}

func isHex16(s string) bool {
	if len(s) != 16 {
		return false
	}
	for i := 0; i < len(s); i++ {
		c := s[i]
		if (c < '0' || c > '9') && (c < 'a' || c > 'f') {
			return false
		}
	}
	return true
}

// SpanData is one finished pipeline-stage span as served on
// /debug/traces. Offsets are relative to the trace start so a span list
// reads as a timeline. SpanID/ParentID place the span in the cross-node
// tree: local spans hang off the trace's root span, a forwarded
// request's remote spans hang off the ingress forward span.
type SpanData struct {
	Name       string            `json:"name"`
	SpanID     string            `json:"span_id,omitempty"`
	ParentID   string            `json:"parent_id,omitempty"`
	StartUS    int64             `json:"start_us"`
	DurationUS int64             `json:"duration_us"`
	Error      string            `json:"error,omitempty"`
	Retries    int               `json:"retries,omitempty"`
	Attrs      map[string]string `json:"attrs,omitempty"`
}

// TraceData is one finished request trace: the JSON document of
// /debug/traces. TraceID is the cross-node trace identity (propagated
// on forwards via X-Fepiad-Trace); SpanID is the trace's root span and
// ParentID, when set, is the remote parent span this trace was stitched
// under on the node that forwarded to us.
type TraceData struct {
	ID           string            `json:"id"`
	TraceID      string            `json:"trace_id,omitempty"`
	SpanID       string            `json:"span_id,omitempty"`
	ParentID     string            `json:"parent_id,omitempty"`
	Endpoint     string            `json:"endpoint"`
	Start        time.Time         `json:"start"`
	DurationUS   int64             `json:"duration_us"`
	Status       int               `json:"status"`
	Slow         bool              `json:"slow,omitempty"`
	Attrs        map[string]string `json:"attrs,omitempty"`
	Spans        []SpanData        `json:"spans"`
	SpansDropped int               `json:"spans_dropped,omitempty"`

	// SkipSlowest excludes this trace from the slowest-ever retention
	// list (shed 503s record near-zero durations and must not occupy
	// outlier slots). Never serialized.
	SkipSlowest bool `json:"-"`
}

// Trace accumulates the spans of one in-flight request. Create one with
// NewTrace, attach it to the request context with WithTrace, and seal it
// with Finish. All methods are safe for concurrent use — batch workers
// append spans to the same trace from many goroutines.
type Trace struct {
	id       string
	endpoint string
	traceID  string
	rootID   string // root span ID; local spans parent here
	parent   string // remote parent span ID ("" when this node is the ingress)
	start    time.Time
	idBase   uint64
	seq      atomic.Uint64

	mu      sync.Mutex
	spans   []SpanData
	dropped int
	attrs   map[string]string
}

// NewTrace starts a trace for one request. id is the request ID
// (accepted from or emitted as X-Request-Id); endpoint names the route.
// The trace gets a fresh 16-hex trace ID and a random root span ID.
func NewTrace(id, endpoint string) *Trace {
	return NewTraceRemote(id, endpoint, "", "")
}

// NewTraceRemote starts a trace that continues a cross-node trace: the
// forwarded-to node adopts the ingress trace ID and parents its root
// span under parentID (the ingress forward span). Empty traceID starts
// a fresh trace, exactly like NewTrace.
func NewTraceRemote(id, endpoint, traceID, parentID string) *Trace {
	base := randUint64()
	if traceID == "" {
		traceID = NewID()
		parentID = ""
	}
	return &Trace{
		id:       id,
		endpoint: endpoint,
		traceID:  traceID,
		rootID:   spanIDString(base),
		parent:   parentID,
		start:    time.Now(),
		idBase:   base,
	}
}

// ID returns the trace's request ID.
func (t *Trace) ID() string { return t.id }

// TraceID returns the cross-node trace ID (16 hex chars).
func (t *Trace) TraceID() string { return t.traceID }

// RootSpanID returns the trace's root span ID — the parent of every
// local span and, on a forwarded-to node, the span exported as the
// remote "server" span.
func (t *Trace) RootSpanID() string { return t.rootID }

// Remote reports whether this trace continues a trace started on
// another node (it was built from a valid X-Fepiad-Trace header).
func (t *Trace) Remote() bool { return t.parent != "" }

// nextSpanID allocates a span ID unique within the trace: sequential
// offsets from the random per-trace base, so one entropy read covers
// every span.
func (t *Trace) nextSpanID() string {
	return spanIDString(t.idBase + t.seq.Add(1))
}

// SetAttr records a trace-level attribute (outcome, degraded, breaker
// state, …); the access logger and /debug/traces both surface it.
func (t *Trace) SetAttr(key, value string) {
	if t == nil {
		return
	}
	t.mu.Lock()
	if t.attrs == nil {
		t.attrs = make(map[string]string, 4)
	}
	t.attrs[key] = value
	t.mu.Unlock()
}

// Attrs returns a sorted copy of the trace-level attributes as key/value
// pairs, for structured access logging.
func (t *Trace) Attrs() []Label {
	if t == nil {
		return nil
	}
	t.mu.Lock()
	out := make([]Label, 0, len(t.attrs))
	for k, v := range t.attrs {
		out = append(out, Label{Name: k, Value: v})
	}
	t.mu.Unlock()
	sort.Slice(out, func(i, j int) bool { return out[i].Name < out[j].Name })
	return out
}

// add appends one finished span.
func (t *Trace) add(sd SpanData) {
	t.mu.Lock()
	if len(t.spans) >= maxSpansPerTrace {
		t.dropped++
	} else {
		t.spans = append(t.spans, sd)
	}
	t.mu.Unlock()
}

// Stitch merges spans exported by a remote node into this trace — the
// ingress side of cross-node tracing. offsetUS shifts the remote
// timeline onto this trace's clock (the forward span's start offset);
// remote parent IDs are preserved, so the exported server span stays
// hooked under the forward span that carried the X-Fepiad-Trace header.
// Stitching respects the span cap like any local span.
func (t *Trace) Stitch(spans []SpanData, offsetUS int64) {
	if t == nil {
		return
	}
	for _, sd := range spans {
		sd.StartUS += offsetUS
		t.add(sd)
	}
}

// ExportSpans snapshots the spans recorded so far — the forwarded-to
// node's side of cross-node tracing — prepended with a synthetic
// "server" span (the trace's root, parented under the ingress forward
// span) so the ingress stitches a rooted subtree. The list is sorted by
// start offset and capped at limit (≤0 means no cap).
func (t *Trace) ExportSpans(node string, limit int) []SpanData {
	if t == nil {
		return nil
	}
	t.mu.Lock()
	spans := append([]SpanData(nil), t.spans...)
	t.mu.Unlock()
	sort.SliceStable(spans, func(i, j int) bool { return spans[i].StartUS < spans[j].StartUS })
	if limit > 0 && len(spans) > limit-1 {
		spans = spans[:limit-1]
	}
	root := SpanData{
		Name:       "server",
		SpanID:     t.rootID,
		ParentID:   t.parent,
		StartUS:    0,
		DurationUS: time.Since(t.start).Microseconds(),
		Attrs:      map[string]string{"node": node, "endpoint": t.endpoint},
	}
	return append([]SpanData{root}, spans...)
}

// Finish seals the trace with the response status and returns the
// finished document. Spans are sorted by start offset so concurrent
// workers' spans read as a timeline.
func (t *Trace) Finish(status int) TraceData {
	d := time.Since(t.start)
	t.mu.Lock()
	spans := t.spans
	t.spans = nil
	attrs := t.attrs
	dropped := t.dropped
	t.mu.Unlock()
	sort.SliceStable(spans, func(i, j int) bool { return spans[i].StartUS < spans[j].StartUS })
	return TraceData{
		ID:           t.id,
		TraceID:      t.traceID,
		SpanID:       t.rootID,
		ParentID:     t.parent,
		Endpoint:     t.endpoint,
		Start:        t.start,
		DurationUS:   d.Microseconds(),
		Status:       status,
		Attrs:        attrs,
		Spans:        spans,
		SpansDropped: dropped,
	}
}

// traceKey carries the context's trace.
type traceKey struct{}

// WithTrace attaches t to the context; a nil t returns ctx unchanged.
func WithTrace(ctx context.Context, t *Trace) context.Context {
	if t == nil {
		return ctx
	}
	return context.WithValue(ctx, traceKey{}, t)
}

// TraceFrom returns the context's trace, or nil when the request is not
// traced.
func TraceFrom(ctx context.Context) *Trace {
	t, _ := ctx.Value(traceKey{}).(*Trace)
	return t
}

// Span is an in-flight pipeline-stage span. A nil *Span (from an
// untraced context) is valid and every method is a no-op, so
// instrumentation sites never branch on whether tracing is active.
type Span struct {
	trace   *Trace
	name    string
	id      string
	start   time.Time
	retries int
	attrs   map[string]string
}

// StartSpan opens a span named after a pipeline stage (parse, admit,
// breaker, cache_get, solve, encode, …) on the context's trace; it
// returns nil — a no-op span — when the context is untraced.
func StartSpan(ctx context.Context, name string) *Span {
	t := TraceFrom(ctx)
	if t == nil {
		return nil
	}
	return &Span{trace: t, name: name, id: t.nextSpanID(), start: time.Now()}
}

// ID returns the span's ID (16 hex chars), or "" on a nil span. The
// forward span's ID rides the X-Fepiad-Trace header so the remote
// server span parents under it.
func (s *Span) ID() string {
	if s == nil {
		return ""
	}
	return s.id
}

// StartOffsetUS returns the span's start offset on its trace's
// timeline, in microseconds — the stitch offset for spans a remote node
// recorded while this span (the forward) was in flight. 0 on a nil span.
func (s *Span) StartOffsetUS() int64 {
	if s == nil {
		return 0
	}
	return s.start.Sub(s.trace.start).Microseconds()
}

// Set records a span attribute and returns the span for chaining.
func (s *Span) Set(key, value string) *Span {
	if s == nil {
		return nil
	}
	if s.attrs == nil {
		s.attrs = make(map[string]string, 4)
	}
	s.attrs[key] = value
	return s
}

// AddRetries adds n to the span's retry-attempt count (per-feature solve
// spans carry the retries the policy spent on them).
func (s *Span) AddRetries(n int) {
	if s != nil {
		s.retries += n
	}
}

// End seals the span onto its trace; err, when non-nil, is recorded on
// the span.
func (s *Span) End(err error) {
	if s == nil {
		return
	}
	sd := SpanData{
		Name:       s.name,
		SpanID:     s.id,
		ParentID:   s.trace.rootID,
		StartUS:    s.start.Sub(s.trace.start).Microseconds(),
		DurationUS: time.Since(s.start).Microseconds(),
		Retries:    s.retries,
		Attrs:      s.attrs,
	}
	if err != nil {
		sd.Error = err.Error()
	}
	s.trace.add(sd)
}

// TraceRing retains finished traces two ways: a ring of the most recent
// N, and the slowest N seen since the process started — the requests a
// post-mortem actually wants. Both lists are bounded, so memory is fixed
// no matter the traffic. Safe for concurrent use; Add takes one short
// lock per finished request, never on the request hot path.
//
// Retention-side sampling (SetSample) thins the recent ring under heavy
// traffic: 1-in-N traces are kept, except traces marked Slow, which
// bypass sampling entirely (slow-request capture). The slowest-ever
// list ignores sampling but honors TraceData.SkipSlowest, so shed 503s
// with near-zero durations never evict genuine outliers.
type TraceRing struct {
	mu      sync.Mutex
	recent  []TraceData // ring buffer
	next    int         // write position
	filled  bool
	slowest []TraceData // sorted by DurationUS descending, ≤ slowCap
	slowCap int
	sample  int
	total   uint64
}

// NewTraceRing builds a ring retaining the given number of recent traces
// and, separately, the same number of slowest traces (capacity ≤ 0
// selects 64).
func NewTraceRing(capacity int) *TraceRing {
	if capacity <= 0 {
		capacity = 64
	}
	return &TraceRing{recent: make([]TraceData, capacity), slowCap: capacity, sample: 1}
}

// SetSample keeps 1-in-n traces in the recent ring (n ≤ 1 keeps all).
// Slow-marked traces are always kept. Call before serving traffic.
func (r *TraceRing) SetSample(n int) {
	if n < 1 {
		n = 1
	}
	r.mu.Lock()
	r.sample = n
	r.mu.Unlock()
}

// Add records one finished trace.
func (r *TraceRing) Add(td TraceData) {
	r.mu.Lock()
	defer r.mu.Unlock()
	r.total++
	if r.sample <= 1 || td.Slow || (r.total-1)%uint64(r.sample) == 0 {
		r.recent[r.next] = td
		r.next++
		if r.next == len(r.recent) {
			r.next, r.filled = 0, true
		}
	}
	if td.SkipSlowest {
		return
	}
	// Insertion-sort into the slowest list (small, fixed capacity).
	i := sort.Search(len(r.slowest), func(i int) bool { return r.slowest[i].DurationUS < td.DurationUS })
	if i < r.slowCap {
		if len(r.slowest) < r.slowCap {
			r.slowest = append(r.slowest, TraceData{})
		}
		copy(r.slowest[i+1:], r.slowest[i:])
		r.slowest[i] = td
	}
}

// RingSnapshot is the /debug/traces document.
type RingSnapshot struct {
	// Capacity bounds both retention lists; Total counts every trace
	// ever added (sampled-out traces still count).
	Capacity int    `json:"capacity"`
	Total    uint64 `json:"total"`
	// Recent holds the last traces in most-recent-first order; Slowest
	// the slowest-ever, slowest first.
	Recent  []TraceData `json:"recent"`
	Slowest []TraceData `json:"slowest"`
}

// Snapshot copies both retention lists.
func (r *TraceRing) Snapshot() RingSnapshot {
	r.mu.Lock()
	defer r.mu.Unlock()
	n := r.next
	if r.filled {
		n = len(r.recent)
	}
	recent := make([]TraceData, 0, n)
	for i := 0; i < n; i++ {
		// Walk backwards from the last write so the list is newest-first.
		j := r.next - 1 - i
		if j < 0 {
			j += len(r.recent)
		}
		recent = append(recent, r.recent[j])
	}
	return RingSnapshot{
		Capacity: len(r.recent),
		Total:    r.total,
		Recent:   recent,
		Slowest:  append([]TraceData(nil), r.slowest...),
	}
}
