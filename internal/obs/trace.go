package obs

import (
	"context"
	"crypto/rand"
	"encoding/hex"
	"sort"
	"sync"
	"sync/atomic"
	"time"
)

// maxSpansPerTrace bounds one trace's span list so a pathological batch
// (thousands of features) cannot balloon the ring; overflow is counted
// in TraceData.SpansDropped.
const maxSpansPerTrace = 512

// NewID returns a 16-hex-char request ID. It never fails: if the system
// entropy source is unavailable it falls back to a process-local counter,
// which is still unique within the process.
func NewID() string {
	var b [8]byte
	if _, err := rand.Read(b[:]); err != nil {
		n := fallbackID.Add(1)
		for i := range b {
			b[i] = byte(n >> (8 * i))
		}
	}
	return hex.EncodeToString(b[:])
}

var fallbackID atomic.Uint64

// SpanData is one finished pipeline-stage span as served on
// /debug/traces. Offsets are relative to the trace start so a span list
// reads as a timeline.
type SpanData struct {
	Name       string            `json:"name"`
	StartUS    int64             `json:"start_us"`
	DurationUS int64             `json:"duration_us"`
	Error      string            `json:"error,omitempty"`
	Retries    int               `json:"retries,omitempty"`
	Attrs      map[string]string `json:"attrs,omitempty"`
}

// TraceData is one finished request trace: the JSON document of
// /debug/traces.
type TraceData struct {
	ID           string            `json:"id"`
	Endpoint     string            `json:"endpoint"`
	Start        time.Time         `json:"start"`
	DurationUS   int64             `json:"duration_us"`
	Status       int               `json:"status"`
	Attrs        map[string]string `json:"attrs,omitempty"`
	Spans        []SpanData        `json:"spans"`
	SpansDropped int               `json:"spans_dropped,omitempty"`
}

// Trace accumulates the spans of one in-flight request. Create one with
// NewTrace, attach it to the request context with WithTrace, and seal it
// with Finish. All methods are safe for concurrent use — batch workers
// append spans to the same trace from many goroutines.
type Trace struct {
	id       string
	endpoint string
	start    time.Time

	mu      sync.Mutex
	spans   []SpanData
	dropped int
	attrs   map[string]string
}

// NewTrace starts a trace for one request. id is the request ID
// (accepted from or emitted as X-Request-Id); endpoint names the route.
func NewTrace(id, endpoint string) *Trace {
	return &Trace{id: id, endpoint: endpoint, start: time.Now()}
}

// ID returns the trace's request ID.
func (t *Trace) ID() string { return t.id }

// SetAttr records a trace-level attribute (outcome, degraded, breaker
// state, …); the access logger and /debug/traces both surface it.
func (t *Trace) SetAttr(key, value string) {
	if t == nil {
		return
	}
	t.mu.Lock()
	if t.attrs == nil {
		t.attrs = make(map[string]string, 4)
	}
	t.attrs[key] = value
	t.mu.Unlock()
}

// Attrs returns a sorted copy of the trace-level attributes as key/value
// pairs, for structured access logging.
func (t *Trace) Attrs() []Label {
	if t == nil {
		return nil
	}
	t.mu.Lock()
	out := make([]Label, 0, len(t.attrs))
	for k, v := range t.attrs {
		out = append(out, Label{Name: k, Value: v})
	}
	t.mu.Unlock()
	sort.Slice(out, func(i, j int) bool { return out[i].Name < out[j].Name })
	return out
}

// add appends one finished span.
func (t *Trace) add(sd SpanData) {
	t.mu.Lock()
	if len(t.spans) >= maxSpansPerTrace {
		t.dropped++
	} else {
		t.spans = append(t.spans, sd)
	}
	t.mu.Unlock()
}

// Finish seals the trace with the response status and returns the
// finished document. Spans are sorted by start offset so concurrent
// workers' spans read as a timeline.
func (t *Trace) Finish(status int) TraceData {
	d := time.Since(t.start)
	t.mu.Lock()
	spans := t.spans
	t.spans = nil
	attrs := t.attrs
	dropped := t.dropped
	t.mu.Unlock()
	sort.SliceStable(spans, func(i, j int) bool { return spans[i].StartUS < spans[j].StartUS })
	return TraceData{
		ID:           t.id,
		Endpoint:     t.endpoint,
		Start:        t.start,
		DurationUS:   d.Microseconds(),
		Status:       status,
		Attrs:        attrs,
		Spans:        spans,
		SpansDropped: dropped,
	}
}

// traceKey carries the context's trace.
type traceKey struct{}

// WithTrace attaches t to the context; a nil t returns ctx unchanged.
func WithTrace(ctx context.Context, t *Trace) context.Context {
	if t == nil {
		return ctx
	}
	return context.WithValue(ctx, traceKey{}, t)
}

// TraceFrom returns the context's trace, or nil when the request is not
// traced.
func TraceFrom(ctx context.Context) *Trace {
	t, _ := ctx.Value(traceKey{}).(*Trace)
	return t
}

// Span is an in-flight pipeline-stage span. A nil *Span (from an
// untraced context) is valid and every method is a no-op, so
// instrumentation sites never branch on whether tracing is active.
type Span struct {
	trace   *Trace
	name    string
	start   time.Time
	retries int
	attrs   map[string]string
}

// StartSpan opens a span named after a pipeline stage (parse, admit,
// breaker, cache_get, solve, encode, …) on the context's trace; it
// returns nil — a no-op span — when the context is untraced.
func StartSpan(ctx context.Context, name string) *Span {
	t := TraceFrom(ctx)
	if t == nil {
		return nil
	}
	return &Span{trace: t, name: name, start: time.Now()}
}

// Set records a span attribute and returns the span for chaining.
func (s *Span) Set(key, value string) *Span {
	if s == nil {
		return nil
	}
	if s.attrs == nil {
		s.attrs = make(map[string]string, 4)
	}
	s.attrs[key] = value
	return s
}

// AddRetries adds n to the span's retry-attempt count (per-feature solve
// spans carry the retries the policy spent on them).
func (s *Span) AddRetries(n int) {
	if s != nil {
		s.retries += n
	}
}

// End seals the span onto its trace; err, when non-nil, is recorded on
// the span.
func (s *Span) End(err error) {
	if s == nil {
		return
	}
	sd := SpanData{
		Name:       s.name,
		StartUS:    s.start.Sub(s.trace.start).Microseconds(),
		DurationUS: time.Since(s.start).Microseconds(),
		Retries:    s.retries,
		Attrs:      s.attrs,
	}
	if err != nil {
		sd.Error = err.Error()
	}
	s.trace.add(sd)
}

// TraceRing retains finished traces two ways: a ring of the most recent
// N, and the slowest N seen since the process started — the requests a
// post-mortem actually wants. Both lists are bounded, so memory is fixed
// no matter the traffic. Safe for concurrent use; Add takes one short
// lock per finished request, never on the request hot path.
type TraceRing struct {
	mu      sync.Mutex
	recent  []TraceData // ring buffer
	next    int         // write position
	filled  bool
	slowest []TraceData // sorted by DurationUS descending, ≤ slowCap
	slowCap int
	total   uint64
}

// NewTraceRing builds a ring retaining the given number of recent traces
// and, separately, the same number of slowest traces (capacity ≤ 0
// selects 64).
func NewTraceRing(capacity int) *TraceRing {
	if capacity <= 0 {
		capacity = 64
	}
	return &TraceRing{recent: make([]TraceData, capacity), slowCap: capacity}
}

// Add records one finished trace.
func (r *TraceRing) Add(td TraceData) {
	r.mu.Lock()
	defer r.mu.Unlock()
	r.total++
	r.recent[r.next] = td
	r.next++
	if r.next == len(r.recent) {
		r.next, r.filled = 0, true
	}
	// Insertion-sort into the slowest list (small, fixed capacity).
	i := sort.Search(len(r.slowest), func(i int) bool { return r.slowest[i].DurationUS < td.DurationUS })
	if i < r.slowCap {
		if len(r.slowest) < r.slowCap {
			r.slowest = append(r.slowest, TraceData{})
		}
		copy(r.slowest[i+1:], r.slowest[i:])
		r.slowest[i] = td
	}
}

// RingSnapshot is the /debug/traces document.
type RingSnapshot struct {
	// Capacity bounds both retention lists; Total counts every trace
	// ever added.
	Capacity int    `json:"capacity"`
	Total    uint64 `json:"total"`
	// Recent holds the last traces in most-recent-first order; Slowest
	// the slowest-ever, slowest first.
	Recent  []TraceData `json:"recent"`
	Slowest []TraceData `json:"slowest"`
}

// Snapshot copies both retention lists.
func (r *TraceRing) Snapshot() RingSnapshot {
	r.mu.Lock()
	defer r.mu.Unlock()
	n := r.next
	if r.filled {
		n = len(r.recent)
	}
	recent := make([]TraceData, 0, n)
	for i := 0; i < n; i++ {
		// Walk backwards from the last write so the list is newest-first.
		j := r.next - 1 - i
		if j < 0 {
			j += len(r.recent)
		}
		recent = append(recent, r.recent[j])
	}
	return RingSnapshot{
		Capacity: len(r.recent),
		Total:    r.total,
		Recent:   recent,
		Slowest:  append([]TraceData(nil), r.slowest...),
	}
}
