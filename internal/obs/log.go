package obs

import (
	"context"
	"fmt"
	"io"
	"log/slog"
	"strings"
)

// NewLogger builds a slog.Logger writing to w. format selects the
// handler: "json" (the production default — one object per line, ready
// for log shippers) or "text" (human-readable key=value). Unknown
// formats select json.
func NewLogger(w io.Writer, format string, level slog.Level) *slog.Logger {
	opts := &slog.HandlerOptions{Level: level}
	if strings.EqualFold(format, "text") {
		return slog.New(slog.NewTextHandler(w, opts))
	}
	return slog.New(slog.NewJSONHandler(w, opts))
}

// ParseLevel maps the -log-level flag values onto slog levels.
func ParseLevel(s string) (slog.Level, error) {
	switch strings.ToLower(strings.TrimSpace(s)) {
	case "debug":
		return slog.LevelDebug, nil
	case "", "info":
		return slog.LevelInfo, nil
	case "warn", "warning":
		return slog.LevelWarn, nil
	case "error":
		return slog.LevelError, nil
	}
	return 0, fmt.Errorf("obs: unknown log level %q (want debug, info, warn, or error)", s)
}

// loggerKey carries the context's request-scoped logger.
type loggerKey struct{}

// WithLogger attaches a request-scoped logger (carrying request_id,
// endpoint, …) to the context.
func WithLogger(ctx context.Context, l *slog.Logger) context.Context {
	if l == nil {
		return ctx
	}
	return context.WithValue(ctx, loggerKey{}, l)
}

// Logger returns the context's request-scoped logger, or slog.Default()
// when none is attached — call sites never receive nil.
func Logger(ctx context.Context) *slog.Logger {
	if l, ok := ctx.Value(loggerKey{}).(*slog.Logger); ok {
		return l
	}
	return slog.Default()
}
