package obs

import (
	"sync"
	"time"
)

// SLO tracking: per-endpoint availability and latency objectives with
// multi-window burn-rate gauges, the alerting shape Google's SRE
// workbook recommends. Burn rate is the ratio between the observed
// bad-event rate and the rate the error budget allows: 1.0 burns the
// budget exactly over the window, 14.4 on the 1h window pages. The
// windows are bucketed rings (no per-request allocation, one short
// mutex per request), and the gauges are GaugeFuncs — evaluated only
// when a scraper asks.

// SLOConfig carries the objectives. Zero values select the defaults:
// p99 latency 500ms, availability 99.9%.
type SLOConfig struct {
	// LatencyP99MS is the latency objective in milliseconds: at most 1%
	// of successful requests may exceed it (a p99 target).
	LatencyP99MS float64
	// Availability is the availability objective in (0, 1), e.g. 0.999;
	// non-5xx responses count as available.
	Availability float64
}

// withDefaults fills zero fields and clamps the availability objective
// away from 1.0 so the error budget never divides by zero.
func (c SLOConfig) withDefaults() SLOConfig {
	if c.LatencyP99MS <= 0 {
		c.LatencyP99MS = 500
	}
	if c.Availability <= 0 {
		c.Availability = 0.999
	}
	if c.Availability >= 1 {
		c.Availability = 0.9999
	}
	return c
}

// latencyBudget is the allowed bad fraction for the latency objective:
// a p99 target tolerates 1% of requests over the threshold.
const latencyBudget = 0.01

// sloWindowSpecs are the two burn-rate windows: a fast 5-minute window
// that reacts to incidents and a slow 1-hour window that filters noise.
var sloWindowSpecs = []struct {
	name      string
	bucketSec int64
	buckets   int
}{
	{"5m", 5, 60},
	{"1h", 60, 60},
}

// sloBucket is one time slice of a window.
type sloBucket struct {
	epoch     int64 // bucket epoch (unix seconds / bucketSec); stale slots are reused
	good, bad uint64
}

// sloWindow is a ring of time-bucketed good/bad counts covering
// bucketSec×len(buckets) seconds.
type sloWindow struct {
	bucketSec int64
	buckets   []sloBucket
}

func newSloWindow(bucketSec int64, n int) sloWindow {
	return sloWindow{bucketSec: bucketSec, buckets: make([]sloBucket, n)}
}

// record counts one event in the bucket covering nowSec.
func (w *sloWindow) record(nowSec int64, good bool) {
	epoch := nowSec / w.bucketSec
	b := &w.buckets[epoch%int64(len(w.buckets))]
	if b.epoch != epoch {
		*b = sloBucket{epoch: epoch}
	}
	if good {
		b.good++
	} else {
		b.bad++
	}
}

// totals sums the buckets still inside the window at nowSec.
func (w *sloWindow) totals(nowSec int64) (good, bad uint64) {
	epoch := nowSec / w.bucketSec
	min := epoch - int64(len(w.buckets)) + 1
	for _, b := range w.buckets {
		if b.epoch >= min && b.epoch <= epoch {
			good += b.good
			bad += b.bad
		}
	}
	return good, bad
}

// sloTracker is one endpoint's availability and latency windows, under
// one mutex so Record costs a single lock on the request path.
type sloTracker struct {
	mu    sync.Mutex
	avail []sloWindow // indexed like sloWindowSpecs
	lat   []sloWindow
}

func newSloTracker() *sloTracker {
	t := &sloTracker{}
	for _, spec := range sloWindowSpecs {
		t.avail = append(t.avail, newSloWindow(spec.bucketSec, spec.buckets))
		t.lat = append(t.lat, newSloWindow(spec.bucketSec, spec.buckets))
	}
	return t
}

// SLO tracks availability and latency objectives per endpoint and
// exposes burn-rate, error-budget, and objective gauges through a
// Registry. Create one with NewSLO; call Record once per finished
// request.
type SLO struct {
	cfg      SLOConfig
	now      func() time.Time
	trackers map[string]*sloTracker
}

// NewSLO builds the tracker set for the given endpoints and registers
// its gauges: fepiad_slo_burn_rate{endpoint,slo,window} (windows 5m and
// 1h), fepiad_slo_error_budget_remaining{endpoint,slo} (1h window), and
// fepiad_slo_objective{endpoint,slo}. now is stubbable for tests; nil
// selects time.Now.
func NewSLO(reg *Registry, endpoints []string, cfg SLOConfig, now func() time.Time) *SLO {
	if now == nil {
		now = time.Now
	}
	s := &SLO{cfg: cfg.withDefaults(), now: now, trackers: make(map[string]*sloTracker, len(endpoints))}
	for _, ep := range endpoints {
		tr := newSloTracker()
		s.trackers[ep] = tr
		for wi, spec := range sloWindowSpecs {
			wi := wi
			reg.GaugeFunc("fepiad_slo_burn_rate",
				"Error-budget burn rate per objective and window (1.0 = burning exactly the budget).",
				func() float64 { return s.burn(tr, wi, false) },
				L("endpoint", ep), L("slo", "availability"), L("window", spec.name))
			reg.GaugeFunc("fepiad_slo_burn_rate",
				"Error-budget burn rate per objective and window (1.0 = burning exactly the budget).",
				func() float64 { return s.burn(tr, wi, true) },
				L("endpoint", ep), L("slo", "latency"), L("window", spec.name))
		}
		longIdx := len(sloWindowSpecs) - 1
		reg.GaugeFunc("fepiad_slo_error_budget_remaining",
			"Fraction of the error budget left over the 1h window (1 = untouched, ≤0 = exhausted).",
			func() float64 { return 1 - s.burn(tr, longIdx, false) },
			L("endpoint", ep), L("slo", "availability"))
		reg.GaugeFunc("fepiad_slo_error_budget_remaining",
			"Fraction of the error budget left over the 1h window (1 = untouched, ≤0 = exhausted).",
			func() float64 { return 1 - s.burn(tr, longIdx, true) },
			L("endpoint", ep), L("slo", "latency"))
		reg.GaugeFunc("fepiad_slo_objective",
			"Configured objective: availability as a fraction, latency as the p99 threshold in ms.",
			func() float64 { return s.cfg.Availability },
			L("endpoint", ep), L("slo", "availability"))
		reg.GaugeFunc("fepiad_slo_objective",
			"Configured objective: availability as a fraction, latency as the p99 threshold in ms.",
			func() float64 { return s.cfg.LatencyP99MS },
			L("endpoint", ep), L("slo", "latency"))
	}
	return s
}

// Config returns the effective (defaulted) objectives.
func (s *SLO) Config() SLOConfig { return s.cfg }

// Record accounts one finished request: availability counts every
// response (good = non-5xx), latency counts only successful responses
// (good = within the p99 threshold) so an outage doesn't double-bill
// the latency budget. Unknown endpoints are ignored.
func (s *SLO) Record(endpoint string, status int, durMS float64) {
	tr := s.trackers[endpoint]
	if tr == nil {
		return
	}
	nowSec := s.now().Unix()
	availGood := status < 500
	tr.mu.Lock()
	for i := range tr.avail {
		tr.avail[i].record(nowSec, availGood)
	}
	if availGood {
		latGood := durMS <= s.cfg.LatencyP99MS
		for i := range tr.lat {
			tr.lat[i].record(nowSec, latGood)
		}
	}
	tr.mu.Unlock()
}

// burn computes the burn rate of one tracker window at scrape time.
func (s *SLO) burn(tr *sloTracker, windowIdx int, latency bool) float64 {
	nowSec := s.now().Unix()
	tr.mu.Lock()
	var good, bad uint64
	if latency {
		good, bad = tr.lat[windowIdx].totals(nowSec)
	} else {
		good, bad = tr.avail[windowIdx].totals(nowSec)
	}
	tr.mu.Unlock()
	total := good + bad
	if total == 0 {
		return 0
	}
	budget := 1 - s.cfg.Availability
	if latency {
		budget = latencyBudget
	}
	return (float64(bad) / float64(total)) / budget
}
