package obs

import (
	"context"
	"errors"
	"fmt"
	"sync"
	"testing"
)

// TestSpanNoopWithoutTrace: instrumentation on an untraced context must
// be safe and free of side effects.
func TestSpanNoopWithoutTrace(t *testing.T) {
	sp := StartSpan(context.Background(), "solve")
	if sp != nil {
		t.Fatal("StartSpan on an untraced context returned a live span")
	}
	sp.Set("k", "v") // nil-safe chain
	sp.AddRetries(2)
	sp.End(errors.New("x"))
	if TraceFrom(context.Background()) != nil {
		t.Fatal("TraceFrom on a bare context is not nil")
	}
}

// TestTraceSpansTimeline: spans land on the trace with attributes,
// retries, and errors, sorted by start offset at Finish.
func TestTraceSpansTimeline(t *testing.T) {
	tr := NewTrace("req-1", "analyze")
	ctx := WithTrace(context.Background(), tr)
	if got := TraceFrom(ctx); got != tr {
		t.Fatal("TraceFrom did not return the attached trace")
	}

	parse := StartSpan(ctx, "parse")
	parse.End(nil)
	solve := StartSpan(ctx, "solve").Set("feature", "finish(m0)")
	solve.AddRetries(2)
	solve.End(errors.New("injected"))
	tr.SetAttr("outcome", "error")

	td := tr.Finish(500)
	if td.ID != "req-1" || td.Endpoint != "analyze" || td.Status != 500 {
		t.Fatalf("trace header wrong: %+v", td)
	}
	if len(td.Spans) != 2 {
		t.Fatalf("%d spans, want 2", len(td.Spans))
	}
	if td.Spans[0].Name != "parse" || td.Spans[1].Name != "solve" {
		t.Fatalf("span order wrong: %+v", td.Spans)
	}
	s := td.Spans[1]
	if s.Retries != 2 || s.Error != "injected" || s.Attrs["feature"] != "finish(m0)" {
		t.Fatalf("solve span lost annotations: %+v", s)
	}
	if td.Attrs["outcome"] != "error" {
		t.Fatalf("trace attrs lost: %+v", td.Attrs)
	}
}

// TestTraceConcurrentSpans: many workers annotate one trace while
// attrs are read — the batch fan-out pattern — under -race.
func TestTraceConcurrentSpans(t *testing.T) {
	tr := NewTrace("req-2", "batch")
	ctx := WithTrace(context.Background(), tr)
	var wg sync.WaitGroup
	for w := 0; w < 8; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; i < 50; i++ {
				sp := StartSpan(ctx, "solve").Set("worker", fmt.Sprint(w))
				sp.End(nil)
				tr.SetAttr("last_worker", fmt.Sprint(w))
				_ = tr.Attrs()
			}
		}(w)
	}
	wg.Wait()
	td := tr.Finish(200)
	if len(td.Spans) != 8*50 {
		t.Fatalf("%d spans, want %d", len(td.Spans), 8*50)
	}
}

// TestTraceSpanCap: overflow spans are dropped and counted, not
// accumulated without bound.
func TestTraceSpanCap(t *testing.T) {
	tr := NewTrace("req-3", "batch")
	ctx := WithTrace(context.Background(), tr)
	for i := 0; i < maxSpansPerTrace+10; i++ {
		StartSpan(ctx, "solve").End(nil)
	}
	td := tr.Finish(200)
	if len(td.Spans) != maxSpansPerTrace || td.SpansDropped != 10 {
		t.Fatalf("spans %d dropped %d, want %d / 10", len(td.Spans), td.SpansDropped, maxSpansPerTrace)
	}
}

// TestTraceRingRetention: the recent list is newest-first and bounded;
// the slowest list keeps the slowest-ever in descending order.
func TestTraceRingRetention(t *testing.T) {
	r := NewTraceRing(4)
	for i := 1; i <= 10; i++ {
		r.Add(TraceData{ID: fmt.Sprint(i), DurationUS: int64(i % 7)})
	}
	s := r.Snapshot()
	if s.Capacity != 4 || s.Total != 10 {
		t.Fatalf("capacity %d total %d, want 4 / 10", s.Capacity, s.Total)
	}
	if len(s.Recent) != 4 || s.Recent[0].ID != "10" || s.Recent[3].ID != "7" {
		t.Fatalf("recent list wrong: %+v", s.Recent)
	}
	if len(s.Slowest) != 4 {
		t.Fatalf("slowest list has %d entries, want 4", len(s.Slowest))
	}
	for i := 1; i < len(s.Slowest); i++ {
		if s.Slowest[i].DurationUS > s.Slowest[i-1].DurationUS {
			t.Fatalf("slowest list not descending: %+v", s.Slowest)
		}
	}
	// 6 and 5 (from i=6,5 and i=13? no: durations are i%7 → max 6) lead.
	if s.Slowest[0].DurationUS != 6 {
		t.Fatalf("slowest[0] duration %d, want 6", s.Slowest[0].DurationUS)
	}
}

// TestTraceRingConcurrent: parallel writers with snapshots mid-write,
// under -race.
func TestTraceRingConcurrent(t *testing.T) {
	r := NewTraceRing(32)
	var wg sync.WaitGroup
	for w := 0; w < 8; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; i < 200; i++ {
				r.Add(TraceData{ID: fmt.Sprintf("%d-%d", w, i), DurationUS: int64(i)})
				if i%20 == 0 {
					_ = r.Snapshot()
				}
			}
		}(w)
	}
	wg.Wait()
	s := r.Snapshot()
	if s.Total != 8*200 {
		t.Fatalf("total %d, want %d", s.Total, 8*200)
	}
	if len(s.Recent) != 32 || len(s.Slowest) != 32 {
		t.Fatalf("retention sizes %d/%d, want 32/32", len(s.Recent), len(s.Slowest))
	}
}

// TestNewID: IDs are 16 hex chars and unique enough in a quick sample.
func TestNewID(t *testing.T) {
	seen := make(map[string]bool)
	for i := 0; i < 100; i++ {
		id := NewID()
		if len(id) != 16 {
			t.Fatalf("id %q has length %d, want 16", id, len(id))
		}
		if seen[id] {
			t.Fatalf("duplicate id %q", id)
		}
		seen[id] = true
	}
}

// TestParseLevel covers the -log-level surface.
func TestParseLevel(t *testing.T) {
	for s, want := range map[string]string{"debug": "DEBUG", "info": "INFO", "warn": "WARN", "error": "ERROR", "": "INFO"} {
		lv, err := ParseLevel(s)
		if err != nil {
			t.Fatalf("ParseLevel(%q): %v", s, err)
		}
		if lv.String() != want {
			t.Errorf("ParseLevel(%q) = %v, want %s", s, lv, want)
		}
	}
	if _, err := ParseLevel("loud"); err == nil {
		t.Error("ParseLevel accepted an unknown level")
	}
}

// TestTraceSpanIDs: every trace carries a 16-hex trace ID and root span
// ID, every span gets a unique ID parented at the root, and the
// finished document exposes all three.
func TestTraceSpanIDs(t *testing.T) {
	tr := NewTrace("req-ids", "analyze")
	if len(tr.TraceID()) != 16 || len(tr.RootSpanID()) != 16 {
		t.Fatalf("trace/root IDs not 16 hex chars: %q / %q", tr.TraceID(), tr.RootSpanID())
	}
	if tr.Remote() {
		t.Fatal("fresh trace claims a remote parent")
	}
	ctx := WithTrace(context.Background(), tr)
	a := StartSpan(ctx, "parse")
	b := StartSpan(ctx, "solve")
	if a.ID() == "" || b.ID() == "" || a.ID() == b.ID() {
		t.Fatalf("span IDs not unique: %q vs %q", a.ID(), b.ID())
	}
	a.End(nil)
	b.End(nil)
	td := tr.Finish(200)
	if td.TraceID != tr.TraceID() || td.SpanID != tr.RootSpanID() || td.ParentID != "" {
		t.Fatalf("trace document IDs wrong: %+v", td)
	}
	for _, sd := range td.Spans {
		if sd.ParentID != tr.RootSpanID() {
			t.Fatalf("span %q parented at %q, want root %q", sd.Name, sd.ParentID, tr.RootSpanID())
		}
		if len(sd.SpanID) != 16 {
			t.Fatalf("span %q has malformed ID %q", sd.Name, sd.SpanID)
		}
	}
}

// TestParseTraceHeader: the strict wire grammar — 16 hex, dash, 16 hex —
// and every malformed shape rejected without error.
func TestParseTraceHeader(t *testing.T) {
	tid, pid, ok := ParseTraceHeader("0123456789abcdef-fedcba9876543210")
	if !ok || tid != "0123456789abcdef" || pid != "fedcba9876543210" {
		t.Fatalf("valid header rejected: %q %q %v", tid, pid, ok)
	}
	if FormatTraceHeader(tid, pid) != "0123456789abcdef-fedcba9876543210" {
		t.Fatal("FormatTraceHeader does not round-trip ParseTraceHeader")
	}
	for _, bad := range []string{
		"",
		"0123456789abcdef",                   // no parent
		"0123456789abcdef-fedcba987654321",   // short parent
		"0123456789abcdef-fedcba98765432100", // long parent
		"0123456789abcdef_fedcba9876543210",  // wrong separator
		"0123456789ABCDEF-fedcba9876543210",  // uppercase
		"0123456789abcdeg-fedcba9876543210",  // non-hex
		"0123456789abcdef-fedcba987654321g",  // non-hex parent
		"x0123456789abcdef-fedcba9876543210", // leading junk
	} {
		if _, _, ok := ParseTraceHeader(bad); ok {
			t.Fatalf("malformed header %q accepted", bad)
		}
	}
}

// TestTraceExportStitch: the cross-node handshake — the remote node
// adopts the ingress trace ID, exports its spans rooted in a synthetic
// server span parented under the forward span, and the ingress stitches
// them onto its own timeline.
func TestTraceExportStitch(t *testing.T) {
	ingress := NewTrace("req-x", "analyze")
	ictx := WithTrace(context.Background(), ingress)
	fwd := StartSpan(ictx, "forward").Set("peer", "b")

	// The wire: trace ID + forward span ID.
	tid, pid, ok := ParseTraceHeader(FormatTraceHeader(ingress.TraceID(), fwd.ID()))
	if !ok {
		t.Fatal("wire header did not parse")
	}

	remote := NewTraceRemote("req-x", "analyze", tid, pid)
	if remote.TraceID() != ingress.TraceID() {
		t.Fatalf("remote trace ID %q, want adopted %q", remote.TraceID(), ingress.TraceID())
	}
	if !remote.Remote() {
		t.Fatal("adopted trace does not report Remote")
	}
	rctx := WithTrace(context.Background(), remote)
	StartSpan(rctx, "parse").End(nil)
	StartSpan(rctx, "solve").End(nil)

	exported := remote.ExportSpans("b", 64)
	if len(exported) != 3 || exported[0].Name != "server" {
		t.Fatalf("export shape wrong: %+v", exported)
	}
	if exported[0].SpanID != remote.RootSpanID() || exported[0].ParentID != fwd.ID() {
		t.Fatalf("server span not parented under the forward span: %+v", exported[0])
	}
	if exported[0].Attrs["node"] != "b" {
		t.Fatalf("server span missing node attr: %+v", exported[0])
	}

	ingress.Stitch(exported, 250)
	fwd.End(nil)
	td := ingress.Finish(200)
	if len(td.Spans) != 4 {
		t.Fatalf("%d spans after stitch, want 4 (forward + server + parse + solve)", len(td.Spans))
	}
	names := map[string]SpanData{}
	for _, sd := range td.Spans {
		names[sd.Name] = sd
	}
	if names["server"].ParentID != names["forward"].SpanID {
		t.Fatalf("stitched server span parent %q, want forward span %q", names["server"].ParentID, names["forward"].SpanID)
	}
	if names["server"].StartUS != 250 {
		t.Fatalf("stitched span not offset: start %d, want 250", names["server"].StartUS)
	}
	if names["parse"].ParentID != names["server"].SpanID {
		t.Fatalf("remote parse span parent %q, want remote server span %q", names["parse"].ParentID, names["server"].SpanID)
	}
}

// TestTraceExportCap: export respects the limit, always keeping the
// synthetic server span as the first element.
func TestTraceExportCap(t *testing.T) {
	tr := NewTrace("req-cap", "batch")
	ctx := WithTrace(context.Background(), tr)
	for i := 0; i < 20; i++ {
		StartSpan(ctx, "solve").End(nil)
	}
	exported := tr.ExportSpans("b", 8)
	if len(exported) != 8 || exported[0].Name != "server" {
		t.Fatalf("capped export has %d spans (first %q), want 8 with server first", len(exported), exported[0].Name)
	}
}

// TestTraceRingShedExclusion: a shed 503 with a near-zero duration must
// not occupy a slowest-ever slot (retention bias), while still counting
// and appearing in the recent ring.
func TestTraceRingShedExclusion(t *testing.T) {
	r := NewTraceRing(2)
	r.Add(TraceData{ID: "slow-1", DurationUS: 9000})
	r.Add(TraceData{ID: "slow-2", DurationUS: 8000})
	for i := 0; i < 10; i++ {
		r.Add(TraceData{ID: fmt.Sprintf("shed-%d", i), DurationUS: 3, SkipSlowest: true})
	}
	s := r.Snapshot()
	if s.Total != 12 {
		t.Fatalf("total %d, want 12", s.Total)
	}
	if len(s.Slowest) != 2 || s.Slowest[0].ID != "slow-1" || s.Slowest[1].ID != "slow-2" {
		t.Fatalf("shed traces evicted the slowest list: %+v", s.Slowest)
	}
	if s.Recent[0].ID != "shed-9" {
		t.Fatalf("shed traces should still reach the recent ring: %+v", s.Recent)
	}
}

// TestTraceRingSampling: 1-in-N retention for the recent ring; slow
// traces bypass sampling; the slowest list ignores sampling entirely.
func TestTraceRingSampling(t *testing.T) {
	r := NewTraceRing(8)
	r.SetSample(4)
	for i := 1; i <= 16; i++ {
		r.Add(TraceData{ID: fmt.Sprint(i), DurationUS: int64(i)})
	}
	s := r.Snapshot()
	if s.Total != 16 {
		t.Fatalf("total %d, want 16 (sampled-out traces still count)", s.Total)
	}
	if len(s.Recent) != 4 {
		t.Fatalf("recent kept %d traces, want 4 (1-in-4 of 16)", len(s.Recent))
	}
	if s.Recent[0].ID != "13" || s.Recent[3].ID != "1" {
		t.Fatalf("sampled recent list wrong: %+v", s.Recent)
	}
	if len(s.Slowest) != 8 || s.Slowest[0].ID != "16" {
		t.Fatalf("slowest list must ignore sampling: %+v", s.Slowest)
	}
	r.Add(TraceData{ID: "slow", DurationUS: 99, Slow: true})
	if s := r.Snapshot(); s.Recent[0].ID != "slow" {
		t.Fatalf("slow trace did not bypass sampling: %+v", s.Recent[0])
	}
}
