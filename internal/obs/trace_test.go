package obs

import (
	"context"
	"errors"
	"fmt"
	"sync"
	"testing"
)

// TestSpanNoopWithoutTrace: instrumentation on an untraced context must
// be safe and free of side effects.
func TestSpanNoopWithoutTrace(t *testing.T) {
	sp := StartSpan(context.Background(), "solve")
	if sp != nil {
		t.Fatal("StartSpan on an untraced context returned a live span")
	}
	sp.Set("k", "v") // nil-safe chain
	sp.AddRetries(2)
	sp.End(errors.New("x"))
	if TraceFrom(context.Background()) != nil {
		t.Fatal("TraceFrom on a bare context is not nil")
	}
}

// TestTraceSpansTimeline: spans land on the trace with attributes,
// retries, and errors, sorted by start offset at Finish.
func TestTraceSpansTimeline(t *testing.T) {
	tr := NewTrace("req-1", "analyze")
	ctx := WithTrace(context.Background(), tr)
	if got := TraceFrom(ctx); got != tr {
		t.Fatal("TraceFrom did not return the attached trace")
	}

	parse := StartSpan(ctx, "parse")
	parse.End(nil)
	solve := StartSpan(ctx, "solve").Set("feature", "finish(m0)")
	solve.AddRetries(2)
	solve.End(errors.New("injected"))
	tr.SetAttr("outcome", "error")

	td := tr.Finish(500)
	if td.ID != "req-1" || td.Endpoint != "analyze" || td.Status != 500 {
		t.Fatalf("trace header wrong: %+v", td)
	}
	if len(td.Spans) != 2 {
		t.Fatalf("%d spans, want 2", len(td.Spans))
	}
	if td.Spans[0].Name != "parse" || td.Spans[1].Name != "solve" {
		t.Fatalf("span order wrong: %+v", td.Spans)
	}
	s := td.Spans[1]
	if s.Retries != 2 || s.Error != "injected" || s.Attrs["feature"] != "finish(m0)" {
		t.Fatalf("solve span lost annotations: %+v", s)
	}
	if td.Attrs["outcome"] != "error" {
		t.Fatalf("trace attrs lost: %+v", td.Attrs)
	}
}

// TestTraceConcurrentSpans: many workers annotate one trace while
// attrs are read — the batch fan-out pattern — under -race.
func TestTraceConcurrentSpans(t *testing.T) {
	tr := NewTrace("req-2", "batch")
	ctx := WithTrace(context.Background(), tr)
	var wg sync.WaitGroup
	for w := 0; w < 8; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; i < 50; i++ {
				sp := StartSpan(ctx, "solve").Set("worker", fmt.Sprint(w))
				sp.End(nil)
				tr.SetAttr("last_worker", fmt.Sprint(w))
				_ = tr.Attrs()
			}
		}(w)
	}
	wg.Wait()
	td := tr.Finish(200)
	if len(td.Spans) != 8*50 {
		t.Fatalf("%d spans, want %d", len(td.Spans), 8*50)
	}
}

// TestTraceSpanCap: overflow spans are dropped and counted, not
// accumulated without bound.
func TestTraceSpanCap(t *testing.T) {
	tr := NewTrace("req-3", "batch")
	ctx := WithTrace(context.Background(), tr)
	for i := 0; i < maxSpansPerTrace+10; i++ {
		StartSpan(ctx, "solve").End(nil)
	}
	td := tr.Finish(200)
	if len(td.Spans) != maxSpansPerTrace || td.SpansDropped != 10 {
		t.Fatalf("spans %d dropped %d, want %d / 10", len(td.Spans), td.SpansDropped, maxSpansPerTrace)
	}
}

// TestTraceRingRetention: the recent list is newest-first and bounded;
// the slowest list keeps the slowest-ever in descending order.
func TestTraceRingRetention(t *testing.T) {
	r := NewTraceRing(4)
	for i := 1; i <= 10; i++ {
		r.Add(TraceData{ID: fmt.Sprint(i), DurationUS: int64(i % 7)})
	}
	s := r.Snapshot()
	if s.Capacity != 4 || s.Total != 10 {
		t.Fatalf("capacity %d total %d, want 4 / 10", s.Capacity, s.Total)
	}
	if len(s.Recent) != 4 || s.Recent[0].ID != "10" || s.Recent[3].ID != "7" {
		t.Fatalf("recent list wrong: %+v", s.Recent)
	}
	if len(s.Slowest) != 4 {
		t.Fatalf("slowest list has %d entries, want 4", len(s.Slowest))
	}
	for i := 1; i < len(s.Slowest); i++ {
		if s.Slowest[i].DurationUS > s.Slowest[i-1].DurationUS {
			t.Fatalf("slowest list not descending: %+v", s.Slowest)
		}
	}
	// 6 and 5 (from i=6,5 and i=13? no: durations are i%7 → max 6) lead.
	if s.Slowest[0].DurationUS != 6 {
		t.Fatalf("slowest[0] duration %d, want 6", s.Slowest[0].DurationUS)
	}
}

// TestTraceRingConcurrent: parallel writers with snapshots mid-write,
// under -race.
func TestTraceRingConcurrent(t *testing.T) {
	r := NewTraceRing(32)
	var wg sync.WaitGroup
	for w := 0; w < 8; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; i < 200; i++ {
				r.Add(TraceData{ID: fmt.Sprintf("%d-%d", w, i), DurationUS: int64(i)})
				if i%20 == 0 {
					_ = r.Snapshot()
				}
			}
		}(w)
	}
	wg.Wait()
	s := r.Snapshot()
	if s.Total != 8*200 {
		t.Fatalf("total %d, want %d", s.Total, 8*200)
	}
	if len(s.Recent) != 32 || len(s.Slowest) != 32 {
		t.Fatalf("retention sizes %d/%d, want 32/32", len(s.Recent), len(s.Slowest))
	}
}

// TestNewID: IDs are 16 hex chars and unique enough in a quick sample.
func TestNewID(t *testing.T) {
	seen := make(map[string]bool)
	for i := 0; i < 100; i++ {
		id := NewID()
		if len(id) != 16 {
			t.Fatalf("id %q has length %d, want 16", id, len(id))
		}
		if seen[id] {
			t.Fatalf("duplicate id %q", id)
		}
		seen[id] = true
	}
}

// TestParseLevel covers the -log-level surface.
func TestParseLevel(t *testing.T) {
	for s, want := range map[string]string{"debug": "DEBUG", "info": "INFO", "warn": "WARN", "error": "ERROR", "": "INFO"} {
		lv, err := ParseLevel(s)
		if err != nil {
			t.Fatalf("ParseLevel(%q): %v", s, err)
		}
		if lv.String() != want {
			t.Errorf("ParseLevel(%q) = %v, want %s", s, lv, want)
		}
	}
	if _, err := ParseLevel("loud"); err == nil {
		t.Error("ParseLevel accepted an unknown level")
	}
}
