package lattice

import (
	"errors"
	"math"
	"testing"

	"fepia/internal/core"
	"fepia/internal/hiperd"
	"fepia/internal/stats"
)

func lin(t *testing.T, coeffs []float64, bound float64) core.Feature {
	t.Helper()
	imp, err := core.NewLinearImpact(coeffs, 0)
	if err != nil {
		t.Fatal(err)
	}
	return core.Feature{Name: "f", Impact: imp, Bounds: core.NoMin(bound)}
}

func TestMinViolating1D(t *testing.T) {
	// f(λ) = λ ≤ 10.5 from λ=0: nearest violating integer is 11.
	features := []core.Feature{lin(t, []float64{1}, 10.5)}
	p := core.Perturbation{Name: "λ", Orig: []float64{0}}
	res, err := MinViolatingPoint(features, p, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if res.Radius != 11 || res.Witness[0] != 11 {
		t.Errorf("result = %+v", res)
	}
	if res.Feature != "f" {
		t.Errorf("feature = %q", res.Feature)
	}
}

func TestMinViolating2DDiagonal(t *testing.T) {
	// f(λ) = λ₁ + λ₂ ≤ 10.2 from (3,3): continuous radius = 4.2/√2 ≈ 2.97,
	// but the nearest violating integer point must have λ₁+λ₂ ≥ 11,
	// i.e. 5 more units split as evenly as possible: (6,5) or (5,6) at
	// distance √(9+4) = √13 ≈ 3.606.
	features := []core.Feature{lin(t, []float64{1, 1}, 10.2)}
	p := core.Perturbation{Name: "λ", Orig: []float64{3, 3}}
	res, err := MinViolatingPoint(features, p, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(res.Radius-math.Sqrt(13)) > 1e-12 {
		t.Errorf("radius = %v want √13", res.Radius)
	}
	sum := res.Witness[0] + res.Witness[1]
	if sum < 10.2 {
		t.Errorf("witness does not violate: %v", res.Witness)
	}
}

func TestOrderingExactness(t *testing.T) {
	// The discrete radius can strictly exceed both the continuous radius
	// and its floor — brute-force verify minimality over a box.
	features := []core.Feature{lin(t, []float64{2, 3}, 17.5)}
	p := core.Perturbation{Name: "λ", Orig: []float64{1, 1}}
	res, err := MinViolatingPoint(features, p, Options{})
	if err != nil {
		t.Fatal(err)
	}
	best := math.Inf(1)
	for a := -20; a <= 20; a++ {
		for b := -20; b <= 20; b++ {
			if 2*float64(a)+3*float64(b) > 17.5 {
				d := math.Hypot(float64(a-1), float64(b-1))
				if d < best {
					best = d
				}
			}
		}
	}
	if math.Abs(res.Radius-best) > 1e-12 {
		t.Errorf("search radius %v != brute force %v", res.Radius, best)
	}
}

func TestNonNegativeRestriction(t *testing.T) {
	// Bound violated only at negative λ; with NonNegative the search finds
	// nothing within MaxRadius.
	imp, err := core.NewLinearImpact([]float64{-1}, 0) // f = −λ ≤ 5 ⇔ λ ≥ −5
	if err != nil {
		t.Fatal(err)
	}
	features := []core.Feature{{Name: "f", Impact: imp, Bounds: core.NoMin(5)}}
	p := core.Perturbation{Name: "λ", Orig: []float64{0}}
	res, err := MinViolatingPoint(features, p, Options{NonNegative: true, MaxRadius: 50})
	if err != nil {
		t.Fatal(err)
	}
	if !math.IsInf(res.Radius, 1) {
		t.Errorf("non-negative search should find nothing: %+v", res)
	}
	// Without the restriction the violating point is λ = −6.
	res, err = MinViolatingPoint(features, p, Options{MaxRadius: 50})
	if err != nil {
		t.Fatal(err)
	}
	if res.Radius != 6 {
		t.Errorf("unrestricted radius = %v want 6", res.Radius)
	}
}

func TestBudgetExhaustion(t *testing.T) {
	// A non-linear impact forces the best-first fallback, whose node count
	// grows with the ball volume; a tiny budget must surface ErrBudget.
	f := core.Feature{
		Name: "g",
		Impact: &core.FuncImpact{
			N: 3,
			F: func(x []float64) float64 { return x[0] + x[1] + x[2] },
		},
		Bounds: core.NoMin(30),
	}
	p := core.Perturbation{Name: "λ", Orig: []float64{0, 0, 0}}
	_, err := MinViolatingPoint([]core.Feature{f}, p, Options{MaxNodes: 100})
	if !errors.Is(err, ErrBudget) {
		t.Errorf("err = %v", err)
	}
}

func TestLinearBeyondMaxRadius(t *testing.T) {
	// A linear feature whose boundary is beyond MaxRadius reports +Inf
	// without any search effort.
	features := []core.Feature{lin(t, []float64{1, 1, 1}, 1e8)}
	p := core.Perturbation{Name: "λ", Orig: []float64{0, 0, 0}}
	res, err := MinViolatingPoint(features, p, Options{MaxNodes: 100})
	if err != nil {
		t.Fatal(err)
	}
	if !math.IsInf(res.Radius, 1) {
		t.Errorf("radius = %v", res.Radius)
	}
}

func TestQuickFastPathBruteForce(t *testing.T) {
	// Randomised exactness: the fast path must match brute-force lattice
	// enumeration over a box, for random non-negative coefficients,
	// bounds, and origins in 2-D.
	rng := stats.NewRNG(21)
	for trial := 0; trial < 100; trial++ {
		coeffs := []float64{0.5 + 3*rng.Float64(), 0.5 + 3*rng.Float64()}
		orig := []float64{float64(rng.Intn(5)), float64(rng.Intn(5))}
		base := coeffs[0]*orig[0] + coeffs[1]*orig[1]
		bound := base + 1 + 20*rng.Float64() // reachable, not violated at orig
		features := []core.Feature{lin(t, coeffs, bound)}
		p := core.Perturbation{Name: "λ", Orig: orig}
		res, err := MinViolatingPoint(features, p, Options{})
		if err != nil {
			t.Fatal(err)
		}
		best := math.Inf(1)
		for a := -40; a <= 60; a++ {
			for b := -40; b <= 60; b++ {
				if coeffs[0]*float64(a)+coeffs[1]*float64(b) > bound {
					d := math.Hypot(float64(a)-orig[0], float64(b)-orig[1])
					if d < best {
						best = d
					}
				}
			}
		}
		if math.Abs(res.Radius-best) > 1e-9 {
			t.Fatalf("trial %d: fast path %v != brute force %v (coeffs=%v bound=%v orig=%v)",
				trial, res.Radius, best, coeffs, bound, orig)
		}
	}
}

func TestFastPathMatchesFallback(t *testing.T) {
	// The linear fast path and the general best-first search must agree
	// when both are exact. Force the fallback by wrapping the same linear
	// function in a FuncImpact.
	coeffs := []float64{2, 3}
	const bound = 17.5
	p := core.Perturbation{Name: "λ", Orig: []float64{1, 1}}
	fast, err := MinViolatingPoint([]core.Feature{lin(t, coeffs, bound)}, p, Options{})
	if err != nil {
		t.Fatal(err)
	}
	slowF := core.Feature{
		Name: "g",
		Impact: &core.FuncImpact{
			N: 2,
			F: func(x []float64) float64 { return coeffs[0]*x[0] + coeffs[1]*x[1] },
		},
		Bounds: core.NoMin(bound),
	}
	slow, err := MinViolatingPoint([]core.Feature{slowF}, p, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(fast.Radius-slow.Radius) > 1e-12 {
		t.Errorf("fast %v != fallback %v", fast.Radius, slow.Radius)
	}
}

func TestValidation(t *testing.T) {
	p := core.Perturbation{Name: "λ", Orig: []float64{0}}
	if _, err := MinViolatingPoint(nil, p, Options{}); err == nil {
		t.Errorf("empty features accepted")
	}
	if _, err := MinViolatingPoint([]core.Feature{lin(t, []float64{1}, 1)}, core.Perturbation{}, Options{}); err == nil {
		t.Errorf("empty perturbation accepted")
	}
	if _, err := MinViolatingPoint([]core.Feature{lin(t, []float64{1, 2}, 1)}, p, Options{}); err == nil {
		t.Errorf("dimension mismatch accepted")
	}
}

func TestExactDiscreteRadiusOrdering(t *testing.T) {
	// floor(ρ_cont) ≤ ρ_cont ≤ ρ_discrete on a real HiPer-D instance.
	rng := stats.NewRNG(11)
	sys, err := hiperd.GenerateSystem(rng, hiperd.PaperGenParams())
	if err != nil {
		t.Fatal(err)
	}
	checked := 0
	for trial := 0; trial < 10 && checked < 3; trial++ {
		m := hiperd.RandomMapping(rng, sys)
		features, p, err := hiperd.Features(sys, m)
		if err != nil {
			t.Fatal(err)
		}
		if name, bad := violatedFeature(features, p.Orig); bad {
			_ = name
			continue // infeasible mapping: all three quantities are 0
		}
		cont, floored, exact, err := ExactDiscreteRadius(features, p, core.Options{}, Options{MaxNodes: 500000})
		if err != nil {
			t.Fatal(err)
		}
		if !(floored <= cont+1e-9) {
			t.Errorf("floor violated: %v > %v", floored, cont)
		}
		if !(cont <= exact.Radius+1e-9) {
			t.Errorf("continuous radius %v exceeds exact discrete %v", cont, exact.Radius)
		}
		if exact.Witness == nil {
			t.Errorf("no witness found")
		}
		checked++
	}
	if checked == 0 {
		t.Fatalf("no feasible mapping sampled")
	}
}
