// Package lattice computes the exact robustness radius for discrete
// perturbation parameters. §3.2 of the paper treats the (integer-valued)
// sensor loads as continuous and floors the resulting metric, deferring "a
// different method for handling a discrete perturbation parameter" to the
// first author's thesis [1]. This package implements that exact method for
// integer lattices:
//
//	ρ_discrete = min ‖λ − λ^orig‖₂  over integer vectors λ that violate
//	             some feature bound,
//
// found by best-first search over the lattice ordered by distance, with
// per-feature hyperplane distances as an admissible pruning bound. Because
// violating integer points are a subset of violating continuous points,
//
//	ρ_continuous ≤ ρ_discrete   and   floor(ρ_continuous) ≤ ρ_discrete,
//
// i.e. the paper's floored metric is a conservative (never over-promising)
// approximation; this package quantifies how much robustness it gives
// away.
package lattice

import (
	"container/heap"
	"fmt"
	"math"

	"fepia/internal/core"
	"fepia/internal/vecmath"
)

// Options bounds the search.
type Options struct {
	// MaxNodes caps lattice points expanded (default 2_000_000).
	MaxNodes int
	// MaxRadius stops the search beyond this distance; the result is then
	// reported as +Inf (no violating point within range). Default 1e6.
	MaxRadius float64
	// NonNegative restricts the lattice to λ ≥ 0 (loads cannot be
	// negative). Default false.
	NonNegative bool
}

func (o Options) withDefaults() Options {
	if o.MaxNodes == 0 {
		o.MaxNodes = 2_000_000
	}
	if o.MaxRadius == 0 {
		o.MaxRadius = 1e6
	}
	return o
}

// Result reports the exact discrete analysis.
type Result struct {
	// Radius is the distance to the nearest violating integer point
	// (+Inf when none exists within Options.MaxRadius).
	Radius float64
	// Witness is that point (nil when Radius is +Inf).
	Witness []float64
	// Feature names the violated feature at the witness.
	Feature string
	// Expanded counts lattice points visited.
	Expanded int
}

// ErrBudget is returned when MaxNodes is exhausted before the search
// completes — the reported radius would not be provably minimal.
var ErrBudget = fmt.Errorf("lattice: node budget exhausted before the search front passed a violating point")

// node is a lattice point in the best-first frontier.
type node struct {
	dist  float64
	point []int
}

type frontier []*node

func (f frontier) Len() int            { return len(f) }
func (f frontier) Less(i, j int) bool  { return f[i].dist < f[j].dist }
func (f frontier) Swap(i, j int)       { f[i], f[j] = f[j], f[i] }
func (f *frontier) Push(x interface{}) { *f = append(*f, x.(*node)) }
func (f *frontier) Pop() interface{} {
	old := *f
	n := len(old)
	x := old[n-1]
	*f = old[:n-1]
	return x
}

// MinViolatingPoint computes the exact discrete radius: the distance from
// the (rounded-to-integer) operating point to the nearest integer point
// that strictly violates some feature bound.
//
// Two engines are used per feature and the minimum over features is
// returned:
//
//   - Linear fast path — for an affine impact with non-negative
//     coefficients and an upper bound only (the shape of every feature in
//     both paper systems), the violating set {a·λ > c} is up-closed and
//     the optimal offset δ is non-negative and lies within a provably
//     sufficient box of half-width √(2ρ√n + n) around the continuous
//     projection, which is enumerated exactly in all but the
//     largest-coefficient dimension.
//   - General fallback — best-first search over the lattice ordered by
//     distance, for arbitrary impacts or two-sided bounds. This is exact
//     but only practical when the answer is small (its node count grows
//     with the ball volume); Options.MaxNodes bounds it.
func MinViolatingPoint(features []core.Feature, p core.Perturbation, opts Options) (Result, error) {
	if len(features) == 0 {
		return Result{}, fmt.Errorf("lattice: empty feature set")
	}
	if err := p.Validate(); err != nil {
		return Result{}, err
	}
	for _, f := range features {
		if err := f.Validate(); err != nil {
			return Result{}, err
		}
		if f.Impact.Dim() != len(p.Orig) {
			return Result{}, fmt.Errorf("lattice: feature %q dimension %d != %d", f.Name, f.Impact.Dim(), len(p.Orig))
		}
	}
	opts = opts.withDefaults()

	n := len(p.Orig)
	origin := make([]int, n)
	coords := make([]float64, n)
	for i, x := range p.Orig {
		origin[i] = int(math.Round(x))
		if opts.NonNegative && origin[i] < 0 {
			origin[i] = 0
		}
		coords[i] = float64(origin[i])
	}
	// Violated at the origin itself → radius 0.
	if name, bad := violatedFeature(features, coords); bad {
		return Result{Radius: 0, Witness: vecmath.Clone(coords), Feature: name, Expanded: 1}, nil
	}

	best := Result{Radius: math.Inf(1)}
	var fallback []core.Feature
	for _, f := range features {
		lin, ok := fastPathEligible(f)
		if !ok {
			fallback = append(fallback, f)
			continue
		}
		r := solveLinearUpper(lin, f.Bounds.Max, origin, opts)
		best.Expanded += r.Expanded
		if r.Radius < best.Radius {
			r.Expanded = best.Expanded
			r.Feature = f.Name
			best = r
		}
	}
	if len(fallback) > 0 {
		r, err := bestFirst(fallback, origin, opts, best.Radius)
		best.Expanded += r.Expanded
		if err != nil {
			return best, err
		}
		if r.Radius < best.Radius {
			r.Expanded = best.Expanded
			best = r
		}
	}
	return best, nil
}

// fastPathEligible reports whether a feature qualifies for the linear
// solver: affine impact, non-negative coefficients, upper bound only.
func fastPathEligible(f core.Feature) (*core.LinearImpact, bool) {
	lin, ok := f.Impact.(*core.LinearImpact)
	if !ok {
		return nil, false
	}
	if !math.IsInf(f.Bounds.Min, -1) || math.IsInf(f.Bounds.Max, 1) {
		return nil, false
	}
	for _, a := range lin.Coeffs {
		if a < 0 {
			return nil, false
		}
	}
	return lin, true
}

// solveLinearUpper finds the minimal-norm non-negative integer offset δ
// with a·(origin+δ) + offset > max (strict violation). It enumerates every
// dimension except the one with the largest coefficient within the
// sufficient box and closes the constraint with a ceiling in that
// dimension.
func solveLinearUpper(lin *core.LinearImpact, max float64, origin []int, opts Options) Result {
	n := len(lin.Coeffs)
	base := lin.Offset
	for i, a := range lin.Coeffs {
		base += a * float64(origin[i])
	}
	r := max - base // need a·δ > r ≥ 0 (origin not violating)
	aNorm := vecmath.Euclidean(lin.Coeffs)
	if aNorm == 0 {
		return Result{Radius: math.Inf(1)} // constant feature: unreachable
	}
	// Index of the largest coefficient — the "closing" dimension.
	h := 0
	for i, a := range lin.Coeffs {
		if a > lin.Coeffs[h] {
			h = i
		}
	}
	if lin.Coeffs[h] == 0 {
		return Result{Radius: math.Inf(1)}
	}
	rhoF := r / aNorm // continuous radius of this feature
	if rhoF > opts.MaxRadius {
		return Result{Radius: math.Inf(1)}
	}
	// Sufficient per-component search half-width (see package doc):
	// ‖δ − δ*‖ ≤ √(2ρ√n + n) for any optimal candidate.
	k := int(math.Ceil(math.Sqrt(2*rhoF*math.Sqrt(float64(n))+float64(n)))) + 1

	free := make([]int, 0, n-1)
	for i := 0; i < n; i++ {
		if i != h {
			free = append(free, i)
		}
	}
	delta := make([]int, n)
	best := Result{Radius: math.Inf(1)}
	const eps = 1e-9

	var enumerate func(idx int, partial float64, norm2 float64)
	enumerate = func(idx int, partial float64, norm2 float64) {
		best.Expanded++
		if idx == len(free) {
			// Close with dimension h: smallest δ_h ≥ 0 making the value
			// strictly exceed max.
			need := r - partial
			dh := 0
			if need >= 0 {
				dh = int(math.Floor(need/lin.Coeffs[h])) + 1
				// floor+1 guarantees strictness; step back while still
				// strictly violating (guards float rounding near exact
				// multiples).
				for dh > 0 && partial+lin.Coeffs[h]*float64(dh-1) > r+eps {
					dh--
				}
			}
			total := norm2 + float64(dh)*float64(dh)
			if d := math.Sqrt(total); d < best.Radius {
				delta[h] = dh
				w := make([]float64, n)
				for i := range w {
					w[i] = float64(origin[i] + delta[i])
				}
				best.Radius = d
				best.Witness = w
			}
			return
		}
		i := free[idx]
		// Continuous projection component, as the box centre.
		star := rhoF * lin.Coeffs[i] / aNorm
		lo := int(math.Floor(star)) - k
		if lo < 0 {
			lo = 0
		}
		hi := int(math.Ceil(star)) + k
		for v := lo; v <= hi; v++ {
			nn := norm2 + float64(v)*float64(v)
			if nn >= best.Radius*best.Radius {
				continue // cannot beat the incumbent
			}
			delta[i] = v
			enumerate(idx+1, partial+lin.Coeffs[i]*float64(v), nn)
		}
		delta[i] = 0
	}
	enumerate(0, 0, 0)
	return best
}

// bestFirst is the general fallback: expand lattice points in order of
// exact distance until one strictly violates a feature, pruning at prune
// (the incumbent radius from the fast path) and opts.MaxRadius.
func bestFirst(features []core.Feature, origin []int, opts Options, prune float64) (Result, error) {
	n := len(origin)
	seen := make(map[string]bool)
	front := frontier{&node{point: append([]int(nil), origin...)}}
	heap.Init(&front)
	seen[key(origin)] = true

	coords := make([]float64, n)
	res := Result{Radius: math.Inf(1)}
	limit := math.Min(opts.MaxRadius, prune)
	for front.Len() > 0 {
		nd := heap.Pop(&front).(*node)
		res.Expanded++
		if res.Expanded > opts.MaxNodes {
			return res, ErrBudget
		}
		if nd.dist > limit {
			break
		}
		for i, v := range nd.point {
			coords[i] = float64(v)
		}
		if name, bad := violatedFeature(features, coords); bad {
			res.Radius = nd.dist
			res.Witness = vecmath.Clone(coords)
			res.Feature = name
			return res, nil
		}
		for i := 0; i < n; i++ {
			for _, d := range [2]int{1, -1} {
				next := append([]int(nil), nd.point...)
				next[i] += d
				if opts.NonNegative && next[i] < 0 {
					continue
				}
				k := key(next)
				if seen[k] {
					continue
				}
				seen[k] = true
				heap.Push(&front, &node{dist: distance(next, origin), point: next})
			}
		}
	}
	return res, nil
}

// ExactDiscreteRadius couples the continuous analysis with the exact
// lattice search: it returns the continuous metric, its floored version
// (the paper's approximation), and the exact discrete radius, so the
// conservatism of flooring can be quantified.
func ExactDiscreteRadius(features []core.Feature, p core.Perturbation, copts core.Options, lopts Options) (continuous, floored float64, exact Result, err error) {
	// The continuous analysis must not itself floor — analyse a copy with
	// Discrete unset.
	pc := p
	pc.Discrete = false
	a, err := core.Analyze(features, pc, copts)
	if err != nil {
		return 0, 0, Result{}, err
	}
	continuous = a.Robustness
	floored = math.Floor(continuous)
	if math.IsInf(continuous, 1) {
		floored = continuous
	}
	exact, err = MinViolatingPoint(features, p, lopts)
	return continuous, floored, exact, err
}

// violatedFeature returns the first feature whose bound fails at x.
func violatedFeature(features []core.Feature, x []float64) (string, bool) {
	for _, f := range features {
		if !f.Bounds.Contains(f.Impact.Eval(x)) {
			return f.Name, true
		}
	}
	return "", false
}

func distance(a []int, b []int) float64 {
	var k vecmath.KahanSum
	for i := range a {
		d := float64(a[i] - b[i])
		k.Add(d * d)
	}
	return math.Sqrt(k.Sum())
}

// key serialises a lattice point for the visited set.
func key(p []int) string {
	buf := make([]byte, 0, len(p)*3)
	for _, v := range p {
		buf = append(buf, byte(v), byte(v>>8), byte(v>>16), byte(v>>24))
	}
	return string(buf)
}
