package dynamic

import (
	"fmt"
	"math"

	"fepia/internal/stats"
)

// Batch-mode dynamic mapping, per Maheswaran et al. [21]: instead of
// committing each task at its arrival, tasks accumulate in a pending pool
// and a batch heuristic re-maps the WHOLE pool at mapping events (here:
// regular time intervals, the paper's "regular interval" strategy).
// Because unstarted tasks can be re-assigned as better information
// arrives, batch mode typically beats immediate mode at high arrival
// rates.

// BatchHeuristic re-maps a pool of pending tasks given the machines' busy
// horizons (completion instants of work that has already STARTED and can
// no longer move).
type BatchHeuristic interface {
	// Name returns the conventional short name.
	Name() string
	// MapBatch assigns every pending task: returned slice is indexed like
	// pending. busy[j] is machine j's earliest availability (absolute).
	MapBatch(rng *stats.RNG, now float64, busy []float64, pending []Task) []int
}

// BatchMinMin is Min-min over the pending pool.
type BatchMinMin struct{}

// Name returns "batch-Min-min".
func (BatchMinMin) Name() string { return "batch-Min-min" }

// MapBatch implements BatchHeuristic.
func (BatchMinMin) MapBatch(rng *stats.RNG, now float64, busy []float64, pending []Task) []int {
	return minMinBatch(now, busy, pending, false)
}

// BatchMaxMin is Max-min over the pending pool.
type BatchMaxMin struct{}

// Name returns "batch-Max-min".
func (BatchMaxMin) Name() string { return "batch-Max-min" }

// MapBatch implements BatchHeuristic.
func (BatchMaxMin) MapBatch(rng *stats.RNG, now float64, busy []float64, pending []Task) []int {
	return minMinBatch(now, busy, pending, true)
}

// minMinBatch is the shared Min-min/Max-min loop over a pending pool.
func minMinBatch(now float64, busy []float64, pending []Task, pickMax bool) []int {
	m := len(busy)
	ready := append([]float64(nil), busy...)
	assign := make([]int, len(pending))
	unmapped := make([]bool, len(pending))
	for i := range unmapped {
		unmapped[i] = true
	}
	for range pending {
		selI, selJ := -1, -1
		selVal := math.Inf(1)
		if pickMax {
			selVal = math.Inf(-1)
		}
		for i, t := range pending {
			if !unmapped[i] {
				continue
			}
			bestC, bestJ := math.Inf(1), -1
			for j := 0; j < m; j++ {
				if c := completionAt(now, ready[j], t.ETC[j]); c < bestC {
					bestC, bestJ = c, j
				}
			}
			better := bestC < selVal
			if pickMax {
				better = bestC > selVal
			}
			if better {
				selVal, selI, selJ = bestC, i, bestJ
			}
		}
		assign[selI] = selJ
		unmapped[selI] = false
		ready[selJ] = completionAt(now, ready[selJ], pending[selI].ETC[selJ])
	}
	return assign
}

// BatchSufferage is Sufferage over the pending pool.
type BatchSufferage struct{}

// Name returns "batch-Sufferage".
func (BatchSufferage) Name() string { return "batch-Sufferage" }

// MapBatch implements BatchHeuristic.
func (BatchSufferage) MapBatch(rng *stats.RNG, now float64, busy []float64, pending []Task) []int {
	m := len(busy)
	ready := append([]float64(nil), busy...)
	assign := make([]int, len(pending))
	unmapped := make([]bool, len(pending))
	for i := range unmapped {
		unmapped[i] = true
	}
	for range pending {
		selI, selJ := -1, -1
		selSuff := math.Inf(-1)
		for i, t := range pending {
			if !unmapped[i] {
				continue
			}
			best, second := math.Inf(1), math.Inf(1)
			bestJ := 0
			for j := 0; j < m; j++ {
				c := completionAt(now, ready[j], t.ETC[j])
				switch {
				case c < best:
					best, second, bestJ = c, best, j
				case c < second:
					second = c
				}
			}
			suff := second - best
			if m == 1 {
				suff = -best // degenerate: fall back to Min-min order
			}
			if suff > selSuff {
				selSuff, selI, selJ = suff, i, bestJ
			}
		}
		assign[selI] = selJ
		unmapped[selI] = false
		ready[selJ] = completionAt(now, ready[selJ], pending[selI].ETC[selJ])
	}
	return assign
}

// RunBatch simulates the workload in batch mode with mapping events every
// interval time units (and a final event when the last task has arrived).
// Between events, tasks whose turn has come start executing and become
// immovable; at each event the still-unstarted tasks are re-mapped from
// scratch. Snapshots are taken at every mapping event with the conditional
// Eq. 6 radius over the outstanding (queued but unstarted plus running)
// work.
func RunBatch(rng *stats.RNG, w Workload, h BatchHeuristic, interval, tau float64) (*Result, error) {
	if err := w.Validate(); err != nil {
		return nil, err
	}
	if !(interval > 0) || math.IsInf(interval, 0) {
		return nil, fmt.Errorf("dynamic: batch interval = %v must be positive", interval)
	}
	if !(tau >= 1) || math.IsInf(tau, 0) {
		return nil, fmt.Errorf("dynamic: tau = %v must be finite and ≥ 1", tau)
	}
	res := &Result{Heuristic: h.Name(), Assign: make([]int, len(w.Tasks))}
	for i := range res.Assign {
		res.Assign[i] = -1
	}

	// Machine state: time each machine has committed STARTED work until,
	// plus the queue of started-but-estimated durations (for snapshots).
	busy := make([]float64, w.Machines)
	queued := make([][]float64, w.Machines)

	nextArrival := 0
	var pool []Task
	var finiteSum float64
	var finiteN int
	lastArrival := w.Tasks[len(w.Tasks)-1].Arrival

	for eventTime := 0.0; ; eventTime += interval {
		now := math.Min(eventTime, lastArrival+interval)
		// Absorb arrivals up to now.
		for nextArrival < len(w.Tasks) && w.Tasks[nextArrival].Arrival <= now {
			pool = append(pool, w.Tasks[nextArrival])
			nextArrival++
		}
		// Drain completed started work.
		for j := range queued {
			drainUntil(&queued[j], busy[j], now)
		}
		if len(pool) > 0 {
			assign := h.MapBatch(rng, now, busy, pool)
			if len(assign) != len(pool) {
				return nil, fmt.Errorf("dynamic: %s returned %d assignments for %d tasks", h.Name(), len(assign), len(pool))
			}
			// In this model a mapping event starts the pool's tasks: they
			// join their machines' queues (the re-mappable window is the
			// interval between events).
			for i, t := range pool {
				j := assign[i]
				if j < 0 || j >= w.Machines {
					return nil, fmt.Errorf("dynamic: %s chose machine %d of %d", h.Name(), j, w.Machines)
				}
				res.Assign[t.ID] = j
				start := math.Max(now, busy[j])
				busy[j] = start + t.ETC[j]
				queued[j] = append(queued[j], t.ETC[j])
			}
			snap := snapshot(now, pool[len(pool)-1].ID, assign[len(pool)-1], busy, queued, tau)
			res.Snapshots = append(res.Snapshots, snap)
			if !math.IsInf(snap.Robustness, 1) {
				finiteSum += snap.Robustness
				finiteN++
			}
			pool = pool[:0]
		}
		if nextArrival >= len(w.Tasks) && len(pool) == 0 {
			break
		}
	}
	for _, b := range busy {
		if b > res.Makespan {
			res.Makespan = b
		}
	}
	if finiteN > 0 {
		res.MeanRobustness = finiteSum / float64(finiteN)
	}
	return res, nil
}

// AllBatch returns the batch-mode suite of [21].
func AllBatch() []BatchHeuristic {
	return []BatchHeuristic{BatchMinMin{}, BatchMaxMin{}, BatchSufferage{}}
}
