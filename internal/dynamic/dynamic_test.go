package dynamic

import (
	"math"
	"testing"

	"fepia/internal/stats"
)

func testWorkload(t *testing.T) Workload {
	t.Helper()
	w, err := Generate(stats.NewRNG(1), PaperGenParams())
	if err != nil {
		t.Fatal(err)
	}
	return w
}

func TestGenerateAndValidate(t *testing.T) {
	w := testWorkload(t)
	if len(w.Tasks) != 20 || w.Machines != 5 {
		t.Fatalf("workload shape: %d tasks, %d machines", len(w.Tasks), w.Machines)
	}
	if err := w.Validate(); err != nil {
		t.Fatal(err)
	}
	// Determinism.
	w2, err := Generate(stats.NewRNG(1), PaperGenParams())
	if err != nil {
		t.Fatal(err)
	}
	for i := range w.Tasks {
		if w.Tasks[i].Arrival != w2.Tasks[i].Arrival {
			t.Fatalf("same seed, different arrivals")
		}
	}
	// Invalid parameters and workloads.
	if _, err := Generate(stats.NewRNG(1), GenParams{}); err == nil {
		t.Errorf("zero params accepted")
	}
	bad := Workload{Machines: 2, Tasks: []Task{{ETC: []float64{1}}}}
	if err := bad.Validate(); err == nil {
		t.Errorf("ETC arity mismatch accepted")
	}
	bad = Workload{Machines: 1, Tasks: []Task{
		{Arrival: 5, ETC: []float64{1}}, {Arrival: 1, ETC: []float64{1}},
	}}
	if err := bad.Validate(); err == nil {
		t.Errorf("unsorted arrivals accepted")
	}
	bad = Workload{Machines: 1, Tasks: []Task{{ETC: []float64{-1}}}}
	if err := bad.Validate(); err == nil {
		t.Errorf("negative ETC accepted")
	}
}

func TestHeuristicChoices(t *testing.T) {
	rng := stats.NewRNG(2)
	ready := []float64{10, 0, 5}
	etc := []float64{1, 100, 1}
	if j := (OLB{}).Choose(rng, 0, ready, etc); j != 1 {
		t.Errorf("OLB chose %d", j)
	}
	if j := (MET{}).Choose(rng, 0, ready, etc); j != 0 {
		t.Errorf("MET chose %d (ties go to the first minimum)", j)
	}
	// MCT: completions are 11, 100, 6 → machine 2.
	if j := (MCT{}).Choose(rng, 0, ready, etc); j != 2 {
		t.Errorf("MCT chose %d", j)
	}
	// KPB(100) ≡ MCT.
	if j := (KPB{K: 100}).Choose(rng, 0, ready, etc); j != 2 {
		t.Errorf("KPB(100) chose %d", j)
	}
	// KPB with one machine considered: only the global min-ETC machine.
	if j := (KPB{K: 1}).Choose(rng, 0, ready, etc); j != 0 {
		t.Errorf("KPB(1) chose %d", j)
	}
	names := map[string]bool{}
	for _, h := range All() {
		if h.Name() == "" {
			t.Errorf("empty heuristic name")
		}
		names[h.Name()] = true
	}
	if len(names) != 5 {
		t.Errorf("suite names not distinct: %v", names)
	}
}

func TestSwitchingHysteresis(t *testing.T) {
	rng := stats.NewRNG(3)
	s := &Switching{Low: 0.5, High: 0.9}
	// Perfectly balanced (index 1 > High) → MET behaviour.
	ready := []float64{10, 10}
	etc := []float64{1, 5}
	if j := s.Choose(rng, 0, ready, etc); j != 0 {
		t.Errorf("balanced switching chose %d (want MET pick)", j)
	}
	// Strong imbalance (index 0 < Low) → MCT behaviour: completions are
	// 100+1=101 vs 0+5=5 → machine 1, even though its ETC is worse.
	ready = []float64{100, 0}
	if j := s.Choose(rng, 0, ready, etc); j != 1 {
		t.Errorf("imbalanced switching chose %d (want MCT pick)", j)
	}
	// Hysteresis: at an intermediate index (0.7 ∈ (Low, High)) the MCT
	// mode persists. With ETCs (1, 2), MCT picks machine 1 (completion 9
	// vs 11) while MET would pick machine 0 — so a 1 proves persistence.
	ready = []float64{10, 7}
	if j := s.Choose(rng, 0, ready, []float64{1, 2}); j != 1 {
		t.Errorf("hysteresis lost: chose %d", j)
	}
}

func TestRunBookkeeping(t *testing.T) {
	w := testWorkload(t)
	rng := stats.NewRNG(4)
	for _, h := range All() {
		res, err := Run(rng, w, h, 1.2)
		if err != nil {
			t.Fatalf("%s: %v", h.Name(), err)
		}
		if err := Verify(w, res); err != nil {
			t.Fatalf("%s: %v", h.Name(), err)
		}
		if len(res.Snapshots) != len(w.Tasks) {
			t.Fatalf("%s: %d snapshots", h.Name(), len(res.Snapshots))
		}
		for i, s := range res.Snapshots {
			if s.Robustness < 0 || math.IsNaN(s.Robustness) {
				t.Fatalf("%s snapshot %d: robustness %v", h.Name(), i, s.Robustness)
			}
			if s.PredictedMakespan < s.Time {
				t.Fatalf("%s snapshot %d: makespan %v before time %v", h.Name(), i, s.PredictedMakespan, s.Time)
			}
		}
		if res.MeanRobustness < 0 {
			t.Fatalf("%s: mean robustness %v", h.Name(), res.MeanRobustness)
		}
		// Makespan can never beat the total-work/machines bound.
		var minWork float64
		for _, task := range w.Tasks {
			best := math.Inf(1)
			for _, c := range task.ETC {
				best = math.Min(best, c)
			}
			minWork += best
		}
		if res.Makespan < minWork/float64(w.Machines)-1e-9 {
			t.Fatalf("%s: makespan %v below work bound", h.Name(), res.Makespan)
		}
	}
}

func TestRunValidation(t *testing.T) {
	w := testWorkload(t)
	rng := stats.NewRNG(5)
	if _, err := Run(rng, w, MCT{}, 0.5); err == nil {
		t.Errorf("bad tau accepted")
	}
	if _, err := Run(rng, Workload{}, MCT{}, 1.2); err == nil {
		t.Errorf("empty workload accepted")
	}
	bad := badHeuristic{}
	if _, err := Run(rng, w, bad, 1.2); err == nil {
		t.Errorf("out-of-range machine accepted")
	}
}

type badHeuristic struct{}

func (badHeuristic) Name() string { return "bad" }
func (badHeuristic) Choose(rng *stats.RNG, now float64, ready, etcRow []float64) int {
	return 99
}

func TestCompareSuite(t *testing.T) {
	w := testWorkload(t)
	results, err := Compare(stats.NewRNG(6), w, 1.2)
	if err != nil {
		t.Fatal(err)
	}
	if len(results) != 5 {
		t.Fatalf("results = %d", len(results))
	}
	// MCT must not be worse than OLB on makespan for this heterogeneous
	// workload (it sees the ETCs; OLB does not).
	var olb, mct float64
	for _, r := range results {
		switch r.Heuristic {
		case "OLB":
			olb = r.Makespan
		case "MCT":
			mct = r.Makespan
		}
	}
	if mct > olb {
		t.Errorf("MCT %v worse than OLB %v", mct, olb)
	}
}

func TestDrainUntil(t *testing.T) {
	// Queue of estimated times 3, 4, 5 ending at ready=20 (so segments
	// [8,11), [11,15), [15,20)). At now=12 the first task is gone.
	q := []float64{3, 4, 5}
	drainUntil(&q, 20, 12)
	if len(q) != 2 || q[0] != 4 {
		t.Errorf("drained queue = %v", q)
	}
	// Everything completed.
	q = []float64{1, 1}
	drainUntil(&q, 5, 10)
	if len(q) != 0 {
		t.Errorf("queue should be empty: %v", q)
	}
	// Nothing completed.
	q = []float64{2, 2}
	drainUntil(&q, 14, 9)
	if len(q) != 2 {
		t.Errorf("queue should be intact: %v", q)
	}
}

func TestConditionalRobustnessFormula(t *testing.T) {
	// Two machines; 6 identical tasks arriving near-simultaneously. MET
	// breaks ties to machine 0, piling everything there; the conditional
	// radius at the k-th arrival is then exactly
	// 0.2·(remaining span)/√k (Eq. 6 applied online).
	w := Workload{Machines: 2}
	for i := 0; i < 6; i++ {
		w.Tasks = append(w.Tasks, Task{ID: i, Arrival: float64(i) * 0.01, ETC: []float64{10, 10}})
	}
	if err := w.Validate(); err != nil {
		t.Fatal(err)
	}
	rng := stats.NewRNG(7)
	olb, err := Run(rng, w, OLB{}, 1.2) // spreads 3/3
	if err != nil {
		t.Fatal(err)
	}
	met, err := Run(rng, w, MET{}, 1.2) // ties → all on machine 0
	if err != nil {
		t.Fatal(err)
	}
	// Piling doubles the makespan…
	if !(met.Makespan > 1.9*olb.Makespan) {
		t.Errorf("pile makespan %v vs spread %v", met.Makespan, olb.Makespan)
	}
	// …and, exactly as in the static Figure 3 discussion, the *absolute*
	// radius grows with the makespan: the pile's last snapshot must match
	// 0.2·(M−now)/√6 to within rounding.
	last := met.Snapshots[len(met.Snapshots)-1]
	want := 0.2 * (last.PredictedMakespan - last.Time) / math.Sqrt(6)
	if math.Abs(last.Robustness-want) > 1e-9 {
		t.Errorf("pile snapshot radius = %v want %v", last.Robustness, want)
	}
	// The spread mapper's last snapshot: 3 tasks on the critical machine.
	lastO := olb.Snapshots[len(olb.Snapshots)-1]
	wantO := 0.2 * (lastO.PredictedMakespan - lastO.Time) / math.Sqrt(3)
	if math.Abs(lastO.Robustness-wantO) > 1e-9 {
		t.Errorf("spread snapshot radius = %v want %v", lastO.Robustness, wantO)
	}
}
