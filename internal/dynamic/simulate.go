package dynamic

import (
	"fmt"
	"math"

	"fepia/internal/stats"
	"fepia/internal/vecmath"
)

// Snapshot records the state at one arrival: the conditional robustness of
// the work committed so far, in the sense of §3.1 applied online. At any
// instant the remaining committed work per machine plays the role of the
// finishing times F_j, the bound is τ times the current predicted
// makespan, and the perturbation parameter is the vector of remaining
// estimated times — so the radius (Eq. 6 with the current queue sizes)
// says how much collective error in the outstanding estimates the current
// commitment tolerates.
type Snapshot struct {
	// Time is the arrival instant the snapshot was taken at (after the
	// arriving task was mapped).
	Time float64
	// TaskID is the arriving task.
	TaskID int
	// Machine is the chosen machine.
	Machine int
	// PredictedMakespan is the completion instant of all committed work
	// under the estimates.
	PredictedMakespan float64
	// Robustness is the conditional §3.1 radius of the outstanding work
	// (+Inf when at most one machine has outstanding work… still finite
	// if it has any queued tasks).
	Robustness float64
}

// Result is one simulated run.
type Result struct {
	// Heuristic names the mapper.
	Heuristic string
	// Assign[i] is the machine of task i.
	Assign []int
	// Makespan is the completion instant of the whole workload under the
	// estimated times.
	Makespan float64
	// Snapshots has one entry per arrival, in order.
	Snapshots []Snapshot
	// MeanRobustness averages the finite snapshot radii — a single
	// figure for "how defensively did this mapper commit work over time".
	MeanRobustness float64
}

// Run simulates the workload under an immediate-mode heuristic. tau is the
// tolerance used for the conditional robustness snapshots (τ ≥ 1).
func Run(rng *stats.RNG, w Workload, h Heuristic, tau float64) (*Result, error) {
	if err := w.Validate(); err != nil {
		return nil, err
	}
	if !(tau >= 1) || math.IsInf(tau, 0) {
		return nil, fmt.Errorf("dynamic: tau = %v must be finite and ≥ 1", tau)
	}
	ready := make([]float64, w.Machines)    // absolute completion instants
	queued := make([][]float64, w.Machines) // outstanding estimated times per machine
	res := &Result{Heuristic: h.Name(), Assign: make([]int, len(w.Tasks))}

	var finiteSum float64
	var finiteN int
	for _, t := range w.Tasks {
		now := t.Arrival
		// Drain completed work from the queues (everything that finishes
		// by now is no longer perturbable).
		for j := range queued {
			drainUntil(&queued[j], ready[j], now)
		}
		j := h.Choose(rng, now, ready, t.ETC)
		if j < 0 || j >= w.Machines {
			return nil, fmt.Errorf("dynamic: %s chose machine %d of %d", h.Name(), j, w.Machines)
		}
		res.Assign[t.ID] = j
		start := math.Max(now, ready[j])
		ready[j] = start + t.ETC[j]
		queued[j] = append(queued[j], t.ETC[j])

		snap := snapshot(now, t.ID, j, ready, queued, tau)
		res.Snapshots = append(res.Snapshots, snap)
		if !math.IsInf(snap.Robustness, 1) {
			finiteSum += snap.Robustness
			finiteN++
		}
	}
	for _, r := range ready {
		if r > res.Makespan {
			res.Makespan = r
		}
	}
	if finiteN > 0 {
		res.MeanRobustness = finiteSum / float64(finiteN)
	}
	return res, nil
}

// drainUntil removes the prefix of outstanding times that completes by
// now, given the machine's final completion instant. Completion instants
// are reconstructed by walking the queue backwards from ready; when the
// machine had an idle gap, this over-estimates early tasks' completions
// and may keep an already-finished task in the perturbable set — a
// deliberately conservative choice (the snapshot radius can only shrink,
// never over-promise).
func drainUntil(queue *[]float64, ready, now float64) {
	// Work backwards: the queue's tasks end at ready, ready−last, …
	q := *queue
	end := ready
	keepFrom := len(q)
	for i := len(q) - 1; i >= 0; i-- {
		if end <= now {
			break
		}
		keepFrom = i
		end -= q[i]
	}
	*queue = q[keepFrom:]
}

// snapshot computes the conditional Eq. 6 radius over the outstanding
// work.
func snapshot(now float64, taskID, machine int, ready []float64, queued [][]float64, tau float64) Snapshot {
	s := Snapshot{Time: now, TaskID: taskID, Machine: machine, Robustness: math.Inf(1)}
	for _, r := range ready {
		if r > s.PredictedMakespan {
			s.PredictedMakespan = r
		}
	}
	bound := now + tau*(s.PredictedMakespan-now) // tolerance applies to remaining span
	for j, q := range queued {
		n := len(q)
		if n == 0 {
			continue
		}
		radius := (bound - ready[j]) / math.Sqrt(float64(n))
		if radius < 0 {
			radius = 0
		}
		if radius < s.Robustness {
			s.Robustness = radius
		}
	}
	return s
}

// Compare runs every heuristic on the same workload and returns their
// results in suite order — the dynamic counterpart of the static
// heuristic study.
func Compare(rng *stats.RNG, w Workload, tau float64) ([]*Result, error) {
	var out []*Result
	for _, h := range All() {
		r, err := Run(rng, w, h, tau)
		if err != nil {
			return nil, err
		}
		out = append(out, r)
	}
	return out, nil
}

// Verify replays a result's assignment and checks the bookkeeping: the
// makespan recomputed from scratch must match. It returns an error
// describing any mismatch (used by tests and as a sanity hook for
// downstream users).
func Verify(w Workload, res *Result) error {
	if len(res.Assign) != len(w.Tasks) {
		return fmt.Errorf("dynamic: %d assignments for %d tasks", len(res.Assign), len(w.Tasks))
	}
	ready := make([]float64, w.Machines)
	for _, t := range w.Tasks {
		j := res.Assign[t.ID]
		start := math.Max(t.Arrival, ready[j])
		ready[j] = start + t.ETC[j]
	}
	makespan := 0.0
	for _, r := range ready {
		makespan = math.Max(makespan, r)
	}
	if !vecmath.ScalarEqualApprox(makespan, res.Makespan, 1e-9) {
		return fmt.Errorf("dynamic: replayed makespan %v != recorded %v", makespan, res.Makespan)
	}
	return nil
}
