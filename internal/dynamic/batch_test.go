package dynamic

import (
	"math"
	"testing"

	"fepia/internal/stats"
)

func TestRunBatchBookkeeping(t *testing.T) {
	w := testWorkload(t)
	rng := stats.NewRNG(11)
	for _, h := range AllBatch() {
		res, err := RunBatch(rng, w, h, 5, 1.2)
		if err != nil {
			t.Fatalf("%s: %v", h.Name(), err)
		}
		// Every task assigned exactly once to a valid machine.
		for i, j := range res.Assign {
			if j < 0 || j >= w.Machines {
				t.Fatalf("%s: task %d assigned to %d", h.Name(), i, j)
			}
		}
		if res.Makespan <= 0 {
			t.Fatalf("%s: makespan %v", h.Name(), res.Makespan)
		}
		// Batch mode cannot start a task before its arrival, so the
		// makespan is at least the last arrival.
		if res.Makespan < w.Tasks[len(w.Tasks)-1].Arrival {
			t.Fatalf("%s: makespan %v before last arrival", h.Name(), res.Makespan)
		}
		if len(res.Snapshots) == 0 {
			t.Fatalf("%s: no snapshots", h.Name())
		}
		for _, s := range res.Snapshots {
			if s.Robustness < 0 || math.IsNaN(s.Robustness) {
				t.Fatalf("%s: snapshot robustness %v", h.Name(), s.Robustness)
			}
		}
	}
}

func TestRunBatchValidation(t *testing.T) {
	w := testWorkload(t)
	rng := stats.NewRNG(12)
	if _, err := RunBatch(rng, w, BatchMinMin{}, 0, 1.2); err == nil {
		t.Errorf("zero interval accepted")
	}
	if _, err := RunBatch(rng, w, BatchMinMin{}, 5, 0.5); err == nil {
		t.Errorf("bad tau accepted")
	}
	if _, err := RunBatch(rng, Workload{}, BatchMinMin{}, 5, 1.2); err == nil {
		t.Errorf("empty workload accepted")
	}
}

func TestBatchHeuristicsOnSinglePool(t *testing.T) {
	// All tasks available at once (one mapping event): batch Min-min must
	// reproduce the static Min-min assignment quality. Construct a case
	// with a known optimum.
	w := Workload{Machines: 2, Tasks: []Task{
		{ID: 0, Arrival: 0, ETC: []float64{1, 10}},
		{ID: 1, Arrival: 0, ETC: []float64{10, 1}},
		{ID: 2, Arrival: 0, ETC: []float64{2, 2}},
	}}
	if err := w.Validate(); err != nil {
		t.Fatal(err)
	}
	rng := stats.NewRNG(13)
	for _, h := range AllBatch() {
		res, err := RunBatch(rng, w, h, 100, 1.2)
		if err != nil {
			t.Fatalf("%s: %v", h.Name(), err)
		}
		if res.Makespan != 3 {
			t.Errorf("%s makespan = %v, want optimum 3", h.Name(), res.Makespan)
		}
		if res.Assign[0] != 0 || res.Assign[1] != 1 {
			t.Errorf("%s assignment = %v", h.Name(), res.Assign)
		}
	}
}

func TestBatchBeatsImmediateUnderBursts(t *testing.T) {
	// A bursty workload where immediate MCT commits greedily: 4 tasks
	// arrive together; the first is huge on its MCT choice later. Batch
	// mode sees the whole burst and packs better or equal.
	w := Workload{Machines: 2, Tasks: []Task{
		{ID: 0, Arrival: 0, ETC: []float64{4, 5}},
		{ID: 1, Arrival: 0.001, ETC: []float64{4, 5}},
		{ID: 2, Arrival: 0.002, ETC: []float64{4, 5}},
		{ID: 3, Arrival: 0.003, ETC: []float64{5, 12}},
	}}
	if err := w.Validate(); err != nil {
		t.Fatal(err)
	}
	rng := stats.NewRNG(14)
	imm, err := Run(rng, w, MCT{}, 1.2)
	if err != nil {
		t.Fatal(err)
	}
	bat, err := RunBatch(rng, w, BatchMaxMin{}, 1, 1.2)
	if err != nil {
		t.Fatal(err)
	}
	if bat.Makespan > imm.Makespan+1e-9 {
		t.Errorf("batch Max-min %v worse than immediate MCT %v", bat.Makespan, imm.Makespan)
	}
}

func TestBatchDeterminism(t *testing.T) {
	w := testWorkload(t)
	a, err := RunBatch(stats.NewRNG(15), w, BatchSufferage{}, 4, 1.2)
	if err != nil {
		t.Fatal(err)
	}
	b, err := RunBatch(stats.NewRNG(15), w, BatchSufferage{}, 4, 1.2)
	if err != nil {
		t.Fatal(err)
	}
	for i := range a.Assign {
		if a.Assign[i] != b.Assign[i] {
			t.Fatalf("nondeterministic batch run")
		}
	}
}

func TestBatchNames(t *testing.T) {
	want := map[string]bool{"batch-Min-min": true, "batch-Max-min": true, "batch-Sufferage": true}
	for _, h := range AllBatch() {
		if !want[h.Name()] {
			t.Errorf("unexpected name %q", h.Name())
		}
	}
}
