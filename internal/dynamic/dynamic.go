// Package dynamic implements the dynamic (online) mapping model of
// Maheswaran, Ali, Siegel, Hensgen, and Freund (1999) — reference [21] of
// the robustness paper — and tracks the §3.1 robustness metric as the
// allocation evolves.
//
// Tasks arrive over time; an immediate-mode heuristic assigns each arrival
// to a machine on the spot, knowing only the current machine ready times
// and the task's ETC row. The package provides the five classic
// immediate-mode heuristics (OLB, MET, MCT, KPB, and the Switching
// algorithm) and an arrival-driven simulator that records, at every
// arrival, the conditional robustness radius of the work mapped so far —
// how much collective ETC error the current commitment can absorb before
// the eventual makespan bound is violated.
package dynamic

import (
	"fmt"
	"math"
	"sort"

	"fepia/internal/etcgen"
	"fepia/internal/stats"
	"fepia/internal/vecmath"
)

// Task is one dynamically arriving application.
type Task struct {
	// ID is the task's index in the workload.
	ID int
	// Arrival is the arrival instant.
	Arrival float64
	// ETC[j] is the estimated time to compute on machine j.
	ETC []float64
}

// Workload is a time-ordered arrival sequence.
type Workload struct {
	// Tasks is sorted by ascending Arrival.
	Tasks []Task
	// Machines is |M|.
	Machines int
}

// Validate checks ordering and shape.
func (w Workload) Validate() error {
	if w.Machines < 1 {
		return fmt.Errorf("dynamic: %d machines", w.Machines)
	}
	prev := math.Inf(-1)
	for i, t := range w.Tasks {
		if len(t.ETC) != w.Machines {
			return fmt.Errorf("dynamic: task %d has %d ETCs for %d machines", i, len(t.ETC), w.Machines)
		}
		for j, c := range t.ETC {
			if !(c > 0) || math.IsInf(c, 0) {
				return fmt.Errorf("dynamic: task %d ETC[%d] = %v must be finite and positive", i, j, c)
			}
		}
		if t.Arrival < prev {
			return fmt.Errorf("dynamic: task %d arrives at %v before its predecessor at %v", i, t.Arrival, prev)
		}
		if t.Arrival < 0 || math.IsNaN(t.Arrival) {
			return fmt.Errorf("dynamic: task %d arrival %v invalid", i, t.Arrival)
		}
		prev = t.Arrival
	}
	return nil
}

// GenParams configures workload generation: Poisson arrivals with
// CVB-sampled ETC rows (the [21] experimental setup).
type GenParams struct {
	// Tasks is the arrival count.
	Tasks int
	// Machines is |M|.
	Machines int
	// MeanInterarrival is the mean gap between arrivals.
	MeanInterarrival float64
	// MeanTask, TaskHet, MachineHet parameterise the CVB ETC sampling.
	MeanTask, TaskHet, MachineHet float64
}

// PaperGenParams mirrors the paper-scale workload: 20 tasks on 5
// machines, mean ETC 10, heterogeneities 0.7, arrivals roughly as fast as
// one machine drains them.
func PaperGenParams() GenParams {
	return GenParams{
		Tasks: 20, Machines: 5,
		MeanInterarrival: 2,
		MeanTask:         10, TaskHet: 0.7, MachineHet: 0.7,
	}
}

// Generate samples a workload.
func Generate(rng *stats.RNG, p GenParams) (Workload, error) {
	if p.Tasks < 1 || p.Machines < 1 || !(p.MeanInterarrival > 0) {
		return Workload{}, fmt.Errorf("dynamic: invalid generation parameters %+v", p)
	}
	etc, err := etcgen.Generate(rng, etcgen.Params{
		Tasks: p.Tasks, Machines: p.Machines,
		MeanTask: p.MeanTask, TaskHeterogeneity: p.TaskHet, MachineHeterogeneity: p.MachineHet,
	})
	if err != nil {
		return Workload{}, err
	}
	w := Workload{Machines: p.Machines}
	clock := 0.0
	for i := 0; i < p.Tasks; i++ {
		clock += rng.ExpFloat64() * p.MeanInterarrival
		w.Tasks = append(w.Tasks, Task{ID: i, Arrival: clock, ETC: etc[i]})
	}
	return w, w.Validate()
}

// Heuristic is an immediate-mode mapper: it sees the machine ready times
// (absolute completion instants of already-queued work) and the arriving
// task, and picks a machine.
type Heuristic interface {
	// Name returns the conventional short name.
	Name() string
	// Choose returns the machine for the task. now is the arrival instant;
	// ready[j] is when machine j becomes free (≥ now means busy until
	// then; < now means idle since then).
	Choose(rng *stats.RNG, now float64, ready []float64, etcRow []float64) int
}

// OLB assigns to the machine that becomes ready soonest.
type OLB struct{}

// Name returns "OLB".
func (OLB) Name() string { return "OLB" }

// Choose implements Heuristic.
func (OLB) Choose(rng *stats.RNG, now float64, ready, etcRow []float64) int {
	best, bestJ := math.Inf(1), 0
	for j, r := range ready {
		if r < best {
			best, bestJ = r, j
		}
	}
	return bestJ
}

// MET assigns to the machine with the minimum ETC, ignoring load.
type MET struct{}

// Name returns "MET".
func (MET) Name() string { return "MET" }

// Choose implements Heuristic.
func (MET) Choose(rng *stats.RNG, now float64, ready, etcRow []float64) int {
	_, j := vecmath.Min(etcRow)
	return j
}

// MCT assigns to the machine with the minimum completion time.
type MCT struct{}

// Name returns "MCT".
func (MCT) Name() string { return "MCT" }

// Choose implements Heuristic.
func (MCT) Choose(rng *stats.RNG, now float64, ready, etcRow []float64) int {
	best, bestJ := math.Inf(1), 0
	for j := range ready {
		c := completionAt(now, ready[j], etcRow[j])
		if c < best {
			best, bestJ = c, j
		}
	}
	return bestJ
}

// KPB is the k-percent-best heuristic of [21]: consider only the ⌈k%·|M|⌉
// machines with the smallest ETC for this task, and take the minimum
// completion time among them. K = 100 reduces to MCT; K → 100/|M|
// approaches MET.
type KPB struct {
	// K is the percentage in (0, 100].
	K float64
}

// Name returns "KPB(k)".
func (k KPB) Name() string { return fmt.Sprintf("KPB(%.0f)", k.K) }

// Choose implements Heuristic.
func (k KPB) Choose(rng *stats.RNG, now float64, ready, etcRow []float64) int {
	m := len(etcRow)
	count := int(math.Ceil(k.K / 100 * float64(m)))
	if count < 1 {
		count = 1
	}
	if count > m {
		count = m
	}
	order := make([]int, m)
	for j := range order {
		order[j] = j
	}
	sort.Slice(order, func(a, b int) bool { return etcRow[order[a]] < etcRow[order[b]] })
	best, bestJ := math.Inf(1), order[0]
	for _, j := range order[:count] {
		c := completionAt(now, ready[j], etcRow[j])
		if c < best {
			best, bestJ = c, j
		}
	}
	return bestJ
}

// Switching alternates between MCT and MET based on the current load
// balance index (min ready / max ready), per [21]: MET is cheap but
// unbalances; when the index drops below Low, switch to MCT until it
// recovers above High.
type Switching struct {
	// Low and High are the hysteresis thresholds (0 ≤ Low ≤ High ≤ 1);
	// zero values select 0.6 and 0.9.
	Low, High float64
	useMCT    bool
}

// Name returns "Switching".
func (s *Switching) Name() string { return "Switching" }

// Choose implements Heuristic.
func (s *Switching) Choose(rng *stats.RNG, now float64, ready, etcRow []float64) int {
	low, high := s.Low, s.High
	if low == 0 && high == 0 {
		low, high = 0.6, 0.9
	}
	// Load balance over the remaining committed work (relative to now).
	minR, maxR := math.Inf(1), 0.0
	for _, r := range ready {
		rem := math.Max(0, r-now)
		minR = math.Min(minR, rem)
		maxR = math.Max(maxR, rem)
	}
	index := 1.0
	if maxR > 0 {
		index = minR / maxR
	}
	if index < low {
		s.useMCT = true
	} else if index > high {
		s.useMCT = false
	}
	if s.useMCT {
		return MCT{}.Choose(rng, now, ready, etcRow)
	}
	return MET{}.Choose(rng, now, ready, etcRow)
}

// completionAt returns when a task finishes if queued now behind work
// ending at ready.
func completionAt(now, ready, etc float64) float64 {
	return math.Max(now, ready) + etc
}

// All returns the immediate-mode suite of [21].
func All() []Heuristic {
	return []Heuristic{OLB{}, MET{}, MCT{}, KPB{K: 40}, &Switching{}}
}
