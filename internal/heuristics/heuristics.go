// Package heuristics implements the static mapping heuristics of Braun,
// Siegel, et al. (2001) — reference [7] of the robustness paper and the
// system model behind its §3.1 example — plus robustness-aware variants
// that optimise the paper's metric directly.
//
// The eleven classic heuristics are OLB, MET, MCT, Min-min, Max-min,
// Duplex, GA, SA, GSA, Tabu, and A*; Sufferage (from the companion dynamic
// mapping study, reference [21]) is included as a twelfth baseline. All
// heuristics are deterministic functions of the supplied random source.
package heuristics

import (
	"math"

	"fepia/internal/hcs"
	"fepia/internal/stats"
)

// Heuristic maps an instance, producing a complete application→machine
// assignment.
type Heuristic interface {
	// Name returns the conventional short name ("Min-min", "GA", …).
	Name() string
	// Map computes a mapping. Implementations must be deterministic given
	// the random source.
	Map(rng *stats.RNG, inst *hcs.Instance) (*hcs.Mapping, error)
}

// All returns the full heuristic suite in the order Braun et al. report
// them, followed by Sufferage. The search-based heuristics use the default
// budgets of their constructors.
func All() []Heuristic {
	return []Heuristic{
		OLB{},
		MET{},
		MCT{},
		MinMin{},
		MaxMin{},
		Duplex{},
		NewGA(GAConfig{}),
		NewSA(SAConfig{}),
		NewGSA(GSAConfig{}),
		NewTabu(TabuConfig{}),
		NewAStar(AStarConfig{}),
		Sufferage{},
	}
}

// readyTimes tracks per-machine accumulated load during list scheduling.
type readyTimes struct {
	finish []float64
}

func newReadyTimes(machines int) *readyTimes {
	return &readyTimes{finish: make([]float64, machines)}
}

// completion returns the completion time of task i on machine j given the
// current partial schedule.
func (r *readyTimes) completion(inst *hcs.Instance, i, j int) float64 {
	return r.finish[j] + inst.ETC(i, j)
}

// assign books task i on machine j.
func (r *readyTimes) assign(inst *hcs.Instance, i, j int) {
	r.finish[j] += inst.ETC(i, j)
}

// makespan of the partial schedule.
func (r *readyTimes) makespan() float64 {
	m := 0.0
	for _, f := range r.finish {
		if f > m {
			m = f
		}
	}
	return m
}

// OLB (Opportunistic Load Balancing) assigns each application, in order, to
// the machine that becomes ready soonest, ignoring execution times.
type OLB struct{}

// Name returns "OLB".
func (OLB) Name() string { return "OLB" }

// Map implements Heuristic.
func (OLB) Map(rng *stats.RNG, inst *hcs.Instance) (*hcs.Mapping, error) {
	ready := newReadyTimes(inst.Machines())
	assign := make([]int, inst.Applications())
	for i := 0; i < inst.Applications(); i++ {
		best, bestJ := math.Inf(1), 0
		for j := 0; j < inst.Machines(); j++ {
			if ready.finish[j] < best {
				best, bestJ = ready.finish[j], j
			}
		}
		assign[i] = bestJ
		ready.assign(inst, i, bestJ)
	}
	return hcs.NewMapping(inst, assign)
}

// MET (Minimum Execution Time) assigns each application to the machine
// with its smallest ETC, ignoring machine load.
type MET struct{}

// Name returns "MET".
func (MET) Name() string { return "MET" }

// Map implements Heuristic.
func (MET) Map(rng *stats.RNG, inst *hcs.Instance) (*hcs.Mapping, error) {
	assign := make([]int, inst.Applications())
	for i := range assign {
		best, bestJ := math.Inf(1), 0
		for j := 0; j < inst.Machines(); j++ {
			if c := inst.ETC(i, j); c < best {
				best, bestJ = c, j
			}
		}
		assign[i] = bestJ
	}
	return hcs.NewMapping(inst, assign)
}

// MCT (Minimum Completion Time) assigns each application, in order, to the
// machine minimising its completion time under the current partial load.
type MCT struct{}

// Name returns "MCT".
func (MCT) Name() string { return "MCT" }

// Map implements Heuristic.
func (MCT) Map(rng *stats.RNG, inst *hcs.Instance) (*hcs.Mapping, error) {
	ready := newReadyTimes(inst.Machines())
	assign := make([]int, inst.Applications())
	for i := 0; i < inst.Applications(); i++ {
		best, bestJ := math.Inf(1), 0
		for j := 0; j < inst.Machines(); j++ {
			if c := ready.completion(inst, i, j); c < best {
				best, bestJ = c, j
			}
		}
		assign[i] = bestJ
		ready.assign(inst, i, bestJ)
	}
	return hcs.NewMapping(inst, assign)
}

// minMinMaxMin implements the shared structure of Min-min and Max-min:
// repeatedly compute each unmapped application's best completion time, then
// commit the application selected by pickMax (false → minimum of the
// minima, true → maximum of the minima).
func minMinMaxMin(inst *hcs.Instance, pickMax bool) ([]int, error) {
	n := inst.Applications()
	ready := newReadyTimes(inst.Machines())
	assign := make([]int, n)
	unmapped := make([]bool, n)
	for i := range unmapped {
		unmapped[i] = true
	}
	for step := 0; step < n; step++ {
		selI, selJ := -1, -1
		selVal := math.Inf(1)
		if pickMax {
			selVal = math.Inf(-1)
		}
		for i := 0; i < n; i++ {
			if !unmapped[i] {
				continue
			}
			bestC, bestJ := math.Inf(1), -1
			for j := 0; j < inst.Machines(); j++ {
				if c := ready.completion(inst, i, j); c < bestC {
					bestC, bestJ = c, j
				}
			}
			better := bestC < selVal
			if pickMax {
				better = bestC > selVal
			}
			if better {
				selVal, selI, selJ = bestC, i, bestJ
			}
		}
		assign[selI] = selJ
		unmapped[selI] = false
		ready.assign(inst, selI, selJ)
	}
	return assign, nil
}

// MinMin repeatedly commits the application with the smallest best
// completion time — the strongest simple baseline in Braun et al.
type MinMin struct{}

// Name returns "Min-min".
func (MinMin) Name() string { return "Min-min" }

// Map implements Heuristic.
func (MinMin) Map(rng *stats.RNG, inst *hcs.Instance) (*hcs.Mapping, error) {
	assign, err := minMinMaxMin(inst, false)
	if err != nil {
		return nil, err
	}
	return hcs.NewMapping(inst, assign)
}

// MaxMin repeatedly commits the application whose best completion time is
// largest, front-loading long applications.
type MaxMin struct{}

// Name returns "Max-min".
func (MaxMin) Name() string { return "Max-min" }

// Map implements Heuristic.
func (MaxMin) Map(rng *stats.RNG, inst *hcs.Instance) (*hcs.Mapping, error) {
	assign, err := minMinMaxMin(inst, true)
	if err != nil {
		return nil, err
	}
	return hcs.NewMapping(inst, assign)
}

// Duplex runs Min-min and Max-min and keeps the mapping with the smaller
// makespan.
type Duplex struct{}

// Name returns "Duplex".
func (Duplex) Name() string { return "Duplex" }

// Map implements Heuristic.
func (Duplex) Map(rng *stats.RNG, inst *hcs.Instance) (*hcs.Mapping, error) {
	a, err := (MinMin{}).Map(rng, inst)
	if err != nil {
		return nil, err
	}
	b, err := (MaxMin{}).Map(rng, inst)
	if err != nil {
		return nil, err
	}
	if b.PredictedMakespan() < a.PredictedMakespan() {
		return b, nil
	}
	return a, nil
}

// Sufferage commits, each round, the application that would "suffer" most
// if denied its best machine: the one with the largest gap between its
// best and second-best completion times.
type Sufferage struct{}

// Name returns "Sufferage".
func (Sufferage) Name() string { return "Sufferage" }

// Map implements Heuristic.
func (Sufferage) Map(rng *stats.RNG, inst *hcs.Instance) (*hcs.Mapping, error) {
	n := inst.Applications()
	if inst.Machines() < 2 {
		return (MCT{}).Map(rng, inst) // sufferage undefined with one machine
	}
	ready := newReadyTimes(inst.Machines())
	assign := make([]int, n)
	unmapped := make([]bool, n)
	for i := range unmapped {
		unmapped[i] = true
	}
	for step := 0; step < n; step++ {
		selI, selJ := -1, -1
		selSuff := math.Inf(-1)
		for i := 0; i < n; i++ {
			if !unmapped[i] {
				continue
			}
			best, second := math.Inf(1), math.Inf(1)
			bestJ := -1
			for j := 0; j < inst.Machines(); j++ {
				c := ready.completion(inst, i, j)
				switch {
				case c < best:
					best, second, bestJ = c, best, j
				case c < second:
					second = c
				}
			}
			if suff := second - best; suff > selSuff {
				selSuff, selI, selJ = suff, i, bestJ
			}
		}
		assign[selI] = selJ
		unmapped[selI] = false
		ready.assign(inst, selI, selJ)
	}
	return hcs.NewMapping(inst, assign)
}

// makespanOf computes the makespan of a raw assignment without
// constructing a Mapping.
func makespanOf(inst *hcs.Instance, assign []int) float64 {
	finish := make([]float64, inst.Machines())
	for i, j := range assign {
		finish[j] += inst.ETC(i, j)
	}
	m := 0.0
	for _, f := range finish {
		if f > m {
			m = f
		}
	}
	return m
}

// LowerBound returns a simple makespan lower bound used by tests and by
// the A* heuristic's admissible estimate: the larger of (a) the biggest
// per-application minimum ETC and (b) the total minimum work divided by
// the machine count.
func LowerBound(inst *hcs.Instance) float64 {
	var sum, largest float64
	for i := 0; i < inst.Applications(); i++ {
		best := math.Inf(1)
		for j := 0; j < inst.Machines(); j++ {
			if c := inst.ETC(i, j); c < best {
				best = c
			}
		}
		sum += best
		if best > largest {
			largest = best
		}
	}
	return math.Max(largest, sum/float64(inst.Machines()))
}
