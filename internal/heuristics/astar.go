package heuristics

import (
	"container/heap"
	"math"
	"sort"

	"fepia/internal/hcs"
	"fepia/internal/stats"
)

// AStarConfig tunes the beam-limited A* tree search. Zero values select
// defaults in parentheses.
type AStarConfig struct {
	// Beam bounds the open list, as in Braun et al.'s capped tree (1024).
	Beam int
	// MaxExpansions bounds total node expansions (200000).
	MaxExpansions int
}

// AStar searches the tree of partial assignments: depth d fixes the
// machine of the d-th application (applications ordered by decreasing
// minimum ETC so the hardest decisions are made early). The cost estimate
// f(node) is the admissible makespan bound
//
//	max( partial makespan,
//	     (committed work + remaining minimum work) / |M|,
//	     max over unassigned applications of its minimum completion time ).
//
// When the open list exceeds the beam, the worst nodes are pruned — the
// search then degrades gracefully from exact to heuristic, as in the
// original paper.
type AStar struct {
	cfg AStarConfig
}

// NewAStar builds an AStar with defaults applied.
func NewAStar(cfg AStarConfig) AStar {
	if cfg.Beam == 0 {
		cfg.Beam = 1024
	}
	if cfg.MaxExpansions == 0 {
		cfg.MaxExpansions = 200000
	}
	return AStar{cfg: cfg}
}

// Name returns "A*".
func (AStar) Name() string { return "A*" }

// node is a partial assignment in the search tree.
type node struct {
	depth  int
	f      float64
	finish []float64 // per-machine committed load
	assign []int     // assignments for order[0:depth]
}

// openList is a min-heap on f.
type openList []*node

func (o openList) Len() int            { return len(o) }
func (o openList) Less(i, j int) bool  { return o[i].f < o[j].f }
func (o openList) Swap(i, j int)       { o[i], o[j] = o[j], o[i] }
func (o *openList) Push(x interface{}) { *o = append(*o, x.(*node)) }
func (o *openList) Pop() interface{} {
	old := *o
	n := len(old)
	x := old[n-1]
	*o = old[:n-1]
	return x
}

// Map implements Heuristic.
func (a AStar) Map(rng *stats.RNG, inst *hcs.Instance) (*hcs.Mapping, error) {
	n := inst.Applications()
	machines := inst.Machines()

	// Order applications by decreasing minimum ETC.
	order := make([]int, n)
	minETC := make([]float64, n)
	for i := range order {
		order[i] = i
		best := math.Inf(1)
		for j := 0; j < machines; j++ {
			if c := inst.ETC(i, j); c < best {
				best = c
			}
		}
		minETC[i] = best
	}
	sort.Slice(order, func(x, y int) bool { return minETC[order[x]] > minETC[order[y]] })

	// suffixMinWork[d] = Σ_{k≥d} minETC[order[k]].
	suffixMinWork := make([]float64, n+1)
	for d := n - 1; d >= 0; d-- {
		suffixMinWork[d] = suffixMinWork[d+1] + minETC[order[d]]
	}

	estimate := func(nd *node) float64 {
		span := 0.0
		committed := 0.0
		for _, f := range nd.finish {
			committed += f
			if f > span {
				span = f
			}
		}
		f := math.Max(span, (committed+suffixMinWork[nd.depth])/float64(machines))
		// Each unassigned application must finish somewhere ≥ its minimum
		// completion time on the emptiest machine.
		emptiest := math.Inf(1)
		for _, fin := range nd.finish {
			if fin < emptiest {
				emptiest = fin
			}
		}
		for d := nd.depth; d < n; d++ {
			if c := emptiest + minETC[order[d]]; c > f {
				f = c
			}
		}
		return f
	}

	root := &node{finish: make([]float64, machines), assign: nil}
	root.f = estimate(root)
	open := openList{root}
	heap.Init(&open)

	var incumbent []int
	incumbentSpan := math.Inf(1)
	expansions := 0
	for open.Len() > 0 && expansions < a.cfg.MaxExpansions {
		nd := heap.Pop(&open).(*node)
		if nd.f >= incumbentSpan {
			continue // cannot beat the incumbent
		}
		if nd.depth == n {
			span := 0.0
			for _, f := range nd.finish {
				if f > span {
					span = f
				}
			}
			if span < incumbentSpan {
				incumbentSpan = span
				incumbent = nd.assign
			}
			continue
		}
		expansions++
		app := order[nd.depth]
		for j := 0; j < machines; j++ {
			child := &node{
				depth:  nd.depth + 1,
				finish: append([]float64(nil), nd.finish...),
				assign: append(append([]int(nil), nd.assign...), j),
			}
			child.finish[j] += inst.ETC(app, j)
			child.f = estimate(child)
			if child.f >= incumbentSpan {
				continue
			}
			heap.Push(&open, child)
		}
		// Beam pruning: keep the best nodes only.
		if open.Len() > a.cfg.Beam {
			sort.Slice(open, func(x, y int) bool { return open[x].f < open[y].f })
			open = open[:a.cfg.Beam]
			heap.Init(&open)
		}
	}

	if incumbent == nil {
		// Budget exhausted before any leaf: fall back to MCT.
		return (MCT{}).Map(rng, inst)
	}
	assign := make([]int, n)
	for d, j := range incumbent {
		assign[order[d]] = j
	}
	return hcs.NewMapping(inst, assign)
}
