package heuristics

import (
	"math"
	"testing"

	"fepia/internal/etcgen"
	"fepia/internal/hcs"
	"fepia/internal/indalloc"
	"fepia/internal/stats"
)

func paperInstance(t *testing.T, seed int64) *hcs.Instance {
	t.Helper()
	etc, err := etcgen.Generate(stats.NewRNG(seed), etcgen.PaperParams())
	if err != nil {
		t.Fatal(err)
	}
	inst, err := hcs.NewInstance(etc)
	if err != nil {
		t.Fatal(err)
	}
	return inst
}

// tiny instance with a known optimal mapping: 3 tasks, 2 machines.
//
//	ETC:      m0  m1
//	  t0       1  10
//	  t1      10   1
//	  t2       2   2
//
// Optimum: t0→m0, t1→m1, t2→either ⇒ makespan 3.
func tinyInstance(t *testing.T) *hcs.Instance {
	t.Helper()
	inst, err := hcs.NewInstance(etcgen.Matrix{{1, 10}, {10, 1}, {2, 2}})
	if err != nil {
		t.Fatal(err)
	}
	return inst
}

func TestAllProducesValidMappings(t *testing.T) {
	inst := paperInstance(t, 1)
	for _, h := range All() {
		m, err := h.Map(stats.NewRNG(7), inst)
		if err != nil {
			t.Fatalf("%s: %v", h.Name(), err)
		}
		if len(m.Assign) != inst.Applications() {
			t.Fatalf("%s: wrong assignment length", h.Name())
		}
		if m.PredictedMakespan() < LowerBound(inst) {
			t.Fatalf("%s: makespan %v below lower bound %v", h.Name(), m.PredictedMakespan(), LowerBound(inst))
		}
	}
}

func TestDeterminism(t *testing.T) {
	inst := paperInstance(t, 2)
	for _, h := range All() {
		a, err := h.Map(stats.NewRNG(5), inst)
		if err != nil {
			t.Fatal(err)
		}
		b, err := h.Map(stats.NewRNG(5), inst)
		if err != nil {
			t.Fatal(err)
		}
		for i := range a.Assign {
			if a.Assign[i] != b.Assign[i] {
				t.Fatalf("%s: not deterministic for a fixed seed", h.Name())
			}
		}
	}
}

func TestTinyOptimum(t *testing.T) {
	inst := tinyInstance(t)
	// The informed heuristics must find the optimum makespan 3 here.
	for _, h := range []Heuristic{MinMin{}, MaxMin{}, Duplex{}, Sufferage{}, NewGA(GAConfig{}), NewSA(SAConfig{}), NewGSA(GSAConfig{}), NewTabu(TabuConfig{}), NewAStar(AStarConfig{})} {
		m, err := h.Map(stats.NewRNG(3), inst)
		if err != nil {
			t.Fatalf("%s: %v", h.Name(), err)
		}
		if got := m.PredictedMakespan(); got != 3 {
			t.Errorf("%s makespan = %v, want 3", h.Name(), got)
		}
	}
	// MET ignores load: everything lands on its fastest machine.
	m, _ := MET{}.Map(stats.NewRNG(3), inst)
	if m.Assign[0] != 0 || m.Assign[1] != 1 {
		t.Errorf("MET picked slow machines: %v", m.Assign)
	}
}

func TestOLBBalancesCounts(t *testing.T) {
	// With identical ETCs OLB round-robins the load perfectly.
	etc := make(etcgen.Matrix, 10)
	for i := range etc {
		etc[i] = []float64{1, 1}
	}
	inst, _ := hcs.NewInstance(etc)
	m, err := OLB{}.Map(stats.NewRNG(1), inst)
	if err != nil {
		t.Fatal(err)
	}
	if m.Count(0) != 5 || m.Count(1) != 5 {
		t.Errorf("OLB counts = %d,%d", m.Count(0), m.Count(1))
	}
}

func TestMCTNoWorseThanOLBHere(t *testing.T) {
	// On heterogeneous instances MCT (which sees ETCs) should beat OLB
	// (which does not) on the paper's workload.
	inst := paperInstance(t, 3)
	olb, _ := OLB{}.Map(stats.NewRNG(1), inst)
	mct, _ := MCT{}.Map(stats.NewRNG(1), inst)
	if mct.PredictedMakespan() > olb.PredictedMakespan() {
		t.Errorf("MCT %v worse than OLB %v", mct.PredictedMakespan(), olb.PredictedMakespan())
	}
}

func TestDuplexIsBestOfBoth(t *testing.T) {
	inst := paperInstance(t, 4)
	mn, _ := MinMin{}.Map(stats.NewRNG(1), inst)
	mx, _ := MaxMin{}.Map(stats.NewRNG(1), inst)
	dp, _ := Duplex{}.Map(stats.NewRNG(1), inst)
	want := math.Min(mn.PredictedMakespan(), mx.PredictedMakespan())
	if dp.PredictedMakespan() != want {
		t.Errorf("Duplex = %v want %v", dp.PredictedMakespan(), want)
	}
}

func TestSearchHeuristicsAtLeastSeedQuality(t *testing.T) {
	// GA, SA, GSA are seeded with Min-min and keep the best-seen solution,
	// so they can never return something worse than Min-min.
	inst := paperInstance(t, 5)
	mn, _ := MinMin{}.Map(stats.NewRNG(1), inst)
	seedSpan := mn.PredictedMakespan()
	for _, h := range []Heuristic{NewGA(GAConfig{}), NewSA(SAConfig{}), NewGSA(GSAConfig{})} {
		m, err := h.Map(stats.NewRNG(9), inst)
		if err != nil {
			t.Fatal(err)
		}
		if m.PredictedMakespan() > seedSpan+1e-9 {
			t.Errorf("%s makespan %v worse than its Min-min seed %v", h.Name(), m.PredictedMakespan(), seedSpan)
		}
	}
}

func TestAStarBeatsOrMatchesMinMin(t *testing.T) {
	// On a small instance the beam search explores enough of the tree to
	// at least match Min-min.
	etc, _ := etcgen.Generate(stats.NewRNG(6), etcgen.Params{
		Tasks: 8, Machines: 3, MeanTask: 10, TaskHeterogeneity: 0.7, MachineHeterogeneity: 0.7,
	})
	inst, _ := hcs.NewInstance(etc)
	mn, _ := MinMin{}.Map(stats.NewRNG(1), inst)
	as, err := NewAStar(AStarConfig{}).Map(stats.NewRNG(1), inst)
	if err != nil {
		t.Fatal(err)
	}
	if as.PredictedMakespan() > mn.PredictedMakespan()+1e-9 {
		t.Errorf("A* %v worse than Min-min %v", as.PredictedMakespan(), mn.PredictedMakespan())
	}
}

func TestSufferageSingleMachineFallback(t *testing.T) {
	inst, _ := hcs.NewInstance(etcgen.Matrix{{1}, {2}})
	m, err := Sufferage{}.Map(stats.NewRNG(1), inst)
	if err != nil {
		t.Fatal(err)
	}
	if m.Assign[0] != 0 || m.Assign[1] != 0 {
		t.Errorf("single machine mapping = %v", m.Assign)
	}
}

func TestLowerBound(t *testing.T) {
	inst := tinyInstance(t)
	// min ETCs are 1, 1, 2 → sum 4; 4/2 = 2; largest single = 2 → LB 2.
	if lb := LowerBound(inst); lb != 2 {
		t.Errorf("LowerBound = %v", lb)
	}
}

func TestRobustGreedyImprovesRobustness(t *testing.T) {
	// Robust-greedy should usually beat Min-min on ρ while keeping the
	// makespan within τ of it; require it to win on the paper instance.
	inst := paperInstance(t, 7)
	rng := stats.NewRNG(1)
	mn, _ := MinMin{}.Map(rng, inst)
	rg, err := RobustGreedy{Tau: 1.2}.Map(stats.NewRNG(1), inst)
	if err != nil {
		t.Fatal(err)
	}
	mnRes, _ := indalloc.Evaluate(mn, 1.2)
	rgRes, _ := indalloc.Evaluate(rg, 1.2)
	if rgRes.Robustness < mnRes.Robustness {
		t.Errorf("Robust-greedy ρ=%v below Min-min ρ=%v", rgRes.Robustness, mnRes.Robustness)
	}
	if _, err := (RobustGreedy{Tau: 0.5}).Map(stats.NewRNG(1), inst); err == nil {
		t.Errorf("bad tau accepted")
	}
}

func TestRobustGA(t *testing.T) {
	inst := paperInstance(t, 9)
	rg, err := RobustGA{Tau: 1.2}.Map(stats.NewRNG(1), inst)
	if err != nil {
		t.Fatal(err)
	}
	mn, _ := MinMin{}.Map(stats.NewRNG(1), inst)
	spanCap := 1.2 * mn.PredictedMakespan()
	// The GA must respect the makespan cap…
	if rg.PredictedMakespan() > spanCap+1e-9 {
		t.Errorf("RobustGA makespan %v exceeds cap %v", rg.PredictedMakespan(), spanCap)
	}
	// …and at least match the greedy robustness optimiser under the same
	// fixed bound (Eq. 6 against spanCap).
	rhoAgainstCap := func(m *hcs.Mapping) float64 {
		rho := math.Inf(1)
		for j := 0; j < inst.Machines(); j++ {
			n := m.Count(j)
			if n == 0 {
				continue
			}
			f := m.PredictedFinishingTimes()[j]
			if r := (spanCap - f) / math.Sqrt(float64(n)); r < rho {
				rho = r
			}
		}
		return rho
	}
	greedy, err := RobustGreedy{Tau: 1.2}.Map(stats.NewRNG(1), inst)
	if err != nil {
		t.Fatal(err)
	}
	if rhoAgainstCap(rg) < rhoAgainstCap(greedy)-1e-9 {
		t.Errorf("RobustGA ρ=%v below Robust-greedy ρ=%v", rhoAgainstCap(rg), rhoAgainstCap(greedy))
	}
	// Validation.
	if _, err := (RobustGA{Tau: 0.5}).Map(stats.NewRNG(1), inst); err == nil {
		t.Errorf("bad tau accepted")
	}
	if _, err := (RobustGA{Population: 1}).Map(stats.NewRNG(1), inst); err == nil {
		t.Errorf("population 1 accepted")
	}
	// Determinism.
	a, _ := RobustGA{}.Map(stats.NewRNG(3), inst)
	b, _ := RobustGA{}.Map(stats.NewRNG(3), inst)
	for i := range a.Assign {
		if a.Assign[i] != b.Assign[i] {
			t.Fatalf("RobustGA not deterministic")
		}
	}
}

func TestRobustRefineNeverHurtsRobustness(t *testing.T) {
	inst := paperInstance(t, 8)
	seed, _ := MinMin{}.Map(stats.NewRNG(1), inst)
	seedRes, _ := indalloc.Evaluate(seed, 1.2)
	ref, err := RobustRefine{}.Map(stats.NewRNG(1), inst)
	if err != nil {
		t.Fatal(err)
	}
	refRes, _ := indalloc.Evaluate(ref, 1.2)
	if refRes.Robustness < seedRes.Robustness-1e-9 {
		t.Errorf("refinement reduced ρ: %v < %v", refRes.Robustness, seedRes.Robustness)
	}
	// Makespan must respect the τ cap relative to the seed.
	if ref.PredictedMakespan() > 1.2*seed.PredictedMakespan()+1e-9 {
		t.Errorf("refined makespan exceeds τ cap")
	}
	if got := (RobustRefine{}).Name(); got != "Robust-refine(Min-min)" {
		t.Errorf("Name = %q", got)
	}
	if _, err := (RobustRefine{Sweeps: -1}).Map(stats.NewRNG(1), inst); err == nil {
		t.Errorf("negative sweeps accepted")
	}
}

func TestNames(t *testing.T) {
	want := map[string]bool{
		"OLB": true, "MET": true, "MCT": true, "Min-min": true, "Max-min": true,
		"Duplex": true, "GA": true, "SA": true, "GSA": true, "Tabu": true,
		"A*": true, "Sufferage": true,
	}
	for _, h := range All() {
		if !want[h.Name()] {
			t.Errorf("unexpected heuristic name %q", h.Name())
		}
		delete(want, h.Name())
	}
	if len(want) != 0 {
		t.Errorf("missing heuristics: %v", want)
	}
}
