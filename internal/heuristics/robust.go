package heuristics

import (
	"context"
	"fmt"
	"math"
	"sort"

	"fepia/internal/batch"
	"fepia/internal/hcs"
	"fepia/internal/indalloc"
	"fepia/internal/stats"
)

// RobustGreedy maps applications to maximise the paper's robustness metric
// directly instead of minimising makespan. It first obtains a makespan
// target from Min-min (B = τ × Min-min makespan), then assigns
// applications in decreasing minimum-ETC order, each to the machine that
// maximises the resulting minimum per-machine robustness radius
// (B − F_j)/√n_j — a greedy ascent on Eq. 7 with the bound held fixed.
//
// This is the "robustness-first" counterpart the paper's conclusions call
// for: mappings that look slightly worse in makespan but withstand larger
// ETC errors. The ablation benches compare it against the makespan-greedy
// baselines on both metrics.
type RobustGreedy struct {
	// Tau is the tolerance multiplier defining the makespan bound
	// (default 1.2, the §4.2 setting).
	Tau float64
}

// Name returns "Robust-greedy".
func (RobustGreedy) Name() string { return "Robust-greedy" }

// Map implements Heuristic.
func (r RobustGreedy) Map(rng *stats.RNG, inst *hcs.Instance) (*hcs.Mapping, error) {
	tau := r.Tau
	if tau == 0 {
		tau = 1.2
	}
	if !(tau >= 1) || math.IsInf(tau, 0) {
		return nil, fmt.Errorf("heuristics: RobustGreedy tau = %v must be finite and ≥ 1", tau)
	}
	seed, err := (MinMin{}).Map(rng, inst)
	if err != nil {
		return nil, err
	}
	bound := tau * seed.PredictedMakespan()

	n := inst.Applications()
	machines := inst.Machines()
	// Assign in decreasing minimum-ETC order: big rocks first.
	order := make([]int, n)
	minETC := make([]float64, n)
	for i := range order {
		order[i] = i
		best := math.Inf(1)
		for j := 0; j < machines; j++ {
			if c := inst.ETC(i, j); c < best {
				best = c
			}
		}
		minETC[i] = best
	}
	sortDescending(order, minETC)

	finish := make([]float64, machines)
	counts := make([]int, machines)
	assign := make([]int, n)
	for _, i := range order {
		bestJ := -1
		bestRho := math.Inf(-1)
		for j := 0; j < machines; j++ {
			// Tentative assignment of i to j; the resulting metric is the
			// minimum radius over machines.
			rho := math.Inf(1)
			for k := 0; k < machines; k++ {
				f, c := finish[k], counts[k]
				if k == j {
					f += inst.ETC(i, j)
					c++
				}
				if c == 0 {
					continue
				}
				if radius := (bound - f) / math.Sqrt(float64(c)); radius < rho {
					rho = radius
				}
			}
			if rho > bestRho {
				bestRho, bestJ = rho, j
			}
		}
		assign[i] = bestJ
		finish[bestJ] += inst.ETC(i, bestJ)
		counts[bestJ]++
	}
	return hcs.NewMapping(inst, assign)
}

// RobustRefine starts from another heuristic's mapping and hill-climbs the
// robustness metric of §3.1 with single-application reassignments while
// never letting the makespan exceed τ times the seed heuristic's predicted
// makespan — a post-pass that trades slack for robustness.
type RobustRefine struct {
	// Seed is the heuristic whose mapping is refined (default Min-min).
	Seed Heuristic
	// Tau is the makespan tolerance (default 1.2).
	Tau float64
	// Sweeps bounds the number of full improvement sweeps (default 20).
	Sweeps int
}

// Name identifies the refinement and its seed.
func (r RobustRefine) Name() string {
	seed := r.Seed
	if seed == nil {
		seed = MinMin{}
	}
	return "Robust-refine(" + seed.Name() + ")"
}

// Map implements Heuristic.
func (r RobustRefine) Map(rng *stats.RNG, inst *hcs.Instance) (*hcs.Mapping, error) {
	seed := r.Seed
	if seed == nil {
		seed = MinMin{}
	}
	tau := r.Tau
	if tau == 0 {
		tau = 1.2
	}
	sweeps := r.Sweeps
	if sweeps == 0 {
		sweeps = 20
	}
	if sweeps < 0 {
		return nil, fmt.Errorf("heuristics: RobustRefine sweeps = %d must be positive", sweeps)
	}
	m, err := seed.Map(rng, inst)
	if err != nil {
		return nil, err
	}
	res, err := indalloc.Evaluate(m, tau)
	if err != nil {
		return nil, err
	}
	spanCap := tau * m.PredictedMakespan()
	cur := m.Clone()
	curRho := res.Robustness

	for sweep := 0; sweep < sweeps; sweep++ {
		improved := false
		for i := 0; i < inst.Applications(); i++ {
			old := cur.Assign[i]
			for j := 0; j < inst.Machines(); j++ {
				if j == old {
					continue
				}
				cur.Assign[i] = j
				if cur.PredictedMakespan() > spanCap {
					cur.Assign[i] = old
					continue
				}
				cand, err := indalloc.Evaluate(cur, tau)
				if err != nil {
					cur.Assign[i] = old
					return nil, err
				}
				if cand.Robustness > curRho {
					curRho = cand.Robustness
					old = j
					improved = true
				} else {
					cur.Assign[i] = old
					continue
				}
			}
			cur.Assign[i] = old
		}
		if !improved {
			break
		}
	}
	return cur, nil
}

// RobustGA is a genetic algorithm whose fitness is the robustness metric
// itself, with a makespan cap as a hard constraint: chromosomes whose
// makespan exceeds τ times the Min-min makespan are penalised below every
// feasible solution. Where RobustGreedy commits greedily and RobustRefine
// hill-climbs, RobustGA searches globally — the ablation's strongest
// robustness optimiser.
type RobustGA struct {
	// Tau is the makespan tolerance defining the cap (default 1.2).
	Tau float64
	// Population (48) and Generations (150) bound the search; zero values
	// select the defaults.
	Population, Generations int
}

// Name returns "Robust-GA".
func (RobustGA) Name() string { return "Robust-GA" }

// Map implements Heuristic.
func (g RobustGA) Map(rng *stats.RNG, inst *hcs.Instance) (*hcs.Mapping, error) {
	tau := g.Tau
	if tau == 0 {
		tau = 1.2
	}
	if !(tau >= 1) || math.IsInf(tau, 0) {
		return nil, fmt.Errorf("heuristics: RobustGA tau = %v must be finite and ≥ 1", tau)
	}
	pop := g.Population
	if pop == 0 {
		pop = 48
	}
	gens := g.Generations
	if gens == 0 {
		gens = 150
	}
	if pop < 2 || gens < 1 {
		return nil, fmt.Errorf("heuristics: RobustGA population %d / generations %d invalid", pop, gens)
	}

	seed, err := (MinMin{}).Map(rng, inst)
	if err != nil {
		return nil, err
	}
	spanCap := tau * seed.PredictedMakespan()
	n := inst.Applications()
	machines := inst.Machines()

	// Fitness: ρ of the mapping when feasible; −makespan overage when not
	// (so infeasible solutions still rank by how close they are).
	fitness := func(assign []int) float64 {
		span := makespanOf(inst, assign)
		if span > spanCap {
			return -(span - spanCap)
		}
		// ρ via Eq. 6 directly against the fixed cap (cheaper than
		// building a Mapping, and a fixed bound keeps fitness comparable
		// across chromosomes).
		finish := make([]float64, machines)
		counts := make([]int, machines)
		for i, j := range assign {
			finish[j] += inst.ETC(i, j)
			counts[j]++
		}
		rho := math.Inf(1)
		for j := 0; j < machines; j++ {
			if counts[j] == 0 {
				continue
			}
			if r := (spanCap - finish[j]) / math.Sqrt(float64(counts[j])); r < rho {
				rho = r
			}
		}
		return rho
	}

	population := make([][]int, pop)
	population[0] = append([]int(nil), seed.Assign...)
	for p := 1; p < pop; p++ {
		c := make([]int, n)
		for i := range c {
			c[i] = rng.Intn(machines)
		}
		population[p] = c
	}
	best := append([]int(nil), seed.Assign...)
	bestFit := fitness(best)

	for gen := 0; gen < gens; gen++ {
		scores := make([]float64, pop)
		order := make([]int, pop)
		// Fitness is a pure function of the chromosome, so the population
		// evaluates concurrently over the batch engine's worker pool;
		// scores land in chromosome order, keeping selection (and hence
		// the whole GA trajectory) identical to a sequential evaluation.
		_ = batch.ForEach(context.Background(), pop, 0, func(p int) error {
			scores[p] = fitness(population[p])
			return nil
		})
		for p := range order {
			order[p] = p
		}
		sort.Slice(order, func(a, b int) bool { return scores[order[a]] > scores[order[b]] })
		if s := scores[order[0]]; s > bestFit {
			bestFit = s
			copy(best, population[order[0]])
		}
		next := make([][]int, 0, pop)
		next = append(next, append([]int(nil), population[order[0]]...))
		for len(next) < pop {
			a := population[order[rankPick(rng, pop)]]
			b := population[order[rankPick(rng, pop)]]
			child := append([]int(nil), a...)
			if n > 1 && rng.Float64() < 0.6 {
				cut := 1 + rng.Intn(n-1)
				copy(child[cut:], b[cut:])
			}
			for i := range child {
				if rng.Float64() < 0.04 {
					child[i] = rng.Intn(machines)
				}
			}
			next = append(next, child)
		}
		population = next
	}
	if bestFit < 0 {
		// Never found a feasible improvement: the Min-min seed is always
		// feasible, so this cannot happen; guard anyway.
		return seed, nil
	}
	return hcs.NewMapping(inst, best)
}

// sortDescending sorts idx by decreasing key values (insertion sort; the
// slices here are small).
func sortDescending(idx []int, key []float64) {
	for i := 1; i < len(idx); i++ {
		for j := i; j > 0 && key[idx[j]] > key[idx[j-1]]; j-- {
			idx[j], idx[j-1] = idx[j-1], idx[j]
		}
	}
}
