package heuristics

import (
	"fepia/internal/hcs"
	"fepia/internal/stats"
)

// TabuConfig tunes tabu search. Zero values select defaults in
// parentheses.
type TabuConfig struct {
	// Hops is the total short-hop budget (10000).
	Hops int
	// LongHopAfter forces a random restart (long hop) after this many
	// consecutive unimproving short hops (500).
	LongHopAfter int
	// TabuCapacity bounds the tabu list of visited machine-assignment
	// regions (32).
	TabuCapacity int
}

// Tabu is the tabu search of Braun et al.: steepest-descent short hops
// (single-application reassignments), and when the neighbourhood is
// exhausted, a long hop to an unvisited region of the solution space; the
// per-machine load signature of each long-hop start is kept in the tabu
// list so restarts spread out.
type Tabu struct {
	cfg TabuConfig
}

// NewTabu builds a Tabu with defaults applied.
func NewTabu(cfg TabuConfig) Tabu {
	if cfg.Hops == 0 {
		cfg.Hops = 10000
	}
	if cfg.LongHopAfter == 0 {
		cfg.LongHopAfter = 500
	}
	if cfg.TabuCapacity == 0 {
		cfg.TabuCapacity = 32
	}
	return Tabu{cfg: cfg}
}

// Name returns "Tabu".
func (Tabu) Name() string { return "Tabu" }

// signature summarises a mapping by its per-machine application counts —
// the region descriptor stored in the tabu list.
func signature(assign []int, machines int) string {
	counts := make([]byte, machines)
	for _, j := range assign {
		counts[j]++
	}
	return string(counts)
}

// Map implements Heuristic.
func (t Tabu) Map(rng *stats.RNG, inst *hcs.Instance) (*hcs.Mapping, error) {
	n := inst.Applications()
	machines := inst.Machines()

	cur := make([]int, n)
	for i := range cur {
		cur[i] = rng.Intn(machines)
	}
	curSpan := makespanOf(inst, cur)
	best := append([]int(nil), cur...)
	bestSpan := curSpan

	tabu := make(map[string]bool, t.cfg.TabuCapacity)
	var tabuOrder []string
	remember := func(sig string) {
		if tabu[sig] {
			return
		}
		tabu[sig] = true
		tabuOrder = append(tabuOrder, sig)
		if len(tabuOrder) > t.cfg.TabuCapacity {
			delete(tabu, tabuOrder[0])
			tabuOrder = tabuOrder[1:]
		}
	}
	remember(signature(cur, machines))

	sinceImprove := 0
	for hop := 0; hop < t.cfg.Hops; hop++ {
		// Short hop: best single reassignment in the neighbourhood.
		improved := false
		bi, bj := -1, -1
		bSpan := curSpan
		for i := 0; i < n; i++ {
			old := cur[i]
			for j := 0; j < machines; j++ {
				if j == old {
					continue
				}
				cur[i] = j
				if s := makespanOf(inst, cur); s < bSpan {
					bSpan, bi, bj = s, i, j
					improved = true
				}
			}
			cur[i] = old
		}
		if improved {
			cur[bi] = bj
			curSpan = bSpan
			sinceImprove = 0
			if curSpan < bestSpan {
				bestSpan = curSpan
				copy(best, cur)
			}
			continue
		}
		// Local minimum: long hop to a non-tabu region.
		sinceImprove++
		if sinceImprove < t.cfg.LongHopAfter {
			// Small perturbation to escape plateaus between long hops.
			cur[rng.Intn(n)] = rng.Intn(machines)
			curSpan = makespanOf(inst, cur)
			continue
		}
		sinceImprove = 0
		for tries := 0; tries < 64; tries++ {
			for i := range cur {
				cur[i] = rng.Intn(machines)
			}
			if sig := signature(cur, machines); !tabu[sig] {
				remember(sig)
				break
			}
		}
		curSpan = makespanOf(inst, cur)
		if curSpan < bestSpan {
			bestSpan = curSpan
			copy(best, cur)
		}
	}
	return hcs.NewMapping(inst, best)
}
