package heuristics

import (
	"math"
	"sort"

	"fepia/internal/hcs"
	"fepia/internal/stats"
)

// GAConfig tunes the genetic algorithm. Zero values select the defaults in
// parentheses, scaled down from Braun et al.'s 200×1000 budget to keep the
// full suite fast in tests while preserving the algorithm's structure.
type GAConfig struct {
	// Population size (64).
	Population int
	// Generations bound (200).
	Generations int
	// CrossoverProb is the per-pair crossover probability (0.6).
	CrossoverProb float64
	// MutationProb is the per-gene mutation probability (0.04).
	MutationProb float64
	// StopAfter stops early after this many generations without
	// improvement of the elite (50).
	StopAfter int
}

// GA is the genetic algorithm of Braun et al.: chromosomes are assignment
// vectors, fitness is (negative) makespan, selection is rank-based with
// elitism, crossover is single-point, and the population is seeded with
// the Min-min solution plus random mappings.
type GA struct {
	cfg GAConfig
}

// NewGA builds a GA with defaults applied.
func NewGA(cfg GAConfig) GA {
	if cfg.Population == 0 {
		cfg.Population = 64
	}
	if cfg.Generations == 0 {
		cfg.Generations = 200
	}
	if cfg.CrossoverProb == 0 {
		cfg.CrossoverProb = 0.6
	}
	if cfg.MutationProb == 0 {
		cfg.MutationProb = 0.04
	}
	if cfg.StopAfter == 0 {
		cfg.StopAfter = 50
	}
	return GA{cfg: cfg}
}

// Name returns "GA".
func (GA) Name() string { return "GA" }

// Map implements Heuristic.
func (g GA) Map(rng *stats.RNG, inst *hcs.Instance) (*hcs.Mapping, error) {
	n := inst.Applications()
	machines := inst.Machines()
	pop := make([][]int, g.cfg.Population)
	// Seed with Min-min (Braun et al. report seeding helps substantially).
	seed, err := minMinMaxMin(inst, false)
	if err != nil {
		return nil, err
	}
	pop[0] = seed
	for p := 1; p < len(pop); p++ {
		c := make([]int, n)
		for i := range c {
			c[i] = rng.Intn(machines)
		}
		pop[p] = c
	}

	best := append([]int(nil), pop[0]...)
	bestSpan := makespanOf(inst, best)
	stall := 0
	scores := make([]float64, len(pop))
	order := make([]int, len(pop))

	for gen := 0; gen < g.cfg.Generations && stall < g.cfg.StopAfter; gen++ {
		for p := range pop {
			scores[p] = makespanOf(inst, pop[p])
			order[p] = p
		}
		sort.Slice(order, func(a, b int) bool { return scores[order[a]] < scores[order[b]] })
		if s := scores[order[0]]; s < bestSpan {
			bestSpan = s
			copy(best, pop[order[0]])
			stall = 0
		} else {
			stall++
		}
		// Next generation: elite passes through; parents picked by rank
		// (linear bias towards the front of the sorted order).
		next := make([][]int, 0, len(pop))
		next = append(next, append([]int(nil), pop[order[0]]...))
		for len(next) < len(pop) {
			a := pop[order[rankPick(rng, len(pop))]]
			b := pop[order[rankPick(rng, len(pop))]]
			child := append([]int(nil), a...)
			if rng.Float64() < g.cfg.CrossoverProb && n > 1 {
				cut := 1 + rng.Intn(n-1)
				copy(child[cut:], b[cut:])
			}
			for i := range child {
				if rng.Float64() < g.cfg.MutationProb {
					child[i] = rng.Intn(machines)
				}
			}
			next = append(next, child)
		}
		pop = next
	}
	return hcs.NewMapping(inst, best)
}

// rankPick returns an index in [0,n) biased quadratically towards 0 (the
// best rank).
func rankPick(rng *stats.RNG, n int) int {
	u := rng.Float64()
	return int(u * u * float64(n))
}

// SAConfig tunes simulated annealing. Zero values select defaults in
// parentheses.
type SAConfig struct {
	// Iterations is the mutation budget (20000).
	Iterations int
	// Cooling is the geometric temperature factor applied every
	// iteration (0.99 per 100 iterations, i.e. 0.99^(1/100) per step).
	Cooling float64
	// InitialTempFactor scales the starting temperature relative to the
	// seed makespan (0.1).
	InitialTempFactor float64
}

// SA is the simulated-annealing mapper: start from Min-min, propose single
// reassignments, accept uphill moves with Boltzmann probability under a
// geometric cooling schedule.
type SA struct {
	cfg SAConfig
}

// NewSA builds an SA with defaults applied.
func NewSA(cfg SAConfig) SA {
	if cfg.Iterations == 0 {
		cfg.Iterations = 20000
	}
	if cfg.Cooling == 0 {
		cfg.Cooling = math.Pow(0.99, 1.0/100)
	}
	if cfg.InitialTempFactor == 0 {
		cfg.InitialTempFactor = 0.1
	}
	return SA{cfg: cfg}
}

// Name returns "SA".
func (SA) Name() string { return "SA" }

// Map implements Heuristic.
func (s SA) Map(rng *stats.RNG, inst *hcs.Instance) (*hcs.Mapping, error) {
	n := inst.Applications()
	machines := inst.Machines()
	cur, err := minMinMaxMin(inst, false)
	if err != nil {
		return nil, err
	}
	curSpan := makespanOf(inst, cur)
	best := append([]int(nil), cur...)
	bestSpan := curSpan

	temp := s.cfg.InitialTempFactor * curSpan
	for it := 0; it < s.cfg.Iterations; it++ {
		i := rng.Intn(n)
		old := cur[i]
		next := rng.Intn(machines)
		if next == old {
			continue
		}
		cur[i] = next
		span := makespanOf(inst, cur)
		delta := span - curSpan
		if delta <= 0 || (temp > 0 && rng.Float64() < math.Exp(-delta/temp)) {
			curSpan = span
			if span < bestSpan {
				bestSpan = span
				copy(best, cur)
			}
		} else {
			cur[i] = old
		}
		temp *= s.cfg.Cooling
	}
	return hcs.NewMapping(inst, best)
}

// GSAConfig tunes the genetic simulated annealing hybrid.
type GSAConfig struct {
	// Population size (48).
	Population int
	// Generations bound (150).
	Generations int
	// CrossoverProb (0.6) and MutationProb (0.04) as in GA.
	CrossoverProb, MutationProb float64
	// InitialTempFactor scales the starting temperature relative to the
	// seed makespan (0.1); the temperature decays 10% per generation as in
	// Braun et al.
	InitialTempFactor float64
}

// GSA is the GA/SA hybrid of Braun et al.: GA operators, but offspring
// compete with their parents under a simulated-annealing acceptance test
// instead of rank selection.
type GSA struct {
	cfg GSAConfig
}

// NewGSA builds a GSA with defaults applied.
func NewGSA(cfg GSAConfig) GSA {
	if cfg.Population == 0 {
		cfg.Population = 48
	}
	if cfg.Generations == 0 {
		cfg.Generations = 150
	}
	if cfg.CrossoverProb == 0 {
		cfg.CrossoverProb = 0.6
	}
	if cfg.MutationProb == 0 {
		cfg.MutationProb = 0.04
	}
	if cfg.InitialTempFactor == 0 {
		cfg.InitialTempFactor = 0.1
	}
	return GSA{cfg: cfg}
}

// Name returns "GSA".
func (GSA) Name() string { return "GSA" }

// Map implements Heuristic.
func (g GSA) Map(rng *stats.RNG, inst *hcs.Instance) (*hcs.Mapping, error) {
	n := inst.Applications()
	machines := inst.Machines()
	pop := make([][]int, g.cfg.Population)
	seed, err := minMinMaxMin(inst, false)
	if err != nil {
		return nil, err
	}
	pop[0] = seed
	for p := 1; p < len(pop); p++ {
		c := make([]int, n)
		for i := range c {
			c[i] = rng.Intn(machines)
		}
		pop[p] = c
	}
	best := append([]int(nil), seed...)
	bestSpan := makespanOf(inst, best)
	temp := g.cfg.InitialTempFactor * bestSpan

	for gen := 0; gen < g.cfg.Generations; gen++ {
		for p := range pop {
			parent := pop[p]
			mate := pop[rng.Intn(len(pop))]
			child := append([]int(nil), parent...)
			if rng.Float64() < g.cfg.CrossoverProb && n > 1 {
				cut := 1 + rng.Intn(n-1)
				copy(child[cut:], mate[cut:])
			}
			for i := range child {
				if rng.Float64() < g.cfg.MutationProb {
					child[i] = rng.Intn(machines)
				}
			}
			ps := makespanOf(inst, parent)
			cs := makespanOf(inst, child)
			// SA acceptance: the child replaces the parent when better, or
			// probabilistically when worse.
			if cs <= ps || (temp > 0 && rng.Float64() < math.Exp(-(cs-ps)/temp)) {
				pop[p] = child
				if cs < bestSpan {
					bestSpan = cs
					copy(best, child)
				}
			}
		}
		temp *= 0.9
	}
	return hcs.NewMapping(inst, best)
}
