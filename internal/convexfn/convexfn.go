// Package convexfn provides componentwise-convex, monotone scalar
// functions built from the forms §3.2 of the paper lists as admissible
// complexity functions — linear terms, powers x^p (p ≥ 1), exponentials
// e^{px} (p > 0), and x·log x — together with exact gradients. They serve
// as impact functions wherever a convex, non-decreasing dependence on a
// non-negative parameter vector is needed: the HiPer-D computation-time
// model and the generic JSON system specifications both build on it.
package convexfn

import (
	"fmt"
	"math"
	"strings"
)

// TermKind enumerates the complexity-function building blocks §3.2 lists
// as convex over positive loads: linear terms, powers x^p with p ≥ 1,
// exponentials e^{px} with p > 0, and x·log x. Positive multiples and sums
// of convex functions are convex, so any Complexity built from these terms
// is convex — the analysis can then trust the convex solver's global
// minimum, exactly as the paper argues.
type TermKind int

const (
	// LinearTerm contributes coeff·λ_z.
	LinearTerm TermKind = iota
	// PowerTerm contributes coeff·λ_z^P (P ≥ 1).
	PowerTerm
	// ExpTerm contributes coeff·(e^{P·λ_z} − 1) (P > 0; the −1 keeps the
	// value 0 at zero load).
	ExpTerm
	// XLogXTerm contributes coeff·λ_z·log(1+λ_z) (the +1 keeps it finite
	// and convex at zero load).
	XLogXTerm
)

// String names the kind.
func (k TermKind) String() string {
	switch k {
	case LinearTerm:
		return "linear"
	case PowerTerm:
		return "power"
	case ExpTerm:
		return "exp"
	case XLogXTerm:
		return "xlogx"
	default:
		return fmt.Sprintf("TermKind(%d)", int(k))
	}
}

// Term is one additive piece of a complexity function, depending on a
// single sensor's load.
type Term struct {
	// Kind selects the functional form.
	Kind TermKind
	// Index is the load index λ_z the term depends on.
	Index int
	// Coeff is the non-negative multiplier.
	Coeff float64
	// P is the power/rate parameter (PowerTerm, ExpTerm; ignored
	// otherwise).
	P float64
}

// Validate checks convexity and monotonicity requirements.
func (t Term) Validate(dim int) error {
	if t.Index < 0 || t.Index >= dim {
		return fmt.Errorf("convexfn: term index %d out of range [0,%d)", t.Index, dim)
	}
	if t.Coeff < 0 || math.IsNaN(t.Coeff) || math.IsInf(t.Coeff, 0) {
		return fmt.Errorf("convexfn: term coefficient %v must be finite and ≥ 0", t.Coeff)
	}
	switch t.Kind {
	case LinearTerm, XLogXTerm:
	case PowerTerm:
		if !(t.P >= 1) {
			return fmt.Errorf("convexfn: power term exponent %v must be ≥ 1 for convexity", t.P)
		}
	case ExpTerm:
		if !(t.P > 0) {
			return fmt.Errorf("convexfn: exp term rate %v must be > 0", t.P)
		}
	default:
		return fmt.Errorf("convexfn: unknown term kind %d", int(t.Kind))
	}
	return nil
}

// Eval returns the term's value at load vector lambda.
func (t Term) Eval(lambda []float64) float64 {
	x := lambda[t.Index]
	switch t.Kind {
	case LinearTerm:
		return t.Coeff * x
	case PowerTerm:
		if x <= 0 {
			return 0
		}
		return t.Coeff * math.Pow(x, t.P)
	case ExpTerm:
		return t.Coeff * (math.Exp(t.P*x) - 1)
	case XLogXTerm:
		if x <= 0 {
			return 0
		}
		return t.Coeff * x * math.Log(1+x)
	default:
		return math.NaN()
	}
}

// Deriv returns d(term)/dλ_z at lambda (for the term's own sensor).
func (t Term) Deriv(lambda []float64) float64 {
	x := lambda[t.Index]
	switch t.Kind {
	case LinearTerm:
		return t.Coeff
	case PowerTerm:
		if x <= 0 {
			if t.P == 1 {
				return t.Coeff
			}
			return 0
		}
		return t.Coeff * t.P * math.Pow(x, t.P-1)
	case ExpTerm:
		return t.Coeff * t.P * math.Exp(t.P*x)
	case XLogXTerm:
		if x <= 0 {
			return 0
		}
		return t.Coeff * (math.Log(1+x) + x/(1+x))
	default:
		return math.NaN()
	}
}

// String renders the term in the paper's notation, e.g. "3.2λ1^2".
func (t Term) String() string {
	z := t.Index + 1
	switch t.Kind {
	case LinearTerm:
		return fmt.Sprintf("%.3gλ%d", t.Coeff, z)
	case PowerTerm:
		return fmt.Sprintf("%.3gλ%d^%.3g", t.Coeff, z, t.P)
	case ExpTerm:
		return fmt.Sprintf("%.3g(e^{%.3gλ%d}−1)", t.Coeff, t.P, z)
	case XLogXTerm:
		return fmt.Sprintf("%.3gλ%d·log(1+λ%d)", t.Coeff, z, z)
	default:
		return "?"
	}
}

// Complexity is a sum of terms — a convex, componentwise non-decreasing
// function of the load vector.
type Complexity []Term

// Validate checks every term.
func (c Complexity) Validate(dim int) error {
	for i, t := range c {
		if err := t.Validate(dim); err != nil {
			return fmt.Errorf("term %d: %w", i, err)
		}
	}
	return nil
}

// Eval returns Σ term values at lambda.
func (c Complexity) Eval(lambda []float64) float64 {
	var sum float64
	for _, t := range c {
		sum += t.Eval(lambda)
	}
	return sum
}

// Gradient accumulates the complexity's gradient into dst (allocating when
// nil) and returns it.
func (c Complexity) Gradient(dst, lambda []float64) []float64 {
	if len(dst) != len(lambda) {
		dst = make([]float64, len(lambda))
	} else {
		for i := range dst {
			dst[i] = 0
		}
	}
	for _, t := range c {
		dst[t.Index] += t.Deriv(lambda)
	}
	return dst
}

// IsLinear reports whether every term is linear, in which case the
// analysis can use the exact hyperplane path.
func (c Complexity) IsLinear() bool {
	for _, t := range c {
		if t.Kind != LinearTerm {
			return false
		}
	}
	return true
}

// LinearCoeffs returns the coefficient vector of a linear complexity.
// It panics when IsLinear is false.
func (c Complexity) LinearCoeffs(dim int) []float64 {
	out := make([]float64, dim)
	for _, t := range c {
		if t.Kind != LinearTerm {
			panic("convexfn: LinearCoeffs on a non-linear complexity")
		}
		out[t.Index] += t.Coeff
	}
	return out
}

// Scale multiplies every coefficient by s (used by the generator's
// calibration; every term kind scales linearly in its coefficient).
func (c Complexity) Scale(s float64) {
	for i := range c {
		c[i].Coeff *= s
	}
}

// String renders the sum, e.g. "3λ1 + 0.2λ2^2".
func (c Complexity) String() string {
	if len(c) == 0 {
		return "0"
	}
	parts := make([]string, len(c))
	for i, t := range c {
		parts[i] = t.String()
	}
	return strings.Join(parts, " + ")
}

// LinearComplexity builds a Complexity from a plain coefficient vector,
// omitting zero entries.
func LinearComplexity(coeffs []float64) Complexity {
	var c Complexity
	for z, b := range coeffs {
		if b != 0 {
			c = append(c, Term{Kind: LinearTerm, Index: z, Coeff: b})
		}
	}
	return c
}
