package convexfn

import (
	"math"
	"testing"
	"testing/quick"

	"fepia/internal/stats"
)

// TestQuickConvexityAndMonotonicity checks the package's defining
// contract on random instances: every Complexity built from valid terms is
// midpoint-convex and componentwise non-decreasing over the non-negative
// orthant.
func TestQuickConvexityAndMonotonicity(t *testing.T) {
	rng := stats.NewRNG(1)
	randomComplexity := func(dim int) Complexity {
		n := 1 + rng.Intn(4)
		c := make(Complexity, 0, n)
		for i := 0; i < n; i++ {
			term := Term{Index: rng.Intn(dim), Coeff: rng.Float64() * 3}
			switch rng.Intn(4) {
			case 0:
				term.Kind = LinearTerm
			case 1:
				term.Kind = PowerTerm
				term.P = 1 + rng.Float64()*2
			case 2:
				term.Kind = ExpTerm
				term.P = 0.01 + rng.Float64()*0.1
			default:
				term.Kind = XLogXTerm
			}
			c = append(c, term)
		}
		return c
	}
	f := func(struct{}) bool {
		const dim = 3
		c := randomComplexity(dim)
		if err := c.Validate(dim); err != nil {
			return false
		}
		x := make([]float64, dim)
		y := make([]float64, dim)
		for i := 0; i < dim; i++ {
			x[i] = rng.Float64() * 20
			y[i] = rng.Float64() * 20
		}
		mid := make([]float64, dim)
		for i := range mid {
			mid[i] = 0.5 * (x[i] + y[i])
		}
		// Midpoint convexity.
		if c.Eval(mid) > 0.5*(c.Eval(x)+c.Eval(y))+1e-9 {
			return false
		}
		// Monotonicity: increasing one component never decreases f.
		bumped := append([]float64(nil), x...)
		bumped[rng.Intn(dim)] += rng.Float64() * 5
		return c.Eval(bumped) >= c.Eval(x)-1e-12
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Error(err)
	}
}

func TestQuickGradientMatchesFiniteDifference(t *testing.T) {
	rng := stats.NewRNG(2)
	f := func(struct{}) bool {
		const dim = 2
		c := Complexity{
			{Kind: PowerTerm, Index: 0, Coeff: 1 + rng.Float64(), P: 1 + rng.Float64()*2},
			{Kind: ExpTerm, Index: 1, Coeff: rng.Float64(), P: 0.01 + rng.Float64()*0.05},
			{Kind: XLogXTerm, Index: 0, Coeff: rng.Float64()},
		}
		x := []float64{1 + rng.Float64()*10, 1 + rng.Float64()*10}
		g := c.Gradient(nil, x)
		const h = 1e-6
		for i := range x {
			up := append([]float64(nil), x...)
			dn := append([]float64(nil), x...)
			up[i] += h
			dn[i] -= h
			fd := (c.Eval(up) - c.Eval(dn)) / (2 * h)
			if math.Abs(fd-g[i]) > 1e-3*(1+math.Abs(fd)) {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Error(err)
	}
}

func TestGradientReuseAndReset(t *testing.T) {
	c := Complexity{{Kind: LinearTerm, Index: 0, Coeff: 2}}
	buf := []float64{99, 99}
	g := c.Gradient(buf, []float64{1, 1})
	if &g[0] != &buf[0] {
		t.Errorf("gradient did not reuse the buffer")
	}
	if g[0] != 2 || g[1] != 0 {
		t.Errorf("stale buffer contents leaked: %v", g)
	}
}

func TestValidateAndRendering(t *testing.T) {
	bad := []Term{
		{Kind: LinearTerm, Index: -1, Coeff: 1},
		{Kind: LinearTerm, Index: 3, Coeff: 1},
		{Kind: LinearTerm, Index: 0, Coeff: -1},
		{Kind: LinearTerm, Index: 0, Coeff: math.Inf(1)},
		{Kind: PowerTerm, Index: 0, Coeff: 1, P: 0.9},
		{Kind: ExpTerm, Index: 0, Coeff: 1, P: -1},
		{Kind: TermKind(77), Index: 0, Coeff: 1},
	}
	for i, term := range bad {
		if err := term.Validate(3); err == nil {
			t.Errorf("bad term %d accepted", i)
		}
	}
	if err := (Complexity{bad[0]}).Validate(3); err == nil {
		t.Errorf("complexity with bad term accepted")
	}
	for _, k := range []TermKind{LinearTerm, PowerTerm, ExpTerm, XLogXTerm, TermKind(7)} {
		if k.String() == "" {
			t.Errorf("empty kind string")
		}
	}
	terms := Complexity{
		{Kind: LinearTerm, Index: 0, Coeff: 1},
		{Kind: PowerTerm, Index: 1, Coeff: 2, P: 2},
		{Kind: ExpTerm, Index: 0, Coeff: 1, P: 0.1},
		{Kind: XLogXTerm, Index: 1, Coeff: 1},
		{Kind: TermKind(7), Index: 0, Coeff: 1},
	}
	for _, term := range terms {
		if term.String() == "" {
			t.Errorf("empty term rendering")
		}
	}
	if (Complexity{}).String() != "0" {
		t.Errorf("empty complexity rendering")
	}
	// Unknown kinds evaluate to NaN rather than silently to zero.
	if !math.IsNaN(terms[4].Eval([]float64{1, 1})) || !math.IsNaN(terms[4].Deriv([]float64{1, 1})) {
		t.Errorf("unknown kind should evaluate to NaN")
	}
}

func TestLinearCoeffsAndIsLinear(t *testing.T) {
	c := LinearComplexity([]float64{2, 0, 3})
	if len(c) != 2 || !c.IsLinear() {
		t.Fatalf("LinearComplexity = %v", c)
	}
	coeffs := c.LinearCoeffs(3)
	if coeffs[0] != 2 || coeffs[1] != 0 || coeffs[2] != 3 {
		t.Errorf("round trip = %v", coeffs)
	}
	nl := Complexity{{Kind: ExpTerm, Index: 0, Coeff: 1, P: 1}}
	if nl.IsLinear() {
		t.Errorf("exp misclassified as linear")
	}
	defer func() {
		if recover() == nil {
			t.Errorf("LinearCoeffs on nonlinear should panic")
		}
	}()
	nl.LinearCoeffs(1)
}

func TestScaleLinearityAcrossKinds(t *testing.T) {
	c := Complexity{
		{Kind: LinearTerm, Index: 0, Coeff: 1},
		{Kind: PowerTerm, Index: 0, Coeff: 1, P: 2},
		{Kind: ExpTerm, Index: 0, Coeff: 1, P: 0.1},
		{Kind: XLogXTerm, Index: 0, Coeff: 1},
	}
	x := []float64{7}
	before := c.Eval(x)
	c.Scale(2.5)
	if after := c.Eval(x); math.Abs(after-2.5*before) > 1e-9*after {
		t.Errorf("Scale is not linear: %v vs %v", after, 2.5*before)
	}
}
