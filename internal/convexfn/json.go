package convexfn

import (
	"encoding/json"
	"fmt"
)

// termJSON is the wire form of a Term: the kind as a string plus the
// numeric fields, e.g. {"kind":"power","index":0,"coeff":2.5,"p":2}.
type termJSON struct {
	Kind  string  `json:"kind"`
	Index int     `json:"index"`
	Coeff float64 `json:"coeff"`
	P     float64 `json:"p,omitempty"`
}

// KindName returns the JSON string for a kind ("linear", "power", "exp",
// "xlogx"), or an error for unknown kinds.
func KindName(k TermKind) (string, error) {
	switch k {
	case LinearTerm:
		return "linear", nil
	case PowerTerm:
		return "power", nil
	case ExpTerm:
		return "exp", nil
	case XLogXTerm:
		return "xlogx", nil
	default:
		return "", fmt.Errorf("convexfn: unknown term kind %d", int(k))
	}
}

// ParseKind is the inverse of KindName.
func ParseKind(s string) (TermKind, error) {
	switch s {
	case "linear":
		return LinearTerm, nil
	case "power":
		return PowerTerm, nil
	case "exp":
		return ExpTerm, nil
	case "xlogx":
		return XLogXTerm, nil
	default:
		return 0, fmt.Errorf("convexfn: unknown term kind %q (want linear, power, exp, or xlogx)", s)
	}
}

// MarshalJSON encodes the term with its kind as a string.
func (t Term) MarshalJSON() ([]byte, error) {
	name, err := KindName(t.Kind)
	if err != nil {
		return nil, err
	}
	return json.Marshal(termJSON{Kind: name, Index: t.Index, Coeff: t.Coeff, P: t.P})
}

// UnmarshalJSON decodes the string-kinded wire form.
func (t *Term) UnmarshalJSON(data []byte) error {
	var raw termJSON
	if err := json.Unmarshal(data, &raw); err != nil {
		return err
	}
	kind, err := ParseKind(raw.Kind)
	if err != nil {
		return err
	}
	*t = Term{Kind: kind, Index: raw.Index, Coeff: raw.Coeff, P: raw.P}
	return nil
}
