// Package cluster is fepiad's stdlib-only peer layer: a consistent-hash
// ring that assigns every radius-cache key (spec.System.RouteKey) to
// exactly one owning node, plus an HTTP router that forwards non-owned
// requests to the owner under the shared resilience primitives — the
// decorrelated-jitter retry policy and a per-peer circuit breaker from
// internal/faults. Each node's sharded radius cache then stays hot for
// its own arc of the key space, so warm-hit throughput scales with the
// node count instead of thrashing one LRU (docs/CLUSTER.md).
//
// The package deliberately knows nothing about the serving layer: it
// moves opaque request bytes between peers and reports typed failures
// (*PeerError); internal/server decides what to do when a peer is down
// (degraded local serving, docs/SERVICE.md).
package cluster

import (
	"fmt"
	"hash/fnv"
	"sort"
	"strconv"
)

// DefaultReplicas is the virtual-node count per peer: enough points that
// three nodes split the key space within a few percent of evenly, cheap
// enough that ring construction is instant.
const DefaultReplicas = 64

// Ring is an immutable consistent-hash ring over node IDs. Each node
// contributes `replicas` virtual points; a key is owned by the node of
// the first point at or clockwise after the key's mixed hash. Immutable
// after construction, so lookups are lock-free and safe for concurrent
// use.
type Ring struct {
	hashes   []uint64 // sorted virtual-point positions
	owners   []string // owners[i] owns the arc ending at hashes[i]
	nodes    []string // distinct node IDs, sorted
	replicas int
}

// NewRing builds a ring from the node IDs (order-insensitive — the ring
// layout depends only on the ID set, so every node computes the same
// ring). replicas ≤ 0 selects DefaultReplicas. Duplicate or empty IDs
// are rejected.
func NewRing(nodes []string, replicas int) (*Ring, error) {
	if len(nodes) == 0 {
		return nil, fmt.Errorf("cluster: ring needs at least one node")
	}
	if replicas <= 0 {
		replicas = DefaultReplicas
	}
	sorted := append([]string(nil), nodes...)
	sort.Strings(sorted)
	for i, id := range sorted {
		if id == "" {
			return nil, fmt.Errorf("cluster: empty node ID")
		}
		if i > 0 && sorted[i-1] == id {
			return nil, fmt.Errorf("cluster: duplicate node ID %q", id)
		}
	}
	r := &Ring{
		hashes:   make([]uint64, 0, len(sorted)*replicas),
		owners:   make([]string, 0, len(sorted)*replicas),
		nodes:    sorted,
		replicas: replicas,
	}
	type point struct {
		h    uint64
		node string
	}
	points := make([]point, 0, len(sorted)*replicas)
	for _, id := range sorted {
		for i := 0; i < replicas; i++ {
			points = append(points, point{h: pointHash(id, i), node: id})
		}
	}
	sort.Slice(points, func(i, j int) bool {
		if points[i].h != points[j].h {
			return points[i].h < points[j].h
		}
		// Colliding virtual points (vanishingly rare) tie-break by ID so
		// every node still derives the identical ring.
		return points[i].node < points[j].node
	})
	for _, p := range points {
		r.hashes = append(r.hashes, p.h)
		r.owners = append(r.owners, p.node)
	}
	return r, nil
}

// pointHash places one virtual point: FNV-64a of "id#replica" pushed
// through a finalizer so the points spread uniformly even for short,
// similar IDs.
func pointHash(id string, replica int) uint64 {
	h := fnv.New64a()
	_, _ = h.Write([]byte(id))
	_, _ = h.Write([]byte{'#'})
	_, _ = h.Write([]byte(strconv.Itoa(replica)))
	return mix64(h.Sum64())
}

// mix64 is the splitmix64 finalizer: a cheap bijective avalanche that
// decorrelates structured inputs (FNV digests of similar documents,
// sequential replica indices) before they land on the ring.
func mix64(x uint64) uint64 {
	x ^= x >> 30
	x *= 0xbf58476d1ce4e5b9
	x ^= x >> 27
	x *= 0x94d049bb133111eb
	x ^= x >> 31
	return x
}

// Owner returns the node that owns key (a spec.System.RouteKey). The key
// is mixed before lookup, so callers pass their digest verbatim.
func (r *Ring) Owner(key uint64) string {
	h := mix64(key)
	i := sort.Search(len(r.hashes), func(i int) bool { return r.hashes[i] >= h })
	if i == len(r.hashes) {
		i = 0 // wrap past the highest point to the first
	}
	return r.owners[i]
}

// Nodes returns the ring's members, sorted by ID.
func (r *Ring) Nodes() []string { return append([]string(nil), r.nodes...) }

// Replicas returns the virtual-point count per node.
func (r *Ring) Replicas() int { return r.replicas }

// Share returns the fraction of the key space the node owns — the ring
// ownership gauge of the metrics catalog. Unknown nodes own 0.
func (r *Ring) Share(node string) float64 {
	if len(r.hashes) == 0 {
		return 0
	}
	var owned uint64
	points := 0
	for i, owner := range r.owners {
		if owner != node {
			continue
		}
		points++
		// Wraparound subtraction measures the arc ending at hashes[i].
		prev := r.hashes[(i+len(r.hashes)-1)%len(r.hashes)]
		owned += r.hashes[i] - prev
	}
	if points == len(r.hashes) {
		// The node owns every point: the arcs sum to the full 2^64 circle,
		// which wraps to 0 in uint64 arithmetic.
		return 1
	}
	return float64(owned) / float64(^uint64(0))
}
