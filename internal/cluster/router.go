package cluster

import (
	"bytes"
	"context"
	"errors"
	"fmt"
	"io"
	"net/http"
	"net/url"
	"sort"
	"strings"
	"sync/atomic"
	"time"

	"fepia/internal/faults"
)

// Defaults applied by New for zero-valued Config fields.
const (
	// DefaultForwardTimeout bounds one forward attempt to a peer.
	DefaultForwardTimeout = 5 * time.Second
	// DefaultForwardRetries is the total attempt budget per forward.
	DefaultForwardRetries = 3
	// DefaultPeerBreakerWindow is the per-peer breaker's sliding outcome
	// window — smaller than the engine breakers' so a dead peer is
	// detected within a handful of forwards.
	DefaultPeerBreakerWindow = 8
	// DefaultPeerBreakerThreshold is the failure rate that opens a peer
	// breaker.
	DefaultPeerBreakerThreshold = 0.5
	// DefaultPeerBreakerCooldown is how long an open peer breaker rejects
	// before probing, short so a restarted peer rejoins quickly.
	DefaultPeerBreakerCooldown = 2 * time.Second
)

// Wire headers of the cluster protocol. Forwarded requests carry
// ForwardedFromHeader so the owner knows not to re-forward (forwarding
// is single-hop by construction — the ring gives every key exactly one
// owner, so a loop would indicate divergent ring views and must not
// cascade). Responses carry NodeHeader and ForwardedHeader so clients
// and the load generator can attribute answers without parsing bodies.
const (
	// ForwardedFromHeader names the node that relayed the request; its
	// presence on a request disables further forwarding.
	ForwardedFromHeader = "X-Fepiad-Forwarded-From"
	// NodeHeader is the response header naming the node that produced
	// the answer.
	NodeHeader = "X-Fepiad-Node"
	// ForwardedHeader is the response header ("true") on answers that
	// crossed the ring.
	ForwardedHeader = "X-Fepiad-Forwarded"
	// TraceHeader carries distributed trace context on forwards, W3C
	// traceparent style: "<trace-id>-<parent-span-id>", 16 lowercase hex
	// chars each. The parent is the ingress node's forward span, so the
	// owner's span tree hooks under it when stitched.
	TraceHeader = "X-Fepiad-Trace"
	// SpansHeader is the response header on which a forwarded-to owner
	// returns its span tree (compact JSON, see obs.SpanData) so the
	// ingress can stitch one cross-node trace.
	SpansHeader = "X-Fepiad-Spans"
	// TraceIDHeader is the response header echoing the trace ID on every
	// /v1 answer, so clients (cmd/loadgen -report-traces) can link their
	// slowest requests into /debug/traces without parsing bodies.
	TraceIDHeader = "X-Fepiad-Trace-Id"
)

// ErrPeerOpen reports a forward rejected locally because the peer's
// circuit breaker is open; it is matched through *PeerError with
// errors.Is.
var ErrPeerOpen = errors.New("cluster: peer circuit open")

// Peer identifies one fepiad node of the ring.
type Peer struct {
	// ID is the node's stable identity on the ring (-node-id).
	ID string `json:"id"`
	// URL is the node's base URL, e.g. "http://10.0.0.7:8080". Empty for
	// the local node in membership listings.
	URL string `json:"url,omitempty"`
}

// Config tunes a Router. Zero values select the defaults above.
type Config struct {
	// Self is the local node's ID; it must appear in Peers.
	Self string
	// Peers is the full ring membership, the local node included. Every
	// remote peer needs a URL.
	Peers []Peer
	// Replicas is the virtual-node count per peer (0 selects
	// DefaultReplicas). All nodes must agree on it.
	Replicas int
	// ForwardTimeout bounds each forward attempt (0 selects
	// DefaultForwardTimeout).
	ForwardTimeout time.Duration
	// RetryMax is the total attempt budget per forward (0 selects
	// DefaultForwardRetries, < 0 or 1 disables retrying).
	RetryMax int
	// BreakerWindow / BreakerThreshold / BreakerCooldown tune the
	// per-peer circuit breakers (0 selects the defaults; BreakerWindow
	// < 0 disables the peer breakers).
	BreakerWindow    int
	BreakerThreshold float64
	BreakerCooldown  time.Duration
	// Transport overrides the HTTP transport (tests inject
	// httptest-backed transports); nil selects http.DefaultTransport.
	Transport http.RoundTripper
	// Now is the breaker clock, stubbed by tests; nil selects time.Now.
	Now func() time.Time
}

// withDefaults fills zero-valued fields.
func (c Config) withDefaults() Config {
	if c.Replicas <= 0 {
		c.Replicas = DefaultReplicas
	}
	if c.ForwardTimeout <= 0 {
		c.ForwardTimeout = DefaultForwardTimeout
	}
	if c.RetryMax == 0 {
		c.RetryMax = DefaultForwardRetries
	}
	if c.BreakerWindow == 0 {
		c.BreakerWindow = DefaultPeerBreakerWindow
	}
	if c.BreakerThreshold <= 0 || c.BreakerThreshold > 1 {
		c.BreakerThreshold = DefaultPeerBreakerThreshold
	}
	if c.BreakerCooldown <= 0 {
		c.BreakerCooldown = DefaultPeerBreakerCooldown
	}
	return c
}

// peerState is the per-peer resilience and accounting bundle.
type peerState struct {
	peer    Peer
	breaker *faults.Breaker // nil when BreakerWindow < 0
	retry   *faults.Policy  // nil when RetryMax ≤ 1

	forwards atomic.Uint64 // forwards attempted to this peer
	hits     atomic.Uint64 // forwards answered 2xx
	failures atomic.Uint64 // forwards that failed (breaker open, retries exhausted)

	fetches       atomic.Uint64 // federation GETs attempted to this peer
	fetchFailures atomic.Uint64 // federation GETs that failed
}

// Router owns a node's view of the ring: key→owner lookup plus resilient
// request forwarding to remote peers. Safe for concurrent use.
type Router struct {
	cfg    Config
	ring   *Ring
	peers  map[string]*peerState // remote peers only, by ID
	ids    []string              // sorted remote peer IDs
	client *http.Client
}

// New builds a Router from cfg. It validates the membership — Self must
// be listed, IDs must be unique and non-empty, every remote peer needs a
// well-formed http(s) URL — and precomputes the ring.
func New(cfg Config) (*Router, error) {
	cfg = cfg.withDefaults()
	if cfg.Self == "" {
		return nil, fmt.Errorf("cluster: node ID (Self) required")
	}
	ids := make([]string, 0, len(cfg.Peers))
	selfListed := false
	for _, p := range cfg.Peers {
		ids = append(ids, p.ID)
		if p.ID == cfg.Self {
			selfListed = true
		}
	}
	if !selfListed {
		return nil, fmt.Errorf("cluster: self %q not in peer list", cfg.Self)
	}
	ring, err := NewRing(ids, cfg.Replicas)
	if err != nil {
		return nil, err
	}
	rt := &Router{
		cfg:    cfg,
		ring:   ring,
		peers:  make(map[string]*peerState, len(cfg.Peers)),
		client: &http.Client{Transport: cfg.Transport},
	}
	for _, p := range cfg.Peers {
		if p.ID == cfg.Self {
			continue
		}
		u, err := url.Parse(p.URL)
		if err != nil || (u.Scheme != "http" && u.Scheme != "https") || u.Host == "" {
			return nil, fmt.Errorf("cluster: peer %q needs an http(s) URL, got %q", p.ID, p.URL)
		}
		ps := &peerState{peer: Peer{ID: p.ID, URL: strings.TrimRight(p.URL, "/")}}
		if cfg.BreakerWindow > 0 {
			ps.breaker = faults.NewBreaker(faults.BreakerConfig{
				Window:    cfg.BreakerWindow,
				Threshold: cfg.BreakerThreshold,
				Cooldown:  cfg.BreakerCooldown,
				Now:       cfg.Now,
			})
		}
		if cfg.RetryMax > 1 {
			ps.retry = &faults.Policy{MaxAttempts: cfg.RetryMax}
		}
		rt.peers[p.ID] = ps
		rt.ids = append(rt.ids, p.ID)
	}
	sort.Strings(rt.ids)
	return rt, nil
}

// Self returns the local node's ID.
func (rt *Router) Self() string { return rt.cfg.Self }

// Ring returns the router's (immutable) ring.
func (rt *Router) Ring() *Ring { return rt.ring }

// Owner returns the node owning key.
func (rt *Router) Owner(key uint64) string { return rt.ring.Owner(key) }

// PeerIDs returns the remote peers' IDs, sorted.
func (rt *Router) PeerIDs() []string { return append([]string(nil), rt.ids...) }

// Members returns the full ring membership, self included with an empty
// URL, sorted by ID — the GET /v1/ring document.
func (rt *Router) Members() []Peer {
	out := make([]Peer, 0, len(rt.peers)+1)
	out = append(out, Peer{ID: rt.cfg.Self})
	for _, ps := range rt.peers {
		out = append(out, ps.peer)
	}
	sort.Slice(out, func(i, j int) bool { return out[i].ID < out[j].ID })
	return out
}

// PeerStats is one peer's forwarding counters and breaker view, read by
// the metrics layer.
type PeerStats struct {
	// Forwards counts forwards attempted; ForwardHits the ones answered
	// 2xx; Failures the ones that failed (breaker open, retries
	// exhausted, cancelled mid-forward).
	Forwards, ForwardHits, Failures uint64
	// Fetches counts federation GETs (cluster status / metrics fan-out);
	// FetchFailures the ones that failed.
	Fetches, FetchFailures uint64
	// Breaker is the peer breaker's snapshot; State "disabled" when the
	// peer breakers are off.
	Breaker faults.BreakerSnapshot
}

// PeerStats returns the counters of one remote peer (zero value for an
// unknown ID).
func (rt *Router) PeerStats(id string) PeerStats {
	ps, ok := rt.peers[id]
	if !ok {
		return PeerStats{Breaker: faults.BreakerSnapshot{State: "disabled"}}
	}
	st := PeerStats{
		Forwards:      ps.forwards.Load(),
		ForwardHits:   ps.hits.Load(),
		Failures:      ps.failures.Load(),
		Fetches:       ps.fetches.Load(),
		FetchFailures: ps.fetchFailures.Load(),
		Breaker:       faults.BreakerSnapshot{State: "disabled"},
	}
	if ps.breaker != nil {
		st.Breaker = ps.breaker.Snapshot()
	}
	return st
}

// PeerError reports a failed forward: the peer, how many attempts were
// spent, and the last HTTP status seen (0 when no attempt got a
// response). The server maps it onto 502/503 through its errors.As
// chain; errors.Is(err, ErrPeerOpen) distinguishes a local breaker
// rejection from an exhausted peer.
type PeerError struct {
	// Peer is the target node's ID.
	Peer string
	// Attempts is how many forward attempts were made (0 when the
	// breaker rejected locally).
	Attempts int
	// LastStatus is the last HTTP status received from the peer, 0 when
	// every attempt failed in transport.
	LastStatus int
	// Err is the underlying cause (ErrPeerOpen, the last transport or
	// status error).
	Err error
}

// Error formats the failure for the ErrorJSON envelope.
func (e *PeerError) Error() string {
	var b strings.Builder
	fmt.Fprintf(&b, "cluster: peer %q unavailable", e.Peer)
	if e.Attempts > 0 {
		fmt.Fprintf(&b, " after %d attempt(s)", e.Attempts)
	}
	if e.LastStatus != 0 {
		fmt.Fprintf(&b, " (last status %d)", e.LastStatus)
	}
	if e.Err != nil {
		b.WriteString(": ")
		b.WriteString(e.Err.Error())
	}
	return b.String()
}

// Unwrap exposes the cause to errors.Is/As.
func (e *PeerError) Unwrap() error { return e.Err }

// transportError marks a forward attempt that died in transport as
// transient for the retry classifier. It deliberately does NOT unwrap:
// a per-attempt timeout carries context.DeadlineExceeded, which would
// otherwise veto the retry (the REQUEST's deadline is checked separately
// in Forward).
type transportError struct{ err error }

func (e *transportError) Error() string   { return "forwarding: " + e.err.Error() }
func (e *transportError) Temporary() bool { return true }

// statusError marks a peer 5xx as transient: the peer is alive but
// failing, and the next attempt (or the breaker) decides.
type statusError struct{ status int }

func (e *statusError) Error() string   { return fmt.Sprintf("peer answered %d", e.status) }
func (e *statusError) Temporary() bool { return true }

// Response is a relayed peer answer: status, selected headers, and the
// verbatim body bytes (byte-identity across the ring is part of the API
// contract, so the body is never re-encoded). Attempts counts the HTTP
// attempts spent obtaining it, so the forward span can carry the retry
// story of a success too.
type Response struct {
	Status   int
	Header   http.Header
	Body     []byte
	Attempts int
}

// Forward relays body to the peer's path (e.g. "/v1/analyze") under the
// per-peer breaker and retry policy. hdr supplies the Content-Type and
// X-Request-Id to propagate; the forwarded request carries
// ForwardedFromHeader so the peer never re-forwards. Peer responses
// below 500 — including 4xx — are relayed verbatim as a *Response; a 5xx
// or a transport failure is retried and, once the budget is exhausted,
// reported as a *PeerError and counted against the peer's breaker. A
// cancelled or expired request context returns the context error
// directly (the peer is not at fault; any half-open probe slot is
// returned unused).
func (rt *Router) Forward(ctx context.Context, peerID, path string, body []byte, hdr http.Header) (*Response, error) {
	return rt.do(ctx, peerID, http.MethodPost, path, body, hdr, false)
}

// Fetch GETs path from the peer under the same per-peer breaker and
// retry machinery as Forward — the federation fan-out
// (GET /v1/cluster/status, GET /metrics?federate=1). Responses below
// 500 are returned verbatim; a 5xx or transport failure is retried,
// then reported as a *PeerError. Fetches count on their own PeerStats
// counters but share the breaker: a dead peer discovered by a status
// poll also stops taking forwards.
func (rt *Router) Fetch(ctx context.Context, peerID, path string) (*Response, error) {
	return rt.do(ctx, peerID, http.MethodGet, path, nil, nil, true)
}

// do runs one resilient exchange with a peer: breaker gate, retry loop,
// verdict accounting.
func (rt *Router) do(ctx context.Context, peerID, method, path string, body []byte, hdr http.Header, fetch bool) (*Response, error) {
	ps, ok := rt.peers[peerID]
	if !ok {
		return nil, &PeerError{Peer: peerID, Err: fmt.Errorf("unknown peer")}
	}
	sent, failed := &ps.forwards, &ps.failures
	if fetch {
		sent, failed = &ps.fetches, &ps.fetchFailures
	}
	sent.Add(1)
	if ps.breaker != nil && !ps.breaker.Allow() {
		failed.Add(1)
		return nil, &PeerError{Peer: peerID, Err: ErrPeerOpen}
	}
	var (
		resp       *Response
		attempts   int
		lastStatus int
	)
	attempt := func() error {
		attempts++
		r, status, err := rt.attempt(ctx, ps.peer, method, path, body, hdr)
		if status != 0 {
			lastStatus = status
		}
		if err != nil {
			return err
		}
		resp = r
		return nil
	}
	// A nil policy runs the attempt exactly once (retrying disabled).
	err := ps.retry.Do(ctx, attempt)
	if err != nil {
		if ctx.Err() != nil {
			// The client went away or the request deadline fired mid-forward:
			// no verdict on the peer.
			if ps.breaker != nil {
				ps.breaker.CancelProbe()
			}
			failed.Add(1)
			return nil, ctx.Err()
		}
		if ps.breaker != nil {
			ps.breaker.Report(true)
		}
		failed.Add(1)
		return nil, &PeerError{Peer: peerID, Attempts: attempts, LastStatus: lastStatus, Err: err}
	}
	if ps.breaker != nil {
		ps.breaker.Report(false)
	}
	resp.Attempts = attempts
	if !fetch && resp.Status < 300 {
		ps.hits.Add(1)
	}
	return resp, nil
}

// attempt runs one exchange attempt under the per-attempt timeout.
func (rt *Router) attempt(ctx context.Context, peer Peer, method, path string, body []byte, hdr http.Header) (*Response, int, error) {
	actx := ctx
	if rt.cfg.ForwardTimeout > 0 {
		var cancel context.CancelFunc
		actx, cancel = context.WithTimeout(ctx, rt.cfg.ForwardTimeout)
		defer cancel()
	}
	var rd io.Reader
	if body != nil {
		rd = bytes.NewReader(body)
	}
	req, err := http.NewRequestWithContext(actx, method, peer.URL+path, rd)
	if err != nil {
		return nil, 0, &transportError{err: err}
	}
	if method == http.MethodPost {
		ct := hdr.Get("Content-Type")
		if ct == "" {
			ct = "application/json"
		}
		req.Header.Set("Content-Type", ct)
	}
	if hdr != nil {
		if rid := hdr.Get("X-Request-Id"); rid != "" {
			req.Header.Set("X-Request-Id", rid)
		}
		if tc := hdr.Get(TraceHeader); tc != "" {
			req.Header.Set(TraceHeader, tc)
		}
	}
	req.Header.Set(ForwardedFromHeader, rt.cfg.Self)
	res, err := rt.client.Do(req)
	if err != nil {
		if ctx.Err() != nil {
			return nil, 0, ctx.Err()
		}
		return nil, 0, &transportError{err: err}
	}
	defer res.Body.Close()
	b, err := io.ReadAll(res.Body)
	if err != nil {
		if ctx.Err() != nil {
			return nil, res.StatusCode, ctx.Err()
		}
		return nil, res.StatusCode, &transportError{err: err}
	}
	if res.StatusCode >= 500 {
		return nil, res.StatusCode, &statusError{status: res.StatusCode}
	}
	return &Response{Status: res.StatusCode, Header: res.Header.Clone(), Body: b}, res.StatusCode, nil
}

// ParsePeers parses the -peers flag format: comma-separated id=url
// pairs, e.g. "a=http://10.0.0.1:8080,b=http://10.0.0.2:8080". The local
// node lists itself too (its URL is accepted and ignored for routing).
func ParsePeers(s string) ([]Peer, error) {
	if strings.TrimSpace(s) == "" {
		return nil, nil
	}
	parts := strings.Split(s, ",")
	out := make([]Peer, 0, len(parts))
	seen := make(map[string]bool, len(parts))
	for _, part := range parts {
		part = strings.TrimSpace(part)
		if part == "" {
			continue
		}
		id, u, ok := strings.Cut(part, "=")
		id, u = strings.TrimSpace(id), strings.TrimSpace(u)
		if !ok || id == "" || u == "" {
			return nil, fmt.Errorf("cluster: malformed peer %q (want id=url)", part)
		}
		if seen[id] {
			return nil, fmt.Errorf("cluster: duplicate peer ID %q", id)
		}
		seen[id] = true
		out = append(out, Peer{ID: id, URL: u})
	}
	return out, nil
}
