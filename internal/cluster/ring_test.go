package cluster

import (
	"math"
	"math/rand"
	"testing"
)

func TestRingDeterministicAndOrderInsensitive(t *testing.T) {
	a, err := NewRing([]string{"n1", "n2", "n3"}, 64)
	if err != nil {
		t.Fatal(err)
	}
	b, err := NewRing([]string{"n3", "n1", "n2"}, 64)
	if err != nil {
		t.Fatal(err)
	}
	rng := rand.New(rand.NewSource(1))
	for i := 0; i < 10000; i++ {
		k := rng.Uint64()
		if oa, ob := a.Owner(k), b.Owner(k); oa != ob {
			t.Fatalf("key %x: owner %q vs %q for permuted node lists", k, oa, ob)
		}
	}
}

func TestRingRejectsBadMembership(t *testing.T) {
	if _, err := NewRing(nil, 64); err == nil {
		t.Fatal("empty ring accepted")
	}
	if _, err := NewRing([]string{"a", ""}, 64); err == nil {
		t.Fatal("empty node ID accepted")
	}
	if _, err := NewRing([]string{"a", "b", "a"}, 64); err == nil {
		t.Fatal("duplicate node ID accepted")
	}
}

func TestRingDistributionRoughlyEven(t *testing.T) {
	nodes := []string{"n1", "n2", "n3"}
	r, err := NewRing(nodes, DefaultReplicas)
	if err != nil {
		t.Fatal(err)
	}
	counts := map[string]int{}
	rng := rand.New(rand.NewSource(7))
	const n = 30000
	for i := 0; i < n; i++ {
		counts[r.Owner(rng.Uint64())]++
	}
	for _, id := range nodes {
		frac := float64(counts[id]) / n
		if frac < 0.15 || frac > 0.55 {
			t.Errorf("node %s owns %.1f%% of sampled keys, want roughly a third", id, 100*frac)
		}
		// Share must agree with the sampled ownership within a few points.
		if share := r.Share(id); math.Abs(share-frac) > 0.05 {
			t.Errorf("node %s: Share()=%.3f but sampled ownership %.3f", id, share, frac)
		}
	}
}

func TestRingShareSumsToOne(t *testing.T) {
	r, err := NewRing([]string{"a", "b", "c", "d"}, 32)
	if err != nil {
		t.Fatal(err)
	}
	var sum float64
	for _, id := range r.Nodes() {
		sum += r.Share(id)
	}
	if math.Abs(sum-1) > 1e-9 {
		t.Fatalf("shares sum to %g, want 1", sum)
	}
	if r.Share("ghost") != 0 {
		t.Fatal("unknown node owns a share")
	}
}

func TestRingSingleNodeOwnsEverything(t *testing.T) {
	r, err := NewRing([]string{"solo"}, 64)
	if err != nil {
		t.Fatal(err)
	}
	if r.Owner(0) != "solo" || r.Owner(^uint64(0)) != "solo" {
		t.Fatal("single-node ring did not own every key")
	}
	if s := r.Share("solo"); s != 1 {
		t.Fatalf("single node Share = %g, want 1", s)
	}
}

func TestRingStabilityUnderMembershipChange(t *testing.T) {
	// Consistent hashing's point: removing one of three nodes must leave
	// the other two nodes' keys where they were.
	three, err := NewRing([]string{"n1", "n2", "n3"}, 64)
	if err != nil {
		t.Fatal(err)
	}
	two, err := NewRing([]string{"n1", "n2"}, 64)
	if err != nil {
		t.Fatal(err)
	}
	rng := rand.New(rand.NewSource(3))
	moved := 0
	const n = 10000
	for i := 0; i < n; i++ {
		k := rng.Uint64()
		before := three.Owner(k)
		after := two.Owner(k)
		if before != "n3" && before != after {
			moved++
		}
	}
	if frac := float64(moved) / n; frac > 0.02 {
		t.Fatalf("%.1f%% of surviving nodes' keys moved on membership change, want ~0", 100*frac)
	}
}
