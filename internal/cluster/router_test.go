package cluster

import (
	"context"
	"errors"
	"net/http"
	"net/http/httptest"
	"sync/atomic"
	"testing"
	"time"
)

// twoNodeRouter builds a router for node "a" with remote peer "b"
// backed by the given handler.
func twoNodeRouter(t *testing.T, h http.Handler, tweak func(*Config)) (*Router, *httptest.Server) {
	t.Helper()
	srv := httptest.NewServer(h)
	t.Cleanup(srv.Close)
	cfg := Config{
		Self:  "a",
		Peers: []Peer{{ID: "a"}, {ID: "b", URL: srv.URL}},
	}
	if tweak != nil {
		tweak(&cfg)
	}
	rt, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	return rt, srv
}

func TestForwardRelaysVerbatim(t *testing.T) {
	var gotFrom, gotCT, gotRID atomic.Value
	rt, _ := twoNodeRouter(t, http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		gotFrom.Store(r.Header.Get(ForwardedFromHeader))
		gotCT.Store(r.Header.Get("Content-Type"))
		gotRID.Store(r.Header.Get("X-Request-Id"))
		w.Header().Set("Content-Type", "application/json")
		w.WriteHeader(http.StatusOK)
		_, _ = w.Write([]byte(`{"robustness": 1.5}` + "\n"))
	}), nil)

	hdr := http.Header{}
	hdr.Set("Content-Type", "application/json")
	hdr.Set("X-Request-Id", "rid-1")
	resp, err := rt.Forward(context.Background(), "b", "/v1/analyze", []byte(`{"x":1}`), hdr)
	if err != nil {
		t.Fatal(err)
	}
	if resp.Status != http.StatusOK {
		t.Fatalf("status %d", resp.Status)
	}
	if string(resp.Body) != `{"robustness": 1.5}`+"\n" {
		t.Fatalf("body not relayed verbatim: %q", resp.Body)
	}
	if gotFrom.Load() != "a" {
		t.Fatalf("%s = %q, want \"a\"", ForwardedFromHeader, gotFrom.Load())
	}
	if gotCT.Load() != "application/json" || gotRID.Load() != "rid-1" {
		t.Fatalf("headers not propagated: ct=%q rid=%q", gotCT.Load(), gotRID.Load())
	}
	st := rt.PeerStats("b")
	if st.Forwards != 1 || st.ForwardHits != 1 || st.Failures != 0 {
		t.Fatalf("stats %+v", st)
	}
}

func TestForwardRelays4xxWithoutRetry(t *testing.T) {
	var calls atomic.Int64
	rt, _ := twoNodeRouter(t, http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		calls.Add(1)
		w.WriteHeader(http.StatusBadRequest)
		_, _ = w.Write([]byte(`{"error":"bad","kind":"invalid_spec"}`))
	}), nil)
	resp, err := rt.Forward(context.Background(), "b", "/v1/analyze", []byte(`{}`), nil)
	if err != nil {
		t.Fatal(err)
	}
	if resp.Status != http.StatusBadRequest {
		t.Fatalf("status %d, want 400 relayed", resp.Status)
	}
	if calls.Load() != 1 {
		t.Fatalf("4xx was retried: %d calls", calls.Load())
	}
	// A relayed client error is a live peer: no forward-hit, no failure.
	st := rt.PeerStats("b")
	if st.ForwardHits != 0 || st.Failures != 0 {
		t.Fatalf("stats %+v", st)
	}
}

func TestForwardRetries5xxThenSucceeds(t *testing.T) {
	var calls atomic.Int64
	rt, _ := twoNodeRouter(t, http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		if calls.Add(1) == 1 {
			w.WriteHeader(http.StatusInternalServerError)
			return
		}
		_, _ = w.Write([]byte("ok"))
	}), func(c *Config) { c.RetryMax = 3 })
	// Stub the retry sleep to keep the test instant.
	rt.peers["b"].retry.Sleep = func(context.Context, time.Duration) error { return nil }

	resp, err := rt.Forward(context.Background(), "b", "/v1/analyze", nil, nil)
	if err != nil {
		t.Fatal(err)
	}
	if resp.Status != http.StatusOK || calls.Load() != 2 {
		t.Fatalf("status %d after %d calls, want 200 after 2", resp.Status, calls.Load())
	}
}

func TestForwardExhaustedReturnsPeerError(t *testing.T) {
	var calls atomic.Int64
	rt, _ := twoNodeRouter(t, http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		calls.Add(1)
		w.WriteHeader(http.StatusBadGateway)
	}), func(c *Config) { c.RetryMax = 2 })
	rt.peers["b"].retry.Sleep = func(context.Context, time.Duration) error { return nil }

	_, err := rt.Forward(context.Background(), "b", "/v1/analyze", nil, nil)
	var pe *PeerError
	if !errors.As(err, &pe) {
		t.Fatalf("want *PeerError, got %v", err)
	}
	if pe.Peer != "b" || pe.Attempts != 2 || pe.LastStatus != http.StatusBadGateway {
		t.Fatalf("PeerError %+v", pe)
	}
	if errors.Is(err, ErrPeerOpen) {
		t.Fatal("exhausted forward matched ErrPeerOpen")
	}
	if st := rt.PeerStats("b"); st.Failures != 1 {
		t.Fatalf("stats %+v", st)
	}
}

func TestForwardDeadPeerOpensBreaker(t *testing.T) {
	rt, srv := twoNodeRouter(t, http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		w.WriteHeader(http.StatusServiceUnavailable)
	}), func(c *Config) {
		c.RetryMax = -1 // one attempt per forward
		c.BreakerWindow = 2
		c.BreakerCooldown = time.Minute
	})
	srv.Close() // kill the peer: every attempt dies in transport

	for i := 0; i < 2; i++ {
		if _, err := rt.Forward(context.Background(), "b", "/v1/analyze", nil, nil); err == nil {
			t.Fatal("forward to dead peer succeeded")
		}
	}
	st := rt.PeerStats("b")
	if st.Breaker.State != "open" {
		t.Fatalf("breaker %+v after window of transport failures, want open", st.Breaker)
	}
	// With the breaker open, the next forward is rejected locally.
	_, err := rt.Forward(context.Background(), "b", "/v1/analyze", nil, nil)
	var pe *PeerError
	if !errors.As(err, &pe) || !errors.Is(err, ErrPeerOpen) {
		t.Fatalf("want PeerError matching ErrPeerOpen, got %v", err)
	}
	if pe.Attempts != 0 {
		t.Fatalf("breaker-rejected forward recorded %d attempts", pe.Attempts)
	}
}

func TestForwardBreakerRecovers(t *testing.T) {
	clk := time.Unix(1000, 0)
	now := func() time.Time { return clk }
	var healthy atomic.Bool
	rt, _ := twoNodeRouter(t, http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		if !healthy.Load() {
			w.WriteHeader(http.StatusInternalServerError)
			return
		}
		_, _ = w.Write([]byte("ok"))
	}), func(c *Config) {
		c.RetryMax = -1
		c.BreakerWindow = 2
		c.BreakerCooldown = time.Second
		c.Now = now
	})

	for i := 0; i < 2; i++ {
		_, _ = rt.Forward(context.Background(), "b", "/v1/analyze", nil, nil)
	}
	if st := rt.PeerStats("b"); st.Breaker.State != "open" {
		t.Fatalf("breaker %+v, want open", st.Breaker)
	}
	// Peer heals; after the cooldown the half-open probe closes it.
	healthy.Store(true)
	clk = clk.Add(2 * time.Second)
	resp, err := rt.Forward(context.Background(), "b", "/v1/analyze", nil, nil)
	if err != nil || resp.Status != http.StatusOK {
		t.Fatalf("probe forward: %v / %+v", err, resp)
	}
	if st := rt.PeerStats("b"); st.Breaker.State != "closed" {
		t.Fatalf("breaker %+v after successful probe, want closed", st.Breaker)
	}
}

func TestForwardCancelledContextReturnsCtxError(t *testing.T) {
	block := make(chan struct{})
	rt, _ := twoNodeRouter(t, http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		<-block
	}), nil)
	defer close(block)
	ctx, cancel := context.WithCancel(context.Background())
	go func() {
		time.Sleep(20 * time.Millisecond)
		cancel()
	}()
	_, err := rt.Forward(ctx, "b", "/v1/analyze", nil, nil)
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("want context.Canceled, got %v", err)
	}
	var pe *PeerError
	if errors.As(err, &pe) {
		t.Fatal("client cancellation blamed the peer")
	}
}

func TestForwardUnknownPeer(t *testing.T) {
	rt, _ := twoNodeRouter(t, http.NotFoundHandler(), nil)
	_, err := rt.Forward(context.Background(), "ghost", "/v1/analyze", nil, nil)
	var pe *PeerError
	if !errors.As(err, &pe) || pe.Peer != "ghost" {
		t.Fatalf("want PeerError for ghost, got %v", err)
	}
}

func TestNewValidatesMembership(t *testing.T) {
	if _, err := New(Config{Peers: []Peer{{ID: "a"}}}); err == nil {
		t.Fatal("missing Self accepted")
	}
	if _, err := New(Config{Self: "x", Peers: []Peer{{ID: "a", URL: "http://h"}}}); err == nil {
		t.Fatal("Self outside membership accepted")
	}
	if _, err := New(Config{Self: "a", Peers: []Peer{{ID: "a"}, {ID: "b", URL: ":not-a-url"}}}); err == nil {
		t.Fatal("malformed peer URL accepted")
	}
	if _, err := New(Config{Self: "a", Peers: []Peer{{ID: "a"}, {ID: "a", URL: "http://h"}}}); err == nil {
		t.Fatal("duplicate IDs accepted")
	}
}

func TestParsePeers(t *testing.T) {
	peers, err := ParsePeers("a=http://h1:1, b=http://h2:2")
	if err != nil {
		t.Fatal(err)
	}
	if len(peers) != 2 || peers[0].ID != "a" || peers[0].URL != "http://h1:1" || peers[1].ID != "b" {
		t.Fatalf("parsed %+v", peers)
	}
	if got, _ := ParsePeers("  "); got != nil {
		t.Fatal("blank peer list should parse to nil")
	}
	for _, bad := range []string{"a", "=http://h", "a=", "a=http://h,a=http://h2"} {
		if _, err := ParsePeers(bad); err == nil {
			t.Fatalf("ParsePeers(%q) accepted", bad)
		}
	}
}

// TestForwardPropagatesTraceHeader: the X-Fepiad-Trace context rides
// every forward attempt so the owner can continue the ingress trace.
func TestForwardPropagatesTraceHeader(t *testing.T) {
	var gotTrace atomic.Value
	rt, _ := twoNodeRouter(t, http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		gotTrace.Store(r.Header.Get(TraceHeader))
		w.WriteHeader(http.StatusOK)
		_, _ = w.Write([]byte(`{}`))
	}), nil)

	hdr := http.Header{}
	hdr.Set(TraceHeader, "0123456789abcdef-fedcba9876543210")
	resp, err := rt.Forward(context.Background(), "b", "/v1/analyze", []byte(`{}`), hdr)
	if err != nil {
		t.Fatal(err)
	}
	if resp.Attempts != 1 {
		t.Fatalf("attempts %d, want 1", resp.Attempts)
	}
	if gotTrace.Load() != "0123456789abcdef-fedcba9876543210" {
		t.Fatalf("trace header not propagated: %q", gotTrace.Load())
	}
}

// TestFetchRelaysAndCounts: GET fan-out shares the resilience machinery
// but counts on its own PeerStats counters, leaving the forward
// counters untouched.
func TestFetchRelaysAndCounts(t *testing.T) {
	var gotMethod, gotFrom atomic.Value
	rt, _ := twoNodeRouter(t, http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		gotMethod.Store(r.Method)
		gotFrom.Store(r.Header.Get(ForwardedFromHeader))
		w.WriteHeader(http.StatusOK)
		_, _ = w.Write([]byte(`{"node":"b"}`))
	}), nil)

	resp, err := rt.Fetch(context.Background(), "b", "/v1/cluster/status?local=1")
	if err != nil {
		t.Fatal(err)
	}
	if resp.Status != http.StatusOK || string(resp.Body) != `{"node":"b"}` {
		t.Fatalf("fetch response wrong: %d %q", resp.Status, resp.Body)
	}
	if gotMethod.Load() != http.MethodGet {
		t.Fatalf("method %q, want GET", gotMethod.Load())
	}
	if gotFrom.Load() != "a" {
		t.Fatalf("fetch missing %s: %q", ForwardedFromHeader, gotFrom.Load())
	}
	st := rt.PeerStats("b")
	if st.Fetches != 1 || st.FetchFailures != 0 {
		t.Fatalf("fetch counters wrong: %+v", st)
	}
	if st.Forwards != 0 || st.ForwardHits != 0 {
		t.Fatalf("fetch polluted forward counters: %+v", st)
	}
}

// TestFetchRetriesAndBreaker: a 5xx-answering peer exhausts the fetch
// retry budget into a *PeerError, and repeated failures open the shared
// breaker so forwards are rejected too.
func TestFetchRetriesAndBreaker(t *testing.T) {
	var calls atomic.Int64
	rt, _ := twoNodeRouter(t, http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		calls.Add(1)
		w.WriteHeader(http.StatusBadGateway)
	}), func(c *Config) {
		c.RetryMax = 2
		c.BreakerWindow = 2
		c.BreakerThreshold = 0.5
	})

	_, err := rt.Fetch(context.Background(), "b", "/v1/cluster/status")
	var pe *PeerError
	if !errors.As(err, &pe) || pe.Peer != "b" || pe.LastStatus != http.StatusBadGateway {
		t.Fatalf("want PeerError with last status 502, got %v", err)
	}
	if got := calls.Load(); got != 2 {
		t.Fatalf("attempts %d, want 2 (RetryMax)", got)
	}
	// Enough failed verdicts to trip the shared breaker…
	_, _ = rt.Fetch(context.Background(), "b", "/v1/cluster/status")
	// …which now rejects forwards locally.
	_, err = rt.Forward(context.Background(), "b", "/v1/analyze", []byte(`{}`), http.Header{})
	if !errors.Is(err, ErrPeerOpen) {
		t.Fatalf("want ErrPeerOpen after fetch failures, got %v", err)
	}
}
