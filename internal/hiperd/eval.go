package hiperd

import (
	"fmt"
	"math"

	"fepia/internal/core"
	"fepia/internal/vecmath"
)

// Result is the complete §3.2 robustness analysis of one mapping.
type Result struct {
	// Analysis is the generic FePIA analysis: one radius per feature of
	// Eq. 9, aggregated per Eq. 11 (floored — λ is discrete).
	Analysis core.Analysis
	// Robustness is ρ_μ(Φ, λ) in objects per data set.
	Robustness float64
	// Slack is the §4.3 system-wide percentage slack at λ^orig.
	Slack float64
	// BoundaryLoads is λ*, the sensor loads at which the binding
	// constraint is reached (Table 2 reports these); nil when no
	// constraint is reachable.
	BoundaryLoads []float64
}

// Evaluate runs the full FePIA analysis of a mapping: it builds the
// feature set Φ of Eq. 9 with the impact functions induced by the mapping
// (multitasking factors included), analyses it against the load vector λ,
// and computes the slack.
//
// Data transfers without an entry in System.CommCoeffs are instantaneous;
// they are omitted from Φ because a constant-zero communication time can
// never violate its throughput bound (its radius is +Inf by construction,
// which cannot change the metric). The §4.3 experiments set all
// communication times to zero this way.
func Evaluate(s *System, m Mapping) (Result, error) {
	features, p, err := Features(s, m)
	if err != nil {
		return Result{}, err
	}
	a, err := core.Analyze(features, p, core.Options{})
	if err != nil {
		return Result{}, err
	}
	res := Result{
		Analysis:   a,
		Robustness: a.Robustness,
		Slack:      Slack(s, m),
	}
	if cf := a.CriticalFeature(); cf != nil {
		res.BoundaryLoads = cf.Boundary
	}
	return res, nil
}

// Features builds Φ (Eq. 9) and the perturbation parameter λ (step 2) for
// a mapping:
//
//   - one feature per application: T_i^c(λ) ≤ 1/R(a_i);
//   - one feature per data transfer with communication coefficients:
//     T_ip^n(λ) ≤ 1/R(a_i);
//   - one feature per path: L_k(λ) ≤ L_k^max (Eq. 8).
//
// All impact functions are affine in λ for the linear complexity model, so
// every radius is an exact hyperplane distance.
func Features(s *System, m Mapping) ([]core.Feature, core.Perturbation, error) {
	if err := m.Validate(s); err != nil {
		return nil, core.Perturbation{}, err
	}
	counts := m.Counts(s)
	nz := s.Sensors()

	// Per-application effective model under this mapping: the complexity
	// of the assigned machine scaled by the multitasking factor.
	factors := make([]float64, s.Applications())
	comps := make([]Complexity, s.Applications())
	for a := range factors {
		j := m[a]
		factors[a] = MultitaskFactor(counts[j])
		comps[a] = s.CompFuncs[a][j]
	}

	var features []core.Feature
	// Throughput features for computations.
	for a := 0; a < s.Applications(); a++ {
		impact, err := scaledImpact(nz, []float64{factors[a]}, []Complexity{comps[a]}, nil)
		if err != nil {
			return nil, core.Perturbation{}, err
		}
		features = append(features, core.Feature{
			Name:   fmt.Sprintf("Tc(%s)", s.G.NameOf(s.AppNode(a))),
			Impact: impact,
			Bounds: core.NoMin(1 / s.Rate(a)),
		})
	}
	// Throughput features for communications (only modelled transfers).
	for e, coeffs := range s.CommCoeffs {
		a := s.AppPos(e.From)
		if a < 0 {
			continue // sensor-side transfer: bounded through path latency only
		}
		impact, err := core.NewLinearImpact(coeffs, 0)
		if err != nil {
			return nil, core.Perturbation{}, err
		}
		features = append(features, core.Feature{
			Name:   fmt.Sprintf("Tn(%s->%s)", s.G.NameOf(e.From), s.G.NameOf(e.To)),
			Impact: impact,
			Bounds: core.NoMin(1 / s.Rate(a)),
		})
	}
	// Latency features per path (Eq. 8): the sum of the member
	// applications' computation models plus the modelled transfers.
	for k, path := range s.Paths {
		var fs []float64
		var cs []Complexity
		comm := make([]float64, nz)
		for i := 0; i+1 < len(path.Nodes); i++ {
			u, v := path.Nodes[i], path.Nodes[i+1]
			if a := s.AppPos(u); a >= 0 {
				fs = append(fs, factors[a])
				cs = append(cs, comps[a])
			}
			if coeffs, ok := s.CommCoeffs[Edge{From: u, To: v}]; ok {
				vecmath.Add(comm, comm, coeffs)
			}
		}
		impact, err := scaledImpact(nz, fs, cs, comm)
		if err != nil {
			return nil, core.Perturbation{}, err
		}
		features = append(features, core.Feature{
			Name:   fmt.Sprintf("L(P%d)", k+1),
			Impact: impact,
			Bounds: core.NoMin(s.LatencyMax[k]),
		})
	}

	p := core.Perturbation{
		Name:     "λ",
		Orig:     vecmath.Clone(s.OrigLoads),
		Units:    "objects/data set",
		Discrete: true,
	}
	return features, p, nil
}

// scaledImpact builds the impact Σ_i fs[i]·cs[i](λ) + comm·λ. When every
// complexity is linear it collapses to an exact LinearImpact (hyperplane
// analysis); otherwise it returns a convex FuncImpact with an analytic
// gradient (positive multiples and sums of convex functions are convex —
// §3.2).
func scaledImpact(nz int, fs []float64, cs []Complexity, comm []float64) (core.Impact, error) {
	allLinear := true
	for _, c := range cs {
		if !c.IsLinear() {
			allLinear = false
			break
		}
	}
	if allLinear {
		coeffs := make([]float64, nz)
		if comm != nil {
			copy(coeffs, comm)
		}
		for i, c := range cs {
			for z, b := range c.LinearCoeffs(nz) {
				coeffs[z] += fs[i] * b
			}
		}
		return core.NewLinearImpact(coeffs, 0)
	}
	fsc := append([]float64(nil), fs...)
	csc := append([]Complexity(nil), cs...)
	var commc []float64
	if comm != nil {
		commc = vecmath.Clone(comm)
	}
	return &core.FuncImpact{
		N: nz,
		F: func(lambda []float64) float64 {
			var sum vecmath.KahanSum
			for i, c := range csc {
				sum.Add(fsc[i] * c.Eval(lambda))
			}
			if commc != nil {
				sum.Add(vecmath.Dot(commc, lambda))
			}
			return sum.Sum()
		},
		Grad: func(dst, lambda []float64) []float64 {
			if len(dst) != len(lambda) {
				dst = make([]float64, len(lambda))
			} else {
				for i := range dst {
					dst[i] = 0
				}
			}
			tmp := make([]float64, len(lambda))
			for i, c := range csc {
				tmp = c.Gradient(tmp, lambda)
				vecmath.AddScaled(dst, dst, fsc[i], tmp)
			}
			if commc != nil {
				vecmath.Add(dst, dst, commc)
			}
			return dst
		},
		Convex: true,
	}, nil
}

// Slack computes the §4.3 system-wide percentage slack at λ^orig: the
// minimum over all QoS constraints of one minus the constraint's fractional
// value. Negative slack means some constraint is already violated at the
// assumed loads.
func Slack(s *System, m Mapping) float64 {
	if err := m.Validate(s); err != nil {
		return math.NaN()
	}
	counts := m.Counts(s)
	lambda := s.OrigLoads
	slack := math.Inf(1)

	comp := make([]float64, s.Applications())
	for a := 0; a < s.Applications(); a++ {
		j := m[a]
		comp[a] = MultitaskFactor(counts[j]) * s.CompFuncs[a][j].Eval(lambda)
	}
	// Throughput slack: 1 − max(T_i^c, max_p T_ip^n)·R(a_i).
	for a := 0; a < s.Applications(); a++ {
		worst := comp[a]
		node := s.AppNode(a)
		for _, succ := range s.G.Successors(node) {
			if coeffs, ok := s.CommCoeffs[Edge{From: node, To: succ}]; ok {
				worst = math.Max(worst, vecmath.Dot(coeffs, lambda))
			}
		}
		slack = math.Min(slack, 1-worst*s.Rate(a))
	}
	// Latency slack: 1 − L_k/L_k^max.
	for k, path := range s.Paths {
		var lat vecmath.KahanSum
		for i := 0; i+1 < len(path.Nodes); i++ {
			u, v := path.Nodes[i], path.Nodes[i+1]
			if a := s.AppPos(u); a >= 0 {
				lat.Add(comp[a])
			}
			if coeffs, ok := s.CommCoeffs[Edge{From: u, To: v}]; ok {
				lat.Add(vecmath.Dot(coeffs, lambda))
			}
		}
		slack = math.Min(slack, 1-lat.Sum()/s.LatencyMax[k])
	}
	return slack
}
