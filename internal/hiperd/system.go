// Package hiperd derives the robustness metric for the paper's second
// example system (§3.2): a HiPer-D-like platform of continuously executing,
// communicating applications fed by sensors, mapped onto multitasking
// machines. The mapping must be robust with respect to two QoS attributes —
// the minimum-throughput and maximum end-to-end latency constraints —
// against unforeseen increases in the sensor loads λ.
//
// Following the FePIA procedure:
//
//   - Features (Eq. 9): the computation times T_i^c, the communication
//     times T_ip^n, and the path latencies L_k.
//   - Perturbation: the sensor-load vector λ with operating point λ^orig.
//     λ counts objects per data set, so it is discrete: the aggregate
//     metric is floored (§3.2).
//   - Impact: T_i^c(λ) and T_ip^n(λ) are complexity functions of the load;
//     the §4.3 experiments use the linear form
//     factor(n(m_j)) · Σ_z b_ijz λ_z with the multitasking factor
//     1.3·n(m_j) for n ≥ 2. L_k(λ) follows from Eq. 8.
//   - Analysis (Eqs. 10–11): minimum-norm distances from λ^orig to each
//     boundary relationship; all impacts here are affine, so the radii are
//     exact hyperplane distances.
package hiperd

import (
	"fmt"
	"math"

	"fepia/internal/dag"
)

// Edge identifies a data transfer from one node to another (graph node
// indices).
type Edge struct {
	From, To int
}

// System is an immutable HiPer-D problem instance. Build one with
// NewSystem (validating) or GenerateSystem (random, §4.3-distributed).
type System struct {
	// G is the application graph.
	G *dag.Graph
	// Paths is the enumerated path set P (fixed at construction so path
	// indices are stable).
	Paths []dag.Path
	// Machines is |M|.
	Machines int
	// SensorRates[z] is the output data rate R of the z-th sensor (in
	// G.Sensors() order). The throughput constraint for an application
	// driven by sensor z is T ≤ 1/SensorRates[z].
	SensorRates []float64
	// OrigLoads is λ^orig, the assumed objects-per-data-set of each
	// sensor.
	OrigLoads []float64
	// CompCoeffs[a][j][z] is b_ijz: the load coefficient of application
	// position a (in G.Applications() order) on machine j against sensor
	// z, before the multitasking factor. Zero when no route exists from
	// the sensor to the application. Nil when the system was built from
	// non-linear complexity functions — use CompFuncs then.
	CompCoeffs [][][]float64
	// CompFuncs[a][j] is the complexity function of application a on
	// machine j, before the multitasking factor. Always populated; for a
	// linear system it mirrors CompCoeffs. The §3.2 text allows any convex
	// complexity function of the load — see the Term kinds.
	CompFuncs [][]Complexity
	// CommCoeffs maps a data-transfer edge to its per-sensor load
	// coefficients. Missing edges have zero communication time (the §4.3
	// experiments set all of them to zero).
	CommCoeffs map[Edge][]float64
	// LatencyMax[k] is L_k^max for path k.
	LatencyMax []float64

	// appPos maps a graph node index to its position in G.Applications().
	appPos map[int]int
	// sensorPos maps a graph node index to its position in G.Sensors().
	sensorPos map[int]int
	// rateOf[a] is R(a_i): the highest driving-sensor rate over the paths
	// containing the application (the binding throughput requirement when
	// an application lies on several paths).
	rateOf []float64
}

// validateCommon checks everything except the computation-time model and
// returns the enumerated path set.
func validateCommon(g *dag.Graph, machines int, sensorRates, origLoads []float64,
	commCoeffs map[Edge][]float64, latencyMax []float64) ([]dag.Path, error) {
	if err := g.Validate(); err != nil {
		return nil, fmt.Errorf("hiperd: %w", err)
	}
	if machines < 1 {
		return nil, fmt.Errorf("hiperd: machines = %d must be ≥ 1", machines)
	}
	sensors := g.Sensors()
	if len(sensorRates) != len(sensors) {
		return nil, fmt.Errorf("hiperd: %d sensor rates for %d sensors", len(sensorRates), len(sensors))
	}
	for z, r := range sensorRates {
		if !(r > 0) {
			return nil, fmt.Errorf("hiperd: sensor rate %d = %v must be positive", z, r)
		}
	}
	if len(origLoads) != len(sensors) {
		return nil, fmt.Errorf("hiperd: %d initial loads for %d sensors", len(origLoads), len(sensors))
	}
	for z, l := range origLoads {
		if l < 0 || math.IsNaN(l) || math.IsInf(l, 0) {
			return nil, fmt.Errorf("hiperd: initial load %d = %v must be finite and ≥ 0", z, l)
		}
	}
	paths, err := g.Paths(0)
	if err != nil {
		return nil, fmt.Errorf("hiperd: %w", err)
	}
	if len(latencyMax) != len(paths) {
		return nil, fmt.Errorf("hiperd: %d latency bounds for %d paths", len(latencyMax), len(paths))
	}
	for k, l := range latencyMax {
		if !(l > 0) {
			return nil, fmt.Errorf("hiperd: latency bound %d = %v must be positive", k, l)
		}
	}
	for e, c := range commCoeffs {
		if len(c) != len(sensors) {
			return nil, fmt.Errorf("hiperd: comm coefficients of edge %v have %d entries, want %d", e, len(c), len(sensors))
		}
		if !validEdge(g, e) {
			return nil, fmt.Errorf("hiperd: comm coefficients given for non-edge %v", e)
		}
	}
	return paths, nil
}

// NewSystem validates and indexes a HiPer-D instance with the linear
// computation-time model of §4.3. The path set is enumerated here;
// latencyMax must have one entry per enumerated path (enumerate first with
// (*dag.Graph).Paths if you need the count).
func NewSystem(g *dag.Graph, machines int, sensorRates, origLoads []float64,
	compCoeffs [][][]float64, commCoeffs map[Edge][]float64, latencyMax []float64) (*System, error) {
	paths, err := validateCommon(g, machines, sensorRates, origLoads, commCoeffs, latencyMax)
	if err != nil {
		return nil, err
	}
	sensors := g.Sensors()
	apps := g.Applications()
	if len(compCoeffs) != len(apps) {
		return nil, fmt.Errorf("hiperd: coefficients for %d applications, want %d", len(compCoeffs), len(apps))
	}
	compFuncs := make([][]Complexity, len(apps))
	for a, byMachine := range compCoeffs {
		if len(byMachine) != machines {
			return nil, fmt.Errorf("hiperd: application %d has coefficients for %d machines, want %d", a, len(byMachine), machines)
		}
		compFuncs[a] = make([]Complexity, machines)
		for j, bySensor := range byMachine {
			if len(bySensor) != len(sensors) {
				return nil, fmt.Errorf("hiperd: application %d machine %d has %d sensor coefficients, want %d", a, j, len(bySensor), len(sensors))
			}
			for z, b := range bySensor {
				if b < 0 || math.IsNaN(b) || math.IsInf(b, 0) {
					return nil, fmt.Errorf("hiperd: b[%d][%d][%d] = %v must be finite and ≥ 0", a, j, z, b)
				}
			}
			compFuncs[a][j] = LinearComplexity(bySensor)
		}
	}

	return assemble(g, paths, machines, sensorRates, origLoads, compCoeffs, compFuncs, commCoeffs, latencyMax)
}

// NewSystemComplex builds a HiPer-D instance whose computation times are
// arbitrary convex complexity functions of the load (§3.2: "the
// computation times of different applications … are likely to be of
// different complexities with respect to λ"). compFuncs[a][j] gives the
// complexity of application a on machine j before the multitasking
// factor. CompCoeffs is populated only when every complexity is linear.
func NewSystemComplex(g *dag.Graph, machines int, sensorRates, origLoads []float64,
	compFuncs [][]Complexity, commCoeffs map[Edge][]float64, latencyMax []float64) (*System, error) {
	paths, err := validateCommon(g, machines, sensorRates, origLoads, commCoeffs, latencyMax)
	if err != nil {
		return nil, err
	}
	sensors := g.Sensors()
	apps := g.Applications()
	if len(compFuncs) != len(apps) {
		return nil, fmt.Errorf("hiperd: complexities for %d applications, want %d", len(compFuncs), len(apps))
	}
	allLinear := true
	for a, byMachine := range compFuncs {
		if len(byMachine) != machines {
			return nil, fmt.Errorf("hiperd: application %d has complexities for %d machines, want %d", a, len(byMachine), machines)
		}
		for j, c := range byMachine {
			if err := c.Validate(len(sensors)); err != nil {
				return nil, fmt.Errorf("hiperd: application %d machine %d: %w", a, j, err)
			}
			if !c.IsLinear() {
				allLinear = false
			}
		}
	}
	var compCoeffs [][][]float64
	if allLinear {
		compCoeffs = make([][][]float64, len(apps))
		for a := range compFuncs {
			compCoeffs[a] = make([][]float64, machines)
			for j := range compFuncs[a] {
				compCoeffs[a][j] = compFuncs[a][j].LinearCoeffs(len(sensors))
			}
		}
	}
	return assemble(g, paths, machines, sensorRates, origLoads, compCoeffs, compFuncs, commCoeffs, latencyMax)
}

// assemble builds the indexed System after all validation has passed.
func assemble(g *dag.Graph, paths []dag.Path, machines int, sensorRates, origLoads []float64,
	compCoeffs [][][]float64, compFuncs [][]Complexity, commCoeffs map[Edge][]float64, latencyMax []float64) (*System, error) {
	sensors := g.Sensors()
	apps := g.Applications()
	s := &System{
		G:           g,
		Paths:       paths,
		Machines:    machines,
		SensorRates: append([]float64(nil), sensorRates...),
		OrigLoads:   append([]float64(nil), origLoads...),
		CompCoeffs:  compCoeffs,
		CompFuncs:   compFuncs,
		CommCoeffs:  commCoeffs,
		LatencyMax:  append([]float64(nil), latencyMax...),
		appPos:      make(map[int]int, len(apps)),
		sensorPos:   make(map[int]int, len(sensors)),
	}
	for pos, node := range apps {
		s.appPos[node] = pos
	}
	for pos, node := range sensors {
		s.sensorPos[node] = pos
	}
	if err := s.computeRates(); err != nil {
		return nil, err
	}
	return s, nil
}

// computeRates assigns R(a_i) to every application: the maximum driving-
// sensor rate over all paths containing it. Every application must appear
// in at least one path, otherwise no throughput requirement would cover it.
func (s *System) computeRates() error {
	s.rateOf = make([]float64, len(s.appPos))
	for _, p := range s.Paths {
		rate := s.SensorRates[s.sensorPos[p.DrivingSensor()]]
		for _, node := range p.Applications(s.G) {
			a := s.appPos[node]
			if rate > s.rateOf[a] {
				s.rateOf[a] = rate
			}
		}
	}
	for node, a := range s.appPos {
		if s.rateOf[a] == 0 {
			return fmt.Errorf("hiperd: application %s belongs to no path; no throughput requirement covers it", s.G.NameOf(node))
		}
	}
	return nil
}

// Sensors returns |Π| — the dimension of the load vector.
func (s *System) Sensors() int { return len(s.SensorRates) }

// Applications returns |A|.
func (s *System) Applications() int { return len(s.appPos) }

// AppNode returns the graph node index of application position a.
func (s *System) AppNode(a int) int { return s.G.Applications()[a] }

// AppPos returns the application position of graph node index, or −1.
func (s *System) AppPos(node int) int {
	if p, ok := s.appPos[node]; ok {
		return p
	}
	return -1
}

// Rate returns R(a_i) for application position a.
func (s *System) Rate(a int) float64 { return s.rateOf[a] }

// MultitaskFactor returns the §4.3 factor applied to computation times:
// 1 for a dedicated machine, 1.3·n for a machine running n ≥ 2
// applications round-robin.
func MultitaskFactor(n int) float64 {
	if n <= 1 {
		return 1
	}
	return 1.3 * float64(n)
}

func validEdge(g *dag.Graph, e Edge) bool {
	if e.From < 0 || e.From >= g.Len() {
		return false
	}
	for _, t := range g.Successors(e.From) {
		if t == e.To {
			return true
		}
	}
	return false
}

// Mapping assigns each application position to a machine.
type Mapping []int

// Validate checks the mapping against the system.
func (m Mapping) Validate(s *System) error {
	if len(m) != s.Applications() {
		return fmt.Errorf("hiperd: mapping length %d, want %d applications", len(m), s.Applications())
	}
	for a, j := range m {
		if j < 0 || j >= s.Machines {
			return fmt.Errorf("hiperd: application %d mapped to machine %d, want [0,%d)", a, j, s.Machines)
		}
	}
	return nil
}

// Counts returns n(m_j) for every machine.
func (m Mapping) Counts(s *System) []int {
	counts := make([]int, s.Machines)
	for _, j := range m {
		counts[j]++
	}
	return counts
}
