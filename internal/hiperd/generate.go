package hiperd

import (
	"fmt"
	"math"
	"sort"

	"fepia/internal/dag"
	"fepia/internal/stats"
)

// GenParams configures the §4.3 instance generator.
//
// Calibration note. Read literally, the paper's published constants are
// mutually inconsistent: coefficients b_ijz with mean 10 against loads of
// order 10³ give computation times of order 10⁵, while the latency bounds
// are sampled from [750, 1250] and the throughput bounds 1/R from
// {25000, 33333, 125000} — every random mapping would violate at λ^orig,
// which contradicts Figure 4 (all robustness values are positive and
// slacks mostly in [0.1, 0.8]). The generator therefore keeps every
// published distributional aspect (rates, initial loads, Gamma
// coefficient shape, heterogeneities, multitasking factor, the ±25%
// latency-bound spread) and calibrates two scalars so the instance sits in
// the same feasibility regime as the paper's figures:
//
//   - all coefficients are multiplied by one common scale so that, over a
//     sample of random mappings, the 90th percentile of the worst
//     fractional throughput use at λ^orig equals ThroughputTarget;
//   - each L_k^max is U[0.75,1.25] × L̂_k / LatencyTarget, where L̂_k is
//     the path's 90th-percentile latency at λ^orig over the same sample
//     (the paper's [750,1250] = 1000×U[0.75,1.25] spread).
//
// EXPERIMENTS.md records the effect of the substitution.
type GenParams struct {
	// Dag configures the random application graph.
	Dag dag.GenConfig
	// TargetPaths, when positive, retries DAG generation until the path
	// count matches (the paper's instance has 19).
	TargetPaths int
	// Machines is |M|; the paper uses 5.
	Machines int
	// CoeffMean, TaskHet, MachineHet parameterise the two-stage Gamma
	// sampling of b_ijz (mean 10, heterogeneities 0.7 in the paper).
	CoeffMean, TaskHet, MachineHet float64
	// SensorRates are the output data rates (paper: 4e-5, 3e-5, 8e-6).
	SensorRates []float64
	// OrigLoads is λ^orig (paper: 962, 380, 240).
	OrigLoads []float64
	// ThroughputTarget is the calibrated 90th percentile, over sampled
	// random mappings, of the worst fractional throughput use at λ^orig;
	// 0 selects 0.8 (≈90% of random mappings satisfy every throughput
	// constraint, matching the all-positive robustness values of Fig. 4).
	ThroughputTarget float64
	// LatencyTarget is the calibrated 90th-percentile fractional latency
	// of each path at λ^orig; 0 selects 0.45.
	LatencyTarget float64
	// NonlinearFraction is the probability that an application's
	// complexity against a routed sensor uses one of §3.2's non-linear
	// convex forms (x^p, e^{px}, x·log x) instead of a linear term. The
	// paper's own experiments use 0 ("simple complexity functions … only
	// to simplify the experiments"); positive values exercise the convex
	// solver path end to end. Non-linear terms are scaled to the same
	// magnitude as their linear counterpart at λ^orig, so the calibration
	// regime is preserved.
	NonlinearFraction float64
}

// PaperGenParams returns the §4.3 configuration: 3 sensors with the
// published rates and initial loads, 20 applications, 3 actuators,
// 19 paths, 5 machines, Gamma(mean 10, het 0.7/0.7) coefficients.
func PaperGenParams() GenParams {
	return GenParams{
		Dag:         dag.PaperGenConfig(),
		TargetPaths: 19,
		Machines:    5,
		CoeffMean:   10, TaskHet: 0.7, MachineHet: 0.7,
		SensorRates: []float64{4e-5, 3e-5, 8e-6},
		OrigLoads:   []float64{962, 380, 240},
	}
}

// Validate reports the first problem with the parameters, if any.
func (p GenParams) Validate() error {
	if err := p.Dag.Validate(); err != nil {
		return err
	}
	switch {
	case p.Machines < 1:
		return fmt.Errorf("hiperd: Machines = %d must be ≥ 1", p.Machines)
	case !(p.CoeffMean > 0) || !(p.TaskHet > 0) || !(p.MachineHet > 0):
		return fmt.Errorf("hiperd: coefficient distribution parameters must be positive")
	case len(p.SensorRates) != p.Dag.Sensors:
		return fmt.Errorf("hiperd: %d sensor rates for %d sensors", len(p.SensorRates), p.Dag.Sensors)
	case len(p.OrigLoads) != p.Dag.Sensors:
		return fmt.Errorf("hiperd: %d initial loads for %d sensors", len(p.OrigLoads), p.Dag.Sensors)
	case p.ThroughputTarget < 0 || p.ThroughputTarget >= 1:
		return fmt.Errorf("hiperd: ThroughputTarget = %v must be in [0,1)", p.ThroughputTarget)
	case p.LatencyTarget < 0 || p.LatencyTarget >= 1:
		return fmt.Errorf("hiperd: LatencyTarget = %v must be in [0,1)", p.LatencyTarget)
	case p.NonlinearFraction < 0 || p.NonlinearFraction > 1:
		return fmt.Errorf("hiperd: NonlinearFraction = %v must be in [0,1]", p.NonlinearFraction)
	}
	return nil
}

// GenerateSystem samples a complete HiPer-D instance.
func GenerateSystem(rng *stats.RNG, p GenParams) (*System, error) {
	if err := p.Validate(); err != nil {
		return nil, err
	}
	if p.ThroughputTarget == 0 {
		p.ThroughputTarget = 0.8
	}
	if p.LatencyTarget == 0 {
		p.LatencyTarget = 0.45
	}

	var g *dag.Graph
	var err error
	if p.TargetPaths > 0 {
		g, _, err = dag.GenerateWithPathCount(rng, p.Dag, p.TargetPaths, 0)
	} else {
		g, err = dag.Generate(rng, p.Dag)
	}
	if err != nil {
		return nil, err
	}

	// Two-stage CVB sampling of b_ijz, zeroed when sensor z has no route
	// to the application. With NonlinearFraction > 0, an (application,
	// sensor) pair may use a non-linear convex form instead, with its
	// coefficient normalised so the term value at λ^orig matches the
	// linear term it replaces.
	routes := g.Routes()
	apps := g.Applications()
	nz := len(p.SensorRates)
	funcs := make([][]Complexity, len(apps))
	for a, node := range apps {
		byMachine := make([]Complexity, p.Machines)
		for z := 0; z < nz; z++ {
			if !routes[z][node] {
				continue
			}
			kind := LinearTerm
			if rng.Float64() < p.NonlinearFraction {
				switch rng.Intn(3) {
				case 0:
					kind = PowerTerm
				case 1:
					kind = ExpTerm
				default:
					kind = XLogXTerm
				}
			}
			q := rng.GammaMeanCV(p.CoeffMean, p.TaskHet)
			for j := 0; j < p.Machines; j++ {
				b := rng.GammaMeanCV(q, p.MachineHet)
				byMachine[j] = append(byMachine[j], normalisedTerm(kind, z, b, p.OrigLoads[z]))
			}
		}
		funcs[a] = byMachine
	}

	// Calibration against a sample of random mappings. A provisional
	// system (unit latency bounds) supplies the path set and the exact
	// per-application rates R(a_i).
	paths, err := g.Paths(0)
	if err != nil {
		return nil, err
	}
	ones := make([]float64, len(paths))
	for k := range ones {
		ones[k] = 1
	}
	tmp, err := NewSystemComplex(g, p.Machines, p.SensorRates, p.OrigLoads, funcs, nil, ones)
	if err != nil {
		return nil, err
	}

	const samples = 64
	// maxFracs[m] is the worst fractional throughput use of sample
	// mapping m; pathLat[k][m] is the latency of path k under mapping m.
	maxFracs := make([]float64, 0, samples)
	pathLat := make([][]float64, len(paths))
	for k := range pathLat {
		pathLat[k] = make([]float64, 0, samples)
	}
	for sm := 0; sm < samples; sm++ {
		m := RandomMapping(rng, tmp)
		counts := m.Counts(tmp)
		comp := make([]float64, len(apps))
		worst := 0.0
		for a := range apps {
			j := m[a]
			comp[a] = MultitaskFactor(counts[j]) * funcs[a][j].Eval(p.OrigLoads)
			if frac := comp[a] * tmp.Rate(a); frac > worst {
				worst = frac
			}
		}
		maxFracs = append(maxFracs, worst)
		for k, path := range paths {
			var l float64
			for i := 0; i+1 < len(path.Nodes); i++ {
				if a := tmp.AppPos(path.Nodes[i]); a >= 0 {
					l += comp[a]
				}
			}
			pathLat[k] = append(pathLat[k], l)
		}
	}

	// Scalar 1: scale coefficients so the 90th percentile of the
	// per-mapping worst throughput fraction equals ThroughputTarget.
	q90 := quantile90(maxFracs)
	if q90 <= 0 {
		return nil, fmt.Errorf("hiperd: generated instance has no load-dependent applications")
	}
	scale := p.ThroughputTarget / q90
	for a := range funcs {
		for j := range funcs[a] {
			funcs[a][j].Scale(scale)
		}
	}

	// Scalar 2: latency bounds with the paper's ±25% spread, sized so the
	// 90th-percentile mapping of each path sits at LatencyTarget. Latency
	// scales linearly with the coefficients, so the sampled values are
	// rescaled rather than recomputed.
	latencyMax := make([]float64, len(paths))
	for k := range paths {
		lq := quantile90(pathLat[k]) * scale
		if lq == 0 {
			lq = 1 // path with no modelled load-dependent work
		}
		latencyMax[k] = rng.Uniform(0.75, 1.25) * lq / p.LatencyTarget
	}

	return NewSystemComplex(g, p.Machines, p.SensorRates, p.OrigLoads, funcs, nil, latencyMax)
}

// normalisedTerm builds a term of the chosen kind whose value at the
// sensor's initial load equals b·origLoad — the value the linear term it
// replaces would have — so mixing forms does not disturb the calibration.
func normalisedTerm(kind TermKind, sensor int, b, origLoad float64) Term {
	if origLoad <= 0 {
		// Degenerate initial load: fall back to the linear form, whose
		// value is well defined everywhere.
		return Term{Kind: LinearTerm, Index: sensor, Coeff: b}
	}
	target := b * origLoad
	switch kind {
	case PowerTerm:
		const p = 1.7
		return Term{Kind: PowerTerm, Index: sensor, P: p, Coeff: target / math.Pow(origLoad, p)}
	case ExpTerm:
		rate := 1 / origLoad // e^{λ/λ^orig}: gentle, convex, monotone
		return Term{Kind: ExpTerm, Index: sensor, P: rate, Coeff: target / (math.E - 1)}
	case XLogXTerm:
		return Term{Kind: XLogXTerm, Index: sensor, Coeff: target / (origLoad * math.Log(1+origLoad))}
	default:
		return Term{Kind: LinearTerm, Index: sensor, Coeff: b}
	}
}

// quantile90 returns the 90th percentile of v (nearest-rank).
func quantile90(v []float64) float64 {
	s := append([]float64(nil), v...)
	sort.Float64s(s)
	idx := (len(s) * 9) / 10
	if idx >= len(s) {
		idx = len(s) - 1
	}
	return s[idx]
}

// RandomMapping draws a uniformly random machine for every application
// (§4.1's mapping generator).
func RandomMapping(rng *stats.RNG, s *System) Mapping {
	m := make(Mapping, s.Applications())
	for a := range m {
		m[a] = rng.Intn(s.Machines)
	}
	return m
}
