package hiperd

import "fepia/internal/convexfn"

// The computation-time complexity machinery lives in internal/convexfn
// (it is shared with the generic JSON system specifications); these
// aliases keep the HiPer-D vocabulary — a Term's Index is the sensor the
// term depends on.
type (
	// TermKind enumerates the §3.2 convex complexity forms.
	TermKind = convexfn.TermKind
	// Term is one additive piece of a complexity function.
	Term = convexfn.Term
	// Complexity is a convex, non-decreasing function of the load vector.
	Complexity = convexfn.Complexity
)

// Re-exported term kinds.
const (
	// LinearTerm contributes coeff·λ_z.
	LinearTerm = convexfn.LinearTerm
	// PowerTerm contributes coeff·λ_z^P (P ≥ 1).
	PowerTerm = convexfn.PowerTerm
	// ExpTerm contributes coeff·(e^{P·λ_z} − 1) (P > 0).
	ExpTerm = convexfn.ExpTerm
	// XLogXTerm contributes coeff·λ_z·log(1+λ_z).
	XLogXTerm = convexfn.XLogXTerm
)

// LinearComplexity builds a Complexity from a plain coefficient vector,
// omitting zero entries.
func LinearComplexity(coeffs []float64) Complexity {
	return convexfn.LinearComplexity(coeffs)
}
