package hiperd

import (
	"context"

	"fepia/internal/batch"
)

// EvaluateBatch runs the full §3.2 analysis of many mappings of one
// system concurrently over the batch engine. Results are returned in
// mapping order and are identical to calling Evaluate per mapping; only
// the schedule differs. With opts.Cache set, structurally identical
// feature subproblems — e.g. the computation-time hyperplane of an
// application that several mappings place alone on the same machine —
// are solved once across the whole population, which is where the §4.3
// 1000-mapping sweep recovers most of its repeated work.
func EvaluateBatch(ctx context.Context, s *System, ms []Mapping, opts batch.Options) ([]Result, error) {
	out := make([]Result, len(ms))
	err := batch.ForEach(ctx, len(ms), opts.Workers, func(i int) error {
		features, p, err := Features(s, ms[i])
		if err != nil {
			return err
		}
		a, err := batch.AnalyzeOne(batch.Job{Features: features, Perturbation: p}, opts)
		if err != nil {
			return err
		}
		res := Result{
			Analysis:   a,
			Robustness: a.Robustness,
			Slack:      Slack(s, ms[i]),
		}
		if cf := a.CriticalFeature(); cf != nil {
			res.BoundaryLoads = cf.Boundary
		}
		out[i] = res
		return nil
	})
	if err != nil {
		return nil, err
	}
	return out, nil
}

// Jobs converts mappings into batch-engine jobs (one feature set per
// mapping) for callers that drive batch.Analyze directly, e.g. through
// the public robustness.AnalyzeBatch facade.
func Jobs(s *System, ms []Mapping) ([]batch.Job, error) {
	jobs := make([]batch.Job, len(ms))
	for i, m := range ms {
		features, p, err := Features(s, m)
		if err != nil {
			return nil, err
		}
		jobs[i] = batch.Job{Features: features, Perturbation: p}
	}
	return jobs, nil
}
