package hiperd

import (
	"encoding/json"
	"fmt"

	"fepia/internal/dag"
)

// systemJSON is the self-contained wire form of a System: the graph, the
// QoS parameters, and the computation/communication models. Node order is
// preserved so application positions and path indices are stable across a
// round trip.
type systemJSON struct {
	Machines    int            `json:"machines"`
	SensorRates []float64      `json:"sensor_rates"`
	OrigLoads   []float64      `json:"orig_loads"`
	Nodes       []nodeJSON     `json:"nodes"`
	Edges       [][2]int       `json:"edges"`
	LatencyMax  []float64      `json:"latency_max"`
	Comps       [][]Complexity `json:"complexities"` // [app position][machine]
	Comm        []commJSON     `json:"comm,omitempty"`
}

type nodeJSON struct {
	Kind string `json:"kind"` // "sensor", "application", "actuator"
	Name string `json:"name,omitempty"`
}

type commJSON struct {
	From   int       `json:"from"`
	To     int       `json:"to"`
	Coeffs []float64 `json:"coeffs"`
}

// MarshalSystem serialises a System to JSON.
func MarshalSystem(s *System) ([]byte, error) {
	doc := systemJSON{
		Machines:    s.Machines,
		SensorRates: s.SensorRates,
		OrigLoads:   s.OrigLoads,
		LatencyMax:  s.LatencyMax,
		Comps:       s.CompFuncs,
	}
	for i := 0; i < s.G.Len(); i++ {
		doc.Nodes = append(doc.Nodes, nodeJSON{Kind: s.G.KindOf(i).String(), Name: s.G.NameOf(i)})
		for _, succ := range s.G.Successors(i) {
			doc.Edges = append(doc.Edges, [2]int{i, succ})
		}
	}
	for e, coeffs := range s.CommCoeffs {
		doc.Comm = append(doc.Comm, commJSON{From: e.From, To: e.To, Coeffs: coeffs})
	}
	return json.MarshalIndent(doc, "", "  ")
}

// UnmarshalSystem rebuilds (and fully re-validates) a System from JSON.
func UnmarshalSystem(data []byte) (*System, error) {
	var doc systemJSON
	if err := json.Unmarshal(data, &doc); err != nil {
		return nil, fmt.Errorf("hiperd: %w", err)
	}
	g := &dag.Graph{}
	for i, n := range doc.Nodes {
		var kind dag.Kind
		switch n.Kind {
		case "sensor":
			kind = dag.Sensor
		case "application":
			kind = dag.Application
		case "actuator":
			kind = dag.Actuator
		default:
			return nil, fmt.Errorf("hiperd: node %d has unknown kind %q", i, n.Kind)
		}
		g.AddNode(kind, n.Name)
	}
	for _, e := range doc.Edges {
		if err := g.AddEdge(e[0], e[1]); err != nil {
			return nil, fmt.Errorf("hiperd: %w", err)
		}
	}
	var comm map[Edge][]float64
	if len(doc.Comm) > 0 {
		comm = make(map[Edge][]float64, len(doc.Comm))
		for _, c := range doc.Comm {
			comm[Edge{From: c.From, To: c.To}] = c.Coeffs
		}
	}
	return NewSystemComplex(g, doc.Machines, doc.SensorRates, doc.OrigLoads, doc.Comps, comm, doc.LatencyMax)
}
