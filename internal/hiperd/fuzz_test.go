package hiperd

import (
	"testing"

	"fepia/internal/stats"
)

// FuzzUnmarshalSystem checks that arbitrary bytes never panic the system
// decoder and that every accepted system is actually evaluable.
func FuzzUnmarshalSystem(f *testing.F) {
	// Seed with a real serialised instance plus structural mutations.
	sys, err := GenerateSystem(stats.NewRNG(99), PaperGenParams())
	if err != nil {
		f.Fatal(err)
	}
	data, err := MarshalSystem(sys)
	if err != nil {
		f.Fatal(err)
	}
	f.Add(data)
	f.Add([]byte(`{}`))
	f.Add([]byte(`{"machines":1,"sensor_rates":[1],"orig_loads":[1],
	  "nodes":[{"kind":"sensor"},{"kind":"application"},{"kind":"actuator"}],
	  "edges":[[0,1],[1,2]],"latency_max":[5],
	  "complexities":[[[{"kind":"linear","index":0,"coeff":1}]]]}`))
	f.Fuzz(func(t *testing.T, data []byte) {
		s, err := UnmarshalSystem(data)
		if err != nil {
			return
		}
		// Accepted systems must be evaluable end to end.
		m := RandomMapping(stats.NewRNG(1), s)
		if _, err := Evaluate(s, m); err != nil {
			t.Fatalf("accepted system not evaluable: %v", err)
		}
	})
}
