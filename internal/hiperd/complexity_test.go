package hiperd

import (
	"math"
	"strings"
	"testing"

	"fepia/internal/core"
	"fepia/internal/dag"
	"fepia/internal/stats"
	"fepia/internal/vecmath"
)

func TestTermValidate(t *testing.T) {
	bad := []Term{
		{Kind: LinearTerm, Index: -1, Coeff: 1},
		{Kind: LinearTerm, Index: 5, Coeff: 1},
		{Kind: LinearTerm, Index: 0, Coeff: -1},
		{Kind: LinearTerm, Index: 0, Coeff: math.NaN()},
		{Kind: PowerTerm, Index: 0, Coeff: 1, P: 0.5},
		{Kind: ExpTerm, Index: 0, Coeff: 1, P: 0},
		{Kind: TermKind(99), Index: 0, Coeff: 1},
	}
	for i, term := range bad {
		if err := term.Validate(3); err == nil {
			t.Errorf("bad term %d accepted", i)
		}
	}
	good := []Term{
		{Kind: LinearTerm, Index: 0, Coeff: 2},
		{Kind: PowerTerm, Index: 1, Coeff: 1, P: 2},
		{Kind: ExpTerm, Index: 2, Coeff: 0.5, P: 0.01},
		{Kind: XLogXTerm, Index: 0, Coeff: 3},
	}
	for i, term := range good {
		if err := term.Validate(3); err != nil {
			t.Errorf("good term %d rejected: %v", i, err)
		}
	}
}

func TestTermEvalAndDeriv(t *testing.T) {
	lam := []float64{4, 2, 3}
	cases := []struct {
		term  Term
		value float64
		deriv float64
	}{
		{Term{Kind: LinearTerm, Index: 0, Coeff: 2}, 8, 2},
		{Term{Kind: PowerTerm, Index: 1, Coeff: 3, P: 2}, 12, 12},
		{Term{Kind: ExpTerm, Index: 2, Coeff: 1, P: 1}, math.Exp(3) - 1, math.Exp(3)},
		{Term{Kind: XLogXTerm, Index: 1, Coeff: 1}, 2 * math.Log(3), math.Log(3) + 2.0/3},
	}
	for i, c := range cases {
		if got := c.term.Eval(lam); math.Abs(got-c.value) > 1e-12 {
			t.Errorf("case %d: Eval = %v want %v", i, got, c.value)
		}
		if got := c.term.Deriv(lam); math.Abs(got-c.deriv) > 1e-12 {
			t.Errorf("case %d: Deriv = %v want %v", i, got, c.deriv)
		}
	}
	// Derivatives must match finite differences for all kinds.
	for i, c := range cases {
		h := 1e-6
		up := append([]float64(nil), lam...)
		dn := append([]float64(nil), lam...)
		up[c.term.Index] += h
		dn[c.term.Index] -= h
		fd := (c.term.Eval(up) - c.term.Eval(dn)) / (2 * h)
		if math.Abs(fd-c.term.Deriv(lam)) > 1e-4*(1+math.Abs(fd)) {
			t.Errorf("case %d: analytic %v vs finite difference %v", i, c.term.Deriv(lam), fd)
		}
	}
	// Zero-load edge cases.
	zero := []float64{0, 0, 0}
	if v := (Term{Kind: PowerTerm, Index: 0, Coeff: 1, P: 2}).Eval(zero); v != 0 {
		t.Errorf("power at 0 = %v", v)
	}
	if v := (Term{Kind: XLogXTerm, Index: 0, Coeff: 1}).Eval(zero); v != 0 {
		t.Errorf("xlogx at 0 = %v", v)
	}
	if d := (Term{Kind: PowerTerm, Index: 0, Coeff: 3, P: 1}).Deriv(zero); d != 3 {
		t.Errorf("p=1 power deriv at 0 = %v", d)
	}
}

func TestComplexityHelpers(t *testing.T) {
	c := Complexity{
		{Kind: LinearTerm, Index: 0, Coeff: 2},
		{Kind: LinearTerm, Index: 2, Coeff: 1},
	}
	if !c.IsLinear() {
		t.Errorf("linear complexity misclassified")
	}
	coeffs := c.LinearCoeffs(3)
	if coeffs[0] != 2 || coeffs[1] != 0 || coeffs[2] != 1 {
		t.Errorf("LinearCoeffs = %v", coeffs)
	}
	lam := []float64{1, 9, 2}
	if got := c.Eval(lam); got != 4 {
		t.Errorf("Eval = %v", got)
	}
	g := c.Gradient(nil, lam)
	if g[0] != 2 || g[1] != 0 || g[2] != 1 {
		t.Errorf("Gradient = %v", g)
	}
	c.Scale(3)
	if got := c.Eval(lam); got != 12 {
		t.Errorf("scaled Eval = %v", got)
	}
	nl := Complexity{{Kind: PowerTerm, Index: 0, Coeff: 1, P: 2}}
	if nl.IsLinear() {
		t.Errorf("nonlinear complexity misclassified")
	}
	func() {
		defer func() {
			if recover() == nil {
				t.Errorf("LinearCoeffs on nonlinear should panic")
			}
		}()
		nl.LinearCoeffs(1)
	}()
	if LinearComplexity([]float64{0, 5}).String() == "" || nl.String() == "" {
		t.Errorf("empty renderings")
	}
	if (Complexity{}).Eval(lam) != 0 || (Complexity{}).String() != "0" {
		t.Errorf("empty complexity misbehaves")
	}
}

func TestTermKindString(t *testing.T) {
	for _, k := range []TermKind{LinearTerm, PowerTerm, ExpTerm, XLogXTerm, TermKind(42)} {
		if k.String() == "" {
			t.Errorf("empty TermKind string")
		}
	}
}

// nonlinearTinySystem: one sensor (rate 1e-4, load 10), one app with a
// quadratic complexity λ² on both machines, one actuator.
func nonlinearTinySystem(t *testing.T) *System {
	t.Helper()
	g := &dag.Graph{}
	s0 := g.AddNode(dag.Sensor, "s0")
	a0 := g.AddNode(dag.Application, "a0")
	act := g.AddNode(dag.Actuator, "act")
	if err := g.AddEdge(s0, a0); err != nil {
		t.Fatal(err)
	}
	if err := g.AddEdge(a0, act); err != nil {
		t.Fatal(err)
	}
	funcs := [][]Complexity{{
		{{Kind: PowerTerm, Index: 0, Coeff: 1, P: 2}},
		{{Kind: PowerTerm, Index: 0, Coeff: 2, P: 2}},
	}}
	sys, err := NewSystemComplex(g, 2,
		[]float64{1e-4}, []float64{10},
		funcs, nil, []float64{5000})
	if err != nil {
		t.Fatal(err)
	}
	return sys
}

func TestNonlinearSystemHandChecked(t *testing.T) {
	sys := nonlinearTinySystem(t)
	if sys.CompCoeffs != nil {
		t.Errorf("nonlinear system should not expose linear coefficients")
	}
	m := Mapping{0} // machine 0, single app → factor 1, T = λ².
	res, err := Evaluate(sys, m)
	if err != nil {
		t.Fatal(err)
	}
	// Throughput: λ² ≤ 1/R = 10000 → λ ≤ 100 → radius 90.
	// Latency: λ² ≤ 5000 → λ ≤ 70.71 → radius 60.71 → binding; ρ = 60.
	if res.Robustness != 60 {
		t.Errorf("ρ = %v want 60", res.Robustness)
	}
	if cf := res.Analysis.CriticalFeature(); !strings.Contains(cf.Feature, "L(P1)") {
		t.Errorf("critical = %v", cf.Feature)
	}
	// Slack: T(10) = 100; throughput frac 100/10000 = 0.01; latency frac
	// 100/5000 = 0.02 → slack = 0.98.
	if math.Abs(res.Slack-0.98) > 1e-12 {
		t.Errorf("slack = %v want 0.98", res.Slack)
	}
	// λ* of the binding latency constraint: λ = √5000 ≈ 70.71.
	if math.Abs(res.BoundaryLoads[0]-math.Sqrt(5000)) > 1e-3 {
		t.Errorf("λ* = %v want %v", res.BoundaryLoads[0], math.Sqrt(5000))
	}
}

func TestNewSystemComplexValidation(t *testing.T) {
	g := &dag.Graph{}
	s0 := g.AddNode(dag.Sensor, "s0")
	a0 := g.AddNode(dag.Application, "a0")
	act := g.AddNode(dag.Actuator, "act")
	if err := g.AddEdge(s0, a0); err != nil {
		t.Fatal(err)
	}
	if err := g.AddEdge(a0, act); err != nil {
		t.Fatal(err)
	}
	// Wrong app count.
	if _, err := NewSystemComplex(g, 1, []float64{1}, []float64{1}, nil, nil, []float64{1}); err == nil {
		t.Errorf("missing complexities accepted")
	}
	// Wrong machine count.
	if _, err := NewSystemComplex(g, 2, []float64{1}, []float64{1},
		[][]Complexity{{{}}}, nil, []float64{1}); err == nil {
		t.Errorf("machine count mismatch accepted")
	}
	// Invalid term.
	funcs := [][]Complexity{{
		{{Kind: PowerTerm, Index: 0, Coeff: 1, P: 0.5}},
	}}
	if _, err := NewSystemComplex(g, 1, []float64{1}, []float64{1}, funcs, nil, []float64{1}); err == nil {
		t.Errorf("non-convex power accepted")
	}
	// All-linear complexities populate CompCoeffs.
	linear := [][]Complexity{{
		{{Kind: LinearTerm, Index: 0, Coeff: 3}},
	}}
	sys, err := NewSystemComplex(g, 1, []float64{1e-3}, []float64{1}, linear, nil, []float64{100})
	if err != nil {
		t.Fatal(err)
	}
	if sys.CompCoeffs == nil || sys.CompCoeffs[0][0][0] != 3 {
		t.Errorf("linear CompCoeffs not populated: %v", sys.CompCoeffs)
	}
}

func TestGenerateNonlinearSystem(t *testing.T) {
	p := PaperGenParams()
	p.NonlinearFraction = 0.5
	rng := stats.NewRNG(5)
	sys, err := GenerateSystem(rng, p)
	if err != nil {
		t.Fatal(err)
	}
	// Some complexity must actually be non-linear.
	foundNonlinear := false
	for a := range sys.CompFuncs {
		for j := range sys.CompFuncs[a] {
			if !sys.CompFuncs[a][j].IsLinear() {
				foundNonlinear = true
			}
		}
	}
	if !foundNonlinear {
		t.Fatalf("NonlinearFraction=0.5 produced an all-linear system")
	}
	// The calibration must still hold approximately: most random mappings
	// feasible.
	feasible := 0
	for i := 0; i < 100; i++ {
		if Slack(sys, RandomMapping(rng, sys)) > 0 {
			feasible++
		}
	}
	if feasible < 50 {
		t.Errorf("only %d/100 mappings feasible with nonlinear terms", feasible)
	}
	// Evaluation works end to end and agrees with a Monte-Carlo-style
	// direct check: no feature violated at distance slightly inside ρ
	// along random rays.
	var m Mapping
	for {
		m = RandomMapping(rng, sys)
		if Slack(sys, m) > 0 {
			break
		}
	}
	res, err := Evaluate(sys, m)
	if err != nil {
		t.Fatal(err)
	}
	features, p2, err := Features(sys, m)
	if err != nil {
		t.Fatal(err)
	}
	for probe := 0; probe < 100; probe++ {
		dir := make([]float64, sys.Sensors())
		for i := range dir {
			dir[i] = math.Abs(rng.NormFloat64())
		}
		u, norm := vecmath.Normalize(nil, dir)
		if norm == 0 {
			continue
		}
		lam := vecmath.AddScaled(nil, p2.Orig, 0.999*rng.Float64()*res.Robustness, u)
		for _, f := range features {
			if v := f.Impact.Eval(lam); v > f.Bounds.Max*(1+1e-6) {
				t.Fatalf("feature %s violated inside ρ: %v > %v", f.Name, v, f.Bounds.Max)
			}
		}
	}
	// Invalid fraction rejected.
	p.NonlinearFraction = 1.5
	if _, err := GenerateSystem(stats.NewRNG(1), p); err == nil {
		t.Errorf("bad NonlinearFraction accepted")
	}
}

func TestScaledImpactGradient(t *testing.T) {
	// The composite FuncImpact gradient must match finite differences.
	cs := []Complexity{
		{{Kind: PowerTerm, Index: 0, Coeff: 2, P: 2}, {Kind: LinearTerm, Index: 1, Coeff: 3}},
		{{Kind: XLogXTerm, Index: 1, Coeff: 1}},
	}
	imp, err := scaledImpact(2, []float64{1.5, 2.5}, cs, []float64{0.5, 0.25})
	if err != nil {
		t.Fatal(err)
	}
	fi, ok := imp.(*core.FuncImpact)
	if !ok {
		t.Fatalf("expected FuncImpact, got %T", imp)
	}
	lam := []float64{3, 4}
	g := fi.Gradient(nil, lam)
	h := 1e-6
	for i := range lam {
		up := append([]float64(nil), lam...)
		dn := append([]float64(nil), lam...)
		up[i] += h
		dn[i] -= h
		fd := (fi.Eval(up) - fi.Eval(dn)) / (2 * h)
		if math.Abs(fd-g[i]) > 1e-4*(1+math.Abs(fd)) {
			t.Errorf("gradient[%d] = %v, finite difference %v", i, g[i], fd)
		}
	}
	// All-linear input collapses to LinearImpact.
	lin, err := scaledImpact(2, []float64{2}, []Complexity{LinearComplexity([]float64{1, 1})}, nil)
	if err != nil {
		t.Fatal(err)
	}
	if _, ok := lin.(*core.LinearImpact); !ok {
		t.Errorf("expected LinearImpact, got %T", lin)
	}
}

func TestNormalisedTermMatchesLinearAtOrig(t *testing.T) {
	for _, kind := range []TermKind{LinearTerm, PowerTerm, ExpTerm, XLogXTerm} {
		term := normalisedTerm(kind, 0, 2.5, 400)
		if err := term.Validate(1); err != nil {
			t.Fatalf("%v: %v", kind, err)
		}
		got := term.Eval([]float64{400})
		want := 2.5 * 400
		if math.Abs(got-want) > 1e-9*want {
			t.Errorf("%v: value at λ^orig = %v want %v", kind, got, want)
		}
	}
	// Degenerate zero initial load falls back to linear.
	if term := normalisedTerm(PowerTerm, 0, 1, 0); term.Kind != LinearTerm {
		t.Errorf("zero-load fallback kind = %v", term.Kind)
	}
}
