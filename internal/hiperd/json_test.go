package hiperd

import (
	"strings"
	"testing"

	"fepia/internal/stats"
)

func TestSystemJSONRoundTrip(t *testing.T) {
	rng := stats.NewRNG(13)
	params := PaperGenParams()
	params.NonlinearFraction = 0.3 // exercise term serialisation too
	sys, err := GenerateSystem(rng, params)
	if err != nil {
		t.Fatal(err)
	}
	data, err := MarshalSystem(sys)
	if err != nil {
		t.Fatal(err)
	}
	back, err := UnmarshalSystem(data)
	if err != nil {
		t.Fatal(err)
	}
	// Structure preserved.
	if back.Machines != sys.Machines || back.Applications() != sys.Applications() ||
		back.Sensors() != sys.Sensors() || len(back.Paths) != len(sys.Paths) {
		t.Fatalf("structure changed: %d/%d apps, %d/%d paths",
			back.Applications(), sys.Applications(), len(back.Paths), len(sys.Paths))
	}
	// Rates preserved per application.
	for a := 0; a < sys.Applications(); a++ {
		if back.Rate(a) != sys.Rate(a) {
			t.Fatalf("rate of app %d changed: %v vs %v", a, back.Rate(a), sys.Rate(a))
		}
	}
	// The analysis of an identical mapping must be bit-identical.
	m := RandomMapping(stats.NewRNG(5), sys)
	orig, err := Evaluate(sys, m)
	if err != nil {
		t.Fatal(err)
	}
	round, err := Evaluate(back, m)
	if err != nil {
		t.Fatal(err)
	}
	if orig.Robustness != round.Robustness || orig.Slack != round.Slack {
		t.Errorf("analysis changed: ρ %v→%v slack %v→%v",
			orig.Robustness, round.Robustness, orig.Slack, round.Slack)
	}
}

func TestSystemJSONWithComm(t *testing.T) {
	sys, g := tinySystem(t)
	a1, a2 := g.Applications()[1], g.Applications()[2]
	comm := map[Edge][]float64{{From: a1, To: a2}: {0, 100}}
	sys2, err := NewSystemComplex(g, 2, sys.SensorRates, sys.OrigLoads, sys.CompFuncs, comm, sys.LatencyMax)
	if err != nil {
		t.Fatal(err)
	}
	data, err := MarshalSystem(sys2)
	if err != nil {
		t.Fatal(err)
	}
	back, err := UnmarshalSystem(data)
	if err != nil {
		t.Fatal(err)
	}
	if len(back.CommCoeffs) != 1 {
		t.Fatalf("comm coefficients lost: %v", back.CommCoeffs)
	}
	m := Mapping{0, 1, 0}
	origRes, err := Evaluate(sys2, m)
	if err != nil {
		t.Fatal(err)
	}
	roundRes, err := Evaluate(back, m)
	if err != nil {
		t.Fatal(err)
	}
	if origRes.Robustness != roundRes.Robustness {
		t.Errorf("comm analysis changed: %v vs %v", origRes.Robustness, roundRes.Robustness)
	}
}

func TestUnmarshalSystemErrors(t *testing.T) {
	cases := map[string]string{
		"malformed":    `{`,
		"unknown kind": `{"machines":1,"sensor_rates":[1],"orig_loads":[1],"nodes":[{"kind":"widget"}],"latency_max":[]}`,
		"bad edge":     `{"machines":1,"sensor_rates":[1],"orig_loads":[1],"nodes":[{"kind":"sensor"},{"kind":"application"}],"edges":[[5,0]],"latency_max":[]}`,
		"bad term": `{"machines":1,"sensor_rates":[1],"orig_loads":[1],
			"nodes":[{"kind":"sensor"},{"kind":"application"},{"kind":"actuator"}],
			"edges":[[0,1],[1,2]],"latency_max":[1],
			"complexities":[[[{"kind":"quux","index":0,"coeff":1}]]]}`,
		"invalid system": `{"machines":0,"sensor_rates":[],"orig_loads":[],"nodes":[],"latency_max":[]}`,
	}
	for name, doc := range cases {
		if _, err := UnmarshalSystem([]byte(doc)); err == nil {
			t.Errorf("%s accepted", name)
		}
	}
}

func TestMarshalSystemIsReadable(t *testing.T) {
	sys, _ := tinySystem(t)
	data, err := MarshalSystem(sys)
	if err != nil {
		t.Fatal(err)
	}
	for _, want := range []string{`"machines"`, `"sensor_rates"`, `"complexities"`, `"kind": "sensor"`} {
		if !strings.Contains(string(data), want) {
			t.Errorf("serialisation missing %q", want)
		}
	}
}
