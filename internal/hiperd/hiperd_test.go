package hiperd

import (
	"math"
	"strings"
	"testing"

	"fepia/internal/core"
	"fepia/internal/dag"
	"fepia/internal/stats"
	"fepia/internal/vecmath"
)

// tinySystem builds a hand-checkable instance:
//
//	s0 (rate 1e-3, load 100) → a0 → act0
//	s1 (rate 1e-4, load 50)  → a1 → a2 → act1
//
// 2 machines; simple coefficients; 2 trigger paths, no update paths.
func tinySystem(t *testing.T) (*System, *dag.Graph) {
	t.Helper()
	g := &dag.Graph{}
	s0 := g.AddNode(dag.Sensor, "s0")
	s1 := g.AddNode(dag.Sensor, "s1")
	a0 := g.AddNode(dag.Application, "a0")
	a1 := g.AddNode(dag.Application, "a1")
	a2 := g.AddNode(dag.Application, "a2")
	act0 := g.AddNode(dag.Actuator, "act0")
	act1 := g.AddNode(dag.Actuator, "act1")
	for _, e := range [][2]int{{s0, a0}, {a0, act0}, {s1, a1}, {a1, a2}, {a2, act1}} {
		if err := g.AddEdge(e[0], e[1]); err != nil {
			t.Fatal(err)
		}
	}
	// Coefficients b[app][machine][sensor]: a0 depends on s0 only; a1, a2
	// on s1 only. Machine 1 is twice as slow.
	coeffs := [][][]float64{
		{{2, 0}, {4, 0}}, // a0
		{{0, 3}, {0, 6}}, // a1
		{{0, 1}, {0, 2}}, // a2
	}
	sys, err := NewSystem(g, 2,
		[]float64{1e-3, 1e-4},
		[]float64{100, 50},
		coeffs, nil,
		[]float64{1000, 20000}, // paths enumerate s0-chain first
	)
	if err != nil {
		t.Fatal(err)
	}
	return sys, g
}

func TestNewSystemValidation(t *testing.T) {
	g := &dag.Graph{}
	s0 := g.AddNode(dag.Sensor, "s0")
	a0 := g.AddNode(dag.Application, "a0")
	act := g.AddNode(dag.Actuator, "act")
	if err := g.AddEdge(s0, a0); err != nil {
		t.Fatal(err)
	}
	if err := g.AddEdge(a0, act); err != nil {
		t.Fatal(err)
	}
	good := [][][]float64{{{1}, {1}}}
	if _, err := NewSystem(g, 2, []float64{1e-3}, []float64{10}, good, nil, []float64{100}); err != nil {
		t.Fatalf("valid system rejected: %v", err)
	}
	cases := []struct {
		name string
		f    func() error
	}{
		{"zero machines", func() error {
			_, err := NewSystem(g, 0, []float64{1e-3}, []float64{10}, good, nil, []float64{100})
			return err
		}},
		{"wrong rate count", func() error {
			_, err := NewSystem(g, 2, []float64{1e-3, 1}, []float64{10}, good, nil, []float64{100})
			return err
		}},
		{"negative rate", func() error {
			_, err := NewSystem(g, 2, []float64{-1}, []float64{10}, good, nil, []float64{100})
			return err
		}},
		{"negative load", func() error {
			_, err := NewSystem(g, 2, []float64{1e-3}, []float64{-10}, good, nil, []float64{100})
			return err
		}},
		{"wrong coeff app count", func() error {
			_, err := NewSystem(g, 2, []float64{1e-3}, []float64{10}, nil, nil, []float64{100})
			return err
		}},
		{"wrong coeff machine count", func() error {
			_, err := NewSystem(g, 2, []float64{1e-3}, []float64{10}, [][][]float64{{{1}}}, nil, []float64{100})
			return err
		}},
		{"negative coefficient", func() error {
			_, err := NewSystem(g, 2, []float64{1e-3}, []float64{10}, [][][]float64{{{-1}, {1}}}, nil, []float64{100})
			return err
		}},
		{"wrong latency count", func() error {
			_, err := NewSystem(g, 2, []float64{1e-3}, []float64{10}, good, nil, []float64{100, 100})
			return err
		}},
		{"non-positive latency", func() error {
			_, err := NewSystem(g, 2, []float64{1e-3}, []float64{10}, good, nil, []float64{0})
			return err
		}},
		{"comm coeffs on non-edge", func() error {
			_, err := NewSystem(g, 2, []float64{1e-3}, []float64{10}, good,
				map[Edge][]float64{{From: a0, To: s0}: {1}}, []float64{100})
			return err
		}},
		{"comm coeffs wrong arity", func() error {
			_, err := NewSystem(g, 2, []float64{1e-3}, []float64{10}, good,
				map[Edge][]float64{{From: s0, To: a0}: {1, 2}}, []float64{100})
			return err
		}},
	}
	for _, c := range cases {
		if c.f() == nil {
			t.Errorf("%s accepted", c.name)
		}
	}
}

func TestMultitaskFactor(t *testing.T) {
	if MultitaskFactor(0) != 1 || MultitaskFactor(1) != 1 {
		t.Errorf("dedicated machine factor must be 1")
	}
	if MultitaskFactor(2) != 2.6 || MultitaskFactor(5) != 6.5 {
		t.Errorf("factor(2)=%v factor(5)=%v", MultitaskFactor(2), MultitaskFactor(5))
	}
}

func TestRates(t *testing.T) {
	sys, _ := tinySystem(t)
	// a0 driven by s0 (rate 1e-3); a1, a2 by s1 (rate 1e-4).
	if sys.Rate(0) != 1e-3 || sys.Rate(1) != 1e-4 || sys.Rate(2) != 1e-4 {
		t.Errorf("rates = %v %v %v", sys.Rate(0), sys.Rate(1), sys.Rate(2))
	}
	if sys.Applications() != 3 || sys.Sensors() != 2 {
		t.Errorf("counts wrong")
	}
	if sys.AppPos(sys.AppNode(1)) != 1 {
		t.Errorf("AppPos/AppNode inconsistent")
	}
	if sys.AppPos(0) != -1 {
		t.Errorf("AppPos of sensor should be −1")
	}
}

func TestMappingValidate(t *testing.T) {
	sys, _ := tinySystem(t)
	if err := (Mapping{0, 1}).Validate(sys); err == nil {
		t.Errorf("short mapping accepted")
	}
	if err := (Mapping{0, 1, 5}).Validate(sys); err == nil {
		t.Errorf("out-of-range machine accepted")
	}
	if err := (Mapping{0, 1, 0}).Validate(sys); err != nil {
		t.Errorf("valid mapping rejected: %v", err)
	}
	counts := Mapping{0, 1, 0}.Counts(sys)
	if counts[0] != 2 || counts[1] != 1 {
		t.Errorf("counts = %v", counts)
	}
}

func TestEvaluateHandChecked(t *testing.T) {
	sys, _ := tinySystem(t)
	// Mapping: a0→m0, a1→m1, a2→m0. Counts: m0=2, m1=1. Factors: 2.6, 1.
	m := Mapping{0, 1, 0}
	res, err := Evaluate(sys, m)
	if err != nil {
		t.Fatal(err)
	}
	// Effective computation coefficient vectors:
	//   a0: 2.6·(2,0)   = (5.2, 0);   T = 520 at λ=(100,50); bound 1/1e-3 = 1000.
	//   a1: 1.0·(0,6)   = (0, 6);     T = 300;               bound 1/1e-4 = 10000.
	//   a2: 2.6·(0,1)   = (0, 2.6);   T = 130;               bound 10000.
	// Radii (hyperplane distances along single axes):
	//   r(a0) = (1000−520)/5.2   ≈ 92.31
	//   r(a1) = (10000−300)/6    ≈ 1616.7
	//   r(a2) = (10000−130)/2.6  ≈ 3796.2
	// Latency paths: P1 = s0→a0→act0: L = T(a0) = 520, bound 1000 →
	//   r = 480/5.2 ≈ 92.31 (same plane as a0's throughput… different bound:
	//   (1000−520)/5.2 — equal by construction here).
	// P2 = s1→a1→a2→act1: L = 300+130 = 430, coeffs (0,8.6), bound 20000 →
	//   r = (20000−430)/8.6 ≈ 2275.6.
	// ρ = floor(min) = floor(92.307…) = 92.
	if res.Robustness != 92 {
		t.Errorf("ρ = %v want 92", res.Robustness)
	}
	if got := res.Analysis.CriticalFeature().Feature; got != "Tc(a0)" && got != "L(P1)" {
		t.Errorf("critical feature = %s", got)
	}
	// Slack: fractional uses: a0: 520/1000 = 0.52 → 0.48; a1: 0.03; a2:
	// 0.013; P1: 0.52 → 0.48; P2: 430/20000 → ~0.98. Min slack = 0.48.
	if math.Abs(res.Slack-0.48) > 1e-12 {
		t.Errorf("slack = %v want 0.48", res.Slack)
	}
	// λ* for the binding constraint moves only λ₁ (a0 depends on s0 only):
	// 5.2·λ₁ = 1000 → λ₁* ≈ 192.3, λ₂* = 50.
	if res.BoundaryLoads == nil {
		t.Fatal("no boundary loads")
	}
	if math.Abs(res.BoundaryLoads[0]-1000/5.2) > 1e-9 || math.Abs(res.BoundaryLoads[1]-50) > 1e-9 {
		t.Errorf("λ* = %v", res.BoundaryLoads)
	}
}

func TestEvaluateWithCommCoeffs(t *testing.T) {
	sys, g := tinySystem(t)
	// Rebuild with a communication time on a1→a2 that dominates.
	a1, a2 := g.Applications()[1], g.Applications()[2]
	comm := map[Edge][]float64{{From: a1, To: a2}: {0, 100}}
	sys2, err := NewSystem(g, 2, sys.SensorRates, sys.OrigLoads, sys.CompCoeffs, comm, sys.LatencyMax)
	if err != nil {
		t.Fatal(err)
	}
	m := Mapping{0, 1, 0}
	res, err := Evaluate(sys2, m)
	if err != nil {
		t.Fatal(err)
	}
	// Tn(a1→a2) = 100λ₂ = 5000 at λ^orig; bound 1/R(a1) = 10000 →
	// r = 5000/100 = 50 — now the critical feature (50 < 92.3).
	if res.Robustness != 50 {
		t.Errorf("ρ = %v want 50", res.Robustness)
	}
	if cf := res.Analysis.CriticalFeature().Feature; !strings.Contains(cf, "Tn(a1->a2)") {
		t.Errorf("critical = %s", cf)
	}
	// Slack must now be dominated by the comm fraction 5000/10000 = 0.5 …
	// but a0's 0.48 is still smaller. Check the comm fraction is included:
	// raising comm to 150 flips the slack to 1−7500/10000 = 0.25.
	comm[Edge{From: a1, To: a2}] = []float64{0, 150}
	sys3, err := NewSystem(g, 2, sys.SensorRates, sys.OrigLoads, sys.CompCoeffs, comm, sys.LatencyMax)
	if err != nil {
		t.Fatal(err)
	}
	if s := Slack(sys3, m); math.Abs(s-0.25) > 1e-12 {
		t.Errorf("slack with comm = %v want 0.25", s)
	}
}

func TestFeaturesMatchDirectEvaluation(t *testing.T) {
	// The generic analysis must agree with an independent brute check: the
	// feature values at λ^orig equal the hand-computed times.
	sys, _ := tinySystem(t)
	m := Mapping{1, 0, 1}
	features, p, err := Features(sys, m)
	if err != nil {
		t.Fatal(err)
	}
	// Counts: m0=1 (a1), m1=2 (a0,a2); factors 1 and 2.6.
	// a0 on m1: 2.6·4 = 10.4·λ₁ → 1040.
	// a1 on m0: 1·3 = 3·λ₂ → 150.
	// a2 on m1: 2.6·2 = 5.2·λ₂ → 260.
	wantVals := map[string]float64{
		"Tc(a0)": 1040,
		"Tc(a1)": 150,
		"Tc(a2)": 260,
		"L(P1)":  1040,
		"L(P2)":  410,
	}
	for _, f := range features {
		want, ok := wantVals[f.Name]
		if !ok {
			t.Fatalf("unexpected feature %s", f.Name)
		}
		if got := f.Impact.Eval(p.Orig); math.Abs(got-want) > 1e-9 {
			t.Errorf("%s at λ^orig = %v want %v", f.Name, got, want)
		}
	}
	if len(features) != len(wantVals) {
		t.Errorf("feature count = %d want %d", len(features), len(wantVals))
	}
}

func TestSlackInvalidMapping(t *testing.T) {
	sys, _ := tinySystem(t)
	if !math.IsNaN(Slack(sys, Mapping{0})) {
		t.Errorf("invalid mapping should give NaN slack")
	}
}

func TestGenerateSystemPaperParams(t *testing.T) {
	rng := stats.NewRNG(42)
	sys, err := GenerateSystem(rng, PaperGenParams())
	if err != nil {
		t.Fatal(err)
	}
	if len(sys.Paths) != 19 {
		t.Errorf("paths = %d want 19", len(sys.Paths))
	}
	if sys.Applications() != 20 || sys.Sensors() != 3 || sys.Machines != 5 {
		t.Errorf("instance shape wrong")
	}
	// Coefficients of unrouted sensors must be zero.
	routes := sys.G.Routes()
	for a := 0; a < sys.Applications(); a++ {
		node := sys.AppNode(a)
		for z := 0; z < sys.Sensors(); z++ {
			for j := 0; j < sys.Machines; j++ {
				if !routes[z][node] && sys.CompCoeffs[a][j][z] != 0 {
					t.Fatalf("unrouted coefficient b[%d][%d][%d] = %v", a, j, z, sys.CompCoeffs[a][j][z])
				}
			}
		}
	}
	// The calibrated instance must be feasible for most random mappings.
	feasible := 0
	const n = 200
	for i := 0; i < n; i++ {
		m := RandomMapping(rng, sys)
		if Slack(sys, m) > 0 {
			feasible++
		}
	}
	if feasible < n*5/10 {
		t.Errorf("only %d/%d random mappings feasible; calibration off", feasible, n)
	}
}

func TestGenerateSystemValidation(t *testing.T) {
	bad := PaperGenParams()
	bad.Machines = 0
	if _, err := GenerateSystem(stats.NewRNG(1), bad); err == nil {
		t.Errorf("bad machine count accepted")
	}
	bad = PaperGenParams()
	bad.SensorRates = []float64{1}
	if _, err := GenerateSystem(stats.NewRNG(1), bad); err == nil {
		t.Errorf("rate/sensor mismatch accepted")
	}
	bad = PaperGenParams()
	bad.ThroughputTarget = 1.5
	if _, err := GenerateSystem(stats.NewRNG(1), bad); err == nil {
		t.Errorf("bad throughput target accepted")
	}
}

func TestRobustnessCertificate(t *testing.T) {
	// Any load increase with norm ≤ ρ must not violate any constraint;
	// the boundary point of the critical feature must sit on its bound.
	rng := stats.NewRNG(7)
	sys, err := GenerateSystem(rng, PaperGenParams())
	if err != nil {
		t.Fatal(err)
	}
	for trial := 0; trial < 10; trial++ {
		m := RandomMapping(rng, sys)
		res, err := Evaluate(sys, m)
		if err != nil {
			t.Fatal(err)
		}
		if res.Slack <= 0 {
			if res.Robustness != 0 {
				t.Fatalf("violated mapping with positive ρ = %v", res.Robustness)
			}
			continue
		}
		features, p, err := Features(sys, m)
		if err != nil {
			t.Fatal(err)
		}
		for probe := 0; probe < 200; probe++ {
			dir := make([]float64, sys.Sensors())
			for i := range dir {
				dir[i] = math.Abs(rng.NormFloat64()) // loads increase
			}
			u, norm := vecmath.Normalize(nil, dir)
			if norm == 0 {
				continue
			}
			lam := vecmath.AddScaled(nil, p.Orig, rng.Float64()*res.Robustness, u)
			for _, f := range features {
				if v := f.Impact.Eval(lam); !f.Bounds.Contains(v) && v > f.Bounds.Max*(1+1e-9) {
					t.Fatalf("feature %s violated at distance ≤ ρ: %v ∉ %v", f.Name, v, f.Bounds)
				}
			}
		}
	}
}

func TestEvaluateAgreesWithCoreAnalyze(t *testing.T) {
	// ρ from Evaluate must equal a from-scratch core.Analyze of Features.
	rng := stats.NewRNG(9)
	sys, err := GenerateSystem(rng, PaperGenParams())
	if err != nil {
		t.Fatal(err)
	}
	for trial := 0; trial < 20; trial++ {
		m := RandomMapping(rng, sys)
		res, err := Evaluate(sys, m)
		if err != nil {
			t.Fatal(err)
		}
		features, p, err := Features(sys, m)
		if err != nil {
			t.Fatal(err)
		}
		a, err := core.Analyze(features, p, core.Options{})
		if err != nil {
			t.Fatal(err)
		}
		if a.Robustness != res.Robustness {
			t.Fatalf("trial %d: %v != %v", trial, a.Robustness, res.Robustness)
		}
	}
}
