package hiperd

import (
	"context"
	"reflect"
	"testing"

	"fepia/internal/batch"
	"fepia/internal/stats"
)

// TestEvaluateBatchMatchesSequential pins the engine contract on the §3.2
// system: batched, cached, parallel evaluation must reproduce Evaluate
// byte for byte, mapping by mapping.
func TestEvaluateBatchMatchesSequential(t *testing.T) {
	sys, err := GenerateSystem(stats.NewRNG(2003), PaperGenParams())
	if err != nil {
		t.Fatal(err)
	}
	rng := stats.NewRNG(5)
	ms := make([]Mapping, 30)
	for i := range ms {
		ms[i] = RandomMapping(rng, sys)
	}
	want := make([]Result, len(ms))
	for i, m := range ms {
		res, err := Evaluate(sys, m)
		if err != nil {
			t.Fatal(err)
		}
		want[i] = res
	}
	for _, opts := range []batch.Options{
		{Workers: 1},
		{Workers: 8},
		{Workers: 8, Cache: batch.NewCache(0)},
	} {
		got, err := EvaluateBatch(context.Background(), sys, ms, opts)
		if err != nil {
			t.Fatal(err)
		}
		if !reflect.DeepEqual(got, want) {
			t.Fatalf("EvaluateBatch(workers=%d, cache=%v) differs from sequential Evaluate",
				opts.Workers, opts.Cache != nil)
		}
	}
	// The population shares hyperplane subproblems across mappings: the
	// cache must observe real cross-mapping hits.
	cache := batch.NewCache(0)
	if _, err := EvaluateBatch(context.Background(), sys, ms, batch.Options{Cache: cache}); err != nil {
		t.Fatal(err)
	}
	if st := cache.Stats(); st.Hits == 0 {
		t.Fatalf("expected cross-mapping cache hits on the §4.3 population, got %+v", st)
	}
}

func TestJobsShape(t *testing.T) {
	sys, err := GenerateSystem(stats.NewRNG(2003), PaperGenParams())
	if err != nil {
		t.Fatal(err)
	}
	rng := stats.NewRNG(6)
	ms := []Mapping{RandomMapping(rng, sys), RandomMapping(rng, sys)}
	jobs, err := Jobs(sys, ms)
	if err != nil {
		t.Fatal(err)
	}
	if len(jobs) != 2 {
		t.Fatalf("jobs = %d, want 2", len(jobs))
	}
	for _, j := range jobs {
		if len(j.Features) == 0 || j.Perturbation.Name != "λ" || !j.Perturbation.Discrete {
			t.Fatalf("malformed job: %+v", j.Perturbation)
		}
	}
}
