// Package dag models the application graph of the HiPer-D system (§3.2 and
// Figure 2 of the paper): a directed acyclic graph whose nodes are sensors
// (sources), continuously-executing applications, and actuators (sinks),
// and whose edges are data transfers.
//
// The central derived structure is the set of paths P. Following the
// paper: a path is a chain of producer-consumer pairs that starts at a
// sensor — the driving sensor — and ends at an actuator (a "trigger path")
// or at a multiple-input application (an "update path"). An application may
// appear in multiple paths. Where a chain passes through a multiple-input
// application and continues to an actuator, both the update path ending at
// that application and the longer trigger path are reported; the paper's
// Figure 2 shows exactly this kind of overlap (dashed enclosures sharing
// applications).
package dag

import (
	"errors"
	"fmt"
)

// Kind classifies a node.
type Kind int

const (
	// Sensor nodes produce data periodically; they have no predecessors.
	Sensor Kind = iota
	// Application nodes consume and produce data.
	Application
	// Actuator nodes consume final results; they have no successors.
	Actuator
)

// String returns "sensor", "application", or "actuator".
func (k Kind) String() string {
	switch k {
	case Sensor:
		return "sensor"
	case Application:
		return "application"
	case Actuator:
		return "actuator"
	default:
		return fmt.Sprintf("Kind(%d)", int(k))
	}
}

// Graph is a mutable DAG of sensors, applications, and actuators. The zero
// value is an empty graph ready for use.
type Graph struct {
	kinds []Kind
	names []string
	succ  [][]int
	pred  [][]int
}

// AddNode appends a node of the given kind and returns its index. The name
// is used only for display and may be empty.
func (g *Graph) AddNode(kind Kind, name string) int {
	g.kinds = append(g.kinds, kind)
	g.names = append(g.names, name)
	g.succ = append(g.succ, nil)
	g.pred = append(g.pred, nil)
	return len(g.kinds) - 1
}

// ErrBadEdge is wrapped by AddEdge errors.
var ErrBadEdge = errors.New("dag: invalid edge")

// AddEdge adds the data transfer from → to. It rejects out-of-range
// indices, self-loops, duplicate edges, edges into sensors, and edges out
// of actuators. (Cycles are detected later by Validate/TopoSort, since
// checking per-edge would be quadratic.)
func (g *Graph) AddEdge(from, to int) error {
	n := len(g.kinds)
	if from < 0 || from >= n || to < 0 || to >= n {
		return fmt.Errorf("%w: (%d,%d) out of range [0,%d)", ErrBadEdge, from, to, n)
	}
	if from == to {
		return fmt.Errorf("%w: self-loop at %d", ErrBadEdge, from)
	}
	if g.kinds[to] == Sensor {
		return fmt.Errorf("%w: node %d is a sensor and cannot receive data", ErrBadEdge, to)
	}
	if g.kinds[from] == Actuator {
		return fmt.Errorf("%w: node %d is an actuator and cannot send data", ErrBadEdge, from)
	}
	for _, s := range g.succ[from] {
		if s == to {
			return fmt.Errorf("%w: duplicate edge (%d,%d)", ErrBadEdge, from, to)
		}
	}
	g.succ[from] = append(g.succ[from], to)
	g.pred[to] = append(g.pred[to], from)
	return nil
}

// Len returns the number of nodes.
func (g *Graph) Len() int { return len(g.kinds) }

// KindOf returns the kind of node i.
func (g *Graph) KindOf(i int) Kind { return g.kinds[i] }

// NameOf returns the display name of node i.
func (g *Graph) NameOf(i int) string { return g.names[i] }

// Successors returns D(a_i): the indices receiving data from node i.
// Callers must not modify the returned slice.
func (g *Graph) Successors(i int) []int { return g.succ[i] }

// Predecessors returns the indices sending data to node i. Callers must not
// modify the returned slice.
func (g *Graph) Predecessors(i int) []int { return g.pred[i] }

// InDegree returns the number of incoming edges of node i.
func (g *Graph) InDegree(i int) int { return len(g.pred[i]) }

// OutDegree returns the number of outgoing edges of node i.
func (g *Graph) OutDegree(i int) int { return len(g.succ[i]) }

// MultiInput reports whether node i is an application with two or more
// incoming data streams — the terminator of update paths.
func (g *Graph) MultiInput(i int) bool {
	return g.kinds[i] == Application && len(g.pred[i]) >= 2
}

// nodesOf returns all node indices of kind k, ascending.
func (g *Graph) nodesOf(k Kind) []int {
	var out []int
	for i, kind := range g.kinds {
		if kind == k {
			out = append(out, i)
		}
	}
	return out
}

// Sensors returns all sensor indices, ascending.
func (g *Graph) Sensors() []int { return g.nodesOf(Sensor) }

// Applications returns all application indices, ascending.
func (g *Graph) Applications() []int { return g.nodesOf(Application) }

// Actuators returns all actuator indices, ascending.
func (g *Graph) Actuators() []int { return g.nodesOf(Actuator) }

// ErrCycle is returned when the graph is not acyclic.
var ErrCycle = errors.New("dag: graph contains a cycle")

// TopoSort returns a topological ordering of all nodes, or ErrCycle.
func (g *Graph) TopoSort() ([]int, error) {
	n := len(g.kinds)
	indeg := make([]int, n)
	for i := range g.pred {
		indeg[i] = len(g.pred[i])
	}
	queue := make([]int, 0, n)
	for i := 0; i < n; i++ {
		if indeg[i] == 0 {
			queue = append(queue, i)
		}
	}
	order := make([]int, 0, n)
	for len(queue) > 0 {
		v := queue[0]
		queue = queue[1:]
		order = append(order, v)
		for _, s := range g.succ[v] {
			indeg[s]--
			if indeg[s] == 0 {
				queue = append(queue, s)
			}
		}
	}
	if len(order) != n {
		return nil, ErrCycle
	}
	return order, nil
}

// Validate checks structural well-formedness: acyclicity, at least one
// sensor, every application reachable from some sensor, and every
// application able to reach an actuator or a multiple-input application
// (otherwise its data would vanish and no path could cover it).
func (g *Graph) Validate() error {
	if _, err := g.TopoSort(); err != nil {
		return err
	}
	sensors := g.Sensors()
	if len(sensors) == 0 {
		return errors.New("dag: graph has no sensors")
	}
	covered := make([]bool, g.Len())
	for _, s := range sensors {
		for _, v := range g.ReachableFrom(s) {
			covered[v] = true
		}
	}
	for _, a := range g.Applications() {
		if !covered[a] {
			return fmt.Errorf("dag: application %d (%s) unreachable from every sensor", a, g.names[a])
		}
	}
	for _, a := range g.Applications() {
		if len(g.succ[a]) == 0 && !g.MultiInput(a) {
			return fmt.Errorf("dag: application %d (%s) has no successors and is not a path terminal", a, g.names[a])
		}
	}
	return nil
}

// ReachableFrom returns every node reachable from src, including src.
func (g *Graph) ReachableFrom(src int) []int {
	seen := make([]bool, g.Len())
	stack := []int{src}
	seen[src] = true
	var out []int
	for len(stack) > 0 {
		v := stack[len(stack)-1]
		stack = stack[:len(stack)-1]
		out = append(out, v)
		for _, s := range g.succ[v] {
			if !seen[s] {
				seen[s] = true
				stack = append(stack, s)
			}
		}
	}
	return out
}

// Routes returns routes[z][i] = true when data from the z-th sensor (in
// Sensors() order) can reach node i. §4.3 uses this to zero the load
// coefficients b_ijz of unconnected sensor/application pairs.
func (g *Graph) Routes() [][]bool {
	sensors := g.Sensors()
	routes := make([][]bool, len(sensors))
	for z, s := range sensors {
		row := make([]bool, g.Len())
		for _, v := range g.ReachableFrom(s) {
			row[v] = true
		}
		routes[z] = row
	}
	return routes
}
