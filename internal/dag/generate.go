package dag

import (
	"errors"
	"fmt"

	"fepia/internal/stats"
)

// GenConfig parameterises the random layered DAG generator used to build
// HiPer-D-like instances (Figure 2 has 3 sensors, ~20 applications,
// 3 actuators and 19 overlapping paths).
type GenConfig struct {
	// Sensors, Apps, Actuators give the node counts.
	Sensors, Apps, Actuators int
	// Layers is the number of application layers; data flows between
	// consecutive layers. Must be ≥ 1 and ≤ Apps.
	Layers int
	// ExtraEdgeProb is the probability, per application, of adding an
	// additional cross edge from an earlier node. Extra in-edges create
	// multiple-input applications and therefore update paths.
	ExtraEdgeProb float64
}

// Validate reports the first problem with the configuration, if any.
func (c GenConfig) Validate() error {
	switch {
	case c.Sensors < 1:
		return fmt.Errorf("dag: Sensors = %d must be ≥ 1", c.Sensors)
	case c.Apps < 1:
		return fmt.Errorf("dag: Apps = %d must be ≥ 1", c.Apps)
	case c.Actuators < 1:
		return fmt.Errorf("dag: Actuators = %d must be ≥ 1", c.Actuators)
	case c.Layers < 1 || c.Layers > c.Apps:
		return fmt.Errorf("dag: Layers = %d must be in [1,%d]", c.Layers, c.Apps)
	case c.ExtraEdgeProb < 0 || c.ExtraEdgeProb > 1:
		return fmt.Errorf("dag: ExtraEdgeProb = %v must be in [0,1]", c.ExtraEdgeProb)
	}
	return nil
}

// PaperGenConfig mirrors the §4.3 instance scale: 3 sensors, 20
// applications, 3 actuators.
func PaperGenConfig() GenConfig {
	// ExtraEdgeProb is kept low: path counts grow multiplicatively with
	// fusion edges, and the paper's instance has only 19 paths over 20
	// applications (a sparse graph, cf. Figure 2).
	return GenConfig{Sensors: 3, Apps: 20, Actuators: 3, Layers: 4, ExtraEdgeProb: 0.05}
}

// Generate builds a random layered DAG: sensors feed the first application
// layer, each layer feeds the next, the final layer feeds the actuators,
// and extra cross edges create multiple-input applications. Node order is
// sensors, then applications layer by layer, then actuators. The result
// always passes Validate.
func Generate(rng *stats.RNG, cfg GenConfig) (*Graph, error) {
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	g := &Graph{}
	sensors := make([]int, cfg.Sensors)
	for z := range sensors {
		sensors[z] = g.AddNode(Sensor, fmt.Sprintf("s%d", z+1))
	}
	// Distribute applications across layers as evenly as possible with at
	// least one per layer.
	layers := make([][]int, cfg.Layers)
	for i := 0; i < cfg.Apps; i++ {
		l := i * cfg.Layers / cfg.Apps
		layers[l] = append(layers[l], g.AddNode(Application, fmt.Sprintf("a%d", i+1)))
	}
	actuators := make([]int, cfg.Actuators)
	for z := range actuators {
		actuators[z] = g.AddNode(Actuator, fmt.Sprintf("act%d", z+1))
	}

	mustEdge := func(from, to int) {
		if err := g.AddEdge(from, to); err != nil && !errors.Is(err, ErrBadEdge) {
			panic(err)
		}
	}
	// Every first-layer application gets a sensor; every sensor gets an
	// application.
	for _, a := range layers[0] {
		mustEdge(sensors[rng.Intn(len(sensors))], a)
	}
	for _, s := range sensors {
		if g.OutDegree(s) == 0 {
			mustEdge(s, layers[0][rng.Intn(len(layers[0]))])
		}
	}
	// Chain the layers: every app in layer l>0 gets a predecessor in layer
	// l−1, and every app gets a successor in the next stage.
	for l := 1; l < cfg.Layers; l++ {
		for _, a := range layers[l] {
			mustEdge(layers[l-1][rng.Intn(len(layers[l-1]))], a)
		}
	}
	for l := 0; l < cfg.Layers; l++ {
		next := actuators
		if l+1 < cfg.Layers {
			next = layers[l+1]
		}
		for _, a := range layers[l] {
			if g.OutDegree(a) == 0 {
				mustEdge(a, next[rng.Intn(len(next))])
			}
		}
	}
	// Every actuator gets a predecessor.
	last := layers[cfg.Layers-1]
	for _, act := range actuators {
		if g.InDegree(act) == 0 {
			mustEdge(last[rng.Intn(len(last))], act)
		}
	}
	// Extra cross edges from any earlier node (sensor or previous-layer
	// application) to create data fusion points.
	for l := 0; l < cfg.Layers; l++ {
		var pool []int
		pool = append(pool, sensors...)
		for p := 0; p < l; p++ {
			pool = append(pool, layers[p]...)
		}
		if len(pool) == 0 {
			continue
		}
		for _, a := range layers[l] {
			if rng.Float64() < cfg.ExtraEdgeProb {
				mustEdge(pool[rng.Intn(len(pool))], a)
			}
		}
	}
	if err := g.Validate(); err != nil {
		return nil, fmt.Errorf("dag: generated graph invalid: %w", err)
	}
	return g, nil
}

// ErrPathCountUnmatched is returned by GenerateWithPathCount when no seed in
// the budget yields the requested number of paths.
var ErrPathCountUnmatched = errors.New("dag: could not hit requested path count")

// GenerateWithPathCount retries Generate with successive sub-seeds of rng
// until the enumerated path count equals target (the paper's HiPer-D
// instance has exactly 19). maxTries ≤ 0 means 10000 tries.
func GenerateWithPathCount(rng *stats.RNG, cfg GenConfig, target, maxTries int) (*Graph, []Path, error) {
	if maxTries <= 0 {
		maxTries = 10000
	}
	for try := 0; try < maxTries; try++ {
		g, err := Generate(rng, cfg)
		if err != nil {
			return nil, nil, err
		}
		paths, err := g.Paths(10 * target)
		if errors.Is(err, ErrTooManyPaths) {
			continue
		}
		if err != nil {
			return nil, nil, err
		}
		if len(paths) == target {
			return g, paths, nil
		}
	}
	return nil, nil, fmt.Errorf("%w: target %d after %d tries", ErrPathCountUnmatched, target, maxTries)
}
