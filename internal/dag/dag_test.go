package dag

import (
	"errors"
	"strings"
	"testing"

	"fepia/internal/stats"
)

// figure2ish builds a small fixed DAG:
//
//	s0 → a0 → a1 → act0
//	s1 → a2 ↗        (a1 is multi-input)
//	a2 → act1
func figure2ish(t *testing.T) (*Graph, map[string]int) {
	t.Helper()
	g := &Graph{}
	id := map[string]int{}
	id["s0"] = g.AddNode(Sensor, "s0")
	id["s1"] = g.AddNode(Sensor, "s1")
	id["a0"] = g.AddNode(Application, "a0")
	id["a1"] = g.AddNode(Application, "a1")
	id["a2"] = g.AddNode(Application, "a2")
	id["act0"] = g.AddNode(Actuator, "act0")
	id["act1"] = g.AddNode(Actuator, "act1")
	for _, e := range [][2]string{
		{"s0", "a0"}, {"a0", "a1"}, {"a1", "act0"},
		{"s1", "a2"}, {"a2", "a1"}, {"a2", "act1"},
	} {
		if err := g.AddEdge(id[e[0]], id[e[1]]); err != nil {
			t.Fatal(err)
		}
	}
	return g, id
}

func TestKindString(t *testing.T) {
	if Sensor.String() != "sensor" || Application.String() != "application" || Actuator.String() != "actuator" {
		t.Errorf("Kind.String broken")
	}
	if Kind(9).String() == "" {
		t.Errorf("unknown kind should render")
	}
}

func TestAddEdgeValidation(t *testing.T) {
	g := &Graph{}
	s := g.AddNode(Sensor, "s")
	a := g.AddNode(Application, "a")
	act := g.AddNode(Actuator, "x")
	cases := []struct {
		from, to int
		name     string
	}{
		{-1, a, "negative from"},
		{a, 99, "out of range to"},
		{a, a, "self loop"},
		{a, s, "into sensor"},
		{act, a, "out of actuator"},
	}
	for _, c := range cases {
		if err := g.AddEdge(c.from, c.to); !errors.Is(err, ErrBadEdge) {
			t.Errorf("%s: err = %v", c.name, err)
		}
	}
	if err := g.AddEdge(s, a); err != nil {
		t.Fatal(err)
	}
	if err := g.AddEdge(s, a); !errors.Is(err, ErrBadEdge) {
		t.Errorf("duplicate edge accepted")
	}
}

func TestTopoSortAndCycle(t *testing.T) {
	g, id := figure2ish(t)
	order, err := g.TopoSort()
	if err != nil {
		t.Fatal(err)
	}
	pos := make(map[int]int)
	for i, v := range order {
		pos[v] = i
	}
	if len(order) != g.Len() {
		t.Fatalf("topo order length %d", len(order))
	}
	for v := 0; v < g.Len(); v++ {
		for _, s := range g.Successors(v) {
			if pos[v] >= pos[s] {
				t.Errorf("topo violation: %d before %d", s, v)
			}
		}
	}
	// Force a cycle a0 → a1 → a0 through a fresh graph of plain apps.
	c := &Graph{}
	x := c.AddNode(Application, "x")
	y := c.AddNode(Application, "y")
	if err := c.AddEdge(x, y); err != nil {
		t.Fatal(err)
	}
	if err := c.AddEdge(y, x); err != nil {
		t.Fatal(err)
	}
	if _, err := c.TopoSort(); !errors.Is(err, ErrCycle) {
		t.Errorf("cycle undetected: %v", err)
	}
	_ = id
}

func TestValidate(t *testing.T) {
	g, _ := figure2ish(t)
	if err := g.Validate(); err != nil {
		t.Fatalf("valid graph rejected: %v", err)
	}
	// No sensors.
	empty := &Graph{}
	empty.AddNode(Application, "a")
	if err := empty.Validate(); err == nil {
		t.Errorf("sensorless graph accepted")
	}
	// Unreachable application.
	g2 := &Graph{}
	g2.AddNode(Sensor, "s")
	g2.AddNode(Application, "lonely")
	if err := g2.Validate(); err == nil || !strings.Contains(err.Error(), "unreachable") {
		t.Errorf("unreachable app accepted: %v", err)
	}
	// Dangling application (no successors, single input).
	g3 := &Graph{}
	s := g3.AddNode(Sensor, "s")
	a := g3.AddNode(Application, "a")
	if err := g3.AddEdge(s, a); err != nil {
		t.Fatal(err)
	}
	if err := g3.Validate(); err == nil || !strings.Contains(err.Error(), "no successors") {
		t.Errorf("dangling app accepted: %v", err)
	}
}

func TestDegreesAndMultiInput(t *testing.T) {
	g, id := figure2ish(t)
	if !g.MultiInput(id["a1"]) {
		t.Errorf("a1 should be multi-input")
	}
	if g.MultiInput(id["a0"]) || g.MultiInput(id["act0"]) {
		t.Errorf("false multi-input")
	}
	if g.InDegree(id["a1"]) != 2 || g.OutDegree(id["a2"]) != 2 {
		t.Errorf("degree bookkeeping wrong")
	}
}

func TestNodeQueries(t *testing.T) {
	g, id := figure2ish(t)
	if got := g.Sensors(); len(got) != 2 || got[0] != id["s0"] {
		t.Errorf("Sensors = %v", got)
	}
	if got := g.Applications(); len(got) != 3 {
		t.Errorf("Applications = %v", got)
	}
	if got := g.Actuators(); len(got) != 2 {
		t.Errorf("Actuators = %v", got)
	}
	if g.NameOf(id["a2"]) != "a2" || g.KindOf(id["s1"]) != Sensor {
		t.Errorf("name/kind accessors wrong")
	}
}

func TestRoutes(t *testing.T) {
	g, id := figure2ish(t)
	routes := g.Routes()
	// Sensor s0 (index 0 in Sensors()) reaches a0, a1, act0 but not a2.
	if !routes[0][id["a0"]] || !routes[0][id["a1"]] || routes[0][id["a2"]] {
		t.Errorf("routes from s0 wrong: %v", routes[0])
	}
	// Sensor s1 reaches a2, a1, act0, act1 but not a0.
	if !routes[1][id["a2"]] || !routes[1][id["a1"]] || routes[1][id["a0"]] {
		t.Errorf("routes from s1 wrong: %v", routes[1])
	}
}

func TestPathsEnumeration(t *testing.T) {
	g, id := figure2ish(t)
	paths, err := g.Paths(0)
	if err != nil {
		t.Fatal(err)
	}
	// Expected chains (every arrival at multi-input a1 emits an update
	// path, and chains continue through it):
	//   s0 a0 a1                 (update)
	//   s0 a0 a1 act0            (trigger)
	//   s1 a2 a1                 (update)
	//   s1 a2 a1 act0            (trigger)
	//   s1 a2 act1               (trigger)
	if len(paths) != 5 {
		t.Fatalf("got %d paths: %v", len(paths), paths)
	}
	var triggers, updates int
	for _, p := range paths {
		switch p.Kind {
		case Trigger:
			triggers++
			if g.KindOf(p.Nodes[len(p.Nodes)-1]) != Actuator {
				t.Errorf("trigger path does not end at actuator: %v", p)
			}
		case Update:
			updates++
			last := p.Nodes[len(p.Nodes)-1]
			if !g.MultiInput(last) {
				t.Errorf("update path does not end at multi-input app: %v", p)
			}
		}
		if g.KindOf(p.DrivingSensor()) != Sensor {
			t.Errorf("path does not start at a sensor: %v", p)
		}
		// Paths must follow edges.
		for i := 0; i+1 < len(p.Nodes); i++ {
			found := false
			for _, s := range g.Successors(p.Nodes[i]) {
				if s == p.Nodes[i+1] {
					found = true
				}
			}
			if !found {
				t.Errorf("path uses non-edge %d→%d", p.Nodes[i], p.Nodes[i+1])
			}
		}
	}
	if triggers != 3 || updates != 2 {
		t.Errorf("triggers=%d updates=%d", triggers, updates)
	}
	// Path helpers.
	p := paths[0]
	if p.String() == "" || p.Format(g) == "" {
		t.Errorf("path rendering empty")
	}
	apps := p.Applications(g)
	for _, a := range apps {
		if g.KindOf(a) != Application {
			t.Errorf("Applications returned non-app %d", a)
		}
	}
	_ = id
}

func TestPathsLimit(t *testing.T) {
	g, _ := figure2ish(t)
	if _, err := g.Paths(1); !errors.Is(err, ErrTooManyPaths) {
		t.Errorf("limit not enforced: %v", err)
	}
}

func TestGenerateValidates(t *testing.T) {
	cfg := PaperGenConfig()
	if err := cfg.Validate(); err != nil {
		t.Fatal(err)
	}
	bad := []GenConfig{
		{Sensors: 0, Apps: 5, Actuators: 1, Layers: 1},
		{Sensors: 1, Apps: 0, Actuators: 1, Layers: 1},
		{Sensors: 1, Apps: 5, Actuators: 0, Layers: 1},
		{Sensors: 1, Apps: 5, Actuators: 1, Layers: 0},
		{Sensors: 1, Apps: 5, Actuators: 1, Layers: 9},
		{Sensors: 1, Apps: 5, Actuators: 1, Layers: 1, ExtraEdgeProb: 2},
	}
	for i, c := range bad {
		if err := c.Validate(); err == nil {
			t.Errorf("bad config %d accepted", i)
		}
	}
}

func TestGenerateProducesValidGraphs(t *testing.T) {
	rng := stats.NewRNG(1)
	for trial := 0; trial < 50; trial++ {
		g, err := Generate(rng, PaperGenConfig())
		if err != nil {
			t.Fatal(err)
		}
		if err := g.Validate(); err != nil {
			t.Fatalf("trial %d: %v", trial, err)
		}
		if len(g.Sensors()) != 3 || len(g.Applications()) != 20 || len(g.Actuators()) != 3 {
			t.Fatalf("trial %d: wrong node counts", trial)
		}
	}
}

// TestQuickPathInvariants checks structural path properties across many
// random graphs: every enumerated path is simple (a DAG chain cannot
// revisit a node), starts at a sensor, terminates at an actuator or
// multi-input application, follows real edges, and contains no other
// terminal in its interior except multi-input applications passed
// through.
func TestQuickPathInvariants(t *testing.T) {
	rng := stats.NewRNG(77)
	for trial := 0; trial < 60; trial++ {
		cfg := GenConfig{
			Sensors:       1 + rng.Intn(3),
			Apps:          3 + rng.Intn(12),
			Actuators:     1 + rng.Intn(3),
			ExtraEdgeProb: rng.Float64() * 0.3,
		}
		cfg.Layers = 1 + rng.Intn(cfg.Apps)
		if cfg.Layers > 5 {
			cfg.Layers = 5
		}
		g, err := Generate(rng, cfg)
		if err != nil {
			t.Fatal(err)
		}
		paths, err := g.Paths(5000)
		if errors.Is(err, ErrTooManyPaths) {
			continue
		}
		if err != nil {
			t.Fatal(err)
		}
		for _, p := range paths {
			seen := map[int]bool{}
			for _, v := range p.Nodes {
				if seen[v] {
					t.Fatalf("trial %d: path revisits node %d: %v", trial, v, p)
				}
				seen[v] = true
			}
			if g.KindOf(p.Nodes[0]) != Sensor {
				t.Fatalf("trial %d: path starts at %v", trial, g.KindOf(p.Nodes[0]))
			}
			last := p.Nodes[len(p.Nodes)-1]
			switch p.Kind {
			case Trigger:
				if g.KindOf(last) != Actuator {
					t.Fatalf("trial %d: trigger path ends at %v", trial, g.KindOf(last))
				}
			case Update:
				if !g.MultiInput(last) {
					t.Fatalf("trial %d: update path ends at non-multi-input node", trial)
				}
			}
			for i := 0; i+1 < len(p.Nodes); i++ {
				found := false
				for _, s := range g.Successors(p.Nodes[i]) {
					if s == p.Nodes[i+1] {
						found = true
					}
				}
				if !found {
					t.Fatalf("trial %d: path uses non-edge", trial)
				}
				// No interior actuators (they have no successors anyway,
				// but assert the kind discipline explicitly).
				if i > 0 && g.KindOf(p.Nodes[i]) != Application {
					t.Fatalf("trial %d: interior node is a %v", trial, g.KindOf(p.Nodes[i]))
				}
			}
		}
	}
}

func TestGenerateWithPathCount(t *testing.T) {
	rng := stats.NewRNG(2)
	g, paths, err := GenerateWithPathCount(rng, PaperGenConfig(), 19, 5000)
	if err != nil {
		t.Fatal(err)
	}
	if len(paths) != 19 {
		t.Fatalf("got %d paths", len(paths))
	}
	if err := g.Validate(); err != nil {
		t.Fatal(err)
	}
	// Unreachable target errors out.
	if _, _, err := GenerateWithPathCount(stats.NewRNG(3), GenConfig{Sensors: 1, Apps: 1, Actuators: 1, Layers: 1}, 99, 50); !errors.Is(err, ErrPathCountUnmatched) {
		t.Errorf("err = %v", err)
	}
}
