package dag

import (
	"errors"
	"fmt"
	"strings"
)

// PathKind distinguishes the two terminations the paper defines.
type PathKind int

const (
	// Trigger paths end at an actuator.
	Trigger PathKind = iota
	// Update paths end at a multiple-input application.
	Update
)

// String returns "trigger" or "update".
func (k PathKind) String() string {
	if k == Trigger {
		return "trigger"
	}
	return "update"
}

// Path is one chain of producer-consumer pairs P_k: Nodes[0] is the driving
// sensor, the interior nodes are applications, and the final node is an
// actuator (Trigger) or a multiple-input application (Update).
type Path struct {
	// Nodes lists the node indices along the chain, driving sensor first.
	Nodes []int
	// Kind tells how the chain terminates.
	Kind PathKind
}

// DrivingSensor returns the sensor that drives the path.
func (p Path) DrivingSensor() int { return p.Nodes[0] }

// Applications returns the application nodes of the path, in order. For an
// update path this includes the terminal multiple-input application (it is
// the data consumer a_p of the final producer-consumer pair).
func (p Path) Applications(g *Graph) []int {
	var out []int
	for _, v := range p.Nodes {
		if g.KindOf(v) == Application {
			out = append(out, v)
		}
	}
	return out
}

// String renders the path as "s0 -> a1 -> a2 -> act0 (trigger)".
func (p Path) String() string {
	nodes := make([]string, len(p.Nodes))
	for i, v := range p.Nodes {
		nodes[i] = fmt.Sprintf("%d", v)
	}
	return fmt.Sprintf("%s (%s)", strings.Join(nodes, " -> "), p.Kind)
}

// Format renders the path with node names from g.
func (p Path) Format(g *Graph) string {
	nodes := make([]string, len(p.Nodes))
	for i, v := range p.Nodes {
		n := g.NameOf(v)
		if n == "" {
			n = fmt.Sprintf("#%d", v)
		}
		nodes[i] = n
	}
	return fmt.Sprintf("%s (%s)", strings.Join(nodes, " -> "), p.Kind)
}

// ErrTooManyPaths is returned when enumeration exceeds the caller's limit.
var ErrTooManyPaths = errors.New("dag: path enumeration exceeded limit")

// Paths enumerates the path set P by depth-first search from every sensor.
// A chain emits an Update path each time it arrives at a multiple-input
// application and a Trigger path when it arrives at an actuator; chains
// continue through multiple-input applications, so overlapping paths (an
// update path that is a prefix of a trigger path) are all reported, in
// deterministic DFS order. limit caps the number of paths to guard against
// combinatorial blow-up; pass 0 for the default of 10000.
func (g *Graph) Paths(limit int) ([]Path, error) {
	if limit <= 0 {
		limit = 10000
	}
	if _, err := g.TopoSort(); err != nil {
		return nil, err
	}
	var paths []Path
	var chain []int
	var walk func(v int) error
	walk = func(v int) error {
		chain = append(chain, v)
		defer func() { chain = chain[:len(chain)-1] }()
		switch {
		case g.KindOf(v) == Actuator:
			if len(paths) >= limit {
				return ErrTooManyPaths
			}
			paths = append(paths, Path{Nodes: snapshot(chain), Kind: Trigger})
			return nil
		case g.MultiInput(v) && len(chain) > 1:
			if len(paths) >= limit {
				return ErrTooManyPaths
			}
			paths = append(paths, Path{Nodes: snapshot(chain), Kind: Update})
		}
		for _, s := range g.Successors(v) {
			if err := walk(s); err != nil {
				return err
			}
		}
		return nil
	}
	for _, s := range g.Sensors() {
		if err := walk(s); err != nil {
			return nil, err
		}
	}
	return paths, nil
}

func snapshot(chain []int) []int {
	return append([]int(nil), chain...)
}
