// Package etcgen generates estimated-time-to-compute (ETC) matrices for
// heterogeneous computing experiments using the coefficient-of-variation-
// based (CVB) method of Ali, Siegel, Maheswaran, Hensgen, and Sedigh-Ali
// (2000) — reference [3] of the robustness paper. §4.2 of the paper draws
// its workload from this generator with mean 10 and task and machine
// heterogeneities of 0.7.
//
// The CVB method is two-stage. For each task a_i a mean execution time q_i
// is sampled from a Gamma distribution with mean μ_task and coefficient of
// variation V_task. Then row i of the ETC matrix is sampled from a Gamma
// distribution with mean q_i and coefficient of variation V_machine.
package etcgen

import (
	"fmt"

	"fepia/internal/stats"
)

// Consistency describes the structural relationship between rows of an ETC
// matrix (Braun et al. 2001, reference [7]).
type Consistency int

const (
	// Inconsistent matrices are used raw: machine m_a may be faster than
	// m_b for one task and slower for another. §4.2 uses this variant.
	Inconsistent Consistency = iota
	// Consistent matrices have every row sorted, so machine ordering is the
	// same for all tasks.
	Consistent
	// SemiConsistent matrices have the even-indexed columns of every row
	// sorted, embedding a consistent sub-matrix in an inconsistent one.
	SemiConsistent
)

// String returns the conventional name of the consistency class.
func (c Consistency) String() string {
	switch c {
	case Inconsistent:
		return "inconsistent"
	case Consistent:
		return "consistent"
	case SemiConsistent:
		return "semi-consistent"
	default:
		return fmt.Sprintf("Consistency(%d)", int(c))
	}
}

// Params configures CVB generation.
type Params struct {
	// Tasks and Machines give the matrix dimensions (rows × columns).
	Tasks, Machines int
	// MeanTask is the mean of the task-mean distribution (μ_task); the
	// paper uses 10.
	MeanTask float64
	// TaskHeterogeneity is V_task, the coefficient of variation across
	// tasks; the paper uses 0.7.
	TaskHeterogeneity float64
	// MachineHeterogeneity is V_machine, the coefficient of variation
	// across machines for a fixed task; the paper uses 0.7.
	MachineHeterogeneity float64
	// Consistency selects the structural class; the paper's experiments use
	// Inconsistent.
	Consistency Consistency
}

// Validate reports the first problem with the parameters, if any.
func (p Params) Validate() error {
	switch {
	case p.Tasks <= 0:
		return fmt.Errorf("etcgen: Tasks = %d must be positive", p.Tasks)
	case p.Machines <= 0:
		return fmt.Errorf("etcgen: Machines = %d must be positive", p.Machines)
	case !(p.MeanTask > 0):
		return fmt.Errorf("etcgen: MeanTask = %v must be positive", p.MeanTask)
	case !(p.TaskHeterogeneity > 0):
		return fmt.Errorf("etcgen: TaskHeterogeneity = %v must be positive", p.TaskHeterogeneity)
	case !(p.MachineHeterogeneity > 0):
		return fmt.Errorf("etcgen: MachineHeterogeneity = %v must be positive", p.MachineHeterogeneity)
	}
	return nil
}

// PaperParams returns the §4.2 configuration: 20 tasks, 5 machines,
// mean 10, task and machine heterogeneity 0.7, inconsistent.
func PaperParams() Params {
	return Params{
		Tasks:                20,
		Machines:             5,
		MeanTask:             10,
		TaskHeterogeneity:    0.7,
		MachineHeterogeneity: 0.7,
		Consistency:          Inconsistent,
	}
}

// Matrix is a dense tasks × machines ETC matrix: Matrix[i][j] is the
// estimated time to compute task i on machine j (C_ij in the paper).
type Matrix [][]float64

// Generate samples an ETC matrix with the CVB method.
func Generate(rng *stats.RNG, p Params) (Matrix, error) {
	if err := p.Validate(); err != nil {
		return nil, err
	}
	m := make(Matrix, p.Tasks)
	for i := range m {
		q := rng.GammaMeanCV(p.MeanTask, p.TaskHeterogeneity)
		row := make([]float64, p.Machines)
		for j := range row {
			row[j] = rng.GammaMeanCV(q, p.MachineHeterogeneity)
		}
		m[i] = row
	}
	switch p.Consistency {
	case Consistent:
		for _, row := range m {
			sortRow(row)
		}
	case SemiConsistent:
		for _, row := range m {
			sortEvenColumns(row)
		}
	}
	return m, nil
}

// Tasks returns the number of rows.
func (m Matrix) Tasks() int { return len(m) }

// Machines returns the number of columns (0 for an empty matrix).
func (m Matrix) Machines() int {
	if len(m) == 0 {
		return 0
	}
	return len(m[0])
}

// Validate checks that the matrix is rectangular and strictly positive.
func (m Matrix) Validate() error {
	if len(m) == 0 {
		return fmt.Errorf("etcgen: empty matrix")
	}
	w := len(m[0])
	for i, row := range m {
		if len(row) != w {
			return fmt.Errorf("etcgen: ragged matrix: row %d has %d columns, want %d", i, len(row), w)
		}
		for j, x := range row {
			if !(x > 0) {
				return fmt.Errorf("etcgen: ETC[%d][%d] = %v must be positive", i, j, x)
			}
		}
	}
	return nil
}

// Clone returns a deep copy of the matrix.
func (m Matrix) Clone() Matrix {
	out := make(Matrix, len(m))
	for i, row := range m {
		out[i] = append([]float64(nil), row...)
	}
	return out
}

// sortRow sorts a row ascending (insertion sort; rows are short).
func sortRow(row []float64) {
	for i := 1; i < len(row); i++ {
		for j := i; j > 0 && row[j] < row[j-1]; j-- {
			row[j], row[j-1] = row[j-1], row[j]
		}
	}
}

// sortEvenColumns extracts the even-indexed entries of the row, sorts them,
// and writes them back in place, leaving odd columns untouched.
func sortEvenColumns(row []float64) {
	var ev []float64
	for j := 0; j < len(row); j += 2 {
		ev = append(ev, row[j])
	}
	sortRow(ev)
	for k, j := 0, 0; j < len(row); j, k = j+2, k+1 {
		row[j] = ev[k]
	}
}
