package etcgen

import (
	"math"
	"testing"

	"fepia/internal/stats"
)

func TestValidateParams(t *testing.T) {
	good := PaperParams()
	if err := good.Validate(); err != nil {
		t.Fatalf("paper params invalid: %v", err)
	}
	bad := []Params{
		{Tasks: 0, Machines: 5, MeanTask: 10, TaskHeterogeneity: 0.7, MachineHeterogeneity: 0.7},
		{Tasks: 5, Machines: 0, MeanTask: 10, TaskHeterogeneity: 0.7, MachineHeterogeneity: 0.7},
		{Tasks: 5, Machines: 5, MeanTask: -1, TaskHeterogeneity: 0.7, MachineHeterogeneity: 0.7},
		{Tasks: 5, Machines: 5, MeanTask: 10, TaskHeterogeneity: 0, MachineHeterogeneity: 0.7},
		{Tasks: 5, Machines: 5, MeanTask: 10, TaskHeterogeneity: 0.7, MachineHeterogeneity: 0},
	}
	for i, p := range bad {
		if err := p.Validate(); err == nil {
			t.Errorf("bad params %d accepted", i)
		}
		if _, err := Generate(stats.NewRNG(1), p); err == nil {
			t.Errorf("Generate accepted bad params %d", i)
		}
	}
}

func TestGenerateShapeAndPositivity(t *testing.T) {
	m, err := Generate(stats.NewRNG(1), PaperParams())
	if err != nil {
		t.Fatal(err)
	}
	if m.Tasks() != 20 || m.Machines() != 5 {
		t.Fatalf("shape %dx%d", m.Tasks(), m.Machines())
	}
	if err := m.Validate(); err != nil {
		t.Fatal(err)
	}
}

func TestGenerateDeterministic(t *testing.T) {
	a, _ := Generate(stats.NewRNG(9), PaperParams())
	b, _ := Generate(stats.NewRNG(9), PaperParams())
	for i := range a {
		for j := range a[i] {
			if a[i][j] != b[i][j] {
				t.Fatalf("same seed, different matrices at (%d,%d)", i, j)
			}
		}
	}
}

func TestGenerateHitsHeterogeneityTargets(t *testing.T) {
	// With a large matrix, the overall mean approaches MeanTask and the
	// column CV within each row approaches MachineHeterogeneity on average.
	p := Params{Tasks: 4000, Machines: 10, MeanTask: 10, TaskHeterogeneity: 0.7, MachineHeterogeneity: 0.7}
	m, err := Generate(stats.NewRNG(5), p)
	if err != nil {
		t.Fatal(err)
	}
	var all []float64
	var rowMeans []float64
	var rowCVs []float64
	for _, row := range m {
		all = append(all, row...)
		rowMeans = append(rowMeans, stats.Mean(row))
		rowCVs = append(rowCVs, stats.CV(row))
	}
	if mean := stats.Mean(all); math.Abs(mean-10) > 0.5 {
		t.Errorf("overall mean = %v, want ≈10", mean)
	}
	// Task heterogeneity shows up as CV of the row means.
	if cv := stats.CV(rowMeans); math.Abs(cv-0.7) > 0.1 {
		t.Errorf("task heterogeneity = %v, want ≈0.7", cv)
	}
	// Machine heterogeneity: average within-row CV. The sample CV of 10
	// Gamma draws underestimates the population CV, so allow slack below.
	if cv := stats.Mean(rowCVs); cv < 0.5 || cv > 0.85 {
		t.Errorf("machine heterogeneity = %v, want ≈0.7", cv)
	}
}

func TestConsistencyClasses(t *testing.T) {
	p := PaperParams()
	p.Consistency = Consistent
	m, err := Generate(stats.NewRNG(2), p)
	if err != nil {
		t.Fatal(err)
	}
	for i, row := range m {
		for j := 1; j < len(row); j++ {
			if row[j] < row[j-1] {
				t.Fatalf("consistent row %d not sorted: %v", i, row)
			}
		}
	}
	p.Consistency = SemiConsistent
	m, err = Generate(stats.NewRNG(2), p)
	if err != nil {
		t.Fatal(err)
	}
	for i, row := range m {
		for j := 2; j < len(row); j += 2 {
			if row[j] < row[j-2] {
				t.Fatalf("semi-consistent row %d even columns not sorted: %v", i, row)
			}
		}
	}
}

func TestConsistencyString(t *testing.T) {
	if Inconsistent.String() != "inconsistent" || Consistent.String() != "consistent" ||
		SemiConsistent.String() != "semi-consistent" {
		t.Errorf("Consistency.String mismatch")
	}
	if Consistency(99).String() == "" {
		t.Errorf("unknown consistency should still render")
	}
}

func TestMatrixCloneAndValidate(t *testing.T) {
	m := Matrix{{1, 2}, {3, 4}}
	c := m.Clone()
	c[0][0] = 99
	if m[0][0] != 1 {
		t.Errorf("Clone shares storage")
	}
	if err := (Matrix{}).Validate(); err == nil {
		t.Errorf("empty matrix accepted")
	}
	if err := (Matrix{{1, 2}, {3}}).Validate(); err == nil {
		t.Errorf("ragged matrix accepted")
	}
	if err := (Matrix{{1, -2}}).Validate(); err == nil {
		t.Errorf("non-positive entry accepted")
	}
}
