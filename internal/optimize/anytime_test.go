package optimize

import (
	"context"
	"math"
	"sort"
	"testing"

	"fepia/internal/vecmath"
)

// sphereObjective is ‖x‖² with its analytic gradient: the convex model
// problem whose level-set distances are known in closed form.
func sphereObjective() Objective {
	return Objective{
		F: func(x []float64) float64 { return vecmath.Dot(x, x) },
		Grad: func(dst, x []float64) []float64 {
			if len(dst) != len(x) {
				dst = make([]float64, len(x))
			}
			for i, v := range x {
				dst[i] = 2 * v
			}
			return dst
		},
	}
}

// The bit-identity contract: with a background context and no callback,
// the ctx-aware solver IS MinNormToLevelSet — same iterates, same answer,
// down to the float bits.
func TestMinNormCtxBitIdentical(t *testing.T) {
	objs := []Objective{affineObjective([]float64{2, -1, 3}), sphereObjective()}
	starts := [][]float64{{1, 1, 1}, {1, 0, 0}}
	targets := []float64{12, 25}
	for i := range objs {
		plain, perr := MinNormToLevelSet(objs[i], starts[i], targets[i], DefaultOptions())
		ctxed, cerr := MinNormToLevelSetCtx(context.Background(), objs[i], starts[i], targets[i], DefaultOptions(), nil)
		if (perr == nil) != (cerr == nil) {
			t.Fatalf("case %d: errors diverge: %v vs %v", i, perr, cerr)
		}
		if math.Float64bits(plain.Distance) != math.Float64bits(ctxed.Distance) {
			t.Fatalf("case %d: distance %v != %v (not bit-identical)", i, plain.Distance, ctxed.Distance)
		}
		for j := range plain.X {
			if math.Float64bits(plain.X[j]) != math.Float64bits(ctxed.X[j]) {
				t.Fatalf("case %d: X[%d] %v != %v", i, j, plain.X[j], ctxed.X[j])
			}
		}
	}
}

// Reported lower bounds must tighten monotonically and never exceed the
// converged distance (the bound is certified, the solve is iterative —
// allow the solver's own tolerance on the final comparison).
func TestMinNormCtxBoundsMonotoneAndValid(t *testing.T) {
	obj := sphereObjective()
	x0 := []float64{1, 0}
	// From above the level: f(x0)=26 > 25 never happens here; use a start
	// outside the ball so the halfspace certificate fires: f(6,0)=36>25,
	// true distance to {‖x‖²=25} is 1.
	x0 = []float64{6, 0}
	var bounds []float64
	res, err := MinNormToLevelSetCtx(context.Background(), obj, x0, 25, DefaultOptions(),
		func(lb float64) { bounds = append(bounds, lb) })
	if err != nil {
		t.Fatal(err)
	}
	if len(bounds) == 0 {
		t.Fatal("no lower bounds reported from above the level set")
	}
	if !sort.Float64sAreSorted(bounds) {
		t.Fatalf("bounds not monotone: %v", bounds)
	}
	last := bounds[len(bounds)-1]
	if last <= 0 {
		t.Fatalf("final bound %v not positive", last)
	}
	slack := 1e-9 * (1 + math.Abs(res.Distance))
	if last > res.Distance+slack {
		t.Fatalf("certified bound %v exceeds converged distance %v", last, res.Distance)
	}
	if math.Abs(res.Distance-1) > 1e-6 {
		t.Fatalf("distance = %v, want 1", res.Distance)
	}
}

// An already-expired context still returns the x0-certificate bound (the
// pre-loop observe) and the context error, never a hang or a panic.
func TestMinNormCtxExpired(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	var bounds []float64
	_, err := MinNormToLevelSetCtx(ctx, sphereObjective(), []float64{6, 0}, 25, DefaultOptions(),
		func(lb float64) { bounds = append(bounds, lb) })
	if err != context.Canceled {
		t.Fatalf("err = %v, want context.Canceled", err)
	}
	if len(bounds) == 0 {
		t.Fatal("expired context reported no x0 certificate")
	}
	// The x0 halfspace bound for ‖x‖²=25 from (6,0): (36−25)/‖(12,0)‖ = 11/12.
	if got, want := bounds[0], 11.0/12.0; math.Abs(got-want) > 1e-9 {
		t.Fatalf("x0 certificate = %v, want %v", got, want)
	}
}

// CertifyLevelBelow from inside the level set: distance from the origin
// to {‖x‖²=25} is 5; the cross-polytope certificate reaches 5/√n·(search
// resolution) — strictly positive, never above the true distance.
func TestCertifyLevelBelow(t *testing.T) {
	obj := sphereObjective()
	n := 2
	x0 := make([]float64, n)
	var bounds []float64
	lb := CertifyLevelBelow(context.Background(), obj, x0, 25, DefaultOptions(),
		func(b float64) { bounds = append(bounds, b) })
	if lb <= 0 {
		t.Fatalf("no certificate from strictly inside the level set: %v", lb)
	}
	truth := 5.0
	if lb > truth {
		t.Fatalf("certified %v exceeds the true distance %v", lb, truth)
	}
	// The inscribed-ball bound t/√n can reach truth/1 only at t=truth·√n…
	// but safe(t) caps t where a vertex reaches the level: t < truth. So
	// the best achievable is truth/√2 ≈ 3.53; require most of it.
	if want := truth / math.Sqrt(float64(n)); lb < 0.9*want {
		t.Fatalf("certificate %v is far below the achievable %v", lb, want)
	}
	if !sort.Float64sAreSorted(bounds) {
		t.Fatalf("reported bounds not monotone: %v", bounds)
	}
}

// From on or above the level there is nothing to certify: the distance
// could be zero.
func TestCertifyLevelBelowOutside(t *testing.T) {
	obj := sphereObjective()
	if lb := CertifyLevelBelow(context.Background(), obj, []float64{6, 0}, 25, DefaultOptions(), nil); lb != 0 {
		t.Fatalf("certificate %v from above the level, want 0", lb)
	}
	if lb := CertifyLevelBelow(context.Background(), obj, []float64{5, 0}, 25, DefaultOptions(), nil); lb != 0 {
		t.Fatalf("certificate %v from on the level, want 0", lb)
	}
}

// AnnealMinDistanceCtx with a background context is bit-identical to
// AnnealMinDistance, and an expired context surfaces ctx.Err.
func TestAnnealCtx(t *testing.T) {
	obj := Objective{F: func(x []float64) float64 {
		// The W-shaped double well of the non-convex anneal tests.
		d := x[0] - 2
		return d*d*d*d - 8*d*d + x[1]*x[1]
	}}
	x0 := []float64{2, 0}
	plain, perr := AnnealMinDistance(obj, x0, 5, DefaultAnnealOptions())
	ctxed, cerr := AnnealMinDistanceCtx(context.Background(), obj, x0, 5, DefaultAnnealOptions())
	if (perr == nil) != (cerr == nil) {
		t.Fatalf("errors diverge: %v vs %v", perr, cerr)
	}
	if math.Float64bits(plain.Distance) != math.Float64bits(ctxed.Distance) {
		t.Fatalf("distance %v != %v (not bit-identical)", plain.Distance, ctxed.Distance)
	}

	expired, cancel := context.WithCancel(context.Background())
	cancel()
	if _, err := AnnealMinDistanceCtx(expired, obj, x0, 5, DefaultAnnealOptions()); err != context.Canceled {
		t.Fatalf("expired anneal err = %v, want context.Canceled", err)
	}
}
