package optimize

import (
	"context"
	"math"

	"fepia/internal/vecmath"
)

// CertifyLevelBelow streams certified lower bounds on the ℓ₂ distance
// from x₀ to the level set {f = target} for CONVEX f with f(x₀) < target
// — the side the halfspace bound of MinNormToLevelSetCtx cannot certify.
//
// The certificate is geometric: if every vertex x₀ ± t·eᵢ of a scaled
// cross-polytope satisfies f < target strictly, convexity keeps f
// strictly below target on the whole polytope (a convex maximum over a
// polytope sits on a vertex), so the level set cannot enter the ball of
// radius t/√n inscribed in it. No perturbation smaller than t/√n can
// reach the level set, making each safe probe scale t a rigorous bound
// at the cost of 2n evaluations.
//
// The search halves t until the smallest polytope is safe, doubles while
// safety holds, then bisects between the last safe and first unsafe
// scale, reporting every improvement through onBound (nil-safe) in
// increasing order. It returns the best bound found — 0 when even the
// smallest probe is unsafe, f is not below target at x₀, or ctx expired
// before the first certificate. The bound stream stops (and the best so
// far is returned) as soon as ctx expires.
func CertifyLevelBelow(ctx context.Context, obj Objective, x0 []float64, target float64, opts Options, onBound func(lower float64)) float64 {
	n := len(x0)
	if n == 0 || !(obj.F(x0) < target) {
		return 0
	}
	inv := 1 / math.Sqrt(float64(n))
	probe := vecmath.Clone(x0)
	safe := func(t float64) bool {
		for i := range x0 {
			for _, s := range [2]float64{t, -t} {
				probe[i] = x0[i] + s
				v := obj.F(probe)
				probe[i] = x0[i]
				if !(v < target) { // NaN counts as unsafe
					return false
				}
			}
		}
		return true
	}

	scale := 1 + vecmath.Euclidean(x0)
	tMax := opts.RayMax * scale
	if !(tMax > 0) {
		tMax = 1e9 * scale
	}
	t := 1e-6 * scale
	for k := 0; !safe(t); k++ {
		// 40 quarterings span ~24 decades below the starting scale; a
		// level set closer than that is numerically indistinguishable
		// from touching x₀, so give up with no certificate.
		if k >= 40 || ctx.Err() != nil {
			return 0
		}
		t /= 4
	}
	best := t * inv
	if onBound != nil {
		onBound(best)
	}
	lo, hi := t, math.Inf(1)
	for k := 0; k < 64 && ctx.Err() == nil; k++ {
		next := lo * 2
		if next > tMax {
			break
		}
		if !safe(next) {
			hi = next
			break
		}
		lo = next
		best = lo * inv
		if onBound != nil {
			onBound(best)
		}
	}
	for k := 0; k < 30 && !math.IsInf(hi, 1) && ctx.Err() == nil; k++ {
		mid := lo + (hi-lo)/2
		if mid <= lo || mid >= hi {
			break
		}
		if safe(mid) {
			lo = mid
			best = lo * inv
			if onBound != nil {
				onBound(best)
			}
		} else {
			hi = mid
		}
	}
	return best
}
