package optimize

import (
	"errors"
	"math"
	"testing"

	"fepia/internal/vecmath"
)

func TestBisectKnownRoots(t *testing.T) {
	// x² − 2 on [0,2] → sqrt(2).
	root, err := Bisect(func(x float64) float64 { return x*x - 2 }, 0, 2, 1e-12, 200)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(root-math.Sqrt2) > 1e-9 {
		t.Errorf("root = %v", root)
	}
	// Endpoints that are exact roots return immediately.
	if r, err := Bisect(func(x float64) float64 { return x }, 0, 1, 1e-12, 10); err != nil || r != 0 {
		t.Errorf("zero endpoint: %v, %v", r, err)
	}
	if r, err := Bisect(func(x float64) float64 { return x - 1 }, 0, 1, 1e-12, 10); err != nil || r != 1 {
		t.Errorf("one endpoint: %v, %v", r, err)
	}
	// Reversed interval is normalised.
	if r, err := Bisect(func(x float64) float64 { return x - 0.5 }, 1, 0, 1e-12, 100); err != nil || math.Abs(r-0.5) > 1e-9 {
		t.Errorf("reversed interval: %v, %v", r, err)
	}
}

func TestBisectNoBracket(t *testing.T) {
	_, err := Bisect(func(x float64) float64 { return x*x + 1 }, -1, 1, 1e-12, 100)
	if !errors.Is(err, ErrNoBracket) {
		t.Errorf("err = %v", err)
	}
	_, err = Bisect(func(x float64) float64 { return math.NaN() }, 0, 1, 1e-12, 100)
	if !errors.Is(err, ErrNoBracket) {
		t.Errorf("NaN err = %v", err)
	}
}

func TestBracketAbove(t *testing.T) {
	// g(t) = t − 100 crosses zero at 100.
	hi, err := BracketAbove(func(t float64) float64 { return t - 100 }, 1, 1e6)
	if err != nil {
		t.Fatal(err)
	}
	if hi < 100 {
		t.Errorf("bracket %v below crossing", hi)
	}
	if _, err := BracketAbove(func(t float64) float64 { return -1 }, 1, 1e3); !errors.Is(err, ErrNoBracket) {
		t.Errorf("unreachable level: err = %v", err)
	}
	if _, err := BracketAbove(func(t float64) float64 { return math.NaN() }, 1, 1e3); !errors.Is(err, ErrNoBracket) {
		t.Errorf("NaN: err = %v", err)
	}
}

func TestGoldenSection(t *testing.T) {
	// (x−3)² has its minimum at 3.
	x := GoldenSection(func(x float64) float64 { return (x - 3) * (x - 3) }, 0, 10, 1e-10)
	if math.Abs(x-3) > 1e-8 {
		t.Errorf("minimiser = %v", x)
	}
	// Reversed bounds.
	x = GoldenSection(func(x float64) float64 { return math.Abs(x + 1) }, 2, -4, 1e-10)
	if math.Abs(x+1) > 1e-8 {
		t.Errorf("minimiser = %v", x)
	}
}

func TestNumericalGradient(t *testing.T) {
	// f(x,y) = x² + 3xy; ∇f = (2x+3y, 3x).
	obj := Objective{F: func(x []float64) float64 { return x[0]*x[0] + 3*x[0]*x[1] }}
	g := obj.Gradient(nil, []float64{2, 5}, 1e-6)
	if math.Abs(g[0]-19) > 1e-5 || math.Abs(g[1]-6) > 1e-5 {
		t.Errorf("gradient = %v", g)
	}
	// Analytic gradient takes precedence.
	objA := Objective{
		F:    obj.F,
		Grad: func(dst, x []float64) []float64 { return append(dst[:0], -1, -2) },
	}
	if g := objA.Gradient(make([]float64, 2), []float64{2, 5}, 1e-6); g[0] != -1 || g[1] != -2 {
		t.Errorf("analytic gradient not used: %v", g)
	}
}

// affineObjective builds f(x) = a·x for testing against the exact
// hyperplane answer.
func affineObjective(a []float64) Objective {
	return Objective{
		F: func(x []float64) float64 { return vecmath.Dot(a, x) },
		Grad: func(dst, x []float64) []float64 {
			if len(dst) != len(a) {
				dst = make([]float64, len(a))
			}
			copy(dst, a)
			return dst
		},
	}
}

func TestMinNormAffineMatchesHyperplane(t *testing.T) {
	a := []float64{2, -1, 3}
	target := 12.0
	x0 := []float64{1, 1, 1}
	res, err := MinNormToLevelSet(affineObjective(a), x0, target, DefaultOptions())
	if err != nil {
		t.Fatal(err)
	}
	h, _ := vecmath.NewHyperplane(a, target)
	want := h.Distance(x0)
	if math.Abs(res.Distance-want) > 1e-8 {
		t.Errorf("distance = %v want %v", res.Distance, want)
	}
	if !res.Converged {
		t.Errorf("affine problem did not converge")
	}
	if math.Abs(vecmath.Dot(a, res.X)-target) > 1e-6 {
		t.Errorf("solution off the boundary: f = %v", vecmath.Dot(a, res.X))
	}
}

func TestMinNormSphereLevelSet(t *testing.T) {
	// f(x) = ‖x‖² = 25 from x0 = (1,0): nearest point (5,0), distance 4.
	obj := Objective{F: func(x []float64) float64 {
		return x[0]*x[0] + x[1]*x[1]
	}}
	res, err := MinNormToLevelSet(obj, []float64{1, 0}, 25, DefaultOptions())
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(res.Distance-4) > 1e-6 {
		t.Errorf("distance = %v want 4", res.Distance)
	}
}

func TestMinNormFromAboveTheLevel(t *testing.T) {
	// Start outside the sphere: from (10,0) to ‖x‖² = 25 the distance is 5.
	obj := Objective{F: func(x []float64) float64 {
		return x[0]*x[0] + x[1]*x[1]
	}}
	res, err := MinNormToLevelSet(obj, []float64{10, 0}, 25, DefaultOptions())
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(res.Distance-5) > 1e-6 {
		t.Errorf("distance = %v want 5", res.Distance)
	}
}

func TestMinNormConvexQuadratic(t *testing.T) {
	// f(x,y) = x² + 4y², level 16 from the origin. The closest boundary
	// point is along the steep axis: (0, ±2), distance 2.
	obj := Objective{F: func(x []float64) float64 {
		return x[0]*x[0] + 4*x[1]*x[1]
	}}
	res, err := MinNormToLevelSet(obj, []float64{0, 0}, 16, DefaultOptions())
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(res.Distance-2) > 1e-6 {
		t.Errorf("distance = %v want 2", res.Distance)
	}
	if math.Abs(res.X[0]) > 1e-3 || math.Abs(math.Abs(res.X[1])-2) > 1e-3 {
		t.Errorf("boundary point = %v want (0, ±2)", res.X)
	}
}

func TestMinNormAtBoundaryAlready(t *testing.T) {
	obj := affineObjective([]float64{1, 1})
	res, err := MinNormToLevelSet(obj, []float64{3, 4}, 7, DefaultOptions())
	if err != nil {
		t.Fatal(err)
	}
	if res.Distance != 0 {
		t.Errorf("on-boundary distance = %v", res.Distance)
	}
}

func TestMinNormUnreachable(t *testing.T) {
	// Constant function can never reach the level.
	obj := Objective{F: func(x []float64) float64 { return 1 }}
	opts := DefaultOptions()
	opts.RayMax = 1e3
	if _, err := MinNormToLevelSet(obj, []float64{0, 0}, 5, opts); !errors.Is(err, ErrUnreachable) {
		t.Errorf("err = %v", err)
	}
}

func TestMinNormSaturationPlateau(t *testing.T) {
	// Regression: an M/M/1-style impact with a saturation plateau
	// (f jumps to a huge constant once the load reaches capacity) used to
	// defeat the secant acceleration — each step moved the bracket
	// endpoint infinitesimally against the plateau's large magnitude, and
	// the ErrMaxIter midpoint (not on the level set) was accepted as a
	// boundary point, yielding distance 268 instead of 600/√2 ≈ 424.26.
	mu, sla := 1200.0, 0.01
	obj := Objective{F: func(lam []float64) float64 {
		load := lam[0] + lam[1]
		if load >= mu {
			return sla * 1e6
		}
		return 1 / (mu - load)
	}}
	res, err := MinNormToLevelSet(obj, []float64{300, 200}, sla, DefaultOptions())
	if err != nil {
		t.Fatal(err)
	}
	want := 600 / math.Sqrt2 // boundary load = μ − 1/sla = 1100
	if math.Abs(res.Distance-want) > 1e-4 {
		t.Errorf("distance = %v want %v", res.Distance, want)
	}
	if got := obj.F(res.X); math.Abs(got-sla) > 1e-6 {
		t.Errorf("solution off the level set: f = %v", got)
	}
	if !res.Converged {
		t.Errorf("did not converge")
	}
}

func TestBisectPlateauBracket(t *testing.T) {
	// The scalar regression distilled: g is −ε on the left and jumps to
	// +10⁴ on the right, with a genuine root in between. The alternating
	// bisection must find it despite the magnitude imbalance.
	g := func(x float64) float64 {
		if x >= 2 {
			return 1e4
		}
		return x - 1 // root at 1
	}
	root, err := Bisect(g, 0, 100, 1e-10, 200)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(root-1) > 1e-6 {
		t.Errorf("root = %v want 1", root)
	}
}

func TestMinNormInvalidOptions(t *testing.T) {
	obj := affineObjective([]float64{1})
	if _, err := MinNormToLevelSet(obj, []float64{0}, 1, Options{}); err == nil {
		t.Errorf("zero options accepted")
	}
}

func TestAnnealMatchesConvexAnswer(t *testing.T) {
	obj := Objective{F: func(x []float64) float64 {
		return x[0]*x[0] + 4*x[1]*x[1]
	}}
	res, err := AnnealMinDistance(obj, []float64{0, 0}, 16, DefaultAnnealOptions())
	if err != nil {
		t.Fatal(err)
	}
	if res.Distance < 2-1e-9 {
		t.Fatalf("anneal found infeasible distance %v < true optimum 2", res.Distance)
	}
	if res.Distance > 2.05 {
		t.Errorf("anneal distance = %v, want ≈2", res.Distance)
	}
}

func TestAnnealNonConvex(t *testing.T) {
	// A non-convex level set: f(x,y) = min((x−4)²+y², (x+1)²+y²) = 0.25 has
	// two disc boundaries; the nearest from the origin is around (−1,0)
	// with distance 0.5.
	obj := Objective{F: func(x []float64) float64 {
		a := (x[0]-4)*(x[0]-4) + x[1]*x[1]
		b := (x[0]+1)*(x[0]+1) + x[1]*x[1]
		return math.Min(a, b)
	}}
	res, err := AnnealMinDistance(obj, []float64{0, 0}, 0.25, DefaultAnnealOptions())
	if err != nil {
		t.Fatal(err)
	}
	if res.Distance > 0.55 {
		t.Errorf("anneal stuck in far basin: distance = %v, want ≈0.5", res.Distance)
	}
}

func TestAnnealOnBoundaryAndUnreachable(t *testing.T) {
	obj := affineObjective([]float64{1, 0})
	res, err := AnnealMinDistance(obj, []float64{5, 0}, 5, DefaultAnnealOptions())
	if err != nil || res.Distance != 0 {
		t.Errorf("on-boundary: %v, %v", res, err)
	}
	konst := Objective{F: func(x []float64) float64 { return 1 }}
	opts := DefaultAnnealOptions()
	opts.RayMax = 1e3
	opts.Steps = 50
	if _, err := AnnealMinDistance(konst, []float64{0, 0}, 5, opts); !errors.Is(err, ErrUnreachable) {
		t.Errorf("unreachable err = %v", err)
	}
}

func TestAnnealDeterministicForSeed(t *testing.T) {
	obj := Objective{F: func(x []float64) float64 { return x[0]*x[0] + 4*x[1]*x[1] }}
	o := DefaultAnnealOptions()
	o.Steps = 500
	a, err := AnnealMinDistance(obj, []float64{0, 0}, 16, o)
	if err != nil {
		t.Fatal(err)
	}
	b, err := AnnealMinDistance(obj, []float64{0, 0}, 16, o)
	if err != nil {
		t.Fatal(err)
	}
	if a.Distance != b.Distance {
		t.Errorf("same seed, different results: %v vs %v", a.Distance, b.Distance)
	}
}
